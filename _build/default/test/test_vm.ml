(* Tests for the VM substrate: tagging, layout, memory, hidden classes,
   heap objects and elements arrays. *)

open Tce_vm

(* --- value tagging --- *)

let test_smi_tagging () =
  Alcotest.(check int) "roundtrip" 42 (Value.smi_value (Value.smi 42));
  Alcotest.(check int) "negative" (-7) (Value.smi_value (Value.smi (-7)));
  Alcotest.(check bool) "is_smi" true (Value.is_smi (Value.smi 0));
  Alcotest.(check bool) "max fits" true (Value.smi_fits 0x7fff_ffff);
  Alcotest.(check bool) "min fits" true (Value.smi_fits (-0x8000_0000));
  Alcotest.(check bool) "max+1 rejected" false (Value.smi_fits 0x8000_0000);
  Alcotest.(check bool) "overflow raises" true
    (try ignore (Value.smi 0x8000_0000); false with Value.Smi_overflow -> true)

let test_ptr_tagging () =
  let p = Value.ptr 0x1000 in
  Alcotest.(check bool) "is_ptr" true (Value.is_ptr p);
  Alcotest.(check bool) "not smi" false (Value.is_smi p);
  Alcotest.(check int) "addr roundtrip" 0x1000 (Value.ptr_addr p);
  Alcotest.(check bool) "unaligned rejected" true
    (try ignore (Value.ptr 0x1001); false with Invalid_argument _ -> true)

let test_int32_wrap () =
  Alcotest.(check int) "positive" 5 (Value.to_int32 5);
  Alcotest.(check int) "wraps" (-2147483648) (Value.to_int32 0x8000_0000);
  Alcotest.(check int) "wraps 2^32" 0 (Value.to_int32 0x1_0000_0000);
  Alcotest.(check int) "uint32" 0xffff_ffff (Value.to_uint32 (-1))

let test_js_to_int32_float () =
  Alcotest.(check int) "nan" 0 (Value.js_to_int32_float Float.nan);
  Alcotest.(check int) "inf" 0 (Value.js_to_int32_float Float.infinity);
  Alcotest.(check int) "trunc" 3 (Value.js_to_int32_float 3.9);
  Alcotest.(check int) "trunc negative" (-3) (Value.js_to_int32_float (-3.9));
  Alcotest.(check int) "huge" 0 (Value.js_to_int32_float 1e30)

(* --- fbits --- *)

let prop_fbits_roundtrip =
  QCheck.Test.make ~name:"fbits: canon is idempotent and close" ~count:500
    QCheck.float (fun f ->
      QCheck.assume (Float.is_nan f |> not);
      let c = Fbits.canon f in
      Fbits.canon c = c
      && (f = 0.0 || Float.abs ((c -. f) /. f) < 1e-15 || c = f))

let test_fbits_specials () =
  Alcotest.(check (float 0.0)) "zero" 0.0 (Fbits.canon 0.0);
  Alcotest.(check (float 0.0)) "one" 1.0 (Fbits.canon 1.0);
  Alcotest.(check (float 0.0)) "negative" (-2.5) (Fbits.canon (-2.5));
  Alcotest.(check bool) "inf" true (Fbits.canon Float.infinity = Float.infinity);
  Alcotest.(check bool) "integers exact up to 2^51" true
    (Fbits.canon 1234567890123.0 = 1234567890123.0)

(* --- layout --- *)

let test_layout_slots () =
  (* line 0 named slots skip the class word and the two reserved words *)
  Alcotest.(check (list int)) "first five" [ 1; 4; 5; 6; 7 ]
    (List.map Layout.slot_of_prop_index [ 0; 1; 2; 3; 4 ]);
  (* property 5 begins line 1 *)
  Alcotest.(check int) "6th prop" 9 (Layout.slot_of_prop_index 5);
  Alcotest.(check int) "12th prop" 15 (Layout.slot_of_prop_index 11);
  Alcotest.(check int) "13th prop starts line 2" 17 (Layout.slot_of_prop_index 12);
  Alcotest.(check (pair int int)) "line/pos of slot 9" (1, 1)
    (Layout.line_pos_of_slot 9)

let test_layout_lines_for_props () =
  Alcotest.(check int) "0 props -> 1 line" 1 (Layout.lines_for_props 0);
  Alcotest.(check int) "5 props -> 1 line" 1 (Layout.lines_for_props 5);
  Alcotest.(check int) "6 props -> 2 lines" 2 (Layout.lines_for_props 6);
  Alcotest.(check int) "12 props -> 2 lines" 2 (Layout.lines_for_props 12);
  Alcotest.(check int) "13 props -> 3 lines" 3 (Layout.lines_for_props 13)

let test_layout_class_word () =
  let w = Layout.encode_class_word ~desc_addr:0xABCD00 ~classid:17 ~line:2 in
  Alcotest.(check int) "classid" 17 (Layout.classid_of_class_word w);
  Alcotest.(check int) "line" 2 (Layout.line_of_class_word w);
  Alcotest.(check int) "desc" 0xABCD00 (Layout.desc_addr_of_class_word w)

let test_layout_addr_decoding () =
  Alcotest.(check int) "slot pos from addr" 3 (Layout.slot_pos_of_addr 0x1018);
  Alcotest.(check int) "line base" 0x1000 (Layout.line_base_of_addr 0x1038);
  Alcotest.(check int) "line base exact" 0x1040 (Layout.line_base_of_addr 0x1040)

let prop_layout_slots_unique =
  QCheck.Test.make ~name:"layout: slots are unique and avoid reserved words"
    ~count:100 QCheck.unit (fun () ->
      let slots = List.init 40 Layout.slot_of_prop_index in
      List.length (List.sort_uniq compare slots) = 40
      && List.for_all
           (fun s ->
             let _, pos = Layout.line_pos_of_slot s in
             pos <> 0
             && not (s = Layout.elements_ptr_slot || s = Layout.elements_len_slot))
           slots)

(* --- memory --- *)

let test_mem_rw () =
  let m = Mem.create () in
  let a = Mem.allocate m ~bytes:64 ~align:64 in
  Alcotest.(check int) "aligned" 0 (a land 63);
  Mem.store m a 123;
  Mem.store m (a + 8) 456;
  Alcotest.(check int) "read back" 123 (Mem.load m a);
  Alcotest.(check int) "read back 2" 456 (Mem.load m (a + 8));
  Alcotest.(check bool) "unaligned rejected" true
    (try ignore (Mem.load m (a + 3)); false with Invalid_argument _ -> true)

let test_mem_bump_growth () =
  let m = Mem.create ~capacity_words:4 () in
  (* growth past the initial capacity must work *)
  let addrs = List.init 100 (fun _ -> Mem.allocate m ~bytes:64 ~align:64) in
  List.iteri (fun i a -> Mem.store m a i) addrs;
  List.iteri (fun i a -> Alcotest.(check int) "value" i (Mem.load m a)) addrs;
  Alcotest.(check bool) "addresses distinct" true
    (List.length (List.sort_uniq compare addrs) = 100)

(* --- hidden classes --- *)

let mk_heap () = Heap.create ()

let test_class_transitions_shared () =
  let h = mk_heap () in
  let reg = h.Heap.reg in
  let base = Hidden_class.Registry.fresh reg ~kind:Hidden_class.K_object ~name:"T" ~prop_names:[||] in
  let a1 = Hidden_class.Registry.transition reg base "x" in
  let a2 = Hidden_class.Registry.transition reg base "x" in
  Alcotest.(check bool) "transition memoized" true (a1 == a2);
  let b = Hidden_class.Registry.transition reg a1 "y" in
  Alcotest.(check int) "two props" 2 (Hidden_class.num_props b);
  Alcotest.(check (option int)) "slot of x" (Some 1) (Hidden_class.slot_of_prop b "x");
  Alcotest.(check (option int)) "slot of y" (Some 4) (Hidden_class.slot_of_prop b "y");
  Alcotest.(check (option int)) "parent link" (Some a1.Hidden_class.id)
    b.Hidden_class.parent_id

let test_class_ids_bounded () =
  let h = mk_heap () in
  let reg = h.Heap.reg in
  (* allocate classes up to the limit; the next must raise *)
  (try
     for i = 0 to 300 do
       ignore
         (Hidden_class.Registry.fresh reg ~kind:Hidden_class.K_object
            ~name:(Printf.sprintf "C%d" i) ~prop_names:[||])
     done;
     Alcotest.fail "expected Too_many_classes"
   with Hidden_class.Too_many_classes -> ());
  Alcotest.(check bool) "count within 8-bit id space" true
    (Hidden_class.Registry.class_count reg <= 256)

(* --- heap objects --- *)

let test_object_layout () =
  let h = mk_heap () in
  let base =
    Hidden_class.Registry.fresh h.Heap.reg ~kind:Hidden_class.K_object ~name:"P"
      ~prop_names:[||]
  in
  let o = Heap.alloc_object h base ~reserve_props:9 in
  let addr = Value.ptr_addr o in
  Alcotest.(check int) "64-byte aligned" 0 (addr land 63);
  (* 9 props need 2 lines; both lines carry the ClassID/Line bytes *)
  let w0 = Mem.load h.Heap.mem addr in
  let w8 = Mem.load h.Heap.mem (addr + 64) in
  Alcotest.(check int) "line 0 classid" base.Hidden_class.id
    (Layout.classid_of_class_word w0);
  Alcotest.(check int) "line 1 classid" base.Hidden_class.id
    (Layout.classid_of_class_word w8);
  Alcotest.(check int) "line 1 line no" 1 (Layout.line_of_class_word w8);
  Alcotest.(check int) "line 0 desc addr" base.Hidden_class.desc_addr
    (Layout.desc_addr_of_class_word w0)

let test_define_and_get_props () =
  let h = mk_heap () in
  let base =
    Hidden_class.Registry.fresh h.Heap.reg ~kind:Hidden_class.K_object ~name:"P"
      ~prop_names:[||]
  in
  let o = Heap.alloc_object h base ~reserve_props:4 in
  let slot, fresh = Heap.set_prop h o "x" (Value.smi 5) in
  Alcotest.(check bool) "first set transitions" true fresh;
  Alcotest.(check int) "x in slot 1" 1 slot;
  let slot2, fresh2 = Heap.set_prop h o "x" (Value.smi 6) in
  Alcotest.(check bool) "second set in place" false fresh2;
  Alcotest.(check int) "same slot" slot slot2;
  Alcotest.(check (option int)) "read x" (Some 6)
    (Option.map Value.smi_value (Heap.get_prop h o "x"));
  Alcotest.(check bool) "absent prop" true (Heap.get_prop h o "nope" = None);
  (* the object's class word was rewritten to the transitioned class *)
  let c = Heap.class_of_addr h (Value.ptr_addr o) in
  Alcotest.(check (option int)) "class has x" (Some 1) (Hidden_class.slot_of_prop c "x")

let test_object_capacity_guard () =
  let h = mk_heap () in
  let base =
    Hidden_class.Registry.fresh h.Heap.reg ~kind:Hidden_class.K_object ~name:"Tiny"
      ~prop_names:[||]
  in
  let o = Heap.alloc_object h base ~reserve_props:0 in
  (* 1 line holds 5 named props; the 6th must fail (no GC to move objects) *)
  for i = 1 to 5 do
    ignore (Heap.set_prop h o (Printf.sprintf "p%d" i) (Value.smi i))
  done;
  Alcotest.(check bool) "overflow trapped" true
    (try ignore (Heap.set_prop h o "p6" (Value.smi 6)); false
     with Heap.Runtime_error _ -> true)

let test_heap_numbers () =
  let h = mk_heap () in
  let v = Heap.number h 3.25 in
  Alcotest.(check bool) "non-integral is boxed" true (Heap.is_number h v);
  Alcotest.(check (float 1e-9)) "payload" 3.25 (Heap.number_value h v);
  Alcotest.(check bool) "integral becomes smi" true (Value.is_smi (Heap.number h 7.0));
  Alcotest.(check bool) "big integral boxed" true
    (Heap.is_number h (Heap.number h 1e18));
  Alcotest.(check bool) "huge integral not smi-corrupted" true
    (Heap.to_float h (Heap.number h 4.2e20) = Fbits.canon 4.2e20);
  (* float literals always box *)
  Alcotest.(check bool) "float_const boxes 0.0" true
    (Heap.is_number h (Heap.float_const h 0.0));
  Alcotest.(check bool) "float_const interns" true
    (Heap.float_const h 2.5 = Heap.float_const h 2.5)

let test_strings_interned () =
  let h = mk_heap () in
  let a = Heap.intern_string h "hello" in
  let b = Heap.intern_string h "hello" in
  Alcotest.(check bool) "same pointer" true (a = b);
  Alcotest.(check string) "content" "hello" (Heap.string_value h a);
  Alcotest.(check int) "tagged length in word 2" 5
    (Value.smi_value (Mem.load h.Heap.mem (Value.ptr_addr a + 16)))

let test_elements_basic () =
  let h = mk_heap () in
  let a = Heap.alloc_array h Hidden_class.E_smi in
  Alcotest.(check int) "empty" 0 (Heap.elements_len h a);
  ignore (Heap.elem_set h a 0 (Value.smi 10));
  ignore (Heap.elem_set h a 1 (Value.smi 20));
  Alcotest.(check int) "len" 2 (Heap.elements_len h a);
  Alcotest.(check int) "get 0" 10 (Value.smi_value (Heap.elem_get h a 0));
  Alcotest.(check bool) "oob reads null" true (Heap.is_null h (Heap.elem_get h a 5));
  Alcotest.(check bool) "negative write traps" true
    (try ignore (Heap.elem_set h a (-1) (Value.smi 0)); false
     with Heap.Runtime_error _ -> true)

let test_elements_kind_transitions () =
  let h = mk_heap () in
  let a = Heap.alloc_array h Hidden_class.E_smi in
  ignore (Heap.elem_set h a 0 (Value.smi 1));
  Alcotest.(check bool) "starts smi" true
    (Heap.elements_kind h a = Hidden_class.E_smi);
  (* storing a double transitions to E_double and converts smis in place *)
  ignore (Heap.elem_set h a 1 (Heap.number h 2.5));
  Alcotest.(check bool) "now double" true
    (Heap.elements_kind h a = Hidden_class.E_double);
  Alcotest.(check (float 1e-9)) "smi converted" 1.0 (Heap.to_float h (Heap.elem_get h a 0));
  Alcotest.(check (float 1e-9)) "double stored" 2.5 (Heap.to_float h (Heap.elem_get h a 1));
  (* storing an object transitions to tagged and boxes doubles *)
  let base =
    Hidden_class.Registry.fresh h.Heap.reg ~kind:Hidden_class.K_object ~name:"O"
      ~prop_names:[||]
  in
  let o = Heap.alloc_object h base ~reserve_props:0 in
  ignore (Heap.elem_set h a 2 o);
  Alcotest.(check bool) "now tagged" true
    (Heap.elements_kind h a = Hidden_class.E_tagged);
  Alcotest.(check (float 1e-9)) "double survives" 2.5
    (Heap.to_float h (Heap.elem_get h a 1));
  Alcotest.(check bool) "object element" true (Heap.elem_get h a 2 = o)

let test_elements_growth () =
  let h = mk_heap () in
  let a = Heap.alloc_array h ~capacity:2 Hidden_class.E_smi in
  for i = 0 to 99 do
    ignore (Heap.elem_set h a i (Value.smi (i * 3)))
  done;
  Alcotest.(check int) "len" 100 (Heap.elements_len h a);
  let ok = ref true in
  for i = 0 to 99 do
    if Value.smi_value (Heap.elem_get h a i) <> i * 3 then ok := false
  done;
  Alcotest.(check bool) "all values survive growth" true !ok;
  Alcotest.(check bool) "growth recorded" true (h.Heap.stats.elements_grows > 0)

let test_plain_object_elements () =
  let h = mk_heap () in
  let base =
    Hidden_class.Registry.fresh h.Heap.reg ~kind:Hidden_class.K_object
      ~name:"NodeList" ~prop_names:[||]
  in
  let o = Heap.alloc_object h base ~reserve_props:2 in
  ignore (Heap.set_prop h o "count" (Value.smi 3));
  (* NodeList pattern: elements on a plain object, lazily allocated *)
  ignore (Heap.elem_set h o 0 (Value.smi 1));
  Alcotest.(check int) "element readable" 1 (Value.smi_value (Heap.elem_get h o 0));
  Alcotest.(check bool) "plain objects use tagged elements" true
    (Heap.elements_kind h o = Hidden_class.E_tagged);
  Alcotest.(check (option int)) "named props coexist" (Some 3)
    (Option.map Value.smi_value (Heap.get_prop h o "count"))

let test_truthiness () =
  let h = mk_heap () in
  Alcotest.(check bool) "0 falsy" false (Heap.is_truthy h (Value.smi 0));
  Alcotest.(check bool) "1 truthy" true (Heap.is_truthy h (Value.smi 1));
  Alcotest.(check bool) "null falsy" false (Heap.is_truthy h h.Heap.null_v);
  Alcotest.(check bool) "false falsy" false (Heap.is_truthy h h.Heap.false_v);
  Alcotest.(check bool) "true truthy" true (Heap.is_truthy h h.Heap.true_v);
  Alcotest.(check bool) "0.0 falsy" false (Heap.is_truthy h (Heap.float_const h 0.0));
  Alcotest.(check bool) "empty string falsy" false
    (Heap.is_truthy h (Heap.intern_string h ""));
  Alcotest.(check bool) "string truthy" true
    (Heap.is_truthy h (Heap.intern_string h "x"))

let test_display () =
  let h = mk_heap () in
  Alcotest.(check string) "smi" "42" (Heap.to_display_string h (Value.smi 42));
  Alcotest.(check string) "double" "2.5"
    (Heap.to_display_string h (Heap.number h 2.5));
  Alcotest.(check string) "integral heapnum prints as int" "3"
    (Heap.to_display_string h (Heap.float_const h 3.0));
  Alcotest.(check string) "null" "null" (Heap.to_display_string h h.Heap.null_v);
  let a = Heap.alloc_array h Hidden_class.E_smi in
  ignore (Heap.elem_set h a 0 (Value.smi 1));
  ignore (Heap.elem_set h a 1 (Value.smi 2));
  Alcotest.(check string) "array" "[1,2]" (Heap.to_display_string h a)

let prop_tagging_partition =
  QCheck.Test.make ~name:"every word is smi xor pointer" ~count:500
    QCheck.(int_range (-100000) 100000)
    (fun v ->
      let w = Value.smi v in
      Value.is_smi w <> Value.is_ptr w)


(* --- additional heap/class edge cases --- *)

let test_second_line_properties () =
  let h = mk_heap () in
  let base =
    Hidden_class.Registry.fresh h.Heap.reg ~kind:Hidden_class.K_object ~name:"Big"
      ~prop_names:[||]
  in
  let o = Heap.alloc_object h base ~reserve_props:12 in
  (* fill three line-0 props and four line-1 props *)
  for i = 1 to 9 do
    ignore (Heap.set_prop h o (Printf.sprintf "p%d" i) (Value.smi (i * 11)))
  done;
  for i = 1 to 9 do
    Alcotest.(check (option int)) "read back" (Some (i * 11))
      (Option.map Value.smi_value (Heap.get_prop h o (Printf.sprintf "p%d" i)))
  done;
  (* the 6th property lives on line 1 *)
  let c = Heap.class_of_addr h (Value.ptr_addr o) in
  let slot = Option.get (Hidden_class.slot_of_prop c "p6") in
  let line, pos = Layout.line_pos_of_slot slot in
  Alcotest.(check (pair int int)) "p6 on line 1" (1, 1) (line, pos)

let test_class_words_updated_on_transition () =
  let h = mk_heap () in
  let base =
    Hidden_class.Registry.fresh h.Heap.reg ~kind:Hidden_class.K_object ~name:"T2"
      ~prop_names:[||]
  in
  let o = Heap.alloc_object h base ~reserve_props:2 in
  let id0 = Heap.classid_of h o in
  ignore (Heap.set_prop h o "x" (Value.smi 1));
  let id1 = Heap.classid_of h o in
  Alcotest.(check bool) "class changed" true (id0 <> id1);
  (* the stored class word must decode back to the new class *)
  let w = Mem.load h.Heap.mem (Value.ptr_addr o) in
  Alcotest.(check int) "class word updated" id1 (Layout.classid_of_class_word w)

let test_number_canonicalization_cases () =
  let h = mk_heap () in
  let is_smi f = Value.is_smi (Heap.number h f) in
  Alcotest.(check bool) "1.0 -> smi" true (is_smi 1.0);
  Alcotest.(check bool) "-1.0 -> smi" true (is_smi (-1.0));
  Alcotest.(check bool) "0.5 boxed" false (is_smi 0.5);
  Alcotest.(check bool) "2^31 boxed" false (is_smi 2147483648.0);
  Alcotest.(check bool) "-2^31 smi" true (is_smi (-2147483648.0));
  Alcotest.(check bool) "nan boxed" false (is_smi Float.nan);
  Alcotest.(check bool) "inf boxed" false (is_smi Float.infinity);
  (* negative zero must stay a heap number (it is not smi 0) *)
  Alcotest.(check bool) "-0.0 boxed" false (is_smi (-0.0))

let test_interned_string_layout () =
  let h = mk_heap () in
  let v = Heap.intern_string h "abc\ndef" in
  Alcotest.(check string) "content with escapes" "abc\ndef" (Heap.string_value h v);
  Alcotest.(check bool) "is_string" true (Heap.is_string h v);
  Alcotest.(check bool) "not object" false (Heap.is_object h v)

let test_elements_slow_flag () =
  let h = mk_heap () in
  let a = Heap.alloc_array h ~capacity:4 Hidden_class.E_smi in
  Alcotest.(check bool) "append extends (slow)" true (Heap.elem_set h a 0 (Value.smi 1));
  Alcotest.(check bool) "in-bounds overwrite is fast" false
    (Heap.elem_set h a 0 (Value.smi 2));
  Alcotest.(check bool) "kind transition is slow" true
    (Heap.elem_set h a 0 (Heap.number h 0.5))

let test_classid_of_every_kind () =
  let h = mk_heap () in
  let reg = h.Heap.reg in
  Alcotest.(check int) "smi" Layout.smi_classid (Heap.classid_of h (Value.smi 3));
  Alcotest.(check int) "null"
    (Hidden_class.Registry.null_class reg).Hidden_class.id
    (Heap.classid_of h h.Heap.null_v);
  Alcotest.(check int) "bool"
    (Hidden_class.Registry.boolean_class reg).Hidden_class.id
    (Heap.classid_of h h.Heap.true_v);
  Alcotest.(check int) "heapnum"
    (Hidden_class.Registry.number_class reg).Hidden_class.id
    (Heap.classid_of h (Heap.number h 0.5));
  Alcotest.(check int) "string"
    (Hidden_class.Registry.string_class reg).Hidden_class.id
    (Heap.classid_of h (Heap.intern_string h "s"))

let prop_heap_props_roundtrip =
  QCheck.Test.make ~name:"heap: random property store/load roundtrip" ~count:100
    QCheck.(list (pair (int_bound 4) (int_range (-1000) 1000)))
    (fun writes ->
      let h = mk_heap () in
      let base =
        Hidden_class.Registry.fresh h.Heap.reg ~kind:Hidden_class.K_object
          ~name:"R" ~prop_names:[||]
      in
      let o = Heap.alloc_object h base ~reserve_props:5 in
      let model = Hashtbl.create 8 in
      List.iter
        (fun (k, v) ->
          let name = Printf.sprintf "f%d" k in
          ignore (Heap.set_prop h o name (Value.smi v));
          Hashtbl.replace model name v)
        writes;
      Hashtbl.fold
        (fun name v ok ->
          ok
          && Option.map Value.smi_value (Heap.get_prop h o name) = Some v)
        model true)

let prop_elements_model =
  QCheck.Test.make ~name:"heap: elements agree with an array model" ~count:100
    QCheck.(list (pair (int_bound 30) (int_range (-500) 500)))
    (fun writes ->
      let h = mk_heap () in
      let a = Heap.alloc_array h Hidden_class.E_smi in
      let model = Array.make 64 None in
      let hi = ref 0 in
      List.iter
        (fun (i, v) ->
          ignore (Heap.elem_set h a i (Value.smi v));
          model.(i) <- Some v;
          if i >= !hi then hi := i + 1)
        writes;
      Heap.elements_len h a = !hi
      && Array.for_all
           (fun x -> x)
           (Array.mapi
              (fun i m ->
                match m with
                | Some v -> (
                  match Heap.elem_get h a i with
                  | w when Value.is_smi w -> Value.smi_value w = v
                  | _ -> false)
                | None -> true)
              model))

let () =
  Alcotest.run "vm"
    [
      ( "value",
        [
          Alcotest.test_case "smi tagging" `Quick test_smi_tagging;
          Alcotest.test_case "ptr tagging" `Quick test_ptr_tagging;
          Alcotest.test_case "int32 wrap" `Quick test_int32_wrap;
          Alcotest.test_case "js ToInt32" `Quick test_js_to_int32_float;
          QCheck_alcotest.to_alcotest prop_tagging_partition;
        ] );
      ( "fbits",
        [
          Alcotest.test_case "specials" `Quick test_fbits_specials;
          QCheck_alcotest.to_alcotest prop_fbits_roundtrip;
        ] );
      ( "layout",
        [
          Alcotest.test_case "slots" `Quick test_layout_slots;
          Alcotest.test_case "lines" `Quick test_layout_lines_for_props;
          Alcotest.test_case "class word" `Quick test_layout_class_word;
          Alcotest.test_case "addr decoding" `Quick test_layout_addr_decoding;
          QCheck_alcotest.to_alcotest prop_layout_slots_unique;
        ] );
      ( "mem",
        [
          Alcotest.test_case "read/write" `Quick test_mem_rw;
          Alcotest.test_case "bump growth" `Quick test_mem_bump_growth;
        ] );
      ( "hidden classes",
        [
          Alcotest.test_case "transitions shared" `Quick test_class_transitions_shared;
          Alcotest.test_case "id space bounded" `Quick test_class_ids_bounded;
        ] );
      ( "heap",
        [
          Alcotest.test_case "object layout" `Quick test_object_layout;
          Alcotest.test_case "props" `Quick test_define_and_get_props;
          Alcotest.test_case "capacity guard" `Quick test_object_capacity_guard;
          Alcotest.test_case "numbers" `Quick test_heap_numbers;
          Alcotest.test_case "strings" `Quick test_strings_interned;
          Alcotest.test_case "elements basic" `Quick test_elements_basic;
          Alcotest.test_case "elements kinds" `Quick test_elements_kind_transitions;
          Alcotest.test_case "elements growth" `Quick test_elements_growth;
          Alcotest.test_case "NodeList pattern" `Quick test_plain_object_elements;
          Alcotest.test_case "truthiness" `Quick test_truthiness;
          Alcotest.test_case "display" `Quick test_display;
          Alcotest.test_case "second-line properties" `Quick
            test_second_line_properties;
          Alcotest.test_case "transition class words" `Quick
            test_class_words_updated_on_transition;
          Alcotest.test_case "number canonicalization" `Quick
            test_number_canonicalization_cases;
          Alcotest.test_case "interned strings" `Quick test_interned_string_layout;
          Alcotest.test_case "elements slow flag" `Quick test_elements_slow_flag;
          Alcotest.test_case "classid of kinds" `Quick test_classid_of_every_kind;
          QCheck_alcotest.to_alcotest prop_heap_props_roundtrip;
          QCheck_alcotest.to_alcotest prop_elements_model;
        ] );
    ]
