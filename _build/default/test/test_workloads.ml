(* Integration tests over the full benchmark suite: every workload runs in
   all three modes and must produce identical checksums; workload-level
   invariants (class counts, suite structure) are pinned. *)

open Tce_workloads

let test_registry () =
  Alcotest.(check bool) "at least 28 workloads" true (List.length Workloads.all >= 28);
  Alcotest.(check bool) "selected subset is strict" true
    (List.length Workloads.selected < List.length Workloads.all
    && List.length Workloads.selected >= 24);
  Alcotest.(check bool) "names unique" true
    (let names = List.map (fun w -> w.Workload.name) Workloads.all in
     List.length (List.sort_uniq compare names) = List.length names);
  Alcotest.(check bool) "lookup works" true (Workloads.by_name "ai-astar" <> None);
  Alcotest.(check bool) "all three suites populated" true
    (List.for_all
       (fun s -> Workloads.by_suite s <> [])
       [ Workload.Octane; Workload.Sunspider; Workload.Kraken ])

let test_sources_parse () =
  List.iter
    (fun w ->
      match Tce_minijs.Parser.parse w.Workload.source with
      | _ -> ()
      | exception e ->
        Alcotest.failf "%s does not parse: %s" w.Workload.name (Printexc.to_string e))
    Workloads.all

let test_every_workload_differential () =
  List.iter
    (fun w ->
      let interp = Tce_metrics.Harness.interp_checksum w in
      let off = Tce_metrics.Harness.jit_checksum ~mechanism:false w in
      let on = Tce_metrics.Harness.jit_checksum ~mechanism:true w in
      if not (interp = off && off = on) then
        Alcotest.failf "%s diverges: interp=%s off=%s on=%s" w.Workload.name interp
          off on)
    Workloads.all

let test_class_budget () =
  (* paper §4.1: benchmarks use few hidden classes (ClassID is 8 bits) *)
  List.iter
    (fun w ->
      let r = Tce_metrics.Harness.run w in
      if r.Tce_metrics.Harness.hidden_classes > 64 then
        Alcotest.failf "%s uses %d classes" w.Workload.name
          r.Tce_metrics.Harness.hidden_classes)
    Workloads.all

let test_mechanism_never_regresses_much () =
  (* guard against the mechanism becoming a pessimization: optimized-code
     cycles with the mechanism must stay within 3% of without, for every
     selected benchmark (the paper reports all-positive speedups) *)
  List.iter
    (fun w ->
      let off, on = Tce_metrics.Harness.run_pair w in
      let imp =
        Tce_support.Stats.improvement
          ~base:(float_of_int off.Tce_metrics.Harness.opt_cycles)
          ~opt:(float_of_int on.Tce_metrics.Harness.opt_cycles)
      in
      if imp < -3.0 then
        Alcotest.failf "%s regresses by %.2f%%" w.Workload.name (-.imp))
    Workloads.selected

let test_cc_hit_rate_high () =
  (* paper §5.3.3: >99.9% hit rate at 128 entries, 2-way *)
  List.iter
    (fun w ->
      let on = snd (Tce_metrics.Harness.run_pair w) in
      if
        on.Tce_metrics.Harness.cc_accesses > 1000
        && on.Tce_metrics.Harness.cc_hit_rate < 0.999
      then
        Alcotest.failf "%s: CC hit rate %.4f" w.Workload.name
          on.Tce_metrics.Harness.cc_hit_rate)
    Workloads.selected

let test_synthetic_generators_run () =
  let src1 = Synthetic.poly_sweep ~n_classes:3 ~poly_fraction:0.01 ~objs:16 ~rounds:5 in
  let src2 = Synthetic.class_count_sweep ~n_classes:5 ~props_per_class:3 ~rounds:5 in
  List.iter
    (fun src ->
      let t = Tce_engine.Engine.of_source src in
      ignore (Tce_engine.Engine.run_main t);
      ignore (Tce_engine.Engine.call_by_name t "bench" [||]))
    [ src1; src2 ]

let () =
  Alcotest.run "workloads"
    [
      ( "structure",
        [
          Alcotest.test_case "registry" `Quick test_registry;
          Alcotest.test_case "sources parse" `Quick test_sources_parse;
          Alcotest.test_case "synthetic generators" `Quick
            test_synthetic_generators_run;
        ] );
      ( "integration",
        [
          Alcotest.test_case "differential (all modes)" `Slow
            test_every_workload_differential;
          Alcotest.test_case "class budget" `Slow test_class_budget;
          Alcotest.test_case "no large regressions" `Slow
            test_mechanism_never_regresses_much;
          Alcotest.test_case "CC hit rate" `Slow test_cc_hit_rate_high;
        ] );
    ]
