(* Lexer/parser/printer tests, including the print-parse roundtrip property. *)

open Tce_minijs

let tokens src =
  List.map fst (Lexer.tokenize src)

let test_lex_numbers () =
  Alcotest.(check bool) "int" true (tokens "42" = [ Lexer.INT 42; Lexer.EOF ]);
  Alcotest.(check bool) "float" true (tokens "4.5" = [ Lexer.FLOAT 4.5; Lexer.EOF ]);
  Alcotest.(check bool) "exponent" true
    (tokens "1e3" = [ Lexer.FLOAT 1000.0; Lexer.EOF ]);
  Alcotest.(check bool) "dot not float when not digit" true
    (tokens "a.b" = [ Lexer.IDENT "a"; Lexer.PUNCT "."; Lexer.IDENT "b"; Lexer.EOF ])

let test_lex_strings () =
  Alcotest.(check bool) "simple" true
    (tokens {|"hi"|} = [ Lexer.STRING "hi"; Lexer.EOF ]);
  Alcotest.(check bool) "escapes" true
    (tokens {|"a\nb"|} = [ Lexer.STRING "a\nb"; Lexer.EOF ]);
  Alcotest.(check bool) "single quotes" true
    (tokens "'x'" = [ Lexer.STRING "x"; Lexer.EOF ])

let test_lex_comments () =
  Alcotest.(check bool) "line comment" true
    (tokens "1 // two\n2" = [ Lexer.INT 1; Lexer.INT 2; Lexer.EOF ]);
  Alcotest.(check bool) "block comment" true
    (tokens "1 /* x */ 2" = [ Lexer.INT 1; Lexer.INT 2; Lexer.EOF ])

let test_lex_longest_match () =
  Alcotest.(check bool) ">>> is one token" true
    (tokens ">>>" = [ Lexer.PUNCT ">>>"; Lexer.EOF ]);
  Alcotest.(check bool) ">= then =" true
    (tokens ">==" = [ Lexer.PUNCT ">="; Lexer.PUNCT "="; Lexer.EOF ]);
  Alcotest.(check bool) "=== collapses to one" true
    (tokens "===" = [ Lexer.PUNCT "==="; Lexer.EOF ])

let test_lex_errors () =
  Alcotest.(check bool) "unterminated string raises" true
    (try ignore (Lexer.tokenize "\"abc") ; false with Lexer.Error _ -> true);
  Alcotest.(check bool) "unterminated comment raises" true
    (try ignore (Lexer.tokenize "/* abc") ; false with Lexer.Error _ -> true);
  Alcotest.(check bool) "stray char raises" true
    (try ignore (Lexer.tokenize "@") ; false with Lexer.Error _ -> true)

let test_lex_positions () =
  match Lexer.tokenize "a\n  b" with
  | [ (_, p1); (_, p2); _ ] ->
    Alcotest.(check int) "a line" 1 p1.Ast.line;
    Alcotest.(check int) "b line" 2 p2.Ast.line;
    Alcotest.(check int) "b col" 3 p2.Ast.col
  | _ -> Alcotest.fail "unexpected token count"

let e = Parser.parse_expr

let test_parse_precedence () =
  Alcotest.(check bool) "mul binds tighter" true
    (e "1 + 2 * 3"
    = Ast.Binop (Ast.Add, Ast.Int 1, Ast.Binop (Ast.Mul, Ast.Int 2, Ast.Int 3)));
  Alcotest.(check bool) "left assoc" true
    (e "1 - 2 - 3"
    = Ast.Binop (Ast.Sub, Ast.Binop (Ast.Sub, Ast.Int 1, Ast.Int 2), Ast.Int 3));
  Alcotest.(check bool) "parens" true
    (e "(1 + 2) * 3"
    = Ast.Binop (Ast.Mul, Ast.Binop (Ast.Add, Ast.Int 1, Ast.Int 2), Ast.Int 3));
  Alcotest.(check bool) "compare below bitor" true
    (e "a | b == c"
    = Ast.Binop (Ast.BitOr, Ast.Var "a", Ast.Binop (Ast.Eq, Ast.Var "b", Ast.Var "c")))

let test_parse_postfix () =
  Alcotest.(check bool) "prop chain" true
    (e "a.b.c" = Ast.PropGet (Ast.PropGet (Ast.Var "a", "b"), "c"));
  Alcotest.(check bool) "elem of prop" true
    (e "a.b[0]" = Ast.ElemGet (Ast.PropGet (Ast.Var "a", "b"), Ast.Int 0));
  Alcotest.(check bool) "call" true (e "f(1, 2)" = Ast.Call ("f", [ Ast.Int 1; Ast.Int 2 ]));
  Alcotest.(check bool) "new" true (e "new F(1)" = Ast.New ("F", [ Ast.Int 1 ]))

let test_parse_literals () =
  Alcotest.(check bool) "object literal" true
    (e "{a: 1, b: 2}" = Ast.ObjectLit [ ("a", Ast.Int 1); ("b", Ast.Int 2) ]);
  Alcotest.(check bool) "array literal" true
    (e "[1, 2, 3]" = Ast.ArrayLit [ Ast.Int 1; Ast.Int 2; Ast.Int 3 ]);
  Alcotest.(check bool) "ternary" true
    (e "a ? 1 : 2" = Ast.Cond (Ast.Var "a", Ast.Int 1, Ast.Int 2))

let test_parse_statements () =
  let p = Parser.parse "var x = 1; x = x + 1; if (x > 1) { print(x); } else print(0);" in
  Alcotest.(check int) "no funcs" 0 (List.length p.Ast.funcs);
  Alcotest.(check int) "three statements" 3 (List.length p.Ast.main);
  let p2 = Parser.parse "function f(a, b) { return a + b; } print(f(1, 2));" in
  Alcotest.(check int) "one func" 1 (List.length p2.Ast.funcs);
  Alcotest.(check bool) "not a ctor" true
    (not (List.hd p2.Ast.funcs).Ast.is_ctor);
  let p3 = Parser.parse "function Foo() { this.x = 1; }" in
  Alcotest.(check bool) "capitalized is ctor" true (List.hd p3.Ast.funcs).Ast.is_ctor

let test_parse_desugar () =
  let p = Parser.parse "var x = 0; x += 2; x++;" in
  match p.Ast.main with
  | [ _; Ast.Assign ("x", Ast.Binop (Ast.Add, Ast.Var "x", Ast.Int 2));
      Ast.Assign ("x", Ast.Binop (Ast.Add, Ast.Var "x", Ast.Int 1)) ] ->
    ()
  | _ -> Alcotest.fail "compound assignment not desugared as expected"

let test_parse_loops () =
  let p =
    Parser.parse
      "for (var i = 0; i < 3; i++) { if (i == 1) { continue; } if (i == 2) break; }"
  in
  (match p.Ast.main with
  | [ Ast.For (Some _, Some _, Some _, _) ] -> ()
  | _ -> Alcotest.fail "for loop shape");
  let p2 = Parser.parse "while (true) { break; }" in
  match p2.Ast.main with
  | [ Ast.While (Ast.Bool true, [ Ast.Break ]) ] -> ()
  | _ -> Alcotest.fail "while shape"

let test_parse_else_if () =
  let p = Parser.parse "if (a) { x = 1; } else if (b) { x = 2; } else { x = 3; }" in
  match p.Ast.main with
  | [ Ast.If (_, _, [ Ast.If (_, _, [ _ ]) ]) ] -> ()
  | _ -> Alcotest.fail "else-if chains"

let test_parse_errors () =
  let fails src = try ignore (Parser.parse src); false with Parser.Error _ -> true in
  Alcotest.(check bool) "missing semicolon" true (fails "var x = 1 var y = 2;");
  Alcotest.(check bool) "bad assignment target" true (fails "1 = 2;");
  Alcotest.(check bool) "unclosed paren" true (fails "print((1;");
  Alcotest.(check bool) "break outside loop is a compile error, not parse" true
    (try ignore (Parser.parse "break;") ; true with Parser.Error _ -> false)

(* --- roundtrip property: parse (print p) = p --- *)

let gen_program : Ast.program QCheck.Gen.t =
  let open QCheck.Gen in
  let ident = oneofl [ "a"; "b"; "c"; "x"; "y" ] in
  let rec expr n =
    if n <= 0 then
      oneof
        [ map (fun i -> Ast.Int i) (int_bound 100);
          map (fun f -> Ast.Float (float_of_int f +. 0.5)) (int_bound 50);
          map (fun v -> Ast.Var v) ident;
          return (Ast.Bool true); return Ast.Null ]
    else
      oneof
        [
          map3 (fun op a b -> Ast.Binop (op, a, b))
            (oneofl Ast.[ Add; Sub; Mul; Lt; Eq; BitAnd; LAnd ])
            (expr (n / 2)) (expr (n / 2));
          map2 (fun o f -> Ast.PropGet (o, f)) (expr (n / 2)) ident;
          map2 (fun a i -> Ast.ElemGet (a, i)) (expr (n / 2)) (expr (n / 2));
          map (fun a -> Ast.Unop (Ast.Neg, a)) (expr (n - 1));
          map3 (fun c a b -> Ast.Cond (c, a, b)) (expr (n / 3)) (expr (n / 3))
            (expr (n / 3));
        ]
  in
  let stmt n =
    oneof
      [
        map2 (fun v e -> Ast.Var_decl (v, e)) ident (expr n);
        map2 (fun v e -> Ast.Assign (v, e)) ident (expr n);
        map3 (fun o f v -> Ast.Prop_set (o, f, v)) (expr (n / 2)) ident (expr (n / 2));
        map (fun e -> Ast.Expr e) (expr n);
        map2 (fun c b -> Ast.If (c, [ Ast.Expr b ], [])) (expr (n / 2)) (expr (n / 2));
        map2 (fun c b -> Ast.While (c, [ Ast.Expr b ])) (expr (n / 2)) (expr (n / 2));
      ]
  in
  let* nstmts = int_range 1 5 in
  let* main = list_repeat nstmts (stmt 3) in
  (* every generated var must be bound: declare them all first *)
  let decls =
    List.map (fun v -> Ast.Var_decl (v, Ast.Int 0)) [ "a"; "b"; "c"; "x"; "y" ]
  in
  return { Ast.funcs = []; main = decls @ main }

let arbitrary_program =
  QCheck.make gen_program ~print:(fun p -> Printer.to_string p)

let prop_roundtrip =
  QCheck.Test.make ~name:"printer/parser roundtrip" ~count:300 arbitrary_program
    (fun p ->
      let printed = Printer.to_string p in
      match Parser.parse printed with
      | p' -> Ast.equal_program p p'
      | exception _ -> false)

let test_printer_specifics () =
  let check_rt src =
    let p = Parser.parse src in
    let p' = Parser.parse (Printer.to_string p) in
    Alcotest.(check bool) ("roundtrip: " ^ src) true (Ast.equal_program p p')
  in
  check_rt "var x = -3;";
  check_rt "var s = \"a\\\"b\\n\";";
  check_rt "var f = 1.5e10;";
  check_rt "for (; x < 3; ) { x++; }";
  check_rt "while (a && (b || !c)) { a = a - 1; }";
  check_rt "function F(u) { this.u = u; return this.u; }";
  check_rt "x = a[1][2].b;";
  check_rt "y = {n: 1, m: [2, 3]};"


(* --- additional parser/lexer cases --- *)

let test_parse_for_variants () =
  (match (Parser.parse "for (;;) { break; }").Ast.main with
  | [ Ast.For (None, None, None, [ Ast.Break ]) ] -> ()
  | _ -> Alcotest.fail "empty for header");
  (match (Parser.parse "for (i = 0; ; i++) { break; }").Ast.main with
  | [ Ast.For (Some (Ast.Assign _), None, Some _, _) ] -> ()
  | _ -> Alcotest.fail "assign-init, no condition");
  match (Parser.parse "for (var i = 0; i < 3; ) { i++; }").Ast.main with
  | [ Ast.For (Some (Ast.Var_decl _), Some _, None, _) ] -> ()
  | _ -> Alcotest.fail "no step"

let test_parse_compound_on_postfix () =
  (match (Parser.parse "var o = {a: 1}; o.a += 2; o.a++;").Ast.main with
  | [ _;
      Ast.Prop_set (_, "a", Ast.Binop (Ast.Add, Ast.PropGet (_, "a"), Ast.Int 2));
      Ast.Prop_set (_, "a", Ast.Binop (Ast.Add, Ast.PropGet (_, "a"), Ast.Int 1)) ] ->
    ()
  | _ -> Alcotest.fail "compound prop assignment");
  match (Parser.parse "var a = [0]; a[0] -= 1;").Ast.main with
  | [ _; Ast.Elem_set (_, Ast.Int 0, Ast.Binop (Ast.Sub, Ast.ElemGet _, Ast.Int 1)) ]
    ->
    ()
  | _ -> Alcotest.fail "compound elem assignment"

let test_parse_numbers_exponents () =
  Alcotest.(check bool) "negative exponent" true (e "1.5e-3" = Ast.Float 0.0015);
  Alcotest.(check bool) "positive exponent" true (e "2E+2" = Ast.Float 200.0);
  Alcotest.(check bool) "int stays int" true (e "007" = Ast.Int 7)

let test_parse_unary_chains () =
  Alcotest.(check bool) "double negation" true
    (e "!!a" = Ast.Unop (Ast.Not, Ast.Unop (Ast.Not, Ast.Var "a")));
  Alcotest.(check bool) "neg of neg" true
    (e "- -x" = Ast.Unop (Ast.Neg, Ast.Unop (Ast.Neg, Ast.Var "x")));
  Alcotest.(check bool) "bitnot mix" true
    (e "~-1" = Ast.Unop (Ast.BitNot, Ast.Unop (Ast.Neg, Ast.Int 1)))

let test_parse_no_method_calls () =
  (* MiniJS has no function-valued properties: o.m(...) must not parse *)
  Alcotest.(check bool) "method call rejected" true
    (try ignore (Parser.parse "o.m(1);"); false with Parser.Error _ -> true)

let test_parse_ternary_nesting () =
  Alcotest.(check bool) "right-nested ternary" true
    (e "a ? 1 : b ? 2 : 3"
    = Ast.Cond (Ast.Var "a", Ast.Int 1, Ast.Cond (Ast.Var "b", Ast.Int 2, Ast.Int 3)))

let test_iter_expr_visits_everything () =
  let p =
    Parser.parse
      "function F(a) { this.x = a[0] + f(a); } var q = new F([1, 2 * 3]);"
  in
  let count = ref 0 in
  Ast.iter_expr (fun _ -> incr count) p;
  (* enough to know the traversal reaches nested positions *)
  Alcotest.(check bool) "visits nested expressions" true (!count >= 10)

let () =
  Alcotest.run "minijs"
    [
      ( "lexer",
        [
          Alcotest.test_case "numbers" `Quick test_lex_numbers;
          Alcotest.test_case "strings" `Quick test_lex_strings;
          Alcotest.test_case "comments" `Quick test_lex_comments;
          Alcotest.test_case "longest match" `Quick test_lex_longest_match;
          Alcotest.test_case "errors" `Quick test_lex_errors;
          Alcotest.test_case "positions" `Quick test_lex_positions;
        ] );
      ( "parser",
        [
          Alcotest.test_case "precedence" `Quick test_parse_precedence;
          Alcotest.test_case "postfix" `Quick test_parse_postfix;
          Alcotest.test_case "literals" `Quick test_parse_literals;
          Alcotest.test_case "statements" `Quick test_parse_statements;
          Alcotest.test_case "desugaring" `Quick test_parse_desugar;
          Alcotest.test_case "loops" `Quick test_parse_loops;
          Alcotest.test_case "else-if" `Quick test_parse_else_if;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "for variants" `Quick test_parse_for_variants;
          Alcotest.test_case "compound postfix" `Quick test_parse_compound_on_postfix;
          Alcotest.test_case "number exponents" `Quick test_parse_numbers_exponents;
          Alcotest.test_case "unary chains" `Quick test_parse_unary_chains;
          Alcotest.test_case "no method calls" `Quick test_parse_no_method_calls;
          Alcotest.test_case "ternary nesting" `Quick test_parse_ternary_nesting;
          Alcotest.test_case "iter_expr" `Quick test_iter_expr_visits_everything;
        ] );
      ( "printer",
        [
          Alcotest.test_case "specific roundtrips" `Quick test_printer_specifics;
          QCheck_alcotest.to_alcotest prop_roundtrip;
        ] );
    ]
