(* Tests for the measurement layer: the harness protocol and the experiment
   runners produce well-formed, self-consistent rows. Uses one small
   workload to keep the suite fast. *)

open Tce_metrics

let tiny =
  Tce_workloads.Workload.make ~suite:Tce_workloads.Workload.Octane ~selected:true
    "tiny-test-workload"
    {|
function K(v) { this.v = v; }
var os = array_new(0);
for (var i = 0; i < 24; i++) { push(os, new K(i)); }
function bench() {
  var s = 0;
  for (var i = 0; i < 24; i++) { s = (s + os[i].v) & 65535; }
  return s;
}
|}

let pair = lazy (Harness.run_pair tiny)

let test_checksums_agree () =
  let off, on = Lazy.force pair in
  Alcotest.(check string) "off = on" off.Harness.checksum on.Harness.checksum;
  Alcotest.(check string) "matches interpreter" (Harness.interp_checksum tiny)
    on.Harness.checksum

let test_steady_state_subset_of_whole () =
  let off, _ = Lazy.force pair in
  Alcotest.(check bool) "whole run covers more instructions" true
    (off.Harness.whole_instrs > off.Harness.opt_instrs);
  Alcotest.(check bool) "whole cycles cover more" true
    (off.Harness.whole_cycles > float_of_int off.Harness.opt_cycles)

let test_category_sums () =
  let off, _ = Lazy.force pair in
  Alcotest.(check int) "by_cat sums to opt_instrs" off.Harness.opt_instrs
    (Array.fold_left ( + ) 0 off.Harness.by_cat);
  Alcotest.(check bool) "guards within check+tag population" true
    (off.Harness.guards_obj_load
    <= off.Harness.by_cat.(0) + off.Harness.by_cat.(1))

let test_mechanism_removes_checks () =
  let off, on = Lazy.force pair in
  Alcotest.(check bool) "fewer dynamic checks" true
    (on.Harness.by_cat.(0) < off.Harness.by_cat.(0));
  Alcotest.(check bool) "no checks appear from nowhere" true
    (on.Harness.opt_instrs <= off.Harness.opt_instrs + on.Harness.by_cat.(3))

let test_fig3_accounts_every_load () =
  let off, _ = Lazy.force pair in
  let mp, me, pp, pe = off.Harness.fig3 in
  Alcotest.(check int) "classification partitions the loads"
    off.Harness.obj_loads_total (mp + me + pp + pe);
  Alcotest.(check bool) "this workload is fully monomorphic" true
    (pp = 0 && pe = 0 && mp + me > 0)

let test_energy_consistent () =
  let off, _ = Lazy.force pair in
  Alcotest.(check (float 1e-6)) "total = dynamic + leakage" off.Harness.energy_nj
    (off.Harness.energy_dynamic_nj +. off.Harness.energy_leakage_nj);
  Alcotest.(check bool) "positive" true (off.Harness.energy_nj > 0.0)

let test_determinism () =
  (* identical runs must measure identically (the whole simulator is
     deterministic) *)
  let a = Harness.run tiny in
  let b = Harness.run tiny in
  Alcotest.(check int) "cycles deterministic" a.Harness.opt_cycles b.Harness.opt_cycles;
  Alcotest.(check int) "instrs deterministic" a.Harness.opt_instrs b.Harness.opt_instrs;
  Alcotest.(check (float 0.0)) "whole-run deterministic" a.Harness.whole_cycles
    b.Harness.whole_cycles

let test_experiment_rows_well_formed () =
  let ws = [ tiny ] in
  List.iter
    (fun (r : Experiments.fig1_row) ->
      List.iter
        (fun v ->
          Alcotest.(check bool) "percentage in range" true (v >= 0.0 && v <= 100.0))
        [ r.Experiments.checks; r.Experiments.tags; r.Experiments.math;
          r.Experiments.other_opt; r.Experiments.rest ];
      Alcotest.(check bool) "sums to ~100%" true
        (let s =
           r.Experiments.checks +. r.Experiments.tags +. r.Experiments.math
           +. r.Experiments.other_opt +. r.Experiments.rest
         in
         s > 99.0 && s < 101.0))
    (Experiments.fig1 ~workloads:ws ());
  List.iter
    (fun (r : Experiments.fig3_row) ->
      let s =
        r.Experiments.mono_prop +. r.Experiments.mono_elem
        +. r.Experiments.poly_prop +. r.Experiments.poly_elem
      in
      Alcotest.(check bool) "fig3 stacks to 100%" true (s > 99.0 && s < 101.0))
    (Experiments.fig3 ~workloads:ws ());
  List.iter
    (fun (r : Experiments.fig8_row) ->
      Alcotest.(check bool) "sane speedup range" true
        (r.Experiments.opt > -50.0 && r.Experiments.opt < 80.0))
    (Experiments.fig8 ~workloads:ws ())

let test_table1_runs () =
  let t = Table1.run () in
  (* findGraphNode must be optimized with registered speculation *)
  let fn =
    Option.get (Tce_jit.Bytecode.find_func t.Tce_engine.Engine.prog "findGraphNode")
  in
  (match fn.Tce_jit.Bytecode.opt with
  | Some code ->
    Alcotest.(check bool) "speculation deps registered" true
      (code.Tce_jit.Lir.spec_deps <> [])
  | None -> Alcotest.fail "findGraphNode not optimized");
  (* and the Class List must carry a SpeculateMap bit somewhere *)
  let any_speculation =
    List.exists
      (fun (_, _, e) ->
        Tce_support.Bytemap.popcount e.Tce_core.Class_list.speculate_map > 0)
      (Tce_core.Class_list.dump t.Tce_engine.Engine.cl)
  in
  Alcotest.(check bool) "SpeculateMap set" true any_speculation

let () =
  Alcotest.run "metrics"
    [
      ( "harness",
        [
          Alcotest.test_case "checksums agree" `Quick test_checksums_agree;
          Alcotest.test_case "whole vs steady" `Quick test_steady_state_subset_of_whole;
          Alcotest.test_case "category sums" `Quick test_category_sums;
          Alcotest.test_case "mechanism removes checks" `Quick
            test_mechanism_removes_checks;
          Alcotest.test_case "fig3 partitions loads" `Quick
            test_fig3_accounts_every_load;
          Alcotest.test_case "energy consistent" `Quick test_energy_consistent;
          Alcotest.test_case "determinism" `Quick test_determinism;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "rows well-formed" `Quick test_experiment_rows_well_formed;
          Alcotest.test_case "table 1" `Quick test_table1_runs;
        ] );
    ]
