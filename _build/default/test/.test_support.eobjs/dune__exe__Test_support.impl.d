test/test_support.ml: Alcotest Array Bytemap List Prng QCheck QCheck_alcotest Stats String Table Tce_support
