test/test_engine.ml: Alcotest Option Printexc QCheck QCheck_alcotest Tce_core Tce_engine Tce_jit Tce_support Tce_vm Tce_workloads
