test/test_metrics.ml: Alcotest Array Experiments Harness Lazy List Option Table1 Tce_core Tce_engine Tce_jit Tce_metrics Tce_support Tce_workloads
