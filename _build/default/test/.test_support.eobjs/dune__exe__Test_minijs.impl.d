test/test_minijs.ml: Alcotest Ast Lexer List Parser Printer QCheck QCheck_alcotest Tce_minijs
