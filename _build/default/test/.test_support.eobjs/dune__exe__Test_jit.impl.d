test/test_jit.ml: Alcotest Array Bc_compile Bytecode Categories Feedback Inline Lir List Option Printf Tce_engine Tce_jit Tce_minijs Tce_vm
