test/test_vm.ml: Alcotest Array Fbits Float Hashtbl Heap Hidden_class Layout List Mem Option Printf QCheck QCheck_alcotest Tce_vm Value
