test/test_core.ml: Alcotest Class_cache Class_list List Oracle QCheck QCheck_alcotest Tce_core Tce_support Tce_vm
