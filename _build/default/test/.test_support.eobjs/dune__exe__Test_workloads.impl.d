test/test_workloads.ml: Alcotest List Printexc Synthetic Tce_engine Tce_metrics Tce_minijs Tce_support Tce_workloads Workload Workloads
