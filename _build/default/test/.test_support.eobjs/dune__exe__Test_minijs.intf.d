test/test_minijs.mli:
