test/test_machine.ml: Alcotest Array Branch Cache Config Costs Counters Energy List Machine Option Printf Tce_core Tce_engine Tce_jit Tce_machine Tce_minijs Tce_vm Tlb
