(* Unit and property tests for the support library. *)

open Tce_support

let test_bytemap_basic () =
  Alcotest.(check bool) "empty has no bits" false (Bytemap.get Bytemap.empty 3);
  Alcotest.(check bool) "full has all bits" true (Bytemap.get Bytemap.full 7);
  let m = Bytemap.set Bytemap.empty 2 in
  Alcotest.(check bool) "set bit 2" true (Bytemap.get m 2);
  Alcotest.(check bool) "bit 3 still clear" false (Bytemap.get m 3);
  let m = Bytemap.clear Bytemap.full 0 in
  Alcotest.(check bool) "cleared bit 0" false (Bytemap.get m 0);
  Alcotest.(check int) "popcount full" 8 (Bytemap.popcount Bytemap.full);
  Alcotest.(check int) "popcount empty" 0 (Bytemap.popcount Bytemap.empty)

let test_bytemap_bounds () =
  Alcotest.check_raises "bit 8 rejected" (Invalid_argument "Bytemap: bit out of range")
    (fun () -> ignore (Bytemap.get Bytemap.empty 8));
  Alcotest.check_raises "negative bit rejected"
    (Invalid_argument "Bytemap: bit out of range") (fun () ->
      ignore (Bytemap.set Bytemap.empty (-1)));
  Alcotest.check_raises "of_int range" (Invalid_argument "Bytemap.of_int: out of range")
    (fun () -> ignore (Bytemap.of_int 256))

let test_bytemap_render () =
  Alcotest.(check string) "render full" "11111111" (Bytemap.to_bits Bytemap.full);
  Alcotest.(check string) "render one bit" "00000100"
    (Bytemap.to_bits (Bytemap.set Bytemap.empty 2))

let prop_bytemap_set_get =
  QCheck.Test.make ~name:"bytemap: get after set" ~count:200
    QCheck.(pair (int_bound 7) (int_bound 255))
    (fun (i, seed) ->
      let m = Bytemap.of_int seed in
      Bytemap.get (Bytemap.set m i) i
      && (not (Bytemap.get (Bytemap.clear m i) i))
      && Bytemap.to_int (Bytemap.set (Bytemap.clear m i) i)
         = Bytemap.to_int (Bytemap.set m i))

let prop_bytemap_popcount =
  QCheck.Test.make ~name:"bytemap: popcount = number of set bits" ~count:200
    QCheck.(int_bound 255)
    (fun seed ->
      let m = Bytemap.of_int seed in
      Bytemap.popcount m
      = List.length (List.filter (Bytemap.get m) [ 0; 1; 2; 3; 4; 5; 6; 7 ]))

let test_prng_deterministic () =
  let a = Prng.create 7 and b = Prng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Prng.int a 1000) (Prng.int b 1000)
  done

let test_prng_copy () =
  let a = Prng.create 3 in
  ignore (Prng.int a 10);
  let b = Prng.copy a in
  Alcotest.(check int) "copy continues the stream" (Prng.int a 1 + Prng.int a 100000)
    (Prng.int b 1 + Prng.int b 100000)

let prop_prng_bounds =
  QCheck.Test.make ~name:"prng: int stays in bounds" ~count:500
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let rng = Prng.create seed in
      let v = Prng.int rng bound in
      v >= 0 && v < bound)

let prop_prng_float_unit =
  QCheck.Test.make ~name:"prng: float in [0,1)" ~count:500 QCheck.small_int
    (fun seed ->
      let rng = Prng.create seed in
      let f = Prng.float rng in
      f >= 0.0 && f < 1.0)

let test_prng_shuffle_permutes () =
  let rng = Prng.create 11 in
  let a = Array.init 50 (fun i -> i) in
  Prng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "shuffle is a permutation"
    (Array.init 50 (fun i -> i))
    sorted

let test_stats_mean_geomean () =
  Alcotest.(check (float 1e-9)) "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ]);
  Alcotest.(check (float 1e-9)) "mean empty" 0.0 (Stats.mean []);
  Alcotest.(check (float 1e-9)) "geomean" 2.0 (Stats.geomean [ 1.0; 4.0 ]);
  Alcotest.(check (float 1e-9)) "geomean skips nonpositive" 2.0
    (Stats.geomean [ 1.0; 4.0; 0.0; -3.0 ])

let test_stats_improvement () =
  Alcotest.(check (float 1e-9)) "20% faster" 20.0
    (Stats.improvement ~base:100.0 ~opt:80.0);
  Alcotest.(check (float 1e-9)) "slower is negative" (-10.0)
    (Stats.improvement ~base:100.0 ~opt:110.0);
  Alcotest.(check (float 1e-9)) "zero base" 0.0 (Stats.improvement ~base:0.0 ~opt:5.0)

let test_stats_summary () =
  let s = Stats.summarize [ 1.0; 2.0; 3.0; 4.0 ] in
  Alcotest.(check int) "n" 4 s.Stats.n;
  Alcotest.(check (float 1e-9)) "mean" 2.5 s.Stats.mean;
  Alcotest.(check (float 1e-9)) "min" 1.0 s.Stats.min;
  Alcotest.(check (float 1e-9)) "max" 4.0 s.Stats.max

let test_table_render () =
  let out = Table.render ~headers:[ "a"; "b" ] [ [ "x"; "1" ]; [ "yy"; "22" ] ] in
  Alcotest.(check bool) "contains header" true
    (String.length out > 0 && String.sub out 0 1 = "a");
  Alcotest.(check bool) "contains row" true
    (let rec contains i =
       i + 2 <= String.length out && (String.sub out i 2 = "yy" || contains (i + 1))
     in
     contains 0)

let test_table_bars () =
  let out = Table.bars ~width:10 [ ("x", 5.0); ("y", 10.0) ] in
  (* y gets the full width, x half *)
  Alcotest.(check bool) "has bars" true (String.contains out '#')

let () =
  Alcotest.run "support"
    [
      ( "bytemap",
        [
          Alcotest.test_case "basic" `Quick test_bytemap_basic;
          Alcotest.test_case "bounds" `Quick test_bytemap_bounds;
          Alcotest.test_case "render" `Quick test_bytemap_render;
          QCheck_alcotest.to_alcotest prop_bytemap_set_get;
          QCheck_alcotest.to_alcotest prop_bytemap_popcount;
        ] );
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "copy" `Quick test_prng_copy;
          Alcotest.test_case "shuffle" `Quick test_prng_shuffle_permutes;
          QCheck_alcotest.to_alcotest prop_prng_bounds;
          QCheck_alcotest.to_alcotest prop_prng_float_unit;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean/geomean" `Quick test_stats_mean_geomean;
          Alcotest.test_case "improvement" `Quick test_stats_improvement;
          Alcotest.test_case "summary" `Quick test_stats_summary;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "bars" `Quick test_table_bars;
        ] );
    ]
