module E = Tce_engine.Engine

let () =
  let wname = Sys.argv.(1) in
  let w = Option.get (Tce_workloads.Workloads.by_name wname) in
  let t = E.of_source w.Tce_workloads.Workload.source in
  E.set_measuring t false;
  ignore (E.run_main t);
  for _ = 1 to 9 do ignore (E.call_by_name t "bench" [||]) done;
  let reg = t.E.heap.Tce_vm.Heap.reg in
  let class_name id =
    if id = 0xff then "SMI"
    else
      match Tce_vm.Hidden_class.Registry.find reg id with
      | Some c -> c.Tce_vm.Hidden_class.name
      | None -> Printf.sprintf "?%d" id
  in
  List.iter
    (fun (cid, line, e) ->
      Fmt.pr "%a@."
        (Tce_core.Class_list.pp_entry ~class_name ~fn_name:string_of_int)
        (cid, line, e))
    (Tce_core.Class_list.dump t.E.cl)
