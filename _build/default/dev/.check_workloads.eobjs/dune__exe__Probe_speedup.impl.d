dev/probe_speedup.ml: Array List Printexc Printf Sys Tce_metrics Tce_support Tce_workloads
