dev/dump_cl.mli:
