dev/probe_mandreel.ml: Array Option Printf Sys Tce_engine Tce_machine Tce_workloads
