dev/check_workloads.mli:
