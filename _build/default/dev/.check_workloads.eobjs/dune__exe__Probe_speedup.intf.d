dev/probe_speedup.mli:
