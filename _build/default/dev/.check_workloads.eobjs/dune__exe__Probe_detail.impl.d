dev/probe_detail.ml: Array Option Printf Sys Tce_metrics Tce_workloads
