dev/probe_mandreel.mli:
