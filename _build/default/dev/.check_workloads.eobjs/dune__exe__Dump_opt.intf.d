dev/dump_opt.mli:
