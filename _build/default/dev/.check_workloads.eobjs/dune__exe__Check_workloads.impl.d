dev/check_workloads.ml: List Printexc Printf Tce_metrics Tce_workloads
