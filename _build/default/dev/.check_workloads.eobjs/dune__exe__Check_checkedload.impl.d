dev/check_checkedload.ml: List Printf Tce_engine Tce_metrics Tce_workloads
