dev/probe_detail.mli:
