dev/dump_opt.ml: Array Fmt Option Printf Sys Tce_engine Tce_jit Tce_workloads
