dev/check_checkedload.mli:
