dev/dump_cl.ml: Array Fmt List Option Printf Sys Tce_core Tce_engine Tce_vm Tce_workloads
