module E = Tce_engine.Engine
let run mech =
  let w = Option.get (Tce_workloads.Workloads.by_name Sys.argv.(1)) in
  let config = { E.default_config with E.mechanism = mech } in
  let t = E.of_source ~config w.Tce_workloads.Workload.source in
  E.set_measuring t false;
  ignore (E.run_main t);
  for _ = 1 to 9 do ignore (E.call_by_name t "bench" [||]) done;
  E.reset_measurement t;
  let c0 = E.opt_cycles t in
  E.set_measuring t true;
  ignore (E.call_by_name t "bench" [||]);
  let m = t.E.mach in
  Printf.printf "mech=%b cycles=%d br=%d mispred=%d l1d_acc=%d l1d_miss=%d l2_miss=%d dtlb_miss=%d\n"
    mech (E.opt_cycles t - c0)
    m.Tce_machine.Machine.bp.Tce_machine.Branch.stats.branches
    m.Tce_machine.Machine.bp.Tce_machine.Branch.stats.mispredicts
    m.Tce_machine.Machine.l1d.Tce_machine.Cache.stats.accesses
    m.Tce_machine.Machine.l1d.Tce_machine.Cache.stats.misses
    m.Tce_machine.Machine.l2.Tce_machine.Cache.stats.misses
    m.Tce_machine.Machine.dtlb.Tce_machine.Tlb.stats.misses
let () = run false; run true
