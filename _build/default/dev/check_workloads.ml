(* Dev tool: differential-check every workload across tiers and configs. *)
let () =
  let ok = ref 0 and bad = ref 0 in
  List.iter
    (fun (w : Tce_workloads.Workload.t) ->
      let name = w.Tce_workloads.Workload.name in
      match
        let interp = Tce_metrics.Harness.interp_checksum w in
        let off = Tce_metrics.Harness.jit_checksum ~mechanism:false w in
        let on = Tce_metrics.Harness.jit_checksum ~mechanism:true w in
        (interp, off, on)
      with
      | interp, off, on when interp = off && off = on ->
        incr ok;
        Printf.printf "OK   %-36s %s\n%!" name interp
      | interp, off, on ->
        incr bad;
        Printf.printf "FAIL %-36s interp=%s off=%s on=%s\n%!" name interp off on
      | exception e ->
        incr bad;
        Printf.printf "ERR  %-36s %s\n%!" name (Printexc.to_string e))
    Tce_workloads.Workloads.all;
  Printf.printf "=== %d ok, %d bad ===\n" !ok !bad;
  if !bad > 0 then exit 1
