(* Dump optimized LIR of a function in a workload after warmup. *)
module E = Tce_engine.Engine

let () =
  let wname = Sys.argv.(1) in
  let fname = Sys.argv.(2) in
  let mech = Array.length Sys.argv < 4 || Sys.argv.(3) <> "off" in
  let w = Option.get (Tce_workloads.Workloads.by_name wname) in
  let config = { E.default_config with E.mechanism = mech } in
  let t = E.of_source ~config w.Tce_workloads.Workload.source in
  E.set_measuring t false;
  ignore (E.run_main t);
  for _ = 1 to 9 do ignore (E.call_by_name t "bench" [||]) done;
  (match Tce_jit.Bytecode.find_func t.E.prog fname with
  | Some fn -> (
    match fn.Tce_jit.Bytecode.opt with
    | Some code ->
      let counts = Array.make 5 0 in
      Array.iter
        (fun (i : Tce_jit.Lir.inst) ->
          counts.(Tce_jit.Categories.index i.Tce_jit.Lir.cat) <-
            counts.(Tce_jit.Categories.index i.Tce_jit.Lir.cat) + 1)
        code.Tce_jit.Lir.code;
      Printf.printf "static: chk=%d tag=%d math=%d cc=%d other=%d total=%d\n"
        counts.(0) counts.(1) counts.(2) counts.(3) counts.(4)
        (Array.length code.Tce_jit.Lir.code);
      if Array.length Sys.argv > 4 then Fmt.pr "%a@." Tce_jit.Lir.pp_func code
    | None -> print_endline "not optimized")
  | None -> print_endline "no such function")
