let () =
  let open Tce_metrics.Harness in
  let names =
    match Array.to_list Sys.argv with _ :: rest when rest <> [] -> rest | _ -> []
  in
  let ws =
    if names = [] then Tce_workloads.Workloads.selected
    else List.filter_map Tce_workloads.Workloads.by_name names
  in
  Printf.printf "%-30s %9s %9s %7s | %8s %8s | %6s %5s %5s | %7s %7s\n" "benchmark"
    "cyc-off" "cyc-on" "opt%" "chk-off" "chk-on" "ccops" "deop" "ccexc" "cchit%" "guards";
  List.iter
    (fun w ->
      match run_pair w with
      | off, on ->
        let opt_imp =
          Tce_support.Stats.improvement
            ~base:(float_of_int off.opt_cycles)
            ~opt:(float_of_int on.opt_cycles)
        in
        Printf.printf "%-30s %9d %9d %7.2f | %8d %8d | %6d %5d %5d | %7.2f %7d\n%!"
          w.Tce_workloads.Workload.name off.opt_cycles on.opt_cycles opt_imp
          off.by_cat.(0) on.by_cat.(0) on.by_cat.(3) on.deopts on.cc_exceptions
          (100.0 *. on.cc_hit_rate) on.guards_obj_load
      | exception e ->
        Printf.printf "%-30s ERR %s\n%!" w.Tce_workloads.Workload.name
          (Printexc.to_string e))
    ws
