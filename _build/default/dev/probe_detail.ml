let () =
  let name = Sys.argv.(1) in
  let w = Option.get (Tce_workloads.Workloads.by_name name) in
  let off, on = Tce_metrics.Harness.run_pair w in
  let pr (r : Tce_metrics.Harness.result) tag =
    Printf.printf
      "%s: cycles=%d instrs=%d chk=%d tag=%d math=%d cc=%d other=%d base=%d \
       loads=%d stores=%d br=%d fp=%d deopts=%d exc=%d l1d=%.4f l2=%.4f\n"
      tag r.opt_cycles r.opt_instrs r.by_cat.(0) r.by_cat.(1) r.by_cat.(2)
      r.by_cat.(3) r.by_cat.(4) r.baseline_instrs r.opt_loads r.opt_stores
      r.opt_branches r.opt_fp r.deopts r.cc_exceptions r.l1d_hit_rate
      r.l2_hit_rate
  in
  pr off "OFF";
  pr on "ON "
