(* Differential check for the checked-load configuration. *)
module E = Tce_engine.Engine
let () =
  let bad = ref 0 in
  List.iter
    (fun (w : Tce_workloads.Workload.t) ->
      let interp = Tce_metrics.Harness.interp_checksum w in
      let cl =
        (Tce_metrics.Harness.run
           ~config:{ E.default_config with E.mechanism = false; checked_load = true }
           w).Tce_metrics.Harness.checksum
      in
      if interp <> cl then begin
        incr bad;
        Printf.printf "FAIL %s interp=%s checked-load=%s\n%!"
          w.Tce_workloads.Workload.name interp cl
      end)
    Tce_workloads.Workloads.all;
  Printf.printf "checked-load differential: %d failures\n" !bad;
  if !bad > 0 then exit 1
