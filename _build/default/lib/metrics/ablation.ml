(** Ablation studies beyond the paper's headline results (DESIGN.md §4,
    Ablations A and B). *)

open Tce_support
module E = Tce_engine.Engine
module CC = Tce_core.Class_cache

(** Ablation A: Class Cache geometry sweep. The paper picks 128 entries,
    2-way because it gives > 99.9% hit rate; this sweep reproduces that
    design point. Synthetic class-count workloads stress capacity. *)
let cc_geometry_sweep () =
  print_endline
    "Ablation A — Class Cache geometry vs hit rate (128x2 is the paper's pick)";
  let geometries =
    [ (8, 2); (16, 2); (32, 2); (64, 2); (128, 1); (128, 2); (128, 4); (256, 2) ]
  in
  (* [class_count_sweep] creates ~(props+1) hidden classes per constructor
     (the transition chain), so these land at roughly 24, 72 and 144 Class
     List entries — the last exceeds the 128-entry Class Cache. *)
  let workload_srcs =
    [
      ("classes-8", Tce_workloads.Synthetic.class_count_sweep ~n_classes:8
                      ~props_per_class:2 ~rounds:60);
      ("classes-24", Tce_workloads.Synthetic.class_count_sweep ~n_classes:24
                       ~props_per_class:2 ~rounds:60);
      ("classes-48", Tce_workloads.Synthetic.class_count_sweep ~n_classes:48
                       ~props_per_class:2 ~rounds:60);
      ("ai-astar",
       (Option.get (Tce_workloads.Workloads.by_name "ai-astar")).Tce_workloads.Workload.source);
    ]
  in
  let rows =
    List.map
      (fun (name, src) ->
        name
        :: List.map
             (fun (entries, ways) ->
               let config =
                 { E.default_config with E.cc_config = { CC.entries; ways } }
               in
               let t = E.of_source ~config src in
               E.set_measuring t false;
               ignore (E.run_main t);
               for _ = 1 to 9 do
                 ignore (E.call_by_name t "bench" [||])
               done;
               E.reset_measurement t;
               E.set_measuring t true;
               ignore (E.call_by_name t "bench" [||]);
               Printf.sprintf "%.3f%%" (100.0 *. CC.hit_rate t.E.cc))
             geometries)
      workload_srcs
  in
  print_string
    (Table.render
       ~headers:
         ("workload"
         :: List.map (fun (e, w) -> Printf.sprintf "%dx%dw" e w) geometries)
       rows);
  print_newline ()

(** Ablation B: polymorphism-degree sweep — how misspeculation exceptions,
    deopts and speedup degrade as a growing fraction of stores breaks
    monomorphism. Measured over the *whole run* (no warm-up window): the
    ValidMap is one-way, so in steady state a profile breaks at most once —
    the cost of breakage is paid during the transient this measures. *)
let poly_sweep () =
  print_endline
    "Ablation B — speedup and exceptions vs fraction of profile-breaking stores";
  print_endline "(whole-run measurement: breakage costs are transient by design)";
  let fractions = [ 0.0; 0.0001; 0.001; 0.01; 0.1 ] in
  let rows =
    List.map
      (fun f ->
        let src =
          Tce_workloads.Synthetic.poly_sweep ~n_classes:4 ~poly_fraction:f
            ~objs:64 ~rounds:60
        in
        let measure mechanism =
          let config = { E.default_config with E.mechanism } in
          let t = E.of_source ~config src in
          E.set_measuring t true;
          ignore (E.run_main t);
          for _ = 1 to 10 do
            ignore (E.call_by_name t "bench" [||])
          done;
          ( E.opt_cycles t + int_of_float (E.baseline_cycles t),
            t.E.counters.Tce_machine.Counters.cc_exception_deopts,
            t.E.counters.Tce_machine.Counters.deopts )
        in
        let off, _, _ = measure false in
        let on, exc, deopts = measure true in
        [
          Printf.sprintf "%.4f" f;
          string_of_int off;
          string_of_int on;
          Table.pct (Stats.improvement ~base:(float_of_int off) ~opt:(float_of_int on));
          string_of_int exc;
          string_of_int deopts;
        ])
      fractions
  in
  print_string
    (Table.render
       ~headers:
         [ "poly fraction"; "cycles off"; "cycles on"; "speedup"; "cc-exceptions";
           "deopts" ]
       rows);
  print_newline ()

(** Ablation C: movClassIDArray hoisting (paper §4.2.1.3 — "moved out of
    the loop in many cases", 4 special registers). Compared on workloads
    whose element stores cannot be proven safe (the value comes from a
    global cell). *)
let hoisting_sweep () =
  print_endline "Ablation C — movClassIDArray loop hoisting on/off";
  (* the stored value comes from a global cell holding a K object: its
     class is constant at run time (the array's profile stays valid, so
     special stores are emitted) but statically opaque (so the compiler
     cannot prove them safe away) *)
  let mk_src n =
    Printf.sprintf
      {|
function K(v) { this.v = v; }
var box = {arr: array_new(0)};
var gk = new K(7);
function setup() {
  for (var i = 0; i < %d; i++) { push(box.arr, new K(i)); }
}
setup();
function bench() {
  var a = box.arr;
  var n = a.length;
  var acc = 0;
  for (var r = 0; r < 24; r++) {
    for (var i = 0; i < n; i++) {
      a[i] = gk;
      acc = (acc + a[i].v) & 268435455;
    }
  }
  return acc;
}
|}
      n
  in
  let measure ~hoisting src =
    let config = { E.default_config with E.hoisting } in
    let t = E.of_source ~config src in
    E.set_measuring t false;
    ignore (E.run_main t);
    for _ = 1 to 9 do
      ignore (E.call_by_name t "bench" [||])
    done;
    E.reset_measurement t;
    let c0 = E.opt_cycles t in
    E.set_measuring t true;
    ignore (E.call_by_name t "bench" [||]);
    ( E.opt_cycles t - c0,
      Tce_machine.Counters.cat t.E.counters Tce_jit.Categories.C_ccop )
  in
  let rows =
    List.map
      (fun n ->
        let src = mk_src n in
        let c_off, ops_off = measure ~hoisting:false src in
        let c_on, ops_on = measure ~hoisting:true src in
        [
          Printf.sprintf "elem-stores-%d" n;
          string_of_int c_off;
          string_of_int c_on;
          Table.pct
            (Stats.improvement ~base:(float_of_int c_off) ~opt:(float_of_int c_on));
          string_of_int ops_off;
          string_of_int ops_on;
        ])
      [ 32; 128; 512 ]
  in
  print_string
    (Table.render
       ~headers:
         [ "workload"; "cycles unhoisted"; "cycles hoisted"; "gain";
           "ccops unhoisted"; "ccops hoisted" ]
       rows);
  print_newline ()

(** Ablation D: the related-work comparison (paper §2) — Checked Load
    (Anderson et al.) performs property-load checks implicitly in hardware
    but never removes them; the Class Cache removes the checks outright
    (and also covers SMI/Non-SMI and untag guards). *)
let checked_load_comparison () =
  print_endline
    "Ablation D — Checked Load (implicit checks) vs Class Cache (removed checks)";
  let measure w config =
    let r = Harness.run ~config w in
    (r.Harness.opt_cycles, r.Harness.by_cat.(0), r.Harness.opt_instrs)
  in
  let rows =
    List.filter_map
      (fun name ->
        Option.map
          (fun w ->
            let base_cfg = { E.default_config with E.mechanism = false } in
            let cl_cfg = { base_cfg with E.checked_load = true } in
            let cc_cfg = E.default_config in
            let c0, k0, _ = measure w base_cfg in
            let c1, k1, _ = measure w cl_cfg in
            let c2, k2, _ = measure w cc_cfg in
            [
              name;
              string_of_int c0;
              Printf.sprintf "%s (chk %d)"
                (Table.pct (Stats.improvement ~base:(float_of_int c0) ~opt:(float_of_int c1)))
                k1;
              Printf.sprintf "%s (chk %d)"
                (Table.pct (Stats.improvement ~base:(float_of_int c0) ~opt:(float_of_int c2)))
                k2;
              string_of_int k0;
            ])
          (Tce_workloads.Workloads.by_name name))
      [ "ai-astar"; "richards"; "deltablue"; "box2d"; "3d-cube" ]
  in
  print_string
    (Table.render
       ~headers:
         [ "benchmark"; "cycles base"; "checked-load speedup"; "class-cache speedup";
           "checks base" ]
       rows);
  print_endline
    "(Checked Load fuses only property-load map checks; the Class Cache also\n\
     removes SMI/Non-SMI checks and untag guards — paper §2 vs §4.3)\n"
