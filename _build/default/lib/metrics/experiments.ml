(** Experiment runners: one per table/figure of the paper (see DESIGN.md §4
    for the index). Each prints the same rows/series the paper reports and
    returns the numbers for EXPERIMENTS.md / tests. *)

open Tce_support
open Tce_workloads
module E = Tce_engine.Engine

let pct = Table.pct

let suite_order = [ Workload.Octane; Workload.Sunspider; Workload.Kraken ]

(** Group results and append per-suite averages, like the paper's
    "<suite> average" bars. *)
let with_suite_averages rows value_of label_of =
  List.concat_map
    (fun suite ->
      let in_suite =
        List.filter (fun r -> (label_of r : Workload.t).Workload.suite = suite) rows
      in
      if in_suite = [] then []
      else
        let avg =
          Stats.mean (List.map value_of in_suite)
        in
        List.map (fun r -> ((label_of r).Workload.name, value_of r)) in_suite
        @ [ (Workload.suite_name suite ^ " average", avg) ])
    suite_order

(* --- caching of runs (each figure reuses the same measurements) --- *)

type cached = {
  mutable pairs : (string * (Harness.result * Harness.result)) list;
}

let cache = { pairs = [] }

let run_pair ?(config = E.default_config) w =
  match List.assoc_opt w.Workload.name cache.pairs with
  | Some p -> p
  | None ->
    let p = Harness.run_pair ~config w in
    cache.pairs <- (w.Workload.name, p) :: cache.pairs;
    p

let off_result w = fst (run_pair w)
let on_result w = snd (run_pair w)

(* --- Figure 1: breakdown of dynamic instructions --- *)

type fig1_row = {
  f1_name : string;
  checks : float;
  tags : float;
  math : float;
  other_opt : float;
  rest : float;  (** non-optimized tier ("Rest of Code") *)
}

(** Dynamic instruction breakdown over the whole run (mechanism OFF — the
    characterization of the baseline engine, paper Fig. 1; our programs
    reach full optimization faster than the paper's, so "Rest of Code" is
    the warm-up/runtime share of the whole run). *)
let fig1 ?(workloads = Workloads.all) () : fig1_row list =
  List.map
    (fun w ->
      let r = off_result w in
      let total = float_of_int r.Harness.whole_instrs in
      let c i = 100.0 *. float_of_int r.Harness.whole_by_cat.(i) /. Float.max total 1.0 in
      let opt = Array.fold_left ( + ) 0 r.Harness.whole_by_cat in
      {
        f1_name = w.Workload.name;
        checks = c 0;
        tags = c 1;
        math = c 2;
        other_opt = c 4 +. c 3;
        rest =
          100.0
          *. float_of_int (r.Harness.whole_instrs - opt)
          /. Float.max total 1.0;
      })
    workloads

let print_fig1 () =
  let rows = fig1 () in
  print_endline
    "Figure 1 — Breakdown of dynamic instructions (steady state, mechanism off)";
  print_string
    (Table.render
       ~headers:[ "benchmark"; "Checks"; "Tags/Untags"; "Math"; "OtherOpt"; "Rest" ]
       (List.map
          (fun r ->
            [ r.f1_name; pct r.checks; pct r.tags; pct r.math; pct r.other_opt;
              pct r.rest ])
          rows));
  let sel = List.map (fun (r : fig1_row) -> r.checks +. r.tags +. r.math) rows in
  Printf.printf
    "overhead categories (Checks+Tags+Math), mean over all benchmarks: %s\n\n"
    (pct (Stats.mean sel))

(* --- Figure 2: check overhead after object loads --- *)

type fig2_row = { f2_name : string; whole_app : float; opt_only : float }

(** Overhead of checking + untag-guard operations that verify values
    obtained from object property / elements loads. *)
let fig2 ?(workloads = Workloads.selected) () : fig2_row list =
  List.map
    (fun w ->
      let r = off_result w in
      {
        f2_name = w.Workload.name;
        (* whole application: guard share of the entire run *)
        whole_app =
          100.0
          *. float_of_int r.Harness.whole_guards
          /. Float.max (float_of_int r.Harness.whole_instrs) 1.0;
        (* optimized code only: steady state *)
        opt_only =
          100.0
          *. float_of_int r.Harness.guards_obj_load
          /. Float.max (float_of_int r.Harness.opt_instrs) 1.0;
      })
    workloads

let print_fig2 () =
  let rows = fig2 () in
  print_endline
    "Figure 2 — Checking/untagging overhead after object load accesses (mechanism off)";
  print_string
    (Table.render
       ~headers:[ "benchmark"; "whole app"; "optimized code" ]
       (List.map (fun r -> [ r.f2_name; pct r.whole_app; pct r.opt_only ]) rows));
  Printf.printf "mean: whole app %s, optimized code %s\n\n"
    (pct (Stats.mean (List.map (fun r -> r.whole_app) rows)))
    (pct (Stats.mean (List.map (fun r -> r.opt_only) rows)))

(* --- Figure 3: object loads hitting monomorphic slots --- *)

type fig3_row = {
  f3_name : string;
  mono_prop : float;
  mono_elem : float;
  poly_prop : float;
  poly_elem : float;
}

let fig3 ?(workloads = Workloads.selected) () : fig3_row list =
  List.map
    (fun w ->
      let r = off_result w in
      let mp, me, pp, pe = r.Harness.fig3 in
      let total = float_of_int (max 1 (mp + me + pp + pe)) in
      let p x = 100.0 *. float_of_int x /. total in
      {
        f3_name = w.Workload.name;
        mono_prop = p mp;
        mono_elem = p me;
        poly_prop = p pp;
        poly_elem = p pe;
      })
    workloads

let print_fig3 () =
  let rows = fig3 () in
  print_endline
    "Figure 3 — Object load accesses to monomorphic properties / elements arrays";
  print_string
    (Table.render
       ~headers:
         [ "benchmark"; "mono props"; "mono elems"; "poly props"; "poly elems" ]
       (List.map
          (fun r ->
            [ r.f3_name; pct r.mono_prop; pct r.mono_elem; pct r.poly_prop;
              pct r.poly_elem ])
          rows));
  Printf.printf "mean monomorphic (props+elems): %s (paper: 66%%)\n\n"
    (pct (Stats.mean (List.map (fun r -> r.mono_prop +. r.mono_elem) rows)))

(* --- Figure 8: cycle-count improvement --- *)

type fig8_row = { f8_name : string; whole : float; opt : float; workload : Workload.t }

let fig8 ?(workloads = Workloads.selected) () : fig8_row list =
  List.map
    (fun w ->
      let off, on = run_pair w in
      {
        f8_name = w.Workload.name;
        workload = w;
        whole =
          Stats.improvement ~base:off.Harness.whole_cycles
            ~opt:on.Harness.whole_cycles;
        opt =
          Stats.improvement
            ~base:(float_of_int off.Harness.opt_cycles)
            ~opt:(float_of_int on.Harness.opt_cycles);
      })
    workloads

let print_fig8 () =
  let rows = fig8 () in
  print_endline "Figure 8 — Improvement in number of cycles (speedup, %)";
  print_string
    (Table.render
       ~headers:[ "benchmark"; "whole application"; "optimized code" ]
       (List.map (fun r -> [ r.f8_name; pct r.whole; pct r.opt ]) rows));
  print_newline ();
  print_string
    (Table.bars ~width:40
       (with_suite_averages rows (fun r -> r.opt) (fun r -> r.workload)));
  Printf.printf
    "mean speedup: optimized code %s (paper: 7.1%%), whole application %s (paper: 5%%)\n\n"
    (pct (Stats.mean (List.map (fun r -> r.opt) rows)))
    (pct (Stats.mean (List.map (fun r -> r.whole) rows)))

(* --- Figure 9: energy reduction --- *)

type fig9_row = { f9_name : string; e_whole : float; e_opt : float }

let fig9 ?(workloads = Workloads.selected) () : fig9_row list =
  List.map
    (fun w ->
      let off, on = run_pair w in
      (* whole-application energy: dynamic energy scaled to the whole run's
         instruction count (at the steady-state per-instruction rate) plus
         leakage over the whole run's cycles *)
      let leak_per_cycle =
        Tce_machine.Energy.default.Tce_machine.Energy.leakage_w
        /. Tce_machine.Energy.default.Tce_machine.Energy.freq_ghz
      in
      let whole_energy (r : Harness.result) =
        let dyn_per_instr =
          r.Harness.energy_dynamic_nj /. Float.max 1.0 (float_of_int r.Harness.opt_instrs)
        in
        (float_of_int r.Harness.whole_instrs *. dyn_per_instr)
        +. (leak_per_cycle *. r.Harness.whole_cycles)
      in
      {
        f9_name = w.Workload.name;
        e_whole =
          Stats.improvement ~base:(whole_energy off) ~opt:(whole_energy on);
        e_opt =
          Stats.improvement ~base:off.Harness.energy_nj ~opt:on.Harness.energy_nj;
      })
    workloads

let print_fig9 () =
  let rows = fig9 () in
  print_endline "Figure 9 — Energy reduction (%)";
  print_string
    (Table.render
       ~headers:[ "benchmark"; "whole application"; "optimized code" ]
       (List.map (fun r -> [ r.f9_name; pct r.e_whole; pct r.e_opt ]) rows));
  Printf.printf
    "mean energy reduction: optimized %s (paper: 6.5%%), whole app %s (paper: 4.5%%)\n\n"
    (pct (Stats.mean (List.map (fun r -> r.e_opt) rows)))
    (pct (Stats.mean (List.map (fun r -> r.e_whole) rows)))

(* --- Table 2: simulated core --- *)

let print_table2 () =
  print_endline "Table 2 — Simulated micro-architecture configuration";
  Fmt.pr "%a@." Tce_machine.Config.pp Tce_machine.Config.default

(* --- §5.3 / §5.4 overheads and hardware cost --- *)

let print_overheads () =
  print_endline "Section 5.3/5.4 — Incurred overheads and hardware cost";
  let rows =
    List.map
      (fun w ->
        let on = on_result w in
        [
          w.Workload.name;
          string_of_int on.Harness.cc_accesses;
          Printf.sprintf "%.4f%%" (100.0 *. on.Harness.cc_hit_rate);
          string_of_int on.Harness.hidden_classes;
          Printf.sprintf "%.1f%%"
            (Stats.percent on.Harness.heap_header_extra_bytes
               (max 1 on.Harness.heap_object_bytes));
          Printf.sprintf "%.1f%%"
            (Stats.percent on.Harness.obj_loads_first_line
               (max 1 on.Harness.obj_loads_total));
          string_of_int on.Harness.cc_exceptions;
        ])
      Workloads.selected
  in
  print_string
    (Table.render
       ~headers:
         [ "benchmark"; "CC accesses"; "CC hit rate"; "classes";
           "obj size ovh"; "line-0 loads"; "exceptions" ]
       rows);
  let cc = Tce_core.Class_cache.create () in
  Printf.printf "Class Cache storage: %d bytes (paper: < 1.5 KB)\n\n"
    (Tce_core.Class_cache.storage_bytes cc)

(* --- hidden class census (§4.1 / §5.3.1) --- *)

let print_census () =
  print_endline "Hidden-class census (paper §4.1: <= 32 for all but 2 benchmarks)";
  let rows =
    List.map
      (fun w ->
        let r = off_result w in
        [ w.Workload.name; string_of_int r.Harness.hidden_classes ])
      Workloads.all
  in
  print_string (Table.render ~headers:[ "benchmark"; "hidden classes" ] rows);
  print_newline ()

(* --- CSV export --- *)

(** Write every figure's rows as CSV under [dir] (plots, spreadsheets). *)
let write_csvs ?(dir = "results") () =
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let save name headers rows =
    let oc = open_out (Filename.concat dir name) in
    output_string oc (Table.csv ~headers rows);
    close_out oc;
    Printf.printf "wrote %s\n%!" (Filename.concat dir name)
  in
  let f = Printf.sprintf "%.4f" in
  save "fig1.csv"
    [ "benchmark"; "checks"; "tags_untags"; "math"; "other_opt"; "rest" ]
    (List.map
       (fun r ->
         [ r.f1_name; f r.checks; f r.tags; f r.math; f r.other_opt; f r.rest ])
       (fig1 ()));
  save "fig2.csv"
    [ "benchmark"; "whole_app_pct"; "optimized_pct" ]
    (List.map (fun r -> [ r.f2_name; f r.whole_app; f r.opt_only ]) (fig2 ()));
  save "fig3.csv"
    [ "benchmark"; "mono_props"; "mono_elems"; "poly_props"; "poly_elems" ]
    (List.map
       (fun r ->
         [ r.f3_name; f r.mono_prop; f r.mono_elem; f r.poly_prop; f r.poly_elem ])
       (fig3 ()));
  save "fig8.csv"
    [ "benchmark"; "whole_app_speedup"; "optimized_speedup" ]
    (List.map (fun r -> [ r.f8_name; f r.whole; f r.opt ]) (fig8 ()));
  save "fig9.csv"
    [ "benchmark"; "whole_app_energy_reduction"; "optimized_energy_reduction" ]
    (List.map (fun r -> [ r.f9_name; f r.e_whole; f r.e_opt ]) (fig9 ()))
