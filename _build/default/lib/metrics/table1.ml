(** Table 1 — the paper's Class List example: a [GraphNode] class with nine
    properties (two cache lines) and a [NodeList] wrapper whose elements
    array holds GraphNodes; [findGraphNode] is speculatively optimized on
    the position property and on the list's element type. We run the
    equivalent MiniJS program and dump the live Class List. *)

module E = Tce_engine.Engine

let source =
  {|
function ClassPosition(px, py) {
  this.px = px;
  this.py = py;
}
function GraphNode(id) {
  this.id = id;
  this.weight = id * 2;
  this.cost = 0;
  this.heat = 0;
  this.rank = 0;
  this.position = new ClassPosition(id, id + 1);
  this.flags = 0;
  this.extra1 = 0;
  this.extra2 = 0;
}
function NodeList(n) {
  this.count = n;
  this.tagv = 7;
  this.sum = 0;
}
function buildList(n) {
  var l = new NodeList(n);
  for (var i = 0; i < n; i++) {
    l[i] = new GraphNode(i);
  }
  return l;
}
function findGraphNode(list, key) {
  var n = list.count;
  for (var i = 0; i < n; i++) {
    var node = list[i];
    var p = node.position;
    if (p.px == key) { return node.id; }
  }
  return 0 - 1;
}
var nodes = buildList(64);
function bench() {
  var acc = 0;
  for (var k = 0; k < 64; k++) {
    acc = (acc + findGraphNode(nodes, k)) & 268435455;
  }
  return acc;
}
|}

let run () =
  let t = E.of_source source in
  E.set_measuring t false;
  ignore (E.run_main t);
  for _ = 1 to 10 do
    ignore (E.call_by_name t "bench" [||])
  done;
  t

let print () =
  let t = run () in
  print_endline
    "Table 1 — Class List structure (live dump after optimizing findGraphNode)";
  print_endline
    "entry                     InitMap  ValidMap SpeculateMap  profiled classes [FunctionList]";
  let reg = t.E.heap.Tce_vm.Heap.reg in
  let class_name id =
    if id = Tce_vm.Layout.smi_classid then "SMI"
    else
      match Tce_vm.Hidden_class.Registry.find reg id with
      | Some c -> c.Tce_vm.Hidden_class.name
      | None -> Printf.sprintf "?%d" id
  in
  let fn_name oid =
    match Hashtbl.find_opt t.E.opt_table oid with
    | Some code -> code.Tce_jit.Lir.name
    | None -> Printf.sprintf "opt%d" oid
  in
  List.iter
    (fun (cid, line, e) ->
      (* only show the classes from the example, not engine internals *)
      let name = class_name cid in
      if
        String.length name >= 4
        && (String.sub name 0 4 = "Grap" || String.sub name 0 4 = "Node"
           || String.sub name 0 4 = "Clas")
      then
        Fmt.pr "%a@."
          (Tce_core.Class_list.pp_entry ~class_name ~fn_name)
          (cid, line, e))
    (Tce_core.Class_list.dump t.E.cl);
  print_newline ()
