lib/metrics/harness.ml: Array Printf Tce_core Tce_engine Tce_machine Tce_vm Tce_workloads Workload
