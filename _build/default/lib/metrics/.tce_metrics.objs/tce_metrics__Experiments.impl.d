lib/metrics/experiments.ml: Array Filename Float Fmt Harness List Printf Stats Table Tce_core Tce_engine Tce_machine Tce_support Tce_workloads Unix Workload Workloads
