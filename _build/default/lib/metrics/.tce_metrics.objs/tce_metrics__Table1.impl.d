lib/metrics/table1.ml: Fmt Hashtbl List Printf String Tce_core Tce_engine Tce_jit Tce_vm
