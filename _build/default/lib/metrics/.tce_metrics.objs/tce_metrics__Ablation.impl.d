lib/metrics/ablation.ml: Array Harness List Option Printf Stats Table Tce_core Tce_engine Tce_jit Tce_machine Tce_support Tce_workloads
