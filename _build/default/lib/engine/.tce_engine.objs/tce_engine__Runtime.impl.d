lib/engine/runtime.ml: Array Buffer Builtins Char Feedback Float Fmt Heap String Tce_jit Tce_minijs Tce_support Tce_vm Value
