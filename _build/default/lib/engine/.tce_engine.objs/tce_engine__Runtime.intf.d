lib/engine/runtime.mli: Buffer Tce_jit Tce_minijs Tce_support Tce_vm
