lib/engine/engine.mli: Hashtbl Runtime Tce_core Tce_jit Tce_machine Tce_vm
