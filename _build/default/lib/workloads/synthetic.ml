(** Parameterized synthetic workload generators for the ablation studies:
    polymorphism-degree sweeps, hidden-class-count sweeps, and store/load
    ratio sweeps. All generated MiniJS is deterministic. *)

open Tce_support

(** A field-access kernel over [n_classes] distinct constructor shapes.
    [poly_sites] in [0,1] is the fraction of stores that rotate a second
    value type into a property (breaking monomorphism). *)
let poly_sweep ~n_classes ~poly_fraction ~objs ~rounds =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  for c = 0 to n_classes - 1 do
    add "function K%d(v) { this.tag = %d; this.val = v; this.acc = 0; }\n" c c
  done;
  add "var pool = array_new(0);\n";
  add "function setup() {\n";
  add "  for (var i = 0; i < %d; i++) {\n" objs;
  for c = 0 to n_classes - 1 do
    add "    if (i %% %d == %d) { push(pool, new K%d(i)); }\n" n_classes c c
  done;
  add "  }\n}\nsetup();\n";
  (* the kernel reads val (object load) and writes acc; a poly_fraction of
     the writes store a double instead of an SMI *)
  let poly_every =
    if poly_fraction <= 0.0 then 0
    else max 1 (int_of_float (1.0 /. poly_fraction))
  in
  (* breakage is gated to start only once the kernel is hot, so the broken
     profiles are actually speculated on (and raise exceptions) *)
  add "var callIdx = 0;\n";
  add "function kernel() {\n";
  add "  var n = pool.length;\n  var acc = 0;\n";
  add "  for (var r = 0; r < %d; r++) {\n" rounds;
  add "    for (var i = 0; i < n; i++) {\n";
  add "      var o = pool[i];\n";
  add "      var v = o.val;\n";
  add "      acc = (acc + v + o.acc) & 268435455;\n";
  if poly_every > 0 then begin
    add "      if (callIdx > 7 && (r * n + i) %% %d == 7) { o.acc = 0.5; }\n"
      poly_every;
    add "      else { o.acc = v + r; }\n"
  end
  else add "      o.acc = v + r;\n";
  add "    }\n  }\n  return acc;\n}\n";
  add "function bench() { callIdx = callIdx + 1; return kernel(); }\n";
  Buffer.contents buf

(** A class-count sweep: [n_classes] shapes exercised round-robin. Used to
    stress Class Cache capacity (entries needed ~ classes x lines). *)
let class_count_sweep ~n_classes ~props_per_class ~rounds =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  for c = 0 to n_classes - 1 do
    add "function C%d() {\n" c;
    for p = 0 to props_per_class - 1 do
      add "  this.p%d = %d;\n" p ((c * 7) + p)
    done;
    add "}\n"
  done;
  add "var pool = array_new(0);\n";
  add "function setup() {\n";
  for c = 0 to n_classes - 1 do
    add "  push(pool, new C%d());\n" c
  done;
  add "}\nsetup();\n";
  (* the stored value comes from a global cell (statically untyped), so the
     compiler cannot prove it matches the profile and must emit special
     stores — this is what exercises the Class Cache across many entries *)
  add "var gval = 1;\n";
  add "function bench() {\n  var acc = 0;\n";
  add "  for (var r = 0; r < %d; r++) {\n" rounds;
  add "    gval = r;\n";
  add "    var n = pool.length;\n";
  add "    for (var i = 0; i < n; i++) {\n";
  add "      var o = pool[i];\n";
  for p = 0 to min (props_per_class - 1) 4 do
    add "      o.p%d = gval;\n" p
  done;
  add "      acc = (acc + o.p0) & 268435455;\n";
  add "    }\n  }\n  return acc;\n}\n";
  Buffer.contents buf

(** Deterministic random object graph for property-based engine tests:
    small programs exercising objects, arrays, arithmetic and control flow
    with a known-terminating structure. *)
let random_program rng =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let n_props = 1 + Prng.int rng 4 in
  add "function Obj(";
  for p = 0 to n_props - 1 do
    if p > 0 then add ", ";
    add "a%d" p
  done;
  add ") {\n";
  for p = 0 to n_props - 1 do
    add "  this.f%d = a%d;\n" p p
  done;
  add "}\n";
  let n_objs = 2 + Prng.int rng 6 in
  add "var pool = array_new(0);\n";
  add "function setup() {\n  for (var i = 0; i < %d; i++) {\n" n_objs;
  add "    push(pool, new Obj(";
  for p = 0 to n_props - 1 do
    if p > 0 then add ", ";
    match Prng.int rng 3 with
    | 0 -> add "i + %d" (Prng.int rng 100)
    | 1 -> add "i * %d.5" (Prng.int rng 10)
    | _ -> add "%d" (Prng.int rng 1000)
  done;
  add "));\n  }\n}\nsetup();\n";
  add "function work() {\n  var acc = 0;\n";
  let rounds = 3 + Prng.int rng 10 in
  add "  for (var r = 0; r < %d; r++) {\n" rounds;
  add "    var n = pool.length;\n";
  add "    for (var i = 0; i < n; i++) {\n";
  add "      var o = pool[i];\n";
  let p = Prng.int rng n_props in
  (match Prng.int rng 4 with
  | 0 -> add "      acc = (acc + o.f%d) & 65535;\n" p
  | 1 -> add "      o.f%d = o.f%d + 1;\n      acc = (acc + i) & 65535;\n" p p
  | 2 ->
    add "      if (o.f%d > %d) { acc = acc + 1; } else { acc = acc + 2; }\n" p
      (Prng.int rng 50)
  | _ -> add "      acc = (acc + floor(o.f%d * 2.0)) & 65535;\n" p);
  add "    }\n  }\n  return acc;\n}\n";
  add "function bench() { return work(); }\n";
  Buffer.contents buf
