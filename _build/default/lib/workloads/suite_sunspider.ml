(** SunSpider-modeled workloads. *)

let cube_3d =
  Workload.make ~suite:Workload.Sunspider ~selected:true "3d-cube"
    {|
// 3D cube rotation: vertex objects with double coordinates in an array,
// matrix-vector transforms.
function Vtx(x, y, z) { this.x = x; this.y = y; this.z = z; }
function Mat(a, b, c, d, e, f, g, h, i) {
  this.a = a; this.b = b; this.c = c;
  this.d = d; this.e = e; this.f = f;
  this.g = g; this.h = h; this.i = i;
}
var verts = array_new(0);
function setup(n) {
  for (var k = 0; k < n; k++) {
    push(verts, new Vtx(0.5 * k + 0.0011, 1.0 - 0.25 * k + 0.0007, 0.125 * k + 0.0003));
  }
}
function rotate(m) {
  var n = verts.length;
  var acc = 0.0;
  for (var k = 0; k < n; k++) {
    var v = verts[k];
    var x = v.x; var y = v.y; var z = v.z;
    v.x = m.a * x + m.b * y + m.c * z;
    v.y = m.d * x + m.e * y + m.f * z;
    v.z = m.g * x + m.h * y + m.i * z;
    acc = acc + v.x + v.y + v.z;
  }
  return acc;
}
setup(90);
var rotm = new Mat(0.9, 0.1, 0.0, 0.0 - 0.1, 0.9, 0.1, 0.05, 0.0 - 0.05, 0.99);
function bench() {
  var acc = 0.0;
  for (var s = 0; s < 20; s++) { acc = acc + rotate(rotm); }
  return acc;
}
|}

let raytrace_3d =
  Workload.make ~suite:Workload.Sunspider ~selected:true "3d-raytrace"
    {|
// Smaller cousin of the Octane raytrace: triangle objects with vertex
// object properties; intersection arithmetic.
function P3(x, y, z) { this.x = x; this.y = y; this.z = z; }
function Tri(a, b, c) { this.v0 = a; this.v1 = b; this.v2 = c; this.id = 0; }
var tris = array_new(0);
function setup(n) {
  for (var i = 0; i < n; i++) {
    var f = i * 0.3 + 0.0001;
    push(tris, new Tri(new P3(f, 0.0003, 1.0007), new P3(f + 1.0, 0.5, 1.5),
                       new P3(f, 1.0001, 2.0003)));
  }
}
function raydot(t, dx, dy, dz) {
  var a = t.v0;
  var b = t.v1;
  var c = t.v2;
  var nx = (b.y - a.y) * (c.z - a.z) - (b.z - a.z) * (c.y - a.y);
  var ny = (b.z - a.z) * (c.x - a.x) - (b.x - a.x) * (c.z - a.z);
  var nz = (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x);
  return nx * dx + ny * dy + nz * dz;
}
setup(40);
function bench() {
  var acc = 0.0;
  for (var r = 0; r < 30; r++) {
    var n = tris.length;
    for (var i = 0; i < n; i++) {
      acc = acc + raydot(tris[i], 0.3, 0.5, 0.81);
    }
  }
  return acc;
}
|}

let binary_trees =
  Workload.make ~suite:Workload.Sunspider ~selected:true "access-binary-trees"
    {|
// Bottom-up binary trees: item properties are monomorphic SMIs; child
// links are node-or-null (the polymorphic residue stays).
function TreeNode(left, right, item) {
  this.left = left;
  this.right = right;
  this.item = item;
}
function bottomUpTree(item, depth) {
  if (depth > 0) {
    return new TreeNode(bottomUpTree(2 * item - 1, depth - 1),
                        bottomUpTree(2 * item, depth - 1), item);
  }
  return new TreeNode(null, null, item);
}
function itemCheck(t) {
  if (t.left == null) { return t.item; }
  return t.item + itemCheck(t.left) - itemCheck(t.right);
}
var longLived = bottomUpTree(0, 9);
function bench() {
  var check = 0;
  for (var i = 0; i < 4; i++) {
    var tmp = bottomUpTree(i, 6);
    check = check + itemCheck(tmp);
  }
  return check + itemCheck(longLived);
}
|}

let fannkuch =
  Workload.make ~suite:Workload.Sunspider ~selected:true "access-fannkuch"
    {|
// Pancake flipping over SMI arrays held in a state object.
function State(n) {
  this.perm = array_new(n);
  this.count = array_new(n);
  this.n = n;
}
function reset(s) {
  for (var i = 0; i < s.n; i++) { s.perm[i] = i; }
}
function flips(s) {
  var p = s.perm;
  var f = 0;
  var k = p[0];
  while (k != 0) {
    var lo = 0;
    var hi = k;
    while (lo < hi) {
      var t = p[lo]; p[lo] = p[hi]; p[hi] = t;
      lo++; hi--;
    }
    f++;
    k = p[0];
  }
  return f;
}
function nextPerm(s) {
  var p = s.perm;
  var first = p[1];
  p[1] = p[0];
  p[0] = first;
  var i = 1;
  s.count[i] = s.count[i] + 1;
  while (s.count[i] > i) {
    s.count[i] = 0;
    i++;
    if (i >= s.n) { return false; }
    var t0 = p[0];
    for (var j = 0; j < i; j++) { p[j] = p[j + 1]; }
    p[i] = t0;
    s.count[i] = s.count[i] + 1;
  }
  return true;
}
var st = new State(7);
function bench() {
  reset(st);
  for (var i = 0; i < st.n; i++) { st.count[i] = 0; }
  var total = 0;
  var more = true;
  var rounds = 0;
  while (more && rounds < 700) {
    total = total + flips(st);
    more = nextPerm(st);
    rounds++;
  }
  return total;
}
|}

let nbody =
  Workload.make ~suite:Workload.Sunspider ~selected:true "access-nbody"
    {|
// Planetary n-body: body objects with 7 double properties in an array;
// the classic monomorphic-object-load workload.
function Body(x, y, z, vx, vy, vz, mass) {
  this.x = x; this.y = y; this.z = z;
  this.vx = vx; this.vy = vy; this.vz = vz;
  this.mass = mass;
}
var bodies = array_new(0);
function setup() {
  push(bodies, new Body(0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 39.47));
  push(bodies, new Body(4.84, 0.0 - 1.16, 0.0 - 0.1, 0.6, 2.8, 0.0 - 0.02, 0.037));
  push(bodies, new Body(8.34, 4.12, 0.0 - 0.27, 0.0 - 1.0, 1.8, 0.008, 0.011));
  push(bodies, new Body(12.89, 0.0 - 15.11, 0.0 - 0.22, 1.08, 0.86, 0.0 - 0.01, 0.0017));
  push(bodies, new Body(15.37, 0.0 - 25.91, 0.17, 0.97, 0.59, 0.0 - 0.03, 0.0002));
}
function advance(dt) {
  var n = bodies.length;
  for (var i = 0; i < n; i++) {
    var bi = bodies[i];
    for (var j = i + 1; j < n; j++) {
      var bj = bodies[j];
      var dx = bi.x - bj.x;
      var dy = bi.y - bj.y;
      var dz = bi.z - bj.z;
      var d2 = dx * dx + dy * dy + dz * dz;
      var mag = dt / (d2 * sqrt(d2));
      bi.vx = bi.vx - dx * bj.mass * mag;
      bi.vy = bi.vy - dy * bj.mass * mag;
      bi.vz = bi.vz - dz * bj.mass * mag;
      bj.vx = bj.vx + dx * bi.mass * mag;
      bj.vy = bj.vy + dy * bi.mass * mag;
      bj.vz = bj.vz + dz * bi.mass * mag;
    }
  }
  for (var i = 0; i < n; i++) {
    var b = bodies[i];
    b.x = b.x + dt * b.vx;
    b.y = b.y + dt * b.vy;
    b.z = b.z + dt * b.vz;
  }
}
function energy() {
  var e = 0.0;
  var n = bodies.length;
  for (var i = 0; i < n; i++) {
    var bi = bodies[i];
    e = e + 0.5 * bi.mass * (bi.vx * bi.vx + bi.vy * bi.vy + bi.vz * bi.vz);
  }
  return e;
}
setup();
function bench() {
  for (var s = 0; s < 120; s++) { advance(0.01); }
  return energy();
}
|}

let crypto_aes =
  Workload.make ~suite:Workload.Sunspider ~selected:true "crypto-aes"
    {|
// AES-flavored rounds: sbox and state SMI arrays inside a Cipher object,
// xor/shift ladders.
function Cipher(n) {
  this.sbox = array_new(256);
  this.state = array_new(n);
  this.n = n;
}
function initCipher(c, seed) {
  var x = seed;
  for (var i = 0; i < 256; i++) {
    x = (x * 181 + 59) % 257;
    c.sbox[i] = x % 256;
  }
  for (var i = 0; i < c.n; i++) { c.state[i] = (i * 73) % 256; }
}
function rounds(c, k) {
  var st = c.state;
  var sb = c.sbox;
  var n = c.n;
  var acc = 0;
  for (var r = 0; r < k; r++) {
    for (var i = 0; i < n; i++) {
      var v = st[i];
      v = sb[v & 255] ^ (r * 17 & 255);
      v = ((v << 1) | (v >> 7)) & 255;
      st[i] = v ^ st[(i + 1) % n];
      acc = (acc + st[i]) & 268435455;
    }
  }
  return acc;
}
var ciph = new Cipher(160);
initCipher(ciph, 7);
function bench() {
  return rounds(ciph, 18);
}
|}

let date_format_tofte =
  Workload.make ~suite:Workload.Sunspider ~selected:true "date-format-tofte"
    {|
// Date formatting: calendar field objects + string assembly.
function Date_(days) {
  this.year = 1970 + ((days / 365) | 0);
  this.month = 1 + (((days % 365) / 31) | 0);
  this.day = 1 + (days % 31);
  this.hour = days % 24;
  this.minute = (days * 7) % 60;
  this.second = (days * 13) % 60;
}
function pad2(v) {
  if (v < 10) { return "0" + v; }
  return "" + v;
}
function format(d) {
  return d.year + "-" + pad2(d.month) + "-" + pad2(d.day) + " " +
         pad2(d.hour) + ":" + pad2(d.minute) + ":" + pad2(d.second);
}
function bench() {
  var acc = 0;
  for (var i = 0; i < 300; i++) {
    var d = new Date_(10000 + i);
    var s = format(d);
    acc = (acc + str_len(s) + char_code(s, 3)) & 268435455;
  }
  return acc;
}
|}

let spectral_norm =
  Workload.make ~suite:Workload.Sunspider ~selected:true "math-spectral-norm"
    {|
// Spectral norm: u/v double vectors wrapped in a Work object (NodeList
// pattern: per-class elements profiling).
function Work(n) {
  this.u = array_new(0);
  this.v = array_new(0);
  this.n = n;
}
function initW(w) {
  for (var i = 0; i < w.n; i++) { push(w.u, 1.0); push(w.v, 0.0); }
}
function a(i, j) { return 1.0 / ((i + j) * (i + j + 1) / 2.0 + i + 1.0); }
function multAv(w, src, dst) {
  var n = w.n;
  for (var i = 0; i < n; i++) {
    var sum = 0.0;
    for (var j = 0; j < n; j++) { sum = sum + a(i, j) * src[j]; }
    dst[i] = sum;
  }
}
function multAtv(w, src, dst) {
  var n = w.n;
  for (var i = 0; i < n; i++) {
    var sum = 0.0;
    for (var j = 0; j < n; j++) { sum = sum + a(j, i) * src[j]; }
    dst[i] = sum;
  }
}
var work = new Work(24);
initW(work);
function bench() {
  var tmp = array_new(work.n);
  for (var it = 0; it < 4; it++) {
    multAv(work, work.u, tmp);
    multAtv(work, tmp, work.v);
    multAv(work, work.v, tmp);
    multAtv(work, tmp, work.u);
  }
  var vbv = 0.0;
  var vv = 0.0;
  for (var i = 0; i < work.n; i++) {
    vbv = vbv + work.u[i] * work.v[i];
    vv = vv + work.v[i] * work.v[i];
  }
  return sqrt(vbv / vv);
}
|}

let string_unpack =
  Workload.make ~suite:Workload.Sunspider ~selected:true "string-unpack-code"
    {|
// Packed-code unpacking: char scanning, token objects with string+smi
// properties in a dictionary array.
function Token(text, kind, count) {
  this.text = text;
  this.kind = kind;
  this.count = count;
}
var toks = array_new(0);
var src = "";
function setup() {
  src = "var f=function(a,b){return a+b;};for(i=0;i<10;i++){x=f(x,i);}";
  var i = 0;
  while (i < 26) {
    push(toks, new Token(from_char_code(97 + i), i, 0));
    i++;
  }
}
function scan() {
  var n = str_len(src);
  var acc = 0;
  for (var i = 0; i < n; i++) {
    var c = char_code(src, i);
    if (c >= 97) { if (c <= 122) {
      var t = toks[c - 97];
      t.count = t.count + 1;
      acc = (acc + t.kind + t.count) & 268435455;
    } }
  }
  return acc;
}
setup();
function bench() {
  var acc = 0;
  for (var r = 0; r < 40; r++) { acc = (acc + scan()) & 268435455; }
  return acc;
}
|}

(* -- below the 1% filter: kept for Figure 1's "all benchmarks" texture -- *)

let bitops_nsieve =
  Workload.make ~suite:Workload.Sunspider ~selected:false "bitops-nsieve-bits"
    {|
// Bit-sieve over a raw SMI array: no object loads at all -> zero
// mechanism-relevant overhead (paper: ~half the benchmarks are like this).
var flags = array_new(2048);
function sieve(m) {
  var count = 0;
  for (var i = 0; i < m; i++) { flags[i] = 1; }
  for (var i = 2; i < m; i++) {
    if (flags[i] == 1) {
      count++;
      for (var j = i + i; j < m; j = j + i) { flags[j] = 0; }
    }
  }
  return count;
}
function bench() {
  var acc = 0;
  for (var r = 0; r < 6; r++) { acc = acc + sieve(2048); }
  return acc;
}
|}

let math_cordic =
  Workload.make ~suite:Workload.Sunspider ~selected:false "math-cordic"
    {|
// CORDIC rotations: pure scalar SMI/double math, no object traffic.
function cordic(target, steps) {
  var x = 0.6072529350;
  var y = 0.0;
  var angle = 0.0;
  var pow2 = 1.0;
  for (var i = 0; i < steps; i++) {
    var dx = x / pow2;
    var dy = y / pow2;
    if (angle < target) { x = x - dy; y = y + dx; angle = angle + 1.0 / pow2; }
    else { x = x + dy; y = y - dx; angle = angle - 1.0 / pow2; }
    pow2 = pow2 * 2.0;
  }
  return y;
}
function bench() {
  var acc = 0.0;
  for (var i = 0; i < 400; i++) {
    acc = acc + cordic(0.5 + (i % 10) * 0.05, 24);
  }
  return acc;
}
|}

let all =
  [
    cube_3d; raytrace_3d; binary_trees; fannkuch; nbody; crypto_aes;
    date_format_tofte; spectral_norm; string_unpack; bitops_nsieve; math_cordic;
  ]
