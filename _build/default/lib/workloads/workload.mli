(** Benchmark workload descriptor: a MiniJS program whose top level builds
    the input state and defines a [bench()] function. The harness runs
    [bench] repeatedly (the paper's steady-state protocol) and checks the
    returned checksum across tiers and configurations. *)

type suite = Octane | Sunspider | Kraken

val suite_name : suite -> string

type t = {
  name : string;
  suite : suite;
  selected : bool;
      (** member of the paper's ">1% check overhead" subset (Figs. 2/3/8/9) *)
  source : string;
  iterations : int;  (** total bench() calls; the last one is measured *)
}

val make : ?iterations:int -> suite:suite -> selected:bool -> string -> string -> t
