lib/workloads/suite_octane.ml: Workload
