lib/workloads/workload.ml:
