lib/workloads/workload.mli:
