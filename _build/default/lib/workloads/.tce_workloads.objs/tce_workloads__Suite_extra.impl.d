lib/workloads/suite_extra.ml: Workload
