lib/workloads/workloads.ml: List Suite_extra Suite_kraken Suite_octane Suite_sunspider Workload
