lib/workloads/suite_kraken.ml: Workload
