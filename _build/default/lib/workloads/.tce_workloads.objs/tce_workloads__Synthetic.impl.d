lib/workloads/synthetic.ml: Buffer Printf Prng Tce_support
