lib/workloads/suite_sunspider.ml: Workload
