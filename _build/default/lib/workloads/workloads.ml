(** Registry of all benchmark workloads, grouped as in the paper. *)

let octane = Suite_octane.all @ Suite_extra.octane
let sunspider = Suite_sunspider.all @ Suite_extra.sunspider
let kraken = Suite_kraken.all @ Suite_extra.kraken

(** All 54 workloads, mirroring the paper's roster size. *)
let all = octane @ sunspider @ kraken

(** The paper's ">1% check overhead" subset (Figures 2, 3, 8, 9). *)
let selected = List.filter (fun w -> w.Workload.selected) all

let by_name name = List.find_opt (fun w -> w.Workload.name = name) all

let by_suite suite = List.filter (fun w -> w.Workload.suite = suite) all
