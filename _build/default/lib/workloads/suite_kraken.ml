(** Kraken-modeled workloads. [ai-astar] is the paper's flagship: a loop of
    object property accesses whose receivers come from monomorphic elements
    arrays — the Class Cache removes nearly every Check Map on it (34% in
    the paper). *)

let ai_astar =
  Workload.make ~suite:Workload.Kraken ~selected:true "ai-astar"
    {|
// A* over a grid graph: Node objects inside a Graph wrapper's elements
// array (the paper's NodeList pattern), smi cost fields, heavy chained
// property loads per relaxation.
function Node(idx, x, y, wall) {
  this.idx = idx;
  this.x = x;
  this.y = y;
  this.wall = wall;
  this.g = 0;
  this.h = 0;
  this.f = 0;
  this.parent = 0 - 1;
  this.visited = 0;
}
function Graph(w, h) {
  this.w = w;
  this.h = h;
  this.nodes = array_new(0);
}
function buildGraph(gr) {
  var w = gr.w;
  var h = gr.h;
  var x = 1;
  for (var j = 0; j < h; j++) {
    for (var i = 0; i < w; i++) {
      x = (x * 75 + 74) % 65537;
      var wall = 0;
      if (x % 7 == 0) { if (i != 0 || j != 0) { wall = 1; } }
      push(gr.nodes, new Node(j * w + i, i, j, wall));
    }
  }
}
function heuristic(a, bx, by) {
  return abs(a.x - bx) + abs(a.y - by);
}
function resetNodes(gr) {
  var ns = gr.nodes;
  var n = ns.length;
  for (var i = 0; i < n; i++) {
    var nd = ns[i];
    nd.g = 0; nd.h = 0; nd.f = 0; nd.parent = 0 - 1; nd.visited = 0;
  }
}
function search(gr, tx, ty) {
  resetNodes(gr);
  var ns = gr.nodes;
  var w = gr.w;
  var h = gr.h;
  var open_ = array_new(1024);
  open_[0] = 0;
  var openLen = 1;
  var expanded = 0;
  while (openLen > 0 && expanded < 2200) {
    // find the open node with the lowest f
    var besti = 0;
    for (var i = 1; i < openLen; i++) {
      var a = ns[open_[i]];
      var b = ns[open_[besti]];
      if (a.f < b.f) { besti = i; }
    }
    var curIdx = open_[besti];
    open_[besti] = open_[openLen - 1];
    openLen = openLen - 1;
    var cur = ns[curIdx];
    if (cur.visited == 1) { continue; }
    cur.visited = 1;
    expanded++;
    if (cur.x == tx) { if (cur.y == ty) { break; } }
    // neighbors: 4-connected
    for (var d = 0; d < 4; d++) {
      var nx = cur.x; var ny = cur.y;
      if (d == 0) { nx = nx + 1; }
      else if (d == 1) { nx = nx - 1; }
      else if (d == 2) { ny = ny + 1; }
      else { ny = ny - 1; }
      if (nx >= 0 && nx < w && ny >= 0 && ny < h) {
        var nb = ns[ny * w + nx];
        if (nb.wall == 0 && nb.visited == 0) {
          var g2 = cur.g + 1;
          if (nb.parent < 0 || g2 < nb.g) {
            nb.g = g2;
            nb.h = heuristic(nb, tx, ty);
            nb.f = nb.g + nb.h;
            nb.parent = cur.idx;
            if (openLen < 1024) {
              open_[openLen] = nb.idx;
              openLen = openLen + 1;
            }
          }
        }
      }
    }
  }
  // path cost checksum
  var acc = 0;
  var n = ns.length;
  for (var i = 0; i < n; i++) {
    var nd = ns[i];
    acc = (acc + nd.g * 3 + nd.f + nd.visited) & 268435455;
  }
  return acc;
}
var graph = new Graph(24, 24);
buildGraph(graph);
function bench() {
  return search(graph, 23, 23);
}
|}

let audio_beat_detection =
  Workload.make ~suite:Workload.Kraken ~selected:true "audio-beat-detection"
    {|
// Beat detection: sample buffers as double arrays in channel objects,
// energy windows, peak objects.
function Channel(n) {
  this.samples = array_new(0);
  this.energy = array_new(0);
  this.n = n;
}
function Peak(pos, strength) { this.pos = pos; this.strength = strength; }
function fillChannel(ch) {
  for (var i = 0; i < ch.n; i++) {
    push(ch.samples, sin(i * 0.271) * 0.8 + sin(i * 0.013) * 0.2);
  }
}
var peaks = array_new(0);
function detect(ch, win) {
  var s = ch.samples;
  var n = ch.n;
  var acc = 0.0;
  var eIdx = 0;
  for (var base = 0; base + win <= n; base = base + win) {
    var e = 0.0;
    for (var i = 0; i < win; i++) {
      var v = s[base + i];
      e = e + v * v;
    }
    if (eIdx < ch.energy.length) { ch.energy[eIdx] = e; }
    else { push(ch.energy, e); }
    eIdx++;
    if (e > 0.5 * win * 0.4) {
      push(peaks, new Peak(base, e));
    }
    acc = acc + e;
  }
  var m = peaks.length;
  for (var i = 0; i < m; i++) {
    var p = peaks[i];
    acc = acc + p.strength * 0.001 + p.pos * 0.0001;
  }
  return acc;
}
var chan = new Channel(4096);
fillChannel(chan);
function bench() {
  var r = detect(chan, 256);
  // keep the peaks list bounded across iterations
  peaks = array_new(0);
  return r;
}
|}

let audio_oscillator =
  Workload.make ~suite:Workload.Kraken ~selected:true "audio-oscillator"
    {|
// Additive oscillator bank: oscillator objects (double phase/freq props)
// in an array, per-sample accumulation.
function Osc(freq, amp) {
  this.freq = freq;
  this.amp = amp;
  this.phase = 0.0;
}
var bank = array_new(0);
function setup(n) {
  for (var i = 0; i < n; i++) {
    push(bank, new Osc(0.01 + i * 0.003, 1.0 / (i + 1)));
  }
}
function generate(samples) {
  var n = bank.length;
  var acc = 0.0;
  for (var s = 0; s < samples; s++) {
    var v = 0.0;
    for (var i = 0; i < n; i++) {
      var o = bank[i];
      o.phase = o.phase + o.freq;
      if (o.phase > 6.283185307179586) { o.phase = o.phase - 6.283185307179586; }
      v = v + o.amp * sin(o.phase);
    }
    acc = acc + v;
  }
  return acc;
}
setup(12);
function bench() {
  return generate(300);
}
|}

let imaging_gaussian_blur =
  Workload.make ~suite:Workload.Kraken ~selected:true "imaging-gaussian-blur"
    {|
// Gaussian blur: SMI pixel array inside an Image object, double kernel
// in a Kernel object's elements array.
function Image_(w, h) {
  this.pix = array_new(w * h);
  this.w = w;
  this.h = h;
}
function Kernel(radius) {
  this.weights = array_new(0);
  this.radius = radius;
}
function mkKernel(k) {
  var sum = 0.0;
  for (var i = 0 - k.radius; i <= k.radius; i++) {
    var w = exp(0.0 - (i * i) / (2.0 * k.radius * k.radius));
    push(k.weights, w);
    sum = sum + w;
  }
  var m = k.weights.length;
  for (var i = 0; i < m; i++) { k.weights[i] = k.weights[i] / sum; }
}
function fillImage(img) {
  var x = 3;
  var n = img.w * img.h;
  for (var i = 0; i < n; i++) {
    x = (x * 171 + 11) % 253;
    img.pix[i] = x;
  }
}
function blurRow(img, k, y) {
  var w = img.w;
  var p = img.pix;
  var ws = k.weights;
  var r = k.radius;
  var acc = 0;
  for (var x = r; x + r < w; x++) {
    var v = 0.0;
    for (var i = 0 - r; i <= r; i++) {
      v = v + p[y * w + x + i] * ws[i + r];
    }
    var iv = floor(v) | 0;
    p[y * w + x] = iv;
    acc = (acc + iv) & 268435455;
  }
  return acc;
}
var img = new Image_(96, 64);
var kern = new Kernel(3);
mkKernel(kern);
fillImage(img);
function bench() {
  var acc = 0;
  for (var y = 0; y < img.h; y++) {
    acc = (acc + blurRow(img, kern, y)) & 268435455;
  }
  return acc;
}
|}

let stanford_crypto_aes =
  Workload.make ~suite:Workload.Kraken ~selected:true "stanford-crypto-aes"
    {|
// SJCL-style AES: word-oriented SMI arrays in a Key object, 32-bit mixes.
function Key(n) {
  this.enc = array_new(n);
  this.dec = array_new(n);
  this.rounds = 10;
}
function expand(k, seed) {
  var x = seed;
  var n = k.enc.length;
  for (var i = 0; i < n; i++) {
    x = (x * 69069 + 1) % 1048576;
    k.enc[i] = x;
    k.dec[n - 1 - i] = x ^ 305419896;
  }
}
function encryptBlock(k, b0, b1, b2, b3) {
  var e = k.enc;
  var n = e.length;
  for (var r = 0; r < k.rounds; r++) {
    var t0 = (b0 ^ e[(r * 4) % n]) + ((b1 << 3) | (b1 >> 5));
    var t1 = (b1 ^ e[(r * 4 + 1) % n]) + ((b2 << 5) | (b2 >> 3));
    var t2 = (b2 ^ e[(r * 4 + 2) % n]) + ((b3 << 7) | (b3 >> 1));
    var t3 = (b3 ^ e[(r * 4 + 3) % n]) + ((b0 << 2) | (b0 >> 6));
    b0 = t0 & 1048575; b1 = t1 & 1048575; b2 = t2 & 1048575; b3 = t3 & 1048575;
  }
  return ((b0 + b1) ^ (b2 + b3)) & 1048575;
}
var key = new Key(44);
expand(key, 12345);
function bench() {
  var acc = 0;
  for (var i = 0; i < 160; i++) {
    acc = (acc + encryptBlock(key, i, i * 3, i * 7, i * 13)) & 268435455;
  }
  return acc;
}
|}

let stanford_crypto_ccm =
  Workload.make ~suite:Workload.Kraken ~selected:true "stanford-crypto-ccm"
    {|
// CCM mode: CBC-MAC plus CTR over message blocks held as word arrays in
// a Msg object; tag objects carry the MAC state.
function Msg(nblocks) {
  this.blocks = array_new(nblocks * 4);
  this.n = nblocks;
}
function Tag() { this.t0 = 0; this.t1 = 0; this.t2 = 0; this.t3 = 0; }
function fillMsg(m, seed) {
  var x = seed;
  var n = m.n * 4;
  for (var i = 0; i < n; i++) {
    x = (x * 75 + 74) % 65537;
    m.blocks[i] = x;
  }
}
function mac(m, tag) {
  var b = m.blocks;
  var n = m.n;
  for (var i = 0; i < n; i++) {
    tag.t0 = (tag.t0 ^ b[i * 4]) * 31 % 1048576;
    tag.t1 = (tag.t1 ^ b[i * 4 + 1]) * 37 % 1048576;
    tag.t2 = (tag.t2 ^ b[i * 4 + 2]) * 41 % 1048576;
    tag.t3 = (tag.t3 ^ b[i * 4 + 3]) * 43 % 1048576;
  }
  return (tag.t0 + tag.t1 + tag.t2 + tag.t3) & 268435455;
}
function ctr(m, seed) {
  var b = m.blocks;
  var n = m.n * 4;
  var acc = 0;
  for (var i = 0; i < n; i++) {
    var ks = (seed + i * 2654435761) & 1048575;
    acc = (acc + (b[i] ^ ks)) & 268435455;
  }
  return acc;
}
var msg = new Msg(60);
fillMsg(msg, 99);
function bench() {
  var tag = new Tag();
  var a = mac(msg, tag);
  var b = ctr(msg, 424242);
  return (a + b) & 268435455;
}
|}

let stanford_crypto_pbkdf2 =
  Workload.make ~suite:Workload.Kraken ~selected:true "stanford-crypto-pbkdf2"
    {|
// PBKDF2: repeated HMAC-ish mixing over word-array state objects.
function Hmac(klen) {
  this.ipad = array_new(klen);
  this.opad = array_new(klen);
  this.klen = klen;
}
function initHmac(h, seed) {
  var x = seed;
  for (var i = 0; i < h.klen; i++) {
    x = (x * 131 + 7) % 65536;
    h.ipad[i] = x ^ 23644;
    h.opad[i] = x ^ 23131;
  }
}
function mix(h, block) {
  var acc = block;
  var k = h.klen;
  var ip = h.ipad;
  var op = h.opad;
  for (var i = 0; i < k; i++) {
    acc = (acc + ip[i]) * 33 % 1048576;
    acc = (acc ^ op[i]) & 1048575;
    acc = ((acc << 3) | (acc >> 17)) & 1048575;
  }
  return acc;
}
var hmac = new Hmac(16);
initHmac(hmac, 777);
function bench() {
  var u = 1;
  var acc = 0;
  for (var iter = 0; iter < 220; iter++) {
    u = mix(hmac, u);
    acc = (acc + u) & 268435455;
  }
  return acc;
}
|}

let stanford_crypto_sha256 =
  Workload.make ~suite:Workload.Kraken ~selected:true
    "stanford-crypto-sha256-iterative"
    {|
// SHA-256 flavored compression: message schedule array in a Block object,
// eight SMI state registers on a State object.
function State() {
  this.a = 1779033703 % 1048576; this.b = 3144134277 % 1048576;
  this.c = 1013904242 % 1048576; this.d = 2773480762 % 1048576;
  this.e = 1359893119 % 1048576; this.f = 2600822924 % 1048576;
  this.g = 528734635 % 1048576;  this.h = 1541459225 % 1048576;
}
function Block(n) { this.w = array_new(n); this.n = n; }
function schedule(blk, seed) {
  var x = seed;
  var w = blk.w;
  for (var i = 0; i < 16; i++) {
    x = (x * 69069 + 1) % 1048576;
    w[i] = x;
  }
  for (var i = 16; i < blk.n; i++) {
    var s0 = ((w[i-15] >> 7) | (w[i-15] << 13)) ^ (w[i-15] >> 3);
    var s1 = ((w[i-2] >> 17) | (w[i-2] << 3)) ^ (w[i-2] >> 10);
    w[i] = (w[i-16] + s0 + w[i-7] + s1) & 1048575;
  }
}
function compress(st, blk) {
  var w = blk.w;
  for (var i = 0; i < blk.n; i++) {
    var s1 = ((st.e >> 6) | (st.e << 14)) ^ ((st.e >> 11) | (st.e << 9));
    var ch = (st.e & st.f) ^ ((st.e ^ 1048575) & st.g);
    var t1 = (st.h + (s1 & 1048575) + ch + w[i]) & 1048575;
    var s0 = ((st.a >> 2) | (st.a << 18)) ^ ((st.a >> 13) | (st.a << 7));
    var mj = (st.a & st.b) ^ (st.a & st.c) ^ (st.b & st.c);
    var t2 = ((s0 & 1048575) + mj) & 1048575;
    st.h = st.g; st.g = st.f; st.f = st.e;
    st.e = (st.d + t1) & 1048575;
    st.d = st.c; st.c = st.b; st.b = st.a;
    st.a = (t1 + t2) & 1048575;
  }
  return (st.a + st.e) % 1048576;
}
var blk = new Block(64);
function bench() {
  var st = new State();
  var acc = 0;
  for (var r = 0; r < 14; r++) {
    schedule(blk, r + 1);
    acc = (acc + compress(st, blk)) & 268435455;
  }
  return acc;
}
|}

(* -- below the 1% filter -- *)

let audio_dft =
  Workload.make ~suite:Workload.Kraken ~selected:false "audio-dft"
    {|
// Direct DFT over raw double arrays: double elements are unboxed, so
// checks are already gone without the mechanism.
var re = array_new(0);
var im = array_new(0);
function setup(n) {
  for (var i = 0; i < n; i++) {
    push(re, sin(i * 0.37));
    push(im, 0.0);
  }
}
function dft(n, bins) {
  var acc = 0.0;
  for (var k = 0; k < bins; k++) {
    var sr = 0.0;
    var si = 0.0;
    for (var t = 0; t < n; t++) {
      var ang = 6.283185307179586 * k * t / n;
      sr = sr + re[t] * cos(ang);
      si = si - re[t] * sin(ang);
    }
    acc = acc + sr * sr + si * si;
  }
  return acc;
}
setup(128);
function bench() {
  return dft(128, 12);
}
|}

let all =
  [
    ai_astar; audio_beat_detection; audio_oscillator; imaging_gaussian_blur;
    stanford_crypto_aes; stanford_crypto_ccm; stanford_crypto_pbkdf2;
    stanford_crypto_sha256; audio_dft;
  ]
