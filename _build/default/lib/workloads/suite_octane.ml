(** Octane-modeled workloads (paper Figures 1-3, 8, 9). Each mirrors the hot
    behaviour of its namesake: object shapes, property/elements traffic, and
    numeric kinds — not its full source. *)

let box2d =
  Workload.make ~suite:Workload.Octane ~selected:true "box2d"
    {|
// Rigid-body mini physics: many-property bodies (multi-line objects),
// object-valued properties (pos/vel Vec), double-heavy math.
function Vec(x, y) { this.x = x; this.y = y; }
function Body(id, x, y) {
  this.id = id;
  this.pos = new Vec(x, y);
  this.vel = new Vec(0.5, 0.0 - 0.25);
  this.force = new Vec(0.0, 0.0);
  this.mass = 1.5;
  this.inv_mass = 0.66;
  this.torque = 0.0;
  this.angle = 0.0;
  this.omega = 0.1;
}
function World(n) {
  this.bodies = array_new(0);
  this.gravity = new Vec(0.0, 0.0 - 9.8);
  this.count = n;
}
function fill(w, n) {
  for (var i = 0; i < n; i++) {
    push(w.bodies, new Body(i, i * 0.5 + 0.0003, 10.0001));
  }
}
function step(w, dt) {
  var bs = w.bodies;
  var n = w.count;
  var acc = 0.0;
  for (var i = 0; i < n; i++) {
    var b = bs[i];
    var p = b.pos;
    var v = b.vel;
    var g = w.gravity;
    p.x = p.x + v.x * dt;
    p.y = p.y + v.y * dt;
    v.y = v.y + g.y * dt * b.inv_mass;
    b.angle = b.angle + b.omega * dt;
    if (p.y < 0.0) {
      p.y = 0.0 - p.y;
      v.y = 0.0 - (v.y * 0.5);
    }
    acc = acc + p.x + p.y + b.angle;
  }
  return acc;
}
var world = new World(120);
fill(world, 120);
function bench() {
  var sum = 0.0;
  for (var s = 0; s < 14; s++) {
    sum = sum + step(world, 0.016);
  }
  return sum;
}
|}

let crypto =
  Workload.make ~suite:Workload.Octane ~selected:true "crypto"
    {|
// Big-number arithmetic: SMI word arrays inside BigNum wrapper objects,
// carry propagation, modular reduction.
function BigNum(n) {
  this.words = array_new(n);
  this.size = n;
}
function bn_seed(b, seed) {
  var x = seed;
  for (var i = 0; i < b.size; i++) {
    x = (x * 1103 + 12345) % 32768;
    b.words[i] = x;
  }
}
function bn_addmul(dst, a, m) {
  var carry = 0;
  var n = dst.size;
  var aw = a.words;
  var dw = dst.words;
  for (var i = 0; i < n; i++) {
    var t = dw[i] + aw[i] * m + carry;
    dw[i] = t % 32768;
    carry = (t / 32768) | 0;
  }
  return carry;
}
function bn_fold(b) {
  var acc = 0;
  var w = b.words;
  for (var i = 0; i < b.size; i++) {
    acc = (acc + w[i] * (i + 1)) & 268435455;
  }
  return acc;
}
var x = new BigNum(96);
var y = new BigNum(96);
bn_seed(x, 7);
bn_seed(y, 13);
function bench() {
  var check = 0;
  for (var r = 0; r < 22; r++) {
    var c = bn_addmul(x, y, (r % 7) + 1);
    check = (check + c + bn_fold(x)) & 268435455;
  }
  return check;
}
|}

let deltablue =
  Workload.make ~suite:Workload.Octane ~selected:true "deltablue"
    {|
// One-way constraint solver: Variable and Constraint objects linked via
// properties; constraint list held in a Planner object's elements array.
function Variable(name, value) {
  this.name = name;
  this.value = value;
  this.stay = true;
  this.mark = 0;
}
function Constraint(src, dst, scale, offset) {
  this.src = src;
  this.dst = dst;
  this.scale = scale;
  this.offset = offset;
  this.satisfied = false;
}
function Planner(n) {
  this.constraints = array_new(0);
  this.vars = array_new(0);
  this.count = n;
}
function build(p, n) {
  for (var i = 0; i < n; i++) {
    push(p.vars, new Variable("v", i));
  }
  for (var i = 0; i + 1 < n; i++) {
    push(p.constraints, new Constraint(p.vars[i], p.vars[i + 1], 2, 1));
  }
}
function execute(p, rounds) {
  var cs = p.constraints;
  var m = cs.length;
  var total = 0;
  for (var r = 0; r < rounds; r++) {
    p.vars[0].value = r;
    for (var i = 0; i < m; i++) {
      var c = cs[i];
      var sv = c.src;
      var dv = c.dst;
      dv.value = (sv.value * c.scale + c.offset) % 65521;
      c.satisfied = true;
      dv.mark = r;
    }
    total = (total + p.vars[p.count - 1].value) & 268435455;
  }
  return total;
}
var planner = new Planner(60);
build(planner, 60);
function bench() {
  return execute(planner, 30);
}
|}

let earley_boyer =
  Workload.make ~suite:Workload.Octane ~selected:true "earley-boyer"
    {|
// Scheme-ish term rewriting: cons pairs (car/cdr object properties,
// polymorphic leaf vs pair), recursive walks.
function Pair(car, cdr) { this.car = car; this.cdr = cdr; }
function Leaf(tag) { this.tag = tag; }
function mklist(depth, salt) {
  if (depth == 0) { return new Leaf(salt % 17); }
  return new Pair(mklist(depth - 1, salt + 1), mklist(depth - 1, salt + 2));
}
function isPair(t) { return t.kindp == true; }
function weight(t, depth) {
  if (depth == 0) { return t.tag; }
  return weight(t.car, depth - 1) + 2 * weight(t.cdr, depth - 1);
}
function rewrite(t, depth, r) {
  if (depth == 0) { t.tag = (t.tag + r) % 17; return t; }
  var a = rewrite(t.car, depth - 1, r + 1);
  var d = rewrite(t.cdr, depth - 1, r + 2);
  return new Pair(a, d);
}
var tree = mklist(9, 1);
function bench() {
  var acc = 0;
  for (var r = 0; r < 6; r++) {
    tree = rewrite(tree, 9, r);
    acc = (acc + weight(tree, 9)) & 268435455;
  }
  return acc;
}
|}

let gbemu =
  Workload.make ~suite:Workload.Octane ~selected:true "gbemu"
    {|
// CPU emulator core: a register-file object, SMI memory array inside a
// Machine object, opcode dispatch with bitwise math.
function Regs() {
  this.a = 0; this.b = 0; this.c = 0; this.d = 0;
  this.pc = 0; this.sp = 65535; this.flags = 0;
}
function Machine(memsize) {
  this.mem = array_new(memsize);
  this.regs = new Regs();
  this.size = memsize;
  this.cycles = 0;
}
function loadrom(m) {
  var x = 1;
  for (var i = 0; i < m.size; i++) {
    x = (x * 75 + 74) % 65537;
    m.mem[i] = x & 255;
  }
}
function run(m, steps) {
  var r = m.regs;
  var mem = m.mem;
  var size = m.size;
  for (var s = 0; s < steps; s++) {
    var op = mem[r.pc % size];
    r.pc = (r.pc + 1) % size;
    var k = op & 7;
    if (k == 0) { r.a = (r.a + op) & 255; }
    else if (k == 1) { r.b = r.a ^ op; }
    else if (k == 2) { r.c = (r.b << 1) & 255; }
    else if (k == 3) { r.d = (r.c >> 1) | (op & 1); }
    else if (k == 4) { r.a = (r.a + r.b) & 255; r.flags = r.a == 0 ? 1 : 0; }
    else if (k == 5) { mem[(r.sp - s) & (size - 1)] = r.a; }
    else if (k == 6) { r.a = mem[(op * 31) & (size - 1)]; }
    else { r.pc = (r.pc + (op & 15)) % size; }
    m.cycles = m.cycles + 1;
  }
  return r.a + r.b * 256 + r.c * 65536 + r.d;
}
var machine = new Machine(4096);
loadrom(machine);
function bench() {
  return run(machine, 6000);
}
|}

let mandreel =
  Workload.make ~suite:Workload.Octane ~selected:true "mandreel"
    {|
// Compiled-C++-style numeric kernel: double fields on vector objects,
// tight arithmetic loops (mandelbrot-flavored).
function C(re, im) { this.re = re; this.im = im; }
function iter(c, maxit) {
  var zr = 0.0;
  var zi = 0.0;
  var n = 0;
  while (n < maxit) {
    var r2 = zr * zr;
    var i2 = zi * zi;
    if (r2 + i2 > 4.0) { return n; }
    zi = 2.0 * zr * zi + c.im;
    zr = r2 - i2 + c.re;
    n++;
  }
  return maxit;
}
var points = array_new(0);
function setup(n) {
  for (var i = 0; i < n; i++) {
    var x = 0.0 - 2.0 + 2.5 * (i % 40) / 40.0 + 0.00013;
    var y = 0.0 - 1.25 + 2.5 * ((i / 40) | 0) / 40.0 + 0.00031;
    push(points, new C(x, y));
  }
}
setup(480);
function bench() {
  var total = 0;
  var n = points.length;
  for (var rep = 0; rep < 3; rep++) {
    for (var i = 0; i < n; i++) {
      total = total + iter(points[i], 24);
    }
  }
  return total;
}
|}

let pdfjs =
  Workload.make ~suite:Workload.Octane ~selected:true "pdfjs"
    {|
// Stream decoding: byte arrays inside Stream objects, dictionary-ish
// objects with mixed-type properties, run-length + predictor passes.
function Stream(n) {
  this.bytes = array_new(n);
  this.pos = 0;
  this.len = n;
}
function Dict(w, h, bpc) {
  this.width = w;
  this.height = h;
  this.bpc = bpc;
}
function fill(s, seed) {
  var x = seed;
  for (var i = 0; i < s.len; i++) {
    x = (x * 109 + 89) % 251;
    s.bytes[i] = x;
  }
}
function predictor(s, d) {
  var bytes = s.bytes;
  var w = d.width;
  var h = d.height;
  var acc = 0;
  for (var row = 1; row < h; row++) {
    var base = row * w;
    for (var col = 0; col < w; col++) {
      var up = bytes[base - w + col];
      var cur = bytes[base + col];
      var v = (cur + up) & 255;
      bytes[base + col] = v;
      acc = (acc + v) & 268435455;
    }
  }
  return acc;
}
var dict = new Dict(64, 48, 8);
var stream = new Stream(64 * 48);
fill(stream, 31);
function bench() {
  var check = 0;
  for (var r = 0; r < 8; r++) {
    check = (check + predictor(stream, dict)) & 268435455;
  }
  return check;
}
|}

let raytrace =
  Workload.make ~suite:Workload.Octane ~selected:true "raytrace"
    {|
// Ray tracer: Vec3 double properties everywhere, spheres held in a Scene
// object's elements array, per-pixel shading loop.
function V3(x, y, z) { this.x = x; this.y = y; this.z = z; }
function Sphere(cx, cy, cz, r, shine) {
  this.center = new V3(cx, cy, cz);
  this.radius = r;
  this.shine = shine;
}
function Scene() {
  this.spheres = array_new(0);
  this.light = new V3(0.5, 1.0, 0.75);
}
function dot(a, b) { return a.x * b.x + a.y * b.y + a.z * b.z; }
function hit(s, ox, oy, oz, dx, dy, dz) {
  var c = s.center;
  var lx = c.x - ox;
  var ly = c.y - oy;
  var lz = c.z - oz;
  var tca = lx * dx + ly * dy + lz * dz;
  if (tca < 0.0) { return 0.0 - 1.0; }
  var d2 = lx * lx + ly * ly + lz * lz - tca * tca;
  var r2 = s.radius * s.radius;
  if (d2 > r2) { return 0.0 - 1.0; }
  return tca - sqrt(r2 - d2);
}
function trace(sc, px, py) {
  var dx = px; var dy = py; var dz = 1.0;
  var inv = 1.0 / sqrt(dx * dx + dy * dy + dz * dz);
  dx = dx * inv; dy = dy * inv; dz = dz * inv;
  var ss = sc.spheres;
  var n = ss.length;
  var best = 1000000.0;
  var shade = 0.0;
  for (var i = 0; i < n; i++) {
    var s = ss[i];
    var t = hit(s, 0.0, 0.0, 0.0, dx, dy, dz);
    if (t > 0.0) { if (t < best) {
      best = t;
      var l = sc.light;
      shade = s.shine * (dx * l.x + dy * l.y + dz * l.z);
      if (shade < 0.0) { shade = 0.0; }
    } }
  }
  return shade;
}
var scene = new Scene();
function setup() {
  for (var i = 0; i < 12; i++) {
    push(scene.spheres,
         new Sphere(0.0 - 2.0 + 0.4 * i + 0.0007, 0.5 * sin(i * 1.0 + 0.1),
                    3.0 + i * 0.25 + 0.0003,
                    0.5 + 0.05 * i + 0.0001, 0.3 + 0.04 * i + 0.0002));
  }
}
setup();
function bench() {
  var acc = 0.0;
  for (var y = 0; y < 24; y++) {
    for (var x = 0; x < 24; x++) {
      acc = acc + trace(scene, (x - 12) * 0.05, (y - 12) * 0.05);
    }
  }
  return acc;
}
|}

let richards =
  Workload.make ~suite:Workload.Octane ~selected:true "richards"
    {|
// OS task scheduler: TCB objects in a run queue (elements array of a
// Scheduler object), state machine over object properties.
function Tcb(id, pri) {
  this.id = id;
  this.pri = pri;
  this.state = 0;
  this.work = 0;
  this.hold = 0;
}
function Scheduler(n) {
  this.queue = array_new(0);
  this.count = n;
  this.qpos = 0;
  this.done = 0;
}
function mk(s, n) {
  for (var i = 0; i < n; i++) {
    push(s.queue, new Tcb(i, i % 4));
  }
}
function schedule(s, steps) {
  var q = s.queue;
  var n = s.count;
  var acc = 0;
  for (var step = 0; step < steps; step++) {
    var t = q[s.qpos];
    s.qpos = (s.qpos + 1) % n;
    if (t.state == 0) {
      t.work = t.work + t.pri + 1;
      if (t.work > 12) { t.state = 1; }
    } else if (t.state == 1) {
      t.hold = t.hold + 1;
      if (t.hold > t.pri) { t.state = 2; }
    } else {
      t.work = 0;
      t.hold = 0;
      t.state = 0;
      s.done = s.done + 1;
    }
    acc = (acc + t.work * 3 + t.hold) & 268435455;
  }
  return acc + s.done;
}
var sched = new Scheduler(40);
mk(sched, 40);
function bench() {
  return schedule(sched, 4200);
}
|}

let splay =
  Workload.make ~suite:Workload.Octane ~selected:false "splay"
    {|
// Splay-tree-flavored binary tree: left/right properties are polymorphic
// (node or null), which is exactly why the paper's filter drops splay.
function Node(key, value) {
  this.key = key;
  this.value = value;
  this.left = null;
  this.right = null;
}
function insert(root, key) {
  if (root == null) { return new Node(key, key * 2); }
  var cur = root;
  while (true) {
    if (key < cur.key) {
      if (cur.left == null) { cur.left = new Node(key, key * 2); break; }
      cur = cur.left;
    } else if (key > cur.key) {
      if (cur.right == null) { cur.right = new Node(key, key * 2); break; }
      cur = cur.right;
    } else { break; }
  }
  return root;
}
function lookup(root, key) {
  var cur = root;
  while (cur != null) {
    if (key == cur.key) { return cur.value; }
    if (key < cur.key) { cur = cur.left; } else { cur = cur.right; }
  }
  return 0 - 1;
}
var root = null;
function build(n) {
  var x = 1;
  for (var i = 0; i < n; i++) {
    x = (x * 131 + 7) % 4093;
    root = insert(root, x);
  }
}
build(600);
function bench() {
  var acc = 0;
  var x = 1;
  for (var i = 0; i < 3000; i++) {
    x = (x * 131 + 7) % 4093;
    acc = (acc + lookup(root, x)) & 268435455;
  }
  return acc;
}
|}

let navier_stokes =
  Workload.make ~suite:Workload.Octane ~selected:false "navier-stokes"
    {|
// Fluid solver: double arrays inside a Field object, stencil sweeps.
// Double elements are unboxed (kind invariant), so checks are already
// cheap without the mechanism: below the paper's 1% filter.
function Field(n) {
  this.u = array_new(0);
  this.v = array_new(0);
  this.n = n;
}
function init(f) {
  var total = f.n * f.n;
  for (var i = 0; i < total; i++) {
    push(f.u, 0.0 + (i % 17) * 0.1);
    push(f.v, 0.0);
  }
}
function diffuse(f, rounds) {
  var n = f.n;
  var u = f.u;
  var v = f.v;
  var acc = 0.0;
  for (var r = 0; r < rounds; r++) {
    for (var y = 1; y + 1 < n; y++) {
      var base = y * n;
      for (var x = 1; x + 1 < n; x++) {
        var c = base + x;
        var nv = (u[c - 1] + u[c + 1] + u[c - n] + u[c + n]) * 0.25;
        v[c] = nv;
        acc = acc + nv;
      }
    }
    var tmp = f.u; f.u = f.v; f.v = tmp;
    u = f.u; v = f.v;
  }
  return acc;
}
var field = new Field(36);
init(field);
function bench() {
  return diffuse(field, 4);
}
|}

let all =
  [
    box2d; crypto; deltablue; earley_boyer; gbemu; mandreel; pdfjs; raytrace;
    richards; splay; navier_stokes;
  ]
