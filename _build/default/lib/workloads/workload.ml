(** Benchmark workload descriptor. Each workload is a MiniJS program whose
    top level builds the input state and defines a [bench()] function; the
    harness runs [bench] repeatedly (the paper's steady-state protocol:
    10 iterations, statistics from the last one) and checks the returned
    checksum across tiers and configurations. *)

type suite = Octane | Sunspider | Kraken

let suite_name = function
  | Octane -> "Octane"
  | Sunspider -> "SunSpider"
  | Kraken -> "Kraken"

type t = {
  name : string;
  suite : suite;
  selected : bool;
      (** member of the paper's ">1% check overhead" subset used in
          Figures 2, 3, 8 and 9 (27 of 54 in the paper) *)
  source : string;
  iterations : int;  (** total bench() calls; the last one is measured *)
}

let make ?(iterations = 10) ~suite ~selected name source =
  { name; suite; selected; source; iterations }
