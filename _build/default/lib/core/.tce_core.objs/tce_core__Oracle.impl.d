lib/core/oracle.ml: Hashtbl List
