lib/core/oracle.mli:
