lib/core/class_list.ml: Array Bytemap Fmt List Printf String Tce_support Tce_vm
