lib/core/class_list.mli: Format Tce_support Tce_vm
