lib/core/class_cache.mli: Class_list
