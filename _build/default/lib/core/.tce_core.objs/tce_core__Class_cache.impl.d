lib/core/class_cache.ml: Array Class_list
