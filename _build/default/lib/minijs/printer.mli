(** Source-level pretty printer. [Parser.parse (to_string p)] reproduces [p]
    up to [Ast.equal_program] — a qcheck property in the test suite. *)

val punct_of_binop : Ast.binop -> string
val pp_expr : Format.formatter -> Ast.expr -> unit
val pp_stmt : int -> Format.formatter -> Ast.stmt -> unit
val pp_block : int -> Format.formatter -> Ast.block -> unit
val pp_func : Format.formatter -> Ast.func -> unit
val pp_program : Format.formatter -> Ast.program -> unit
val to_string : Ast.program -> string
val expr_to_string : Ast.expr -> string
