(** Source-level pretty printer for MiniJS. [Parser.parse (print p)] must
    reproduce [p] up to [Ast.equal_program] — this roundtrip is a qcheck
    property in the test suite. *)

open Ast

let punct_of_binop = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%"
  | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">=" | Eq -> "==" | Ne -> "!="
  | BitAnd -> "&" | BitOr -> "|" | BitXor -> "^"
  | Shl -> "<<" | Shr -> ">>" | Ushr -> ">>>"
  | LAnd -> "&&" | LOr -> "||"

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec pp_expr ppf e =
  match e with
  | Int i -> if i < 0 then Fmt.pf ppf "(0 - %d)" (-i) else Fmt.int ppf i
  | Float f ->
    (* Keep a decimal point so the lexer reads it back as FLOAT. *)
    let s = Printf.sprintf "%.17g" f in
    if String.contains s '.' || String.contains s 'e' || String.contains s 'n'
    then Fmt.string ppf s
    else Fmt.pf ppf "%s.0" s
  | Str s -> Fmt.pf ppf "\"%s\"" (escape s)
  | Bool b -> Fmt.bool ppf b
  | Null -> Fmt.string ppf "null"
  | This -> Fmt.string ppf "this"
  | Var x -> Fmt.string ppf x
  | Binop (op, a, b) -> Fmt.pf ppf "(%a %s %a)" pp_expr a (punct_of_binop op) pp_expr b
  | Unop (Neg, a) -> Fmt.pf ppf "(-%a)" pp_expr a
  | Unop (Not, a) -> Fmt.pf ppf "(!%a)" pp_expr a
  | Unop (BitNot, a) -> Fmt.pf ppf "(~%a)" pp_expr a
  | PropGet (o, f) -> Fmt.pf ppf "%a.%s" pp_expr o f
  | ElemGet (a, i) -> Fmt.pf ppf "%a[%a]" pp_expr a pp_expr i
  | Call (f, args) -> Fmt.pf ppf "%s(%a)" f pp_args args
  | New (c, args) -> Fmt.pf ppf "(new %s(%a))" c pp_args args
  | ObjectLit fields ->
    Fmt.pf ppf "{%a}"
      (Fmt.list ~sep:(Fmt.any ", ") (fun ppf (k, v) -> Fmt.pf ppf "%s: %a" k pp_expr v))
      fields
  | ArrayLit es -> Fmt.pf ppf "[%a]" pp_args es
  | Cond (c, a, b) -> Fmt.pf ppf "(%a ? %a : %a)" pp_expr c pp_expr a pp_expr b

and pp_args ppf args = Fmt.list ~sep:(Fmt.any ", ") pp_expr ppf args

let rec pp_stmt ind ppf s =
  let pad = String.make (2 * ind) ' ' in
  match s with
  | Var_decl (x, e) -> Fmt.pf ppf "%svar %s = %a;\n" pad x pp_expr e
  | Assign (x, e) -> Fmt.pf ppf "%s%s = %a;\n" pad x pp_expr e
  | Prop_set (o, f, v) -> Fmt.pf ppf "%s%a.%s = %a;\n" pad pp_expr o f pp_expr v
  | Elem_set (a, i, v) -> Fmt.pf ppf "%s%a[%a] = %a;\n" pad pp_expr a pp_expr i pp_expr v
  | Expr e -> Fmt.pf ppf "%s%a;\n" pad pp_expr e
  | If (c, t, []) -> Fmt.pf ppf "%sif (%a) {\n%a%s}\n" pad pp_expr c (pp_block (ind + 1)) t pad
  | If (c, t, e) ->
    Fmt.pf ppf "%sif (%a) {\n%a%s} else {\n%a%s}\n" pad pp_expr c (pp_block (ind + 1)) t
      pad (pp_block (ind + 1)) e pad
  | While (c, b) -> Fmt.pf ppf "%swhile (%a) {\n%a%s}\n" pad pp_expr c (pp_block (ind + 1)) b pad
  | For (init, cond, step, b) ->
    let pp_simple ppf s =
      (* for-header statements: print without trailing ";\n" *)
      let text = Fmt.str "%a" (pp_stmt 0) s in
      let text = String.trim text in
      let text =
        if String.length text > 0 && text.[String.length text - 1] = ';' then
          String.sub text 0 (String.length text - 1)
        else text
      in
      Fmt.string ppf text
    in
    Fmt.pf ppf "%sfor (%a; %a; %a) {\n%a%s}\n" pad
      (Fmt.option pp_simple) init
      (Fmt.option pp_expr) cond
      (Fmt.option pp_simple) step
      (pp_block (ind + 1)) b pad
  | Return None -> Fmt.pf ppf "%sreturn;\n" pad
  | Return (Some e) -> Fmt.pf ppf "%sreturn %a;\n" pad pp_expr e
  | Break -> Fmt.pf ppf "%sbreak;\n" pad
  | Continue -> Fmt.pf ppf "%scontinue;\n" pad

and pp_block ind ppf b = List.iter (pp_stmt ind ppf) b

let pp_func ppf (f : func) =
  Fmt.pf ppf "function %s(%a) {\n%a}\n" f.name
    (Fmt.list ~sep:(Fmt.any ", ") Fmt.string)
    f.params (pp_block 1) f.body

let pp_program ppf (p : program) =
  List.iter (fun f -> Fmt.pf ppf "%a\n" pp_func f) p.funcs;
  pp_block 0 ppf p.main

let to_string p = Fmt.str "%a" pp_program p

let expr_to_string e = Fmt.str "%a" pp_expr e
