(** Recursive-descent parser for MiniJS with precedence climbing.

    Compound assignments ([x += e], [o.p++], …) are desugared at parse time
    into plain assignments, so later stages only see the core AST. *)

exception Error of string * Ast.pos

type t = { toks : (Lexer.token * Ast.pos) array; mutable i : int }

let create src = { toks = Array.of_list (Lexer.tokenize src); i = 0 }

let peek p = fst p.toks.(p.i)
let peek_pos p = snd p.toks.(p.i)
let peek2 p = if p.i + 1 < Array.length p.toks then fst p.toks.(p.i + 1) else Lexer.EOF

let advance p = if p.i < Array.length p.toks - 1 then p.i <- p.i + 1

let fail p msg = raise (Error (msg, peek_pos p))

let eat_punct p s =
  match peek p with
  | Lexer.PUNCT x when x = s -> advance p
  | tok -> fail p (Fmt.str "expected %S, found %a" s Lexer.pp_token tok)

let eat_kw p s =
  match peek p with
  | Lexer.KW x when x = s -> advance p
  | tok -> fail p (Fmt.str "expected keyword %S, found %a" s Lexer.pp_token tok)

let is_punct p s = match peek p with Lexer.PUNCT x -> x = s | _ -> false
let is_kw p s = match peek p with Lexer.KW x -> x = s | _ -> false

let ident p =
  match peek p with
  | Lexer.IDENT s -> advance p; s
  | tok -> fail p (Fmt.str "expected identifier, found %a" Lexer.pp_token tok)

(* --- expressions --- *)

let binop_of_punct = function
  | "+" -> Some Ast.Add | "-" -> Some Ast.Sub | "*" -> Some Ast.Mul
  | "/" -> Some Ast.Div | "%" -> Some Ast.Mod
  | "<" -> Some Ast.Lt | "<=" -> Some Ast.Le | ">" -> Some Ast.Gt | ">=" -> Some Ast.Ge
  | "==" | "===" -> Some Ast.Eq | "!=" | "!==" -> Some Ast.Ne
  | "&" -> Some Ast.BitAnd | "|" -> Some Ast.BitOr | "^" -> Some Ast.BitXor
  | "<<" -> Some Ast.Shl | ">>" -> Some Ast.Shr | ">>>" -> Some Ast.Ushr
  | "&&" -> Some Ast.LAnd | "||" -> Some Ast.LOr
  | _ -> None

(* Lower value binds looser. *)
let prec = function
  | Ast.LOr -> 1
  | Ast.LAnd -> 2
  | Ast.BitOr -> 3
  | Ast.BitXor -> 4
  | Ast.BitAnd -> 5
  | Ast.Eq | Ast.Ne -> 6
  | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge -> 7
  | Ast.Shl | Ast.Shr | Ast.Ushr -> 8
  | Ast.Add | Ast.Sub -> 9
  | Ast.Mul | Ast.Div | Ast.Mod -> 10

let rec expr p = ternary p

and ternary p =
  let c = binary p 1 in
  if is_punct p "?" then begin
    advance p;
    let a = expr p in
    eat_punct p ":";
    let b = expr p in
    Ast.Cond (c, a, b)
  end
  else c

and binary p min_prec =
  let lhs = ref (unary p) in
  let continue = ref true in
  while !continue do
    match peek p with
    | Lexer.PUNCT s -> (
      match binop_of_punct s with
      | Some op when prec op >= min_prec ->
        advance p;
        let rhs = binary p (prec op + 1) in
        lhs := Ast.Binop (op, !lhs, rhs)
      | _ -> continue := false)
    | _ -> continue := false
  done;
  !lhs

and unary p =
  match peek p with
  | Lexer.PUNCT "-" -> advance p; Ast.Unop (Ast.Neg, unary p)
  | Lexer.PUNCT "!" -> advance p; Ast.Unop (Ast.Not, unary p)
  | Lexer.PUNCT "~" -> advance p; Ast.Unop (Ast.BitNot, unary p)
  | _ -> postfix p

and postfix p =
  let e = ref (primary p) in
  let continue = ref true in
  while !continue do
    if is_punct p "." then begin
      advance p;
      let name = ident p in
      e := Ast.PropGet (!e, name)
    end
    else if is_punct p "[" then begin
      advance p;
      let idx = expr p in
      eat_punct p "]";
      e := Ast.ElemGet (!e, idx)
    end
    else continue := false
  done;
  !e

and primary p =
  match peek p with
  | Lexer.INT i -> advance p; Ast.Int i
  | Lexer.FLOAT f -> advance p; Ast.Float f
  | Lexer.STRING s -> advance p; Ast.Str s
  | Lexer.KW "true" -> advance p; Ast.Bool true
  | Lexer.KW "false" -> advance p; Ast.Bool false
  | Lexer.KW "null" -> advance p; Ast.Null
  | Lexer.KW "this" -> advance p; Ast.This
  | Lexer.KW "new" ->
    advance p;
    let name = ident p in
    eat_punct p "(";
    let args = arg_list p in
    Ast.New (name, args)
  | Lexer.IDENT name when peek2 p = Lexer.PUNCT "(" ->
    advance p;
    advance p;
    let args = arg_list p in
    Ast.Call (name, args)
  | Lexer.IDENT name -> advance p; Ast.Var name
  | Lexer.PUNCT "(" ->
    advance p;
    let e = expr p in
    eat_punct p ")";
    e
  | Lexer.PUNCT "{" ->
    advance p;
    let rec fields acc =
      if is_punct p "}" then (advance p; List.rev acc)
      else begin
        let name =
          match peek p with
          | Lexer.IDENT s | Lexer.STRING s -> advance p; s
          | tok -> fail p (Fmt.str "expected field name, found %a" Lexer.pp_token tok)
        in
        eat_punct p ":";
        let v = expr p in
        if is_punct p "," then advance p;
        fields ((name, v) :: acc)
      end
    in
    Ast.ObjectLit (fields [])
  | Lexer.PUNCT "[" ->
    advance p;
    let rec elems acc =
      if is_punct p "]" then (advance p; List.rev acc)
      else begin
        let v = expr p in
        if is_punct p "," then advance p;
        elems (v :: acc)
      end
    in
    Ast.ArrayLit (elems [])
  | tok -> fail p (Fmt.str "expected expression, found %a" Lexer.pp_token tok)

and arg_list p =
  let rec go acc =
    if is_punct p ")" then (advance p; List.rev acc)
    else begin
      let e = expr p in
      if is_punct p "," then advance p;
      go (e :: acc)
    end
  in
  go []

(* --- statements --- *)

(** Turn "lhs op= rhs" / "lhs = rhs" into a core statement. *)
let assign_of p lhs (rhs : Ast.expr) : Ast.stmt =
  match lhs with
  | Ast.Var x -> Ast.Assign (x, rhs)
  | Ast.PropGet (o, f) -> Ast.Prop_set (o, f, rhs)
  | Ast.ElemGet (a, i) -> Ast.Elem_set (a, i, rhs)
  | _ -> fail p "invalid assignment target"

let desugar_compound p lhs op rhs : Ast.stmt =
  (* Note: the receiver expression is duplicated; workloads only use simple
     receivers on compound assignments, so no double side effects arise. *)
  assign_of p lhs (Ast.Binop (op, lhs, rhs))

let rec stmt p : Ast.stmt =
  match peek p with
  | Lexer.KW "var" ->
    advance p;
    let name = ident p in
    eat_punct p "=";
    let e = expr p in
    semi p;
    Ast.Var_decl (name, e)
  | Lexer.KW "if" ->
    advance p;
    eat_punct p "(";
    let c = expr p in
    eat_punct p ")";
    let t = block_or_stmt p in
    let e = if is_kw p "else" then (advance p; block_or_stmt p) else [] in
    Ast.If (c, t, e)
  | Lexer.KW "while" ->
    advance p;
    eat_punct p "(";
    let c = expr p in
    eat_punct p ")";
    let b = block_or_stmt p in
    Ast.While (c, b)
  | Lexer.KW "for" ->
    advance p;
    eat_punct p "(";
    let init = if is_punct p ";" then (advance p; None) else Some (simple_stmt_no_semi p) in
    (match init with Some _ -> semi p | None -> ());
    let cond = if is_punct p ";" then None else Some (expr p) in
    eat_punct p ";";
    let step = if is_punct p ")" then None else Some (simple_stmt_no_semi p) in
    eat_punct p ")";
    let b = block_or_stmt p in
    Ast.For (init, cond, step, b)
  | Lexer.KW "return" ->
    advance p;
    if is_punct p ";" then (advance p; Ast.Return None)
    else begin
      let e = expr p in
      semi p;
      Ast.Return (Some e)
    end
  | Lexer.KW "break" -> advance p; semi p; Ast.Break
  | Lexer.KW "continue" -> advance p; semi p; Ast.Continue
  | _ ->
    let s = simple_stmt_no_semi p in
    semi p;
    s

(** Expression-or-assignment statement, no trailing semicolon (for-headers). *)
and simple_stmt_no_semi p : Ast.stmt =
  match peek p with
  | Lexer.KW "var" ->
    advance p;
    let name = ident p in
    eat_punct p "=";
    Ast.Var_decl (name, expr p)
  | _ -> (
    let lhs = expr p in
    match peek p with
    | Lexer.PUNCT "=" -> advance p; assign_of p lhs (expr p)
    | Lexer.PUNCT "+=" -> advance p; desugar_compound p lhs Ast.Add (expr p)
    | Lexer.PUNCT "-=" -> advance p; desugar_compound p lhs Ast.Sub (expr p)
    | Lexer.PUNCT "*=" -> advance p; desugar_compound p lhs Ast.Mul (expr p)
    | Lexer.PUNCT "/=" -> advance p; desugar_compound p lhs Ast.Div (expr p)
    | Lexer.PUNCT "++" -> advance p; desugar_compound p lhs Ast.Add (Ast.Int 1)
    | Lexer.PUNCT "--" -> advance p; desugar_compound p lhs Ast.Sub (Ast.Int 1)
    | _ -> Ast.Expr lhs)

and semi p = eat_punct p ";"

and block p : Ast.block =
  eat_punct p "{";
  let rec go acc =
    if is_punct p "}" then (advance p; List.rev acc) else go (stmt p :: acc)
  in
  go []

and block_or_stmt p : Ast.block = if is_punct p "{" then block p else [ stmt p ]

let func p : Ast.func =
  eat_kw p "function";
  let name = ident p in
  eat_punct p "(";
  let rec params acc =
    if is_punct p ")" then (advance p; List.rev acc)
    else begin
      let x = ident p in
      if is_punct p "," then advance p;
      params (x :: acc)
    end
  in
  let params = params [] in
  let body = block p in
  let is_ctor = String.length name > 0 && name.[0] >= 'A' && name.[0] <= 'Z' in
  { name; params; body; is_ctor }

let program p : Ast.program =
  let rec go funcs main =
    match peek p with
    | Lexer.EOF -> { Ast.funcs = List.rev funcs; main = List.rev main }
    | Lexer.KW "function" -> go (func p :: funcs) main
    | _ -> go funcs (stmt p :: main)
  in
  go [] []

(** Parse a full MiniJS program from source text. *)
let parse src =
  try program (create src) with
  | Lexer.Error (msg, pos) -> raise (Error ("lex error: " ^ msg, pos))

(** Parse a single expression (used by tests). *)
let parse_expr src =
  let p = create src in
  let e = expr p in
  (match peek p with
  | Lexer.EOF -> ()
  | tok -> fail p (Fmt.str "trailing input: %a" Lexer.pp_token tok));
  e
