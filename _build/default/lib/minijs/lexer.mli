(** Hand-rolled lexer for MiniJS (the sealed environment has no menhir or
    ocamllex preprocessing needs; a hand lexer keeps positions simple). *)

type token =
  | INT of int
  | FLOAT of float
  | STRING of string
  | IDENT of string
  | KW of string
  | PUNCT of string  (** longest-match operators and delimiters *)
  | EOF

val pp_token : Format.formatter -> token -> unit
val equal_token : token -> token -> bool

exception Error of string * Ast.pos

val keywords : string list

type t

val create : string -> t
val pos : t -> Ast.pos

(** Next token and its starting position. @raise Error on lexical errors. *)
val next : t -> token * Ast.pos

(** The whole source; the EOF token is included last. *)
val tokenize : string -> (token * Ast.pos) list
