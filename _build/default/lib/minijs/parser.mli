(** Recursive-descent parser for MiniJS with precedence climbing. Compound
    assignments ([x += e], [o.p++], …) are desugared at parse time. *)

exception Error of string * Ast.pos

(** Parse a full program. @raise Error with a source position. *)
val parse : string -> Ast.program

(** Parse a single expression (tests). *)
val parse_expr : string -> Ast.expr
