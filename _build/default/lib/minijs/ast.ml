(** Abstract syntax of MiniJS, the JavaScript-like object language used as the
    vehicle for the reproduction (stand-in for the JS subset V8 executes in
    the paper's benchmarks).

    MiniJS keeps exactly the features the mechanism depends on:
    - objects with dynamically added named properties (drives hidden-class
      transitions),
    - elements arrays indexed by numbers,
    - SMI / heap-number arithmetic with overflow and division guards,
    - top-level functions, [new] constructor calls binding [this],
    - control flow with loops (hot-loop tier-up, OSR).

    Function values / closures are deliberately absent: the paper's mechanism
    profiles data properties, and V8 method dispatch is orthogonal to it. *)

type pos = { line : int; col : int } [@@deriving show, eq]

type binop =
  | Add | Sub | Mul | Div | Mod
  | Lt | Le | Gt | Ge | Eq | Ne
  | BitAnd | BitOr | BitXor | Shl | Shr | Ushr
  | LAnd | LOr
[@@deriving show, eq]

type unop = Neg | Not | BitNot [@@deriving show, eq]

type expr =
  | Int of int  (** integer literal; becomes an SMI when it fits int32 *)
  | Float of float  (** double literal; becomes a heap number *)
  | Str of string
  | Bool of bool
  | Null
  | This
  | Var of string
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | PropGet of expr * string  (** [e.name]; [e.length] on arrays is special *)
  | ElemGet of expr * expr  (** [e[i]] *)
  | Call of string * expr list  (** direct call of a top-level function or builtin *)
  | New of string * expr list  (** [new Ctor(args)] *)
  | ObjectLit of (string * expr) list  (** [{a: 1, b: 2}] *)
  | ArrayLit of expr list  (** [[1, 2, 3]] *)
  | Cond of expr * expr * expr  (** [c ? a : b] *)
[@@deriving show, eq]

type stmt =
  | Var_decl of string * expr  (** [var x = e;] *)
  | Assign of string * expr
  | Prop_set of expr * string * expr  (** [e.name = v;] *)
  | Elem_set of expr * expr * expr  (** [e[i] = v;] *)
  | Expr of expr
  | If of expr * block * block
  | While of expr * block
  | For of stmt option * expr option * stmt option * block
  | Return of expr option
  | Break
  | Continue
[@@deriving show, eq]

and block = stmt list [@@deriving show, eq]

type func = {
  name : string;
  params : string list;
  body : block;
  is_ctor : bool;  (** heuristically: capitalized name; [new] requires it *)
}
[@@deriving show, eq]

type program = { funcs : func list; main : block } [@@deriving show, eq]

(** Iterate over every expression in a program (tests, static census). *)
let rec iter_expr_e f e =
  f e;
  match e with
  | Int _ | Float _ | Str _ | Bool _ | Null | This | Var _ -> ()
  | Binop (_, a, b) -> iter_expr_e f a; iter_expr_e f b
  | Unop (_, a) -> iter_expr_e f a
  | PropGet (a, _) -> iter_expr_e f a
  | ElemGet (a, b) -> iter_expr_e f a; iter_expr_e f b
  | Call (_, args) | New (_, args) -> List.iter (iter_expr_e f) args
  | ObjectLit fields -> List.iter (fun (_, e) -> iter_expr_e f e) fields
  | ArrayLit es -> List.iter (iter_expr_e f) es
  | Cond (a, b, c) -> iter_expr_e f a; iter_expr_e f b; iter_expr_e f c

let rec iter_expr_s f s =
  match s with
  | Var_decl (_, e) | Assign (_, e) | Expr e | Return (Some e) -> iter_expr_e f e
  | Prop_set (a, _, b) -> iter_expr_e f a; iter_expr_e f b
  | Elem_set (a, b, c) -> iter_expr_e f a; iter_expr_e f b; iter_expr_e f c
  | If (c, t, e) -> iter_expr_e f c; List.iter (iter_expr_s f) t; List.iter (iter_expr_s f) e
  | While (c, b) -> iter_expr_e f c; List.iter (iter_expr_s f) b
  | For (init, cond, step, b) ->
    Option.iter (iter_expr_s f) init;
    Option.iter (iter_expr_e f) cond;
    Option.iter (iter_expr_s f) step;
    List.iter (iter_expr_s f) b
  | Return None | Break | Continue -> ()

let iter_expr f (p : program) =
  List.iter (fun fn -> List.iter (iter_expr_s f) fn.body) p.funcs;
  List.iter (iter_expr_s f) p.main
