(** Hand-rolled lexer for MiniJS (menhir/ocamllex-free by design: the sealed
    environment has no menhir, and a hand lexer keeps error positions easy). *)

type token =
  | INT of int
  | FLOAT of float
  | STRING of string
  | IDENT of string
  | KW of string  (** var function if else while for return new true false null this break continue *)
  | PUNCT of string  (** operators and delimiters, longest-match *)
  | EOF

let pp_token ppf = function
  | INT i -> Fmt.pf ppf "INT %d" i
  | FLOAT f -> Fmt.pf ppf "FLOAT %g" f
  | STRING s -> Fmt.pf ppf "STRING %S" s
  | IDENT s -> Fmt.pf ppf "IDENT %s" s
  | KW s -> Fmt.pf ppf "KW %s" s
  | PUNCT s -> Fmt.pf ppf "PUNCT %s" s
  | EOF -> Fmt.string ppf "EOF"

let equal_token (a : token) (b : token) = a = b

exception Error of string * Ast.pos

let keywords =
  [ "var"; "function"; "if"; "else"; "while"; "for"; "return"; "new";
    "true"; "false"; "null"; "this"; "break"; "continue" ]

(* Multi-character punctuation, longest first so matching is greedy. *)
let puncts3 = [ ">>>"; "===" ; "!==" ]
let puncts2 = [ "=="; "!="; "<="; ">="; "&&"; "||"; "<<"; ">>"; "+="; "-="; "*="; "/="; "++"; "--" ]
let puncts1 = [ "+"; "-"; "*"; "/"; "%"; "<"; ">"; "="; "!"; "&"; "|"; "^"; "~";
                "("; ")"; "{"; "}"; "["; "]"; ";"; ","; "."; "?"; ":" ]

type t = {
  src : string;
  mutable off : int;
  mutable line : int;
  mutable bol : int;  (** offset of beginning of current line *)
}

let create src = { src; off = 0; line = 1; bol = 0 }

let pos t : Ast.pos = { line = t.line; col = t.off - t.bol + 1 }

let peek_char t = if t.off < String.length t.src then Some t.src.[t.off] else None

let advance t =
  (match peek_char t with
  | Some '\n' ->
    t.line <- t.line + 1;
    t.bol <- t.off + 1
  | _ -> ());
  t.off <- t.off + 1

let is_digit c = c >= '0' && c <= '9'
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = '$'
let is_ident_char c = is_ident_start c || is_digit c

let rec skip_ws_and_comments t =
  match peek_char t with
  | Some (' ' | '\t' | '\r' | '\n') ->
    advance t;
    skip_ws_and_comments t
  | Some '/' when t.off + 1 < String.length t.src && t.src.[t.off + 1] = '/' ->
    while peek_char t <> None && peek_char t <> Some '\n' do advance t done;
    skip_ws_and_comments t
  | Some '/' when t.off + 1 < String.length t.src && t.src.[t.off + 1] = '*' ->
    let start = pos t in
    advance t; advance t;
    let rec close () =
      match peek_char t with
      | None -> raise (Error ("unterminated block comment", start))
      | Some '*' when t.off + 1 < String.length t.src && t.src.[t.off + 1] = '/' ->
        advance t; advance t
      | Some _ -> advance t; close ()
    in
    close ();
    skip_ws_and_comments t
  | _ -> ()

let lex_number t =
  let start = t.off in
  while (match peek_char t with Some c -> is_digit c | None -> false) do advance t done;
  let is_float = ref false in
  (match peek_char t with
  | Some '.' when t.off + 1 < String.length t.src && is_digit t.src.[t.off + 1] ->
    is_float := true;
    advance t;
    while (match peek_char t with Some c -> is_digit c | None -> false) do advance t done
  | _ -> ());
  (match peek_char t with
  | Some ('e' | 'E') ->
    is_float := true;
    advance t;
    (match peek_char t with Some ('+' | '-') -> advance t | _ -> ());
    while (match peek_char t with Some c -> is_digit c | None -> false) do advance t done
  | _ -> ());
  let text = String.sub t.src start (t.off - start) in
  if !is_float then FLOAT (float_of_string text)
  else
    match int_of_string_opt text with
    | Some i -> INT i
    | None -> FLOAT (float_of_string text)

let lex_string t =
  let quote = t.src.[t.off] in
  let start = pos t in
  advance t;
  let buf = Buffer.create 16 in
  let rec go () =
    match peek_char t with
    | None -> raise (Error ("unterminated string literal", start))
    | Some c when c = quote -> advance t
    | Some '\\' ->
      advance t;
      (match peek_char t with
      | Some 'n' -> Buffer.add_char buf '\n'; advance t
      | Some 't' -> Buffer.add_char buf '\t'; advance t
      | Some 'r' -> Buffer.add_char buf '\r'; advance t
      | Some '\\' -> Buffer.add_char buf '\\'; advance t
      | Some '0' -> Buffer.add_char buf '\000'; advance t
      | Some c -> Buffer.add_char buf c; advance t
      | None -> raise (Error ("unterminated escape", start)));
      go ()
    | Some c ->
      Buffer.add_char buf c;
      advance t;
      go ()
  in
  go ();
  STRING (Buffer.contents buf)

let try_punct t =
  let matches p =
    let n = String.length p in
    t.off + n <= String.length t.src && String.sub t.src t.off n = p
  in
  let rec find = function
    | [] -> None
    | p :: rest -> if matches p then Some p else find rest
  in
  match find puncts3 with
  | Some p -> Some p
  | None -> (
    match find puncts2 with
    | Some p -> Some p
    | None -> find puncts1)

(** Next token plus the position where it starts. *)
let next t : token * Ast.pos =
  skip_ws_and_comments t;
  let p = pos t in
  match peek_char t with
  | None -> (EOF, p)
  | Some c when is_digit c -> (lex_number t, p)
  | Some ('"' | '\'') -> (lex_string t, p)
  | Some c when is_ident_start c ->
    let start = t.off in
    while (match peek_char t with Some c -> is_ident_char c | None -> false) do advance t done;
    let text = String.sub t.src start (t.off - start) in
    if List.mem text keywords then (KW text, p) else (IDENT text, p)
  | Some c -> (
    match try_punct t with
    | Some pct ->
      for _ = 1 to String.length pct do advance t done;
      (PUNCT pct, p)
    | None -> raise (Error (Printf.sprintf "unexpected character %C" c, p)))

(** Tokenize the whole source (the EOF token is included last). *)
let tokenize src =
  let t = create src in
  let rec go acc =
    let tok, p = next t in
    match tok with EOF -> List.rev ((tok, p) :: acc) | _ -> go ((tok, p) :: acc)
  in
  go []
