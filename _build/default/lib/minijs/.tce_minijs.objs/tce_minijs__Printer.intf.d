lib/minijs/printer.pp.mli: Ast Format
