lib/minijs/lexer.pp.mli: Ast Format
