lib/minijs/printer.pp.ml: Ast Buffer Fmt List Printf String
