lib/minijs/lexer.pp.ml: Ast Buffer Fmt List Printf String
