lib/minijs/ast.pp.ml: List Option Ppx_deriving_runtime
