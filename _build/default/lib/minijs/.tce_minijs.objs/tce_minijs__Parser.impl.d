lib/minijs/parser.pp.ml: Array Ast Fmt Lexer List String
