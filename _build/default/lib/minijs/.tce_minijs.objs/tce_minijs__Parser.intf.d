lib/minijs/parser.pp.mli: Ast
