lib/vm/hidden_class.ml: Array Fmt Hashtbl Layout List Mem Printf
