lib/vm/heap.mli: Hashtbl Hidden_class Mem Value
