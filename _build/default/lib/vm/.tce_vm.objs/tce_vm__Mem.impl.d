lib/vm/mem.ml: Array Printf
