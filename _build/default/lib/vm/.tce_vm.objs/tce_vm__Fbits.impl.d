lib/vm/fbits.ml: Int64
