lib/vm/layout.ml: Array
