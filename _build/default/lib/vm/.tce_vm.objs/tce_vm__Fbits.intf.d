lib/vm/fbits.mli:
