lib/vm/layout.mli:
