lib/vm/mem.mli:
