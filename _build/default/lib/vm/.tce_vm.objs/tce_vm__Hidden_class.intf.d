lib/vm/hidden_class.mli: Format Hashtbl Mem
