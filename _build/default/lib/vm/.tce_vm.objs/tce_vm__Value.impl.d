lib/vm/value.ml: Float Fmt
