lib/vm/heap.ml: Array Fbits Float Fmt Hashtbl Hidden_class Layout List Mem Printf String Value
