(** Double payloads as single 63-bit simulated-memory words: bits 63..1 of
    the IEEE-754 representation (one mantissa bit dropped). Every double in
    the system goes through this canonicalization, so the interpreter and
    the optimized tier compute over identical values. *)

val of_float : float -> int
val to_float : int -> float

(** [to_float (of_float f)] — idempotent. *)
val canon : float -> float
