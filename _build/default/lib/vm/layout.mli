(** Object layout constants and encodings (paper §3.1, §4.2.1.3): 64-byte
    aligned objects whose every line carries [ClassID ‖ Line] in the top
    bytes of its first word; elements pointer and length in words 2 and 3;
    up to seven property slots per line. *)

val word_size : int
val line_bytes : int
val words_per_line : int

(** Word indexes on line 0 usable for named properties ([1; 4; 5; 6; 7]). *)
val line0_named_slots : int array

(** Word 2 — also the elements-profile position in the Class List. *)
val elements_ptr_slot : int

(** Word 3. *)
val elements_len_slot : int

(** SMI sentinel ClassID (paper: [11111111]). *)
val smi_classid : int

val max_classid : int
val max_line : int

(** Word index (from object base) of the [k]-th named property. *)
val slot_of_prop_index : int -> int

(** [(line, pos)] of a word index within an object. *)
val line_pos_of_slot : int -> int * int

(** 64-byte lines needed for [n] named properties. *)
val lines_for_props : int -> int

(** Class word: descriptor address in bits 0–47 (line 0 only), ClassID in
    bits 48–55, Line in bits 56–62.
    @raise Invalid_argument on out-of-range components. *)
val encode_class_word : desc_addr:int -> classid:int -> line:int -> int

val classid_of_class_word : int -> int
val line_of_class_word : int -> int
val desc_addr_of_class_word : int -> int

(** Slot position within a line from a byte address (bits 3–5, Fig. 4). *)
val slot_pos_of_addr : int -> int

(** Base address of the 64-byte line containing the address. *)
val line_base_of_addr : int -> int

val elements_header_words : int
val elements_data_offset : int
