(** Tagged machine words, V8-style (paper §3.3):

    - an [SMI] (small integer) has its least-significant bit cleared and
      carries a 32-bit signed integer in the upper bits;
    - a [pointer] has its least-significant bit set and carries the byte
      address of a heap object in the remaining bits.

    A word is an OCaml [int] (63-bit), which comfortably holds both. *)

type t = int

let smi_min = -0x8000_0000
let smi_max = 0x7fff_ffff

(** Does [v] fit the 32-bit SMI payload? Arithmetic that overflows this
    range must box the result into a heap number (a "math assumption"
    guard in optimized code). *)
let smi_fits v = v >= smi_min && v <= smi_max

exception Smi_overflow

let smi v : t = if smi_fits v then v lsl 1 else raise Smi_overflow

let smi_unchecked v : t = v lsl 1

let is_smi (t : t) = t land 1 = 0

let smi_value (t : t) = t asr 1

let ptr addr : t =
  if addr land 7 <> 0 then invalid_arg "Value.ptr: unaligned address";
  addr lor 1

let is_ptr (t : t) = t land 1 = 1

let ptr_addr (t : t) = t land lnot 1

(** Truncate to int32 two's complement (for bitwise ops, [x|0] idiom). *)
let to_int32 v =
  let m = v land 0xffff_ffff in
  if m >= 0x8000_0000 then m - 0x1_0000_0000 else m

(** Truncate to uint32 (for [>>>]). *)
let to_uint32 v = v land 0xffff_ffff

(** JS ToInt32 of a double. NaN/Inf/out-of-63-bit-range map to 0 (the spec
    maps them modulo 2^32; the engine uses this single definition in both
    tiers so they agree exactly). *)
let js_to_int32_float f =
  if Float.is_nan f || Float.abs f >= 9.2e18 then 0
  else to_int32 (int_of_float f)

let pp ppf (t : t) =
  if is_smi t then Fmt.pf ppf "smi:%d" (smi_value t)
  else Fmt.pf ppf "ptr:0x%x" (ptr_addr t)
