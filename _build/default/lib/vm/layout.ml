(** Object layout constants and encodings (paper §3.1, §4.2.1.3).

    Every heap object is 64-byte (cache-line) aligned. Each 64-byte line of an
    object carries, in the two most significant bytes of its first 8-byte
    word, the [ClassID] and relative [Line] number, so that the memory unit
    can recover [(ClassID, Line, slot)] from a store address alone. Line 0's
    first word additionally holds the 48-bit hidden class descriptor address.

    Line 0 slot map (word indexes within the line):
    - 0: class word
    - 1: named property slot (Prop1)
    - 2: elements array pointer (Prop2 — reserved; the Class List reuses this
         slot's profile for the type of the objects *inside* the elements
         array, paper Table 1)
    - 3: elements length (Prop3 — reserved)
    - 4-7: named property slots (Prop4-7)

    Lines >= 1: word 0 is the line header, words 1-7 are property slots. *)

let word_size = 8
let line_bytes = 64
let words_per_line = 8

(** Properties per line usable for named properties. *)
let line0_named_slots = [| 1; 4; 5; 6; 7 |]

let elements_ptr_slot = 2
let elements_len_slot = 3

(** SMI sentinel ClassID (paper: encoded as 11111111). *)
let smi_classid = 0xff

let max_classid = 0xfe
let max_line = 0x7f (* 7 bits of line keep the class word within 63 bits *)

(** Word index (from object base) of the [k]-th named property (0-based). *)
let slot_of_prop_index k =
  if k < 0 then invalid_arg "slot_of_prop_index";
  if k < Array.length line0_named_slots then line0_named_slots.(k)
  else begin
    let k' = k - Array.length line0_named_slots in
    let line = 1 + (k' / 7) in
    let pos = 1 + (k' mod 7) in
    (line * words_per_line) + pos
  end

(** [(line, pos)] of a word index within an object. *)
let line_pos_of_slot slot = (slot / words_per_line, slot mod words_per_line)

(** Number of 64-byte lines needed for [n] named properties. *)
let lines_for_props n =
  if n <= Array.length line0_named_slots then 1
  else 1 + ((n - Array.length line0_named_slots + 6) / 7)

(** Class word encoding: descriptor address in bits 0-47 (line 0 only),
    ClassID in bits 48-55, Line in bits 56-62. *)
let encode_class_word ~desc_addr ~classid ~line =
  if desc_addr land lnot 0xffff_ffff_ffff <> 0 then
    invalid_arg "encode_class_word: descriptor address exceeds 48 bits";
  if classid < 0 || classid > smi_classid then invalid_arg "encode_class_word: classid";
  if line < 0 || line > max_line then invalid_arg "encode_class_word: line";
  desc_addr lor (classid lsl 48) lor (line lsl 56)

let classid_of_class_word w = (w lsr 48) land 0xff
let line_of_class_word w = (w lsr 56) land 0x7f
let desc_addr_of_class_word w = w land 0xffff_ffff_ffff

(** Slot position within a line from a byte address (bits 3-5, paper Fig. 4). *)
let slot_pos_of_addr addr = (addr lsr 3) land 7

(** Base address of the 64-byte line containing [addr]. *)
let line_base_of_addr addr = addr land lnot (line_bytes - 1)

(** Elements (fixed) array layout: word 0 = class word, word 1 = capacity,
    data words from index 2. *)
let elements_header_words = 2

let elements_data_offset = elements_header_words * word_size
