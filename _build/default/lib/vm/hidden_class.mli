(** Hidden classes (V8 "maps", paper §3.1): immutable descriptors of object
    shape. Adding a named property transitions an object to a class that
    extends the old one; transitions are memoized so objects constructed the
    same way share a class. Arrays carry their elements kind in the class
    (packed SMI / double / tagged), like V8. *)

type elements_kind = E_smi | E_double | E_tagged

val pp_elements_kind : Format.formatter -> elements_kind -> unit

type kind =
  | K_object
  | K_array of elements_kind
  | K_number  (** boxed double (heap number) *)
  | K_string
  | K_boolean  (** oddball class shared by [true] and [false] *)
  | K_null
  | K_fixed_array  (** elements backing store *)

type t = {
  id : int;  (** ClassID: consecutive small integer, 0..0xfe *)
  desc_addr : int;  (** simulated address of the class descriptor *)
  kind : kind;
  name : string;
  prop_names : string array;  (** named properties in addition order *)
  prop_index : (string, int) Hashtbl.t;
  parent_id : int option;  (** the class this one transitioned from *)
  mutable transitions : (string * t) list;
}

val num_props : t -> int

(** Word index of a named property within objects of this class. *)
val slot_of_prop : t -> string -> int option

(** 64-byte lines objects of this class occupy. *)
val lines : t -> int

(** The class word stored in the first word of the given line. *)
val class_word : t -> line:int -> int

exception Too_many_classes

module Registry : sig
  type cls = t
  type t

  val create : Mem.t -> t
  val class_count : t -> int
  val find : t -> int -> cls option

  (** @raise Invalid_argument on an unknown ClassID. *)
  val find_exn : t -> int -> cls

  (** @raise Too_many_classes past the 8-bit ClassID space. *)
  val fresh :
    ?parent_id:int -> t -> kind:kind -> name:string -> prop_names:string array ->
    cls

  (** Memoized property-addition transition.
      @raise Invalid_argument when the property already exists. *)
  val transition : t -> cls -> string -> cls

  (** The shared array class of an elements kind. *)
  val array_class : t -> elements_kind -> cls

  (** Root class of object literals. *)
  val object_root_class : t -> cls

  val number_class : t -> cls
  val string_class : t -> cls
  val boolean_class : t -> cls
  val null_class : t -> cls
  val fixed_array_class : t -> cls

  (** All classes created so far, in id order. *)
  val all : t -> cls list
end
