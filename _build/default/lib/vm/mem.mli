(** Simulated byte-addressable memory: a growable array of 8-byte words.
    Accesses must be word-aligned; addresses double as the physical
    addresses seen by the timing simulator's cache hierarchy. *)

type t = {
  mutable words : int array;
  mutable next_free : int;  (** bump pointer (byte address) *)
  base : int;
}

val default_base : int
val create : ?base:int -> ?capacity_words:int -> unit -> t

(** @raise Invalid_argument on unaligned or below-base addresses. *)
val load : t -> int -> int

val store : t -> int -> int -> unit

(** Bump-allocate [bytes] aligned to [align] (a power of two); returns the
    byte address. No collector (see DESIGN.md). *)
val allocate : t -> bytes:int -> align:int -> int

(** Bump high-water mark. *)
val allocated_bytes : t -> int
