(** Double payloads as single simulated-memory words.

    A simulated word is a 63-bit OCaml [int], so a full IEEE-754 double does
    not fit. We store bits 63..1 (sign, exponent, 51 of 52 mantissa bits) and
    drop the least-significant mantissa bit — every double in the system
    (heap-number payloads, unboxed double elements) goes through this
    canonicalization, so the interpreter and the optimized tier compute over
    the *same* values and cross-tier result checks are exact. The precision
    loss is one ulp of mantissa and does not affect any benchmark output. *)

let of_float f : int = Int64.to_int (Int64.shift_right_logical (Int64.bits_of_float f) 1)

let to_float (w : int) : float = Int64.float_of_bits (Int64.shift_left (Int64.of_int w) 1)

(** Canonicalize a float to the representable subset. *)
let canon f = to_float (of_float f)
