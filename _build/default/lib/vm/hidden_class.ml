(** Hidden classes (V8 "maps", paper §3.1): immutable descriptors of object
    shape. Adding a named property to an object transitions it to another
    hidden class that extends the old one; transitions are memoized so that
    objects constructed the same way share a class.

    Arrays get one hidden class per *elements kind* (packed SMI / double /
    tagged), mirroring V8: storing an incompatible element transitions the
    array's class. This is what makes the Class List's per-class elements
    profile meaningful. *)

type elements_kind = E_smi | E_double | E_tagged

let pp_elements_kind ppf = function
  | E_smi -> Fmt.string ppf "smi"
  | E_double -> Fmt.string ppf "double"
  | E_tagged -> Fmt.string ppf "tagged"

type kind =
  | K_object
  | K_array of elements_kind
  | K_number  (** boxed double (heap number) *)
  | K_string
  | K_boolean  (** oddball class shared by [true] and [false] *)
  | K_null  (** oddball class of [null] *)
  | K_fixed_array  (** elements backing store *)

type t = {
  id : int;  (** ClassID: consecutive small integer, 0..0xfe (paper §4.2.1.1) *)
  desc_addr : int;  (** simulated address of the class descriptor *)
  kind : kind;
  name : string;  (** debug name: constructor name, "Array[smi]", ... *)
  prop_names : string array;  (** named properties in addition order *)
  prop_index : (string, int) Hashtbl.t;  (** name -> ordinal *)
  parent_id : int option;  (** the class this one transitioned from *)
  mutable transitions : (string * t) list;  (** property-addition transitions *)
}

let num_props c = Array.length c.prop_names

(** Word index of named property [name] within objects of this class. *)
let slot_of_prop c name =
  match Hashtbl.find_opt c.prop_index name with
  | Some ord -> Some (Layout.slot_of_prop_index ord)
  | None -> None

let lines c = Layout.lines_for_props (num_props c)

(** The class word stored in the first word of line [line] of an object. *)
let class_word c ~line =
  Layout.encode_class_word
    ~desc_addr:(if line = 0 then c.desc_addr else 0)
    ~classid:c.id ~line

exception Too_many_classes

module Registry = struct
  type nonrec cls = t

  type t = {
    mem : Mem.t;
    mutable by_id : cls option array;
    mutable count : int;
    mutable array_classes : (elements_kind * cls) list;
    mutable object_root : cls option;
    mutable number_class : cls option;
    mutable string_class : cls option;
    mutable boolean_class : cls option;
    mutable null_class : cls option;
    mutable fixed_array_class : cls option;
  }

  let create mem =
    {
      mem;
      by_id = Array.make 256 None;
      count = 0;
      array_classes = [];
      object_root = None;
      number_class = None;
      string_class = None;
      boolean_class = None;
      null_class = None;
      fixed_array_class = None;
    }

  let class_count t = t.count

  let find t id =
    if id < 0 || id > Layout.max_classid then None else t.by_id.(id)

  let find_exn t id =
    match find t id with
    | Some c -> c
    | None -> invalid_arg (Printf.sprintf "Registry.find_exn: unknown ClassID %d" id)

  let fresh ?parent_id t ~kind ~name ~prop_names =
    if t.count > Layout.max_classid then raise Too_many_classes;
    let id = t.count in
    t.count <- t.count + 1;
    (* Descriptor gets a real simulated address so that the 48-bit field of
       the class word is meaningful and Class List walks touch memory. *)
    let desc_addr = Mem.allocate t.mem ~bytes:64 ~align:8 in
    Mem.store t.mem desc_addr id;
    let prop_index = Hashtbl.create 8 in
    Array.iteri (fun i n -> Hashtbl.replace prop_index n i) prop_names;
    let c =
      { id; desc_addr; kind; name; prop_names; prop_index; parent_id;
        transitions = [] }
    in
    t.by_id.(id) <- Some c;
    c

  (** Memoized property-addition transition. *)
  let transition t (c : cls) name =
    match List.assoc_opt name c.transitions with
    | Some c' -> c'
    | None ->
      if Hashtbl.mem c.prop_index name then
        invalid_arg (Printf.sprintf "transition: class %s already has %s" c.name name);
      let prop_names = Array.append c.prop_names [| name |] in
      let c' =
        fresh ~parent_id:c.id t ~kind:c.kind ~name:(c.name ^ "+" ^ name)
          ~prop_names
      in
      c.transitions <- (name, c') :: c.transitions;
      c'

  let array_class t ek =
    match List.assoc_opt ek t.array_classes with
    | Some c -> c
    | None ->
      let c =
        fresh t ~kind:(K_array ek)
          ~name:(Fmt.str "Array[%a]" pp_elements_kind ek)
          ~prop_names:[||]
      in
      t.array_classes <- (ek, c) :: t.array_classes;
      c

  let memo get set mk t =
    match get t with
    | Some c -> c
    | None ->
      let c = mk t in
      set t c;
      c

  (** Root class of object literals; literals then transition per field. *)
  let object_root_class =
    memo (fun t -> t.object_root)
      (fun t c -> t.object_root <- Some c)
      (fun t -> fresh t ~kind:K_object ~name:"Object" ~prop_names:[||])

  let number_class =
    memo (fun t -> t.number_class)
      (fun t c -> t.number_class <- Some c)
      (fun t -> fresh t ~kind:K_number ~name:"HeapNumber" ~prop_names:[||])

  let string_class =
    memo (fun t -> t.string_class)
      (fun t c -> t.string_class <- Some c)
      (fun t -> fresh t ~kind:K_string ~name:"String" ~prop_names:[||])

  let boolean_class =
    memo (fun t -> t.boolean_class)
      (fun t c -> t.boolean_class <- Some c)
      (fun t -> fresh t ~kind:K_boolean ~name:"Boolean" ~prop_names:[||])

  let null_class =
    memo (fun t -> t.null_class)
      (fun t c -> t.null_class <- Some c)
      (fun t -> fresh t ~kind:K_null ~name:"Null" ~prop_names:[||])

  let fixed_array_class =
    memo (fun t -> t.fixed_array_class)
      (fun t c -> t.fixed_array_class <- Some c)
      (fun t -> fresh t ~kind:K_fixed_array ~name:"FixedArray" ~prop_names:[||])

  (** All classes created so far, in id order. *)
  let all t =
    List.filter_map (fun i -> t.by_id.(i)) (List.init t.count (fun i -> i))
end
