(** Tagged machine words, V8-style (paper §3.3): an SMI has its least
    significant bit cleared and carries a 32-bit signed integer; a pointer
    has the bit set and carries a (word-aligned) byte address. A word is an
    OCaml [int]. *)

type t = int

val smi_min : int
val smi_max : int

(** Does the integer fit the 32-bit SMI payload? *)
val smi_fits : int -> bool

exception Smi_overflow

(** @raise Smi_overflow outside the SMI range. *)
val smi : int -> t

val smi_unchecked : int -> t
val is_smi : t -> bool
val smi_value : t -> int

(** @raise Invalid_argument on an unaligned address. *)
val ptr : int -> t

val is_ptr : t -> bool
val ptr_addr : t -> int

(** Truncate to int32 two's complement (JS bitwise semantics). *)
val to_int32 : int -> int

(** Truncate to uint32 (JS [>>>]). *)
val to_uint32 : int -> int

(** JS ToInt32 of a double; NaN/Inf/huge map to 0. The single definition
    shared by both execution tiers. *)
val js_to_int32_float : float -> int

val pp : Format.formatter -> t -> unit
