(** AST -> register bytecode. Top-level [var]s become global cells; local
    temporaries are never shared across statements (SSA-flavored, which
    keeps register types stable for the optimizer). *)

exception Error of string

(** Compile one function. [top_level] makes its locals the program's
    globals. *)
val compile_func :
  func_ids:(string, int) Hashtbl.t -> globals:(string, int) Hashtbl.t ->
  ?top_level:bool -> id:int -> Tce_minijs.Ast.func -> Bytecode.func

(** Compile a whole program; the top-level statements become a synthetic
    ["%main"] function. @raise Error on name-resolution problems. *)
val compile : Tce_minijs.Ast.program -> Bytecode.program

(** Parse + compile. *)
val compile_source : string -> Bytecode.program
