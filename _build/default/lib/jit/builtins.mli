(** Built-in functions callable from MiniJS — the standard-library surface
    the paper's benchmarks touch (Math, String, Array construction). *)

type t =
  | B_print
  | B_sqrt
  | B_abs
  | B_floor
  | B_ceil
  | B_sin
  | B_cos
  | B_exp
  | B_log
  | B_pow
  | B_min
  | B_max
  | B_random  (** deterministic, seeded per engine *)
  | B_array_new  (** pre-sized SMI array filled with 0 *)
  | B_push  (** append; returns the new length *)
  | B_str_len
  | B_char_code
  | B_from_char_code
  | B_substr
  | B_str_eq
  | B_assert_eq  (** test helper: traps when the two values differ *)

val by_name : (string * t) list
val of_name : string -> t option
val name : t -> string
val arity : t -> int
