(** Dynamic-instruction categories — the paper's Figure 1 breakdown plus a
    bucket for the mechanism's own instructions. *)

type t =
  | C_check  (** Check Map / Check SMI / Check Non-SMI proper *)
  | C_taguntag  (** boxing/unboxing, including the checks guarding untags *)
  | C_math  (** math assumptions: SMI overflow, division guards *)
  | C_ccop  (** movClassID / movClassIDArray / special-store delta *)
  | C_other  (** the rest of the optimized code *)

val count : int
val index : t -> int

(** @raise Invalid_argument outside 0..4. *)
val of_index : int -> t

val name : t -> string
val pp : Format.formatter -> t -> unit

(** Instruction flag: this check verifies a value obtained from an object
    property / elements load (Figure 2's population). *)
val flag_guards_obj_load : int

val flag_elidable : int
