lib/jit/builtins.mli:
