lib/jit/categories.mli: Format
