lib/jit/feedback.ml: Array List
