lib/jit/lir.mli: Builtins Categories Format Tce_minijs Tce_vm
