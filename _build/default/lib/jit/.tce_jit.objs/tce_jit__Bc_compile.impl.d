lib/jit/bc_compile.ml: Array Ast Builtins Bytecode Feedback Fmt Hashtbl List Option Parser Tce_minijs Tce_vm
