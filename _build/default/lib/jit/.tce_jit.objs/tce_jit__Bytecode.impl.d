lib/jit/bytecode.ml: Array Builtins Feedback Fmt Lir Tce_minijs Tce_vm
