lib/jit/feedback.mli:
