lib/jit/opt.mli: Bytecode Lir Tce_core Tce_vm
