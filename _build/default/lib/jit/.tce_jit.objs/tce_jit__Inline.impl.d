lib/jit/inline.ml: Array Bytecode Feedback
