lib/jit/categories.ml: Fmt
