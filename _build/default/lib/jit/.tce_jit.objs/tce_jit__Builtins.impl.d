lib/jit/builtins.ml: List
