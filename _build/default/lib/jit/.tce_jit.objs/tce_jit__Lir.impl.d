lib/jit/lir.ml: Array Builtins Categories Fmt Tce_minijs Tce_vm
