lib/jit/bc_compile.mli: Bytecode Hashtbl Tce_minijs
