lib/jit/opt.ml: Array Builtins Bytecode Categories Feedback Float Fmt Hashtbl Heap Hidden_class Layout Lir List Option Queue Tce_core Tce_minijs Tce_vm
