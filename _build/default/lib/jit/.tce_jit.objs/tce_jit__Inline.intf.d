lib/jit/inline.mli: Bytecode
