(** Dynamic-instruction categories, exactly the paper's Figure 1 breakdown
    plus one extra bucket for the mechanism's own instructions.

    - [C_check]: Check Map / Check SMI / Check Non-SMI operations proper.
    - [C_taguntag]: boxing/unboxing of numbers *including* the checking
      operations that guard an untag (the paper folds those into
      Tags/Untags; Figure 2 adds the guarding subset back in — we mark that
      subset with the [guards_obj_load] flag below).
    - [C_math]: math assumptions (SMI overflow, division by zero).
    - [C_ccop]: the new instructions our mechanism adds
      (movClassID/movClassIDArray and the special-store opcode delta) —
      overhead the paper discusses in §4.2.2/§5.3.
    - [C_other]: the rest of the optimized code. *)

type t = C_check | C_taguntag | C_math | C_ccop | C_other

let count = 5

let index = function
  | C_check -> 0
  | C_taguntag -> 1
  | C_math -> 2
  | C_ccop -> 3
  | C_other -> 4

let of_index = function
  | 0 -> C_check
  | 1 -> C_taguntag
  | 2 -> C_math
  | 3 -> C_ccop
  | 4 -> C_other
  | _ -> invalid_arg "Categories.of_index"

let name = function
  | C_check -> "Checks"
  | C_taguntag -> "Tags/Untags"
  | C_math -> "Math Assumptions"
  | C_ccop -> "Class Cache ops"
  | C_other -> "Other Optimized Code"

let pp ppf c = Fmt.string ppf (name c)

(** Per-instruction flags. *)

(** The instruction is a check (or untag-guard check) that verifies a value
    *obtained from an object property or elements array* — the overhead
    population of the paper's Figure 2. *)
let flag_guards_obj_load = 1

(** The instruction would be removed by the paper's optimizations (set on
    checks that the Class List could have elided; used for sanity
    accounting, not for the speedup itself). *)
let flag_elidable = 2
