(** Bytecode-level function inlining (Crankshaft-style). [expand] builds a
    *shadow function*: the caller's bytecode with eligible direct calls and
    constructions replaced by remapped copies of the callee bodies and
    snapshots of their feedback. The optimizer compiles the shadow;
    deoptimizations resume the interpreter on it (single-frame
    reconstruction). Shadows are cached by the engine so post-deopt
    feedback learning survives recompilation. *)

val max_callee_ops : int
val max_result_ops : int
val max_sites : int

val eligible : Bytecode.program -> caller_id:int -> int -> bool

(** One pass; [None] when nothing is eligible. *)
val expand_once : Bytecode.program -> Bytecode.func -> Bytecode.func option

(** Iterated to a bounded fixpoint (copied callees keep their own call
    sites). *)
val expand : Bytecode.program -> Bytecode.func -> Bytecode.func option
