(** Built-in functions callable from MiniJS. These stand in for the JS
    standard library surface the paper's benchmarks touch (Math, String,
    Array construction). *)

type t =
  | B_print
  | B_sqrt
  | B_abs
  | B_floor
  | B_ceil
  | B_sin
  | B_cos
  | B_exp
  | B_log
  | B_pow
  | B_min
  | B_max
  | B_random  (** deterministic PRNG: runs are reproducible *)
  | B_array_new  (** [array_new n]: SMI array of length n filled with 0 *)
  | B_push  (** [push a v]: append, returns new length *)
  | B_str_len
  | B_char_code  (** [char_code s i] *)
  | B_from_char_code
  | B_substr  (** [substr s start len] *)
  | B_str_eq
  | B_assert_eq  (** test helper: trap if the two values differ *)

let by_name =
  [
    ("print", B_print); ("sqrt", B_sqrt); ("abs", B_abs); ("floor", B_floor);
    ("ceil", B_ceil); ("sin", B_sin); ("cos", B_cos); ("exp", B_exp);
    ("log", B_log); ("pow", B_pow); ("min", B_min); ("max", B_max);
    ("random", B_random); ("array_new", B_array_new); ("push", B_push);
    ("str_len", B_str_len); ("char_code", B_char_code);
    ("from_char_code", B_from_char_code); ("substr", B_substr);
    ("str_eq", B_str_eq); ("assert_eq", B_assert_eq);
  ]

let of_name n = List.assoc_opt n by_name

let name b = fst (List.find (fun (_, b') -> b' = b) by_name)

let arity = function
  | B_print | B_sqrt | B_abs | B_floor | B_ceil | B_sin | B_cos | B_exp
  | B_log | B_str_len | B_from_char_code | B_array_new ->
    1
  | B_pow | B_min | B_max | B_push | B_char_code | B_str_eq | B_assert_eq -> 2
  | B_substr -> 3
  | B_random -> 0
