(** Bimodal branch predictor: 2-bit saturating counters indexed by a hash of
    (code id, pc). *)

type stats = { mutable branches : int; mutable mispredicts : int }

type t = private { table : int array; mask : int; stats : stats }

val create : ?bits:int -> unit -> t

(** Record an executed conditional branch; [true] when predicted correctly. *)
val record : t -> fn:int -> pc:int -> taken:bool -> bool

val mispredict_rate : t -> float
val reset_stats : t -> unit
