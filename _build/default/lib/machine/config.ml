(** Simulated micro-architecture configuration — the paper's Table 2
    (Nehalem-like core). *)

type t = {
  issue_width : int;
  issue_queue : int;  (** instruction issue queue entries (modeled jointly with the window) *)
  window_size : int;
  outstanding_ldst : int;
  l1_load_latency : int;
  itlb_entries : int;
  dtlb_entries : int;
  il1_kb : int;
  il1_ways : int;
  dl1_kb : int;
  dl1_ways : int;
  l2_kb : int;
  l2_ways : int;
  l2_latency : int;
  mem_latency : int;
  tlb_miss_penalty : int;
  branch_mispredict_penalty : int;
  class_cache_entries : int;
  class_cache_ways : int;
  class_cache_miss_penalty : int;
      (** Class List walk: an in-memory table access, TLB-like *)
  deopt_penalty : int;  (** runtime transition out of optimized code *)
  baseline_cpi : float;  (** analytic CPI of the non-optimized tier *)
}

(** Table 2 of the paper. Latencies the paper does not list (L2, memory,
    mispredict) use standard Nehalem numbers. *)
let default =
  {
    issue_width = 4;
    issue_queue = 36;
    window_size = 128;
    outstanding_ldst = 10;
    l1_load_latency = 2;
    itlb_entries = 128;
    dtlb_entries = 256;
    il1_kb = 32;
    il1_ways = 4;
    dl1_kb = 32;
    dl1_ways = 8;
    l2_kb = 256;
    l2_ways = 8;
    l2_latency = 10;
    mem_latency = 150;
    tlb_miss_penalty = 30;
    branch_mispredict_penalty = 15;
    class_cache_entries = 128;
    class_cache_ways = 2;
    class_cache_miss_penalty = 20;
    deopt_penalty = 100;
    baseline_cpi = 1.2;
  }

let rows t =
  [
    ("Issue width", string_of_int t.issue_width);
    ("Instruction Issue queue", Printf.sprintf "%d entries" t.issue_queue);
    ("Window size", string_of_int t.window_size);
    ("Outstanding load/stores", string_of_int t.outstanding_ldst);
    ("L1 load latency", Printf.sprintf "%d cycles" t.l1_load_latency);
    ("Itlb", Printf.sprintf "%d entries" t.itlb_entries);
    ("Dtlb", Printf.sprintf "%d entries" t.dtlb_entries);
    ("Il1 cache", Printf.sprintf "%d KB, %d-way" t.il1_kb t.il1_ways);
    ("Dl1 cache", Printf.sprintf "%d KB, %d-way" t.dl1_kb t.dl1_ways);
    ("L2 cache", Printf.sprintf "%d KB, %d-way" t.l2_kb t.l2_ways);
    ("Class Cache",
     Printf.sprintf "%d entries, %d-way" t.class_cache_entries t.class_cache_ways);
  ]

let pp ppf t =
  List.iter (fun (k, v) -> Fmt.pf ppf "%-26s %s@." k v) (rows t)
