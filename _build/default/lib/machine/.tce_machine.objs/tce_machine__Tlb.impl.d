lib/machine/tlb.ml: Array
