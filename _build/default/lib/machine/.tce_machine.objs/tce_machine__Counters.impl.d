lib/machine/counters.ml: Array Hashtbl Option Tce_core Tce_jit Tce_vm
