lib/machine/energy.ml:
