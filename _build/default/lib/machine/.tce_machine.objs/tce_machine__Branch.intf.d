lib/machine/branch.mli:
