lib/machine/counters.mli: Hashtbl Tce_core Tce_jit
