lib/machine/tlb.mli:
