lib/machine/energy.mli:
