lib/machine/branch.ml: Array
