lib/machine/machine.mli: Branch Cache Config Counters Hashtbl Queue Tce_core Tce_jit Tce_vm Tlb
