lib/machine/config.ml: Fmt List Printf
