lib/machine/costs.ml: Array Tce_jit
