lib/machine/machine.ml: Array Branch Cache Categories Config Costs Counters Fbits Float Hashtbl Heap Lir Mem Queue Stdlib Tce_core Tce_jit Tce_vm Tlb Value
