lib/machine/cache.mli:
