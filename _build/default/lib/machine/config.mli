(** Simulated micro-architecture configuration — the paper's Table 2
    (Nehalem-like core), plus the latencies the paper does not list. *)

type t = {
  issue_width : int;
  issue_queue : int;
  window_size : int;
  outstanding_ldst : int;
  l1_load_latency : int;
  itlb_entries : int;
  dtlb_entries : int;
  il1_kb : int;
  il1_ways : int;
  dl1_kb : int;
  dl1_ways : int;
  l2_kb : int;
  l2_ways : int;
  l2_latency : int;
  mem_latency : int;
  tlb_miss_penalty : int;
  branch_mispredict_penalty : int;
  class_cache_entries : int;
  class_cache_ways : int;
  class_cache_miss_penalty : int;
  deopt_penalty : int;
  baseline_cpi : float;  (** analytic CPI of the non-optimized tier *)
}

(** The paper's Table 2. *)
val default : t

(** The rows of Table 2, for printing. *)
val rows : t -> (string * string) list

val pp : Format.formatter -> t -> unit
