(** Cost model for code we do not simulate instruction-by-instruction:
    runtime stubs called from optimized code, and the baseline tier's
    generic code (our stand-in for Full Codegen output).

    All values are (instructions, cycles) pairs in the rough shape of the
    corresponding V8 paths; they are identical across mechanism-on/off
    configurations, so they dilute but never bias the comparison. *)

type cost = { instrs : int; cycles : int }

let c instrs cycles = { instrs; cycles }

(** Runtime stubs reachable from optimized code. *)
let rec rt_cost : Tce_jit.Lir.rt -> cost = function
  | Tce_jit.Lir.Rt_alloc_object (_, reserve) -> c (12 + (2 * reserve)) (10 + reserve)
  | Rt_alloc_array (_, cap) -> c (20 + min cap 64) (16 + (min cap 64 / 2))
  | Rt_box_double -> c 8 7
  | Rt_generic_get_prop _ -> c 30 26
  | Rt_generic_set_prop _ -> c 34 30
  | Rt_generic_get_elem -> c 24 20
  | Rt_generic_set_elem -> c 28 24
  | Rt_generic_binop _ -> c 40 34
  | Rt_generic_unop _ -> c 20 17
  | Rt_elem_store_slow -> c 60 50
  | Rt_to_bool -> c 10 9
  | Rt_builtin b -> builtin_cost b
  | Rt_fmod -> c 25 30
  | Rt_trap _ -> c 1 1

and builtin_cost : Tce_jit.Builtins.t -> cost = function
  | Tce_jit.Builtins.B_print -> c 200 180
  | B_sqrt -> c 3 18
  | B_abs | B_min | B_max | B_floor | B_ceil -> c 8 8
  | B_sin | B_cos | B_exp | B_log | B_pow -> c 40 60
  | B_random -> c 12 12
  | B_array_new -> c 30 26
  | B_push -> c 18 15
  | B_str_len -> c 8 7
  | B_char_code -> c 12 10
  | B_from_char_code -> c 30 26
  | B_substr -> c 60 50
  | B_str_eq -> c 30 26
  | B_assert_eq -> c 10 9

(** Per-bytecode-op cost of the baseline tier's generic code (Full Codegen:
    patched IC calls, boxed arithmetic through stubs, constant
    (re)tagging). [mechanism_store_extra] is added to property/element
    stores when the mechanism is on: the movClassID + special-store delta
    in generic code. *)
let baseline_op_instrs : Tce_jit.Bytecode.bc -> int = function
  | Tce_jit.Bytecode.LoadInt _ | LoadBool _ | LoadNull _ -> 2
  | LoadNum _ -> 6
  | LoadStr _ -> 4
  | Move _ -> 1
  | BinOp _ -> 24  (* IC stub call: type dispatch + op + boxing *)
  | UnOp _ -> 12
  | GetProp _ -> 14  (* patched IC call: check map + load *)
  | SetProp _ -> 16
  | GetElem _ -> 16
  | SetElem _ -> 18
  | GetGlobal _ -> 3
  | SetGlobal _ -> 3
  | NewObject _ -> 20
  | AllocCtor _ -> 16
  | NewArray (_, cap) -> 24 + min cap 64
  | Call (_, _, args) -> 10 + (2 * Array.length args)
  | CallB (_, b, _) -> (builtin_cost b).instrs + 6
  | New (_, _, args) -> 24 + (2 * Array.length args)
  | Jump _ -> 1
  | JumpIfFalse _ | JumpIfTrue _ -> 4  (* generic truthiness test *)
  | Return _ -> 3

(** Extra generic-code instructions per profiled store when the mechanism
    is on (movClassID / movClassIDArray + the special-store opcode). *)
let mechanism_store_extra = 2

(** Slow-path work charged inside the baseline tier (IC misses etc.). *)
let ic_miss_instrs = 80  (* runtime lookup + IC patching *)
let transition_instrs = 30
let deopt_transition_instrs = 120
