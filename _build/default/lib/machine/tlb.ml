(** Fully-associative TLB timing model (LRU over 4 KB pages). *)

type stats = { mutable accesses : int; mutable hits : int; mutable misses : int }

type t = {
  entries : int;
  pages : int array;
  lru : int array;
  mutable clock : int;
  stats : stats;
}

let page_bits = 12

let create ~entries =
  {
    entries;
    pages = Array.make entries (-1);
    lru = Array.make entries 0;
    clock = 0;
    stats = { accesses = 0; hits = 0; misses = 0 };
  }

let access t addr =
  let page = addr lsr page_bits in
  t.clock <- t.clock + 1;
  t.stats.accesses <- t.stats.accesses + 1;
  let hit = ref false in
  for i = 0 to t.entries - 1 do
    if t.pages.(i) = page then begin
      hit := true;
      t.lru.(i) <- t.clock
    end
  done;
  if !hit then t.stats.hits <- t.stats.hits + 1
  else begin
    t.stats.misses <- t.stats.misses + 1;
    let victim = ref 0 in
    for i = 0 to t.entries - 1 do
      if t.pages.(i) = -1 then victim := i
      else if t.pages.(!victim) <> -1 && t.lru.(i) < t.lru.(!victim) then victim := i
    done;
    t.pages.(!victim) <- page;
    t.lru.(!victim) <- t.clock
  end;
  !hit

let hit_rate t =
  if t.stats.accesses = 0 then 1.0
  else float_of_int t.stats.hits /. float_of_int t.stats.accesses

let reset_stats t =
  t.stats.accesses <- 0;
  t.stats.hits <- 0;
  t.stats.misses <- 0
