(** Energy model (McPAT/CACTI substitute — see DESIGN.md). Per-event dynamic
    energies plus leakage proportional to cycles; constants in the published
    Nehalem-class ballpark (45 nm, ~3 GHz). Absolute joules are not claimed;
    the on/off *ratio* is what reproduces Figure 9, and it is driven by the
    first-order terms the paper cites: fewer executed instructions (dynamic
    energy) and shorter runtime (leakage). *)

type params = {
  e_frontend : float;  (** nJ per dispatched instruction (fetch/decode/rename) *)
  e_alu : float;
  e_fp : float;
  e_l1 : float;  (** per L1 access (I or D) *)
  e_l2 : float;
  e_mem : float;
  e_branch : float;  (** predictor + BTB per branch *)
  e_class_cache : float;  (** per Class Cache access (CACTI: tiny, < 1.5 KB) *)
  leakage_w : float;  (** core leakage power, W *)
  freq_ghz : float;
}

let default =
  {
    e_frontend = 0.30;
    e_alu = 0.10;
    e_fp = 0.35;
    e_l1 = 0.35;
    e_l2 = 1.2;
    e_mem = 18.0;
    e_branch = 0.08;
    e_class_cache = 0.02;
    leakage_w = 1.6;
    freq_ghz = 3.0;
  }

type events = {
  instrs : int;  (** all dispatched instructions (both tiers) *)
  alu_ops : int;
  fp_ops : int;
  branches : int;
  l1_accesses : int;
  l2_accesses : int;
  mem_accesses : int;
  cc_accesses : int;
  cycles : float;
}

type breakdown = { dynamic_nj : float; leakage_nj : float; total_nj : float }

let compute ?(p = default) (e : events) =
  let f = float_of_int in
  let dynamic_nj =
    (f e.instrs *. p.e_frontend)
    +. (f e.alu_ops *. p.e_alu)
    +. (f e.fp_ops *. p.e_fp)
    +. (f e.branches *. p.e_branch)
    +. (f e.l1_accesses *. p.e_l1)
    +. (f e.l2_accesses *. p.e_l2)
    +. (f e.mem_accesses *. p.e_mem)
    +. (f e.cc_accesses *. p.e_class_cache)
  in
  (* leakage: P * t = leakage_w * cycles / freq -> nJ *)
  let leakage_nj = p.leakage_w *. e.cycles /. p.freq_ghz in
  { dynamic_nj; leakage_nj; total_nj = dynamic_nj +. leakage_nj }
