(** Energy model (McPAT/CACTI substitute, DESIGN.md §2): per-event dynamic
    energies plus leakage proportional to cycles. The on/off *ratio* is
    what reproduces Figure 9. *)

type params = {
  e_frontend : float;  (** nJ per dispatched instruction *)
  e_alu : float;
  e_fp : float;
  e_l1 : float;
  e_l2 : float;
  e_mem : float;
  e_branch : float;
  e_class_cache : float;
  leakage_w : float;
  freq_ghz : float;
}

(** Nehalem-class (45 nm, ~3 GHz) ballpark constants. *)
val default : params

type events = {
  instrs : int;
  alu_ops : int;
  fp_ops : int;
  branches : int;
  l1_accesses : int;
  l2_accesses : int;
  mem_accesses : int;
  cc_accesses : int;
  cycles : float;
}

type breakdown = { dynamic_nj : float; leakage_nj : float; total_nj : float }

val compute : ?p:params -> events -> breakdown
