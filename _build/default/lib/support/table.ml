(** ASCII table and horizontal-bar-chart rendering for the benchmark harness.
    The harness prints the same rows/series the paper's figures plot. *)

type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    match align with
    | Left -> s ^ String.make (width - n) ' '
    | Right -> String.make (width - n) ' ' ^ s

(** [render ~headers rows] lays out [rows] under [headers] with column
    auto-sizing. The first column is left-aligned, the rest right-aligned. *)
let render ~headers rows =
  let ncols = List.length headers in
  let widths = Array.make ncols 0 in
  let measure row =
    List.iteri (fun i cell ->
        if i < ncols then widths.(i) <- max widths.(i) (String.length cell))
      row
  in
  measure headers;
  List.iter measure rows;
  let buf = Buffer.create 1024 in
  let emit_row row =
    List.iteri (fun i cell ->
        let align = if i = 0 then Left else Right in
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf (pad align widths.(i) cell))
      row;
    Buffer.add_char buf '\n'
  in
  emit_row headers;
  let total = Array.fold_left ( + ) 0 widths + (2 * (ncols - 1)) in
  Buffer.add_string buf (String.make total '-');
  Buffer.add_char buf '\n';
  List.iter emit_row rows;
  Buffer.contents buf

(** Horizontal bar chart: one [(label, value)] per row, scaled to [width]
    characters at [vmax] (computed from the data when omitted). *)
let bars ?(width = 50) ?vmax rows =
  let vmax =
    match vmax with
    | Some v -> v
    | None -> List.fold_left (fun acc (_, v) -> Float.max acc v) 1e-9 rows
  in
  let lw = List.fold_left (fun acc (l, _) -> max acc (String.length l)) 0 rows in
  let buf = Buffer.create 1024 in
  List.iter (fun (label, v) ->
      let n =
        if vmax <= 0.0 then 0
        else int_of_float (Float.round (v /. vmax *. float_of_int width))
      in
      let n = max 0 (min width n) in
      Buffer.add_string buf (pad Left lw label);
      Buffer.add_string buf " |";
      Buffer.add_string buf (String.make n '#');
      Buffer.add_string buf (Printf.sprintf " %.2f\n" v))
    rows;
  Buffer.contents buf

let pct f = Printf.sprintf "%.1f%%" f

let f2 f = Printf.sprintf "%.2f" f

let csv ~headers rows =
  let line cells = String.concat "," cells ^ "\n" in
  String.concat "" (line headers :: List.map line rows)
