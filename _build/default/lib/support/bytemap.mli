(** 8-bit bitmaps — the representation of the Class List's InitMap /
    ValidMap / SpeculateMap fields (paper §4.2.1.1). Bits are indexed 0..7;
    out-of-range indexes raise [Invalid_argument]. *)

type t = private int

val empty : t
val full : t

(** @raise Invalid_argument outside 0..255. *)
val of_int : int -> t

val to_int : t -> int
val get : t -> int -> bool
val set : t -> int -> t
val clear : t -> int -> t
val popcount : t -> int
val fold : ('a -> int -> 'a) -> 'a -> t -> 'a

(** MSB-first, e.g. ["01111111"] like the paper's Table 1. *)
val to_bits : t -> string

val pp : Format.formatter -> t -> unit
