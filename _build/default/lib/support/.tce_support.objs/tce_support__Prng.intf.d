lib/support/prng.mli:
