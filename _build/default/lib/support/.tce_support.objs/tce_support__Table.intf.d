lib/support/table.mli:
