lib/support/stats.mli:
