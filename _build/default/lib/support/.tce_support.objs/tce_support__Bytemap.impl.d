lib/support/bytemap.ml: Fmt String
