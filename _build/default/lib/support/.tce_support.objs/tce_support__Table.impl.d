lib/support/table.ml: Array Buffer Float List Printf String
