lib/support/bytemap.mli: Format
