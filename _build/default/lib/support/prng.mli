(** Deterministic splitmix64 PRNG. All randomness in the repository flows
    through this, so every experiment run is exactly reproducible. *)

type t

val create : int -> t
val copy : t -> t
val next_int64 : t -> int64

(** Uniform in [0, bound); @raise Invalid_argument when [bound <= 0]. *)
val int : t -> int -> int

val bool : t -> bool

(** Uniform in [0, 1). *)
val float : t -> float

(** Bernoulli draw with probability [p]. *)
val chance : t -> float -> bool

(** In-place Fisher-Yates shuffle. *)
val shuffle : t -> 'a array -> unit

(** @raise Invalid_argument on an empty array. *)
val choose : t -> 'a array -> 'a
