(** ASCII tables and horizontal bar charts for the benchmark harness. *)

type align = Left | Right

val pad : align -> int -> string -> string

(** Auto-sized columns; first column left-aligned, the rest right-aligned. *)
val render : headers:string list -> string list list -> string

(** One [(label, value)] bar per row, scaled to [width] characters at [vmax]
    (computed from the data when omitted). *)
val bars : ?width:int -> ?vmax:float -> (string * float) list -> string

val pct : float -> string
val f2 : float -> string
val csv : headers:string list -> string list list -> string
