(** 8-bit bitmaps, as used by the Class List's InitMap / ValidMap /
    SpeculateMap fields (paper §4.2.1.1). Bit [i] corresponds to property
    slot [i] of a cache line; only bits 0..7 are meaningful. *)

type t = int

let empty : t = 0

let full : t = 0xff

let of_int i : t =
  if i < 0 || i > 0xff then invalid_arg "Bytemap.of_int: out of range";
  i

let to_int (t : t) = t

let check_bit i = if i < 0 || i > 7 then invalid_arg "Bytemap: bit out of range"

let get (t : t) i =
  check_bit i;
  t land (1 lsl i) <> 0

let set (t : t) i =
  check_bit i;
  t lor (1 lsl i)

let clear (t : t) i =
  check_bit i;
  t land lnot (1 lsl i)

let popcount (t : t) =
  let rec go acc n = if n = 0 then acc else go (acc + (n land 1)) (n lsr 1) in
  go 0 t

let fold f init (t : t) =
  let acc = ref init in
  for i = 0 to 7 do
    if get t i then acc := f !acc i
  done;
  !acc

let to_bits (t : t) =
  String.init 8 (fun i -> if get t (7 - i) then '1' else '0')

let pp ppf t = Fmt.string ppf (to_bits t)
