(** Deterministic splitmix64 PRNG. All randomness in workload generators and
    property tests flows through this so that experiment runs are exactly
    reproducible (the timing simulator is deterministic given the instruction
    stream). *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let next_int64 t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(** [int t bound] is uniform in [0, bound). *)
let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  r mod bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

(** [float t] is uniform in [0, 1). *)
let float t =
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 11) in
  float_of_int r /. 9007199254740992.0 (* 2^53 *)

(** Bernoulli draw with probability [p]. *)
let chance t p = float t < p

(** Fisher-Yates shuffle (in place). *)
let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

(** Pick a uniformly random element. *)
let choose t arr =
  if Array.length arr = 0 then invalid_arg "Prng.choose: empty";
  arr.(int t (Array.length arr))
