(** Scenario: a program whose types change mid-run. Demonstrates the
    verification half of the mechanism (paper §4.2.2): the special store
    that breaks a speculated-monomorphic slot raises the hardware
    exception; the runtime deoptimizes every function in the slot's
    FunctionList (on-stack replacement if live) and execution stays correct.

    dune exec examples/phase_change.exe *)

module E = Tce_engine.Engine

let program =
  {|
function Reading(value) { this.value = value; this.seq = 0; }
var log = array_new(0);
for (var i = 0; i < 200; i++) { push(log, new Reading(i)); }

function total() {
  var s = 0;
  var n = log.length;
  for (var i = 0; i < n; i++) {
    s = s + log[i].value;   // speculated: Reading.value is always SMI
  }
  return s;
}

// phase 1: integer readings only — total() is optimized with no checks
var r = 0;
for (var k = 0; k < 10; k++) { r = total(); }
print("phase 1 total: " + r);

// phase 2: a sensor starts reporting fractional values.
// The store below is a movStoreClassCache whose Class Cache request finds
// SpeculateMap set -> hardware exception -> total() is deoptimized.
log[7].value = 3.5;
print("phase 2 total: " + total());
|}

let () =
  print_endline "=== Phase change: misspeculation exception and deoptimization ===\n";
  let t = E.of_source program in
  E.set_measuring t true;
  ignore (E.run_main t);
  print_string (E.output t);
  let c = t.E.counters in
  Printf.printf
    "\n  Class Cache exceptions: %d\n  invalidation deopts:    %d\n  total deopts:           %d\n"
    t.E.cc.Tce_core.Class_cache.stats.exceptions
    c.Tce_machine.Counters.cc_exception_deopts c.Tce_machine.Counters.deopts;
  print_endline
    "\nNo recovery of heap state was needed: all loads executed before the\n\
     breaking store saw the speculated type (paper: \"the application state\n\
     is correct because up to this point all the assumptions were correct\")."
