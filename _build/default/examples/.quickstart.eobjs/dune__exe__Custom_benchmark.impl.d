examples/custom_benchmark.ml: Array Harness Printf Tce_metrics Tce_support Tce_workloads
