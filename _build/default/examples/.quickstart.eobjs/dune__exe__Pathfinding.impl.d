examples/pathfinding.ml: Array Harness Option Printf Tce_metrics Tce_support Tce_workloads
