examples/quickstart.ml: Printf Tce_engine Tce_jit Tce_machine
