examples/quickstart.mli:
