examples/pathfinding.mli:
