examples/classlist_dump.mli:
