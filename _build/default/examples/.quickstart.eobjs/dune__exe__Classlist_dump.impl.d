examples/classlist_dump.ml: Tce_metrics
