examples/phase_change.ml: Printf Tce_core Tce_engine Tce_machine
