(** Quickstart: run a MiniJS program on the two-tier engine and read the
    execution statistics the paper's evaluation is built from.

    dune exec examples/quickstart.exe *)

module E = Tce_engine.Engine

let program =
  {|
// A small object-oriented kernel: monomorphic property loads in a loop.
function Particle(x, v) {
  this.x = x;
  this.v = v;
}
var ps = array_new(0);
for (var i = 0; i < 64; i++) {
  push(ps, new Particle(i * 1.5 + 0.25, 0.5));
}
function step() {
  var n = ps.length;
  var acc = 0.0;
  for (var i = 0; i < n; i++) {
    var p = ps[i];
    p.x = p.x + p.v;
    acc = acc + p.x;
  }
  return acc;
}
// hot loop: the engine tiers step() up to optimized code
var r = 0.0;
for (var k = 0; k < 30; k++) { r = step(); }
print("checksum: " + r);
|}

let run ~mechanism =
  let config = { E.default_config with E.mechanism } in
  let t = E.of_source ~config program in
  ignore (E.run_main t);
  print_string (E.output t);
  let c = t.E.counters in
  Printf.printf "  mechanism %-3s | optimized instrs: %7d | Checks: %6d | cycles: %8d\n"
    (if mechanism then "ON" else "OFF")
    (Tce_machine.Counters.opt_instrs c)
    (Tce_machine.Counters.cat c Tce_jit.Categories.C_check)
    (E.opt_cycles t)

let () =
  print_endline "=== Quickstart: HW-assisted type-check elision ===";
  print_endline "Running the same program with the Class Cache mechanism off and on:\n";
  run ~mechanism:false;
  run ~mechanism:true;
  print_endline
    "\nWith the mechanism on, loads from profiled-monomorphic slots are typed,\n\
     so the Check Map / Check SMI instructions downstream are never emitted."
