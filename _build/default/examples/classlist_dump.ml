(** The paper's Table 1, live: build the NodeList/GraphNode example, let
    findGraphNode get optimized, then dump the Class List — InitMap /
    ValidMap / SpeculateMap bitmaps, per-slot profiled classes, and the
    FunctionLists naming the speculating code.

    dune exec examples/classlist_dump.exe *)

let () = Tce_metrics.Table1.print ()
