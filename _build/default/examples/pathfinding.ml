(** Scenario: the paper's flagship workload shape (ai-astar) — A* over a
    grid of node objects held in a wrapper object's elements array. Shows
    the full evaluation pipeline on one benchmark: steady-state measurement
    with the mechanism off and on, the dynamic-instruction breakdown, and
    the cycle-count improvement.

    dune exec examples/pathfinding.exe *)

open Tce_metrics

let () =
  print_endline "=== Pathfinding (ai-astar): check elision on object-heavy loops ===\n";
  let w = Option.get (Tce_workloads.Workloads.by_name "ai-astar") in
  let off, on = Harness.run_pair w in
  Printf.printf "checksum (both configs agree): %s\n\n" on.Harness.checksum;
  let show (r : Harness.result) =
    Printf.printf
      "  mechanism %-3s | instrs %8d | Checks %7d | Tags/Untags %7d | CC ops %6d | cycles %8d\n"
      (if r.Harness.mechanism then "ON" else "OFF")
      r.Harness.opt_instrs r.Harness.by_cat.(0) r.Harness.by_cat.(1)
      r.Harness.by_cat.(3) r.Harness.opt_cycles
  in
  show off;
  show on;
  let imp =
    Tce_support.Stats.improvement
      ~base:(float_of_int off.Harness.opt_cycles)
      ~opt:(float_of_int on.Harness.opt_cycles)
  in
  Printf.printf "\n  optimized-code speedup: %.1f%%\n" imp;
  let mp, me, pp, pe = on.Harness.fig3 in
  let tot = max 1 (mp + me + pp + pe) in
  Printf.printf
    "  object loads hitting monomorphic slots: %.1f%% (props) + %.1f%% (elements)\n"
    (100.0 *. float_of_int mp /. float_of_int tot)
    (100.0 *. float_of_int me /. float_of_int tot);
  Printf.printf "  Class Cache: %d accesses, %.4f%% hit rate, %d misspeculation exceptions\n"
    on.Harness.cc_accesses
    (100.0 *. on.Harness.cc_hit_rate)
    on.Harness.cc_exceptions
