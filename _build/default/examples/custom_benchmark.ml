(** Scenario: measuring your own MiniJS workload with the paper's
    steady-state protocol. Wrap any program that defines [bench()] in a
    {!Tce_workloads.Workload.t} and the harness gives you the full
    paper-style measurement: per-category instruction counts, cycles,
    energy, Class Cache statistics, and a differential correctness check.

    dune exec examples/custom_benchmark.exe *)

open Tce_metrics

let my_workload =
  Tce_workloads.Workload.make ~suite:Tce_workloads.Workload.Octane ~selected:true
    "ring-buffer"
    {|
// A ring buffer of event objects: object-valued monomorphic slots.
function Event(kind, size) { this.kind = kind; this.size = size; }
function Ring(n) {
  this.buf = array_new(0);
  this.head = 0;
  this.n = n;
}
var ring = new Ring(128);
for (var i = 0; i < 128; i++) { push(ring.buf, new Event(i % 4, i)); }

function churn(rounds) {
  var acc = 0;
  for (var r = 0; r < rounds; r++) {
    var b = ring.buf;
    var h = ring.head;
    for (var i = 0; i < ring.n; i++) {
      var e = b[(h + i) % ring.n];
      acc = (acc + e.kind * 3 + e.size) & 268435455;
    }
    ring.head = (h + 7) % ring.n;
  }
  return acc;
}
function bench() { return churn(20); }
|}

let () =
  print_endline "=== Custom benchmark through the paper-style harness ===\n";
  let off, on = Harness.run_pair my_workload in
  Printf.printf "checksum: %s (identical in both configurations)\n\n" on.Harness.checksum;
  Printf.printf "%-28s %12s %12s\n" "" "mechanism off" "mechanism on";
  let row name f =
    Printf.printf "%-28s %12s %12s\n" name (f off) (f on)
  in
  row "optimized instructions" (fun r -> string_of_int r.Harness.opt_instrs);
  row "  Checks" (fun r -> string_of_int r.Harness.by_cat.(0));
  row "  Tags/Untags" (fun r -> string_of_int r.Harness.by_cat.(1));
  row "  Math assumptions" (fun r -> string_of_int r.Harness.by_cat.(2));
  row "  Class Cache ops" (fun r -> string_of_int r.Harness.by_cat.(3));
  row "optimized cycles" (fun r -> string_of_int r.Harness.opt_cycles);
  row "energy (uJ)" (fun r -> Printf.sprintf "%.2f" (r.Harness.energy_nj /. 1000.0));
  row "CC hit rate" (fun r -> Printf.sprintf "%.4f" r.Harness.cc_hit_rate);
  let imp =
    Tce_support.Stats.improvement
      ~base:(float_of_int off.Harness.opt_cycles)
      ~opt:(float_of_int on.Harness.opt_cycles)
  in
  Printf.printf "\nspeedup on optimized code: %.2f%%\n" imp
