(** The Class Cache (paper §4.2.1.3): a small hardware cache of Class List
    entries, accessed in parallel with the L1 write on every special store
    ([movStoreClassCache] / [movStoreClassCacheArray]).

    Geometry is configurable (paper default: 128 entries, 2-way, LRU). A hit
    is free; a miss walks the Class List in memory (the victim is written
    back, like a TLB). The functional update is [Class_list.update]; this
    module layers the timing-visible behaviour (hit/miss/writeback counts and
    the misspeculation exception) on top. *)

type config = { entries : int; ways : int }

let default_config = { entries = 128; ways = 2 }

type way = { mutable tag : int; mutable valid : bool; mutable lru : int }
(* The cached copy of the Class List entry is not duplicated here: the cache
   and the backing list are kept coherent by construction (every access goes
   through this module, and compiler reads snoop it), so presence/LRU state
   is all the hardware model needs to track. A qcheck property pins the
   observational equivalence of "cache + writeback" and "direct list". *)

type stats = {
  mutable accesses : int;
  mutable hits : int;
  mutable misses : int;
  mutable writebacks : int;
  mutable first_profiles : int;
  mutable invalidations : int;
  mutable exceptions : int;
}

type t = {
  config : config;
  sets : way array array;  (** [sets.(set_index).(way)] *)
  set_conflicts : int array;
      (** per-set count of valid-victim evictions (capacity/conflict misses
          that wrote back a live entry) — the attribution heatmap's source *)
  mutable clock : int;
  stats : stats;
  mutable trace : Tce_obs.Trace.t;
      (** observability sink for misspeculation exceptions (installed by
          the engine; {!Tce_obs.Trace.null} = disabled) *)
  mutable fault : Tce_fault.Injector.t;
      (** fault injector for campaigns (installed by the engine;
          {!Tce_fault.Injector.null} = disarmed, zero-cost) *)
}

let fresh_stats () =
  {
    accesses = 0;
    hits = 0;
    misses = 0;
    writebacks = 0;
    first_profiles = 0;
    invalidations = 0;
    exceptions = 0;
  }

let create ?(config = default_config) () =
  if config.entries mod config.ways <> 0 then
    invalid_arg "Class_cache: entries must be a multiple of ways";
  let nsets = config.entries / config.ways in
  {
    config;
    sets =
      Array.init nsets (fun _ ->
          Array.init config.ways (fun _ -> { tag = 0; valid = false; lru = 0 }));
    set_conflicts = Array.make nsets 0;
    clock = 0;
    stats = fresh_stats ();
    trace = Tce_obs.Trace.null;
    fault = Tce_fault.Injector.null;
  }

let nsets t = Array.length t.sets

(** Cache lookup/fill for the entry [ClassID ‖ Line]. Returns [true] on hit.
    The set index mixes the ClassID into the low bits (indexing by the raw
    concatenation would put every class in one set, since the set count
    divides 256). *)
let touch t ~classid ~line =
  let key = (classid lsl 8) lor line in
  let si = (classid + (line * 41)) mod nsets t in
  let set = t.sets.(si) in
  t.clock <- t.clock + 1;
  t.stats.accesses <- t.stats.accesses + 1;
  let hit = ref false in
  Array.iter
    (fun w ->
      if w.valid && w.tag = key then begin
        hit := true;
        w.lru <- t.clock
      end)
    set;
  if !hit then t.stats.hits <- t.stats.hits + 1
  else begin
    t.stats.misses <- t.stats.misses + 1;
    (* Choose the victim: an invalid way, else least recently used. *)
    let victim = ref set.(0) in
    Array.iter
      (fun w ->
        if not w.valid then victim := w
        else if !victim.valid && w.lru < !victim.lru then victim := w)
      set;
    if !victim.valid then begin
      t.stats.writebacks <- t.stats.writebacks + 1;
      t.set_conflicts.(si) <- t.set_conflicts.(si) + 1
    end;
    !victim.valid <- true;
    !victim.tag <- key;
    !victim.lru <- t.clock
  end;
  !hit

(** Invalidate the cached copy of [ClassID ‖ Line] if present (fault
    injection: forced eviction). Timing-only — the next access misses and
    re-walks the Class List; the backing list is untouched. *)
let evict t ~classid ~line =
  let key = (classid lsl 8) lor line in
  let set = t.sets.((classid + (line * 41)) mod nsets t) in
  Array.iter (fun w -> if w.valid && w.tag = key then w.valid <- false) set

(** The result of a special store's Class Cache request. *)
type access_result = {
  hit : bool;  (** false = the Class List in memory was walked *)
  exn_raised : bool;  (** misspeculation hardware exception *)
  functions_to_deopt : int list;
      (** FunctionList of the broken slot (empty unless [exn_raised]) *)
  outcome : Class_list.update_outcome;
}

(** One special-store request (paper Fig. 4/5/6): looks up/fills the cache,
    applies the profiling update, and raises the misspeculation exception
    when a speculated slot goes polymorphic. On exception the runtime's
    share of the work (draining the FunctionList, clearing SpeculateMap) is
    performed here and the victims are returned for deoptimization. *)
let access t (cl : Class_list.t) ~classid ~line ~pos ~value_classid =
  let inj = t.fault in
  let armed = Tce_fault.Injector.armed inj in
  (* Fault hooks (campaigns only; every hook below is skipped when the
     injector is disarmed, keeping the unfaulted path bit-identical). *)
  if armed then begin
    if Tce_fault.Injector.fire inj ~classid ~line ~pos Tce_fault.Point.Cc_evict
    then evict t ~classid ~line;
    if
      Tce_fault.Injector.fire inj ~classid ~line ~pos
        Tce_fault.Point.Cl_flip_init
    then Class_list.corrupt_flip cl ~classid ~line ~pos ~map:Class_list.Init_map;
    if
      Tce_fault.Injector.fire inj ~classid ~line ~pos
        Tce_fault.Point.Cl_flip_valid
    then
      Class_list.corrupt_flip cl ~classid ~line ~pos ~map:Class_list.Valid_map;
    if
      Tce_fault.Injector.fire inj ~classid ~line ~pos
        Tce_fault.Point.Cl_flip_speculate
    then
      Class_list.corrupt_flip cl ~classid ~line ~pos
        ~map:Class_list.Speculate_map
  end;
  let hit = touch t ~classid ~line in
  let outcome, fns =
    if
      armed
      && Tce_fault.Injector.fire inj ~classid ~line ~pos
           Tce_fault.Point.Cc_drop_update
    then (Class_list.Still_mono, []) (* the profiling update is lost *)
    else Class_list.apply cl ~classid ~line ~pos ~value_classid
  in
  (match outcome with
  | Class_list.First_profile -> t.stats.first_profiles <- t.stats.first_profiles + 1
  | Now_polymorphic _ -> t.stats.invalidations <- t.stats.invalidations + 1
  | _ -> ());
  (* Spurious exception: drain the slot's FunctionList although the profile
     never broke — always safe (the victims just deopt needlessly). *)
  let fns =
    if
      armed
      && Tce_fault.Injector.fire inj ~classid ~line ~pos
           Tce_fault.Point.Cc_spurious_exn
    then fns @ Class_list.take_speculators cl ~classid ~line ~pos
    else fns
  in
  (* Delivery faults: the genuine victims can be dropped entirely
     (Lost_deopt — must be *detected* downstream) or parked for delayed
     delivery (Cc_delayed_exn). *)
  let delivered, suppressed =
    if fns <> [] && armed then
      if Tce_fault.Injector.fire inj ~classid ~line ~pos Tce_fault.Point.Lost_deopt
      then begin
        Tce_fault.Injector.stash_lost inj fns;
        ([], true)
      end
      else if
        Tce_fault.Injector.fire inj ~classid ~line ~pos
          Tce_fault.Point.Cc_delayed_exn
      then begin
        Tce_fault.Injector.stash_delayed inj fns;
        ([], true)
      end
      else (fns, false)
    else (fns, false)
  in
  let due = if armed then Tce_fault.Injector.tick_delayed inj else [] in
  let fns = delivered @ due in
  if fns <> [] then begin
    t.stats.exceptions <- t.stats.exceptions + 1;
    if Tce_obs.Trace.on t.trace then
      Tce_obs.Trace.emit t.trace
        (Tce_obs.Trace.Cc_exception
           { classid; line; pos; victims = List.length fns });
    { hit; exn_raised = true; functions_to_deopt = fns; outcome }
  end
  else
    { hit;
      exn_raised =
        (match outcome with
        | Class_list.Now_polymorphic { exception_raised = true; _ } ->
          not suppressed
        | _ -> false);
      functions_to_deopt = [];
      outcome }

(** Install the observability sink (the engine wires its trace here). *)
let set_trace t tr = t.trace <- tr

(** Install the fault injector (the engine wires campaigns here). *)
let set_fault t inj = t.fault <- inj

(** Currently valid ways (the Chrome-trace occupancy counter track). *)
let occupancy t =
  Array.fold_left
    (fun acc set ->
      Array.fold_left (fun acc w -> if w.valid then acc + 1 else acc) acc set)
    0 t.sets

(** Valid ways per set, in set order (the attribution occupancy heatmap). *)
let set_occupancy t =
  Array.map
    (fun set ->
      Array.fold_left (fun acc w -> if w.valid then acc + 1 else acc) 0 set)
    t.sets

(** Valid-victim evictions per set since the last {!reset_stats}. *)
let set_conflicts t = Array.copy t.set_conflicts

let hit_rate t =
  if t.stats.accesses = 0 then 1.0
  else float_of_int t.stats.hits /. float_of_int t.stats.accesses

(** Hardware cost estimate in bytes (paper §5.4: < 1.5 KB at 128 entries):
    per entry one tag word (2 B), three 1-byte maps, seven 1-byte props. *)
let storage_bytes t = t.config.entries * (2 + 3 + 7)

let reset_stats t =
  let s = fresh_stats () in
  t.stats.accesses <- s.accesses;
  t.stats.hits <- 0;
  t.stats.misses <- 0;
  t.stats.writebacks <- 0;
  t.stats.first_profiles <- 0;
  t.stats.invalidations <- 0;
  t.stats.exceptions <- 0;
  Array.fill t.set_conflicts 0 (Array.length t.set_conflicts) 0
