(** Ground-truth monomorphism oracle: records, independently of the Class
    List, the set of value classes ever stored into each
    [(classid, line, pos)] slot. Validates the mechanism in property tests
    and computes Figure 3's full-run classification. *)

type slot_info = { mutable classes : int list; mutable stores : int }

type t

val create : unit -> t

val record : t -> classid:int -> line:int -> pos:int -> value_classid:int -> unit

(** Monomorphic over the recorded run (never-stored slots vacuously so). *)
val is_monomorphic : t -> classid:int -> line:int -> pos:int -> bool

val distinct_classes : t -> classid:int -> line:int -> pos:int -> int

(** The distinct value ClassIDs ever stored into the slot ([-1] = retired;
    empty when never stored to). Ground truth for the engine's retire-path
    invariant check. *)
val observed_classes : t -> classid:int -> line:int -> pos:int -> int list

(** Mark every slot naming [value_classid] polymorphic — its objects mutated
    their hidden class in place. *)
val retire_value_class : t -> value_classid:int -> unit

val fold :
  ('a -> classid:int -> line:int -> pos:int -> info:slot_info -> 'a) -> 'a -> t -> 'a
