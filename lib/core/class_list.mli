(** The Class List (paper §4.2.1.1): the in-memory software structure backing
    the Class Cache.

    For every hidden class × 64-byte cache line it records, per property
    slot: whether the slot has ever been written ([InitMap]), whether all
    writes so far stored one single type ([ValidMap], one-way), whether
    optimized code relies on that ([SpeculateMap]), the profiled ClassID per
    slot ([Prop1]–[Prop7], [0xFF] = SMI), and the [FunctionList] of
    speculating code. Slot 2 of line 0 profiles the type of the objects
    inside the elements array (paper Table 1's Prop2).

    Entries are indexed by [ClassID ‖ Line] (2^16 entries) and live in one
    contiguous simulated-memory region so Class Cache misses are real memory
    traffic. *)

type entry = {
  mutable init_map : Tce_support.Bytemap.t;
  mutable valid_map : Tce_support.Bytemap.t;
  mutable speculate_map : Tce_support.Bytemap.t;
  props : int array;  (** length 8; positions 1..7 used *)
  func_lists : int list array;  (** per position: speculating opt-code ids *)
}

(** Hardware-geometry knob: how many property positions per line the Class
    List profiles. The paper's design tracks all 7; smaller values model a
    cheaper structure where positions above the limit stay fully checked.
    Must be in 1..7. *)
type config = { tracked_positions : int }

val default_config : config
(** [{ tracked_positions = 7 }] — the paper's geometry. *)

type t = {
  entries : entry option array;  (** 2^16, lazily materialized *)
  base_addr : int;  (** base of the region in simulated memory *)
  mem : Tce_vm.Mem.t;
  tracked : int;  (** positions 1..tracked are profiled; the rest are inert *)
  mutable parent_of : int -> int option;
      (** transition parent of a ClassID (set by the runtime; new entries
          inherit the parent's profiling state) *)
  mutable children_of : int -> int list;
      (** transition children of a ClassID (profile invalidations propagate
          to materialized descendants) *)
}

(** Bytes of simulated memory charged per entry. *)
val entry_bytes : int

val create : ?config:config -> Tce_vm.Mem.t -> t
(** @raise Invalid_argument if [tracked_positions] is outside 1..7. *)

val tracked : t -> int
(** How many positions per line this instance profiles. *)

val is_tracked : t -> pos:int -> bool
(** Is [pos] within this instance's profiled range (1..[tracked t])? *)

(** Simulated address of an entry (miss-traffic accounting). *)
val entry_addr : t -> classid:int -> line:int -> int

(** Materialize (or fetch) an entry; fresh entries inherit the transition
    parent's InitMap/ValidMap/Props. *)
val entry : t -> classid:int -> line:int -> entry

val find : t -> classid:int -> line:int -> entry option

(** Initialized and still valid: the compiler may speculate on this slot.
    Untracked positions (above [tracked t]) are never monomorphic. *)
val is_monomorphic : t -> classid:int -> line:int -> pos:int -> bool

(** ValidMap bit still set (uninitialized slots are vacuously valid; the
    paper emits special stores for any "still considered monomorphic"
    slot). Untracked positions are never valid — no special store is ever
    emitted for them. *)
val is_valid : t -> classid:int -> line:int -> pos:int -> bool

(** Like {!is_valid} but non-materializing (absent entries are vacuously
    valid): safe inside the engine's retire-path invariant check, which must
    not trigger lazy parent-inheritance. *)
val is_valid_peek : t -> classid:int -> line:int -> pos:int -> bool

(** Non-materializing view of the value class the Class List claims for a
    monomorphic slot, following the same transition-parent inheritance as
    materialization (nearest materialized ancestor's profile). [None] when
    no ancestor claims the slot initialized-and-valid. Lets the engine's
    retire-path invariant check cross-examine the claim against the
    ground-truth oracle. *)
val claimed_class_peek : t -> classid:int -> line:int -> pos:int -> int option

(** Non-materializing: is [fn] still on the slot's FunctionList? *)
val speculates_peek :
  t -> classid:int -> line:int -> pos:int -> fn:int -> bool

(** Fault injection only: flip one bit of one map of the (materialized)
    entry, modelling a corrupted or aliased Class List entry. *)
type map_id = Init_map | Valid_map | Speculate_map

val corrupt_flip :
  t -> classid:int -> line:int -> pos:int -> map:map_id -> unit

(** Profiled ClassID of a monomorphic slot ([0xFF] = SMI). *)
val profiled_class : t -> classid:int -> line:int -> pos:int -> int option

(** Register optimized code [fn] as depending on the slot: sets the
    SpeculateMap bit and appends to the FunctionList. *)
val add_speculation : t -> classid:int -> line:int -> pos:int -> fn:int -> unit

(** Drain the FunctionList and clear the SpeculateMap bit (the runtime's
    share of exception handling); returns the code ids to deoptimize. *)
val take_speculators : t -> classid:int -> line:int -> pos:int -> int list

(** Remove a discarded code id from every FunctionList. *)
val remove_function : t -> fn:int -> unit

type update_outcome =
  | First_profile  (** InitMap bit was 0: the type is recorded *)
  | Still_mono  (** stored type matches the profile *)
  | Now_polymorphic of { was_speculated : bool; exception_raised : bool }
      (** profile broken; exception iff the SpeculateMap bit was set *)
  | Already_poly  (** ValidMap bit was already 0 *)

(** The paper's Fig. 6 single-entry update for a store event.
    @raise Invalid_argument when [pos] is outside 1..[tracked t] — callers
    must gate untracked positions before reaching the Class Cache. *)
val update : t -> classid:int -> line:int -> pos:int -> value_classid:int ->
  update_outcome

(** Full store-event application: [update] on the store-time class plus
    propagation of the observed value class to materialized transition
    descendants. Returns the own-entry outcome and every speculating code id
    to deoptimize. *)
val apply : t -> classid:int -> line:int -> pos:int -> value_classid:int ->
  update_outcome * int list

(** Invalidate every profile naming [value_classid] (used when objects of
    that class mutate their hidden class in place, e.g. elements-kind
    transitions). Returns the speculators to deoptimize. *)
val retire_value_class : t -> value_classid:int -> int list

(** Render one entry like the paper's Table 1. *)
val pp_entry :
  class_name:(int -> string) -> fn_name:(int -> string) ->
  Format.formatter -> int * int * entry -> unit

(** All materialized entries as [(classid, line, entry)]. *)
val dump : t -> (int * int * entry) list
