(** Ground-truth monomorphism oracle. It records, independently of the Class
    List, the *set* of value classes ever stored into each
    [(classid, line, pos)] slot. Used to

    - validate the mechanism (property test: the Class List marks a slot
      valid iff the oracle saw at most one class), and
    - compute Figure 3 (fraction of object load accesses that target
      monomorphic properties / monomorphic elements arrays), which the paper
      derives from a full-run profile. *)

type slot_info = {
  mutable classes : int list;  (** distinct value ClassIDs seen, small *)
  mutable stores : int;
}

type t = { slots : (int, slot_info) Hashtbl.t }

let create () = { slots = Hashtbl.create 256 }

let key ~classid ~line ~pos = (((classid lsl 8) lor line) lsl 3) lor pos

let record t ~classid ~line ~pos ~value_classid =
  let k = key ~classid ~line ~pos in
  let info =
    match Hashtbl.find_opt t.slots k with
    | Some i -> i
    | None ->
      let i = { classes = []; stores = 0 } in
      Hashtbl.replace t.slots k i;
      i
  in
  info.stores <- info.stores + 1;
  if not (List.mem value_classid info.classes) then
    info.classes <- value_classid :: info.classes

(** Is the slot monomorphic over the whole recorded run? Slots never stored
    to count as monomorphic (vacuously, matching the Class List's ValidMap
    initialization). *)
let is_monomorphic t ~classid ~line ~pos =
  match Hashtbl.find_opt t.slots (key ~classid ~line ~pos) with
  | None -> true
  | Some i -> List.length i.classes <= 1

let distinct_classes t ~classid ~line ~pos =
  match Hashtbl.find_opt t.slots (key ~classid ~line ~pos) with
  | None -> 0
  | Some i -> List.length i.classes

let observed_classes t ~classid ~line ~pos =
  match Hashtbl.find_opt t.slots (key ~classid ~line ~pos) with
  | None -> []
  | Some i -> i.classes

(** A value class whose objects mutated their hidden class in place is no
    longer a single type: mark every slot that recorded it polymorphic
    (sentinel class -1). *)
let retire_value_class t ~value_classid =
  Hashtbl.iter
    (fun _ info ->
      if List.mem value_classid info.classes && not (List.mem (-1) info.classes)
      then info.classes <- -1 :: info.classes)
    t.slots

let fold f init t =
  Hashtbl.fold
    (fun k info acc ->
      let pos = k land 7 in
      let line = (k lsr 3) land 0xff in
      let classid = (k lsr 11) land 0xff in
      f acc ~classid ~line ~pos ~info)
    t.slots init
