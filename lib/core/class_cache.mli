(** The Class Cache (paper §4.2.1.3): a small set-associative hardware cache
    of Class List entries, accessed in parallel with the L1 write on every
    special store. A hit is free; a miss walks the Class List in memory
    (with a TLB-style writeback of the victim). The paper's configuration —
    128 entries, 2-way, LRU — achieves a > 99.9% hit rate at < 1.5 KB of
    storage. *)

type config = { entries : int; ways : int }

val default_config : config  (** 128 entries, 2-way (paper Table 2) *)

type stats = {
  mutable accesses : int;
  mutable hits : int;
  mutable misses : int;
  mutable writebacks : int;
  mutable first_profiles : int;
  mutable invalidations : int;  (** slots that went polymorphic *)
  mutable exceptions : int;  (** misspeculation hardware exceptions *)
}

type t = private {
  config : config;
  sets : way array array;
  set_conflicts : int array;
      (** per-set valid-victim evictions (the attribution heatmap's source) *)
  mutable clock : int;
  stats : stats;
  mutable trace : Tce_obs.Trace.t;
      (** observability sink for misspeculation exceptions (installed by
          the engine; {!Tce_obs.Trace.null} = disabled) *)
  mutable fault : Tce_fault.Injector.t;
      (** fault injector for campaigns (installed by the engine;
          {!Tce_fault.Injector.null} = disarmed, zero-cost) *)
}

and way = { mutable tag : int; mutable valid : bool; mutable lru : int }

(** @raise Invalid_argument when [entries] is not a multiple of [ways]. *)
val create : ?config:config -> unit -> t

(** Cache lookup/fill for [ClassID ‖ Line] (timing only); [true] on hit. *)
val touch : t -> classid:int -> line:int -> bool

(** Invalidate the cached copy of [ClassID ‖ Line] if present (fault
    injection: forced eviction; timing-only). *)
val evict : t -> classid:int -> line:int -> unit

type access_result = {
  hit : bool;  (** false = the Class List in memory was walked *)
  exn_raised : bool;  (** misspeculation hardware exception *)
  functions_to_deopt : int list;
      (** FunctionLists of the broken slot and affected descendants *)
  outcome : Class_list.update_outcome;
}

(** One special-store request (paper Fig. 4/5/6): look up/fill the cache,
    apply the profiling update (with transition-tree propagation), and
    raise the misspeculation exception when a speculated slot breaks. *)
val access :
  t -> Class_list.t -> classid:int -> line:int -> pos:int -> value_classid:int ->
  access_result

val hit_rate : t -> float

(** Install the observability sink (the engine wires its trace here). *)
val set_trace : t -> Tce_obs.Trace.t -> unit

(** Install the fault injector (the engine wires campaigns here). *)
val set_fault : t -> Tce_fault.Injector.t -> unit

(** Currently valid ways (the Chrome-trace occupancy counter track). *)
val occupancy : t -> int

(** Valid ways per set, in set order (the attribution occupancy heatmap). *)
val set_occupancy : t -> int array

(** Valid-victim evictions per set since the last {!reset_stats} — which
    sets the LRU contention concentrates in. *)
val set_conflicts : t -> int array

(** Storage estimate in bytes (paper §5.4: < 1.5 KB at 128 entries). *)
val storage_bytes : t -> int

val reset_stats : t -> unit
