(** The Class List (paper §4.2.1.1): the in-memory software structure backing
    the Class Cache. For every hidden class x cache line it records, per
    property slot:

    - InitMap: has any object ever written this slot?
    - ValidMap: have all writes so far stored values of one single type?
      (one-way: a cleared bit is never set again)
    - SpeculateMap: does at least one optimized function rely on this slot
      being monomorphic?
    - Prop1-7: the profiled ClassID per slot (0xFF = SMI sentinel);
      slot 2 of line 0 profiles the type of the objects *inside* the
      elements array (paper Table 1's Prop2 / NodeList example).
    - FunctionList: per slot, the functions that speculated on it.

    Entries are indexed by [ClassID ‖ Line] (8+8 bits → 2^16 entries) and sit
    in one contiguous simulated-memory region, pointed to by a special
    register, so Class Cache misses are real memory traffic. *)

open Tce_support

type entry = {
  mutable init_map : Bytemap.t;
  mutable valid_map : Bytemap.t;
  mutable speculate_map : Bytemap.t;
  props : int array;  (** length 8; positions 1..7 used, [pos 0] is the line header *)
  func_lists : int list array;  (** per position: ids of speculating functions *)
}

(** Bytes of simulated memory charged per entry (maps + props + tag word). *)
let entry_bytes = 16

(** Hardware-geometry knob: how many property positions per line the Class
    List tracks (the paper's design uses all 7; a cheaper design could
    profile fewer per-line slots and let the rest fall back to checked
    execution). Positions above [tracked_positions] are never profiled,
    never claimed monomorphic, and never speculated on. *)
type config = { tracked_positions : int }

let default_config = { tracked_positions = 7 }

type t = {
  entries : entry option array;  (** 2^16, lazily materialized *)
  base_addr : int;  (** base of the Class List region in simulated memory *)
  mem : Tce_vm.Mem.t;
  tracked : int;  (** positions 1..tracked are profiled; the rest are inert *)
  mutable parent_of : int -> int option;
      (** transition parent of a ClassID (set by the runtime) *)
  mutable children_of : int -> int list;
      (** transition children of a ClassID (set by the runtime) *)
}

let index ~classid ~line =
  if classid < 0 || classid > 0xff then invalid_arg "Class_list: classid out of range";
  if line < 0 || line > 0xff then invalid_arg "Class_list: line out of range";
  (classid lsl 8) lor line

let create ?(config = default_config) mem =
  if config.tracked_positions < 1 || config.tracked_positions > 7 then
    invalid_arg "Class_list.create: tracked_positions must be in 1..7";
  let base_addr =
    Tce_vm.Mem.allocate mem ~bytes:(65536 * entry_bytes) ~align:64
  in
  {
    entries = Array.make 65536 None;
    base_addr;
    mem;
    tracked = config.tracked_positions;
    parent_of = (fun _ -> None);
    children_of = (fun _ -> []);
  }

(** How many positions per line this instance profiles. *)
let tracked t = t.tracked

(** Is [pos] within this instance's profiled range? *)
let is_tracked t ~pos = pos >= 1 && pos <= t.tracked

(** Simulated address of the entry (for charging miss traffic). *)
let entry_addr t ~classid ~line = t.base_addr + (index ~classid ~line * entry_bytes)

let fresh_entry () =
  {
    init_map = Bytemap.empty;
    valid_map = Bytemap.full;
    speculate_map = Bytemap.empty;
    props = Array.make 8 0;
    func_lists = Array.make 8 [];
  }

(** Materialize an entry. New entries inherit the profiling state
    (InitMap/ValidMap/Props — not speculation) of the transition parent's
    entry: the runtime seeds a new class's Class List rows from the class it
    transitioned from, so that properties written during construction are
    profiled for the finished shape too (a documented runtime-side
    strengthening; see DESIGN.md). *)
let rec entry t ~classid ~line =
  let i = index ~classid ~line in
  match t.entries.(i) with
  | Some e -> e
  | None ->
    let e = fresh_entry () in
    (match t.parent_of classid with
    | Some p when p <> classid ->
      let pe = entry t ~classid:p ~line in
      e.init_map <- pe.init_map;
      e.valid_map <- pe.valid_map;
      Array.blit pe.props 0 e.props 0 8
    | _ -> ());
    t.entries.(i) <- Some e;
    e

let find t ~classid ~line = t.entries.(index ~classid ~line)

(** Is the slot profiled monomorphic (initialized and still valid)? Queries
    materialize the entry so transition-parent profiles are inherited even
    for classes whose own lines were never stored to. *)
let is_monomorphic t ~classid ~line ~pos =
  is_tracked t ~pos
  &&
  let e = entry t ~classid ~line in
  Bytemap.get e.init_map pos && Bytemap.get e.valid_map pos

(** Is the slot's ValidMap bit still set? (Uninitialized slots are vacuously
    valid — the paper emits special stores for any slot "still considered
    monomorphic".) *)
let is_valid t ~classid ~line ~pos =
  is_tracked t ~pos && Bytemap.get (entry t ~classid ~line).valid_map pos

(** Like {!is_valid} but non-materializing: absent entries are vacuously
    valid. Used by the engine's retire-path invariant check, which must not
    perturb lazy parent-inheritance by materializing entries. *)
let is_valid_peek t ~classid ~line ~pos =
  is_tracked t ~pos
  &&
  match t.entries.(index ~classid ~line) with
  | None -> true
  | Some e -> Bytemap.get e.valid_map pos

(** Non-materializing view of the value class the Class List would claim
    for a monomorphic slot, following the same transition-parent
    inheritance as {!entry} (the nearest materialized ancestor's profile)
    but without mutating. [None] when no ancestor claims the slot
    initialized-and-valid. Used by the engine's retire-path invariant
    check to cross-examine the Class List against the ground-truth
    oracle. *)
let claimed_class_peek t ~classid ~line ~pos =
  if not (is_tracked t ~pos) then None
  else
  let rec walk classid =
    match t.entries.(index ~classid ~line) with
    | Some e ->
      if Bytemap.get e.init_map pos && Bytemap.get e.valid_map pos then
        Some e.props.(pos)
      else None
    | None -> (
      match t.parent_of classid with
      | Some p when p <> classid -> walk p
      | _ -> None)
  in
  walk classid

(** Non-materializing oracle for the retire-path invariant check: does any
    still-installed speculation record exist for the slot? *)
let speculates_peek t ~classid ~line ~pos ~fn =
  match t.entries.(index ~classid ~line) with
  | None -> false
  | Some e -> List.mem fn e.func_lists.(pos)

(** Fault injection only (Tce_fault [Cl_flip_*]): flip one bit of one map,
    modelling a corrupted or aliased Class List entry. Never called in
    unfaulted runs. *)
type map_id = Init_map | Valid_map | Speculate_map

let corrupt_flip t ~classid ~line ~pos ~map =
  let e = entry t ~classid ~line in
  let flip m =
    if Bytemap.get m pos then Bytemap.clear m pos else Bytemap.set m pos
  in
  match map with
  | Init_map -> e.init_map <- flip e.init_map
  | Valid_map -> e.valid_map <- flip e.valid_map
  | Speculate_map -> e.speculate_map <- flip e.speculate_map

(** The profiled ClassID of a monomorphic slot. *)
let profiled_class t ~classid ~line ~pos =
  if is_monomorphic t ~classid ~line ~pos then
    Some (entry t ~classid ~line).props.(pos)
  else None

(** Record that optimized function [fn] speculates on this slot: sets the
    SpeculateMap bit and appends to the FunctionList. *)
let add_speculation t ~classid ~line ~pos ~fn =
  let e = entry t ~classid ~line in
  e.speculate_map <- Bytemap.set e.speculate_map pos;
  if not (List.mem fn e.func_lists.(pos)) then
    e.func_lists.(pos) <- fn :: e.func_lists.(pos)

(** Runtime handling after a misspeculation exception: the offending slot's
    SpeculateMap bit is cleared and its FunctionList drained (paper
    §4.2.1.3). Returns the functions to deoptimize. *)
let take_speculators t ~classid ~line ~pos =
  let e = entry t ~classid ~line in
  let fns = e.func_lists.(pos) in
  e.func_lists.(pos) <- [];
  e.speculate_map <- Bytemap.clear e.speculate_map pos;
  fns

(** Remove [fn] from every FunctionList (used when a function is discarded
    or recompiled so stale registrations don't trigger spurious deopts). *)
let remove_function t ~fn =
  Array.iter
    (function
      | None -> ()
      | Some e ->
        Array.iteri
          (fun pos l ->
            if List.mem fn l then begin
              e.func_lists.(pos) <- List.filter (( <> ) fn) l;
              if e.func_lists.(pos) = [] then
                e.speculate_map <- Bytemap.clear e.speculate_map pos
            end)
          e.func_lists)
    t.entries

(* --- profiling update (the logic inside a Class Cache access) --- *)

type update_outcome =
  | First_profile  (** InitMap bit was 0: the type is recorded *)
  | Still_mono  (** stored type matches the profile *)
  | Now_polymorphic of { was_speculated : bool; exception_raised : bool }
      (** profile broken; exception iff SpeculateMap bit was set *)
  | Already_poly  (** ValidMap bit was already 0 *)

(** Apply the paper's Fig. 6 update for a store of a value with class
    [value_classid] into slot [pos] of [classid]/[line]: the *semantic*
    update of one entry. *)
let update t ~classid ~line ~pos ~value_classid =
  if pos < 1 || pos > t.tracked then
    invalid_arg "Class_list.update: pos must be in 1..tracked_positions";
  let e = entry t ~classid ~line in
  if not (Bytemap.get e.init_map pos) then begin
    e.init_map <- Bytemap.set e.init_map pos;
    e.props.(pos) <- value_classid;
    First_profile
  end
  else if not (Bytemap.get e.valid_map pos) then Already_poly
  else if e.props.(pos) = value_classid then Still_mono
  else begin
    e.valid_map <- Bytemap.clear e.valid_map pos;
    let was_speculated = Bytemap.get e.speculate_map pos in
    Now_polymorphic { was_speculated; exception_raised = was_speculated }
  end

(** Full store-event application: updates the entry for the store-time
    class and propagates the observed value class down the transition tree
    (objects of [classid] may later transition to a descendant class, so a
    descendant's profile that disagrees with this store must be
    invalidated). Returns the own-entry outcome and every speculating
    function to deoptimize (own + descendants). *)
let rec apply t ~classid ~line ~pos ~value_classid : update_outcome * int list =
  let outcome = update t ~classid ~line ~pos ~value_classid in
  let own_fns =
    match outcome with
    | Now_polymorphic { exception_raised = true; _ } ->
      take_speculators t ~classid ~line ~pos
    | _ -> []
  in
  let child_fns =
    List.concat_map
      (fun c' ->
        if c' = classid then []
        else
          match t.entries.(index ~classid:c' ~line) with
          | Some _ ->
            snd (apply t ~classid:c' ~line ~pos ~value_classid)
          | None -> [] (* lazy inheritance will copy the updated state *))
      (t.children_of classid)
  in
  (outcome, own_fns @ child_fns)

(** Retire a value class whose objects mutated their hidden class in place
    (elements-kind transitions): every profile naming it is invalidated —
    the analog of V8 discarding code dependent on a map that lost
    stability. Returns the speculating functions to deoptimize. *)
let retire_value_class t ~value_classid =
  let fns = ref [] in
  Array.iteri
    (fun i -> function
      | None -> ()
      | Some e ->
        for pos = 1 to t.tracked do
          if
            Bytemap.get e.init_map pos
            && Bytemap.get e.valid_map pos
            && e.props.(pos) = value_classid
          then begin
            e.valid_map <- Bytemap.clear e.valid_map pos;
            if Bytemap.get e.speculate_map pos then
              fns :=
                take_speculators t ~classid:(i lsr 8) ~line:(i land 0xff) ~pos
                @ !fns
          end
        done)
    t.entries;
  !fns

(* --- pretty printing (paper Table 1) --- *)

let pp_entry ~class_name ~fn_name ppf (classid, line, e) =
  let prop_str pos =
    if Bytemap.get e.init_map pos then class_name e.props.(pos) else "-"
  in
  Fmt.pf ppf "%-24s %a %a %a  %s"
    (Printf.sprintf "%s, line %d" (class_name classid) line)
    Bytemap.pp e.init_map Bytemap.pp e.valid_map Bytemap.pp e.speculate_map
    (String.concat " "
       (List.map (fun pos -> Printf.sprintf "P%d=%s" pos (prop_str pos))
          [ 1; 2; 3; 4; 5; 6; 7 ]));
  let fns =
    List.concat_map
      (fun pos ->
        List.map
          (fun fn -> Printf.sprintf "P%d:%s" pos (fn_name fn))
          e.func_lists.(pos))
      [ 1; 2; 3; 4; 5; 6; 7 ]
  in
  if fns <> [] then Fmt.pf ppf "  [%s]" (String.concat ", " fns)

(** All materialized entries as [(classid, line, entry)]. *)
let dump t =
  let out = ref [] in
  Array.iteri
    (fun i -> function
      | None -> ()
      | Some e -> out := (i lsr 8, i land 0xff, e) :: !out)
    t.entries;
  List.rev !out
