(** Set-associative cache timing model (LRU, write-allocate): hit/miss state
    only — data lives in {!Tce_vm.Mem}. Used for L1I, L1D and L2. *)

type stats = { mutable accesses : int; mutable hits : int; mutable misses : int }

type t = private {
  line_bits : int;
  nsets : int;
  set_mask : int;  (** [nsets - 1] when a power of two, else -1 *)
  ways : int;
  tags : int array array;
  lru : int array array;
  mutable clock : int;
  stats : stats;
}

val create : size_kb:int -> ways:int -> line_bytes:int -> t

(** Access (and on miss, fill) the line containing the address; [true] on
    hit. *)
val access : t -> int -> bool

(** Insert a line without touching statistics — models allocation into a
    cache-resident nursery (DESIGN.md §5b). *)
val insert : t -> int -> unit

val hit_rate : t -> float
val reset_stats : t -> unit
