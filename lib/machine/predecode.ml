(** Pre-decoded LIR: the flat, specialized instruction stream the machine's
    run loop executes (see lib/machine/README.md for the invariants).

    Decoding happens once per installed compilation ([Lir.func], keyed by
    its [opt_id]); the executor then never re-examines the [Lir.op] variant:

    - operand forms are resolved (separate [*_r] register and [*_i]
      immediate constructors — no [Lir.operand] match, no [operand_ready]
      dispatch per instruction);
    - the [Profile]/[ProfileStore] measurement pseudo-ops are split out
      behind one meta-bit test;
    - per-op constants are baked in: ALU/FP latencies, runtime-stub costs
      ([Costs.rt_cost] evaluated at decode time), pre-canonicalized float
      immediates, and the 64-bit-shift special form of [Alu];
    - everything {!Machine.count} and dispatch-port selection need
      (category index, check-kind slot, guard flag, load/store/branch/fp
      class, port kind) is packed into one int per pc ({!meta} bits). *)

open Tce_jit

(** {1 Packed per-pc metadata} *)

(* bits 0-2: Categories index; bits 3-5: check-kind slot; bit 6:
   guards-obj-load flag; bits 7-9: counter class; bits 10-11: dispatch
   port kind; bit 12: measurement pseudo-op. *)

let meta_cat_mask = 0x7
let meta_check_shift = 3
let meta_guards_bit = 0x40
let meta_class_shift = 7
let meta_kind_shift = 10
let meta_pseudo_bit = 0x1000

(* dispatch port kinds *)
let kind_other = 0
let kind_load = 1
let kind_store = 2

(* counter classes (Machine.count's op-class breakdown) *)
let class_none = 0
let class_load = 1
let class_store = 2
let class_branch = 3
let class_fp = 4

(** {1 The specialized stream} *)

type pre =
  (* measurement pseudo-ops (meta_pseudo_bit set; zero timing cost) *)
  | Pprofile of int * int * int  (** receiver reg, line, pos *)
  | Pprofile_store_r of int * int * int * int  (** receiver, line, pos, value reg *)
  | Pprofile_store_c of int * int * int * int  (** receiver, line, pos, classid *)
  (* moves / integer ALU *)
  | Pmov_imm of int * int
  | Pmov of int * int
  | Palu_r of Lir.alu * int * int * int * int  (** op, latency, rd, rs, ro *)
  | Palu_i of Lir.alu * int * int * int * int  (** op, latency, rd, rs, imm *)
  | Psh64_r of int * int * int * int  (** 0=shl 1=shr 2=sar, rd, rs, ro *)
  | Psh64_i of int * int * int * int
  | Palu32_r of Lir.alu * int * int * int * int
  | Palu32_i of Lir.alu * int * int * int * int
  | Paluov_r of Lir.alu * int * int * int * int * int  (** op, lat, rd, rs, ro, target *)
  | Paluov_i of Lir.alu * int * int * int * int * int
  (* memory *)
  | Pload of int * int * int  (** rd, rb, off *)
  | Pchecked_load of int * int * int * int * int  (** rd, rb, off, expected, deopt *)
  | Pload_idx of int * int * int * int
  | Pfload of int * int * int
  | Pfload_idx of int * int * int * int
  | Pstore_r of int * int * int  (** rb, off, value reg *)
  | Pstore_i of int * int * int
  | Pstore_idx_r of int * int * int * int
  | Pstore_idx_i of int * int * int * int
  | Pfstore of int * int * int
  | Pfstore_idx of int * int * int * int
  (* floating point *)
  | Pfmov of int * int
  | Pfmov_imm of int * float  (** pre-canonicalized ([Fbits.canon]) *)
  | Pfadd of int * int * int
  | Pfsub of int * int * int
  | Pfmul of int * int * int
  | Pfdiv of int * int * int
  | Pfsqrt of int * int
  | Pfneg of int * int
  | Pfabs of int * int
  | Pcvtif of int * int
  | Ptruncfi of int * int
  (* control *)
  | Pbranch_r of Lir.cond * int * int * int  (** cond, r, ro, target *)
  | Pbranch_i of Lir.cond * int * int * int
  | Pfbranch of Lir.fcond * int * int * int
  | Pjmp of int
  | Pcall_fn of int * int array * int * int * int
      (** callee, arg regs, rd, deopt id, charged instrs (8 + 2·nargs) *)
  | Pcall_rt_chk of Lir.rt * int array * int * int * int * int
      (** rt, args, rd (-1 = none), deopt id, cost instrs, cost cycles *)
  | Pcall_rt of Lir.rt * int array * int array * int * int * int * int
      (** rt, args, fargs, rd (-1), fd (-1), cost instrs, cost cycles *)
  | Pret of int
  | Pdeopt of int
  (* the paper's new instructions *)
  | Pmov_classid of int
  | Pmov_classid_arr of int * int
  | Pstore_cc_r of int * int * int * int  (** rb, off, value reg, deopt id *)
  | Pstore_cc_i of int * int * int * int
  | Pstore_cca_r of int * int * int * int * int * int  (** k, rb, ri, off, vr, deopt *)
  | Pstore_cca_i of int * int * int * int * int * int

(** A decoded compilation: the original [Lir.func] (deopt metadata, reprs,
    code address, identity) plus the specialized stream and packed meta. *)
type func = { lf : Lir.func; ops : pre array; meta : int array }

(* Integer-ALU issue latency (identical to the reference executor's
   [alu_latency]). *)
let alu_latency (a : Lir.alu) =
  match a with Lir.Mul -> 3 | Div | Rem -> 20 | _ -> 1

let sh64_code = function
  | Lir.Shl -> 0
  | Lir.Shr -> 1
  | Lir.Sar -> 2
  | _ -> invalid_arg "Predecode.sh64_code"

let opt_reg = function Some r -> r | None -> -1

(** Decode one instruction to its specialized form plus packed meta. This is
    the single source of truth the executor runs; test/test_fastpath.ml
    checks it against independently-written expectations for every [Lir.op]
    constructor. *)
let decode_inst (inst : Lir.inst) : pre * int =
  let pre =
    match inst.Lir.op with
    | Lir.Profile (r, line, pos) -> Pprofile (r, line, pos)
    | ProfileStore (r, line, pos, Lir.Ps_reg vr) -> Pprofile_store_r (r, line, pos, vr)
    | ProfileStore (r, line, pos, Lir.Ps_classid c) -> Pprofile_store_c (r, line, pos, c)
    | MovImm (r, i) -> Pmov_imm (r, i)
    | Mov (rd, rs) -> Pmov (rd, rs)
    | Alu (((Lir.Shl | Shr | Sar) as a), rd, rs, Lir.Reg ro) ->
      Psh64_r (sh64_code a, rd, rs, ro)
    | Alu (((Lir.Shl | Shr | Sar) as a), rd, rs, Lir.Imm i) ->
      Psh64_i (sh64_code a, rd, rs, i)
    | Alu (a, rd, rs, Lir.Reg ro) -> Palu_r (a, alu_latency a, rd, rs, ro)
    | Alu (a, rd, rs, Lir.Imm i) -> Palu_i (a, alu_latency a, rd, rs, i)
    | Alu32 (a, rd, rs, Lir.Reg ro) -> Palu32_r (a, alu_latency a, rd, rs, ro)
    | Alu32 (a, rd, rs, Lir.Imm i) -> Palu32_i (a, alu_latency a, rd, rs, i)
    | AluOv (a, rd, rs, Lir.Reg ro, tgt) -> Paluov_r (a, alu_latency a, rd, rs, ro, tgt)
    | AluOv (a, rd, rs, Lir.Imm i, tgt) -> Paluov_i (a, alu_latency a, rd, rs, i, tgt)
    | Load (rd, rb, off) -> Pload (rd, rb, off)
    | CheckedLoad (rd, rb, off, expected, did) -> Pchecked_load (rd, rb, off, expected, did)
    | LoadIdx (rd, rb, ri, off) -> Pload_idx (rd, rb, ri, off)
    | FLoad (fd, rb, off) -> Pfload (fd, rb, off)
    | FLoadIdx (fd, rb, ri, off) -> Pfload_idx (fd, rb, ri, off)
    | Store (rb, off, Lir.Reg vr) -> Pstore_r (rb, off, vr)
    | Store (rb, off, Lir.Imm i) -> Pstore_i (rb, off, i)
    | StoreIdx (rb, ri, off, Lir.Reg vr) -> Pstore_idx_r (rb, ri, off, vr)
    | StoreIdx (rb, ri, off, Lir.Imm i) -> Pstore_idx_i (rb, ri, off, i)
    | FStore (rb, off, fv) -> Pfstore (rb, off, fv)
    | FStoreIdx (rb, ri, off, fv) -> Pfstore_idx (rb, ri, off, fv)
    | FMov (fd, fs) -> Pfmov (fd, fs)
    | FMovImm (fd, x) -> Pfmov_imm (fd, Tce_vm.Fbits.canon x)
    | FAdd (fd, fa, fb) -> Pfadd (fd, fa, fb)
    | FSub (fd, fa, fb) -> Pfsub (fd, fa, fb)
    | FMul (fd, fa, fb) -> Pfmul (fd, fa, fb)
    | FDiv (fd, fa, fb) -> Pfdiv (fd, fa, fb)
    | FSqrt (fd, fs) -> Pfsqrt (fd, fs)
    | FNeg (fd, fs) -> Pfneg (fd, fs)
    | FAbs (fd, fs) -> Pfabs (fd, fs)
    | CvtIF (fd, rs) -> Pcvtif (fd, rs)
    | TruncFI (rd, fs) -> Ptruncfi (rd, fs)
    | Branch (c, r, Lir.Reg ro, tgt) -> Pbranch_r (c, r, ro, tgt)
    | Branch (c, r, Lir.Imm i, tgt) -> Pbranch_i (c, r, i, tgt)
    | FBranch (c, fa, fb, tgt) -> Pfbranch (c, fa, fb, tgt)
    | Jmp tgt -> Pjmp tgt
    | CallFn (callee, argr, rd, did) ->
      Pcall_fn (callee, argr, rd, did, 8 + (2 * Array.length argr))
    | CallRtChecked (rt, argr, rd, did) ->
      let c = Costs.rt_cost rt in
      Pcall_rt_chk (rt, argr, opt_reg rd, did, c.Costs.instrs, c.Costs.cycles)
    | CallRt (rt, argr, fargr, rd, fd) ->
      let c = Costs.rt_cost rt in
      Pcall_rt (rt, argr, fargr, opt_reg rd, opt_reg fd, c.Costs.instrs, c.Costs.cycles)
    | Ret r -> Pret r
    | Deopt did -> Pdeopt did
    | MovClassID r -> Pmov_classid r
    | MovClassIDArray (k, r) -> Pmov_classid_arr (k, r)
    | StoreClassCache (rb, off, Lir.Reg vr, did) -> Pstore_cc_r (rb, off, vr, did)
    | StoreClassCache (rb, off, Lir.Imm i, did) -> Pstore_cc_i (rb, off, i, did)
    | StoreClassCacheArray (k, rb, ri, off, Lir.Reg vr, did) ->
      Pstore_cca_r (k, rb, ri, off, vr, did)
    | StoreClassCacheArray (k, rb, ri, off, Lir.Imm i, did) ->
      Pstore_cca_i (k, rb, ri, off, i, did)
  in
  let opclass =
    match inst.Lir.op with
    | Lir.Load _ | LoadIdx _ | FLoad _ | FLoadIdx _ -> class_load
    | Store _ | StoreIdx _ | FStore _ | FStoreIdx _ | StoreClassCache _
    | StoreClassCacheArray _ ->
      class_store
    | Branch _ | FBranch _ | Jmp _ -> class_branch
    | FAdd _ | FSub _ | FMul _ | FDiv _ | FSqrt _ | FNeg _ | FAbs _ | CvtIF _
    | TruncFI _ ->
      class_fp
    | _ -> class_none
  in
  let kind =
    if Lir.is_memory_read inst.Lir.op then kind_load
    else if Lir.is_memory_write inst.Lir.op then kind_store
    else kind_other
  in
  let pseudo =
    match inst.Lir.op with
    | Lir.Profile _ | ProfileStore _ -> meta_pseudo_bit
    | _ -> 0
  in
  let meta =
    Categories.index inst.Lir.cat
    lor (Categories.check_kind_slot inst.Lir.flags lsl meta_check_shift)
    lor (if inst.Lir.flags land Categories.flag_guards_obj_load <> 0 then
           meta_guards_bit
         else 0)
    lor (opclass lsl meta_class_shift)
    lor (kind lsl meta_kind_shift)
    lor pseudo
  in
  (pre, meta)

let decode (lf : Lir.func) : func =
  let n = Array.length lf.Lir.code in
  let ops = Array.make n (Pjmp 0) in
  let meta = Array.make n 0 in
  for i = 0 to n - 1 do
    let p, m = decode_inst lf.Lir.code.(i) in
    ops.(i) <- p;
    meta.(i) <- m
  done;
  { lf; ops; meta }
