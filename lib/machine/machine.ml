(** Cycle-level execution of optimized (LIR) code: a 4-wide in-order-dispatch
    / out-of-order-completion scoreboard with a 128-entry window, load/store
    queue, L1I/L1D/L2 caches, D/I-TLBs, a bimodal branch predictor and the
    Class Cache — parameters from {!Config} (the paper's Table 2).

    The model dispatches instructions in program order at up to
    [issue_width] per cycle, blocks dispatch when the window is full, lets
    results complete out of order at [dispatch + max(dep stalls) + latency],
    and restarts the front end on branch mispredictions — a standard
    research-grade approximation of a Nehalem-class core (MARSS substitute,
    see DESIGN.md). *)

open Tce_vm
open Tce_jit

exception Trap of string

(** A misspeculation exception with the faulting-store context attached
    (what broke, where, and who has to deopt) — the attribution ledger's
    causal-chain anchor. *)
type cc_exn_info = {
  cc_classid : int;
  cc_line : int;
  cc_pos : int;
  cc_value_classid : int;
  cc_victims : int list;  (** opt_ids from the slot's FunctionList *)
}

(** Callbacks into the engine (tier driver). *)
type host = {
  call_fn : int -> Value.t array -> Value.t;
      (** call guest function [fn_id] with [this :: args] *)
  resume : opt_id:int -> bc_pc:int -> regs:Value.t array ->
           result:(int * Value.t) option -> Value.t;
      (** deoptimization: resume the interpreter mid-function *)
  rt_call : Lir.rt -> Value.t array -> float array -> Value.t * float;
      (** execute a runtime stub functionally *)
  on_cc_exception : cc_exn_info -> unit;
      (** invalidate the optimized code instances in [cc_victims] *)
  on_deopt : int -> unit;
      (** a check failed in this opt_id (engine discards code that
          deoptimizes repeatedly, like V8's deopt counters) *)
  is_invalidated : int -> bool;  (** has this opt_id been invalidated? *)
}

type t = {
  cfg : Config.t;
  heap : Heap.t;
  cc : Tce_core.Class_cache.t;
  cl : Tce_core.Class_list.t;
  oracle : Tce_core.Oracle.t;
  counters : Counters.t;
  l1d : Cache.t;
  l1i : Cache.t;
  l2 : Cache.t;
  dtlb : Tlb.t;
  itlb : Tlb.t;
  bp : Branch.t;
  mechanism : bool;  (** Class Cache mechanism on/off *)
  (* timing state *)
  mutable cycle : int;  (** current dispatch cycle *)
  mutable slots : int;  (** instructions dispatched in this cycle *)
  mutable load_slots : int;  (** loads dispatched this cycle (1 load port) *)
  mutable store_slots : int;  (** stores dispatched this cycle (1 store port) *)
  window : int Queue.t;  (** completion times of in-flight instructions *)
  store_q : int Queue.t;  (** completion times of in-flight stores *)
  mutable last_iline : int;  (** last instruction-cache line fetched *)
  fills : (int, int) Hashtbl.t;
      (** in-flight line fills: line -> cycle the data arrives (MSHR
          merging: a second access to a line being filled waits for the
          fill instead of seeing an instant hit) *)
  mutable measuring : bool;
  trace : Tce_obs.Trace.t;
      (** observability sink (deopt / OSR events; never affects timing) *)
  fault : Tce_fault.Injector.t;
      (** fault injector ({!Tce_fault.Injector.null} = disarmed): OSR-fail
          injection and the retire-path re-validation of special stores *)
  attr : Tce_attr.Ledger.t;
      (** attribution ledger ({!Tce_attr.Ledger.null} = disabled): records
          each deopt's typed reason; never affects timing *)
  (* special registers (paper §4.2.1.2) *)
  mutable reg_classid : int;
  reg_classid_arr : int array;
}

let create ?(cfg = Config.default) ?(mechanism = true)
    ?(trace = Tce_obs.Trace.null) ?(fault = Tce_fault.Injector.null)
    ?(attr = Tce_attr.Ledger.null) ~heap ~cc ~cl ~oracle ~counters () =
  {
    cfg;
    heap;
    cc;
    cl;
    oracle;
    counters;
    l1d = Cache.create ~size_kb:cfg.dl1_kb ~ways:cfg.dl1_ways ~line_bytes:64;
    l1i = Cache.create ~size_kb:cfg.il1_kb ~ways:cfg.il1_ways ~line_bytes:64;
    l2 = Cache.create ~size_kb:cfg.l2_kb ~ways:cfg.l2_ways ~line_bytes:64;
    dtlb = Tlb.create ~entries:cfg.dtlb_entries;
    itlb = Tlb.create ~entries:cfg.itlb_entries;
    bp = Branch.create ();
    mechanism;
    cycle = 0;
    slots = 0;
    load_slots = 0;
    store_slots = 0;
    window = Queue.create ();
    store_q = Queue.create ();
    last_iline = -1;
    fills = Hashtbl.create 4096;
    measuring = true;
    trace;
    fault;
    attr;
    reg_classid = 0;
    reg_classid_arr = Array.make 4 0;
  }

(* --- timing primitives --- *)

(** Dispatch one instruction; returns its dispatch cycle. Loads and stores
    additionally contend for their single AGU/port (Nehalem: one load port,
    one store port), so memory-heavy code is port-bound — which is what
    makes removing Check Map loads profitable. *)
let dispatch ?(kind = `Other) t =
  let advance () =
    t.cycle <- t.cycle + 1;
    t.slots <- 0;
    t.load_slots <- 0;
    t.store_slots <- 0
  in
  if t.slots >= t.cfg.issue_width then advance ();
  (match kind with
  | `Load -> while t.load_slots >= 1 do advance () done
  | `Store -> while t.store_slots >= 1 do advance () done
  | `Other -> ());
  if Queue.length t.window >= t.cfg.window_size then begin
    let c = Queue.pop t.window in
    if c > t.cycle then begin
      t.cycle <- c;
      t.slots <- 0;
      t.load_slots <- 0;
      t.store_slots <- 0
    end
  end;
  t.slots <- t.slots + 1;
  (match kind with
  | `Load -> t.load_slots <- t.load_slots + 1
  | `Store -> t.store_slots <- t.store_slots + 1
  | `Other -> ());
  t.cycle

let complete t c = Queue.push c t.window

(** Completion time of a data access to [addr] issued at [start], through
    DTLB + D-cache hierarchy, with MSHR merging of accesses to lines whose
    fill is still in flight. *)
let daccess t ~start addr =
  let tlb_hit = Tlb.access t.dtlb addr in
  let line = addr lsr 6 in
  let hit_l1 = Cache.access t.l1d addr in
  let lat =
    if hit_l1 then t.cfg.l1_load_latency
    else if Cache.access t.l2 addr then t.cfg.l1_load_latency + t.cfg.l2_latency
    else t.cfg.l1_load_latency + t.cfg.l2_latency + t.cfg.mem_latency
  in
  let lat = if tlb_hit then lat else lat + t.cfg.tlb_miss_penalty in
  let completion =
    if hit_l1 then begin
      match Hashtbl.find_opt t.fills line with
      | Some ready when ready > start ->
        (* the line is still being filled: wait for it *)
        ready + t.cfg.l1_load_latency
      | _ -> start + lat
    end
    else begin
      let done_at = start + lat in
      Hashtbl.replace t.fills line done_at;
      done_at
    end
  in
  completion

(** Instruction fetch: touch the I-cache when crossing into a new line. *)
let ifetch t ~code_addr ~pc =
  let line = (code_addr + (4 * pc)) lsr 6 in
  if line <> t.last_iline then begin
    t.last_iline <- line;
    let addr = line lsl 6 in
    let tlb_hit = Tlb.access t.itlb addr in
    let hit = Cache.access t.l1i addr in
    if not hit then begin
      (* front-end bubble *)
      let pen =
        if Cache.access t.l2 addr then t.cfg.l2_latency
        else t.cfg.l2_latency + t.cfg.mem_latency
      in
      t.cycle <- t.cycle + pen;
      t.slots <- 0;
      t.load_slots <- 0;
      t.store_slots <- 0
    end;
    if not tlb_hit then begin
      t.cycle <- t.cycle + t.cfg.tlb_miss_penalty;
      t.slots <- 0;
      t.load_slots <- 0;
      t.store_slots <- 0
    end
  end

let count t (inst : Lir.inst) =
  if t.measuring then begin
    Counters.add_cat t.counters inst.cat 1;
    if inst.cat = Categories.C_check then begin
      let slot = Categories.check_kind_slot inst.flags in
      t.counters.by_check_kind.(slot) <- t.counters.by_check_kind.(slot) + 1
    end;
    if inst.flags land Categories.flag_guards_obj_load <> 0 then
      t.counters.guards_obj_load <- t.counters.guards_obj_load + 1;
    (match inst.op with
    | Lir.Load _ | LoadIdx _ | FLoad _ | FLoadIdx _ ->
      t.counters.opt_loads <- t.counters.opt_loads + 1
    | Store _ | StoreIdx _ | FStore _ | FStoreIdx _ | StoreClassCache _
    | StoreClassCacheArray _ ->
      t.counters.opt_stores <- t.counters.opt_stores + 1
    | Branch _ | FBranch _ | Jmp _ ->
      t.counters.opt_branches <- t.counters.opt_branches + 1
    | FAdd _ | FSub _ | FMul _ | FDiv _ | FSqrt _ | FNeg _ | FAbs _ | CvtIF _
    | TruncFI _ ->
      t.counters.opt_fp <- t.counters.opt_fp + 1
    | _ -> ())
  end

(** Charge a runtime-stub cost: serializes the pipeline. The cost is
    attributed to [cat] (e.g. boxing stubs count as Tags/Untags). *)
let charge_rt ?(cat = Categories.C_other) t (cost : Costs.cost) =
  if t.measuring then Counters.add_cat t.counters cat cost.instrs;
  t.cycle <- t.cycle + cost.cycles;
  t.slots <- 0;
  t.load_slots <- 0;
  t.store_slots <- 0

(** Model a fresh allocation as nursery-resident: the lines are inserted
    into the D-caches without cost. (V8's new space is recycled by the
    scavenger and stays cache-resident in steady state; our bump allocator
    would otherwise make every allocation a cold DRAM miss.) *)
let prefill t ~addr ~bytes =
  let first = addr lsr 6 and last = (addr + bytes - 1) lsr 6 in
  for line = first to last do
    Cache.insert t.l1d (line lsl 6);
    Cache.insert t.l2 (line lsl 6)
  done

exception Cc_exception of cc_exn_info

(* --- the executor --- *)

let operand regs = function Lir.Reg r -> regs.(r) | Lir.Imm i -> i
let operand_ready ready cyc = function Lir.Reg r -> max cyc ready.(r) | Lir.Imm _ -> cyc

let alu_apply (a : Lir.alu) x y =
  match a with
  | Lir.Add -> x + y
  | Sub -> x - y
  | Mul -> x * y
  | Div -> if y = 0 then 0 else x / y
  | Rem -> if y = 0 then 0 else Stdlib.( mod ) x y
  | And -> x land y
  | Or -> x lor y
  | Xor -> x lxor y
  | Shl -> x lsl (y land 31)
  | Shr -> (x land 0xffff_ffff) lsr (y land 31)  (* JS >>> on uint32 *)
  | Sar -> x asr (y land 31)

let alu_latency (a : Lir.alu) =
  match a with Lir.Mul -> 3 | Div | Rem -> 20 | _ -> 1

let cond_apply (c : Lir.cond) x y =
  match c with
  | Lir.Eq -> x = y
  | Ne -> x <> y
  | Lt -> x < y
  | Le -> x <= y
  | Gt -> x > y
  | Ge -> x >= y
  | Bit_set -> x land y <> 0
  | Bit_clear -> x land y = 0

let fcond_apply (c : Lir.fcond) (x : float) (y : float) =
  match c with
  | Lir.FEq -> x = y
  | FNe -> x <> y
  | FLt -> x < y
  | FLe -> x <= y
  | FGt -> x > y
  | FGe -> x >= y
  (* negated forms: true on NaN (unordered) *)
  | FNlt -> not (x < y)
  | FNle -> not (x <= y)
  | FNgt -> not (x > y)
  | FNge -> not (x >= y)

let flat_lat = 3 (* FP add/sub/cvt latency *)
let fmul_lat = 5
let fdiv_lat = 20
let fsqrt_lat = 25

(** Reconstruct the interpreter frame for a deopt of [f] and resume. *)
let do_deopt t host (f : Lir.func) regs fregs deopt_id ~result =
  let info = f.deopts.(deopt_id) in
  if Tce_obs.Trace.on t.trace then
    Tce_obs.Trace.emit t.trace
      (Tce_obs.Trace.Deopt
         {
           reason = Tce_attr.Reason.to_string info.Lir.reason;
           func = f.Lir.name;
           pc = info.Lir.bc_pc;
           classid = info.Lir.reason.Tce_attr.Reason.classid;
         });
  Tce_attr.Ledger.record_deopt t.attr ~fn:f.Lir.name ~reason:info.Lir.reason;
  host.on_deopt f.Lir.opt_id;
  if t.measuring then begin
    t.counters.deopts <- t.counters.deopts + 1;
    t.counters.baseline_instrs <-
      t.counters.baseline_instrs + Costs.deopt_transition_instrs
  end;
  t.cycle <- t.cycle + t.cfg.deopt_penalty;
  (* Fault: the OSR transition itself fails once and is retried via the
     slow path — semantics preserved by construction, one extra frame
     reconstruction's worth of cost (timing-only, gracefully degraded). *)
  if
    Tce_fault.Injector.armed t.fault
    && Tce_fault.Injector.fire t.fault Tce_fault.Point.Osr_fail
  then begin
    if t.measuring then
      t.counters.baseline_instrs <-
        t.counters.baseline_instrs + Costs.deopt_transition_instrs;
    t.cycle <- t.cycle + t.cfg.deopt_penalty
  end;
  t.slots <- 0;
  let n = Array.length f.reprs in
  let vals =
    Array.init n (fun i ->
        match f.reprs.(i) with
        | Lir.R_tagged -> regs.(i)
        | Lir.R_double -> Heap.number t.heap fregs.(i))
  in
  let result =
    match result with
    | Some v -> Some ((match info.result_into with Some r -> r | None -> -1), v)
    | None -> None
  in
  host.resume ~opt_id:f.opt_id ~bc_pc:info.bc_pc ~regs:vals ~result

(** Execute optimized code [f] on [args] = [this :: params], returning the
    function result (possibly via a deopt into the interpreter). *)
let rec run t (host : host) (f : Lir.func) (args : Value.t array) : Value.t =
  let regs = Array.make (max f.n_regs 1) 0 in
  let fregs = Array.make (max f.n_fregs 1) 0.0 in
  let ready = Array.make (max f.n_regs 1) t.cycle in
  let fready = Array.make (max f.n_fregs 1) t.cycle in
  let nargs = min (Array.length args) f.n_regs in
  Array.blit args 0 regs 0 nargs;
  (* absent parameters read as null *)
  for i = nargs to min (Array.length f.reprs) f.n_regs - 1 do
    regs.(i) <- t.heap.Heap.null_v
  done;
  let pc = ref 0 in
  let result = ref None in
  (try
     while !result = None do
       let inst = f.code.(!pc) in
       let next = !pc + 1 in
       (match inst.op with
       | Lir.Profile (r, line, pos) ->
         (* measurement pseudo-op: zero cost *)
         if t.measuring then begin
           let classid = Heap.classid_of t.heap regs.(r) in
           Counters.record_obj_load t.counters ~classid ~line ~pos
         end;
         pc := next
       | Lir.ProfileStore (r, line, pos, pv) ->
         (* measurement pseudo-op: zero cost; records the store in the
            monomorphism oracle (mechanism-off code has no CC request) *)
         let classid = Heap.classid_of t.heap regs.(r) in
         let value_classid =
           match pv with
           | Lir.Ps_reg vr -> Heap.classid_of t.heap regs.(vr)
           | Lir.Ps_classid c -> c
         in
         Tce_core.Oracle.record t.oracle ~classid ~line ~pos ~value_classid;
         pc := next
       | _ ->
         ifetch t ~code_addr:f.code_addr ~pc:!pc;
         let d =
           dispatch t
             ~kind:
               (if Lir.is_memory_read inst.op then `Load
                else if Lir.is_memory_write inst.op then `Store
                else `Other)
         in
         count t inst;
         (match inst.op with
         | Lir.Profile _ | Lir.ProfileStore _ -> assert false
         | Lir.MovImm (r, i) ->
           regs.(r) <- i;
           ready.(r) <- d + 1;
           complete t (d + 1);
           pc := next
         | Mov (rd, rs) ->
           regs.(rd) <- regs.(rs);
           ready.(rd) <- max d ready.(rs) + 1;
           complete t ready.(rd);
           pc := next
         | Alu (a, rd, rs, o) ->
           let start = max (operand_ready ready d o) (max d ready.(rs)) in
           regs.(rd) <-
             (match a with
             | Lir.Shl | Shr | Sar ->
               (* full-width shifts for tag arithmetic *)
               let y = match o with Lir.Reg r -> regs.(r) | Imm i -> i in
               (match a with
               | Lir.Shl -> regs.(rs) lsl (y land 63)
               | Shr -> regs.(rs) lsr (y land 63)
               | _ -> regs.(rs) asr (y land 63))
             | _ -> alu_apply a regs.(rs) (operand regs o));
           ready.(rd) <- start + alu_latency a;
           complete t ready.(rd);
           pc := next
         | Alu32 (a, rd, rs, o) ->
           let start = max (operand_ready ready d o) (max d ready.(rs)) in
           regs.(rd) <- Value.to_int32 (alu_apply a regs.(rs) (operand regs o));
           ready.(rd) <- start + alu_latency a;
           complete t ready.(rd);
           pc := next
         | AluOv (a, rd, rs, o, target) ->
           let start = max (operand_ready ready d o) (max d ready.(rs)) in
           let v = alu_apply a regs.(rs) (operand regs o) in
           ready.(rd) <- start + alu_latency a;
           complete t ready.(rd);
           (* tagged-SMI overflow: payload must fit int32 *)
           if Value.smi_fits (v asr 1) then begin
             regs.(rd) <- v;
             pc := next
           end
           else pc := target
         | Load (rd, rb, off) ->
           let addr = regs.(rb) + off in
           let start = max d ready.(rb) in
           regs.(rd) <- Mem.load t.heap.Heap.mem addr;
           ready.(rd) <- daccess t ~start addr;
           complete t ready.(rd);
           pc := next
         | CheckedLoad (rd, rb, off, expected, deopt_id) ->
           (* the class word arrives with the same cache line: the check is
              free in hardware but still *executes* (no removal) *)
           let base = regs.(rb) in
           let addr = base + off in
           let start = max d ready.(rb) in
           let line_base = Tce_vm.Layout.line_base_of_addr addr in
           let w = Mem.load t.heap.Heap.mem line_base in
           if Value.is_smi base || w <> expected then
             result := Some (do_deopt t host f regs fregs deopt_id ~result:None)
           else begin
             regs.(rd) <- Mem.load t.heap.Heap.mem addr;
             ready.(rd) <- daccess t ~start addr;
             complete t ready.(rd);
             pc := next
           end
         | LoadIdx (rd, rb, ri, off) ->
           let addr = regs.(rb) + (regs.(ri) * 8) + off in
           let start = max d (max ready.(rb) ready.(ri)) in
           regs.(rd) <- Mem.load t.heap.Heap.mem addr;
           ready.(rd) <- daccess t ~start addr;
           complete t ready.(rd);
           pc := next
         | FLoad (fd, rb, off) ->
           let addr = regs.(rb) + off in
           let start = max d ready.(rb) in
           fregs.(fd) <- Fbits.to_float (Mem.load t.heap.Heap.mem addr);
           fready.(fd) <- daccess t ~start addr;
           complete t fready.(fd);
           pc := next
         | FLoadIdx (fd, rb, ri, off) ->
           let addr = regs.(rb) + (regs.(ri) * 8) + off in
           let start = max d (max ready.(rb) ready.(ri)) in
           fregs.(fd) <- Fbits.to_float (Mem.load t.heap.Heap.mem addr);
           fready.(fd) <- daccess t ~start addr;
           complete t fready.(fd);
           pc := next
         | Store (rb, off, v) ->
           do_store t d ~addr:(regs.(rb) + off)
             ~start:(max (operand_ready ready d v) ready.(rb))
             ~word:(operand regs v);
           pc := next
         | StoreIdx (rb, ri, off, v) ->
           do_store t d
             ~addr:(regs.(rb) + (regs.(ri) * 8) + off)
             ~start:(max (operand_ready ready d v) (max ready.(rb) ready.(ri)))
             ~word:(operand regs v);
           pc := next
         | FStore (rb, off, fv) ->
           do_store t d ~addr:(regs.(rb) + off)
             ~start:(max fready.(fv) ready.(rb))
             ~word:(Fbits.of_float fregs.(fv));
           pc := next
         | FStoreIdx (rb, ri, off, fv) ->
           do_store t d
             ~addr:(regs.(rb) + (regs.(ri) * 8) + off)
             ~start:(max fready.(fv) (max ready.(rb) ready.(ri)))
             ~word:(Fbits.of_float fregs.(fv));
           pc := next
         | FMov (fd, fs) ->
           fregs.(fd) <- fregs.(fs);
           fready.(fd) <- max d fready.(fs) + 1;
           complete t fready.(fd);
           pc := next
         | FMovImm (fd, x) ->
           fregs.(fd) <- Fbits.canon x;
           fready.(fd) <- d + 1;
           complete t fready.(fd);
           pc := next
         | FAdd (fd, fa, fb) -> falu t d regs fregs fready fd fa fb ( +. ) flat_lat; pc := next
         | FSub (fd, fa, fb) -> falu t d regs fregs fready fd fa fb ( -. ) flat_lat; pc := next
         | FMul (fd, fa, fb) -> falu t d regs fregs fready fd fa fb ( *. ) fmul_lat; pc := next
         | FDiv (fd, fa, fb) -> falu t d regs fregs fready fd fa fb ( /. ) fdiv_lat; pc := next
         | FSqrt (fd, fs) ->
           fregs.(fd) <- Fbits.canon (sqrt fregs.(fs));
           fready.(fd) <- max d fready.(fs) + fsqrt_lat;
           complete t fready.(fd);
           pc := next
         | FNeg (fd, fs) ->
           fregs.(fd) <- -.fregs.(fs);
           fready.(fd) <- max d fready.(fs) + 1;
           complete t fready.(fd);
           pc := next
         | FAbs (fd, fs) ->
           fregs.(fd) <- Float.abs fregs.(fs);
           fready.(fd) <- max d fready.(fs) + 1;
           complete t fready.(fd);
           pc := next
         | CvtIF (fd, rs) ->
           fregs.(fd) <- float_of_int regs.(rs);
           fready.(fd) <- max d ready.(rs) + flat_lat;
           complete t fready.(fd);
           pc := next
         | TruncFI (rd, fs) ->
           regs.(rd) <- Value.js_to_int32_float fregs.(fs);
           ready.(rd) <- max d fready.(fs) + flat_lat;
           complete t ready.(rd);
           pc := next
         | Branch (c, r, o, target) ->
           let start = max (operand_ready ready d o) (max d ready.(r)) in
           let taken = cond_apply c regs.(r) (operand regs o) in
           branch_resolve t f !pc ~start ~taken;
           pc := (if taken then target else next)
         | FBranch (c, fa, fb, target) ->
           let start = max d (max fready.(fa) fready.(fb)) in
           let taken = fcond_apply c fregs.(fa) fregs.(fb) in
           branch_resolve t f !pc ~start ~taken;
           pc := (if taken then target else next)
         | Jmp target ->
           complete t (d + 1);
           pc := target
         | CallFn (callee, argr, rd, deopt_id) ->
           (* serialize on argument readiness *)
           Array.iter (fun r -> if ready.(r) > t.cycle then t.cycle <- ready.(r)) argr;
           t.slots <- 0;
           charge_rt t (Costs.c (8 + (2 * Array.length argr)) 8);
           let argv = Array.map (fun r -> regs.(r)) argr in
           let v = host.call_fn callee argv in
           if host.is_invalidated f.opt_id then begin
             (* on-stack replacement: this frame's code died during the call *)
             if Tce_obs.Trace.on t.trace then
               Tce_obs.Trace.emit t.trace
                 (Tce_obs.Trace.Osr
                    { func = f.Lir.name; pc = f.deopts.(deopt_id).Lir.bc_pc });
             result := Some (do_deopt t host f regs fregs deopt_id ~result:(Some v))
           end
           else begin
             regs.(rd) <- v;
             ready.(rd) <- t.cycle + 1;
             pc := next
           end
         | CallRtChecked (rt, argr, rd, deopt_id) ->
           Array.iter (fun r -> if ready.(r) > t.cycle then t.cycle <- ready.(r)) argr;
           charge_rt ~cat:inst.cat t (Costs.rt_cost rt);
           let argv = Array.map (fun r -> regs.(r)) argr in
           let v, _ = host.rt_call rt argv [||] in
           (match rd with
           | Some r ->
             regs.(r) <- v;
             ready.(r) <- t.cycle + 1
           | None -> ());
           if host.is_invalidated f.opt_id then begin
             (* the stub's store retired a profile this code speculates on *)
             if Tce_obs.Trace.on t.trace then
               Tce_obs.Trace.emit t.trace
                 (Tce_obs.Trace.Osr
                    { func = f.Lir.name; pc = f.deopts.(deopt_id).Lir.bc_pc });
             result :=
               Some
                 (do_deopt t host f regs fregs deopt_id
                    ~result:(match rd with Some _ -> Some v | None -> None))
           end
           else pc := next
         | CallRt (rt, argr, fargr, rd, fd) ->
           Array.iter (fun r -> if ready.(r) > t.cycle then t.cycle <- ready.(r)) argr;
           Array.iter (fun r -> if fready.(r) > t.cycle then t.cycle <- fready.(r)) fargr;
           charge_rt ~cat:inst.cat t (Costs.rt_cost rt);
           let argv = Array.map (fun r -> regs.(r)) argr in
           let fargv = Array.map (fun r -> fregs.(r)) fargr in
           let v, fv = host.rt_call rt argv fargv in
           (match rd with
           | Some r ->
             regs.(r) <- v;
             ready.(r) <- t.cycle + 1
           | None -> ());
           (match fd with
           | Some r ->
             fregs.(r) <- fv;
             fready.(r) <- t.cycle + 1
           | None -> ());
           pc := next
         | Ret r ->
           complete t (d + 1);
           result := Some regs.(r)
         | Deopt deopt_id ->
           result := Some (do_deopt t host f regs fregs deopt_id ~result:None)
         | MovClassID r ->
           let v = regs.(r) in
           if Value.is_smi v then begin
             t.reg_classid <- Tce_vm.Layout.smi_classid;
             complete t (d + 1)
           end
           else begin
             let addr = Value.ptr_addr v in
             t.reg_classid <- Heap.classid_of t.heap v;
             complete t (daccess t ~start:(max d ready.(r)) addr)
           end;
           pc := next
         | MovClassIDArray (k, r) ->
           let v = regs.(r) in
           if Value.is_smi v then begin
             (* hoisted loads may execute speculatively with a non-object
                value (loop body never entered); behave like movClassID *)
             t.reg_classid_arr.(k) <- Tce_vm.Layout.smi_classid;
             complete t (d + 1)
           end
           else begin
             let addr = Value.ptr_addr v in
             t.reg_classid_arr.(k) <- Heap.classid_of t.heap v;
             complete t (daccess t ~start:(max d ready.(r)) addr)
           end;
           pc := next
         | StoreClassCache (rb, off, v, deopt_id) -> (
           let addr = regs.(rb) + off in
           do_store t d ~addr
             ~start:(max (operand_ready ready d v) ready.(rb))
             ~word:(operand regs v);
           (* the memory unit recovers (ClassID, Line, slot) from the line *)
           let line_base = Tce_vm.Layout.line_base_of_addr addr in
           let w = Mem.load t.heap.Heap.mem line_base in
           let classid = Tce_vm.Layout.classid_of_class_word w in
           let line = Tce_vm.Layout.line_of_class_word w in
           let pos = Tce_vm.Layout.slot_pos_of_addr addr in
           let stored = operand regs v in
           try
             cc_request_tagged t ~classid ~line ~pos ~stored;
             post_store_check t host f regs fregs deopt_id result next pc
           with Cc_exception fns ->
             handle_cc_exception t host f regs fregs deopt_id fns result next pc)
         | StoreClassCacheArray (k, rb, ri, off, v, deopt_id) -> (
           let addr = regs.(rb) + (regs.(ri) * 8) + off in
           do_store t d ~addr
             ~start:(max (operand_ready ready d v) (max ready.(rb) ready.(ri)))
             ~word:(operand regs v);
           let classid = t.reg_classid_arr.(k) in
           let stored = operand regs v in
           try
             cc_request_tagged t ~classid ~line:0
               ~pos:Tce_vm.Layout.elements_ptr_slot ~stored;
             post_store_check t host f regs fregs deopt_id result next pc
           with Cc_exception fns ->
             handle_cc_exception t host f regs fregs deopt_id fns result next pc)))
     done
   with Cc_exception _ -> assert false);
  match !result with Some v -> v | None -> assert false

and do_store t d ~addr ~start ~word =
  (* store-buffer pressure: block when [outstanding_ldst] stores in flight *)
  if Queue.length t.store_q >= t.cfg.outstanding_ldst then begin
    let c = Queue.pop t.store_q in
    if c > t.cycle then begin
      t.cycle <- c;
      t.slots <- 0
    end
  end;
  Mem.store t.heap.Heap.mem addr word;
  let done_at = daccess t ~start:(max d start) addr in
  Queue.push done_at t.store_q;
  complete t (max d start + 1)

and falu t d _regs fregs fready fd fa fb op lat =
  ignore t;
  let start = max d (max fready.(fa) fready.(fb)) in
  fregs.(fd) <- Fbits.canon (op fregs.(fa) fregs.(fb));
  fready.(fd) <- start + lat;
  complete t fready.(fd)

and branch_resolve t (f : Lir.func) pc ~start ~taken =
  let completion = start + 1 in
  complete t completion;
  let correct = Branch.record t.bp ~fn:f.opt_id ~pc ~taken in
  if not correct then begin
    let restart = completion + t.cfg.branch_mispredict_penalty in
    if restart > t.cycle then begin
      t.cycle <- restart;
      t.slots <- 0
    end
  end

and cc_request_tagged t ~classid ~line ~pos ~stored =
  (* With the mechanism on, regObjectClassId was set by the preceding
     movClassID. With it off, these opcodes are plain stores and only feed
     the measurement oracle — the ClassID is then computed functionally. *)
  let value_classid =
    if t.mechanism then t.reg_classid else Heap.classid_of t.heap stored
  in
  Tce_core.Oracle.record t.oracle ~classid ~line ~pos ~value_classid;
  if t.mechanism then begin
    let r =
      Tce_core.Class_cache.access t.cc t.cl ~classid ~line ~pos ~value_classid
    in
    if not r.hit then begin
      let addr = Tce_core.Class_list.entry_addr t.cl ~classid ~line in
      let fin = daccess t ~start:t.cycle addr in
      t.cycle <- fin + t.cfg.class_cache_miss_penalty - t.cfg.l1_load_latency;
      t.slots <- 0
    end;
    if r.exn_raised then
      raise
        (Cc_exception
           {
             cc_classid = classid;
             cc_line = line;
             cc_pos = pos;
             cc_value_classid = value_classid;
             cc_victims = r.functions_to_deopt;
           })
  end

and post_store_check t host f regs fregs deopt_id result next pc =
  (* Retire-path invariant check (fault campaigns only): a special store
     that retires without raising re-validates this code's own speculation —
     the host's [is_invalidated] runs the engine's staleness check when an
     injector is armed, catching a dropped update or lost notification at
     the very store that broke the profile. Unfaulted, optimized code can
     never be invalidated on this path (exception delivery is synchronous),
     so the check is skipped and timing is untouched. *)
  if Tce_fault.Injector.armed t.fault && host.is_invalidated f.Lir.opt_id
  then begin
    if Tce_obs.Trace.on t.trace then
      Tce_obs.Trace.emit t.trace
        (Tce_obs.Trace.Osr
           { func = f.Lir.name; pc = f.Lir.deopts.(deopt_id).Lir.bc_pc });
    result := Some (do_deopt t host f regs fregs deopt_id ~result:None)
  end
  else pc := next

and handle_cc_exception t host f regs fregs deopt_id info result next pc =
  if t.measuring then
    t.counters.cc_exception_deopts <- t.counters.cc_exception_deopts + 1;
  host.on_cc_exception info;
  if host.is_invalidated f.opt_id then begin
    (* the running function speculated on the broken slot: OSR out now
       (the store has completed; state is consistent, paper §4.2.2) *)
    if Tce_obs.Trace.on t.trace then
      Tce_obs.Trace.emit t.trace
        (Tce_obs.Trace.Osr
           { func = f.Lir.name; pc = f.Lir.deopts.(deopt_id).Lir.bc_pc });
    result := Some (do_deopt t host f regs fregs deopt_id ~result:None)
  end
  else pc := next
