(** Cycle-level execution of optimized (LIR) code: a 4-wide in-order-dispatch
    / out-of-order-completion scoreboard with a 128-entry window, load/store
    queue, L1I/L1D/L2 caches, D/I-TLBs, a bimodal branch predictor and the
    Class Cache — parameters from {!Config} (the paper's Table 2).

    The model dispatches instructions in program order at up to
    [issue_width] per cycle, blocks dispatch when the window is full, lets
    results complete out of order at [dispatch + max(dep stalls) + latency],
    and restarts the front end on branch mispredictions — a standard
    research-grade approximation of a Nehalem-class core (MARSS substitute,
    see DESIGN.md).

    The executor runs the {!Predecode} stream, not [Lir.func.code] — see
    lib/machine/README.md for the pre-decode invariants. The run loop is
    allocation-free: the window and store queue are int ring buffers, MSHR
    fill tracking is an {!Tce_support.Int_table}, dispatch-port kinds are
    ints, and loop exit is a [running] flag plus a result register instead
    of an [option] compared per iteration. *)

open Tce_vm
open Tce_jit
module Profile = Tce_prof.Profile

exception Trap of string

(** A misspeculation exception with the faulting-store context attached
    (what broke, where, and who has to deopt) — the attribution ledger's
    causal-chain anchor. *)
type cc_exn_info = {
  cc_classid : int;
  cc_line : int;
  cc_pos : int;
  cc_value_classid : int;
  cc_victims : int list;  (** opt_ids from the slot's FunctionList *)
}

(** Callbacks into the engine (tier driver). *)
type host = {
  call_fn : int -> Value.t array -> Value.t;
      (** call guest function [fn_id] with [this :: args] *)
  resume : opt_id:int -> bc_pc:int -> regs:Value.t array ->
           result:(int * Value.t) option -> Value.t;
      (** deoptimization: resume the interpreter mid-function *)
  rt_call : Lir.rt -> Value.t array -> float array -> Value.t * float;
      (** execute a runtime stub functionally *)
  on_cc_exception : cc_exn_info -> unit;
      (** invalidate the optimized code instances in [cc_victims] *)
  on_deopt : int -> unit;
      (** a check failed in this opt_id (engine discards code that
          deoptimizes repeatedly, like V8's deopt counters) *)
  is_invalidated : int -> bool;  (** has this opt_id been invalidated? *)
}

(** {2 Superinstruction templates}

    Per-run mutable state threaded through the fused step closures. The
    closures themselves are compiled once per installed compilation (they
    capture the machine, the [Lir.func] and all operands as immediates);
    everything that is fresh per {!run} call — the register files and the
    control state — travels in this record. *)
type tenv = {
  mutable te_host : host;
  mutable te_regs : Value.t array;
  mutable te_fregs : float array;
  mutable te_ready : int array;
  mutable te_fready : int array;
  mutable te_pc : int;  (** always a block leader between steps *)
  mutable te_running : bool;
  mutable te_res : Value.t;
}

type tstep = tenv -> unit

type tblock = {
  tb_steps : tstep array;
      (** fused straight-line steps, terminator (or a synthetic
          fall-through pc update) last *)
  tb_sum : Template.summary;
      (** en-bloc counter summary, applied once per block entry when
          measuring *)
}

type template = {
  tp_pf : Predecode.func;  (** identity guard, like the pre-decode cache *)
  tp_blocks : tblock array;
  tp_block_of_pc : int array;
}

type t = {
  cfg : Config.t;
  heap : Heap.t;
  cc : Tce_core.Class_cache.t;
  cl : Tce_core.Class_list.t;
  oracle : Tce_core.Oracle.t;
  counters : Counters.t;
  l1d : Cache.t;
  l1i : Cache.t;
  l2 : Cache.t;
  dtlb : Tlb.t;
  itlb : Tlb.t;
  bp : Branch.t;
  mechanism : bool;  (** Class Cache mechanism on/off *)
  (* timing state *)
  mutable cycle : int;  (** current dispatch cycle *)
  mutable clock_base_instrs : int;
      (** baseline-tier instructions executed since creation — always
          counted (unlike [counters.baseline_instrs], which is gated on
          [measuring]) so the engine's observability/backoff clock is
          independent of the measurement protocol *)
  mutable slots : int;  (** instructions dispatched in this cycle *)
  mutable load_slots : int;  (** loads dispatched this cycle (1 load port) *)
  mutable store_slots : int;  (** stores dispatched this cycle (1 store port) *)
  (* completion times of in-flight instructions: a ring buffer (the run
     loop pushes ≤ 1 entry per dispatched instruction, so the capacity
     [window_size + 1] rounded to a power of two never overflows) *)
  win_buf : int array;
  win_mask : int;
  mutable win_head : int;
  mutable win_len : int;
  (* completion times of in-flight stores (same ring representation) *)
  stq_buf : int array;
  stq_mask : int;
  mutable stq_head : int;
  mutable stq_len : int;
  mutable last_iline : int;  (** last instruction-cache line fetched *)
  fills : Tce_support.Int_table.t;
      (** in-flight line fills: line -> cycle the data arrives (MSHR
          merging: a second access to a line being filled waits for the
          fill instead of seeing an instant hit); 0 = no fill recorded
          (completion cycles are always >= 1) *)
  pre_cache : (int, Predecode.func) Hashtbl.t;
      (** decoded streams keyed by [opt_id] (fresh per compilation; the
          physical-equality guard in {!install} covers id reuse) *)
  mutable measuring : bool;
  trace : Tce_obs.Trace.t;
      (** observability sink (deopt / OSR events; never affects timing) *)
  fault : Tce_fault.Injector.t;
      (** fault injector ({!Tce_fault.Injector.null} = disarmed): OSR-fail
          injection and the retire-path re-validation of special stores *)
  attr : Tce_attr.Ledger.t;
      (** attribution ledger ({!Tce_attr.Ledger.null} = disabled): records
          each deopt's typed reason; never affects timing *)
  prof : Profile.t;
      (** cycle-attribution profiler ({!Tce_prof.Profile.null} = disabled):
          every site that advances [cycle] reports the delta; reads the
          clock, never writes timing state *)
  (* special registers (paper §4.2.1.2) *)
  mutable reg_classid : int;
  reg_classid_arr : int array;
  templates : bool;
      (** fuse pre-decoded streams into superinstruction templates
          (bit-identical to the per-instruction loop; a pure speedup) *)
  tpl_cache : (int, Predecode.func * template option) Hashtbl.t;
      (** compiled templates keyed like {!pre_cache}, with the decoded
          stream kept for the physical-equality guard; [None] = the stream
          was rejected by {!Template.layout} (stay on the slow loop) *)
  mutable env_pool : tenv list;
      (** free list of per-run environments; reusing the register files
          avoids four [Array.make]s per guest call (registers are
          immediate [Value.t]s, so recycling is GC-transparent) *)
}

(* Int-specialized max: [Stdlib.max] is polymorphic and compiles to a
   generic-compare C call — measurably hot at 2-5 uses per simulated
   instruction (dependency-stall arithmetic in both executors). *)
let[@inline] imax (a : int) (b : int) = if a >= b then a else b

let ring_capacity n =
  let rec go c = if c > n then c else go (c * 2) in
  go 16

let create ?(cfg = Config.default) ?(mechanism = true)
    ?(trace = Tce_obs.Trace.null) ?(fault = Tce_fault.Injector.null)
    ?(attr = Tce_attr.Ledger.null) ?(prof = Profile.null) ?(templates = true)
    ~heap ~cc ~cl ~oracle ~counters () =
  let win_cap = ring_capacity cfg.Config.window_size in
  let stq_cap = ring_capacity cfg.Config.outstanding_ldst in
  {
    cfg;
    heap;
    cc;
    cl;
    oracle;
    counters;
    l1d = Cache.create ~size_kb:cfg.dl1_kb ~ways:cfg.dl1_ways ~line_bytes:64;
    l1i = Cache.create ~size_kb:cfg.il1_kb ~ways:cfg.il1_ways ~line_bytes:64;
    l2 = Cache.create ~size_kb:cfg.l2_kb ~ways:cfg.l2_ways ~line_bytes:64;
    dtlb = Tlb.create ~entries:cfg.dtlb_entries;
    itlb = Tlb.create ~entries:cfg.itlb_entries;
    bp = Branch.create ();
    mechanism;
    cycle = 0;
    clock_base_instrs = 0;
    slots = 0;
    load_slots = 0;
    store_slots = 0;
    win_buf = Array.make win_cap 0;
    win_mask = win_cap - 1;
    win_head = 0;
    win_len = 0;
    stq_buf = Array.make stq_cap 0;
    stq_mask = stq_cap - 1;
    stq_head = 0;
    stq_len = 0;
    last_iline = -1;
    fills = Tce_support.Int_table.create ~size:4096 ();
    pre_cache = Hashtbl.create 64;
    measuring = true;
    trace;
    fault;
    attr;
    prof;
    reg_classid = 0;
    reg_classid_arr = Array.make 4 0;
    templates;
    tpl_cache = Hashtbl.create 64;
    env_pool = [];
  }

(** {2 Pre-decode cache} *)

(** Decoded stream for [f], decoding at most once per compilation. Keyed by
    [opt_id] — fresh per compile — with a physical-equality guard so a
    rebuilt [Lir.func] under a reused id (unit tests) is re-decoded. *)
let install t (f : Lir.func) =
  match Hashtbl.find_opt t.pre_cache f.Lir.opt_id with
  | Some pf when pf.Predecode.lf == f -> pf
  | _ ->
    let pf = Predecode.decode f in
    Hashtbl.replace t.pre_cache f.Lir.opt_id pf;
    pf

(* --- timing primitives --- *)

(* dispatch-port kinds, matching Predecode.kind_* *)
let kind_load = Predecode.kind_load
let kind_store = Predecode.kind_store

let advance t =
  t.cycle <- t.cycle + 1;
  t.slots <- 0;
  t.load_slots <- 0;
  t.store_slots <- 0

(** Dispatch one instruction; returns its dispatch cycle. Loads and stores
    additionally contend for their single AGU/port (Nehalem: one load port,
    one store port), so memory-heavy code is port-bound — which is what
    makes removing Check Map loads profitable. *)
let dispatch_k t kind =
  if t.slots >= t.cfg.issue_width then advance t;
  if kind = kind_load then while t.load_slots >= 1 do advance t done
  else if kind = kind_store then while t.store_slots >= 1 do advance t done;
  if Profile.on t.prof then Profile.take t.prof Profile.cost_dispatch t.cycle;
  if t.win_len >= t.cfg.window_size then begin
    (* window full: retire the oldest in-flight instruction *)
    let c = Array.unsafe_get t.win_buf t.win_head in
    t.win_head <- (t.win_head + 1) land t.win_mask;
    t.win_len <- t.win_len - 1;
    if c > t.cycle then begin
      t.cycle <- c;
      t.slots <- 0;
      t.load_slots <- 0;
      t.store_slots <- 0
    end
  end;
  if Profile.on t.prof then Profile.take t.prof Profile.cost_window t.cycle;
  t.slots <- t.slots + 1;
  if kind = kind_load then t.load_slots <- t.load_slots + 1
  else if kind = kind_store then t.store_slots <- t.store_slots + 1;
  t.cycle

let complete t c =
  Array.unsafe_set t.win_buf ((t.win_head + t.win_len) land t.win_mask) c;
  t.win_len <- t.win_len + 1

(** Completion time of a data access to [addr] issued at [start], through
    DTLB + D-cache hierarchy, with MSHR merging of accesses to lines whose
    fill is still in flight. *)
let daccess t ~start addr =
  let tlb_hit = Tlb.access t.dtlb addr in
  let line = addr lsr 6 in
  let hit_l1 = Cache.access t.l1d addr in
  let lat =
    if hit_l1 then t.cfg.l1_load_latency
    else if Cache.access t.l2 addr then t.cfg.l1_load_latency + t.cfg.l2_latency
    else t.cfg.l1_load_latency + t.cfg.l2_latency + t.cfg.mem_latency
  in
  let lat = if tlb_hit then lat else lat + t.cfg.tlb_miss_penalty in
  if hit_l1 then begin
    let ready = Tce_support.Int_table.find t.fills line 0 in
    if ready > start then
      (* the line is still being filled: wait for it *)
      ready + t.cfg.l1_load_latency
    else start + lat
  end
  else begin
    let done_at = start + lat in
    Tce_support.Int_table.set t.fills line done_at;
    done_at
  end

(** Instruction fetch, slow path: called only when crossing into a new
    I-cache line (the line compare is inlined at the call sites). *)
let ifetch_slow t line =
  t.last_iline <- line;
  let addr = line lsl 6 in
  let tlb_hit = Tlb.access t.itlb addr in
  let hit = Cache.access t.l1i addr in
  if not hit then begin
    (* front-end bubble *)
    let pen =
      if Cache.access t.l2 addr then t.cfg.l2_latency
      else t.cfg.l2_latency + t.cfg.mem_latency
    in
    t.cycle <- t.cycle + pen;
    t.slots <- 0;
    t.load_slots <- 0;
    t.store_slots <- 0
  end;
  if not tlb_hit then begin
    t.cycle <- t.cycle + t.cfg.tlb_miss_penalty;
    t.slots <- 0;
    t.load_slots <- 0;
    t.store_slots <- 0
  end;
  if Profile.on t.prof then Profile.take t.prof Profile.cost_icache t.cycle

let cat_check_idx = Categories.index Categories.C_check

(** Count one dispatched instruction from its packed {!Predecode} meta. *)
let count_meta t m =
  if t.measuring then begin
    let c = t.counters in
    let ci = m land Predecode.meta_cat_mask in
    c.Counters.by_cat.(ci) <- c.Counters.by_cat.(ci) + 1;
    if ci = cat_check_idx then begin
      let slot = (m lsr Predecode.meta_check_shift) land 7 in
      c.by_check_kind.(slot) <- c.by_check_kind.(slot) + 1
    end;
    if m land Predecode.meta_guards_bit <> 0 then
      c.guards_obj_load <- c.guards_obj_load + 1;
    match (m lsr Predecode.meta_class_shift) land 7 with
    | 1 -> c.opt_loads <- c.opt_loads + 1
    | 2 -> c.opt_stores <- c.opt_stores + 1
    | 3 -> c.opt_branches <- c.opt_branches + 1
    | 4 -> c.opt_fp <- c.opt_fp + 1
    | _ -> ()
  end

(** Charge a runtime-stub cost: serializes the pipeline. The cost is
    attributed to category index [cat_idx] (e.g. boxing stubs count as
    Tags/Untags); the profiler books it under [pcost] (this take also
    absorbs the caller's argument-readiness serialization, which advances
    the clock just before charging). *)
let charge_rt_i t ~pcost ~cat_idx ~instrs ~cycles =
  if t.measuring then
    t.counters.Counters.by_cat.(cat_idx) <-
      t.counters.Counters.by_cat.(cat_idx) + instrs;
  t.cycle <- t.cycle + cycles;
  t.slots <- 0;
  t.load_slots <- 0;
  t.store_slots <- 0;
  if Profile.on t.prof then Profile.take t.prof pcost t.cycle

let cat_other_idx = Categories.index Categories.C_other

(** Model a fresh allocation as nursery-resident: the lines are inserted
    into the D-caches without cost. (V8's new space is recycled by the
    scavenger and stays cache-resident in steady state; our bump allocator
    would otherwise make every allocation a cold DRAM miss.) *)
let prefill t ~addr ~bytes =
  let first = addr lsr 6 and last = (addr + bytes - 1) lsr 6 in
  for line = first to last do
    Cache.insert t.l1d (line lsl 6);
    Cache.insert t.l2 (line lsl 6)
  done

exception Cc_exception of cc_exn_info

(* --- the executor --- *)

let alu_apply (a : Lir.alu) x y =
  match a with
  | Lir.Add -> x + y
  | Sub -> x - y
  | Mul -> x * y
  | Div -> if y = 0 then 0 else x / y
  | Rem -> if y = 0 then 0 else Stdlib.( mod ) x y
  | And -> x land y
  | Or -> x lor y
  | Xor -> x lxor y
  | Shl -> x lsl (y land 31)
  | Shr -> (x land 0xffff_ffff) lsr (y land 31)  (* JS >>> on uint32 *)
  | Sar -> x asr (y land 31)

let cond_apply (c : Lir.cond) x y =
  match c with
  | Lir.Eq -> x = y
  | Ne -> x <> y
  | Lt -> x < y
  | Le -> x <= y
  | Gt -> x > y
  | Ge -> x >= y
  | Bit_set -> x land y <> 0
  | Bit_clear -> x land y = 0

let fcond_apply (c : Lir.fcond) (x : float) (y : float) =
  match c with
  | Lir.FEq -> x = y
  | FNe -> x <> y
  | FLt -> x < y
  | FLe -> x <= y
  | FGt -> x > y
  | FGe -> x >= y
  (* negated forms: true on NaN (unordered) *)
  | FNlt -> not (x < y)
  | FNle -> not (x <= y)
  | FNgt -> not (x > y)
  | FNge -> not (x >= y)

let flat_lat = 3 (* FP add/sub/cvt latency *)
let fsqrt_lat = 25

(** Reconstruct the interpreter frame for a deopt of [f] and resume. *)
let do_deopt t host (f : Lir.func) regs fregs deopt_id ~result =
  let info = f.Lir.deopts.(deopt_id) in
  if Tce_obs.Trace.on t.trace then
    Tce_obs.Trace.emit t.trace
      (Tce_obs.Trace.Deopt
         {
           reason = Tce_attr.Reason.to_string info.Lir.reason;
           func = f.Lir.name;
           pc = info.Lir.bc_pc;
           classid = info.Lir.reason.Tce_attr.Reason.classid;
         });
  Tce_attr.Ledger.record_deopt t.attr ~fn:f.Lir.name ~reason:info.Lir.reason;
  host.on_deopt f.Lir.opt_id;
  t.clock_base_instrs <- t.clock_base_instrs + Costs.deopt_transition_instrs;
  if t.measuring then begin
    t.counters.deopts <- t.counters.deopts + 1;
    t.counters.baseline_instrs <-
      t.counters.baseline_instrs + Costs.deopt_transition_instrs;
    if Profile.on t.prof then
      Profile.base_extra t.prof Profile.extra_deopt_transition
        Costs.deopt_transition_instrs
  end;
  t.cycle <- t.cycle + t.cfg.deopt_penalty;
  (* Fault: the OSR transition itself fails once and is retried via the
     slow path — semantics preserved by construction, one extra frame
     reconstruction's worth of cost (timing-only, gracefully degraded). *)
  if
    Tce_fault.Injector.armed t.fault
    && Tce_fault.Injector.fire t.fault Tce_fault.Point.Osr_fail
  then begin
    t.clock_base_instrs <- t.clock_base_instrs + Costs.deopt_transition_instrs;
    if t.measuring then begin
      t.counters.baseline_instrs <-
        t.counters.baseline_instrs + Costs.deopt_transition_instrs;
      if Profile.on t.prof then
        Profile.base_extra t.prof Profile.extra_deopt_transition
          Costs.deopt_transition_instrs
    end;
    t.cycle <- t.cycle + t.cfg.deopt_penalty
  end;
  if Profile.on t.prof then Profile.take t.prof Profile.cost_deopt t.cycle;
  t.slots <- 0;
  let n = Array.length f.Lir.reprs in
  let vals =
    Array.init n (fun i ->
        match f.Lir.reprs.(i) with
        | Lir.R_tagged -> regs.(i)
        | Lir.R_double -> Heap.number t.heap fregs.(i))
  in
  let result =
    match result with
    | Some v -> Some ((match info.Lir.result_into with Some r -> r | None -> -1), v)
    | None -> None
  in
  host.resume ~opt_id:f.Lir.opt_id ~bc_pc:info.Lir.bc_pc ~regs:vals ~result

let do_store t d ~addr ~start ~word =
  (* store-buffer pressure: block when [outstanding_ldst] stores in flight *)
  if t.stq_len >= t.cfg.outstanding_ldst then begin
    let c = Array.unsafe_get t.stq_buf t.stq_head in
    t.stq_head <- (t.stq_head + 1) land t.stq_mask;
    t.stq_len <- t.stq_len - 1;
    if c > t.cycle then begin
      t.cycle <- c;
      t.slots <- 0
    end
  end;
  if Profile.on t.prof then Profile.take t.prof Profile.cost_storeq t.cycle;
  Mem.store t.heap.Heap.mem addr word;
  let done_at = daccess t ~start:(imax d start) addr in
  Array.unsafe_set t.stq_buf ((t.stq_head + t.stq_len) land t.stq_mask) done_at;
  t.stq_len <- t.stq_len + 1;
  complete t (imax d start + 1)

let falu t d fregs fready fd fa fb op lat =
  let start = imax d (imax fready.(fa) fready.(fb)) in
  fregs.(fd) <- Fbits.canon (op fregs.(fa) fregs.(fb));
  fready.(fd) <- start + lat;
  complete t fready.(fd)

let branch_resolve t ~opt_id ~pc ~start ~taken =
  let completion = start + 1 in
  complete t completion;
  let correct = Branch.record t.bp ~fn:opt_id ~pc ~taken in
  if not correct then begin
    let restart = completion + t.cfg.branch_mispredict_penalty in
    if restart > t.cycle then begin
      t.cycle <- restart;
      t.slots <- 0
    end
  end;
  if Profile.on t.prof then Profile.take t.prof Profile.cost_branch t.cycle

let cc_request_tagged t ~classid ~line ~pos ~stored =
  (* With the mechanism on, regObjectClassId was set by the preceding
     movClassID. With it off, these opcodes are plain stores and only feed
     the measurement oracle — the ClassID is then computed functionally. *)
  let value_classid =
    if t.mechanism then t.reg_classid else Heap.classid_of t.heap stored
  in
  Tce_core.Oracle.record t.oracle ~classid ~line ~pos ~value_classid;
  (* Untracked positions never reach the Class Cache: with a reduced Class
     List geometry the compiler never emits ProfileStore for them, but a
     stale optimized body may still execute one after a geometry change in
     tests — treat it as a plain store. *)
  if t.mechanism && Tce_core.Class_list.is_tracked t.cl ~pos then begin
    let r =
      Tce_core.Class_cache.access t.cc t.cl ~classid ~line ~pos ~value_classid
    in
    if not r.hit then begin
      let addr = Tce_core.Class_list.entry_addr t.cl ~classid ~line in
      let fin = daccess t ~start:t.cycle addr in
      t.cycle <- fin + t.cfg.class_cache_miss_penalty - t.cfg.l1_load_latency;
      t.slots <- 0;
      if Profile.on t.prof then
        Profile.take t.prof Profile.cost_ccmiss t.cycle
    end;
    if r.exn_raised then
      raise
        (Cc_exception
           {
             cc_classid = classid;
             cc_line = line;
             cc_pos = pos;
             cc_value_classid = value_classid;
             cc_victims = r.functions_to_deopt;
           })
  end

(* --- profiler labels --- *)

(* index 0 = a C_check whose kind slot is unattributed *)
let check_labels =
  Array.append [| "check" |]
    (Array.of_list (List.map Categories.check_kind_name Categories.all_check_kinds))

(** Profile label for one pre-decoded instruction: check kinds get their
    paper-figure name, everything else its {!Categories} bucket. *)
let label_of_meta m =
  if m land Predecode.meta_pseudo_bit <> 0 then "profile-op"
  else begin
    let ci = m land Predecode.meta_cat_mask in
    if ci = cat_check_idx then begin
      let slot = (m lsr Predecode.meta_check_shift) land 7 in
      if slot < Array.length check_labels then check_labels.(slot) else "check"
    end
    else
      match Categories.of_index ci with
      | Categories.C_taguntag -> "tags-untags"
      | C_math -> "math"
      | C_ccop -> "cc-op"
      | C_check | C_other -> "other"
  end

(** The profile accumulator for [pf]: find-or-register keyed by
    (opt_id, stream length) — see {!Tce_prof.Profile.register_opt} for why
    the length is part of the key. *)
let prof_acc prof (pf : Predecode.func) =
  let f = pf.Predecode.lf in
  let pcs = Array.length pf.Predecode.meta in
  match Profile.find_opt_acc prof ~id:f.Lir.opt_id ~pcs with
  | Some a -> a
  | None ->
    Profile.register_opt prof ~id:f.Lir.opt_id ~name:f.Lir.name
      ~labels:(Array.map label_of_meta pf.Predecode.meta)

(** Per-instruction executor (the pre-decoded interpreter loop): the
    reference semantics. Used directly when profiling is enabled (per-pc
    attribution sites need a site change on every instruction), when a
    fault injector is armed, or when a stream cannot be fused; the
    templated executor below is bit-identical to this loop by
    construction (lib/machine/README.md, "Template fusion invariants"). *)
let run_slow t (host : host) (f : Lir.func) (pf : Predecode.func)
    (args : Value.t array) : Value.t =
  let prof = t.prof in
  let pon = Profile.on prof in
  let pacc = if pon then prof_acc prof pf else Profile.dummy_acc in
  let ops = pf.Predecode.ops and meta = pf.Predecode.meta in
  let regs = Array.make (imax f.Lir.n_regs 1) 0 in
  let fregs = Array.make (imax f.Lir.n_fregs 1) 0.0 in
  let ready = Array.make (imax f.Lir.n_regs 1) t.cycle in
  let fready = Array.make (imax f.Lir.n_fregs 1) t.cycle in
  let nargs = min (Array.length args) f.Lir.n_regs in
  Array.blit args 0 regs 0 nargs;
  (* absent parameters read as null *)
  for i = nargs to min (Array.length f.Lir.reprs) f.Lir.n_regs - 1 do
    regs.(i) <- t.heap.Heap.null_v
  done;
  let mem = t.heap.Heap.mem in
  let code_addr = f.Lir.code_addr in
  let opt_id = f.Lir.opt_id in
  let pc = ref 0 in
  let running = ref true in
  let resv = ref 0 in
  let finish v =
    resv := v;
    running := false
  in
  (* Retire-path invariant check (fault campaigns only): a special store
     that retires without raising re-validates this code's own speculation —
     the host's [is_invalidated] runs the engine's staleness check when an
     injector is armed, catching a dropped update or lost notification at
     the very store that broke the profile. Unfaulted, optimized code can
     never be invalidated on this path (exception delivery is synchronous),
     so the check is skipped and timing is untouched. *)
  let post_store_check deopt_id next =
    if Tce_fault.Injector.armed t.fault && host.is_invalidated opt_id
    then begin
      if Tce_obs.Trace.on t.trace then
        Tce_obs.Trace.emit t.trace
          (Tce_obs.Trace.Osr
             { func = f.Lir.name; pc = f.Lir.deopts.(deopt_id).Lir.bc_pc });
      finish (do_deopt t host f regs fregs deopt_id ~result:None)
    end
    else pc := next
  in
  let handle_cc_exception deopt_id info next =
    if t.measuring then
      t.counters.cc_exception_deopts <- t.counters.cc_exception_deopts + 1;
    host.on_cc_exception info;
    if host.is_invalidated opt_id then begin
      (* the running function speculated on the broken slot: OSR out now
         (the store has completed; state is consistent, paper §4.2.2) *)
      if Tce_obs.Trace.on t.trace then
        Tce_obs.Trace.emit t.trace
          (Tce_obs.Trace.Osr
             { func = f.Lir.name; pc = f.Lir.deopts.(deopt_id).Lir.bc_pc });
      finish (do_deopt t host f regs fregs deopt_id ~result:None)
    end
    else pc := next
  in
  (try
     while !running do
       let pc0 = !pc in
       let m = Array.unsafe_get meta pc0 in
       let op = Array.unsafe_get ops pc0 in
       let next = pc0 + 1 in
       if m land Predecode.meta_pseudo_bit <> 0 then begin
         (* measurement pseudo-ops: zero cost *)
         (match op with
         | Predecode.Pprofile (r, line, pos) ->
           if t.measuring then begin
             let classid = Heap.classid_of t.heap regs.(r) in
             Counters.record_obj_load t.counters ~classid ~line ~pos
           end
         | Pprofile_store_r (r, line, pos, vr) ->
           (* records the store in the monomorphism oracle (mechanism-off
              code has no CC request) *)
           let classid = Heap.classid_of t.heap regs.(r) in
           let value_classid = Heap.classid_of t.heap regs.(vr) in
           Tce_core.Oracle.record t.oracle ~classid ~line ~pos ~value_classid
         | Pprofile_store_c (r, line, pos, c) ->
           let classid = Heap.classid_of t.heap regs.(r) in
           Tce_core.Oracle.record t.oracle ~classid ~line ~pos ~value_classid:c
         | _ -> assert false);
         pc := next
       end
       else begin
         (* current attribution site: everything the clock does until the
            next site change books to (this function, this pc) *)
         if pon then Profile.set_site prof pacc pc0;
         let iline = (code_addr + (4 * pc0)) lsr 6 in
         if iline <> t.last_iline then ifetch_slow t iline;
         let d = dispatch_k t ((m lsr Predecode.meta_kind_shift) land 3) in
         count_meta t m;
         match op with
         | Predecode.Pprofile _ | Pprofile_store_r _ | Pprofile_store_c _ ->
           assert false
         | Pmov_imm (r, i) ->
           regs.(r) <- i;
           ready.(r) <- d + 1;
           complete t (d + 1);
           pc := next
         | Pmov (rd, rs) ->
           regs.(rd) <- regs.(rs);
           ready.(rd) <- imax d ready.(rs) + 1;
           complete t ready.(rd);
           pc := next
         | Palu_r (a, lat, rd, rs, ro) ->
           let start = imax d (imax ready.(rs) ready.(ro)) in
           regs.(rd) <- alu_apply a regs.(rs) regs.(ro);
           ready.(rd) <- start + lat;
           complete t ready.(rd);
           pc := next
         | Palu_i (a, lat, rd, rs, i) ->
           let start = imax d ready.(rs) in
           regs.(rd) <- alu_apply a regs.(rs) i;
           ready.(rd) <- start + lat;
           complete t ready.(rd);
           pc := next
         | Psh64_r (sc, rd, rs, ro) ->
           (* full-width shifts for tag arithmetic *)
           let start = imax d (imax ready.(rs) ready.(ro)) in
           let y = regs.(ro) land 63 in
           regs.(rd) <-
             (if sc = 0 then regs.(rs) lsl y
              else if sc = 1 then regs.(rs) lsr y
              else regs.(rs) asr y);
           ready.(rd) <- start + 1;
           complete t ready.(rd);
           pc := next
         | Psh64_i (sc, rd, rs, i) ->
           let start = imax d ready.(rs) in
           let y = i land 63 in
           regs.(rd) <-
             (if sc = 0 then regs.(rs) lsl y
              else if sc = 1 then regs.(rs) lsr y
              else regs.(rs) asr y);
           ready.(rd) <- start + 1;
           complete t ready.(rd);
           pc := next
         | Palu32_r (a, lat, rd, rs, ro) ->
           let start = imax d (imax ready.(rs) ready.(ro)) in
           regs.(rd) <- Value.to_int32 (alu_apply a regs.(rs) regs.(ro));
           ready.(rd) <- start + lat;
           complete t ready.(rd);
           pc := next
         | Palu32_i (a, lat, rd, rs, i) ->
           let start = imax d ready.(rs) in
           regs.(rd) <- Value.to_int32 (alu_apply a regs.(rs) i);
           ready.(rd) <- start + lat;
           complete t ready.(rd);
           pc := next
         | Paluov_r (a, lat, rd, rs, ro, target) ->
           let start = imax d (imax ready.(rs) ready.(ro)) in
           let v = alu_apply a regs.(rs) regs.(ro) in
           ready.(rd) <- start + lat;
           complete t ready.(rd);
           (* tagged-SMI overflow: payload must fit int32 *)
           if Value.smi_fits (v asr 1) then begin
             regs.(rd) <- v;
             pc := next
           end
           else pc := target
         | Paluov_i (a, lat, rd, rs, i, target) ->
           let start = imax d ready.(rs) in
           let v = alu_apply a regs.(rs) i in
           ready.(rd) <- start + lat;
           complete t ready.(rd);
           if Value.smi_fits (v asr 1) then begin
             regs.(rd) <- v;
             pc := next
           end
           else pc := target
         | Pload (rd, rb, off) ->
           let addr = regs.(rb) + off in
           let start = imax d ready.(rb) in
           regs.(rd) <- Mem.load mem addr;
           ready.(rd) <- daccess t ~start addr;
           complete t ready.(rd);
           pc := next
         | Pchecked_load (rd, rb, off, expected, deopt_id) ->
           (* the class word arrives with the same cache line: the check is
              free in hardware but still *executes* (no removal) *)
           let base = regs.(rb) in
           let addr = base + off in
           let start = imax d ready.(rb) in
           let line_base = Tce_vm.Layout.line_base_of_addr addr in
           let w = Mem.load mem line_base in
           if Value.is_smi base || w <> expected then
             finish (do_deopt t host f regs fregs deopt_id ~result:None)
           else begin
             regs.(rd) <- Mem.load mem addr;
             ready.(rd) <- daccess t ~start addr;
             complete t ready.(rd);
             pc := next
           end
         | Pload_idx (rd, rb, ri, off) ->
           let addr = regs.(rb) + (regs.(ri) * 8) + off in
           let start = imax d (imax ready.(rb) ready.(ri)) in
           regs.(rd) <- Mem.load mem addr;
           ready.(rd) <- daccess t ~start addr;
           complete t ready.(rd);
           pc := next
         | Pfload (fd, rb, off) ->
           let addr = regs.(rb) + off in
           let start = imax d ready.(rb) in
           fregs.(fd) <- Fbits.to_float (Mem.load mem addr);
           fready.(fd) <- daccess t ~start addr;
           complete t fready.(fd);
           pc := next
         | Pfload_idx (fd, rb, ri, off) ->
           let addr = regs.(rb) + (regs.(ri) * 8) + off in
           let start = imax d (imax ready.(rb) ready.(ri)) in
           fregs.(fd) <- Fbits.to_float (Mem.load mem addr);
           fready.(fd) <- daccess t ~start addr;
           complete t fready.(fd);
           pc := next
         | Pstore_r (rb, off, vr) ->
           do_store t d ~addr:(regs.(rb) + off)
             ~start:(imax ready.(vr) ready.(rb))
             ~word:regs.(vr);
           pc := next
         | Pstore_i (rb, off, i) ->
           do_store t d ~addr:(regs.(rb) + off) ~start:ready.(rb) ~word:i;
           pc := next
         | Pstore_idx_r (rb, ri, off, vr) ->
           do_store t d
             ~addr:(regs.(rb) + (regs.(ri) * 8) + off)
             ~start:(imax ready.(vr) (imax ready.(rb) ready.(ri)))
             ~word:regs.(vr);
           pc := next
         | Pstore_idx_i (rb, ri, off, i) ->
           do_store t d
             ~addr:(regs.(rb) + (regs.(ri) * 8) + off)
             ~start:(imax ready.(rb) ready.(ri))
             ~word:i;
           pc := next
         | Pfstore (rb, off, fv) ->
           do_store t d ~addr:(regs.(rb) + off)
             ~start:(imax fready.(fv) ready.(rb))
             ~word:(Fbits.of_float fregs.(fv));
           pc := next
         | Pfstore_idx (rb, ri, off, fv) ->
           do_store t d
             ~addr:(regs.(rb) + (regs.(ri) * 8) + off)
             ~start:(imax fready.(fv) (imax ready.(rb) ready.(ri)))
             ~word:(Fbits.of_float fregs.(fv));
           pc := next
         | Pfmov (fd, fs) ->
           fregs.(fd) <- fregs.(fs);
           fready.(fd) <- imax d fready.(fs) + 1;
           complete t fready.(fd);
           pc := next
         | Pfmov_imm (fd, x) ->
           (* pre-canonicalized at decode time *)
           fregs.(fd) <- x;
           fready.(fd) <- d + 1;
           complete t fready.(fd);
           pc := next
         | Pfadd (fd, fa, fb) ->
           falu t d fregs fready fd fa fb ( +. ) 3;
           pc := next
         | Pfsub (fd, fa, fb) ->
           falu t d fregs fready fd fa fb ( -. ) 3;
           pc := next
         | Pfmul (fd, fa, fb) ->
           falu t d fregs fready fd fa fb ( *. ) 5;
           pc := next
         | Pfdiv (fd, fa, fb) ->
           falu t d fregs fready fd fa fb ( /. ) 20;
           pc := next
         | Pfsqrt (fd, fs) ->
           fregs.(fd) <- Fbits.canon (sqrt fregs.(fs));
           fready.(fd) <- imax d fready.(fs) + fsqrt_lat;
           complete t fready.(fd);
           pc := next
         | Pfneg (fd, fs) ->
           fregs.(fd) <- -.fregs.(fs);
           fready.(fd) <- imax d fready.(fs) + 1;
           complete t fready.(fd);
           pc := next
         | Pfabs (fd, fs) ->
           fregs.(fd) <- Float.abs fregs.(fs);
           fready.(fd) <- imax d fready.(fs) + 1;
           complete t fready.(fd);
           pc := next
         | Pcvtif (fd, rs) ->
           fregs.(fd) <- float_of_int regs.(rs);
           fready.(fd) <- imax d ready.(rs) + flat_lat;
           complete t fready.(fd);
           pc := next
         | Ptruncfi (rd, fs) ->
           regs.(rd) <- Value.js_to_int32_float fregs.(fs);
           ready.(rd) <- imax d fready.(fs) + flat_lat;
           complete t ready.(rd);
           pc := next
         | Pbranch_r (c, r, ro, target) ->
           let start = imax d (imax ready.(r) ready.(ro)) in
           let taken = cond_apply c regs.(r) regs.(ro) in
           branch_resolve t ~opt_id ~pc:pc0 ~start ~taken;
           pc := (if taken then target else next)
         | Pbranch_i (c, r, i, target) ->
           let start = imax d ready.(r) in
           let taken = cond_apply c regs.(r) i in
           branch_resolve t ~opt_id ~pc:pc0 ~start ~taken;
           pc := (if taken then target else next)
         | Pfbranch (c, fa, fb, target) ->
           let start = imax d (imax fready.(fa) fready.(fb)) in
           let taken = fcond_apply c fregs.(fa) fregs.(fb) in
           branch_resolve t ~opt_id ~pc:pc0 ~start ~taken;
           pc := (if taken then target else next)
         | Pjmp target ->
           complete t (d + 1);
           pc := target
         | Pcall_fn (callee, argr, rd, deopt_id, cinstrs) ->
           (* serialize on argument readiness *)
           Array.iter (fun r -> if ready.(r) > t.cycle then t.cycle <- ready.(r)) argr;
           t.slots <- 0;
           charge_rt_i t ~pcost:Profile.cost_call ~cat_idx:cat_other_idx
             ~instrs:cinstrs ~cycles:8;
           let argv = Array.map (fun r -> regs.(r)) argr in
           let v = host.call_fn callee argv in
           (* the callee (a nested run) moved the attribution site; any
              cycles this frame still books (deopt below, next dispatch)
              belong to this call site again *)
           if pon then Profile.set_site prof pacc pc0;
           if host.is_invalidated opt_id then begin
             (* on-stack replacement: this frame's code died during the call *)
             if Tce_obs.Trace.on t.trace then
               Tce_obs.Trace.emit t.trace
                 (Tce_obs.Trace.Osr
                    { func = f.Lir.name; pc = f.Lir.deopts.(deopt_id).Lir.bc_pc });
             finish (do_deopt t host f regs fregs deopt_id ~result:(Some v))
           end
           else begin
             regs.(rd) <- v;
             ready.(rd) <- t.cycle + 1;
             pc := next
           end
         | Pcall_rt_chk (rt, argr, rd, deopt_id, cinstrs, ccycles) ->
           Array.iter (fun r -> if ready.(r) > t.cycle then t.cycle <- ready.(r)) argr;
           charge_rt_i t ~pcost:Profile.cost_rt
             ~cat_idx:(m land Predecode.meta_cat_mask) ~instrs:cinstrs
             ~cycles:ccycles;
           let argv = Array.map (fun r -> regs.(r)) argr in
           let v, _ = host.rt_call rt argv [||] in
           if rd >= 0 then begin
             regs.(rd) <- v;
             ready.(rd) <- t.cycle + 1
           end;
           if host.is_invalidated opt_id then begin
             (* the stub's store retired a profile this code speculates on *)
             if Tce_obs.Trace.on t.trace then
               Tce_obs.Trace.emit t.trace
                 (Tce_obs.Trace.Osr
                    { func = f.Lir.name; pc = f.Lir.deopts.(deopt_id).Lir.bc_pc });
             finish
               (do_deopt t host f regs fregs deopt_id
                  ~result:(if rd >= 0 then Some v else None))
           end
           else pc := next
         | Pcall_rt (rt, argr, fargr, rd, fd, cinstrs, ccycles) ->
           Array.iter (fun r -> if ready.(r) > t.cycle then t.cycle <- ready.(r)) argr;
           Array.iter (fun r -> if fready.(r) > t.cycle then t.cycle <- fready.(r)) fargr;
           charge_rt_i t ~pcost:Profile.cost_rt
             ~cat_idx:(m land Predecode.meta_cat_mask) ~instrs:cinstrs
             ~cycles:ccycles;
           let argv = Array.map (fun r -> regs.(r)) argr in
           let fargv = Array.map (fun r -> fregs.(r)) fargr in
           let v, fv = host.rt_call rt argv fargv in
           if rd >= 0 then begin
             regs.(rd) <- v;
             ready.(rd) <- t.cycle + 1
           end;
           if fd >= 0 then begin
             fregs.(fd) <- fv;
             fready.(fd) <- t.cycle + 1
           end;
           pc := next
         | Pret r ->
           complete t (d + 1);
           finish regs.(r)
         | Pdeopt deopt_id ->
           finish (do_deopt t host f regs fregs deopt_id ~result:None)
         | Pmov_classid r ->
           let v = regs.(r) in
           if Value.is_smi v then begin
             t.reg_classid <- Tce_vm.Layout.smi_classid;
             complete t (d + 1)
           end
           else begin
             let addr = Value.ptr_addr v in
             t.reg_classid <- Heap.classid_of t.heap v;
             complete t (daccess t ~start:(imax d ready.(r)) addr)
           end;
           pc := next
         | Pmov_classid_arr (k, r) ->
           let v = regs.(r) in
           if Value.is_smi v then begin
             (* hoisted loads may execute speculatively with a non-object
                value (loop body never entered); behave like movClassID *)
             t.reg_classid_arr.(k) <- Tce_vm.Layout.smi_classid;
             complete t (d + 1)
           end
           else begin
             let addr = Value.ptr_addr v in
             t.reg_classid_arr.(k) <- Heap.classid_of t.heap v;
             complete t (daccess t ~start:(imax d ready.(r)) addr)
           end;
           pc := next
         | Pstore_cc_r (rb, off, vr, deopt_id) -> (
           let addr = regs.(rb) + off in
           do_store t d ~addr ~start:(imax ready.(vr) ready.(rb))
             ~word:regs.(vr);
           (* the memory unit recovers (ClassID, Line, slot) from the line *)
           let line_base = Tce_vm.Layout.line_base_of_addr addr in
           let w = Mem.load mem line_base in
           let classid = Tce_vm.Layout.classid_of_class_word w in
           let line = Tce_vm.Layout.line_of_class_word w in
           let pos = Tce_vm.Layout.slot_pos_of_addr addr in
           try
             cc_request_tagged t ~classid ~line ~pos ~stored:regs.(vr);
             post_store_check deopt_id next
           with Cc_exception fns -> handle_cc_exception deopt_id fns next)
         | Pstore_cc_i (rb, off, i, deopt_id) -> (
           let addr = regs.(rb) + off in
           do_store t d ~addr ~start:ready.(rb) ~word:i;
           let line_base = Tce_vm.Layout.line_base_of_addr addr in
           let w = Mem.load mem line_base in
           let classid = Tce_vm.Layout.classid_of_class_word w in
           let line = Tce_vm.Layout.line_of_class_word w in
           let pos = Tce_vm.Layout.slot_pos_of_addr addr in
           try
             cc_request_tagged t ~classid ~line ~pos ~stored:i;
             post_store_check deopt_id next
           with Cc_exception fns -> handle_cc_exception deopt_id fns next)
         | Pstore_cca_r (k, rb, ri, off, vr, deopt_id) -> (
           let addr = regs.(rb) + (regs.(ri) * 8) + off in
           do_store t d ~addr
             ~start:(imax ready.(vr) (imax ready.(rb) ready.(ri)))
             ~word:regs.(vr);
           let classid = t.reg_classid_arr.(k) in
           try
             cc_request_tagged t ~classid ~line:0
               ~pos:Tce_vm.Layout.elements_ptr_slot ~stored:regs.(vr);
             post_store_check deopt_id next
           with Cc_exception fns -> handle_cc_exception deopt_id fns next)
         | Pstore_cca_i (k, rb, ri, off, i, deopt_id) -> (
           let addr = regs.(rb) + (regs.(ri) * 8) + off in
           do_store t d ~addr ~start:(imax ready.(rb) ready.(ri)) ~word:i;
           let classid = t.reg_classid_arr.(k) in
           try
             cc_request_tagged t ~classid ~line:0
               ~pos:Tce_vm.Layout.elements_ptr_slot ~stored:i;
             post_store_check deopt_id next
           with Cc_exception fns -> handle_cc_exception deopt_id fns next)
       end
     done
   with Cc_exception _ -> assert false);
  !resv

(* --- superinstruction templates: fused-closure compilation --- *)

(* Unprofiled dispatch variants: templates only run with the profiler off,
   so [Profile.take] in [dispatch_k] is statically known to be a no-op —
   each variant is [dispatch_k] specialized to one port kind with the dead
   profiler tests removed (same state transitions in the same order). *)

(* From here down — the templated executor only — array indexing compiles
   to unchecked accesses: every register operand was validated against its
   register file at layout time ({!Template.regs_in_range}), every control
   target at layout time too, so the [a.(i)] bounds checks can never fire.
   The per-instruction loop above keeps the checked accesses (it is the
   fallback for streams that fail validation). *)
module Array = struct
  include Stdlib.Array

  (* re-declared as externals (not [let get = unsafe_get]) so the accesses
     stay compiler intrinsics instead of becoming out-of-line calls *)
  external get : 'a array -> int -> 'a = "%array_unsafe_get"
  external set : 'a array -> int -> 'a -> unit = "%array_unsafe_set"
end

let tpl_win_retire t =
  if t.win_len >= t.cfg.window_size then begin
    let c = Array.unsafe_get t.win_buf t.win_head in
    t.win_head <- (t.win_head + 1) land t.win_mask;
    t.win_len <- t.win_len - 1;
    if c > t.cycle then begin
      t.cycle <- c;
      t.slots <- 0;
      t.load_slots <- 0;
      t.store_slots <- 0
    end
  end

let tpl_dispatch_k t kind =
  if t.slots >= t.cfg.issue_width then advance t;
  if kind = kind_load then while t.load_slots >= 1 do advance t done
  else if kind = kind_store then while t.store_slots >= 1 do advance t done;
  tpl_win_retire t;
  t.slots <- t.slots + 1;
  if kind = kind_load then t.load_slots <- t.load_slots + 1
  else if kind = kind_store then t.store_slots <- t.store_slots + 1;
  t.cycle

(* Operator specialization: resolve the ALU/condition once at template
   compile time instead of re-matching per executed instruction. *)

let alu_fn (a : Lir.alu) : int -> int -> int =
  match a with
  | Lir.Add -> ( + )
  | Sub -> ( - )
  | Mul -> ( * )
  | Div -> fun x y -> if y = 0 then 0 else x / y
  | Rem -> fun x y -> if y = 0 then 0 else Stdlib.( mod ) x y
  | And -> ( land )
  | Or -> ( lor )
  | Xor -> ( lxor )
  | Shl -> fun x y -> x lsl (y land 31)
  | Shr -> fun x y -> (x land 0xffff_ffff) lsr (y land 31)
  | Sar -> fun x y -> x asr (y land 31)

let cond_fn (c : Lir.cond) : int -> int -> bool =
  match c with
  | Lir.Eq -> fun x y -> x = y
  | Ne -> fun x y -> x <> y
  | Lt -> fun x y -> x < y
  | Le -> fun x y -> x <= y
  | Gt -> fun x y -> x > y
  | Ge -> fun x y -> x >= y
  | Bit_set -> fun x y -> x land y <> 0
  | Bit_clear -> fun x y -> x land y = 0

let fcond_fn (c : Lir.fcond) : float -> float -> bool =
  match c with
  | Lir.FEq -> fun x y -> x = y
  | FNe -> fun x y -> x <> y
  | FLt -> fun x y -> x < y
  | FLe -> fun x y -> x <= y
  | FGt -> fun x y -> x > y
  | FGe -> fun x y -> x >= y
  | FNlt -> fun x y -> not (x < y)
  | FNle -> fun x y -> not (x <= y)
  | FNgt -> fun x y -> not (x > y)
  | FNge -> fun x y -> not (x >= y)

let sh64_fn sc : int -> int -> int =
  if sc = 0 then fun x y -> x lsl y
  else if sc = 1 then fun x y -> x lsr y
  else fun x y -> x asr y

(* Terminator epilogues shared by the deopt-capable step closures —
   closures over nothing, mirroring [post_store_check] /
   [handle_cc_exception] / the OSR arms of the slow loop. *)

let t_osr_trace t (f : Lir.func) deopt_id =
  if Tce_obs.Trace.on t.trace then
    Tce_obs.Trace.emit t.trace
      (Tce_obs.Trace.Osr
         { func = f.Lir.name; pc = f.Lir.deopts.(deopt_id).Lir.bc_pc })

let t_finish_deopt t env (f : Lir.func) deopt_id ~result =
  env.te_res <-
    do_deopt t env.te_host f env.te_regs env.te_fregs deopt_id ~result;
  env.te_running <- false

let t_post_store t env (f : Lir.func) deopt_id next =
  if
    Tce_fault.Injector.armed t.fault
    && env.te_host.is_invalidated f.Lir.opt_id
  then begin
    t_osr_trace t f deopt_id;
    t_finish_deopt t env f deopt_id ~result:None
  end
  else env.te_pc <- next

let t_handle_cc t env (f : Lir.func) deopt_id info next =
  if t.measuring then
    t.counters.cc_exception_deopts <- t.counters.cc_exception_deopts + 1;
  env.te_host.on_cc_exception info;
  if env.te_host.is_invalidated f.Lir.opt_id then begin
    t_osr_trace t f deopt_id;
    t_finish_deopt t env f deopt_id ~result:None
  end
  else env.te_pc <- next

(** Measurement pseudo-ops: zero timing cost, no dispatch, no fetch. *)
let compile_pseudo t (op : Predecode.pre) : tstep =
  match op with
  | Predecode.Pprofile (r, line, pos) ->
    fun env ->
      if t.measuring then begin
        let classid = Heap.classid_of t.heap env.te_regs.(r) in
        Counters.record_obj_load t.counters ~classid ~line ~pos
      end
  | Pprofile_store_r (r, line, pos, vr) ->
    fun env ->
      let regs = env.te_regs in
      let classid = Heap.classid_of t.heap regs.(r) in
      let value_classid = Heap.classid_of t.heap regs.(vr) in
      Tce_core.Oracle.record t.oracle ~classid ~line ~pos ~value_classid
  | Pprofile_store_c (r, line, pos, c) ->
    fun env ->
      let classid = Heap.classid_of t.heap env.te_regs.(r) in
      Tce_core.Oracle.record t.oracle ~classid ~line ~pos ~value_classid:c
  | _ -> assert false

(** Compile one non-pseudo instruction into a fused step closure. All
    operands, latencies, ALU/condition operators and the dispatch-port
    variant are bound at compile time; each closure body is the matching
    arm of {!run_slow} minus the per-instruction counting (applied en bloc
    at block entry), the profiler tests (templates only run with profiling
    off) and the pc update for non-terminators (straight-line steps run in
    array order; only terminators publish a pc). *)
let compile_body t (f : Lir.func) ~pc ~m (op : Predecode.pre) : tstep =
  let mem = t.heap.Heap.mem in
  let opt_id = f.Lir.opt_id in
  let next = pc + 1 in
  let kind = (m lsr Predecode.meta_kind_shift) land 3 in
  match op with
  | Predecode.Pprofile _ | Pprofile_store_r _ | Pprofile_store_c _ ->
    assert false
  | Pmov_imm (r, i) ->
    fun env ->
      let d = tpl_dispatch_k t kind in
      env.te_regs.(r) <- i;
      env.te_ready.(r) <- d + 1;
      complete t (d + 1)
  | Pmov (rd, rs) ->
    fun env ->
      let d = tpl_dispatch_k t kind in
      let regs = env.te_regs and ready = env.te_ready in
      regs.(rd) <- regs.(rs);
      ready.(rd) <- imax d ready.(rs) + 1;
      complete t ready.(rd)
  | Palu_r (a, lat, rd, rs, ro) ->
    let op2 = alu_fn a in
    fun env ->
      let d = tpl_dispatch_k t kind in
      let regs = env.te_regs and ready = env.te_ready in
      let start = imax d (imax ready.(rs) ready.(ro)) in
      regs.(rd) <- op2 regs.(rs) regs.(ro);
      ready.(rd) <- start + lat;
      complete t ready.(rd)
  | Palu_i (a, lat, rd, rs, i) ->
    let op2 = alu_fn a in
    fun env ->
      let d = tpl_dispatch_k t kind in
      let regs = env.te_regs and ready = env.te_ready in
      let start = imax d ready.(rs) in
      regs.(rd) <- op2 regs.(rs) i;
      ready.(rd) <- start + lat;
      complete t ready.(rd)
  | Psh64_r (sc, rd, rs, ro) ->
    let sh = sh64_fn sc in
    fun env ->
      let d = tpl_dispatch_k t kind in
      let regs = env.te_regs and ready = env.te_ready in
      let start = imax d (imax ready.(rs) ready.(ro)) in
      regs.(rd) <- sh regs.(rs) (regs.(ro) land 63);
      ready.(rd) <- start + 1;
      complete t ready.(rd)
  | Psh64_i (sc, rd, rs, i) ->
    let sh = sh64_fn sc in
    let y = i land 63 in
    fun env ->
      let d = tpl_dispatch_k t kind in
      let regs = env.te_regs and ready = env.te_ready in
      let start = imax d ready.(rs) in
      regs.(rd) <- sh regs.(rs) y;
      ready.(rd) <- start + 1;
      complete t ready.(rd)
  | Palu32_r (a, lat, rd, rs, ro) ->
    let op2 = alu_fn a in
    fun env ->
      let d = tpl_dispatch_k t kind in
      let regs = env.te_regs and ready = env.te_ready in
      let start = imax d (imax ready.(rs) ready.(ro)) in
      regs.(rd) <- Value.to_int32 (op2 regs.(rs) regs.(ro));
      ready.(rd) <- start + lat;
      complete t ready.(rd)
  | Palu32_i (a, lat, rd, rs, i) ->
    let op2 = alu_fn a in
    fun env ->
      let d = tpl_dispatch_k t kind in
      let regs = env.te_regs and ready = env.te_ready in
      let start = imax d ready.(rs) in
      regs.(rd) <- Value.to_int32 (op2 regs.(rs) i);
      ready.(rd) <- start + lat;
      complete t ready.(rd)
  | Paluov_r (a, lat, rd, rs, ro, target) ->
    let op2 = alu_fn a in
    fun env ->
      let d = tpl_dispatch_k t kind in
      let regs = env.te_regs and ready = env.te_ready in
      let start = imax d (imax ready.(rs) ready.(ro)) in
      let v = op2 regs.(rs) regs.(ro) in
      ready.(rd) <- start + lat;
      complete t ready.(rd);
      if Value.smi_fits (v asr 1) then begin
        regs.(rd) <- v;
        env.te_pc <- next
      end
      else env.te_pc <- target
  | Paluov_i (a, lat, rd, rs, i, target) ->
    let op2 = alu_fn a in
    fun env ->
      let d = tpl_dispatch_k t kind in
      let regs = env.te_regs and ready = env.te_ready in
      let start = imax d ready.(rs) in
      let v = op2 regs.(rs) i in
      ready.(rd) <- start + lat;
      complete t ready.(rd);
      if Value.smi_fits (v asr 1) then begin
        regs.(rd) <- v;
        env.te_pc <- next
      end
      else env.te_pc <- target
  | Pload (rd, rb, off) ->
    fun env ->
      let d = tpl_dispatch_k t kind in
      let regs = env.te_regs and ready = env.te_ready in
      let addr = regs.(rb) + off in
      let start = imax d ready.(rb) in
      regs.(rd) <- Mem.load mem addr;
      ready.(rd) <- daccess t ~start addr;
      complete t ready.(rd)
  | Pchecked_load (rd, rb, off, expected, deopt_id) ->
    fun env ->
      let d = tpl_dispatch_k t kind in
      let regs = env.te_regs and ready = env.te_ready in
      let base = regs.(rb) in
      let addr = base + off in
      let start = imax d ready.(rb) in
      let line_base = Tce_vm.Layout.line_base_of_addr addr in
      let w = Mem.load mem line_base in
      if Value.is_smi base || w <> expected then
        t_finish_deopt t env f deopt_id ~result:None
      else begin
        regs.(rd) <- Mem.load mem addr;
        ready.(rd) <- daccess t ~start addr;
        complete t ready.(rd);
        env.te_pc <- next
      end
  | Pload_idx (rd, rb, ri, off) ->
    fun env ->
      let d = tpl_dispatch_k t kind in
      let regs = env.te_regs and ready = env.te_ready in
      let addr = regs.(rb) + (regs.(ri) * 8) + off in
      let start = imax d (imax ready.(rb) ready.(ri)) in
      regs.(rd) <- Mem.load mem addr;
      ready.(rd) <- daccess t ~start addr;
      complete t ready.(rd)
  | Pfload (fd, rb, off) ->
    fun env ->
      let d = tpl_dispatch_k t kind in
      let regs = env.te_regs and ready = env.te_ready in
      let fregs = env.te_fregs and fready = env.te_fready in
      let addr = regs.(rb) + off in
      let start = imax d ready.(rb) in
      fregs.(fd) <- Fbits.to_float (Mem.load mem addr);
      fready.(fd) <- daccess t ~start addr;
      complete t fready.(fd)
  | Pfload_idx (fd, rb, ri, off) ->
    fun env ->
      let d = tpl_dispatch_k t kind in
      let regs = env.te_regs and ready = env.te_ready in
      let fregs = env.te_fregs and fready = env.te_fready in
      let addr = regs.(rb) + (regs.(ri) * 8) + off in
      let start = imax d (imax ready.(rb) ready.(ri)) in
      fregs.(fd) <- Fbits.to_float (Mem.load mem addr);
      fready.(fd) <- daccess t ~start addr;
      complete t fready.(fd)
  | Pstore_r (rb, off, vr) ->
    fun env ->
      let d = tpl_dispatch_k t kind in
      let regs = env.te_regs and ready = env.te_ready in
      do_store t d ~addr:(regs.(rb) + off)
        ~start:(imax ready.(vr) ready.(rb))
        ~word:regs.(vr)
  | Pstore_i (rb, off, i) ->
    fun env ->
      let d = tpl_dispatch_k t kind in
      let regs = env.te_regs and ready = env.te_ready in
      do_store t d ~addr:(regs.(rb) + off) ~start:ready.(rb) ~word:i
  | Pstore_idx_r (rb, ri, off, vr) ->
    fun env ->
      let d = tpl_dispatch_k t kind in
      let regs = env.te_regs and ready = env.te_ready in
      do_store t d
        ~addr:(regs.(rb) + (regs.(ri) * 8) + off)
        ~start:(imax ready.(vr) (imax ready.(rb) ready.(ri)))
        ~word:regs.(vr)
  | Pstore_idx_i (rb, ri, off, i) ->
    fun env ->
      let d = tpl_dispatch_k t kind in
      let regs = env.te_regs and ready = env.te_ready in
      do_store t d
        ~addr:(regs.(rb) + (regs.(ri) * 8) + off)
        ~start:(imax ready.(rb) ready.(ri))
        ~word:i
  | Pfstore (rb, off, fv) ->
    fun env ->
      let d = tpl_dispatch_k t kind in
      let regs = env.te_regs and ready = env.te_ready in
      do_store t d ~addr:(regs.(rb) + off)
        ~start:(imax env.te_fready.(fv) ready.(rb))
        ~word:(Fbits.of_float env.te_fregs.(fv))
  | Pfstore_idx (rb, ri, off, fv) ->
    fun env ->
      let d = tpl_dispatch_k t kind in
      let regs = env.te_regs and ready = env.te_ready in
      do_store t d
        ~addr:(regs.(rb) + (regs.(ri) * 8) + off)
        ~start:(imax env.te_fready.(fv) (imax ready.(rb) ready.(ri)))
        ~word:(Fbits.of_float env.te_fregs.(fv))
  | Pfmov (fd, fs) ->
    fun env ->
      let d = tpl_dispatch_k t kind in
      let fregs = env.te_fregs and fready = env.te_fready in
      fregs.(fd) <- fregs.(fs);
      fready.(fd) <- imax d fready.(fs) + 1;
      complete t fready.(fd)
  | Pfmov_imm (fd, x) ->
    fun env ->
      let d = tpl_dispatch_k t kind in
      env.te_fregs.(fd) <- x;
      env.te_fready.(fd) <- d + 1;
      complete t (d + 1)
  | Pfadd (fd, fa, fb) ->
    fun env ->
      let d = tpl_dispatch_k t kind in
      falu t d env.te_fregs env.te_fready fd fa fb ( +. ) 3
  | Pfsub (fd, fa, fb) ->
    fun env ->
      let d = tpl_dispatch_k t kind in
      falu t d env.te_fregs env.te_fready fd fa fb ( -. ) 3
  | Pfmul (fd, fa, fb) ->
    fun env ->
      let d = tpl_dispatch_k t kind in
      falu t d env.te_fregs env.te_fready fd fa fb ( *. ) 5
  | Pfdiv (fd, fa, fb) ->
    fun env ->
      let d = tpl_dispatch_k t kind in
      falu t d env.te_fregs env.te_fready fd fa fb ( /. ) 20
  | Pfsqrt (fd, fs) ->
    fun env ->
      let d = tpl_dispatch_k t kind in
      let fregs = env.te_fregs and fready = env.te_fready in
      fregs.(fd) <- Fbits.canon (sqrt fregs.(fs));
      fready.(fd) <- imax d fready.(fs) + fsqrt_lat;
      complete t fready.(fd)
  | Pfneg (fd, fs) ->
    fun env ->
      let d = tpl_dispatch_k t kind in
      let fregs = env.te_fregs and fready = env.te_fready in
      fregs.(fd) <- -.fregs.(fs);
      fready.(fd) <- imax d fready.(fs) + 1;
      complete t fready.(fd)
  | Pfabs (fd, fs) ->
    fun env ->
      let d = tpl_dispatch_k t kind in
      let fregs = env.te_fregs and fready = env.te_fready in
      fregs.(fd) <- Float.abs fregs.(fs);
      fready.(fd) <- imax d fready.(fs) + 1;
      complete t fready.(fd)
  | Pcvtif (fd, rs) ->
    fun env ->
      let d = tpl_dispatch_k t kind in
      env.te_fregs.(fd) <- float_of_int env.te_regs.(rs);
      env.te_fready.(fd) <- imax d env.te_ready.(rs) + flat_lat;
      complete t env.te_fready.(fd)
  | Ptruncfi (rd, fs) ->
    fun env ->
      let d = tpl_dispatch_k t kind in
      env.te_regs.(rd) <- Value.js_to_int32_float env.te_fregs.(fs);
      env.te_ready.(rd) <- imax d env.te_fready.(fs) + flat_lat;
      complete t env.te_ready.(rd)
  | Pbranch_r (c, r, ro, target) ->
    let cmp = cond_fn c in
    fun env ->
      let d = tpl_dispatch_k t kind in
      let regs = env.te_regs and ready = env.te_ready in
      let start = imax d (imax ready.(r) ready.(ro)) in
      let taken = cmp regs.(r) regs.(ro) in
      branch_resolve t ~opt_id ~pc ~start ~taken;
      env.te_pc <- (if taken then target else next)
  | Pbranch_i (c, r, i, target) ->
    let cmp = cond_fn c in
    fun env ->
      let d = tpl_dispatch_k t kind in
      let start = imax d env.te_ready.(r) in
      let taken = cmp env.te_regs.(r) i in
      branch_resolve t ~opt_id ~pc ~start ~taken;
      env.te_pc <- (if taken then target else next)
  | Pfbranch (c, fa, fb, target) ->
    let cmp = fcond_fn c in
    fun env ->
      let d = tpl_dispatch_k t kind in
      let fready = env.te_fready in
      let start = imax d (imax fready.(fa) fready.(fb)) in
      let taken = cmp env.te_fregs.(fa) env.te_fregs.(fb) in
      branch_resolve t ~opt_id ~pc ~start ~taken;
      env.te_pc <- (if taken then target else next)
  | Pjmp target ->
    fun env ->
      let d = tpl_dispatch_k t kind in
      complete t (d + 1);
      env.te_pc <- target
  | Pcall_fn (callee, argr, rd, deopt_id, cinstrs) ->
    fun env ->
      ignore (tpl_dispatch_k t kind);
      let regs = env.te_regs and ready = env.te_ready in
      Array.iter
        (fun r -> if ready.(r) > t.cycle then t.cycle <- ready.(r))
        argr;
      t.slots <- 0;
      charge_rt_i t ~pcost:Profile.cost_call ~cat_idx:cat_other_idx
        ~instrs:cinstrs ~cycles:8;
      let argv = Array.map (fun r -> regs.(r)) argr in
      let v = env.te_host.call_fn callee argv in
      if env.te_host.is_invalidated opt_id then begin
        t_osr_trace t f deopt_id;
        t_finish_deopt t env f deopt_id ~result:(Some v)
      end
      else begin
        regs.(rd) <- v;
        ready.(rd) <- t.cycle + 1;
        env.te_pc <- next
      end
  | Pcall_rt_chk (rt, argr, rd, deopt_id, cinstrs, ccycles) ->
    let cat_idx = m land Predecode.meta_cat_mask in
    fun env ->
      ignore (tpl_dispatch_k t kind);
      let regs = env.te_regs and ready = env.te_ready in
      Array.iter
        (fun r -> if ready.(r) > t.cycle then t.cycle <- ready.(r))
        argr;
      charge_rt_i t ~pcost:Profile.cost_rt ~cat_idx ~instrs:cinstrs
        ~cycles:ccycles;
      let argv = Array.map (fun r -> regs.(r)) argr in
      let v, _ = env.te_host.rt_call rt argv [||] in
      if rd >= 0 then begin
        regs.(rd) <- v;
        ready.(rd) <- t.cycle + 1
      end;
      if env.te_host.is_invalidated opt_id then begin
        t_osr_trace t f deopt_id;
        t_finish_deopt t env f deopt_id
          ~result:(if rd >= 0 then Some v else None)
      end
      else env.te_pc <- next
  | Pcall_rt (rt, argr, fargr, rd, fd, cinstrs, ccycles) ->
    let cat_idx = m land Predecode.meta_cat_mask in
    fun env ->
      ignore (tpl_dispatch_k t kind);
      let regs = env.te_regs and ready = env.te_ready in
      let fregs = env.te_fregs and fready = env.te_fready in
      Array.iter
        (fun r -> if ready.(r) > t.cycle then t.cycle <- ready.(r))
        argr;
      Array.iter
        (fun r -> if fready.(r) > t.cycle then t.cycle <- fready.(r))
        fargr;
      charge_rt_i t ~pcost:Profile.cost_rt ~cat_idx ~instrs:cinstrs
        ~cycles:ccycles;
      let argv = Array.map (fun r -> regs.(r)) argr in
      let fargv = Array.map (fun r -> fregs.(r)) fargr in
      let v, fv = env.te_host.rt_call rt argv fargv in
      if rd >= 0 then begin
        regs.(rd) <- v;
        ready.(rd) <- t.cycle + 1
      end;
      if fd >= 0 then begin
        fregs.(fd) <- fv;
        fready.(fd) <- t.cycle + 1
      end;
      env.te_pc <- next
  | Pret r ->
    fun env ->
      let d = tpl_dispatch_k t kind in
      complete t (d + 1);
      env.te_res <- env.te_regs.(r);
      env.te_running <- false
  | Pdeopt deopt_id ->
    fun env ->
      ignore (tpl_dispatch_k t kind);
      t_finish_deopt t env f deopt_id ~result:None
  | Pmov_classid r ->
    fun env ->
      let d = tpl_dispatch_k t kind in
      let v = env.te_regs.(r) in
      if Value.is_smi v then begin
        t.reg_classid <- Tce_vm.Layout.smi_classid;
        complete t (d + 1)
      end
      else begin
        let addr = Value.ptr_addr v in
        t.reg_classid <- Heap.classid_of t.heap v;
        complete t (daccess t ~start:(imax d env.te_ready.(r)) addr)
      end
  | Pmov_classid_arr (k, r) ->
    fun env ->
      let d = tpl_dispatch_k t kind in
      let v = env.te_regs.(r) in
      if Value.is_smi v then begin
        t.reg_classid_arr.(k) <- Tce_vm.Layout.smi_classid;
        complete t (d + 1)
      end
      else begin
        let addr = Value.ptr_addr v in
        t.reg_classid_arr.(k) <- Heap.classid_of t.heap v;
        complete t (daccess t ~start:(imax d env.te_ready.(r)) addr)
      end
  | Pstore_cc_r (rb, off, vr, deopt_id) ->
    fun env ->
      let d = tpl_dispatch_k t kind in
      let regs = env.te_regs and ready = env.te_ready in
      let addr = regs.(rb) + off in
      do_store t d ~addr ~start:(imax ready.(vr) ready.(rb)) ~word:regs.(vr);
      let line_base = Tce_vm.Layout.line_base_of_addr addr in
      let w = Mem.load mem line_base in
      let classid = Tce_vm.Layout.classid_of_class_word w in
      let line = Tce_vm.Layout.line_of_class_word w in
      let pos = Tce_vm.Layout.slot_pos_of_addr addr in
      (try
         cc_request_tagged t ~classid ~line ~pos ~stored:regs.(vr);
         t_post_store t env f deopt_id next
       with Cc_exception info -> t_handle_cc t env f deopt_id info next)
  | Pstore_cc_i (rb, off, i, deopt_id) ->
    fun env ->
      let d = tpl_dispatch_k t kind in
      let regs = env.te_regs and ready = env.te_ready in
      let addr = regs.(rb) + off in
      do_store t d ~addr ~start:ready.(rb) ~word:i;
      let line_base = Tce_vm.Layout.line_base_of_addr addr in
      let w = Mem.load mem line_base in
      let classid = Tce_vm.Layout.classid_of_class_word w in
      let line = Tce_vm.Layout.line_of_class_word w in
      let pos = Tce_vm.Layout.slot_pos_of_addr addr in
      (try
         cc_request_tagged t ~classid ~line ~pos ~stored:i;
         t_post_store t env f deopt_id next
       with Cc_exception info -> t_handle_cc t env f deopt_id info next)
  | Pstore_cca_r (k, rb, ri, off, vr, deopt_id) ->
    fun env ->
      let d = tpl_dispatch_k t kind in
      let regs = env.te_regs and ready = env.te_ready in
      let addr = regs.(rb) + (regs.(ri) * 8) + off in
      do_store t d ~addr
        ~start:(imax ready.(vr) (imax ready.(rb) ready.(ri)))
        ~word:regs.(vr);
      let classid = t.reg_classid_arr.(k) in
      (try
         cc_request_tagged t ~classid ~line:0
           ~pos:Tce_vm.Layout.elements_ptr_slot ~stored:regs.(vr);
         t_post_store t env f deopt_id next
       with Cc_exception info -> t_handle_cc t env f deopt_id info next)
  | Pstore_cca_i (k, rb, ri, off, i, deopt_id) ->
    fun env ->
      let d = tpl_dispatch_k t kind in
      let regs = env.te_regs and ready = env.te_ready in
      let addr = regs.(rb) + (regs.(ri) * 8) + off in
      do_store t d ~addr ~start:(imax ready.(rb) ready.(ri)) ~word:i;
      let classid = t.reg_classid_arr.(k) in
      (try
         cc_request_tagged t ~classid ~line:0
           ~pos:Tce_vm.Layout.elements_ptr_slot ~stored:i;
         t_post_store t env f deopt_id next
       with Cc_exception info -> t_handle_cc t env f deopt_id info next)

(** En-bloc counter application: one straight-line pass adding the block
    summary, called once per block entry while measuring. Exact because
    non-terminator instructions cannot exit the block
    ({!Template.summarize}). The unsafe accesses pair same-length arrays
    ([Categories.count] and [check_kind_count + 1] on both sides). *)
let apply_summary (c : Counters.t) (s : Template.summary) =
  let bc = c.Counters.by_cat and sc = s.Template.s_by_cat in
  for i = 0 to Array.length sc - 1 do
    Array.unsafe_set bc i (Array.unsafe_get bc i + Array.unsafe_get sc i)
  done;
  let bk = c.Counters.by_check_kind and sk = s.Template.s_by_check in
  for i = 0 to Array.length sk - 1 do
    Array.unsafe_set bk i (Array.unsafe_get bk i + Array.unsafe_get sk i)
  done;
  c.Counters.guards_obj_load <- c.Counters.guards_obj_load + s.Template.s_guards;
  c.Counters.opt_loads <- c.Counters.opt_loads + s.Template.s_loads;
  c.Counters.opt_stores <- c.Counters.opt_stores + s.Template.s_stores;
  c.Counters.opt_branches <- c.Counters.opt_branches + s.Template.s_branches;
  c.Counters.opt_fp <- c.Counters.opt_fp + s.Template.s_fp

(** Compile one basic block into its fused step array. I-cache accounting
    is resolved statically within the block: after any executed non-pseudo
    instruction [last_iline] equals its line, so only the block's first
    non-pseudo step needs the dynamic line compare — later steps either
    provably stay on the same line (no fetch) or provably cross into a new
    one (unconditional fetch). Pseudo-ops never fetch. *)
let compile_block t (f : Lir.func) (pf : Predecode.func) (b : Template.block)
    : tblock =
  let ops = pf.Predecode.ops and meta = pf.Predecode.meta in
  let code_addr = f.Lir.code_addr in
  let steps = ref [] in
  let prev_line = ref (-1) in
  for pc = b.Template.b_start to b.Template.b_start + b.Template.b_len - 1 do
    let m = meta.(pc) and op = ops.(pc) in
    if m land Predecode.meta_pseudo_bit <> 0 then
      steps := compile_pseudo t op :: !steps
    else begin
      let line = (code_addr + (4 * pc)) lsr 6 in
      let body = compile_body t f ~pc ~m op in
      let step =
        if !prev_line < 0 then fun env ->
          if line <> t.last_iline then ifetch_slow t line;
          body env
        else if !prev_line = line then body
        else fun env ->
          ifetch_slow t line;
          body env
      in
      prev_line := line;
      steps := step :: !steps
    end
  done;
  if not b.Template.b_terminated then begin
    let nxt = b.Template.b_start + b.Template.b_len in
    steps := (fun env -> env.te_pc <- nxt) :: !steps
  end;
  { tb_steps = Array.of_list (List.rev !steps); tb_sum = b.Template.b_sum }

(** Compile the full template for a decoded stream, or [None] when
    {!Template.layout} rejects it (fall back to the slow loop forever). *)
let compile_template t (f : Lir.func) (pf : Predecode.func) : template option
    =
  match Template.layout pf with
  | None -> None
  | Some lay ->
    Some
      {
        tp_pf = pf;
        tp_blocks =
          Array.map (fun b -> compile_block t f pf b) lay.Template.blocks;
        tp_block_of_pc = lay.Template.block_of_pc;
      }

(** Template for [f], compiling at most once per compilation — same keying
    discipline as {!install}: by [opt_id], with a physical-equality guard
    on the decoded stream covering id reuse. *)
let install_template t (f : Lir.func) (pf : Predecode.func) =
  match Hashtbl.find_opt t.tpl_cache f.Lir.opt_id with
  | Some (pf', tpl) when pf' == pf -> tpl
  | _ ->
    let tpl = compile_template t f pf in
    Hashtbl.replace t.tpl_cache f.Lir.opt_id (pf, tpl);
    tpl

(** Templated executor: enter the current leader's block, apply its counter
    summary en bloc, then run the fused steps in order; the terminator (or
    the synthetic fall-through step) publishes the next leader pc or
    finishes the run. Bit-identical to {!run_slow} by construction. *)
let run_templated t (host : host) (f : Lir.func) (tpl : template)
    (args : Value.t array) : Value.t =
  let nr = imax f.Lir.n_regs 1 in
  let nf = imax f.Lir.n_fregs 1 in
  (* Acquire a pooled environment (guest calls nest, so this is a free
     list, not a singleton). Pooled register files may be longer than this
     function needs; steps index below [n_regs]/[n_fregs] only, and the
     used prefix is re-initialized to exactly the fresh-allocation state. *)
  let env =
    match t.env_pool with
    | e :: rest ->
        t.env_pool <- rest;
        if Array.length e.te_regs < nr then begin
          e.te_regs <- Array.make nr 0;
          e.te_ready <- Array.make nr 0
        end;
        if Array.length e.te_fregs < nf then begin
          e.te_fregs <- Array.make nf 0.0;
          e.te_fready <- Array.make nf 0
        end;
        e.te_host <- host;
        e.te_pc <- 0;
        e.te_running <- true;
        e.te_res <- 0;
        e
    | [] ->
        {
          te_host = host;
          te_regs = Array.make nr 0;
          te_fregs = Array.make nf 0.0;
          te_ready = Array.make nr 0;
          te_fready = Array.make nf 0;
          te_pc = 0;
          te_running = true;
          te_res = 0;
        }
  in
  let regs = env.te_regs in
  Array.fill regs 0 nr 0;
  Array.fill env.te_fregs 0 nf 0.0;
  Array.fill env.te_ready 0 nr t.cycle;
  Array.fill env.te_fready 0 nf t.cycle;
  let nargs = min (Array.length args) f.Lir.n_regs in
  Array.blit args 0 regs 0 nargs;
  (* absent parameters read as null *)
  for i = nargs to min (Array.length f.Lir.reprs) f.Lir.n_regs - 1 do
    regs.(i) <- t.heap.Heap.null_v
  done;
  let blocks = tpl.tp_blocks and block_of_pc = tpl.tp_block_of_pc in
  let counters = t.counters in
  while env.te_running do
    let b = blocks.(block_of_pc.(env.te_pc)) in
    if t.measuring then apply_summary counters b.tb_sum;
    let steps = b.tb_steps in
    for i = 0 to Array.length steps - 1 do
      (Array.unsafe_get steps i) env
    done
  done;
  let res = env.te_res in
  t.env_pool <- env :: t.env_pool;
  res

(** Execute optimized code [f] on [args] = [this :: params], returning the
    function result (possibly via a deopt into the interpreter). Runs the
    fused-template executor whenever it is equivalent to the
    per-instruction loop: templates enabled, profiler off (per-pc
    attribution needs per-instruction sites), no fault injector armed, and
    the stream fusible. *)
let run t (host : host) (f : Lir.func) (args : Value.t array) : Value.t =
  let pf = install t f in
  if
    t.templates
    && (not (Profile.on t.prof))
    && not (Tce_fault.Injector.armed t.fault)
  then
    match install_template t f pf with
    | Some tpl -> run_templated t host f tpl args
    | None -> run_slow t host f pf args
  else run_slow t host f pf args
