(** Cycle-level execution of optimized (LIR) code: a 4-wide in-order-dispatch
    / out-of-order-completion scoreboard with a 128-entry window, load/store
    queue, L1I/L1D/L2 caches, D/I-TLBs, a bimodal branch predictor and the
    Class Cache — parameters from {!Config} (the paper's Table 2).

    The model dispatches instructions in program order at up to
    [issue_width] per cycle, blocks dispatch when the window is full, lets
    results complete out of order at [dispatch + max(dep stalls) + latency],
    and restarts the front end on branch mispredictions — a standard
    research-grade approximation of a Nehalem-class core (MARSS substitute,
    see DESIGN.md).

    The executor runs the {!Predecode} stream, not [Lir.func.code] — see
    lib/machine/README.md for the pre-decode invariants. The run loop is
    allocation-free: the window and store queue are int ring buffers, MSHR
    fill tracking is an {!Tce_support.Int_table}, dispatch-port kinds are
    ints, and loop exit is a [running] flag plus a result register instead
    of an [option] compared per iteration. *)

open Tce_vm
open Tce_jit
module Profile = Tce_prof.Profile

exception Trap of string

(** A misspeculation exception with the faulting-store context attached
    (what broke, where, and who has to deopt) — the attribution ledger's
    causal-chain anchor. *)
type cc_exn_info = {
  cc_classid : int;
  cc_line : int;
  cc_pos : int;
  cc_value_classid : int;
  cc_victims : int list;  (** opt_ids from the slot's FunctionList *)
}

(** Callbacks into the engine (tier driver). *)
type host = {
  call_fn : int -> Value.t array -> Value.t;
      (** call guest function [fn_id] with [this :: args] *)
  resume : opt_id:int -> bc_pc:int -> regs:Value.t array ->
           result:(int * Value.t) option -> Value.t;
      (** deoptimization: resume the interpreter mid-function *)
  rt_call : Lir.rt -> Value.t array -> float array -> Value.t * float;
      (** execute a runtime stub functionally *)
  on_cc_exception : cc_exn_info -> unit;
      (** invalidate the optimized code instances in [cc_victims] *)
  on_deopt : int -> unit;
      (** a check failed in this opt_id (engine discards code that
          deoptimizes repeatedly, like V8's deopt counters) *)
  is_invalidated : int -> bool;  (** has this opt_id been invalidated? *)
}

type t = {
  cfg : Config.t;
  heap : Heap.t;
  cc : Tce_core.Class_cache.t;
  cl : Tce_core.Class_list.t;
  oracle : Tce_core.Oracle.t;
  counters : Counters.t;
  l1d : Cache.t;
  l1i : Cache.t;
  l2 : Cache.t;
  dtlb : Tlb.t;
  itlb : Tlb.t;
  bp : Branch.t;
  mechanism : bool;  (** Class Cache mechanism on/off *)
  (* timing state *)
  mutable cycle : int;  (** current dispatch cycle *)
  mutable slots : int;  (** instructions dispatched in this cycle *)
  mutable load_slots : int;  (** loads dispatched this cycle (1 load port) *)
  mutable store_slots : int;  (** stores dispatched this cycle (1 store port) *)
  (* completion times of in-flight instructions: a ring buffer (the run
     loop pushes ≤ 1 entry per dispatched instruction, so the capacity
     [window_size + 1] rounded to a power of two never overflows) *)
  win_buf : int array;
  win_mask : int;
  mutable win_head : int;
  mutable win_len : int;
  (* completion times of in-flight stores (same ring representation) *)
  stq_buf : int array;
  stq_mask : int;
  mutable stq_head : int;
  mutable stq_len : int;
  mutable last_iline : int;  (** last instruction-cache line fetched *)
  fills : Tce_support.Int_table.t;
      (** in-flight line fills: line -> cycle the data arrives (MSHR
          merging: a second access to a line being filled waits for the
          fill instead of seeing an instant hit); 0 = no fill recorded
          (completion cycles are always >= 1) *)
  pre_cache : (int, Predecode.func) Hashtbl.t;
      (** decoded streams keyed by [opt_id] (fresh per compilation; the
          physical-equality guard in {!install} covers id reuse) *)
  mutable measuring : bool;
  trace : Tce_obs.Trace.t;
      (** observability sink (deopt / OSR events; never affects timing) *)
  fault : Tce_fault.Injector.t;
      (** fault injector ({!Tce_fault.Injector.null} = disarmed): OSR-fail
          injection and the retire-path re-validation of special stores *)
  attr : Tce_attr.Ledger.t;
      (** attribution ledger ({!Tce_attr.Ledger.null} = disabled): records
          each deopt's typed reason; never affects timing *)
  prof : Profile.t;
      (** cycle-attribution profiler ({!Tce_prof.Profile.null} = disabled):
          every site that advances [cycle] reports the delta; reads the
          clock, never writes timing state *)
  (* special registers (paper §4.2.1.2) *)
  mutable reg_classid : int;
  reg_classid_arr : int array;
}

let ring_capacity n =
  let rec go c = if c > n then c else go (c * 2) in
  go 16

let create ?(cfg = Config.default) ?(mechanism = true)
    ?(trace = Tce_obs.Trace.null) ?(fault = Tce_fault.Injector.null)
    ?(attr = Tce_attr.Ledger.null) ?(prof = Profile.null) ~heap ~cc ~cl
    ~oracle ~counters () =
  let win_cap = ring_capacity cfg.Config.window_size in
  let stq_cap = ring_capacity cfg.Config.outstanding_ldst in
  {
    cfg;
    heap;
    cc;
    cl;
    oracle;
    counters;
    l1d = Cache.create ~size_kb:cfg.dl1_kb ~ways:cfg.dl1_ways ~line_bytes:64;
    l1i = Cache.create ~size_kb:cfg.il1_kb ~ways:cfg.il1_ways ~line_bytes:64;
    l2 = Cache.create ~size_kb:cfg.l2_kb ~ways:cfg.l2_ways ~line_bytes:64;
    dtlb = Tlb.create ~entries:cfg.dtlb_entries;
    itlb = Tlb.create ~entries:cfg.itlb_entries;
    bp = Branch.create ();
    mechanism;
    cycle = 0;
    slots = 0;
    load_slots = 0;
    store_slots = 0;
    win_buf = Array.make win_cap 0;
    win_mask = win_cap - 1;
    win_head = 0;
    win_len = 0;
    stq_buf = Array.make stq_cap 0;
    stq_mask = stq_cap - 1;
    stq_head = 0;
    stq_len = 0;
    last_iline = -1;
    fills = Tce_support.Int_table.create ~size:4096 ();
    pre_cache = Hashtbl.create 64;
    measuring = true;
    trace;
    fault;
    attr;
    prof;
    reg_classid = 0;
    reg_classid_arr = Array.make 4 0;
  }

(** {2 Pre-decode cache} *)

(** Decoded stream for [f], decoding at most once per compilation. Keyed by
    [opt_id] — fresh per compile — with a physical-equality guard so a
    rebuilt [Lir.func] under a reused id (unit tests) is re-decoded. *)
let install t (f : Lir.func) =
  match Hashtbl.find_opt t.pre_cache f.Lir.opt_id with
  | Some pf when pf.Predecode.lf == f -> pf
  | _ ->
    let pf = Predecode.decode f in
    Hashtbl.replace t.pre_cache f.Lir.opt_id pf;
    pf

(* --- timing primitives --- *)

(* dispatch-port kinds, matching Predecode.kind_* *)
let kind_load = Predecode.kind_load
let kind_store = Predecode.kind_store

let advance t =
  t.cycle <- t.cycle + 1;
  t.slots <- 0;
  t.load_slots <- 0;
  t.store_slots <- 0

(** Dispatch one instruction; returns its dispatch cycle. Loads and stores
    additionally contend for their single AGU/port (Nehalem: one load port,
    one store port), so memory-heavy code is port-bound — which is what
    makes removing Check Map loads profitable. *)
let dispatch_k t kind =
  if t.slots >= t.cfg.issue_width then advance t;
  if kind = kind_load then while t.load_slots >= 1 do advance t done
  else if kind = kind_store then while t.store_slots >= 1 do advance t done;
  if Profile.on t.prof then Profile.take t.prof Profile.cost_dispatch t.cycle;
  if t.win_len >= t.cfg.window_size then begin
    (* window full: retire the oldest in-flight instruction *)
    let c = Array.unsafe_get t.win_buf t.win_head in
    t.win_head <- (t.win_head + 1) land t.win_mask;
    t.win_len <- t.win_len - 1;
    if c > t.cycle then begin
      t.cycle <- c;
      t.slots <- 0;
      t.load_slots <- 0;
      t.store_slots <- 0
    end
  end;
  if Profile.on t.prof then Profile.take t.prof Profile.cost_window t.cycle;
  t.slots <- t.slots + 1;
  if kind = kind_load then t.load_slots <- t.load_slots + 1
  else if kind = kind_store then t.store_slots <- t.store_slots + 1;
  t.cycle

let complete t c =
  Array.unsafe_set t.win_buf ((t.win_head + t.win_len) land t.win_mask) c;
  t.win_len <- t.win_len + 1

(** Completion time of a data access to [addr] issued at [start], through
    DTLB + D-cache hierarchy, with MSHR merging of accesses to lines whose
    fill is still in flight. *)
let daccess t ~start addr =
  let tlb_hit = Tlb.access t.dtlb addr in
  let line = addr lsr 6 in
  let hit_l1 = Cache.access t.l1d addr in
  let lat =
    if hit_l1 then t.cfg.l1_load_latency
    else if Cache.access t.l2 addr then t.cfg.l1_load_latency + t.cfg.l2_latency
    else t.cfg.l1_load_latency + t.cfg.l2_latency + t.cfg.mem_latency
  in
  let lat = if tlb_hit then lat else lat + t.cfg.tlb_miss_penalty in
  if hit_l1 then begin
    let ready = Tce_support.Int_table.find t.fills line 0 in
    if ready > start then
      (* the line is still being filled: wait for it *)
      ready + t.cfg.l1_load_latency
    else start + lat
  end
  else begin
    let done_at = start + lat in
    Tce_support.Int_table.set t.fills line done_at;
    done_at
  end

(** Instruction fetch, slow path: called only when crossing into a new
    I-cache line (the line compare is inlined at the call sites). *)
let ifetch_slow t line =
  t.last_iline <- line;
  let addr = line lsl 6 in
  let tlb_hit = Tlb.access t.itlb addr in
  let hit = Cache.access t.l1i addr in
  if not hit then begin
    (* front-end bubble *)
    let pen =
      if Cache.access t.l2 addr then t.cfg.l2_latency
      else t.cfg.l2_latency + t.cfg.mem_latency
    in
    t.cycle <- t.cycle + pen;
    t.slots <- 0;
    t.load_slots <- 0;
    t.store_slots <- 0
  end;
  if not tlb_hit then begin
    t.cycle <- t.cycle + t.cfg.tlb_miss_penalty;
    t.slots <- 0;
    t.load_slots <- 0;
    t.store_slots <- 0
  end;
  if Profile.on t.prof then Profile.take t.prof Profile.cost_icache t.cycle

let cat_check_idx = Categories.index Categories.C_check

(** Count one dispatched instruction from its packed {!Predecode} meta. *)
let count_meta t m =
  if t.measuring then begin
    let c = t.counters in
    let ci = m land Predecode.meta_cat_mask in
    c.Counters.by_cat.(ci) <- c.Counters.by_cat.(ci) + 1;
    if ci = cat_check_idx then begin
      let slot = (m lsr Predecode.meta_check_shift) land 7 in
      c.by_check_kind.(slot) <- c.by_check_kind.(slot) + 1
    end;
    if m land Predecode.meta_guards_bit <> 0 then
      c.guards_obj_load <- c.guards_obj_load + 1;
    match (m lsr Predecode.meta_class_shift) land 7 with
    | 1 -> c.opt_loads <- c.opt_loads + 1
    | 2 -> c.opt_stores <- c.opt_stores + 1
    | 3 -> c.opt_branches <- c.opt_branches + 1
    | 4 -> c.opt_fp <- c.opt_fp + 1
    | _ -> ()
  end

(** Charge a runtime-stub cost: serializes the pipeline. The cost is
    attributed to category index [cat_idx] (e.g. boxing stubs count as
    Tags/Untags); the profiler books it under [pcost] (this take also
    absorbs the caller's argument-readiness serialization, which advances
    the clock just before charging). *)
let charge_rt_i t ~pcost ~cat_idx ~instrs ~cycles =
  if t.measuring then
    t.counters.Counters.by_cat.(cat_idx) <-
      t.counters.Counters.by_cat.(cat_idx) + instrs;
  t.cycle <- t.cycle + cycles;
  t.slots <- 0;
  t.load_slots <- 0;
  t.store_slots <- 0;
  if Profile.on t.prof then Profile.take t.prof pcost t.cycle

let cat_other_idx = Categories.index Categories.C_other

(** Model a fresh allocation as nursery-resident: the lines are inserted
    into the D-caches without cost. (V8's new space is recycled by the
    scavenger and stays cache-resident in steady state; our bump allocator
    would otherwise make every allocation a cold DRAM miss.) *)
let prefill t ~addr ~bytes =
  let first = addr lsr 6 and last = (addr + bytes - 1) lsr 6 in
  for line = first to last do
    Cache.insert t.l1d (line lsl 6);
    Cache.insert t.l2 (line lsl 6)
  done

exception Cc_exception of cc_exn_info

(* --- the executor --- *)

let alu_apply (a : Lir.alu) x y =
  match a with
  | Lir.Add -> x + y
  | Sub -> x - y
  | Mul -> x * y
  | Div -> if y = 0 then 0 else x / y
  | Rem -> if y = 0 then 0 else Stdlib.( mod ) x y
  | And -> x land y
  | Or -> x lor y
  | Xor -> x lxor y
  | Shl -> x lsl (y land 31)
  | Shr -> (x land 0xffff_ffff) lsr (y land 31)  (* JS >>> on uint32 *)
  | Sar -> x asr (y land 31)

let cond_apply (c : Lir.cond) x y =
  match c with
  | Lir.Eq -> x = y
  | Ne -> x <> y
  | Lt -> x < y
  | Le -> x <= y
  | Gt -> x > y
  | Ge -> x >= y
  | Bit_set -> x land y <> 0
  | Bit_clear -> x land y = 0

let fcond_apply (c : Lir.fcond) (x : float) (y : float) =
  match c with
  | Lir.FEq -> x = y
  | FNe -> x <> y
  | FLt -> x < y
  | FLe -> x <= y
  | FGt -> x > y
  | FGe -> x >= y
  (* negated forms: true on NaN (unordered) *)
  | FNlt -> not (x < y)
  | FNle -> not (x <= y)
  | FNgt -> not (x > y)
  | FNge -> not (x >= y)

let flat_lat = 3 (* FP add/sub/cvt latency *)
let fsqrt_lat = 25

(** Reconstruct the interpreter frame for a deopt of [f] and resume. *)
let do_deopt t host (f : Lir.func) regs fregs deopt_id ~result =
  let info = f.Lir.deopts.(deopt_id) in
  if Tce_obs.Trace.on t.trace then
    Tce_obs.Trace.emit t.trace
      (Tce_obs.Trace.Deopt
         {
           reason = Tce_attr.Reason.to_string info.Lir.reason;
           func = f.Lir.name;
           pc = info.Lir.bc_pc;
           classid = info.Lir.reason.Tce_attr.Reason.classid;
         });
  Tce_attr.Ledger.record_deopt t.attr ~fn:f.Lir.name ~reason:info.Lir.reason;
  host.on_deopt f.Lir.opt_id;
  if t.measuring then begin
    t.counters.deopts <- t.counters.deopts + 1;
    t.counters.baseline_instrs <-
      t.counters.baseline_instrs + Costs.deopt_transition_instrs;
    if Profile.on t.prof then
      Profile.base_extra t.prof Profile.extra_deopt_transition
        Costs.deopt_transition_instrs
  end;
  t.cycle <- t.cycle + t.cfg.deopt_penalty;
  (* Fault: the OSR transition itself fails once and is retried via the
     slow path — semantics preserved by construction, one extra frame
     reconstruction's worth of cost (timing-only, gracefully degraded). *)
  if
    Tce_fault.Injector.armed t.fault
    && Tce_fault.Injector.fire t.fault Tce_fault.Point.Osr_fail
  then begin
    if t.measuring then begin
      t.counters.baseline_instrs <-
        t.counters.baseline_instrs + Costs.deopt_transition_instrs;
      if Profile.on t.prof then
        Profile.base_extra t.prof Profile.extra_deopt_transition
          Costs.deopt_transition_instrs
    end;
    t.cycle <- t.cycle + t.cfg.deopt_penalty
  end;
  if Profile.on t.prof then Profile.take t.prof Profile.cost_deopt t.cycle;
  t.slots <- 0;
  let n = Array.length f.Lir.reprs in
  let vals =
    Array.init n (fun i ->
        match f.Lir.reprs.(i) with
        | Lir.R_tagged -> regs.(i)
        | Lir.R_double -> Heap.number t.heap fregs.(i))
  in
  let result =
    match result with
    | Some v -> Some ((match info.Lir.result_into with Some r -> r | None -> -1), v)
    | None -> None
  in
  host.resume ~opt_id:f.Lir.opt_id ~bc_pc:info.Lir.bc_pc ~regs:vals ~result

let do_store t d ~addr ~start ~word =
  (* store-buffer pressure: block when [outstanding_ldst] stores in flight *)
  if t.stq_len >= t.cfg.outstanding_ldst then begin
    let c = Array.unsafe_get t.stq_buf t.stq_head in
    t.stq_head <- (t.stq_head + 1) land t.stq_mask;
    t.stq_len <- t.stq_len - 1;
    if c > t.cycle then begin
      t.cycle <- c;
      t.slots <- 0
    end
  end;
  if Profile.on t.prof then Profile.take t.prof Profile.cost_storeq t.cycle;
  Mem.store t.heap.Heap.mem addr word;
  let done_at = daccess t ~start:(max d start) addr in
  Array.unsafe_set t.stq_buf ((t.stq_head + t.stq_len) land t.stq_mask) done_at;
  t.stq_len <- t.stq_len + 1;
  complete t (max d start + 1)

let falu t d fregs fready fd fa fb op lat =
  let start = max d (max fready.(fa) fready.(fb)) in
  fregs.(fd) <- Fbits.canon (op fregs.(fa) fregs.(fb));
  fready.(fd) <- start + lat;
  complete t fready.(fd)

let branch_resolve t ~opt_id ~pc ~start ~taken =
  let completion = start + 1 in
  complete t completion;
  let correct = Branch.record t.bp ~fn:opt_id ~pc ~taken in
  if not correct then begin
    let restart = completion + t.cfg.branch_mispredict_penalty in
    if restart > t.cycle then begin
      t.cycle <- restart;
      t.slots <- 0
    end
  end;
  if Profile.on t.prof then Profile.take t.prof Profile.cost_branch t.cycle

let cc_request_tagged t ~classid ~line ~pos ~stored =
  (* With the mechanism on, regObjectClassId was set by the preceding
     movClassID. With it off, these opcodes are plain stores and only feed
     the measurement oracle — the ClassID is then computed functionally. *)
  let value_classid =
    if t.mechanism then t.reg_classid else Heap.classid_of t.heap stored
  in
  Tce_core.Oracle.record t.oracle ~classid ~line ~pos ~value_classid;
  if t.mechanism then begin
    let r =
      Tce_core.Class_cache.access t.cc t.cl ~classid ~line ~pos ~value_classid
    in
    if not r.hit then begin
      let addr = Tce_core.Class_list.entry_addr t.cl ~classid ~line in
      let fin = daccess t ~start:t.cycle addr in
      t.cycle <- fin + t.cfg.class_cache_miss_penalty - t.cfg.l1_load_latency;
      t.slots <- 0;
      if Profile.on t.prof then
        Profile.take t.prof Profile.cost_ccmiss t.cycle
    end;
    if r.exn_raised then
      raise
        (Cc_exception
           {
             cc_classid = classid;
             cc_line = line;
             cc_pos = pos;
             cc_value_classid = value_classid;
             cc_victims = r.functions_to_deopt;
           })
  end

(* --- profiler labels --- *)

(* index 0 = a C_check whose kind slot is unattributed *)
let check_labels =
  Array.append [| "check" |]
    (Array.of_list (List.map Categories.check_kind_name Categories.all_check_kinds))

(** Profile label for one pre-decoded instruction: check kinds get their
    paper-figure name, everything else its {!Categories} bucket. *)
let label_of_meta m =
  if m land Predecode.meta_pseudo_bit <> 0 then "profile-op"
  else begin
    let ci = m land Predecode.meta_cat_mask in
    if ci = cat_check_idx then begin
      let slot = (m lsr Predecode.meta_check_shift) land 7 in
      if slot < Array.length check_labels then check_labels.(slot) else "check"
    end
    else
      match Categories.of_index ci with
      | Categories.C_taguntag -> "tags-untags"
      | C_math -> "math"
      | C_ccop -> "cc-op"
      | C_check | C_other -> "other"
  end

(** The profile accumulator for [pf]: find-or-register keyed by
    (opt_id, stream length) — see {!Tce_prof.Profile.register_opt} for why
    the length is part of the key. *)
let prof_acc prof (pf : Predecode.func) =
  let f = pf.Predecode.lf in
  let pcs = Array.length pf.Predecode.meta in
  match Profile.find_opt_acc prof ~id:f.Lir.opt_id ~pcs with
  | Some a -> a
  | None ->
    Profile.register_opt prof ~id:f.Lir.opt_id ~name:f.Lir.name
      ~labels:(Array.map label_of_meta pf.Predecode.meta)

(** Execute optimized code [f] on [args] = [this :: params], returning the
    function result (possibly via a deopt into the interpreter). *)
let run t (host : host) (f : Lir.func) (args : Value.t array) : Value.t =
  let pf = install t f in
  let prof = t.prof in
  let pon = Profile.on prof in
  let pacc = if pon then prof_acc prof pf else Profile.dummy_acc in
  let ops = pf.Predecode.ops and meta = pf.Predecode.meta in
  let regs = Array.make (max f.Lir.n_regs 1) 0 in
  let fregs = Array.make (max f.Lir.n_fregs 1) 0.0 in
  let ready = Array.make (max f.Lir.n_regs 1) t.cycle in
  let fready = Array.make (max f.Lir.n_fregs 1) t.cycle in
  let nargs = min (Array.length args) f.Lir.n_regs in
  Array.blit args 0 regs 0 nargs;
  (* absent parameters read as null *)
  for i = nargs to min (Array.length f.Lir.reprs) f.Lir.n_regs - 1 do
    regs.(i) <- t.heap.Heap.null_v
  done;
  let mem = t.heap.Heap.mem in
  let code_addr = f.Lir.code_addr in
  let opt_id = f.Lir.opt_id in
  let pc = ref 0 in
  let running = ref true in
  let resv = ref 0 in
  let finish v =
    resv := v;
    running := false
  in
  (* Retire-path invariant check (fault campaigns only): a special store
     that retires without raising re-validates this code's own speculation —
     the host's [is_invalidated] runs the engine's staleness check when an
     injector is armed, catching a dropped update or lost notification at
     the very store that broke the profile. Unfaulted, optimized code can
     never be invalidated on this path (exception delivery is synchronous),
     so the check is skipped and timing is untouched. *)
  let post_store_check deopt_id next =
    if Tce_fault.Injector.armed t.fault && host.is_invalidated opt_id
    then begin
      if Tce_obs.Trace.on t.trace then
        Tce_obs.Trace.emit t.trace
          (Tce_obs.Trace.Osr
             { func = f.Lir.name; pc = f.Lir.deopts.(deopt_id).Lir.bc_pc });
      finish (do_deopt t host f regs fregs deopt_id ~result:None)
    end
    else pc := next
  in
  let handle_cc_exception deopt_id info next =
    if t.measuring then
      t.counters.cc_exception_deopts <- t.counters.cc_exception_deopts + 1;
    host.on_cc_exception info;
    if host.is_invalidated opt_id then begin
      (* the running function speculated on the broken slot: OSR out now
         (the store has completed; state is consistent, paper §4.2.2) *)
      if Tce_obs.Trace.on t.trace then
        Tce_obs.Trace.emit t.trace
          (Tce_obs.Trace.Osr
             { func = f.Lir.name; pc = f.Lir.deopts.(deopt_id).Lir.bc_pc });
      finish (do_deopt t host f regs fregs deopt_id ~result:None)
    end
    else pc := next
  in
  (try
     while !running do
       let pc0 = !pc in
       let m = Array.unsafe_get meta pc0 in
       let op = Array.unsafe_get ops pc0 in
       let next = pc0 + 1 in
       if m land Predecode.meta_pseudo_bit <> 0 then begin
         (* measurement pseudo-ops: zero cost *)
         (match op with
         | Predecode.Pprofile (r, line, pos) ->
           if t.measuring then begin
             let classid = Heap.classid_of t.heap regs.(r) in
             Counters.record_obj_load t.counters ~classid ~line ~pos
           end
         | Pprofile_store_r (r, line, pos, vr) ->
           (* records the store in the monomorphism oracle (mechanism-off
              code has no CC request) *)
           let classid = Heap.classid_of t.heap regs.(r) in
           let value_classid = Heap.classid_of t.heap regs.(vr) in
           Tce_core.Oracle.record t.oracle ~classid ~line ~pos ~value_classid
         | Pprofile_store_c (r, line, pos, c) ->
           let classid = Heap.classid_of t.heap regs.(r) in
           Tce_core.Oracle.record t.oracle ~classid ~line ~pos ~value_classid:c
         | _ -> assert false);
         pc := next
       end
       else begin
         (* current attribution site: everything the clock does until the
            next site change books to (this function, this pc) *)
         if pon then Profile.set_site prof pacc pc0;
         let iline = (code_addr + (4 * pc0)) lsr 6 in
         if iline <> t.last_iline then ifetch_slow t iline;
         let d = dispatch_k t ((m lsr Predecode.meta_kind_shift) land 3) in
         count_meta t m;
         match op with
         | Predecode.Pprofile _ | Pprofile_store_r _ | Pprofile_store_c _ ->
           assert false
         | Pmov_imm (r, i) ->
           regs.(r) <- i;
           ready.(r) <- d + 1;
           complete t (d + 1);
           pc := next
         | Pmov (rd, rs) ->
           regs.(rd) <- regs.(rs);
           ready.(rd) <- max d ready.(rs) + 1;
           complete t ready.(rd);
           pc := next
         | Palu_r (a, lat, rd, rs, ro) ->
           let start = max d (max ready.(rs) ready.(ro)) in
           regs.(rd) <- alu_apply a regs.(rs) regs.(ro);
           ready.(rd) <- start + lat;
           complete t ready.(rd);
           pc := next
         | Palu_i (a, lat, rd, rs, i) ->
           let start = max d ready.(rs) in
           regs.(rd) <- alu_apply a regs.(rs) i;
           ready.(rd) <- start + lat;
           complete t ready.(rd);
           pc := next
         | Psh64_r (sc, rd, rs, ro) ->
           (* full-width shifts for tag arithmetic *)
           let start = max d (max ready.(rs) ready.(ro)) in
           let y = regs.(ro) land 63 in
           regs.(rd) <-
             (if sc = 0 then regs.(rs) lsl y
              else if sc = 1 then regs.(rs) lsr y
              else regs.(rs) asr y);
           ready.(rd) <- start + 1;
           complete t ready.(rd);
           pc := next
         | Psh64_i (sc, rd, rs, i) ->
           let start = max d ready.(rs) in
           let y = i land 63 in
           regs.(rd) <-
             (if sc = 0 then regs.(rs) lsl y
              else if sc = 1 then regs.(rs) lsr y
              else regs.(rs) asr y);
           ready.(rd) <- start + 1;
           complete t ready.(rd);
           pc := next
         | Palu32_r (a, lat, rd, rs, ro) ->
           let start = max d (max ready.(rs) ready.(ro)) in
           regs.(rd) <- Value.to_int32 (alu_apply a regs.(rs) regs.(ro));
           ready.(rd) <- start + lat;
           complete t ready.(rd);
           pc := next
         | Palu32_i (a, lat, rd, rs, i) ->
           let start = max d ready.(rs) in
           regs.(rd) <- Value.to_int32 (alu_apply a regs.(rs) i);
           ready.(rd) <- start + lat;
           complete t ready.(rd);
           pc := next
         | Paluov_r (a, lat, rd, rs, ro, target) ->
           let start = max d (max ready.(rs) ready.(ro)) in
           let v = alu_apply a regs.(rs) regs.(ro) in
           ready.(rd) <- start + lat;
           complete t ready.(rd);
           (* tagged-SMI overflow: payload must fit int32 *)
           if Value.smi_fits (v asr 1) then begin
             regs.(rd) <- v;
             pc := next
           end
           else pc := target
         | Paluov_i (a, lat, rd, rs, i, target) ->
           let start = max d ready.(rs) in
           let v = alu_apply a regs.(rs) i in
           ready.(rd) <- start + lat;
           complete t ready.(rd);
           if Value.smi_fits (v asr 1) then begin
             regs.(rd) <- v;
             pc := next
           end
           else pc := target
         | Pload (rd, rb, off) ->
           let addr = regs.(rb) + off in
           let start = max d ready.(rb) in
           regs.(rd) <- Mem.load mem addr;
           ready.(rd) <- daccess t ~start addr;
           complete t ready.(rd);
           pc := next
         | Pchecked_load (rd, rb, off, expected, deopt_id) ->
           (* the class word arrives with the same cache line: the check is
              free in hardware but still *executes* (no removal) *)
           let base = regs.(rb) in
           let addr = base + off in
           let start = max d ready.(rb) in
           let line_base = Tce_vm.Layout.line_base_of_addr addr in
           let w = Mem.load mem line_base in
           if Value.is_smi base || w <> expected then
             finish (do_deopt t host f regs fregs deopt_id ~result:None)
           else begin
             regs.(rd) <- Mem.load mem addr;
             ready.(rd) <- daccess t ~start addr;
             complete t ready.(rd);
             pc := next
           end
         | Pload_idx (rd, rb, ri, off) ->
           let addr = regs.(rb) + (regs.(ri) * 8) + off in
           let start = max d (max ready.(rb) ready.(ri)) in
           regs.(rd) <- Mem.load mem addr;
           ready.(rd) <- daccess t ~start addr;
           complete t ready.(rd);
           pc := next
         | Pfload (fd, rb, off) ->
           let addr = regs.(rb) + off in
           let start = max d ready.(rb) in
           fregs.(fd) <- Fbits.to_float (Mem.load mem addr);
           fready.(fd) <- daccess t ~start addr;
           complete t fready.(fd);
           pc := next
         | Pfload_idx (fd, rb, ri, off) ->
           let addr = regs.(rb) + (regs.(ri) * 8) + off in
           let start = max d (max ready.(rb) ready.(ri)) in
           fregs.(fd) <- Fbits.to_float (Mem.load mem addr);
           fready.(fd) <- daccess t ~start addr;
           complete t fready.(fd);
           pc := next
         | Pstore_r (rb, off, vr) ->
           do_store t d ~addr:(regs.(rb) + off)
             ~start:(max ready.(vr) ready.(rb))
             ~word:regs.(vr);
           pc := next
         | Pstore_i (rb, off, i) ->
           do_store t d ~addr:(regs.(rb) + off) ~start:ready.(rb) ~word:i;
           pc := next
         | Pstore_idx_r (rb, ri, off, vr) ->
           do_store t d
             ~addr:(regs.(rb) + (regs.(ri) * 8) + off)
             ~start:(max ready.(vr) (max ready.(rb) ready.(ri)))
             ~word:regs.(vr);
           pc := next
         | Pstore_idx_i (rb, ri, off, i) ->
           do_store t d
             ~addr:(regs.(rb) + (regs.(ri) * 8) + off)
             ~start:(max ready.(rb) ready.(ri))
             ~word:i;
           pc := next
         | Pfstore (rb, off, fv) ->
           do_store t d ~addr:(regs.(rb) + off)
             ~start:(max fready.(fv) ready.(rb))
             ~word:(Fbits.of_float fregs.(fv));
           pc := next
         | Pfstore_idx (rb, ri, off, fv) ->
           do_store t d
             ~addr:(regs.(rb) + (regs.(ri) * 8) + off)
             ~start:(max fready.(fv) (max ready.(rb) ready.(ri)))
             ~word:(Fbits.of_float fregs.(fv));
           pc := next
         | Pfmov (fd, fs) ->
           fregs.(fd) <- fregs.(fs);
           fready.(fd) <- max d fready.(fs) + 1;
           complete t fready.(fd);
           pc := next
         | Pfmov_imm (fd, x) ->
           (* pre-canonicalized at decode time *)
           fregs.(fd) <- x;
           fready.(fd) <- d + 1;
           complete t fready.(fd);
           pc := next
         | Pfadd (fd, fa, fb) ->
           falu t d fregs fready fd fa fb ( +. ) 3;
           pc := next
         | Pfsub (fd, fa, fb) ->
           falu t d fregs fready fd fa fb ( -. ) 3;
           pc := next
         | Pfmul (fd, fa, fb) ->
           falu t d fregs fready fd fa fb ( *. ) 5;
           pc := next
         | Pfdiv (fd, fa, fb) ->
           falu t d fregs fready fd fa fb ( /. ) 20;
           pc := next
         | Pfsqrt (fd, fs) ->
           fregs.(fd) <- Fbits.canon (sqrt fregs.(fs));
           fready.(fd) <- max d fready.(fs) + fsqrt_lat;
           complete t fready.(fd);
           pc := next
         | Pfneg (fd, fs) ->
           fregs.(fd) <- -.fregs.(fs);
           fready.(fd) <- max d fready.(fs) + 1;
           complete t fready.(fd);
           pc := next
         | Pfabs (fd, fs) ->
           fregs.(fd) <- Float.abs fregs.(fs);
           fready.(fd) <- max d fready.(fs) + 1;
           complete t fready.(fd);
           pc := next
         | Pcvtif (fd, rs) ->
           fregs.(fd) <- float_of_int regs.(rs);
           fready.(fd) <- max d ready.(rs) + flat_lat;
           complete t fready.(fd);
           pc := next
         | Ptruncfi (rd, fs) ->
           regs.(rd) <- Value.js_to_int32_float fregs.(fs);
           ready.(rd) <- max d fready.(fs) + flat_lat;
           complete t ready.(rd);
           pc := next
         | Pbranch_r (c, r, ro, target) ->
           let start = max d (max ready.(r) ready.(ro)) in
           let taken = cond_apply c regs.(r) regs.(ro) in
           branch_resolve t ~opt_id ~pc:pc0 ~start ~taken;
           pc := (if taken then target else next)
         | Pbranch_i (c, r, i, target) ->
           let start = max d ready.(r) in
           let taken = cond_apply c regs.(r) i in
           branch_resolve t ~opt_id ~pc:pc0 ~start ~taken;
           pc := (if taken then target else next)
         | Pfbranch (c, fa, fb, target) ->
           let start = max d (max fready.(fa) fready.(fb)) in
           let taken = fcond_apply c fregs.(fa) fregs.(fb) in
           branch_resolve t ~opt_id ~pc:pc0 ~start ~taken;
           pc := (if taken then target else next)
         | Pjmp target ->
           complete t (d + 1);
           pc := target
         | Pcall_fn (callee, argr, rd, deopt_id, cinstrs) ->
           (* serialize on argument readiness *)
           Array.iter (fun r -> if ready.(r) > t.cycle then t.cycle <- ready.(r)) argr;
           t.slots <- 0;
           charge_rt_i t ~pcost:Profile.cost_call ~cat_idx:cat_other_idx
             ~instrs:cinstrs ~cycles:8;
           let argv = Array.map (fun r -> regs.(r)) argr in
           let v = host.call_fn callee argv in
           (* the callee (a nested run) moved the attribution site; any
              cycles this frame still books (deopt below, next dispatch)
              belong to this call site again *)
           if pon then Profile.set_site prof pacc pc0;
           if host.is_invalidated opt_id then begin
             (* on-stack replacement: this frame's code died during the call *)
             if Tce_obs.Trace.on t.trace then
               Tce_obs.Trace.emit t.trace
                 (Tce_obs.Trace.Osr
                    { func = f.Lir.name; pc = f.Lir.deopts.(deopt_id).Lir.bc_pc });
             finish (do_deopt t host f regs fregs deopt_id ~result:(Some v))
           end
           else begin
             regs.(rd) <- v;
             ready.(rd) <- t.cycle + 1;
             pc := next
           end
         | Pcall_rt_chk (rt, argr, rd, deopt_id, cinstrs, ccycles) ->
           Array.iter (fun r -> if ready.(r) > t.cycle then t.cycle <- ready.(r)) argr;
           charge_rt_i t ~pcost:Profile.cost_rt
             ~cat_idx:(m land Predecode.meta_cat_mask) ~instrs:cinstrs
             ~cycles:ccycles;
           let argv = Array.map (fun r -> regs.(r)) argr in
           let v, _ = host.rt_call rt argv [||] in
           if rd >= 0 then begin
             regs.(rd) <- v;
             ready.(rd) <- t.cycle + 1
           end;
           if host.is_invalidated opt_id then begin
             (* the stub's store retired a profile this code speculates on *)
             if Tce_obs.Trace.on t.trace then
               Tce_obs.Trace.emit t.trace
                 (Tce_obs.Trace.Osr
                    { func = f.Lir.name; pc = f.Lir.deopts.(deopt_id).Lir.bc_pc });
             finish
               (do_deopt t host f regs fregs deopt_id
                  ~result:(if rd >= 0 then Some v else None))
           end
           else pc := next
         | Pcall_rt (rt, argr, fargr, rd, fd, cinstrs, ccycles) ->
           Array.iter (fun r -> if ready.(r) > t.cycle then t.cycle <- ready.(r)) argr;
           Array.iter (fun r -> if fready.(r) > t.cycle then t.cycle <- fready.(r)) fargr;
           charge_rt_i t ~pcost:Profile.cost_rt
             ~cat_idx:(m land Predecode.meta_cat_mask) ~instrs:cinstrs
             ~cycles:ccycles;
           let argv = Array.map (fun r -> regs.(r)) argr in
           let fargv = Array.map (fun r -> fregs.(r)) fargr in
           let v, fv = host.rt_call rt argv fargv in
           if rd >= 0 then begin
             regs.(rd) <- v;
             ready.(rd) <- t.cycle + 1
           end;
           if fd >= 0 then begin
             fregs.(fd) <- fv;
             fready.(fd) <- t.cycle + 1
           end;
           pc := next
         | Pret r ->
           complete t (d + 1);
           finish regs.(r)
         | Pdeopt deopt_id ->
           finish (do_deopt t host f regs fregs deopt_id ~result:None)
         | Pmov_classid r ->
           let v = regs.(r) in
           if Value.is_smi v then begin
             t.reg_classid <- Tce_vm.Layout.smi_classid;
             complete t (d + 1)
           end
           else begin
             let addr = Value.ptr_addr v in
             t.reg_classid <- Heap.classid_of t.heap v;
             complete t (daccess t ~start:(max d ready.(r)) addr)
           end;
           pc := next
         | Pmov_classid_arr (k, r) ->
           let v = regs.(r) in
           if Value.is_smi v then begin
             (* hoisted loads may execute speculatively with a non-object
                value (loop body never entered); behave like movClassID *)
             t.reg_classid_arr.(k) <- Tce_vm.Layout.smi_classid;
             complete t (d + 1)
           end
           else begin
             let addr = Value.ptr_addr v in
             t.reg_classid_arr.(k) <- Heap.classid_of t.heap v;
             complete t (daccess t ~start:(max d ready.(r)) addr)
           end;
           pc := next
         | Pstore_cc_r (rb, off, vr, deopt_id) -> (
           let addr = regs.(rb) + off in
           do_store t d ~addr ~start:(max ready.(vr) ready.(rb))
             ~word:regs.(vr);
           (* the memory unit recovers (ClassID, Line, slot) from the line *)
           let line_base = Tce_vm.Layout.line_base_of_addr addr in
           let w = Mem.load mem line_base in
           let classid = Tce_vm.Layout.classid_of_class_word w in
           let line = Tce_vm.Layout.line_of_class_word w in
           let pos = Tce_vm.Layout.slot_pos_of_addr addr in
           try
             cc_request_tagged t ~classid ~line ~pos ~stored:regs.(vr);
             post_store_check deopt_id next
           with Cc_exception fns -> handle_cc_exception deopt_id fns next)
         | Pstore_cc_i (rb, off, i, deopt_id) -> (
           let addr = regs.(rb) + off in
           do_store t d ~addr ~start:ready.(rb) ~word:i;
           let line_base = Tce_vm.Layout.line_base_of_addr addr in
           let w = Mem.load mem line_base in
           let classid = Tce_vm.Layout.classid_of_class_word w in
           let line = Tce_vm.Layout.line_of_class_word w in
           let pos = Tce_vm.Layout.slot_pos_of_addr addr in
           try
             cc_request_tagged t ~classid ~line ~pos ~stored:i;
             post_store_check deopt_id next
           with Cc_exception fns -> handle_cc_exception deopt_id fns next)
         | Pstore_cca_r (k, rb, ri, off, vr, deopt_id) -> (
           let addr = regs.(rb) + (regs.(ri) * 8) + off in
           do_store t d ~addr
             ~start:(max ready.(vr) (max ready.(rb) ready.(ri)))
             ~word:regs.(vr);
           let classid = t.reg_classid_arr.(k) in
           try
             cc_request_tagged t ~classid ~line:0
               ~pos:Tce_vm.Layout.elements_ptr_slot ~stored:regs.(vr);
             post_store_check deopt_id next
           with Cc_exception fns -> handle_cc_exception deopt_id fns next)
         | Pstore_cca_i (k, rb, ri, off, i, deopt_id) -> (
           let addr = regs.(rb) + (regs.(ri) * 8) + off in
           do_store t d ~addr ~start:(max ready.(rb) ready.(ri)) ~word:i;
           let classid = t.reg_classid_arr.(k) in
           try
             cc_request_tagged t ~classid ~line:0
               ~pos:Tce_vm.Layout.elements_ptr_slot ~stored:i;
             post_store_check deopt_id next
           with Cc_exception fns -> handle_cc_exception deopt_id fns next)
       end
     done
   with Cc_exception _ -> assert false);
  !resv
