(** Bimodal branch predictor: a table of 2-bit saturating counters indexed
    by a hash of (function id, pc). *)

type stats = { mutable branches : int; mutable mispredicts : int }

type t = { table : int array; mask : int; stats : stats }

let create ?(bits = 16) () =
  let n = 1 lsl bits in
  { table = Array.make n 1; mask = n - 1; stats = { branches = 0; mispredicts = 0 } }

let index t ~fn ~pc = ((fn * 4096) + (pc * 7)) land t.mask

(** Record an executed conditional branch outcome; returns [true] if the
    prediction was correct. *)
let record t ~fn ~pc ~taken =
  let i = index t ~fn ~pc in
  let c = t.table.(i) in
  let predicted_taken = c >= 2 in
  t.stats.branches <- t.stats.branches + 1;
  let correct = predicted_taken = taken in
  if not correct then t.stats.mispredicts <- t.stats.mispredicts + 1;
  (* int-specialized saturation: Stdlib.min/max are generic-compare calls *)
  t.table.(i) <- (if taken then (if c >= 3 then 3 else c + 1)
                  else if c <= 0 then 0
                  else c - 1);
  correct

let mispredict_rate t =
  if t.stats.branches = 0 then 0.0
  else float_of_int t.stats.mispredicts /. float_of_int t.stats.branches

let reset_stats t =
  t.stats.branches <- 0;
  t.stats.mispredicts <- 0
