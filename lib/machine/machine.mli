(** Cycle-level execution of optimized (LIR) code: 4-wide in-order-dispatch /
    out-of-order-completion scoreboard with a bounded window, load/store
    ports, L1I/L1D/L2, D/I-TLBs, branch prediction, MSHR fill merging, and
    the Class Cache — parameters from {!Config} (the paper's Table 2).
    A research-grade MARSS substitute (DESIGN.md §2).

    The executor runs the {!Predecode} stream (decoded once per installed
    compilation), and the run loop is allocation-free — see
    lib/machine/README.md. *)

exception Trap of string

(** A misspeculation exception with the faulting-store context attached —
    what broke, where, and who has to deopt (the attribution ledger's
    causal-chain anchor). *)
type cc_exn_info = {
  cc_classid : int;
  cc_line : int;
  cc_pos : int;
  cc_value_classid : int;
  cc_victims : int list;  (** opt_ids from the slot's FunctionList *)
}

(** Callbacks into the engine (tier driver). *)
type host = {
  call_fn : int -> Tce_vm.Value.t array -> Tce_vm.Value.t;
      (** call guest function [fn_id] with [this :: args] *)
  resume :
    opt_id:int -> bc_pc:int -> regs:Tce_vm.Value.t array ->
    result:(int * Tce_vm.Value.t) option -> Tce_vm.Value.t;
      (** deoptimization: resume the interpreter on the code's (shadow)
          bytecode *)
  rt_call :
    Tce_jit.Lir.rt -> Tce_vm.Value.t array -> float array ->
    Tce_vm.Value.t * float;
  on_cc_exception : cc_exn_info -> unit;
      (** misspeculation exception: invalidate the victim opt_ids *)
  on_deopt : int -> unit;  (** a check failed in this opt_id *)
  is_invalidated : int -> bool;
}

(** A compiled superinstruction template: fused straight-line closures per
    basic block, bit-identical to the per-instruction loop (see
    lib/machine/README.md, "Template fusion invariants"). Abstract — built
    and consumed inside {!run}. *)
type template

(** A pooled per-run template environment (register files and control
    state). Abstract — recycled across guest calls via [env_pool]. *)
type tenv

type t = {
  cfg : Config.t;
  heap : Tce_vm.Heap.t;
  cc : Tce_core.Class_cache.t;
  cl : Tce_core.Class_list.t;
  oracle : Tce_core.Oracle.t;
  counters : Counters.t;
  l1d : Cache.t;
  l1i : Cache.t;
  l2 : Cache.t;
  dtlb : Tlb.t;
  itlb : Tlb.t;
  bp : Branch.t;
  mechanism : bool;
  mutable cycle : int;  (** monotonic dispatch clock *)
  mutable clock_base_instrs : int;
      (** baseline-tier instructions since creation, counted regardless of
          [measuring] — the measurement-independent input to the engine's
          observability/backoff clock *)
  mutable slots : int;
  mutable load_slots : int;
  mutable store_slots : int;
  win_buf : int array;  (** in-flight completion times (ring buffer) *)
  win_mask : int;
  mutable win_head : int;
  mutable win_len : int;
  stq_buf : int array;  (** in-flight store completion times (ring buffer) *)
  stq_mask : int;
  mutable stq_head : int;
  mutable stq_len : int;
  mutable last_iline : int;
  fills : Tce_support.Int_table.t;
      (** in-flight line fills (MSHR merging); 0 = none *)
  pre_cache : (int, Predecode.func) Hashtbl.t;
      (** decoded streams keyed by [opt_id] *)
  mutable measuring : bool;
  trace : Tce_obs.Trace.t;
      (** observability sink (deopt / OSR events; never affects timing) *)
  fault : Tce_fault.Injector.t;
      (** fault injector ({!Tce_fault.Injector.null} = disarmed): OSR-fail
          injection and retire-path re-validation of special stores *)
  attr : Tce_attr.Ledger.t;
      (** attribution ledger ({!Tce_attr.Ledger.null} = disabled): typed
          deopt reasons; never affects timing *)
  prof : Tce_prof.Profile.t;
      (** cycle-attribution profiler ({!Tce_prof.Profile.null} = disabled):
          every clock-advancing site reports its delta to the current
          (function, pc) site; reads timing state, never writes it, so
          simulated cycles are bit-identical with it on or off *)
  mutable reg_classid : int;  (** regObjectClassId (paper §4.2.1.2) *)
  reg_classid_arr : int array;  (** regArrayObjectClassId 0-3 *)
  templates : bool;
      (** fuse pre-decoded streams into superinstruction templates — a pure
          speedup, bit-identical simulated state *)
  tpl_cache : (int, Predecode.func * template option) Hashtbl.t;
      (** compiled templates keyed like [pre_cache]; [None] = stream
          rejected by {!Template.layout}, stay on the per-instruction loop *)
  mutable env_pool : tenv list;
      (** free list of per-run template environments (register-file reuse) *)
}

val create :
  ?cfg:Config.t -> ?mechanism:bool -> ?trace:Tce_obs.Trace.t ->
  ?fault:Tce_fault.Injector.t -> ?attr:Tce_attr.Ledger.t ->
  ?prof:Tce_prof.Profile.t -> ?templates:bool -> heap:Tce_vm.Heap.t ->
  cc:Tce_core.Class_cache.t -> cl:Tce_core.Class_list.t ->
  oracle:Tce_core.Oracle.t -> counters:Counters.t -> unit -> t

(** Pre-decode [f] into the machine's stream cache (idempotent; keyed by
    [opt_id] with a physical-equality guard). {!run} installs lazily, so
    calling this at compile-install time just moves the decode cost off the
    first execution. *)
val install : t -> Tce_jit.Lir.func -> Predecode.func

(** Model a fresh allocation as nursery-resident (DESIGN.md §5b): insert its
    lines into the D-caches without cost. *)
val prefill : t -> addr:int -> bytes:int -> unit

(** Execute optimized code on [this :: params], returning the function
    result (possibly produced by a deoptimized continuation). *)
val run : t -> host -> Tce_jit.Lir.func -> Tce_vm.Value.t array -> Tce_vm.Value.t
