(** Dynamic-execution counters shared by both tiers. Everything the paper's
    figures need is derived from these. *)

type t = {
  by_cat : int array;  (** optimized-tier instructions by {!Tce_jit.Categories} *)
  by_check_kind : int array;
      (** [C_check] executions by {!Tce_jit.Categories.check_kind}, indexed
          by {!Tce_jit.Categories.check_kind_slot} (slot 0 = unattributed;
          reconciliation asserts it stays 0 and the sum equals
          [by_cat.(index C_check)]) *)
  mutable guards_obj_load : int;
      (** checks (incl. untag guards) verifying values obtained from object
          property / elements loads — Figure 2's population *)
  mutable opt_loads : int;
  mutable opt_stores : int;
  mutable opt_branches : int;
  mutable opt_fp : int;
  mutable opt_cycles : int;
  mutable baseline_instrs : int;
  mutable baseline_cycles : float;
  mutable deopts : int;
  mutable cc_exception_deopts : int;
  mutable tierups : int;
  obj_loads : Tce_support.Int_table.t;
      (** dynamic object-load accesses per (classid, line, pos) oracle key;
          elements loads are the key with line=0, pos=2 (Figure 3) *)
  mutable obj_loads_first_line : int;  (** §5.3.4: property loads hitting line 0 *)
  mutable obj_loads_total : int;
}

let create () =
  {
    by_cat = Array.make Tce_jit.Categories.count 0;
    by_check_kind = Array.make (Tce_jit.Categories.check_kind_count + 1) 0;
    guards_obj_load = 0;
    opt_loads = 0;
    opt_stores = 0;
    opt_branches = 0;
    opt_fp = 0;
    opt_cycles = 0;
    baseline_instrs = 0;
    baseline_cycles = 0.0;
    deopts = 0;
    cc_exception_deopts = 0;
    tierups = 0;
    obj_loads = Tce_support.Int_table.create ~size:256 ();
    obj_loads_first_line = 0;
    obj_loads_total = 0;
  }

let reset t =
  Array.fill t.by_cat 0 (Array.length t.by_cat) 0;
  Array.fill t.by_check_kind 0 (Array.length t.by_check_kind) 0;
  t.guards_obj_load <- 0;
  t.opt_loads <- 0;
  t.opt_stores <- 0;
  t.opt_branches <- 0;
  t.opt_fp <- 0;
  t.opt_cycles <- 0;
  t.baseline_instrs <- 0;
  t.baseline_cycles <- 0.0;
  t.deopts <- 0;
  t.cc_exception_deopts <- 0;
  t.tierups <- 0;
  Tce_support.Int_table.clear t.obj_loads;
  t.obj_loads_first_line <- 0;
  t.obj_loads_total <- 0

(** Snapshot for window measurements: counting is purely additive, so the
    counters over a window are the end-state minus a snapshot taken at the
    window's start ({!since}) — which lets one execution serve both the
    whole-run and the steady-state measurement. *)
let copy t =
  {
    by_cat = Array.copy t.by_cat;
    by_check_kind = Array.copy t.by_check_kind;
    guards_obj_load = t.guards_obj_load;
    opt_loads = t.opt_loads;
    opt_stores = t.opt_stores;
    opt_branches = t.opt_branches;
    opt_fp = t.opt_fp;
    opt_cycles = t.opt_cycles;
    baseline_instrs = t.baseline_instrs;
    baseline_cycles = t.baseline_cycles;
    deopts = t.deopts;
    cc_exception_deopts = t.cc_exception_deopts;
    tierups = t.tierups;
    obj_loads = Tce_support.Int_table.copy t.obj_loads;
    obj_loads_first_line = t.obj_loads_first_line;
    obj_loads_total = t.obj_loads_total;
  }

(** [since t snap] is a fresh counter record holding [t - snap] — exactly
    what a reset at the snapshot point followed by the same execution
    would have accumulated (all counters only ever increment). *)
let since t snap =
  let d = create () in
  Array.iteri (fun i v -> d.by_cat.(i) <- v - snap.by_cat.(i)) t.by_cat;
  Array.iteri
    (fun i v -> d.by_check_kind.(i) <- v - snap.by_check_kind.(i))
    t.by_check_kind;
  d.guards_obj_load <- t.guards_obj_load - snap.guards_obj_load;
  d.opt_loads <- t.opt_loads - snap.opt_loads;
  d.opt_stores <- t.opt_stores - snap.opt_stores;
  d.opt_branches <- t.opt_branches - snap.opt_branches;
  d.opt_fp <- t.opt_fp - snap.opt_fp;
  d.opt_cycles <- t.opt_cycles - snap.opt_cycles;
  d.baseline_instrs <- t.baseline_instrs - snap.baseline_instrs;
  d.baseline_cycles <- t.baseline_cycles -. snap.baseline_cycles;
  d.deopts <- t.deopts - snap.deopts;
  d.cc_exception_deopts <- t.cc_exception_deopts - snap.cc_exception_deopts;
  d.tierups <- t.tierups - snap.tierups;
  Tce_support.Int_table.iter
    (fun key count ->
      let before = Tce_support.Int_table.find snap.obj_loads key 0 in
      if count - before > 0 then
        Tce_support.Int_table.set d.obj_loads key (count - before))
    t.obj_loads;
  d.obj_loads_first_line <- t.obj_loads_first_line - snap.obj_loads_first_line;
  d.obj_loads_total <- t.obj_loads_total - snap.obj_loads_total;
  d

let add_cat t cat n =
  t.by_cat.(Tce_jit.Categories.index cat) <- t.by_cat.(Tce_jit.Categories.index cat) + n

let opt_instrs t = Array.fold_left ( + ) 0 t.by_cat

let total_instrs t = opt_instrs t + t.baseline_instrs

let cat t cat = t.by_cat.(Tce_jit.Categories.index cat)

(** Record one dynamic object-load access (property or element) targeting
    the Class List slot [(classid, line, pos)]. *)
let record_obj_load t ~classid ~line ~pos =
  let key = (((classid lsl 8) lor line) lsl 3) lor pos in
  Tce_support.Int_table.set t.obj_loads key
    (1 + Tce_support.Int_table.find t.obj_loads key 0);
  t.obj_loads_total <- t.obj_loads_total + 1;
  if line = 0 then t.obj_loads_first_line <- t.obj_loads_first_line + 1

(** Figure 3 classification against a full-run oracle:
    [(mono_prop, mono_elem, poly_prop, poly_elem)] dynamic access counts. *)
let classify_obj_loads t (oracle : Tce_core.Oracle.t) =
  Tce_support.Int_table.fold
    (fun key count (mp, me, pp, pe) ->
      let pos = key land 7 in
      let line = (key lsr 3) land 0xff in
      let classid = (key lsr 11) land 0xff in
      let mono = Tce_core.Oracle.is_monomorphic oracle ~classid ~line ~pos in
      let is_elem = line = 0 && pos = Tce_vm.Layout.elements_ptr_slot in
      match (mono, is_elem) with
      | true, false -> (mp + count, me, pp, pe)
      | true, true -> (mp, me + count, pp, pe)
      | false, false -> (mp, me, pp + count, pe)
      | false, true -> (mp, me, pp, pe + count))
    t.obj_loads (0, 0, 0, 0)
