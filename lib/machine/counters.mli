(** Dynamic-execution counters shared by both tiers — everything the paper's
    figures are derived from. *)

type t = {
  by_cat : int array;  (** optimized-tier instructions per {!Tce_jit.Categories} *)
  by_check_kind : int array;
      (** [C_check] executions per {!Tce_jit.Categories.check_kind}, indexed
          by {!Tce_jit.Categories.check_kind_slot} (slot 0 = unattributed) *)
  mutable guards_obj_load : int;
      (** checks (incl. untag guards) verifying values obtained from object
          loads — Figure 2's population *)
  mutable opt_loads : int;
  mutable opt_stores : int;
  mutable opt_branches : int;
  mutable opt_fp : int;
  mutable opt_cycles : int;
  mutable baseline_instrs : int;
  mutable baseline_cycles : float;
  mutable deopts : int;
  mutable cc_exception_deopts : int;
  mutable tierups : int;
  obj_loads : Tce_support.Int_table.t;
  mutable obj_loads_first_line : int;
  mutable obj_loads_total : int;
}

val create : unit -> t
val reset : t -> unit

(** Independent snapshot of every counter (including per-site tables). *)
val copy : t -> t

(** [since t snap] is a fresh record holding [t - snap]: what a reset at
    the snapshot point followed by the same execution would have counted
    (all counters are strictly additive). *)
val since : t -> t -> t

val add_cat : t -> Tce_jit.Categories.t -> int -> unit
val opt_instrs : t -> int
val total_instrs : t -> int
val cat : t -> Tce_jit.Categories.t -> int

(** Record one dynamic object-load access targeting [(classid, line, pos)]. *)
val record_obj_load : t -> classid:int -> line:int -> pos:int -> unit

(** Figure 3 against a full-run oracle:
    [(mono prop, mono elem, poly prop, poly elem)] access counts. *)
val classify_obj_loads : t -> Tce_core.Oracle.t -> int * int * int * int
