(** Set-associative cache timing model (LRU, write-allocate). Tracks hits
    and misses only — data lives in [Tce_vm.Mem]; this is purely the timing
    side. Used for L1I, L1D and L2. *)

type stats = { mutable accesses : int; mutable hits : int; mutable misses : int }

type t = {
  line_bits : int;
  nsets : int;
  set_mask : int;
      (** [nsets - 1] when [nsets] is a power of two (every Table 2
          geometry), so set selection is a mask instead of a [mod]; -1
          otherwise *)
  ways : int;
  tags : int array array;  (** [tags.(set).(way)]; -1 = invalid *)
  lru : int array array;
  mutable clock : int;
  stats : stats;
}

let log2_exact n =
  let rec go n b = if n <= 1 then b else go (n / 2) (b + 1) in
  go n 0

let create ~size_kb ~ways ~line_bytes =
  let lines = size_kb * 1024 / line_bytes in
  let nsets = max 1 (lines / ways) in
  {
    line_bits = log2_exact line_bytes;
    nsets;
    set_mask = (if nsets land (nsets - 1) = 0 then nsets - 1 else -1);
    ways;
    tags = Array.init nsets (fun _ -> Array.make ways (-1));
    lru = Array.init nsets (fun _ -> Array.make ways 0);
    clock = 0;
    stats = { accesses = 0; hits = 0; misses = 0 };
  }

(* line >= 0 always (addresses are non-negative), so the mask is exactly
   [line mod nsets]. *)
let set_of t line = if t.set_mask >= 0 then line land t.set_mask else line mod t.nsets

(** Access the line containing [addr]; fills on miss. Returns [true] on hit. *)
let access t addr =
  let line = addr lsr t.line_bits in
  let set = set_of t line in
  let tags = t.tags.(set) and lru = t.lru.(set) in
  t.clock <- t.clock + 1;
  t.stats.accesses <- t.stats.accesses + 1;
  let hit = ref false in
  for w = 0 to t.ways - 1 do
    if tags.(w) = line then begin
      hit := true;
      lru.(w) <- t.clock
    end
  done;
  if !hit then t.stats.hits <- t.stats.hits + 1
  else begin
    t.stats.misses <- t.stats.misses + 1;
    let victim = ref 0 in
    for w = 0 to t.ways - 1 do
      if tags.(w) = -1 then victim := w
      else if tags.(!victim) <> -1 && lru.(w) < lru.(!victim) then victim := w
    done;
    tags.(!victim) <- line;
    lru.(!victim) <- t.clock
  end;
  !hit

(** Insert the line containing [addr] without touching statistics (used to
    model allocation into a cache-resident nursery; see DESIGN.md). *)
let insert t addr =
  let line = addr lsr t.line_bits in
  let set = set_of t line in
  let tags = t.tags.(set) and lru = t.lru.(set) in
  t.clock <- t.clock + 1;
  let present = ref false in
  for w = 0 to t.ways - 1 do
    if tags.(w) = line then present := true
  done;
  if not !present then begin
    let victim = ref 0 in
    for w = 0 to t.ways - 1 do
      if tags.(w) = -1 then victim := w
      else if tags.(!victim) <> -1 && lru.(w) < lru.(!victim) then victim := w
    done;
    tags.(!victim) <- line;
    lru.(!victim) <- t.clock
  end

let hit_rate t =
  if t.stats.accesses = 0 then 1.0
  else float_of_int t.stats.hits /. float_of_int t.stats.accesses

let reset_stats t =
  t.stats.accesses <- 0;
  t.stats.hits <- 0;
  t.stats.misses <- 0
