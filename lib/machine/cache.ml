(** Set-associative cache timing model (LRU, write-allocate). Tracks hits
    and misses only — data lives in [Tce_vm.Mem]; this is purely the timing
    side. Used for L1I, L1D and L2. *)

type stats = { mutable accesses : int; mutable hits : int; mutable misses : int }

type t = {
  line_bits : int;
  nsets : int;
  set_mask : int;
      (** [nsets - 1] when [nsets] is a power of two (every Table 2
          geometry), so set selection is a mask instead of a [mod]; -1
          otherwise *)
  ways : int;
  tags : int array array;  (** [tags.(set).(way)]; -1 = invalid *)
  lru : int array array;
  mutable clock : int;
  stats : stats;
}

let log2_exact n =
  let rec go n b = if n <= 1 then b else go (n / 2) (b + 1) in
  go n 0

let create ~size_kb ~ways ~line_bytes =
  let lines = size_kb * 1024 / line_bytes in
  let nsets = max 1 (lines / ways) in
  {
    line_bits = log2_exact line_bytes;
    nsets;
    set_mask = (if nsets land (nsets - 1) = 0 then nsets - 1 else -1);
    ways;
    tags = Array.init nsets (fun _ -> Array.make ways (-1));
    lru = Array.init nsets (fun _ -> Array.make ways 0);
    clock = 0;
    stats = { accesses = 0; hits = 0; misses = 0 };
  }

(* line >= 0 always (addresses are non-negative), so the mask is exactly
   [line mod nsets]. *)
let set_of t line = if t.set_mask >= 0 then line land t.set_mask else line mod t.nsets

(** Access the line containing [addr]; fills on miss. Returns [true] on hit.

    Both scans are tail-recursive loops rather than [ref]-based ones: a
    line lives in at most one way, so early exit is equivalent to the
    reference full scan, and avoiding the ref cells keeps the hot hit path
    allocation-free (classic mode heap-allocates local refs). The victim
    choice — last empty way if any, else the first way with the strictly
    smallest LRU stamp — is bit-identical to the reference model. *)
let access t addr =
  let line = addr lsr t.line_bits in
  let set = set_of t line in
  let tags = t.tags.(set) and lru = t.lru.(set) in
  t.clock <- t.clock + 1;
  t.stats.accesses <- t.stats.accesses + 1;
  let ways = t.ways in
  let rec scan w =
    if w >= ways then -1
    else if Array.unsafe_get tags w = line then w
    else scan (w + 1)
  in
  let hw = scan 0 in
  if hw >= 0 then begin
    Array.unsafe_set lru hw t.clock;
    t.stats.hits <- t.stats.hits + 1
  end
  else begin
    t.stats.misses <- t.stats.misses + 1;
    let rec pick w v =
      if w >= ways then v
      else if Array.unsafe_get tags w = -1 then pick (w + 1) w
      else if
        Array.unsafe_get tags v <> -1
        && Array.unsafe_get lru w < Array.unsafe_get lru v
      then pick (w + 1) w
      else pick (w + 1) v
    in
    let victim = pick 0 0 in
    tags.(victim) <- line;
    lru.(victim) <- t.clock
  end;
  hw >= 0

(** Insert the line containing [addr] without touching statistics (used to
    model allocation into a cache-resident nursery; see DESIGN.md). *)
let insert t addr =
  let line = addr lsr t.line_bits in
  let set = set_of t line in
  let tags = t.tags.(set) and lru = t.lru.(set) in
  t.clock <- t.clock + 1;
  let ways = t.ways in
  let rec scan w =
    if w >= ways then false
    else Array.unsafe_get tags w = line || scan (w + 1)
  in
  if not (scan 0) then begin
    let rec pick w v =
      if w >= ways then v
      else if Array.unsafe_get tags w = -1 then pick (w + 1) w
      else if
        Array.unsafe_get tags v <> -1
        && Array.unsafe_get lru w < Array.unsafe_get lru v
      then pick (w + 1) w
      else pick (w + 1) v
    in
    let victim = pick 0 0 in
    tags.(victim) <- line;
    lru.(victim) <- t.clock
  end

let hit_rate t =
  if t.stats.accesses = 0 then 1.0
  else float_of_int t.stats.hits /. float_of_int t.stats.accesses

let reset_stats t =
  t.stats.accesses <- 0;
  t.stats.hits <- 0;
  t.stats.misses <- 0
