(** Superinstruction-template layout: split a pre-decoded stream into
    straight-line basic blocks that the machine can execute as fused
    closures (see lib/machine/README.md, "Template fusion invariants").

    This module is the pure analysis half: which pcs lead blocks, where
    each block ends, and the en-bloc counter summary the executor applies
    once per block entry instead of once per instruction. The closure
    compilation (the half that needs {!Machine.t}'s timing primitives)
    lives in machine.ml; keeping the layout separate makes it independently
    testable against the 39 LIR constructors (test/test_template.ml).

    Invariants the layout guarantees (and the executor relies on):
    - every control-flow successor of a block (branch target, fall-through
      after a terminator) is a block leader, so the templated run loop only
      ever enters blocks at their first instruction;
    - non-terminator instructions never leave the block (no deopt, no
      exception, no host call), so the per-block counter summary is exactly
      what per-instruction counting would have accumulated;
    - measurement pseudo-ops are transparent: zero timing cost, excluded
      from the summary (the per-instruction loop never counts them), and
      ignored by the I-cache line analysis (they never fetch). *)

open Tce_jit

(** Does this instruction end a basic block? Anything that can change the
    pc non-sequentially, leave optimized code (deopt, return, Class Cache
    exception) or call into the host splits the stream here. *)
let is_terminator (p : Predecode.pre) =
  match p with
  | Predecode.Paluov_r _ | Paluov_i _  (* overflow branch *)
  | Pchecked_load _  (* may deopt *)
  | Pbranch_r _ | Pbranch_i _ | Pfbranch _ | Pjmp _
  | Pcall_fn _  (* host call; may OSR out *)
  | Pcall_rt_chk _ | Pcall_rt _  (* runtime stubs run host code *)
  | Pret _ | Pdeopt _
  | Pstore_cc_r _ | Pstore_cc_i _ | Pstore_cca_r _
  | Pstore_cca_i _  (* may raise a CC exception *) ->
    true
  | Pprofile _ | Pprofile_store_r _ | Pprofile_store_c _ | Pmov_imm _ | Pmov _
  | Palu_r _ | Palu_i _ | Psh64_r _ | Psh64_i _ | Palu32_r _ | Palu32_i _
  | Pload _ | Pload_idx _ | Pfload _ | Pfload_idx _ | Pstore_r _ | Pstore_i _
  | Pstore_idx_r _ | Pstore_idx_i _ | Pfstore _ | Pfstore_idx _ | Pfmov _
  | Pfmov_imm _ | Pfadd _ | Pfsub _ | Pfmul _ | Pfdiv _ | Pfsqrt _ | Pfneg _
  | Pfabs _ | Pcvtif _ | Ptruncfi _ | Pmov_classid _ | Pmov_classid_arr _ ->
    false

(** Static in-stream successor targets of a terminator (deopt exits leave
    the function and have no in-stream target). *)
let targets (p : Predecode.pre) =
  match p with
  | Predecode.Paluov_r (_, _, _, _, _, tgt) | Paluov_i (_, _, _, _, _, tgt)
  | Pbranch_r (_, _, _, tgt) | Pbranch_i (_, _, _, tgt)
  | Pfbranch (_, _, _, tgt) | Pjmp tgt ->
    [ tgt ]
  | _ -> []

(** Can this terminator continue at [pc + 1]? (Everything except the three
    unconditional exits.) A fall-through terminator as the stream's last
    instruction would publish pc = n, so {!layout} rejects it. *)
let falls_through (p : Predecode.pre) =
  match p with Predecode.Pret _ | Pdeopt _ | Pjmp _ -> false | _ -> true

(** Every register operand in range ([0, n_regs) ints, [0, n_fregs)
    floats, classid-array indices 0-3)? The templated executor compiles
    operand accesses to unchecked loads and stores (the register files are
    sized once per run), so an out-of-range index must reject the stream —
    the per-instruction loop keeps the checked accesses and fails exactly
    as the reference executor would. *)
let regs_in_range (pf : Predecode.func) : bool =
  let nr = pf.Predecode.lf.Lir.n_regs and nf = pf.Predecode.lf.Lir.n_fregs in
  let r i = i >= 0 && i < nr in
  let fr i = i >= 0 && i < nf in
  (* rd / fd = -1 means "no destination" on runtime-stub calls *)
  let opt i = i < 0 || i < nr in
  let fopt i = i < 0 || i < nf in
  let k4 k = k >= 0 && k < 4 in
  let all p a = Array.for_all p a in
  Array.for_all
    (fun (op : Predecode.pre) ->
      match op with
      | Predecode.Pprofile (x, _, _) | Pprofile_store_c (x, _, _, _) -> r x
      | Pprofile_store_r (x, _, _, v) -> r x && r v
      | Pmov_imm (x, _) | Pret x | Pmov_classid x -> r x
      | Pmov (a, b) -> r a && r b
      | Palu_r (_, _, a, b, c) | Palu32_r (_, _, a, b, c) | Psh64_r (_, a, b, c)
        ->
        r a && r b && r c
      | Palu_i (_, _, a, b, _) | Palu32_i (_, _, a, b, _) | Psh64_i (_, a, b, _)
        ->
        r a && r b
      | Paluov_r (_, _, a, b, c, _) -> r a && r b && r c
      | Paluov_i (_, _, a, b, _, _) -> r a && r b
      | Pload (a, b, _) | Pchecked_load (a, b, _, _, _) -> r a && r b
      | Pload_idx (a, b, c, _) -> r a && r b && r c
      | Pfload (fd, b, _) -> fr fd && r b
      | Pfload_idx (fd, b, c, _) -> fr fd && r b && r c
      | Pstore_r (b, _, v) -> r b && r v
      | Pstore_i (b, _, _) -> r b
      | Pstore_idx_r (b, i, _, v) -> r b && r i && r v
      | Pstore_idx_i (b, i, _, _) -> r b && r i
      | Pfstore (b, _, fv) -> r b && fr fv
      | Pfstore_idx (b, i, _, fv) -> r b && r i && fr fv
      | Pfmov (a, b) | Pfsqrt (a, b) | Pfneg (a, b) | Pfabs (a, b) ->
        fr a && fr b
      | Pfmov_imm (a, _) -> fr a
      | Pfadd (a, b, c) | Pfsub (a, b, c) | Pfmul (a, b, c) | Pfdiv (a, b, c) ->
        fr a && fr b && fr c
      | Pcvtif (fd, rs) -> fr fd && r rs
      | Ptruncfi (rd, fs) -> r rd && fr fs
      | Pbranch_r (_, a, b, _) -> r a && r b
      | Pbranch_i (_, a, _, _) -> r a
      | Pfbranch (_, a, b, _) -> fr a && fr b
      | Pjmp _ | Pdeopt _ -> true
      | Pcall_fn (_, argr, rd, _, _) -> all r argr && r rd
      | Pcall_rt_chk (_, args, rd, _, _, _) -> all r args && opt rd
      | Pcall_rt (_, args, fargs, rd, fd, _, _) ->
        all r args && all fr fargs && opt rd && fopt fd
      | Pmov_classid_arr (k, x) -> k4 k && r x
      | Pstore_cc_r (b, _, v, _) -> r b && r v
      | Pstore_cc_i (b, _, _, _) -> r b
      | Pstore_cca_r (k, b, i, _, v, _) -> k4 k && r b && r i && r v
      | Pstore_cca_i (k, b, i, _, _, _) -> k4 k && r b && r i)
    pf.Predecode.ops

(** En-bloc counter summary: what {!Machine.count_meta} would have added,
    instruction by instruction, over the block's non-pseudo instructions.
    Applied once at block entry — exact because no instruction before the
    terminator can exit the block. *)
type summary = {
  s_by_cat : int array;  (** per-{!Categories} dynamic instructions *)
  s_by_check : int array;  (** per-check-kind slot (slot 0 = unattributed) *)
  s_guards : int;
  s_loads : int;
  s_stores : int;
  s_branches : int;
  s_fp : int;
}

type block = {
  b_start : int;  (** leader pc *)
  b_len : int;  (** instruction count, terminator included *)
  b_terminated : bool;
      (** false: the block ends because the next pc is another leader and
          execution falls through to [b_start + b_len] *)
  b_sum : summary;
}

type t = {
  blocks : block array;
  block_of_pc : int array;  (** leader pc -> block index; -1 elsewhere *)
}

let summarize (pf : Predecode.func) ~start ~len : summary =
  let by_cat = Array.make Categories.count 0 in
  let by_check = Array.make (Categories.check_kind_count + 1) 0 in
  let guards = ref 0 in
  let loads = ref 0 and stores = ref 0 and branches = ref 0 and fp = ref 0 in
  let cat_check = Categories.index Categories.C_check in
  for pc = start to start + len - 1 do
    let m = pf.Predecode.meta.(pc) in
    if m land Predecode.meta_pseudo_bit = 0 then begin
      let ci = m land Predecode.meta_cat_mask in
      by_cat.(ci) <- by_cat.(ci) + 1;
      if ci = cat_check then begin
        let slot = (m lsr Predecode.meta_check_shift) land 7 in
        by_check.(slot) <- by_check.(slot) + 1
      end;
      if m land Predecode.meta_guards_bit <> 0 then incr guards;
      match (m lsr Predecode.meta_class_shift) land 7 with
      | 1 -> incr loads
      | 2 -> incr stores
      | 3 -> incr branches
      | 4 -> incr fp
      | _ -> ()
    end
  done;
  {
    s_by_cat = by_cat;
    s_by_check = by_check;
    s_guards = !guards;
    s_loads = !loads;
    s_stores = !stores;
    s_branches = !branches;
    s_fp = !fp;
  }

(** Compute the template layout of a decoded stream, or [None] when the
    stream is not well formed for fusion (a branch target out of range, or
    straight-line code running off the end of the stream without a
    terminator) — the executor then keeps the per-instruction loop for
    this compilation instead of faulting. *)
let layout (pf : Predecode.func) : t option =
  let ops = pf.Predecode.ops in
  let n = Array.length ops in
  if n = 0 then None
  else begin
    let ok = ref true in
    let leader = Array.make n false in
    leader.(0) <- true;
    for pc = 0 to n - 1 do
      if is_terminator ops.(pc) then begin
        if pc + 1 < n then leader.(pc + 1) <- true;
        List.iter
          (fun tgt ->
            if tgt < 0 || tgt >= n then ok := false else leader.(tgt) <- true)
          (targets ops.(pc))
      end
    done;
    (* straight-line code must not run off the end of the stream — and a
       fall-through terminator last would publish pc = n *)
    if (not (is_terminator ops.(n - 1))) || falls_through ops.(n - 1) then
      ok := false;
    (* unchecked operand accesses in the fused closures need every
       register index validated up front *)
    if not (regs_in_range pf) then ok := false;
    if not !ok then None
    else begin
      let blocks = ref [] in
      let block_of_pc = Array.make n (-1) in
      let nblocks = ref 0 in
      let pc = ref 0 in
      while !pc < n do
        let start = !pc in
        let e = ref start in
        (* extend past fusible instructions; stop at a terminator or just
           before the next leader *)
        while
          (not (is_terminator ops.(!e))) && !e + 1 < n && not leader.(!e + 1)
        do
          incr e
        done;
        let terminated = is_terminator ops.(!e) in
        let len = !e - start + 1 in
        block_of_pc.(start) <- !nblocks;
        incr nblocks;
        blocks :=
          { b_start = start; b_len = len; b_terminated = terminated;
            b_sum = summarize pf ~start ~len }
          :: !blocks;
        pc := start + len
      done;
      Some { blocks = Array.of_list (List.rev !blocks); block_of_pc }
    end
  end
