(** Fully-associative TLB timing model (LRU over 4 KB pages).

    The reference model is a linear scan of every entry per access; with the
    paper's 256-entry DTLB that scan dominated the simulator's wall clock.
    A page -> entry-index side table ({!Tce_support.Int_table}) answers the
    (overwhelmingly common) hit case in O(1). The miss path keeps the
    original full scan so the victim choice — last empty entry if any entry
    is empty, else the first entry with the strictly smallest LRU stamp —
    is bit-identical to the reference model. *)

type stats = { mutable accesses : int; mutable hits : int; mutable misses : int }

type t = {
  entries : int;
  pages : int array;
  lru : int array;
  mutable clock : int;
  stats : stats;
  idx : Tce_support.Int_table.t;  (** page -> entry index (hit fast path) *)
}

let page_bits = 12

let create ~entries =
  {
    entries;
    pages = Array.make entries (-1);
    lru = Array.make entries 0;
    clock = 0;
    stats = { accesses = 0; hits = 0; misses = 0 };
    idx = Tce_support.Int_table.create ~size:(2 * entries) ();
  }

let access t addr =
  let page = addr lsr page_bits in
  t.clock <- t.clock + 1;
  t.stats.accesses <- t.stats.accesses + 1;
  let i = Tce_support.Int_table.find t.idx page (-1) in
  if i >= 0 then begin
    Array.unsafe_set t.lru i t.clock;
    t.stats.hits <- t.stats.hits + 1;
    true
  end
  else begin
    t.stats.misses <- t.stats.misses + 1;
    let pages = t.pages and lru = t.lru and entries = t.entries in
    let rec pick i v =
      if i >= entries then v
      else if Array.unsafe_get pages i = -1 then pick (i + 1) i
      else if
        Array.unsafe_get pages v <> -1
        && Array.unsafe_get lru i < Array.unsafe_get lru v
      then pick (i + 1) i
      else pick (i + 1) v
    in
    let victim = pick 0 0 in
    if t.pages.(victim) <> -1 then
      Tce_support.Int_table.remove t.idx t.pages.(victim);
    t.pages.(victim) <- page;
    t.lru.(victim) <- t.clock;
    Tce_support.Int_table.set t.idx page victim;
    false
  end

let hit_rate t =
  if t.stats.accesses = 0 then 1.0
  else float_of_int t.stats.hits /. float_of_int t.stats.accesses

let reset_stats t =
  t.stats.accesses <- 0;
  t.stats.hits <- 0;
  t.stats.misses <- 0
