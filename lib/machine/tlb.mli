(** Fully-associative TLB timing model (LRU over 4 KB pages). *)

type stats = { mutable accesses : int; mutable hits : int; mutable misses : int }

type t = private {
  entries : int;
  pages : int array;
  lru : int array;
  mutable clock : int;
  stats : stats;
  idx : Tce_support.Int_table.t;  (** page -> entry index (hit fast path) *)
}

val page_bits : int
val create : entries:int -> t
val access : t -> int -> bool
val hit_rate : t -> float
val reset_stats : t -> unit
