(** Superinstruction-template layout: the pure basic-block analysis behind
    the machine's fused-closure executor (lib/machine/README.md, "Template
    fusion invariants"). The layout guarantees every control-flow successor
    is a block leader and that non-terminator instructions cannot leave
    their block, which is what makes the en-bloc counter summary exact. *)

(** Does this instruction end a basic block (branch, call, return, deopt
    point, Class Cache special store)? *)
val is_terminator : Predecode.pre -> bool

(** Static in-stream branch targets of an instruction (empty for
    non-branches and for exits that leave the function). *)
val targets : Predecode.pre -> int list

(** Can this terminator continue at [pc + 1]? False only for the three
    unconditional exits ([Pret], [Pdeopt], [Pjmp]). *)
val falls_through : Predecode.pre -> bool

(** Every register operand in range for its register file? A stream that
    fails this is rejected by {!layout}: the fused closures use unchecked
    operand accesses, while the per-instruction loop keeps checked ones. *)
val regs_in_range : Predecode.func -> bool

(** What per-instruction counting ({!Machine} [count_meta]) would have
    accumulated over the block's non-pseudo instructions. *)
type summary = {
  s_by_cat : int array;  (** per-{!Tce_jit.Categories} dynamic instructions *)
  s_by_check : int array;  (** per-check-kind slot (slot 0 = unattributed) *)
  s_guards : int;
  s_loads : int;
  s_stores : int;
  s_branches : int;
  s_fp : int;
}

type block = {
  b_start : int;  (** leader pc *)
  b_len : int;  (** instruction count, terminator included *)
  b_terminated : bool;
      (** false: ends because the next pc is another leader; execution
          falls through to [b_start + b_len] *)
  b_sum : summary;
}

type t = {
  blocks : block array;
  block_of_pc : int array;  (** leader pc -> block index; -1 elsewhere *)
}

(** Summary of [len] instructions starting at [start] (exposed for the
    exhaustive per-constructor test). *)
val summarize : Predecode.func -> start:int -> len:int -> summary

(** The template layout, or [None] when the stream cannot be fused (target
    out of range, straight-line code or a fall-through terminator running
    off the end, or a register operand out of range) — the executor then
    falls back to the per-instruction loop. *)
val layout : Predecode.func -> t option
