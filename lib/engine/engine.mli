(** The two-tier engine (the V8 stand-in): a baseline interpreter tier with
    real inline caches, and an optimizing tier compiled by {!Tce_jit.Opt}
    and executed on the cycle-level machine. Deoptimization, on-stack
    replacement and Class Cache misspeculation exceptions transfer execution
    back to the interpreter mid-function. *)

exception Engine_error of string

(** Deopt-storm mitigation: per-function exponential re-speculation backoff
    with a decaying deopt budget. Replaces (and subsumes) the former
    [max_deopts = 12] permanent disable and the hard-coded
    [deopt_hits > 4] instance limit. *)
type backoff = {
  instance_deopt_limit : int;
      (** deopts of one code instance before it is discarded and recompiled
          against fresher feedback (default 4) *)
  storm_threshold : int;
      (** decayed per-function deopt budget beyond which re-speculation
          enters backoff (default 12; below it behaviour is exactly the
          pre-backoff engine) *)
  base_cooldown_cycles : int;  (** first cooldown, simulated cycles (20_000) *)
  max_backoff_exponent : int;
      (** cooldown cap = [base_cooldown_cycles * 2^max] (default 8) *)
  decay_cycles : int;
      (** one past deopt / backoff level forgiven per this many quiet
          simulated cycles (default 50_000); 0 disables decay *)
}

val default_backoff : backoff

type config = {
  jit : bool;  (** false: pure interpreter (differential testing) *)
  mechanism : bool;  (** the paper's Class Cache mechanism *)
  hoisting : bool;  (** movClassIDArray loop hoisting (paper §4.2.1.3) *)
  checked_load : bool;  (** Checked Load baseline instead of the mechanism *)
  hot_call_count : int;
  hot_backedge_count : int;
  backoff : backoff;  (** deopt-storm mitigation *)
  mach_cfg : Tce_machine.Config.t;
  cc_config : Tce_core.Class_cache.config;
  cl_config : Tce_core.Class_list.config;
      (** Class List geometry (tracked positions per line); part of the
          benchmark config hash like [cc_config] *)
  seed : int;
  trace : Tce_obs.Trace.t;
      (** observability sink; {!Tce_obs.Trace.null} = tracing off (the
          zero-cost default: no events, no allocation, identical cycles) *)
  obs_sample_cycles : int;
      (** counter-snapshot period in simulated cycles; 0 = off *)
  fault : Tce_fault.Injector.t;
      (** fault injector; {!Tce_fault.Injector.null} = disarmed (the
          zero-cost default: no hooks run, identical cycles) *)
  attr : Tce_attr.Ledger.t;
      (** attribution ledger; {!Tce_attr.Ledger.null} = disabled (the
          zero-cost default: no recording, identical cycles) *)
  prof : Tce_prof.Profile.t;
      (** cycle-attribution profiler; {!Tce_prof.Profile.null} = disabled
          (the zero-cost default: no attribution, identical cycles). One
          profile instance serves one engine. *)
  templates : bool;
      (** fuse pre-decoded streams into superinstruction templates
          (default true): a pure host-speed optimization — simulated state
          is bit-identical, so it is deliberately excluded from the
          benchmark config hash *)
}

val default_config : config

type t = {
  cfg : config;
  heap : Tce_vm.Heap.t;
  prog : Tce_jit.Bytecode.program;
  cl : Tce_core.Class_list.t;
  cc : Tce_core.Class_cache.t;
  oracle : Tce_core.Oracle.t;
  counters : Tce_machine.Counters.t;
  mach : Tce_machine.Machine.t;
  io : Runtime.io;
  opt_table : (int, Tce_jit.Lir.func) Hashtbl.t;
  shadow_table : (int, Tce_jit.Bytecode.func) Hashtbl.t;
  mutable next_opt_id : int;
  mutable next_code_addr : int;
  mutable host : Tce_machine.Machine.host option;
  mutable depth : int;
  globals_base : int;
  snap : Tce_obs.Snapshot.t;  (** periodic counter sampler *)
  obs_clock : unit -> int;  (** deterministic trace clock *)
  mutable regs_pool : Tce_vm.Value.t array list;
      (** free list of interpreter register files *)
  binop_cell : Tce_jit.Feedback.binop_fb ref;
      (** reusable out-cell for {!Runtime.eval_binop_cell} *)
}

val max_depth : int

val create : ?config:config -> Tce_jit.Bytecode.program -> t
val of_source : ?config:config -> string -> t

(** Everything the program [print]ed so far. *)
val output : t -> string

(* --- measurement control --- *)

val set_measuring : t -> bool -> unit

(** Reset counters and cache/TLB/predictor statistics (contents persist:
    steady-state measurement). *)
val reset_measurement : t -> unit

val measuring : t -> bool

(* --- execution --- *)

(** Execute the program's top level. *)
val run_main : t -> Tce_vm.Value.t

(** Call a top-level function by name (steady-state iteration driver).
    @raise Engine_error when no such function exists. *)
val call_by_name : t -> string -> Tce_vm.Value.t array -> Tce_vm.Value.t

(** Call guest function [fn_id] with [this :: args] (tier chosen by the
    engine). *)
val call_function : t -> int -> Tce_vm.Value.t array -> Tce_vm.Value.t

(* --- metrics --- *)

(** Monotonic simulated cycle clock of the optimized tier. *)
val opt_cycles : t -> int

(** Analytic cycles of the baseline tier. *)
val baseline_cycles : t -> float

(* --- observability --- *)

(** The engine's trace (from the config). *)
val trace : t -> Tce_obs.Trace.t

(* --- fault campaigns --- *)

(** Is [oid]'s installed speculation stale (ValidMap cleared, or the oracle
    saw the slot go polymorphic while the Class List still calls it valid)?
    Always false in unfaulted runs — the retire-path invariant. *)
val stale_speculation : t -> int -> bool

(** Record a caught injected inconsistency: emit [Fault_detected],
    invalidate the code and pin its function to the checked interpreter. *)
val detect_stale : t -> int -> cause:string -> unit

(** Take a counter snapshot if the sampling period elapsed (also called
    internally on guest calls and store events). *)
val obs_tick : t -> unit
