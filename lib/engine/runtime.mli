(** Value-level semantics of MiniJS operators and builtins, shared verbatim
    by the interpreter tier and the optimized tier's runtime stubs — the
    two tiers agree by construction. *)

exception Guest_error of string

val is_numeric : Tce_vm.Heap.t -> Tce_vm.Value.t -> bool

(** @raise Guest_error on non-numbers. *)
val to_number : Tce_vm.Heap.t -> Tce_vm.Value.t -> float

(** JS ToInt32 (shared definition with the machine's TruncFI). *)
val to_int32 : Tce_vm.Heap.t -> Tce_vm.Value.t -> int

val to_display : Tce_vm.Heap.t -> Tce_vm.Value.t -> string

(** Feedback kind observed for one binop execution. *)
val observe :
  Tce_vm.Heap.t -> Tce_vm.Value.t -> Tce_vm.Value.t -> bool ->
  Tce_jit.Feedback.binop_fb

(** Numbers numerically, strings by content, references by identity; mixed
    kinds unequal (strict-flavored; see DESIGN.md). *)
val values_equal : Tce_vm.Heap.t -> Tce_vm.Value.t -> Tce_vm.Value.t -> bool

(** Evaluate a binary operator; also returns the feedback observation.
    @raise Guest_error on type errors (and on [LAnd]/[LOr], which compile to
    control flow). *)
val eval_binop :
  Tce_vm.Heap.t -> Tce_minijs.Ast.binop -> Tce_vm.Value.t -> Tce_vm.Value.t ->
  Tce_vm.Value.t * Tce_jit.Feedback.binop_fb

(** Allocation-free variant: writes the feedback observation into the
    caller-owned cell instead of pairing it with the result (the
    interpreter's per-binop fast path). *)
val eval_binop_cell :
  Tce_vm.Heap.t -> Tce_minijs.Ast.binop -> Tce_vm.Value.t -> Tce_vm.Value.t ->
  Tce_jit.Feedback.binop_fb ref -> Tce_vm.Value.t

val eval_unop :
  Tce_vm.Heap.t -> Tce_minijs.Ast.unop -> Tce_vm.Value.t -> Tce_vm.Value.t

type io = {
  out : Buffer.t;
  prng : Tce_support.Prng.t;
  trace : Tce_obs.Trace.t;  (** observability sink (heap-growth events) *)
}

val make_io : ?seed:int -> ?trace:Tce_obs.Trace.t -> unit -> io

(** Apply a builtin. (The engine intercepts [push] so its element store
    fires Class Cache events; this function is the plain semantics.) *)
val builtin_apply :
  Tce_vm.Heap.t -> io -> Tce_jit.Builtins.t -> Tce_vm.Value.t array ->
  Tce_vm.Value.t

(** Numeric payload for the float-register result path (0 for
    non-numbers). *)
val float_of_result : Tce_vm.Heap.t -> Tce_vm.Value.t -> float
