(** The two-tier engine (our V8 stand-in):

    - Baseline tier: a bytecode interpreter with real inline caches, standing
      in for Full Codegen. Each op is charged the instruction cost of the
      generic code it represents ({!Tce_machine.Costs}). Every property /
      elements store fires a Class Cache request (profiling phase, paper
      §4.2.2).
    - Optimized tier: hot functions are compiled by {!Tce_jit.Opt} and run
      on the cycle-level machine ({!Tce_machine.Machine}).

    Deoptimization (failed checks, misspeculation exceptions, on-stack
    replacement) transfers execution back here mid-function. *)

open Tce_vm
open Tce_jit
module CL = Tce_core.Class_list
module CC = Tce_core.Class_cache

exception Engine_error of string

(** Deopt-storm mitigation. The former cliff — [max_deopts = 12] permanent
    disable plus a magic [deopt_hits > 4] — is replaced by a per-function
    exponential re-speculation backoff: the deopt budget decays over
    simulated cycles, and a function that exhausts it is refused tier-up for
    a cooldown that doubles per excess deopt (capped), instead of being
    pinned to the interpreter forever. *)
type backoff = {
  instance_deopt_limit : int;
      (** deopts of one optimized-code instance before it is discarded and
          recompiled against fresher feedback (V8-style; default 4 — the
          previously hard-coded [deopt_hits > 4]) *)
  storm_threshold : int;
      (** decayed per-function deopt budget beyond which re-speculation
          enters backoff (default 12 — the previous [max_deopts] permanent
          disable; functions below this threshold behave exactly as
          before) *)
  base_cooldown_cycles : int;
      (** first cooldown in simulated cycles (default 20_000) *)
  max_backoff_exponent : int;
      (** cooldown cap: [base_cooldown_cycles * 2^max] (default 8) *)
  decay_cycles : int;
      (** one past deopt (and one backoff level) is forgiven per this many
          quiet simulated cycles (default 50_000), so re-speculation
          recovers after churn stops; 0 disables decay *)
}

let default_backoff =
  {
    instance_deopt_limit = 4;
    storm_threshold = 12;
    base_cooldown_cycles = 20_000;
    max_backoff_exponent = 8;
    decay_cycles = 50_000;
  }

type config = {
  jit : bool;  (** false: pure interpreter (differential testing) *)
  mechanism : bool;  (** the paper's Class Cache mechanism on/off *)
  hoisting : bool;  (** hoist movClassIDArray out of loops (paper default) *)
  checked_load : bool;  (** Checked Load baseline instead of the mechanism *)
  hot_call_count : int;
  hot_backedge_count : int;
  backoff : backoff;  (** deopt-storm mitigation (see {!backoff}) *)
  mach_cfg : Tce_machine.Config.t;
  cc_config : CC.config;
  cl_config : CL.config;
      (** Class List geometry (tracked positions per line); part of the
          benchmark config hash like [cc_config] *)
  seed : int;
  trace : Tce_obs.Trace.t;
      (** observability sink; {!Tce_obs.Trace.null} = tracing off (the
          zero-cost default: no events, no allocation, identical cycles) *)
  obs_sample_cycles : int;
      (** counter-snapshot period in simulated cycles; 0 = off *)
  fault : Tce_fault.Injector.t;
      (** fault injector; {!Tce_fault.Injector.null} = disarmed (the
          zero-cost default: no hooks run, identical cycles) *)
  attr : Tce_attr.Ledger.t;
      (** attribution ledger; {!Tce_attr.Ledger.null} = disabled (the
          zero-cost default: no recording, identical cycles) *)
  prof : Tce_prof.Profile.t;
      (** cycle-attribution profiler; {!Tce_prof.Profile.null} = disabled
          (the zero-cost default: no attribution, identical cycles) *)
  templates : bool;
      (** fuse pre-decoded streams into superinstruction templates
          (default true — a pure host-speed optimization; simulated state
          is bit-identical, so this is deliberately not part of the
          benchmark config hash) *)
}

let default_config =
  {
    jit = true;
    mechanism = true;
    hoisting = true;
    checked_load = false;
    hot_call_count = 6;
    hot_backedge_count = 200;
    backoff = default_backoff;
    mach_cfg = Tce_machine.Config.default;
    cc_config = CC.default_config;
    cl_config = CL.default_config;
    seed = 42;
    trace = Tce_obs.Trace.null;
    obs_sample_cycles = 0;
    fault = Tce_fault.Injector.null;
    attr = Tce_attr.Ledger.null;
    prof = Tce_prof.Profile.null;
    templates = true;
  }

type t = {
  cfg : config;
  heap : Heap.t;
  prog : Bytecode.program;
  cl : CL.t;
  cc : CC.t;
  oracle : Tce_core.Oracle.t;
  counters : Tce_machine.Counters.t;
  mach : Tce_machine.Machine.t;
  io : Runtime.io;
  opt_table : (int, Lir.func) Hashtbl.t;
  shadow_table : (int, Bytecode.func) Hashtbl.t;
      (** opt_id -> the (possibly inlined) bytecode the code was compiled
          from; deopts resume the interpreter on this bytecode *)
  mutable next_opt_id : int;
  mutable next_code_addr : int;  (** simulated code-space bump pointer *)
  mutable host : Tce_machine.Machine.host option;
  mutable depth : int;  (** guest call depth (recursion guard) *)
  globals_base : int;  (** simulated address of the global variable cells *)
  snap : Tce_obs.Snapshot.t;  (** periodic counter sampler *)
  obs_clock : unit -> int;
      (** deterministic trace clock: machine cycles + analytic baseline
          cycles (also installed as the trace's clock) *)
  mutable regs_pool : Tce_vm.Value.t array list;
      (** free list of interpreter register files (one [Array.make] per
          guest call otherwise) *)
  binop_cell : Tce_jit.Feedback.binop_fb ref;
      (** reusable out-cell for {!Runtime.eval_binop_cell}; consumed
          immediately after each call, so sharing one per engine is safe *)
}

let max_depth = 2000

(* --- construction --- *)

let create ?(config = default_config) (prog : Bytecode.program) : t =
  let heap = Heap.create () in
  let cl = CL.create ~config:config.cl_config heap.Heap.mem in
  (* the runtime exposes the transition tree to the Class List so new
     classes inherit profiles and invalidations propagate to descendants *)
  let reg = heap.Heap.reg in
  cl.CL.parent_of <-
    (fun id ->
      match Hidden_class.Registry.find reg id with
      | Some c -> c.Hidden_class.parent_id
      | None -> None);
  cl.CL.children_of <-
    (fun id ->
      match Hidden_class.Registry.find reg id with
      | Some c -> List.map (fun (_, c') -> c'.Hidden_class.id) c.Hidden_class.transitions
      | None -> []);
  let cc = CC.create ~config:config.cc_config () in
  let oracle = Tce_core.Oracle.create () in
  let counters = Tce_machine.Counters.create () in
  let mach =
    Tce_machine.Machine.create ~cfg:config.mach_cfg ~mechanism:config.mechanism
      ~trace:config.trace ~fault:config.fault ~attr:config.attr
      ~prof:config.prof ~templates:config.templates ~heap ~cc ~cl ~oracle
      ~counters ()
  in
  (* One deterministic clock for the whole observability layer: optimized
     cycles plus the analytic baseline-tier cycles. Built on the always-on
     [clock_base_instrs] (not the measuring-gated counter) so backoff decay
     and cooldown expiry — simulated behavior — cannot depend on when the
     harness toggles measurement. *)
  let obs_clock () =
    mach.Tce_machine.Machine.cycle
    + int_of_float
        (float_of_int mach.Tce_machine.Machine.clock_base_instrs
        *. config.mach_cfg.Tce_machine.Config.baseline_cpi)
  in
  Tce_obs.Trace.set_clock config.trace obs_clock;
  CC.set_trace cc config.trace;
  CC.set_fault cc config.fault;
  (* never mutate the shared Injector.null (parallel domains) *)
  if Tce_fault.Injector.armed config.fault then
    Tce_fault.Injector.set_trace config.fault config.trace;
  (* global variable cells live in simulated memory, initialized to null *)
  let n_globals = max 1 (Array.length prog.Bytecode.globals) in
  let globals_base = Mem.allocate heap.Heap.mem ~bytes:(8 * n_globals) ~align:64 in
  for i = 0 to n_globals - 1 do
    Mem.store heap.Heap.mem (globals_base + (8 * i)) heap.Heap.null_v
  done;
  {
    cfg = config;
    heap;
    prog;
    cl;
    cc;
    oracle;
    counters;
    mach;
    io = Runtime.make_io ~seed:config.seed ~trace:config.trace ();
    opt_table = Hashtbl.create 64;
    shadow_table = Hashtbl.create 64;
    next_opt_id = 0;
    next_code_addr = 0x4000_0000;
    host = None;
    depth = 0;
    globals_base;
    snap = Tce_obs.Snapshot.create ~every:config.obs_sample_cycles;
    obs_clock;
    regs_pool = [];
    binop_cell = ref Tce_jit.Feedback.Bf_smi;
  }

let of_source ?config src = create ?config (Bc_compile.compile_source src)

let output t = Buffer.contents t.io.Runtime.out

(* --- measurement control --- *)

let set_measuring t on = t.mach.Tce_machine.Machine.measuring <- on

let reset_measurement t =
  Tce_machine.Counters.reset t.counters;
  Tce_machine.Cache.reset_stats t.mach.Tce_machine.Machine.l1d;
  Tce_machine.Cache.reset_stats t.mach.Tce_machine.Machine.l1i;
  Tce_machine.Cache.reset_stats t.mach.Tce_machine.Machine.l2;
  Tce_machine.Tlb.reset_stats t.mach.Tce_machine.Machine.dtlb;
  Tce_machine.Tlb.reset_stats t.mach.Tce_machine.Machine.itlb;
  Tce_machine.Branch.reset_stats t.mach.Tce_machine.Machine.bp;
  CC.reset_stats t.cc

let measuring t = t.mach.Tce_machine.Machine.measuring

(* --- cost accounting for the baseline tier --- *)

(** Baseline instruction charge of one bytecode op — pure, so the
    interpreter bakes it per pc into [Bytecode.func.base_cost] instead of
    re-matching the op every execution. The mechanism's store surcharge is
    engine-constant, making the baked array engine-stable. *)
let baseline_cost_of t (bc : Bytecode.bc) =
  let n = Tce_machine.Costs.baseline_op_instrs bc in
  match bc with
  | Bytecode.SetProp _ | SetElem _ when t.cfg.mechanism ->
    n + Tce_machine.Costs.mechanism_store_extra
  | _ -> n

let charge_baseline_extra t extra n =
  t.mach.Tce_machine.Machine.clock_base_instrs <-
    t.mach.Tce_machine.Machine.clock_base_instrs + n;
  if measuring t then begin
    t.counters.Tce_machine.Counters.baseline_instrs <-
      t.counters.Tce_machine.Counters.baseline_instrs + n;
    if Tce_prof.Profile.on t.cfg.prof then
      Tce_prof.Profile.base_extra t.cfg.prof extra n
  end

(* --- observability --- *)

let trace t = t.cfg.trace

(** Sum an [n]-set array into at most 8 contiguous buckets, so the Perfetto
    heatmap track count stays fixed across Class Cache geometries. *)
let bucket8 a =
  let n = Array.length a in
  if n <= 8 then Array.copy a
  else begin
    let b = Array.make 8 0 in
    for i = 0 to n - 1 do
      let j = i * 8 / n in
      b.(j) <- b.(j) + a.(i)
    done;
    b
  end

(** Take a counter snapshot when the sampling period elapsed. Called from
    cheap, deterministic points (guest calls, store events); reads state
    only, so cycle counts are unaffected. *)
let obs_tick t =
  if Tce_obs.Snapshot.active t.snap then begin
    let now = t.obs_clock () in
    Tce_obs.Snapshot.tick t.snap ~now (fun () ->
        {
          Tce_obs.Snapshot.at = now;
          deopts = t.counters.Tce_machine.Counters.deopts;
          tierups = t.counters.Tce_machine.Counters.tierups;
          cc_exceptions = t.counters.Tce_machine.Counters.cc_exception_deopts;
          cc_occupancy = CC.occupancy t.cc;
          cc_set_occupancy = bucket8 (CC.set_occupancy t.cc);
          cc_conflicts = Array.fold_left ( + ) 0 (CC.set_conflicts t.cc);
          baseline_instrs = t.counters.Tce_machine.Counters.baseline_instrs;
          heap_bytes = t.heap.Heap.stats.Heap.object_bytes;
          prof_costs =
            (if Tce_prof.Profile.on t.cfg.prof then
               Tce_prof.Profile.cost_totals_named t.cfg.prof
             else [||]);
        })
  end

(** Emit an [Ic_transition] event for a feedback-recorder result. *)
let emit_ic t ~site ~slot = function
  | None -> ()
  | Some (from_state, to_state) ->
    let tr = trace t in
    if Tce_obs.Trace.on tr then
      Tce_obs.Trace.emit tr
        (Tce_obs.Trace.Ic_transition { site; slot; from_state; to_state })

(* --- speculation bookkeeping --- *)

(** Charge one deopt against [fn]'s decaying budget and, past the storm
    threshold, impose an exponentially growing re-speculation cooldown
    (emitting a [Backoff] event). Quiet simulated time forgives past deopts
    (one per [decay_cycles]), so a function recovers full re-speculation
    once the churn stops — the graceful replacement of the old
    [max_deopts] permanent disable. *)
let apply_backoff t (fn : Bytecode.func) =
  let bo = t.cfg.backoff in
  let now = t.obs_clock () in
  if bo.decay_cycles > 0 && fn.Bytecode.last_deopt_at > 0 then begin
    let forgiven = (now - fn.Bytecode.last_deopt_at) / bo.decay_cycles in
    if forgiven > 0 then begin
      fn.Bytecode.deopt_count <- max 0 (fn.Bytecode.deopt_count - forgiven);
      fn.Bytecode.backoff_level <- max 0 (fn.Bytecode.backoff_level - forgiven)
    end
  end;
  fn.Bytecode.last_deopt_at <- max 1 now;
  fn.Bytecode.deopt_count <- fn.Bytecode.deopt_count + 1;
  if fn.Bytecode.deopt_count > bo.storm_threshold then begin
    let expn = min fn.Bytecode.backoff_level bo.max_backoff_exponent in
    fn.Bytecode.backoff_until <- now + (bo.base_cooldown_cycles lsl expn);
    fn.Bytecode.backoff_level <- fn.Bytecode.backoff_level + 1;
    Tce_attr.Ledger.record_pin t.cfg.attr ~fn:fn.Bytecode.name
      ~exponent:fn.Bytecode.backoff_level;
    let tr = trace t in
    if Tce_obs.Trace.on tr then
      Tce_obs.Trace.emit tr
        (Tce_obs.Trace.Backoff
           {
             func = fn.Bytecode.name;
             level = fn.Bytecode.backoff_level;
             until = fn.Bytecode.backoff_until;
           })
  end

(** Function names behind a list of victim opt_ids (chain reporting). *)
let victim_names t opt_ids =
  List.filter_map
    (fun oid ->
      match Hashtbl.find_opt t.opt_table oid with
      | Some code -> Some t.prog.Bytecode.funcs.(code.Lir.fn_id).Bytecode.name
      | None -> None)
    opt_ids

let invalidate_opt t opt_ids =
  List.iter
    (fun oid ->
      match Hashtbl.find_opt t.opt_table oid with
      | Some code when not code.Lir.invalidated ->
        code.Lir.invalidated <- true;
        let fn = t.prog.Bytecode.funcs.(code.Lir.fn_id) in
        (match fn.Bytecode.opt with
        | Some cur when cur.Lir.opt_id = oid -> fn.Bytecode.opt <- None
        | _ -> ());
        apply_backoff t fn;
        (* drop the dead code's other registrations so stale SpeculateMap
           bits cannot fire again *)
        CL.remove_function t.cl ~fn:oid
      | _ -> ())
    opt_ids

let is_invalidated t oid =
  match Hashtbl.find_opt t.opt_table oid with
  | Some code -> code.Lir.invalidated
  | None -> true

(* --- retire-path invariant check (fault campaigns only) --- *)

(** Is [oid]'s installed speculation stale — does its [spec_deps] name a
    slot whose ValidMap bit is cleared, or that the ground-truth oracle saw
    go polymorphic while the Class List still calls it valid? Both are
    impossible in unfaulted runs (exception delivery is synchronous and
    reliable, and the Class List tracks the oracle exactly — the qcheck
    property in test_core), so a positive answer proves a lost, dropped or
    corrupted notification. Uses non-materializing Class List peeks so the
    check itself cannot perturb lazy parent-inheritance. *)
let stale_speculation t oid =
  match Hashtbl.find_opt t.opt_table oid with
  | Some code when not code.Lir.invalidated ->
    List.exists
      (fun (classid, line, pos) ->
        (not (CL.is_valid_peek t.cl ~classid ~line ~pos))
        ||
        (* Cross-examine the Class List's claim against the ground-truth
           oracle. The oracle keys by the *storing-time* class while the
           Class List inherits profiles down the transition tree, so a
           speculated slot's claim can come from an ancestor: compare the
           claimed value class against every class the oracle observed for
           the slot rather than asking the oracle for monomorphism. *)
        match CL.claimed_class_peek t.cl ~classid ~line ~pos with
        | Some claimed ->
          List.exists
            (fun c -> c <> claimed)
            (Tce_core.Oracle.observed_classes t.oracle ~classid ~line ~pos)
        | None ->
          not (Tce_core.Oracle.is_monomorphic t.oracle ~classid ~line ~pos))
      code.Lir.spec_deps
  | _ -> false

(** An injected inconsistency was caught: invalidate the code and pin the
    function to the fully-checked interpreter (re-speculating on poisoned
    profiling state could mask the next fault). *)
let detect_stale t oid ~cause =
  match Hashtbl.find_opt t.opt_table oid with
  | None -> ()
  | Some code ->
    let fn = t.prog.Bytecode.funcs.(code.Lir.fn_id) in
    let tr = trace t in
    if Tce_obs.Trace.on tr then
      Tce_obs.Trace.emit tr
        (Tce_obs.Trace.Fault_detected
           { func = fn.Bytecode.name; opt_id = oid; cause });
    Tce_fault.Injector.note_detected t.cfg.fault;
    invalidate_opt t [ oid ];
    fn.Bytecode.opt_disabled <- true

(** Fire the profiling/verification side of a property or elements store
    executed in the baseline tier or a runtime stub (the special-store
    request of §4.2.1.3, plus the measurement oracle). *)
let fire_store_event t ~classid ~line ~pos ~value_classid =
  obs_tick t;
  Tce_core.Oracle.record t.oracle ~classid ~line ~pos ~value_classid;
  (* Positions beyond the Class List's tracked range are never profiled:
     the store stays fully checked (the oracle above still records ground
     truth, so check-removal accounting sees the missed opportunity). *)
  if t.cfg.mechanism && CL.is_tracked t.cl ~pos then begin
    let r = CC.access t.cc t.cl ~classid ~line ~pos ~value_classid in
    if r.CC.exn_raised then begin
      if measuring t then
        t.counters.Tce_machine.Counters.cc_exception_deopts <-
          t.counters.Tce_machine.Counters.cc_exception_deopts + 1;
      if Tce_attr.Ledger.on t.cfg.attr then
        Tce_attr.Ledger.record_chain t.cfg.attr ~at:(t.obs_clock ())
          ~store:
            (Printf.sprintf "store of class %d into slot(%d,%d)" value_classid
               line pos)
          ~classid ~line ~pos
          ~victims:(victim_names t r.CC.functions_to_deopt);
      invalidate_opt t r.CC.functions_to_deopt
    end
  end

(** Class of a stored element value as the profile sees it (double-kind
    arrays always profile HeapNumber — the unboxed representation). *)
let elem_value_classid t obj v =
  match Heap.elements_kind t.heap obj with
  | Hidden_class.E_double ->
    (Hidden_class.Registry.number_class t.heap.Heap.reg).Hidden_class.id
  | _ -> Heap.classid_of t.heap v

(* --- property / element accessors with IC + profiling --- *)

let record_obj_load t ~classid ~line ~pos =
  if measuring t then
    Tce_machine.Counters.record_obj_load t.counters ~classid ~line ~pos

(** Baseline GetProp: feedback update + load. [fb_slot] < 0 for feedback-less
    megamorphic stub calls from optimized code. *)
(* Not a closure inside [get_prop]: the record path runs per property
   access, and a per-call closure allocation there is measurable. *)
let record_prop_load t (fb : Feedback.t option) fb_slot ~classid ~slot =
  match fb with
  | Some fb when fb_slot >= 0 ->
    emit_ic t ~site:"prop-load" ~slot:fb_slot
      (Feedback.record_prop_simple fb fb_slot ~classid ~slot)
  | _ -> ()

let get_prop t (fb : Feedback.t option) fb_slot obj name : Value.t =
  let h = t.heap in
  if Value.is_smi h.Heap.null_v then assert false;
  if Value.is_smi obj then raise (Engine_error ("property access on SMI: " ^ name));
  let c = Heap.class_of_addr h (Value.ptr_addr obj) in
  match (c.Hidden_class.kind, name) with
  | Hidden_class.K_string, "length" ->
    record_prop_load t fb fb_slot ~classid:c.Hidden_class.id ~slot:2;
    Mem.load h.Heap.mem (Value.ptr_addr obj + 16)
  | (Hidden_class.K_array _ | K_object), "length"
    when not (Hashtbl.mem c.Hidden_class.prop_index "length") ->
    record_prop_load t fb fb_slot ~classid:c.Hidden_class.id
      ~slot:Layout.elements_len_slot;
    Mem.load h.Heap.mem (Value.ptr_addr obj + (Layout.elements_len_slot * 8))
  | _ -> (
    match Hidden_class.slot_of_prop c name with
    | Some slot ->
      record_prop_load t fb fb_slot ~classid:c.Hidden_class.id ~slot;
      let line, pos = Layout.line_pos_of_slot slot in
      record_obj_load t ~classid:c.Hidden_class.id ~line ~pos;
      Heap.load_slot h obj slot
    | None ->
      (* absent property: go megamorphic, read as null (JS undefined) *)
      (match fb with
      | Some fb when fb_slot >= 0 -> fb.(fb_slot) <- Feedback.S_prop Feedback.Ic_mega
      | _ -> ());
      h.Heap.null_v)

let set_prop t (fb : Feedback.t option) fb_slot obj name v =
  let h = t.heap in
  if Value.is_smi obj then raise (Engine_error ("property store on SMI: " ^ name));
  if not (Heap.is_object h obj) then
    raise (Engine_error ("property store on non-object: " ^ name));
  let c0 = Heap.class_of_addr h (Value.ptr_addr obj) in
  let slot, transitioned = Heap.set_prop h obj name v in
  let c1 = Heap.class_of_addr h (Value.ptr_addr obj) in
  (match fb with
  | Some fb when fb_slot >= 0 ->
    emit_ic t ~site:"prop-store" ~slot:fb_slot
      (if transitioned then
         Feedback.record_prop fb fb_slot
           {
             Feedback.classid = c0.Hidden_class.id;
             slot;
             transition_to = Some c1.Hidden_class.id;
           }
       else
         Feedback.record_prop_simple fb fb_slot ~classid:c0.Hidden_class.id
           ~slot)
  | _ -> ());
  if transitioned then
    charge_baseline_extra t Tce_prof.Profile.extra_transition
      Tce_machine.Costs.transition_instrs;
  let line, pos = Layout.line_pos_of_slot slot in
  fire_store_event t ~classid:c1.Hidden_class.id ~line ~pos
    ~value_classid:(Heap.classid_of h v)

let get_elem t (fb : Feedback.t option) fb_slot obj idx : Value.t =
  let h = t.heap in
  if Value.is_smi obj then raise (Engine_error "indexed access on SMI");
  let c = Heap.class_of_addr h (Value.ptr_addr obj) in
  if c.Hidden_class.kind = Hidden_class.K_string then begin
    (* s[i]: one-character string *)
    let s = Heap.string_value h obj in
    let i = Value.smi_value idx in
    if i < 0 || i >= String.length s then h.Heap.null_v
    else Heap.intern_string h (String.make 1 s.[i])
  end
  else begin
    let i =
      if Value.is_smi idx then Value.smi_value idx
      else int_of_float (Runtime.to_number h idx)
    in
    (match fb with
    | Some fb when fb_slot >= 0 ->
      emit_ic t ~site:"elem-load" ~slot:fb_slot
        (Feedback.record_elem fb fb_slot ~classid:c.Hidden_class.id)
    | _ -> ());
    record_obj_load t ~classid:c.Hidden_class.id ~line:0
      ~pos:Layout.elements_ptr_slot;
    Heap.elem_get h obj i
  end

let set_elem t (fb : Feedback.t option) fb_slot obj idx v =
  let h = t.heap in
  if Value.is_smi obj || not (Heap.is_object h obj) then
    raise (Engine_error "indexed store on non-object");
  let c = Heap.class_of_addr h (Value.ptr_addr obj) in
  let i =
    if Value.is_smi idx then Value.smi_value idx
    else int_of_float (Runtime.to_number h idx)
  in
  (match fb with
  | Some fb when fb_slot >= 0 ->
    emit_ic t ~site:"elem-store" ~slot:fb_slot
      (Feedback.record_elem fb fb_slot ~classid:c.Hidden_class.id)
  | _ -> ());
  let slow = Heap.elem_set h obj i v in
  if slow then begin
    charge_baseline_extra t Tce_prof.Profile.extra_elem_grow 40;
    let tr = trace t in
    if Tce_obs.Trace.on tr then
      Tce_obs.Trace.emit tr
        (Tce_obs.Trace.Gc
           {
             heap_bytes = h.Heap.stats.Heap.object_bytes;
             grows = h.Heap.stats.Heap.elements_grows;
           })
  end;
  let c1 = Heap.class_of_addr h (Value.ptr_addr obj) in
  (* an in-place elements-kind transition changed this object's class:
     retire profiles naming the old class (map-stability invalidation) *)
  if c1.Hidden_class.id <> c.Hidden_class.id then begin
    Tce_core.Oracle.retire_value_class t.oracle
      ~value_classid:c.Hidden_class.id;
    if t.cfg.mechanism then begin
      let fns = CL.retire_value_class t.cl ~value_classid:c.Hidden_class.id in
      if fns <> [] then begin
        let tr = trace t in
        if Tce_obs.Trace.on tr then
          Tce_obs.Trace.emit tr
            (Tce_obs.Trace.Cc_exception
               {
                 classid = c.Hidden_class.id;
                 line = 0;
                 pos = Layout.elements_ptr_slot;
                 victims = List.length fns;
               });
        if measuring t then
          t.counters.Tce_machine.Counters.cc_exception_deopts <-
            t.counters.Tce_machine.Counters.cc_exception_deopts + 1;
        if Tce_attr.Ledger.on t.cfg.attr then
          Tce_attr.Ledger.record_chain t.cfg.attr ~at:(t.obs_clock ())
            ~store:
              (Printf.sprintf
                 "elements-kind transition of class %d retired its profiles"
                 c.Hidden_class.id)
            ~classid:c.Hidden_class.id ~line:0 ~pos:Layout.elements_ptr_slot
            ~victims:(victim_names t fns);
        invalidate_opt t fns
      end
    end
  end;
  (* profile under the class *after* any elements-kind transition *)
  fire_store_event t ~classid:c1.Hidden_class.id ~line:0
    ~pos:Layout.elements_ptr_slot ~value_classid:(elem_value_classid t obj v)

(* --- tier-up --- *)

let try_optimize t (fn : Bytecode.func) =
  if
    t.cfg.jit && fn.Bytecode.opt = None
    && (not fn.Bytecode.opt_disabled)
    && (fn.Bytecode.call_count >= t.cfg.hot_call_count
       || fn.Bytecode.backedge_count >= t.cfg.hot_backedge_count)
  then
  (* deopt-storm backoff: re-speculation waits out the cooldown
     (backoff_until is 0 until the storm threshold is ever exceeded) *)
  if
    not
      (fn.Bytecode.backoff_until = 0
      || t.obs_clock () >= fn.Bytecode.backoff_until)
  then
    Tce_attr.Ledger.record_respec t.cfg.attr ~fn:fn.Bytecode.name
      ~outcome:"backoff-pinned"
  else begin
    let opt_id = t.next_opt_id in
    t.next_opt_id <- opt_id + 1;
    (* inline small hot callees first (Crankshaft-style); the inlined view
       is cached: deopts resume (and record feedback) on it, so recompiles
       must see that learning *)
    let fn_view =
      match fn.Bytecode.shadow with
      | Some s -> s
      | None -> (
        match Inline.expand t.prog fn with
        | Some s ->
          fn.Bytecode.shadow <- Some s;
          s
        | None -> fn)
    in
    match
      Opt.compile
        {
          Opt.prog = t.prog;
          heap = t.heap;
          cl = t.cl;
          mechanism = t.cfg.mechanism;
          hoisting = t.cfg.hoisting;
          checked_load = t.cfg.checked_load;
          fn = fn_view;
          opt_id;
          code_addr = t.next_code_addr;
          globals_base = t.globals_base;
          attr = t.cfg.attr;
        }
    with
    | code ->
      t.next_code_addr <-
        t.next_code_addr + (4 * Array.length code.Lir.code) + 64;
      fn.Bytecode.opt <- Some code;
      Hashtbl.replace t.opt_table opt_id code;
      Hashtbl.replace t.shadow_table opt_id fn_view;
      (* pre-decode at install time so the first execution runs the
         specialized stream without paying the decode *)
      ignore (Tce_machine.Machine.install t.mach code);
      let tr = trace t in
      if Tce_obs.Trace.on tr then begin
        Tce_obs.Trace.emit tr
          (Tce_obs.Trace.Compile
             {
               func = fn.Bytecode.name;
               opt_id;
               instrs = Array.length code.Lir.code;
               bailout = None;
             });
        Tce_obs.Trace.emit tr
          (Tce_obs.Trace.Tierup
             { func = fn.Bytecode.name; fn_id = fn.Bytecode.id; opt_id })
      end;
      if measuring t then
        t.counters.Tce_machine.Counters.tierups <-
          t.counters.Tce_machine.Counters.tierups + 1;
      Tce_attr.Ledger.record_respec t.cfg.attr ~fn:fn.Bytecode.name
        ~outcome:"reoptimized";
      (* install speculation: SpeculateMap bits + FunctionList entries *)
      List.iter
        (fun (classid, line, pos) ->
          CL.add_speculation t.cl ~classid ~line ~pos ~fn:opt_id)
        code.Lir.spec_deps
    | exception Opt.Bailout msg ->
      let tr = trace t in
      if Tce_obs.Trace.on tr then
        Tce_obs.Trace.emit tr
          (Tce_obs.Trace.Compile
             { func = fn.Bytecode.name; opt_id; instrs = 0; bailout = Some msg });
      Tce_attr.Ledger.record_respec t.cfg.attr ~fn:fn.Bytecode.name
        ~outcome:"bailed out";
      fn.Bytecode.opt_disabled <- true
  end

(* --- the interpreter --- *)

let rec call_function t fid (args : Value.t array) : Value.t =
  obs_tick t;
  let fn = t.prog.Bytecode.funcs.(fid) in
  fn.Bytecode.call_count <- fn.Bytecode.call_count + 1;
  t.depth <- t.depth + 1;
  if t.depth > max_depth then raise (Engine_error "guest stack overflow");
  try_optimize t fn;
  let interp () =
    let n = max fn.Bytecode.n_regs 1 in
    (* pooled register file: recycle instead of one [Array.make] per call
       (registers are immediate [Value.t]s, so reuse is GC-transparent);
       the used prefix is re-initialized to the fresh-allocation state *)
    let regs =
      match t.regs_pool with
      | a :: rest when Array.length a >= n ->
        t.regs_pool <- rest;
        Array.fill a 0 n t.heap.Heap.null_v;
        a
      | _ -> Array.make n t.heap.Heap.null_v
    in
    Array.blit args 0 regs 0 (min (Array.length args) fn.Bytecode.n_regs);
    let r = interp_from t fn regs 0 in
    t.regs_pool <- regs :: t.regs_pool;
    r
  in
  let result =
    match fn.Bytecode.opt with
    | Some code when not code.Lir.invalidated ->
      (* retire-path invariant check at code entry (campaigns only): refuse
         to dispatch optimized code whose speculation went stale under
         injection — fall back to the fully-checked interpreter instead *)
      if
        Tce_fault.Injector.armed t.cfg.fault
        && stale_speculation t code.Lir.opt_id
      then begin
        detect_stale t code.Lir.opt_id ~cause:"stale-speculation-at-entry";
        interp ()
      end
      else Tce_machine.Machine.run t.mach (host t) code args
    | _ -> interp ()
  in
  t.depth <- t.depth - 1;
  result

and construct t fid (args : Value.t array) : Value.t =
  let ctor = t.prog.Bytecode.funcs.(fid) in
  if not ctor.Bytecode.is_ctor then
    raise (Engine_error ("new on non-constructor " ^ ctor.Bytecode.name));
  let base =
    match ctor.Bytecode.base_class with
    | Some c -> c
    | None ->
      let c =
        Hidden_class.Registry.fresh t.heap.Heap.reg ~kind:Hidden_class.K_object
          ~name:ctor.Bytecode.name ~prop_names:[||]
      in
      ctor.Bytecode.base_class <- Some c;
      c
  in
  let this = Heap.alloc_object t.heap base ~reserve_props:ctor.Bytecode.reserve_props in
  call_function t fid (Array.append [| this |] args)

and bc_label (op : Bytecode.bc) =
  match op with
  | Bytecode.LoadInt _ | LoadNum _ | LoadStr _ | LoadBool _ | LoadNull _ ->
    "load-const"
  | Move _ -> "move"
  | BinOp _ -> "binop"
  | UnOp _ -> "unop"
  | GetProp _ -> "get-prop"
  | SetProp _ -> "set-prop"
  | GetElem _ -> "get-elem"
  | SetElem _ -> "set-elem"
  | GetGlobal _ | SetGlobal _ -> "global"
  | NewObject _ | AllocCtor _ | NewArray _ -> "alloc"
  | Call _ | CallB _ | New _ -> "call"
  | Jump _ | JumpIfFalse _ | JumpIfTrue _ -> "branch"
  | Return _ -> "return"

and interp_from t (fn : Bytecode.func) (regs : Value.t array) start_pc : Value.t =
  let h = t.heap in
  let code = fn.Bytecode.code in
  let fb = fn.Bytecode.fb in
  (* per-pc baseline charges, baked once per function (the length check
     also rebuilds after an inline-expansion swap, which resets the field) *)
  let costs =
    if Array.length fn.Bytecode.base_cost = Array.length code then
      fn.Bytecode.base_cost
    else begin
      let a = Array.map (baseline_cost_of t) code in
      fn.Bytecode.base_cost <- a;
      a
    end
  in
  let counters = t.counters in
  let prof = t.cfg.prof in
  let pon = Tce_prof.Profile.on prof in
  let bacc =
    if pon then
      (* keyed by (fn id, code length): a shadow (inlined) body shares the
         original's id with different code, and must keep its own cells *)
      match
        Tce_prof.Profile.find_base_acc prof ~id:fn.Bytecode.id
          ~pcs:(Array.length code)
      with
      | Some a -> a
      | None ->
        Tce_prof.Profile.register_base prof ~id:fn.Bytecode.id
          ~name:fn.Bytecode.name ~labels:(Array.map bc_label code)
    else Tce_prof.Profile.dummy_acc
  in
  let pc = ref start_pc in
  let running = ref true in
  let resv = ref h.Heap.null_v in
  (* hoisted: measurement is toggled by the harness between guest calls,
     never mid-execution, so it is loop-invariant here *)
  let msr = measuring t in
  let mach = t.mach in
  while !running do
    let pc0 = !pc in
    let op = code.(pc0) in
    mach.Tce_machine.Machine.clock_base_instrs <-
      mach.Tce_machine.Machine.clock_base_instrs + Array.unsafe_get costs pc0;
    if msr then begin
      counters.Tce_machine.Counters.baseline_instrs <-
        counters.Tce_machine.Counters.baseline_instrs
        + Array.unsafe_get costs pc0;
      if pon then begin
        Tce_prof.Profile.set_base_site prof bacc pc0;
        Tce_prof.Profile.base_add prof (Array.unsafe_get costs pc0)
      end
    end;
    let next = pc0 + 1 in
    (match op with
    | Bytecode.LoadInt (r, i) ->
      regs.(r) <- Value.smi i;
      pc := next
    | LoadNum (r, x) ->
      regs.(r) <- Heap.float_const h x;
      pc := next
    | LoadStr (r, s) ->
      regs.(r) <- Heap.intern_string h s;
      pc := next
    | LoadBool (r, b) ->
      regs.(r) <- Heap.bool_v h b;
      pc := next
    | LoadNull r ->
      regs.(r) <- h.Heap.null_v;
      pc := next
    | Move (d, s) ->
      regs.(d) <- regs.(s);
      pc := next
    | BinOp (bop, d, a, b, slot) ->
      let v = Runtime.eval_binop_cell h bop regs.(a) regs.(b) t.binop_cell in
      emit_ic t ~site:"binop" ~slot (Feedback.record_binop fb slot !(t.binop_cell));
      regs.(d) <- v;
      pc := next
    | UnOp (uop, d, a) ->
      regs.(d) <- Runtime.eval_unop h uop regs.(a);
      pc := next
    | GetProp (d, o, name, slot) ->
      regs.(d) <- get_prop t (Some fb) slot regs.(o) name;
      pc := next
    | SetProp (o, name, v, slot) ->
      set_prop t (Some fb) slot regs.(o) name regs.(v);
      pc := next
    | GetElem (d, o, i, slot) ->
      regs.(d) <- get_elem t (Some fb) slot regs.(o) regs.(i);
      pc := next
    | SetElem (o, i, v, slot) ->
      set_elem t (Some fb) slot regs.(o) regs.(i) regs.(v);
      pc := next
    | GetGlobal (d, i) ->
      regs.(d) <- Mem.load h.Heap.mem (t.globals_base + (8 * i));
      pc := next
    | SetGlobal (i, r) ->
      Mem.store h.Heap.mem (t.globals_base + (8 * i)) regs.(r);
      pc := next
    | NewObject d ->
      let root = Hidden_class.Registry.object_root_class h.Heap.reg in
      regs.(d) <- Heap.alloc_object h root ~reserve_props:8;
      pc := next
    | AllocCtor (d, fid) ->
      let ctor = t.prog.Bytecode.funcs.(fid) in
      let base =
        match ctor.Bytecode.base_class with
        | Some c -> c
        | None ->
          let c =
            Hidden_class.Registry.fresh t.heap.Heap.reg ~kind:Hidden_class.K_object
              ~name:ctor.Bytecode.name ~prop_names:[||]
          in
          ctor.Bytecode.base_class <- Some c;
          c
      in
      regs.(d) <- Heap.alloc_object h base ~reserve_props:ctor.Bytecode.reserve_props;
      pc := next
    | NewArray (d, cap) ->
      regs.(d) <- Heap.alloc_array h ~capacity:(max cap 4) Hidden_class.E_smi;
      pc := next
    | Call (d, fid, argr) ->
      let args =
        Array.append [| h.Heap.null_v |] (Array.map (fun r -> regs.(r)) argr)
      in
      regs.(d) <- call_function t fid args;
      pc := next
    | CallB (d, b, argr) ->
      let args = Array.map (fun r -> regs.(r)) argr in
      regs.(d) <- apply_builtin t b args;
      pc := next
    | New (d, fid, argr) ->
      regs.(d) <- construct t fid (Array.map (fun r -> regs.(r)) argr);
      pc := next
    | Jump target ->
      if target <= pc0 then
        fn.Bytecode.backedge_count <- fn.Bytecode.backedge_count + 1;
      pc := target
    | JumpIfFalse (r, target) ->
      if Heap.is_truthy h regs.(r) then pc := next
      else begin
        if target <= pc0 then
          fn.Bytecode.backedge_count <- fn.Bytecode.backedge_count + 1;
        pc := target
      end
    | JumpIfTrue (r, target) ->
      if Heap.is_truthy h regs.(r) then begin
        if target <= pc0 then
          fn.Bytecode.backedge_count <- fn.Bytecode.backedge_count + 1;
        pc := target
      end
      else pc := next
    | Return r ->
      resv := regs.(r);
      running := false)
  done;
  !resv

(* --- machine host --- *)

and host t : Tce_machine.Machine.host =
  match t.host with
  | Some h -> h
  | None ->
    let h =
      {
        Tce_machine.Machine.call_fn = (fun fid args -> call_function t fid args);
        resume =
          (fun ~opt_id ~bc_pc ~regs ~result ->
            (* resume on the shadow bytecode the code was compiled from *)
            let fn = Hashtbl.find t.shadow_table opt_id in
            if Sys.getenv_opt "TCE_DEBUG_DEOPT" <> None then
              Fmt.epr "deopt: %s (opt %d) at bc %d: %a@." fn.Bytecode.name opt_id
                bc_pc Bytecode.pp_bc fn.Bytecode.code.(bc_pc);
            let r = Array.make (max fn.Bytecode.n_regs 1) t.heap.Heap.null_v in
            Array.blit regs 0 r 0 (min (Array.length regs) fn.Bytecode.n_regs);
            (match result with
            | Some (into, v) when into >= 0 -> r.(into) <- v
            | _ -> ());
            interp_from t fn r bc_pc);
        rt_call = (fun rt args fargs -> rt_call t rt args fargs);
        on_cc_exception =
          (fun (i : Tce_machine.Machine.cc_exn_info) ->
            if Tce_attr.Ledger.on t.cfg.attr then
              Tce_attr.Ledger.record_chain t.cfg.attr ~at:(t.obs_clock ())
                ~store:
                  (Printf.sprintf "store of class %d into slot(%d,%d)"
                     i.Tce_machine.Machine.cc_value_classid
                     i.Tce_machine.Machine.cc_line i.Tce_machine.Machine.cc_pos)
                ~classid:i.Tce_machine.Machine.cc_classid
                ~line:i.Tce_machine.Machine.cc_line
                ~pos:i.Tce_machine.Machine.cc_pos
                ~victims:(victim_names t i.Tce_machine.Machine.cc_victims);
            invalidate_opt t i.Tce_machine.Machine.cc_victims);
        on_deopt =
          (fun oid ->
            match Hashtbl.find_opt t.opt_table oid with
            | Some code ->
              code.Lir.deopt_hits <- code.Lir.deopt_hits + 1;
              (* V8-style: code that keeps failing its checks is discarded;
                 the next tier-up recompiles against the updated feedback *)
              if code.Lir.deopt_hits > t.cfg.backoff.instance_deopt_limit
              then invalidate_opt t [ oid ]
            | None -> ());
        is_invalidated =
          (fun oid ->
            is_invalidated t oid
            || Tce_fault.Injector.armed t.cfg.fault
               && stale_speculation t oid
               &&
               (* retire-path invariant check at the machine's lazy-deopt
                  points (call returns, special-store retirement): catch an
                  in-flight victim of a lost/dropped notification and OSR
                  it out before stale assumptions are consumed further *)
               (detect_stale t oid ~cause:"stale-speculation-in-flight";
                true));
      }
    in
    t.host <- Some h;
    h

(** Builtins, with [push] routed through the engine's element store so its
    writes fire Class Cache / oracle events like any other store. *)
and apply_builtin t (b : Builtins.t) (args : Value.t array) : Value.t =
  match b with
  | Builtins.B_push ->
    let obj = args.(0) in
    if not (Heap.is_object t.heap obj) then
      raise (Engine_error "push: not an array");
    let len = Heap.elements_len t.heap obj in
    set_elem t None (-1) obj (Value.smi len) args.(1);
    Value.smi (len + 1)
  | _ -> Runtime.builtin_apply t.heap t.io b args

and rt_call t (rt : Lir.rt) (args : Value.t array) (fargs : float array) :
    Value.t * float =
  let h = t.heap in
  let ret v = (v, Runtime.float_of_result h v) in
  (* allocations from optimized code land in the (cache-resident) nursery *)
  let ret_alloc v =
    if Value.is_ptr v then begin
      let addr = Value.ptr_addr v in
      let bytes =
        if Heap.is_number h v then 16
        else Tce_vm.Layout.line_bytes * Heap.obj_lines h addr
      in
      Tce_machine.Machine.prefill t.mach ~addr ~bytes;
      (* arrays: the elements store too *)
      if Heap.is_object h v && Heap.elements_ptr h v <> 0 then begin
        let e = Heap.elements_ptr h v in
        Tce_machine.Machine.prefill t.mach ~addr:e
          ~bytes:((Tce_vm.Layout.elements_header_words + Heap.elements_capacity h e) * 8)
      end
    end;
    ret v
  in
  match rt with
  | Lir.Rt_alloc_object (cid, reserve) ->
    ret_alloc
      (Heap.alloc_object h
         (Hidden_class.Registry.find_exn h.Heap.reg cid)
         ~reserve_props:reserve)
  | Rt_alloc_array (ek, cap) -> ret_alloc (Heap.alloc_array h ~capacity:(max cap 1) ek)
  | Rt_box_double -> ret_alloc (Heap.number h fargs.(0))
  | Rt_generic_get_prop name -> ret (get_prop t None (-1) args.(0) name)
  | Rt_generic_set_prop name ->
    set_prop t None (-1) args.(0) name args.(1);
    ret h.Heap.null_v
  | Rt_generic_get_elem -> ret (get_elem t None (-1) args.(0) args.(1))
  | Rt_generic_set_elem ->
    set_elem t None (-1) args.(0) args.(1) args.(2);
    ret h.Heap.null_v
  | Rt_generic_binop op -> ret (fst (Runtime.eval_binop h op args.(0) args.(1)))
  | Rt_generic_unop op -> ret (Runtime.eval_unop h op args.(0))
  | Rt_elem_store_slow ->
    set_elem t None (-1) args.(0) args.(1) args.(2);
    ret h.Heap.null_v
  | Rt_to_bool -> ret (Heap.bool_v h (Heap.is_truthy h args.(0)))
  | Rt_builtin b -> ret (apply_builtin t b args)
  | Rt_fmod -> (Value.smi 0, Tce_vm.Fbits.canon (Float.rem fargs.(0) fargs.(1)))
  | Rt_trap msg -> raise (Engine_error msg)

(* --- running programs --- *)

(** Execute the program's top level. *)
let run_main t : Value.t =
  let tr = trace t in
  if Tce_obs.Trace.on tr then Tce_obs.Trace.emit tr (Tce_obs.Trace.Phase "main");
  call_function t t.prog.Bytecode.main [| t.heap.Heap.null_v |]

(** Call a top-level function by name (used by the benchmark harness to
    drive steady-state iterations). *)
let call_by_name t name (args : Value.t array) : Value.t =
  match Bytecode.find_func t.prog name with
  | Some fn ->
    call_function t fn.Bytecode.id
      (Array.append [| t.heap.Heap.null_v |] args)
  | None -> raise (Engine_error ("no such function: " ^ name))

(** Total simulated cycles attributed to optimized code so far. *)
let opt_cycles t = t.mach.Tce_machine.Machine.cycle

(** Analytic cycles of the baseline tier. *)
let baseline_cycles t =
  float_of_int t.counters.Tce_machine.Counters.baseline_instrs
  *. t.cfg.mach_cfg.Tce_machine.Config.baseline_cpi
