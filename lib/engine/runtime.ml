(** Value-level semantics of MiniJS operators and builtins, shared verbatim
    by the interpreter tier and the optimized tier's runtime stubs — the two
    tiers therefore agree by construction, and the differential tests
    (interpreter vs mixed-mode) pin that down. *)

open Tce_vm
open Tce_jit

exception Guest_error of string

let error fmt = Fmt.kstr (fun s -> raise (Guest_error s)) fmt

let is_numeric h v = Value.is_smi v || Heap.is_number h v

let to_number h v =
  if Value.is_smi v then float_of_int (Value.smi_value v)
  else if Heap.is_number h v then Heap.number_value h v
  else error "not a number: %s" (Heap.to_display_string h v)

(** JS ToInt32 on numeric values (one shared definition with the machine's
    TruncFI so both tiers agree exactly). *)
let to_int32 h v = Value.js_to_int32_float (to_number h v)

let to_display h v = Heap.to_display_string h v

(** The feedback kind observed for a binop execution. *)
let observe h a b result_smi : Feedback.binop_fb =
  if Value.is_smi a && Value.is_smi b && result_smi then Feedback.Bf_smi
  else if is_numeric h a && is_numeric h b then Feedback.Bf_number
  else if Heap.is_string h a && Heap.is_string h b then Feedback.Bf_string
  else if
    (not (is_numeric h a))
    && (not (is_numeric h b))
    && (not (Heap.is_string h a))
    && not (Heap.is_string h b)
  then Feedback.Bf_ref
  else Feedback.Bf_generic

(** Equality: numbers numerically, strings by content, references by
    identity, mixed kinds are unequal (strict-flavored; DESIGN.md notes the
    deviation from JS loose equality). *)
let values_equal h a b =
  if is_numeric h a && is_numeric h b then to_number h a = to_number h b
  else if Heap.is_string h a && Heap.is_string h b then
    Heap.string_value h a = Heap.string_value h b
  else a = b

(* Out-cell variant: BinOp is the interpreter's hottest bytecode and the
   (value, feedback) result tuple was one minor allocation per executed
   binop. [fbc] is caller-owned and reused ([binop_fb] is all constant
   constructors, so the cell write never allocates). *)
let eval_binop_cell h (op : Tce_minijs.Ast.binop) a b
    (fbc : Feedback.binop_fb ref) : Value.t =
  let num f =
    let r = Heap.number h f in
    fbc := observe h a b (Value.is_smi r);
    r
  in
  (* comparisons produce booleans; their operand feedback is smi/number by
     the operands alone (the V8 CompareIC), not by the (boolean) result *)
  let cmp_fb () =
    if Value.is_smi a && Value.is_smi b then Feedback.Bf_smi else observe h a b false
  in
  let bool_res r =
    fbc := cmp_fb ();
    Heap.bool_v h r
  in
  match op with
  | Tce_minijs.Ast.Add ->
    if Heap.is_string h a || Heap.is_string h b then begin
      let s = to_display h a ^ to_display h b in
      let r = Heap.intern_string h s in
      fbc :=
        (if Heap.is_string h a && Heap.is_string h b then Feedback.Bf_string
         else Feedback.Bf_generic);
      r
    end
    else num (to_number h a +. to_number h b)
  | Sub -> num (to_number h a -. to_number h b)
  | Mul -> num (to_number h a *. to_number h b)
  | Div -> num (to_number h a /. to_number h b)
  | Mod -> num (Float.rem (to_number h a) (to_number h b))
  | Lt | Le | Gt | Ge ->
    if Heap.is_string h a && Heap.is_string h b then begin
      let c = compare (Heap.string_value h a) (Heap.string_value h b) in
      let r =
        match op with
        | Tce_minijs.Ast.Lt -> c < 0
        | Le -> c <= 0
        | Gt -> c > 0
        | Ge -> c >= 0
        | _ -> assert false
      in
      fbc := Feedback.Bf_string;
      Heap.bool_v h r
    end
    else begin
      let x = to_number h a and y = to_number h b in
      bool_res
        (match op with
        | Tce_minijs.Ast.Lt -> x < y
        | Le -> x <= y
        | Gt -> x > y
        | Ge -> x >= y
        | _ -> assert false)
    end
  | Eq -> bool_res (values_equal h a b)
  | Ne -> bool_res (not (values_equal h a b))
  | BitAnd | BitOr | BitXor | Shl | Shr | Ushr -> (
    let x = to_int32 h a and y = to_int32 h b in
    fbc :=
      (if Value.is_smi a && Value.is_smi b then Feedback.Bf_smi
       else Feedback.Bf_number);
    match op with
    | Tce_minijs.Ast.BitAnd -> Value.smi (Value.to_int32 (x land y))
    | BitOr -> Value.smi (Value.to_int32 (x lor y))
    | BitXor -> Value.smi (Value.to_int32 (x lxor y))
    | Shl -> Value.smi (Value.to_int32 (x lsl (y land 31)))
    | Shr -> Value.smi (Value.to_int32 (x asr (y land 31)))
    | Ushr ->
      let r = (x land 0xffff_ffff) lsr (y land 31) in
      Heap.number h (float_of_int r)
    | _ -> assert false)
  | LAnd | LOr -> error "logical binop must be compiled to control flow"

let eval_binop h (op : Tce_minijs.Ast.binop) a b : Value.t * Feedback.binop_fb =
  let fbc = ref Feedback.Bf_smi in
  let v = eval_binop_cell h op a b fbc in
  (v, !fbc)

let eval_unop h (op : Tce_minijs.Ast.unop) a : Value.t =
  match op with
  | Tce_minijs.Ast.Neg -> Heap.number h (-.to_number h a)
  | Not -> Heap.bool_v h (not (Heap.is_truthy h a))
  | BitNot -> Value.smi (Value.to_int32 (lnot (to_int32 h a)))

(* --- builtins --- *)

type io = {
  out : Buffer.t;
  prng : Tce_support.Prng.t;
  trace : Tce_obs.Trace.t;  (** observability sink (heap-growth events) *)
}

let make_io ?(seed = 42) ?(trace = Tce_obs.Trace.null) () =
  { out = Buffer.create 1024; prng = Tce_support.Prng.create seed; trace }

let builtin_apply h io (b : Builtins.t) (args : Value.t array) : Value.t =
  let arg i = args.(i) in
  let numf i = to_number h (arg i) in
  match b with
  | Builtins.B_print ->
    Buffer.add_string io.out (to_display h (arg 0));
    Buffer.add_char io.out '\n';
    h.Heap.null_v
  | B_sqrt -> Heap.number h (sqrt (numf 0))
  | B_abs -> Heap.number h (Float.abs (numf 0))
  | B_floor -> Heap.number h (Float.floor (numf 0))
  | B_ceil -> Heap.number h (Float.ceil (numf 0))
  | B_sin -> Heap.number h (sin (numf 0))
  | B_cos -> Heap.number h (cos (numf 0))
  | B_exp -> Heap.number h (exp (numf 0))
  | B_log -> Heap.number h (log (numf 0))
  | B_pow -> Heap.number h (Float.pow (numf 0) (numf 1))
  | B_min -> Heap.number h (Float.min (numf 0) (numf 1))
  | B_max -> Heap.number h (Float.max (numf 0) (numf 1))
  | B_random -> Heap.number h (Tce_support.Prng.float io.prng)
  | B_array_new ->
    let n = int_of_float (numf 0) in
    if n < 0 then error "array_new: negative length";
    Heap.alloc_array_filled h n
  | B_push ->
    let a = arg 0 in
    if not (Heap.is_object h a) then error "push: not an array";
    let len = Heap.elements_len h a in
    let grew = Heap.elem_set h a len (arg 1) in
    if grew && Tce_obs.Trace.on io.trace then
      Tce_obs.Trace.emit io.trace
        (Tce_obs.Trace.Gc
           {
             heap_bytes = h.Heap.stats.Heap.object_bytes;
             grows = h.Heap.stats.Heap.elements_grows;
           });
    Value.smi (len + 1)
  | B_str_len -> Value.smi (String.length (Heap.string_value h (arg 0)))
  | B_char_code ->
    let s = Heap.string_value h (arg 0) in
    let i = Value.smi_value (arg 1) in
    if i < 0 || i >= String.length s then error "char_code: index out of range";
    Value.smi (Char.code s.[i])
  | B_from_char_code ->
    Heap.intern_string h (String.make 1 (Char.chr (to_int32 h (arg 0) land 0xff)))
  | B_substr ->
    let s = Heap.string_value h (arg 0) in
    let start = int_of_float (numf 1) and len = int_of_float (numf 2) in
    let start = max 0 (min start (String.length s)) in
    let len = max 0 (min len (String.length s - start)) in
    Heap.intern_string h (String.sub s start len)
  | B_str_eq ->
    Heap.bool_v h (Heap.string_value h (arg 0) = Heap.string_value h (arg 1))
  | B_assert_eq ->
    if not (values_equal h (arg 0) (arg 1)) then
      error "assert_eq failed: %s <> %s" (to_display h (arg 0)) (to_display h (arg 1));
    h.Heap.null_v

(** Numeric payload of a builtin/stub result for the float register path. *)
let float_of_result h v = if is_numeric h v then to_number h v else 0.0
