(** The rest of the paper's 54-benchmark roster (Figure 1 runs all of them;
    Figures 2/3/8/9 use only the ">1% check overhead" subset). These model
    the benchmarks the paper's filter *excluded* — mostly scalar math,
    string and bitop kernels with little mechanism-relevant object traffic —
    so their expected speedup is ~0, which is itself part of the shape to
    reproduce. *)

let octane_code_load =
  Workload.make ~suite:Workload.Octane ~selected:false "code-load"
    {|
// Parser/loader-flavored: string scanning + token counting, dictionary
// objects created once per "module" (cold code dominates in the original).
function Module(name, toks) { this.name = name; this.toks = toks; this.loaded = false; }
var mods = array_new(0);
var src = "function a(){return 1;} var b = a() + 2; if (b > 1) { b = b - 1; }";
function scan(s) {
  var n = str_len(s);
  var toks = 0;
  var ident = false;
  for (var i = 0; i < n; i++) {
    var c = char_code(s, i);
    var alpha = (c >= 97 && c <= 122) || (c >= 65 && c <= 90);
    if (alpha) { if (!ident) { toks++; ident = true; } }
    else { ident = false; if (c > 40) { toks++; } }
  }
  return toks;
}
function bench() {
  mods = array_new(0);
  var acc = 0;
  for (var m = 0; m < 30; m++) {
    var t = scan(src);
    push(mods, new Module("m", t));
    acc = (acc + t) & 268435455;
  }
  return acc + mods.length;
}
|}

let octane_regexp =
  Workload.make ~suite:Workload.Octane ~selected:false "regexp"
    {|
// Regex-engine stand-in: an NFA-ish state machine scanning character codes
// (no object loads in the hot loop -> below the paper's filter).
var text = "";
function setup() {
  var x = 5;
  for (var i = 0; i < 40; i++) {
    x = (x * 131 + 7) % 26;
    text = text + from_char_code(97 + x);
  }
}
setup();
function matchRuns(s) {
  var n = str_len(s);
  var state = 0;
  var hits = 0;
  for (var i = 0; i < n; i++) {
    var c = char_code(s, i);
    if (state == 0) { if (c == 97) { state = 1; } }
    else if (state == 1) {
      if (c >= 97 && c <= 109) { state = 2; } else { state = 0; }
    }
    else { hits++; state = 0; }
  }
  return hits;
}
function bench() {
  var acc = 0;
  for (var r = 0; r < 120; r++) { acc = (acc + matchRuns(text)) & 268435455; }
  return acc;
}
|}

let octane_typescript =
  Workload.make ~suite:Workload.Octane ~selected:false "typescript"
    {|
// Compiler-flavored: AST nodes with polymorphic child links (node kinds
// share no class), recursive visitation — megamorphic sites dominate.
function BinNode(l, r) { this.kind = 1; this.l = l; this.r = r; }
function NumNode(v) { this.kind = 0; this.v = v; }
function mk(depth, salt) {
  if (depth == 0) { return new NumNode(salt % 13); }
  return new BinNode(mk(depth - 1, salt * 3 + 1), mk(depth - 1, salt * 5 + 2));
}
function evaln(n) {
  if (n.kind == 0) { return n.v; }
  return (evaln(n.l) + 2 * evaln(n.r)) & 268435455;
}
var ast = mk(9, 1);
function bench() {
  var acc = 0;
  for (var r = 0; r < 5; r++) { acc = (acc + evaln(ast)) & 268435455; }
  return acc;
}
|}

let octane_zlib =
  Workload.make ~suite:Workload.Octane ~selected:false "zlib"
    {|
// Deflate-flavored: raw SMI arrays, bit twiddling, LZ-style back references.
var data = array_new(2048);
var out = array_new(4096);
function setup() {
  var x = 9;
  for (var i = 0; i < 2048; i++) {
    x = (x * 75 + 74) % 65537;
    data[i] = x & 255;
  }
}
setup();
function compress() {
  var o = 0;
  var acc = 0;
  for (var i = 0; i < 2048; i++) {
    var b = data[i];
    if (i > 4 && b == data[i - 4]) {
      out[o] = 256 | (i & 255);
    } else {
      out[o] = b;
    }
    acc = (acc + out[o]) & 268435455;
    o++;
  }
  return acc;
}
function bench() {
  var acc = 0;
  for (var r = 0; r < 10; r++) { acc = (acc + compress()) & 268435455; }
  return acc;
}
|}

let ss_3d_morph =
  Workload.make ~suite:Workload.Sunspider ~selected:false "3d-morph"
    {|
// Pure double-array morphing: unboxed elements, no check overhead.
var pts = array_new(0);
function setup(n) {
  for (var i = 0; i < n; i++) { push(pts, 0.0 + i * 0.1); }
}
setup(300);
function bench() {
  var acc = 0.0;
  for (var f = 0; f < 12; f++) {
    var n = pts.length;
    for (var i = 0; i < n; i++) {
      pts[i] = pts[i] * 0.5 + sin(f * 0.3 + i * 0.01) * 0.5;
    }
    acc = acc + pts[0] + pts[n - 1];
  }
  return acc;
}
|}

let ss_access_nsieve =
  Workload.make ~suite:Workload.Sunspider ~selected:false "access-nsieve"
    {|
var flags = array_new(8192);
function nsieve(m) {
  var count = 0;
  for (var i = 2; i < m; i++) { flags[i] = 1; }
  for (var i = 2; i < m; i++) {
    if (flags[i] == 1) {
      count++;
      for (var k = i + i; k < m; k = k + i) { flags[k] = 0; }
    }
  }
  return count;
}
function bench() {
  var acc = 0;
  for (var r = 0; r < 3; r++) { acc = acc + nsieve(8192); }
  return acc;
}
|}

let ss_bitops_3bit =
  Workload.make ~suite:Workload.Sunspider ~selected:false "bitops-3bit-bits-in-byte"
    {|
function fast3bitlookup(b) {
  var c = 0;
  var bi3b = 74331728;  // 0x4 32-entry packed table stand-in
  c = 3 & (bi3b >> ((b << 1) & 14));
  c = c + (3 & (bi3b >> ((b >> 2) & 14)));
  c = c + (3 & (bi3b >> ((b >> 5) & 6)));
  return c;
}
function bench() {
  var acc = 0;
  for (var x = 0; x < 500; x++) {
    for (var y = 0; y < 256; y++) { acc = (acc + fast3bitlookup(y)) & 268435455; }
  }
  return acc;
}
|}

let ss_bitops_bits_in_byte =
  Workload.make ~suite:Workload.Sunspider ~selected:false "bitops-bits-in-byte"
    {|
function bitsinbyte(b) {
  var m = 1;
  var c = 0;
  while (m < 256) {
    if (b & m) { c++; }
    m = m << 1;
  }
  return c;
}
function bench() {
  var acc = 0;
  for (var x = 0; x < 80; x++) {
    for (var y = 0; y < 256; y++) { acc = (acc + bitsinbyte(y)) & 268435455; }
  }
  return acc;
}
|}

let ss_bitops_bitwise_and =
  Workload.make ~suite:Workload.Sunspider ~selected:false "bitops-bitwise-and"
    {|
function bench() {
  var v = 1;
  for (var i = 0; i < 60000; i++) { v = (v + i) & 4294967295; }
  return v & 268435455;
}
|}

let ss_controlflow =
  Workload.make ~suite:Workload.Sunspider ~selected:false "controlflow-recursive"
    {|
function ack(m, n) {
  if (m == 0) { return n + 1; }
  if (n == 0) { return ack(m - 1, 1); }
  return ack(m - 1, ack(m, n - 1));
}
function fibr(n) {
  if (n < 2) { return n; }
  return fibr(n - 1) + fibr(n - 2);
}
function tak(x, y, z) {
  if (y >= x) { return z; }
  return tak(tak(x - 1, y, z), tak(y - 1, z, x), tak(z - 1, x, y));
}
function bench() {
  return (ack(2, 4) + fibr(14) + tak(9, 5, 2)) & 268435455;
}
|}

let ss_crypto_md5 =
  Workload.make ~suite:Workload.Sunspider ~selected:false "crypto-md5"
    {|
// MD5-flavored mixing over raw word arrays.
var words = array_new(64);
function setup() {
  var x = 3;
  for (var i = 0; i < 64; i++) {
    x = (x * 69069 + 1) % 1048576;
    words[i] = x;
  }
}
setup();
function ff(a, b, c, d, x, s) {
  var t = (a + ((b & c) | ((b ^ 1048575) & d)) + x) & 1048575;
  return (((t << s) | (t >> (20 - s))) + b) & 1048575;
}
function bench() {
  var a = 66052; var b = 588820; var c = 1016340; var d = 301596;
  var acc = 0;
  for (var r = 0; r < 160; r++) {
    for (var i = 0; i < 16; i++) {
      a = ff(a, b, c, d, words[(r + i) & 63], (i & 3) * 4 + 3);
      var t = d; d = c; c = b; b = a; a = t;
    }
    acc = (acc + a + b) & 268435455;
  }
  return acc;
}
|}

let ss_crypto_sha1 =
  Workload.make ~suite:Workload.Sunspider ~selected:false "crypto-sha1"
    {|
var w = array_new(80);
function setup() {
  var x = 11;
  for (var i = 0; i < 80; i++) {
    x = (x * 75 + 74) % 65537;
    w[i] = x & 65535;
  }
}
setup();
function rol(v, s) { return ((v << s) | (v >> (20 - s))) & 1048575; }
function bench() {
  var a = 83951; var b = 52992; var c = 254155; var d = 331064; var e = 955123;
  var acc = 0;
  for (var r = 0; r < 120; r++) {
    for (var i = 0; i < 20; i++) {
      var f = (b & c) | ((b ^ 1048575) & d);
      var t = (rol(a, 5) + f + e + w[(r + i) & 79]) & 1048575;
      e = d; d = c; c = rol(b, 14); b = a; a = t;
    }
    acc = (acc + a + e) & 268435455;
  }
  return acc;
}
|}

let ss_date_xparb =
  Workload.make ~suite:Workload.Sunspider ~selected:false "date-format-xparb"
    {|
// Date parsing/formatting with string building.
function pad(v, len) {
  var s = "" + v;
  while (str_len(s) < len) { s = "0" + s; }
  return s;
}
function bench() {
  var acc = 0;
  for (var i = 0; i < 150; i++) {
    var y = 1900 + (i % 200);
    var mo = 1 + (i % 12);
    var dd = 1 + (i % 28);
    var s = pad(y, 4) + "/" + pad(mo, 2) + "/" + pad(dd, 2);
    acc = (acc + str_len(s) + char_code(s, 5)) & 268435455;
  }
  return acc;
}
|}

let ss_math_partial_sums =
  Workload.make ~suite:Workload.Sunspider ~selected:false "math-partial-sums"
    {|
function bench() {
  var a1 = 0.0; var a2 = 0.0; var a3 = 0.0;
  var twothirds = 2.0 / 3.0;
  var alt = 1.0;
  for (var k = 1; k <= 2048; k++) {
    var k2 = k * k * 1.0;
    var sk = sin(k * 1.0);
    a1 = a1 + pow(twothirds, k - 1.0);
    a2 = a2 + 1.0 / (k2 * 1.0);
    a3 = a3 + alt / k;
    alt = 0.0 - alt;
  }
  return a1 + a2 + a3;
}
|}

let ss_regexp_dna =
  Workload.make ~suite:Workload.Sunspider ~selected:false "regexp-dna"
    {|
var dna = "";
function setup() {
  var x = 17;
  for (var i = 0; i < 600; i++) {
    x = (x * 131 + 7) % 4;
    if (x == 0) { dna = dna + "a"; }
    else if (x == 1) { dna = dna + "c"; }
    else if (x == 2) { dna = dna + "g"; }
    else { dna = dna + "t"; }
  }
}
setup();
function countPattern(p0, p1, p2) {
  var n = str_len(dna);
  var hits = 0;
  for (var i = 0; i + 2 < n; i++) {
    if (char_code(dna, i) == p0 && char_code(dna, i + 1) == p1
        && char_code(dna, i + 2) == p2) { hits++; }
  }
  return hits;
}
function bench() {
  var acc = 0;
  for (var r = 0; r < 15; r++) {
    acc = (acc + countPattern(97, 99, 103) + countPattern(103, 103, 116)) & 268435455;
  }
  return acc;
}
|}

let ss_string_base64 =
  Workload.make ~suite:Workload.Sunspider ~selected:false "string-base64"
    {|
var alpha = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";
var input = array_new(0);
function setup() {
  var x = 23;
  for (var i = 0; i < 600; i++) {
    x = (x * 171 + 11) % 256;
    push(input, x);
  }
}
setup();
function encode() {
  var outLen = 0;
  var acc = 0;
  for (var i = 0; i + 2 < input.length; i = i + 3) {
    var n = (input[i] << 16) | (input[i + 1] << 8) | input[i + 2];
    acc = (acc + char_code(alpha, (n >> 18) & 63) + char_code(alpha, (n >> 12) & 63)
           + char_code(alpha, (n >> 6) & 63) + char_code(alpha, n & 63)) & 268435455;
    outLen = outLen + 4;
  }
  return acc + outLen;
}
function bench() {
  var acc = 0;
  for (var r = 0; r < 12; r++) { acc = (acc + encode()) & 268435455; }
  return acc;
}
|}

let ss_string_fasta =
  Workload.make ~suite:Workload.Sunspider ~selected:false "string-fasta"
    {|
var codes = array_new(0);
var freqs = array_new(0);
function setup() {
  push(codes, 97); push(codes, 99); push(codes, 103); push(codes, 116);
  push(freqs, 30); push(freqs, 20); push(freqs, 25); push(freqs, 25);
}
setup();
function bench() {
  var x = 42;
  var acc = 0;
  for (var i = 0; i < 12000; i++) {
    x = (x * 3877 + 29573) % 139968;
    var p = (x * 100 / 139968) | 0;
    var cum = 0;
    for (var k = 0; k < 4; k++) {
      cum = cum + freqs[k];
      if (p < cum) { acc = (acc + codes[k]) & 268435455; k = 4; }
    }
  }
  return acc;
}
|}

let ss_string_validate =
  Workload.make ~suite:Workload.Sunspider ~selected:false "string-validate-input"
    {|
var names = array_new(0);
function setup() {
  var x = 31;
  for (var i = 0; i < 60; i++) {
    var s = "";
    var len = 3 + (i % 8);
    for (var k = 0; k < len; k++) {
      x = (x * 131 + 7) % 26;
      s = s + from_char_code(97 + x);
    }
    push(names, s);
  }
}
setup();
function valid(s) {
  var n = str_len(s);
  if (n < 3) { return 0; }
  for (var i = 0; i < n; i++) {
    var c = char_code(s, i);
    if (c < 97 || c > 122) { return 0; }
  }
  return 1;
}
function bench() {
  var acc = 0;
  for (var r = 0; r < 60; r++) {
    var n = names.length;
    for (var i = 0; i < n; i++) { acc = (acc + valid(names[i])) & 268435455; }
  }
  return acc;
}
|}

let kr_audio_fft =
  Workload.make ~suite:Workload.Kraken ~selected:false "audio-fft"
    {|
// Radix-2 FFT over raw double arrays (unboxed elements: no checks left).
var re = array_new(0);
var im = array_new(0);
var size = 256;
function setup() {
  for (var i = 0; i < size; i++) {
    push(re, sin(i * 0.91) + 0.0001);
    push(im, 0.0);
  }
}
setup();
function fft() {
  // bit-reverse permute
  var j = 0;
  for (var i = 0; i < size - 1; i++) {
    if (i < j) {
      var tr = re[i]; re[i] = re[j]; re[j] = tr;
      var ti = im[i]; im[i] = im[j]; im[j] = ti;
    }
    var k = size >> 1;
    while (k <= j) { j = j - k; k = k >> 1; }
    j = j + k;
  }
  for (var len = 2; len <= size; len = len << 1) {
    var ang = 6.283185307179586 / len;
    var wr = cos(ang);
    var wi = sin(ang);
    for (var i = 0; i < size; i = i + len) {
      var cr = 1.0; var ci = 0.0;
      for (var k = 0; k < (len >> 1); k++) {
        var a = i + k;
        var b = i + k + (len >> 1);
        var xr = re[b] * cr - im[b] * ci;
        var xi = re[b] * ci + im[b] * cr;
        re[b] = re[a] - xr; im[b] = im[a] - xi;
        re[a] = re[a] + xr; im[a] = im[a] + xi;
        var ncr = cr * wr - ci * wi;
        ci = cr * wi + ci * wr;
        cr = ncr;
      }
    }
  }
  return re[1] + im[1];
}
function bench() {
  var acc = 0.0;
  for (var r = 0; r < 2; r++) { acc = acc + fft(); }
  return acc;
}
|}

let kr_imaging_darkroom =
  Workload.make ~suite:Workload.Kraken ~selected:false "imaging-darkroom"
    {|
// Photo adjustments: SMI pixel arrays, per-pixel integer math with LUTs.
var pix = array_new(4096);
var lut = array_new(256);
function setup() {
  var x = 7;
  for (var i = 0; i < 4096; i++) { x = (x * 171 + 11) % 256; pix[i] = x; }
  for (var v = 0; v < 256; v++) {
    var adj = ((v * 9) / 10) | 0;
    lut[v] = adj > 255 ? 255 : adj;
  }
}
setup();
function bench() {
  var acc = 0;
  for (var r = 0; r < 6; r++) {
    for (var i = 0; i < 4096; i++) {
      var v = lut[pix[i]];
      acc = (acc + v) & 268435455;
    }
  }
  return acc;
}
|}

let kr_imaging_desaturate =
  Workload.make ~suite:Workload.Kraken ~selected:false "imaging-desaturate"
    {|
var rgb = array_new(3072);
function setup() {
  var x = 13;
  for (var i = 0; i < 3072; i++) { x = (x * 75 + 74) % 256; rgb[i] = x; }
}
setup();
function bench() {
  var acc = 0;
  for (var rep = 0; rep < 8; rep++) {
    for (var i = 0; i + 2 < 3072; i = i + 3) {
      var grey = ((rgb[i] * 30 + rgb[i + 1] * 59 + rgb[i + 2] * 11) / 100) | 0;
      acc = (acc + grey) & 268435455;
    }
  }
  return acc;
}
|}

let kr_json_parse =
  Workload.make ~suite:Workload.Kraken ~selected:false "json-parse-financial"
    {|
// JSON-parse-flavored: character scanning building record objects.
function Rec(id, price, qty) { this.id = id; this.price = price; this.qty = qty; }
var doc = "";
function setup() {
  var x = 3;
  for (var i = 0; i < 40; i++) {
    x = (x * 131 + 7) % 90;
    doc = doc + "{" + i + ":" + x + "}";
  }
}
setup();
function parse() {
  var recs = array_new(0);
  var n = str_len(doc);
  var cur = 0;
  var acc = 0;
  for (var i = 0; i < n; i++) {
    var c = char_code(doc, i);
    if (c >= 48 && c <= 57) { cur = cur * 10 + (c - 48); }
    else {
      if (cur > 0) { push(recs, new Rec(recs.length, cur, cur % 7)); }
      cur = 0;
    }
  }
  var m = recs.length;
  for (var i = 0; i < m; i++) {
    var r = recs[i];
    acc = (acc + r.price * r.qty) & 268435455;
  }
  return acc;
}
function bench() {
  var acc = 0;
  for (var r = 0; r < 8; r++) { acc = (acc + parse()) & 268435455; }
  return acc;
}
|}

let kr_json_stringify =
  Workload.make ~suite:Workload.Kraken ~selected:false "json-stringify-tinderbox"
    {|
function Entry(name, ok, t) { this.name = name; this.ok = ok; this.t = t; }
var entries = array_new(0);
function setup() {
  for (var i = 0; i < 50; i++) {
    push(entries, new Entry("build" + i, i % 3 != 0, i * 17));
  }
}
setup();
function stringify() {
  var s = "[";
  var n = entries.length;
  for (var i = 0; i < n; i++) {
    var e = entries[i];
    s = s + "{\"name\":\"" + e.name + "\",\"ok\":" + (e.ok ? "true" : "false")
        + ",\"t\":" + e.t + "}";
    if (i + 1 < n) { s = s + ","; }
  }
  return s + "]";
}
function bench() {
  var acc = 0;
  for (var r = 0; r < 6; r++) {
    var s = stringify();
    acc = (acc + str_len(s) + char_code(s, 10)) & 268435455;
  }
  return acc;
}
|}

let octane_deopt_storm =
  Workload.make ~iterations:40 ~suite:Workload.Octane ~selected:false
    "deopt-storm"
    {|
// Deopt storm (robustness, not in the paper's roster shape): a hot reader
// speculating on 24 property slots while a churn driver poisons two slots
// per iteration (SMI -> heap-number, so each slot goes polymorphic and
// raises a misspeculation exception). The per-function deopt budget blows
// through the storm threshold, exponential re-speculation backoff kicks in
// (Backoff events), and once the churn stops the reader re-optimizes and
// finishes the run speculating on the surviving slots.
function Rec(s) {
  this.p0 = s; this.p1 = s + 1; this.p2 = s + 2; this.p3 = s + 3;
  this.p4 = s + 4; this.p5 = s + 5; this.p6 = s + 6; this.p7 = s + 7;
  this.p8 = s + 8; this.p9 = s + 9; this.p10 = s + 10; this.p11 = s + 11;
  this.p12 = s + 12; this.p13 = s + 13; this.p14 = s + 14; this.p15 = s + 15;
  this.p16 = s + 16; this.p17 = s + 17; this.p18 = s + 18; this.p19 = s + 19;
  this.p20 = s + 20; this.p21 = s + 21; this.p22 = s + 22; this.p23 = s + 23;
}
var recs = array_new(0);
function setup() {
  for (var i = 0; i < 8; i++) { push(recs, new Rec(i)); }
}
setup();
var phase = 0;
function poison(k) {
  var o = recs[0];
  if (k == 0) { o.p0 = 0.5; } else if (k == 1) { o.p1 = 0.5; }
  else if (k == 2) { o.p2 = 0.5; } else if (k == 3) { o.p3 = 0.5; }
  else if (k == 4) { o.p4 = 0.5; } else if (k == 5) { o.p5 = 0.5; }
  else if (k == 6) { o.p6 = 0.5; } else if (k == 7) { o.p7 = 0.5; }
  else if (k == 8) { o.p8 = 0.5; } else if (k == 9) { o.p9 = 0.5; }
  else if (k == 10) { o.p10 = 0.5; } else if (k == 11) { o.p11 = 0.5; }
  else if (k == 12) { o.p12 = 0.5; } else if (k == 13) { o.p13 = 0.5; }
  else if (k == 14) { o.p14 = 0.5; } else if (k == 15) { o.p15 = 0.5; }
  else if (k == 16) { o.p16 = 0.5; } else if (k == 17) { o.p17 = 0.5; }
  else if (k == 18) { o.p18 = 0.5; } else if (k == 19) { o.p19 = 0.5; }
  else if (k == 20) { o.p20 = 0.5; } else if (k == 21) { o.p21 = 0.5; }
  else if (k == 22) { o.p22 = 0.5; } else { o.p23 = 0.5; }
}
function hotsum() {
  var acc = 0;
  var n = recs.length;
  for (var i = 0; i < n; i++) {
    var o = recs[i];
    acc = acc + o.p0 + o.p1 + o.p2 + o.p3 + o.p4 + o.p5 + o.p6 + o.p7
        + o.p8 + o.p9 + o.p10 + o.p11 + o.p12 + o.p13 + o.p14 + o.p15
        + o.p16 + o.p17 + o.p18 + o.p19 + o.p20 + o.p21 + o.p22 + o.p23;
  }
  return acc;
}
function bench() {
  var acc = 0;
  if (phase < 12) {
    // interleave: hotsum re-optimizes between the two breaks, so each
    // poison catches freshly installed speculative code
    poison(phase * 2);
    acc = acc + hotsum() + hotsum();
    poison(phase * 2 + 1);
    acc = acc + hotsum() + hotsum();
  } else {
    acc = acc + hotsum() + hotsum() + hotsum() + hotsum();
  }
  phase++;
  return ((acc * 2.0) | 0) & 268435455;
}
|}

let octane = [ octane_code_load; octane_regexp; octane_typescript; octane_zlib;
               octane_deopt_storm ]

let sunspider =
  [
    ss_3d_morph; ss_access_nsieve; ss_bitops_3bit; ss_bitops_bits_in_byte;
    ss_bitops_bitwise_and; ss_controlflow; ss_crypto_md5; ss_crypto_sha1;
    ss_date_xparb; ss_math_partial_sums; ss_regexp_dna; ss_string_base64;
    ss_string_fasta; ss_string_validate;
  ]

let kraken =
  [ kr_audio_fft; kr_imaging_darkroom; kr_imaging_desaturate; kr_json_parse;
    kr_json_stringify ]

let all = octane @ sunspider @ kraken
