(** JSON export of measurement results.

    Serializes every field of {!Harness.result} into a versioned
    {!Tce_obs.Export} document (kind ["harness-results"]) so external
    tooling can consume benchmark runs without parsing the pretty-printed
    tables. Also exports a lighter engine-counter document (kind
    ["run-stats"]) for ad-hoc [tcejs --metrics-json] runs. *)

module J = Tce_obs.Json
module E = Tce_engine.Engine
module Counters = Tce_machine.Counters

(** Per-category instruction counts as an object keyed by category name. *)
let by_cat_json (a : int array) : J.t =
  J.Obj
    (List.init (Array.length a) (fun i ->
         (Tce_jit.Categories.name (Tce_jit.Categories.of_index i), J.Int a.(i))))

(** Every field of {!Harness.result}, flat, with the workload descriptor
    inlined as a sub-object. *)
let result_json (r : Harness.result) : J.t =
  let w = r.Harness.workload in
  let mono_p, mono_e, poly_p, poly_e = r.Harness.fig3 in
  J.Obj
    [
      ( "workload",
        J.Obj
          [
            ("name", J.Str w.Tce_workloads.Workload.name);
            ( "suite",
              J.Str (Tce_workloads.Workload.suite_name w.Tce_workloads.Workload.suite) );
            ("selected", J.Bool w.Tce_workloads.Workload.selected);
            ("iterations", J.Int w.Tce_workloads.Workload.iterations);
          ] );
      ("mechanism", J.Bool r.Harness.mechanism);
      ("checksum", J.Str r.Harness.checksum);
      ("whole_cycles", J.Float r.Harness.whole_cycles);
      ("whole_instrs", J.Int r.Harness.whole_instrs);
      ("whole_guards", J.Int r.Harness.whole_guards);
      ("whole_by_cat", by_cat_json r.Harness.whole_by_cat);
      ("by_cat", by_cat_json r.Harness.by_cat);
      ("opt_instrs", J.Int r.Harness.opt_instrs);
      ("baseline_instrs", J.Int r.Harness.baseline_instrs);
      ("guards_obj_load", J.Int r.Harness.guards_obj_load);
      ("opt_cycles", J.Int r.Harness.opt_cycles);
      ("baseline_cycles", J.Float r.Harness.baseline_cycles);
      ("total_cycles", J.Float r.Harness.total_cycles);
      ("opt_loads", J.Int r.Harness.opt_loads);
      ("opt_stores", J.Int r.Harness.opt_stores);
      ("opt_branches", J.Int r.Harness.opt_branches);
      ("opt_fp", J.Int r.Harness.opt_fp);
      ("deopts", J.Int r.Harness.deopts);
      ("cc_exceptions", J.Int r.Harness.cc_exceptions);
      ("cc_accesses", J.Int r.Harness.cc_accesses);
      ("cc_hit_rate", J.Float r.Harness.cc_hit_rate);
      ("l1d_hit_rate", J.Float r.Harness.l1d_hit_rate);
      ("l2_hit_rate", J.Float r.Harness.l2_hit_rate);
      ("dtlb_hit_rate", J.Float r.Harness.dtlb_hit_rate);
      ("energy_nj", J.Float r.Harness.energy_nj);
      ("energy_dynamic_nj", J.Float r.Harness.energy_dynamic_nj);
      ("energy_leakage_nj", J.Float r.Harness.energy_leakage_nj);
      ( "fig3",
        J.Obj
          [
            ("mono_prop", J.Int mono_p);
            ("mono_elem", J.Int mono_e);
            ("poly_prop", J.Int poly_p);
            ("poly_elem", J.Int poly_e);
          ] );
      ("obj_loads_total", J.Int r.Harness.obj_loads_total);
      ("obj_loads_first_line", J.Int r.Harness.obj_loads_first_line);
      ("hidden_classes", J.Int r.Harness.hidden_classes);
      ("heap_object_bytes", J.Int r.Harness.heap_object_bytes);
      ("heap_header_extra_bytes", J.Int r.Harness.heap_header_extra_bytes);
      ("multi_line_objects", J.Int r.Harness.multi_line_objects);
      ("objects_allocated", J.Int r.Harness.objects_allocated);
    ]

(** Versioned document holding a list of results. *)
let results_document (rs : Harness.result list) : J.t =
  Tce_obs.Export.document ~kind:"harness-results"
    (J.Obj [ ("results", J.List (List.map result_json rs)) ])

let write_results ~path (rs : Harness.result list) =
  Tce_obs.Export.to_file ~path (results_document rs)

(** Live engine counters (for [tcejs --metrics-json] on arbitrary
    programs, where no {!Harness.result} exists). *)
let engine_json (t : E.t) : J.t =
  let c = t.E.counters in
  let hs = t.E.heap.Tce_vm.Heap.stats in
  J.Obj
    [
      ("mechanism", J.Bool t.E.cfg.E.mechanism);
      ("opt_instrs", J.Int (Counters.opt_instrs c));
      ("by_cat", by_cat_json c.Counters.by_cat);
      ("baseline_instrs", J.Int c.Counters.baseline_instrs);
      ("opt_cycles", J.Int (E.opt_cycles t));
      ("baseline_cycles", J.Float (E.baseline_cycles t));
      ("guards_obj_load", J.Int c.Counters.guards_obj_load);
      ("deopts", J.Int c.Counters.deopts);
      ("cc_exceptions", J.Int c.Counters.cc_exception_deopts);
      ("tierups", J.Int c.Counters.tierups);
      ("cc_accesses", J.Int t.E.cc.Tce_core.Class_cache.stats.accesses);
      ("cc_hit_rate", J.Float (Tce_core.Class_cache.hit_rate t.E.cc));
      ( "hidden_classes",
        J.Int (Tce_vm.Hidden_class.Registry.class_count t.E.heap.Tce_vm.Heap.reg) );
      ("heap_object_bytes", J.Int hs.Tce_vm.Heap.object_bytes);
      ("objects_allocated", J.Int hs.Tce_vm.Heap.objects_allocated);
    ]

let engine_document (t : E.t) : J.t =
  Tce_obs.Export.document ~kind:"run-stats" (engine_json t)
