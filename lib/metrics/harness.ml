(** Steady-state measurement harness (paper §5: "executing the benchmark ten
    times and taking statistics from the tenth iteration").

    Protocol: run the program's top level (setup), call [bench()]
    [iterations - 1] times as warm-up (tier-up and Class List profiling
    happen here), then reset all counters and measure a single call. *)

open Tce_workloads
module E = Tce_engine.Engine
module M = Tce_machine.Machine
module Counters = Tce_machine.Counters

type result = {
  workload : Workload.t;
  mechanism : bool;
  checksum : string;  (** display string of the measured bench() result *)
  (* whole-run measurement (setup + all iterations: includes the baseline
     tier, compilations and deopt transients — the paper's "whole
     application") *)
  whole_cycles : float;
  whole_instrs : int;
  whole_guards : int;
  whole_by_cat : int array;
  by_cat : int array;  (** optimized-tier instructions per category *)
  by_check_kind : int array;
      (** [C_check] executions per {!Tce_jit.Categories.check_kind} (slot 0 =
          unattributed); sums to [by_cat.(C_check)] — asserted in
          {!Tce_runner.Record.of_pair} *)
  opt_instrs : int;
  baseline_instrs : int;
  guards_obj_load : int;
  opt_cycles : int;
  baseline_cycles : float;
  total_cycles : float;
  opt_loads : int;
  opt_stores : int;
  opt_branches : int;
  opt_fp : int;
  deopts : int;
  cc_exceptions : int;
  cc_accesses : int;
  cc_hit_rate : float;
  l1d_hit_rate : float;
  l2_hit_rate : float;
  dtlb_hit_rate : float;
  energy_nj : float;
  energy_dynamic_nj : float;
  energy_leakage_nj : float;
  fig3 : int * int * int * int;
      (** dynamic object-load accesses: (mono prop, mono elem, poly prop,
          poly elem) against the full-run oracle *)
  obj_loads_total : int;
  obj_loads_first_line : int;
  hidden_classes : int;
  heap_object_bytes : int;
  heap_header_extra_bytes : int;
  multi_line_objects : int;
  objects_allocated : int;
}

(** Energy over a measurement window: counters [c] plus the cache / Class
    Cache traffic of the same window (passed explicitly so callers can
    hand in snapshot-diffed values). *)
let energy_of ~(c : Counters.t) ~l1_accesses ~l2_accesses ~mem_accesses
    ~cc_accesses ~total_cycles =
  let opt = Counters.opt_instrs c in
  let base = c.Counters.baseline_instrs in
  let fbase = float_of_int base in
  let alu =
    max 0
      (opt - c.Counters.opt_loads - c.Counters.opt_stores
     - c.Counters.opt_branches - c.Counters.opt_fp)
  in
  let ev =
    {
      Tce_machine.Energy.instrs = opt + base;
      alu_ops = alu + int_of_float (fbase *. 0.5);
      fp_ops = c.Counters.opt_fp;
      branches = c.Counters.opt_branches + int_of_float (fbase *. 0.15);
      l1_accesses = l1_accesses + int_of_float (fbase *. 0.35);
      l2_accesses;
      mem_accesses;
      cc_accesses;
      cycles = total_cycles;
    }
  in
  Tce_machine.Energy.compute ev

(** Whole-run measurement: counters on from the first instruction. *)
let run_whole ~config (w : Workload.t) =
  let t = E.of_source ~config w.Workload.source in
  E.set_measuring t true;
  ignore (E.run_main t);
  for _ = 1 to w.Workload.iterations do
    ignore (E.call_by_name t "bench" [||])
  done;
  let c = t.E.counters in
  let cycles = float_of_int (E.opt_cycles t) +. E.baseline_cycles t in
  (cycles, Counters.total_instrs c, c.Counters.guards_obj_load,
   Array.copy c.Counters.by_cat, c.Counters.baseline_instrs)

(** Run one workload under one engine configuration.

    One execution serves both measurements: counting never affects simulated
    state, so the counters run from the first instruction, the cumulative end
    state is the whole-run measurement, and the steady-state window is the
    end state minus a snapshot taken where the former protocol reset
    ({!Counters.since}). Every number is bit-identical to the historical
    two-execution protocol — the analytic [baseline_cycles] is recomputed
    from the diffed instruction count rather than float-subtracted, and the
    hit rates replicate the [accesses = 0 -> 1.0] convention on the diffed
    traffic — at half the host cost. *)
let run ?(config = E.default_config) (w : Workload.t) : result =
  let t = E.of_source ~config w.Workload.source in
  let tr = config.E.trace in
  let phase name =
    if Tce_obs.Trace.on tr then Tce_obs.Trace.emit tr (Tce_obs.Trace.Phase name)
  in
  E.set_measuring t true;
  phase "setup";
  ignore (E.run_main t);
  phase "warmup";
  for _ = 1 to w.Workload.iterations - 1 do
    ignore (E.call_by_name t "bench" [||])
  done;
  (* the steady-state window opens here *)
  let snap = Counters.copy t.E.counters in
  let m = t.E.mach in
  let l1d_a0 = m.M.l1d.Tce_machine.Cache.stats.accesses
  and l1d_h0 = m.M.l1d.Tce_machine.Cache.stats.hits
  and l1i_a0 = m.M.l1i.Tce_machine.Cache.stats.accesses
  and l2_a0 = m.M.l2.Tce_machine.Cache.stats.accesses
  and l2_h0 = m.M.l2.Tce_machine.Cache.stats.hits
  and l2_m0 = m.M.l2.Tce_machine.Cache.stats.misses
  and dtlb_a0 = m.M.dtlb.Tce_machine.Tlb.stats.accesses
  and dtlb_h0 = m.M.dtlb.Tce_machine.Tlb.stats.hits
  and cc_a0 = t.E.cc.Tce_core.Class_cache.stats.accesses
  and cc_h0 = t.E.cc.Tce_core.Class_cache.stats.hits in
  let cycles0 = E.opt_cycles t in
  phase "measure";
  let v = E.call_by_name t "bench" [||] in
  E.set_measuring t false;
  let checksum = Tce_vm.Heap.to_display_string t.E.heap v in
  let cw = t.E.counters in
  let whole_cycles = float_of_int (E.opt_cycles t) +. E.baseline_cycles t in
  let whole_instrs = Counters.total_instrs cw in
  let whole_guards = cw.Counters.guards_obj_load in
  let whole_by_cat = Array.copy cw.Counters.by_cat in
  let c = Counters.since cw snap in
  let opt_cycles = E.opt_cycles t - cycles0 in
  let baseline_cycles =
    float_of_int c.Counters.baseline_instrs
    *. config.E.mach_cfg.Tce_machine.Config.baseline_cpi
  in
  let total_cycles = float_of_int opt_cycles +. baseline_cycles in
  let rate hits accesses =
    if accesses = 0 then 1.0 else float_of_int hits /. float_of_int accesses
  in
  let l1d_a = m.M.l1d.Tce_machine.Cache.stats.accesses - l1d_a0
  and l1d_h = m.M.l1d.Tce_machine.Cache.stats.hits - l1d_h0
  and l1i_a = m.M.l1i.Tce_machine.Cache.stats.accesses - l1i_a0
  and l2_a = m.M.l2.Tce_machine.Cache.stats.accesses - l2_a0
  and l2_h = m.M.l2.Tce_machine.Cache.stats.hits - l2_h0
  and l2_m = m.M.l2.Tce_machine.Cache.stats.misses - l2_m0
  and dtlb_a = m.M.dtlb.Tce_machine.Tlb.stats.accesses - dtlb_a0
  and dtlb_h = m.M.dtlb.Tce_machine.Tlb.stats.hits - dtlb_h0
  and cc_a = t.E.cc.Tce_core.Class_cache.stats.accesses - cc_a0
  and cc_h = t.E.cc.Tce_core.Class_cache.stats.hits - cc_h0 in
  let energy =
    energy_of ~c ~l1_accesses:(l1d_a + l1i_a) ~l2_accesses:l2_a
      ~mem_accesses:l2_m ~cc_accesses:cc_a ~total_cycles
  in
  let mono_p, mono_e, poly_p, poly_e = Counters.classify_obj_loads c t.E.oracle in
  let hs = t.E.heap.Tce_vm.Heap.stats in
  {
    workload = w;
    mechanism = config.E.mechanism;
    checksum;
    whole_cycles;
    whole_instrs;
    whole_guards;
    whole_by_cat;
    by_cat = Array.copy c.Counters.by_cat;
    by_check_kind = Array.copy c.Counters.by_check_kind;
    opt_instrs = Counters.opt_instrs c;
    baseline_instrs = c.Counters.baseline_instrs;
    guards_obj_load = c.Counters.guards_obj_load;
    opt_cycles;
    baseline_cycles;
    total_cycles;
    opt_loads = c.Counters.opt_loads;
    opt_stores = c.Counters.opt_stores;
    opt_branches = c.Counters.opt_branches;
    opt_fp = c.Counters.opt_fp;
    deopts = c.Counters.deopts;
    cc_exceptions = c.Counters.cc_exception_deopts;
    cc_accesses = cc_a;
    cc_hit_rate = rate cc_h cc_a;
    l1d_hit_rate = rate l1d_h l1d_a;
    l2_hit_rate = rate l2_h l2_a;
    dtlb_hit_rate = rate dtlb_h dtlb_a;
    energy_nj = energy.Tce_machine.Energy.total_nj;
    energy_dynamic_nj = energy.Tce_machine.Energy.dynamic_nj;
    energy_leakage_nj = energy.Tce_machine.Energy.leakage_nj;
    fig3 = (mono_p, mono_e, poly_p, poly_e);
    obj_loads_total = c.Counters.obj_loads_total;
    obj_loads_first_line = c.Counters.obj_loads_first_line;
    hidden_classes =
      Tce_vm.Hidden_class.Registry.class_count t.E.heap.Tce_vm.Heap.reg;
    heap_object_bytes = hs.Tce_vm.Heap.object_bytes;
    heap_header_extra_bytes = hs.Tce_vm.Heap.header_extra_bytes;
    multi_line_objects = hs.Tce_vm.Heap.multi_line_objects;
    objects_allocated = hs.Tce_vm.Heap.objects_allocated;
  }

(** Run mechanism-off and mechanism-on and check that the checksums agree
    (differential correctness is part of every experiment). *)
let run_pair ?(config = E.default_config) (w : Workload.t) : result * result =
  let off = run ~config:{ config with E.mechanism = false } w in
  let on = run ~config:{ config with E.mechanism = true } w in
  if off.checksum <> on.checksum then
    failwith
      (Printf.sprintf "%s: checksum mismatch (off=%s on=%s)" w.Workload.name
         off.checksum on.checksum);
  (off, on)

(** [run_pair] plus the host wall-clock seconds each side took
    [(off, on, wall_off, wall_on)]. The wall times are informational (they
    depend on the host machine and load); every simulated number in the
    two results stays deterministic. *)
let run_pair_timed ?(config = E.default_config) (w : Workload.t) :
    result * result * float * float =
  let t0 = Unix.gettimeofday () in
  let off = run ~config:{ config with E.mechanism = false } w in
  let t1 = Unix.gettimeofday () in
  let on = run ~config:{ config with E.mechanism = true } w in
  let t2 = Unix.gettimeofday () in
  if off.checksum <> on.checksum then
    failwith
      (Printf.sprintf "%s: checksum mismatch (off=%s on=%s)" w.Workload.name
         off.checksum on.checksum);
  (off, on, t1 -. t0, t2 -. t1)

(* --- cycle-attribution profiling --- *)

(** A profiled whole-run pair: both sides of one workload under a fresh
    {!Tce_prof.Profile} each, with their collapsed-stack exports. *)
type profiled = {
  p_name : string;
  p_off : Tce_prof.Profile.summary;
  p_on : Tce_prof.Profile.summary;
  p_folded_off : string;
  p_folded_on : string;
}

(** One profiled whole run (measuring from the first instruction, like
    {!run_whole} — profiled runs never reset counters, so the baseline-side
    reconciliation in [summarize] holds). Returns (checksum of the last
    bench() value, summary, collapsed-stack lines rooted at
    ["name;on|off"]). *)
let run_profiled_one ?(config = E.default_config) ~mechanism (w : Workload.t)
    : string * Tce_prof.Profile.summary * string =
  let prof = Tce_prof.Profile.create () in
  let config = { config with E.mechanism; prof } in
  let t = E.of_source ~config w.Workload.source in
  E.set_measuring t true;
  ignore (E.run_main t);
  let v = ref t.E.heap.Tce_vm.Heap.null_v in
  for _ = 1 to w.Workload.iterations do
    v := E.call_by_name t "bench" [||]
  done;
  let checksum = Tce_vm.Heap.to_display_string t.E.heap !v in
  let cpi = config.E.mach_cfg.Tce_machine.Config.baseline_cpi in
  let summary =
    Tce_prof.Profile.summarize prof ~program:w.Workload.name ~mechanism
      ~machine_cycles:(E.opt_cycles t)
      ~baseline_instrs:t.E.counters.Counters.baseline_instrs ~baseline_cpi:cpi
      ()
  in
  let root = w.Workload.name ^ ";" ^ (if mechanism then "on" else "off") in
  (checksum, summary, Tce_prof.Profile.folded ~root ~baseline_cpi:cpi prof)

(** Profile both sides of [w], checking the sides agree on the checksum.
    [verify] additionally reruns each side *unprofiled* and asserts the
    totals are bit-identical — profiling must never change a simulated
    number. *)
let run_pair_profiled ?(verify = false) ?(config = E.default_config)
    (w : Workload.t) : profiled =
  let ck_off, p_off, p_folded_off =
    run_profiled_one ~config ~mechanism:false w
  in
  let ck_on, p_on, p_folded_on = run_profiled_one ~config ~mechanism:true w in
  if ck_off <> ck_on then
    failwith
      (Printf.sprintf "%s: checksum mismatch (off=%s on=%s)" w.Workload.name
         ck_off ck_on);
  if verify then
    List.iter
      (fun (mech, (s : Tce_prof.Profile.summary)) ->
        let wc, _, _, _, bi =
          run_whole ~config:{ config with E.mechanism = mech } w
        in
        if bi <> s.Tce_prof.Profile.baseline_instrs
           || wc <> s.Tce_prof.Profile.total_cycles
        then
          failwith
            (Printf.sprintf
               "%s (mechanism %b): profiling changed simulated results \
                (unprofiled %.0f cycles / %d baseline instrs, profiled %.0f \
                / %d)"
               w.Workload.name mech wc bi s.Tce_prof.Profile.total_cycles
               s.Tce_prof.Profile.baseline_instrs))
      [ (false, p_off); (true, p_on) ];
  { p_name = w.Workload.name; p_off; p_on; p_folded_off; p_folded_on }

(** Pure-interpreter checksum (ground truth for differential tests). *)
let interp_checksum ?(config = E.default_config) (w : Workload.t) : string =
  let t = E.of_source ~config:{ config with E.jit = false } w.Workload.source in
  E.set_measuring t false;
  ignore (E.run_main t);
  let v = ref t.E.heap.Tce_vm.Heap.null_v in
  for _ = 1 to w.Workload.iterations do
    v := E.call_by_name t "bench" [||]
  done;
  Tce_vm.Heap.to_display_string t.E.heap !v

(** Checksum of the measured (last) iteration in full-JIT mode. *)
let jit_checksum ?(config = E.default_config) ~mechanism (w : Workload.t) : string =
  (run ~config:{ config with E.mechanism } w).checksum
