(** JSON export of measurement results (versioned {!Tce_obs.Export}
    documents). *)

(** Per-category instruction counts keyed by {!Tce_jit.Categories} name. *)
val by_cat_json : int array -> Tce_obs.Json.t

(** Every field of a {!Harness.result}, flat, workload descriptor inlined. *)
val result_json : Harness.result -> Tce_obs.Json.t

(** Document of kind ["harness-results"] holding a list of results. *)
val results_document : Harness.result list -> Tce_obs.Json.t

(** Write [results_document] to [path] (["-"] = stdout). *)
val write_results : path:string -> Harness.result list -> unit

(** Live engine counters, for runs of arbitrary programs (kind
    ["run-stats"]). *)
val engine_json : Tce_engine.Engine.t -> Tce_obs.Json.t

val engine_document : Tce_engine.Engine.t -> Tce_obs.Json.t
