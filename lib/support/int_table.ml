(** Open-addressed int -> int hash table for simulator hot paths (see
    int_table.mli). Linear probing over a power-of-two array; absent keys
    answer a caller-supplied default, so lookups allocate nothing (no
    [option], no boxing — unlike [Hashtbl.find_opt]). *)

type t = {
  mutable keys : int array;
  mutable vals : int array;
  mutable mask : int;  (** capacity - 1; capacity is a power of two *)
  mutable live : int;  (** stored bindings *)
  mutable used : int;  (** live + tombstones (probe-chain occupancy) *)
  (* [min_int] / [min_int + 1] mark empty / deleted slots in [keys], so
     those two keys get dedicated out-of-band cells instead. *)
  mutable sp1 : bool;
  mutable sp1v : int;
  mutable sp2 : bool;
  mutable sp2v : int;
}

let empty_k = min_int
let tomb_k = min_int + 1

(* Fibonacci-style multiplicative hash; the xor-fold pushes the high-entropy
   product bits down into the masked range. *)
let hash k mask =
  let h = k * 0x2545F4914F6CDD1D in
  (h lxor (h lsr 31)) land mask

let pow2_at_least n =
  let rec go c = if c >= n then c else go (c * 2) in
  go 8

let create ?(size = 16) () =
  let cap = pow2_at_least (max 8 size) in
  {
    keys = Array.make cap empty_k;
    vals = Array.make cap 0;
    mask = cap - 1;
    live = 0;
    used = 0;
    sp1 = false;
    sp1v = 0;
    sp2 = false;
    sp2v = 0;
  }

let length t = t.live + (if t.sp1 then 1 else 0) + if t.sp2 then 1 else 0

(* Tail-recursive probe: compiles to a loop with everything in registers.
   The former [ref]-based loop allocated three ref cells per lookup (classic
   mode does not unbox local refs), which dominated GC pressure on the TLB
   fast path. *)
let find t k default =
  if k > tomb_k then begin
    let keys = t.keys and vals = t.vals and mask = t.mask in
    let rec probe i =
      let kk = Array.unsafe_get keys i in
      if kk = k then Array.unsafe_get vals i
      else if kk = empty_k then default
      else probe ((i + 1) land mask)
    in
    probe (hash k mask)
  end
  else if k = empty_k then (if t.sp1 then t.sp1v else default)
  else if t.sp2 then t.sp2v
  else default

let mem t k = find t k min_int <> min_int || find t k 0 <> 0

(* Re-place the live bindings into a fresh array of [cap] slots (drops
   tombstones). *)
let rehash t cap =
  let old_keys = t.keys and old_vals = t.vals in
  let keys = Array.make cap empty_k and vals = Array.make cap 0 in
  let mask = cap - 1 in
  Array.iteri
    (fun j k ->
      if k > tomb_k then begin
        let i = ref (hash k mask) in
        while keys.(!i) <> empty_k do
          i := (!i + 1) land mask
        done;
        keys.(!i) <- k;
        vals.(!i) <- old_vals.(j)
      end)
    old_keys;
  t.keys <- keys;
  t.vals <- vals;
  t.mask <- mask;
  t.used <- t.live

let set t k v =
  if k > tomb_k then begin
    (* keep probe chains short: grow (or sweep tombstones) at 3/4 load *)
    if 4 * (t.used + 1) > 3 * (t.mask + 1) then
      rehash t (pow2_at_least (4 * (t.live + 1)));
    let keys = t.keys and mask = t.mask in
    let i = ref (hash k mask) in
    let slot = ref (-1) in
    let continue = ref true in
    while !continue do
      let kk = Array.unsafe_get keys !i in
      if kk = k then begin
        t.vals.(!i) <- v;
        continue := false
      end
      else if kk = empty_k then begin
        let j = if !slot >= 0 then !slot else !i in
        if !slot < 0 then t.used <- t.used + 1;
        keys.(j) <- k;
        t.vals.(j) <- v;
        t.live <- t.live + 1;
        continue := false
      end
      else begin
        if kk = tomb_k && !slot < 0 then slot := !i;
        i := (!i + 1) land mask
      end
    done
  end
  else if k = empty_k then begin
    t.sp1 <- true;
    t.sp1v <- v
  end
  else begin
    t.sp2 <- true;
    t.sp2v <- v
  end

let remove t k =
  if k > tomb_k then begin
    let keys = t.keys and mask = t.mask in
    let i = ref (hash k mask) in
    let continue = ref true in
    while !continue do
      let kk = Array.unsafe_get keys !i in
      if kk = k then begin
        keys.(!i) <- tomb_k;
        t.live <- t.live - 1;
        continue := false
      end
      else if kk = empty_k then continue := false
      else i := (!i + 1) land mask
    done
  end
  else if k = empty_k then t.sp1 <- false
  else t.sp2 <- false

let copy t =
  {
    keys = Array.copy t.keys;
    vals = Array.copy t.vals;
    mask = t.mask;
    live = t.live;
    used = t.used;
    sp1 = t.sp1;
    sp1v = t.sp1v;
    sp2 = t.sp2;
    sp2v = t.sp2v;
  }

let clear t =
  Array.fill t.keys 0 (Array.length t.keys) empty_k;
  t.live <- 0;
  t.used <- 0;
  t.sp1 <- false;
  t.sp2 <- false

let iter f t =
  if t.sp1 then f empty_k t.sp1v;
  if t.sp2 then f tomb_k t.sp2v;
  Array.iteri (fun i k -> if k > tomb_k then f k t.vals.(i)) t.keys

let fold f t acc =
  let acc = ref acc in
  iter (fun k v -> acc := f k v !acc) t;
  !acc
