(** Open-addressed int -> int hash table for simulator hot paths.

    [Hashtbl]-free replacement used where a lookup sits on a per-access
    path (TLB page index, MSHR fill map, heap side tables, profiled-load
    counters): linear probing over a flat power-of-two array, and absent
    keys answer a caller-supplied default so lookups never allocate an
    [option]. Any [int] is a valid key (the two sentinel values used
    internally are handled out of band). Iteration order is unspecified but
    deterministic for a given insertion/removal history. *)

type t

(** [create ?size ()] makes an empty table with capacity for at least
    [size] bindings before the first rehash. *)
val create : ?size:int -> unit -> t

(** [find t k default] is the value bound to [k], or [default]. Never
    allocates. *)
val find : t -> int -> int -> int

val mem : t -> int -> bool

(** [set t k v] binds [k] to [v], replacing any previous binding. *)
val set : t -> int -> int -> unit

(** [remove t k] drops the binding for [k] (no-op when absent). *)
val remove : t -> int -> unit

(** Drop all bindings, keeping the current capacity. *)
val clear : t -> unit

(** An independent copy (used to snapshot per-site counters). *)
val copy : t -> t

val length : t -> int
val iter : (int -> int -> unit) -> t -> unit
val fold : (int -> int -> 'a -> 'a) -> t -> 'a -> 'a
