(** Small statistics helpers used by the metrics layer. *)

let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

(** Geometric mean of positive values; non-positive entries are skipped
    (matches how suite-average speedups are reported). *)
let geomean xs =
  let xs = List.filter (fun x -> x > 0.0) xs in
  match xs with
  | [] -> 0.0
  | _ ->
    let n = float_of_int (List.length xs) in
    exp (List.fold_left (fun acc x -> acc +. log x) 0.0 xs /. n)

let min_max = function
  | [] -> (0.0, 0.0)
  | x :: xs ->
    List.fold_left (fun (lo, hi) v -> (Float.min lo v, Float.max hi v)) (x, x) xs

let percent num den = if den = 0 then 0.0 else 100.0 *. float_of_int num /. float_of_int den

let percent_f num den = if den = 0.0 then 0.0 else 100.0 *. num /. den

(** Speedup in percent of [base] relative to [opt]: how much faster [opt]
    is, expressed the way the paper does ("improvement in number of
    cycles"): [(base - opt) / base * 100]. *)
let improvement ~base ~opt =
  if base = 0.0 then 0.0 else (base -. opt) /. base *. 100.0

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
}

let summarize xs =
  match xs with
  | [] -> { n = 0; mean = 0.0; stddev = 0.0; min = 0.0; max = 0.0 }
  | _ ->
    let m = mean xs in
    let var =
      List.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs
      /. float_of_int (List.length xs)
    in
    let lo, hi = min_max xs in
    { n = List.length xs; mean = m; stddev = sqrt var; min = lo; max = hi }

(** Half-width of the normal-approximation 95% confidence interval of the
    mean ([1.96 * stddev / sqrt n]); 0 when fewer than two samples. *)
let ci95 (s : summary) =
  if s.n < 2 then 0.0 else 1.96 *. s.stddev /. sqrt (float_of_int s.n)

(** [(mean, ci95)] of a sample, in one call. *)
let mean_ci95 xs =
  let s = summarize xs in
  (s.mean, ci95 s)

(** Relative change of [cur] against [base] in percent:
    [(cur - base) / base * 100]. Positive = [cur] is larger (for cycle
    counts: a regression). 0 when [base] is 0. *)
let rel_delta_pct ~base ~cur =
  if base = 0.0 then 0.0 else (cur -. base) /. base *. 100.0
