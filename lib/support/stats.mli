(** Statistics helpers for the metrics layer. *)

val mean : float list -> float

(** Geometric mean of the positive values (non-positive entries skipped). *)
val geomean : float list -> float

val min_max : float list -> float * float

(** [100 * num / den] (0 when [den] is 0). *)
val percent : int -> int -> float

val percent_f : float -> float -> float

(** The paper's "improvement in number of cycles":
    [(base - opt) / base * 100]. *)
val improvement : base:float -> opt:float -> float

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
}

val summarize : float list -> summary

(** Half-width of the normal-approximation 95% confidence interval of the
    mean; 0 when fewer than two samples. *)
val ci95 : summary -> float

(** [(mean, ci95)] of a sample. *)
val mean_ci95 : float list -> float * float

(** Relative change of [cur] against [base] in percent:
    [(cur - base) / base * 100] (0 when [base] is 0). Positive means [cur]
    is larger — for cycle counts, a regression. *)
val rel_delta_pct : base:float -> cur:float -> float
