(** Cross-run trend analytics: generic time-series representation, robust
    (median-absolute-deviation) anomaly detection, and report rendering.
    The runner-level driver that knows about [results/history/] lives in
    [Tce_runner.Trend_data]; this module is data-source agnostic so tests
    can feed it synthetic histories. *)

type point = { pt_label : string; pt_value : float }

type series = {
  sr_group : string;  (** e.g. a workload name, or "suite" *)
  sr_metric : string;  (** e.g. "cycles_on" *)
  sr_unit : string;  (** display unit, [""] when dimensionless *)
  sr_points : point list;  (** oldest first *)
  sr_flag : bool;  (** whether this series participates in detection *)
}

type anomaly = {
  an_group : string;
  an_metric : string;
  an_label : string;
  an_value : float;
  an_median : float;
  an_sigma : float;  (** robust sigma, 1.4826 x MAD *)
}

val median : float list -> float
(** [nan] on the empty list. *)

val mad_sigma : float list -> float
(** Robust spread estimate: 1.4826 times the median absolute deviation. *)

val detect : ?k:float -> ?rel_floor:float -> series list -> anomaly list
(** Flag points deviating from the series median by more than
    [max (k * sigma) (rel_floor * |median|)].  Defaults: [k = 4.0],
    [rel_floor = 0.001].  Series with [sr_flag = false] or fewer than 4
    points are skipped.  With a zero MAD (bit-identical deterministic
    history) any deviation beyond the relative floor flags — which is why
    an unchanged baseline yields zero anomalies. *)

val text_report : title:string -> series list -> anomaly list -> string

val html_dashboard :
  title:string -> generated:string -> series list -> anomaly list -> string
(** Standalone HTML page (inline CSS, inline SVG sparklines, no external
    assets); anomalous points are marked with red circles. *)
