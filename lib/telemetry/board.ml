(** Live TTY status board (see board.mli). *)

type row = {
  r_slot : int;
  r_state : string;  (** "run" | "idle" | "retry" | "dead" | "done" *)
  r_cell : string;
  r_done : int;
  r_total : int;
  r_retries : int;
  r_rate : float;
}

let bar width frac =
  let frac = Float.max 0.0 (Float.min 1.0 frac) in
  let fill = int_of_float (Float.round (frac *. float_of_int width)) in
  String.concat ""
    [ String.make fill '#'; String.make (width - fill) '.' ]

let render_row r =
  let frac =
    if r.r_total <= 0 then 0.0
    else float_of_int r.r_done /. float_of_int r.r_total
  in
  let rate = if r.r_rate > 0.0 then Printf.sprintf "%5.2f c/s" r.r_rate
             else "    -    " in
  Printf.sprintf "  shard %d [%s] %3d/%-3d %-5s %s retries=%d %s" r.r_slot
    (bar 16 frac) r.r_done r.r_total r.r_state rate r.r_retries
    (if r.r_cell = "" then "-" else r.r_cell)

(* Pure rendering so tests can assert both shapes without a terminal.
   TTY mode returns the full multi-line board; non-TTY mode returns one
   plain summary line with no escape sequences. *)
let render ~tty ~summary rows =
  if tty then
    String.concat "\n"
      (Printf.sprintf "telem: %s" summary :: List.map render_row rows)
  else Printf.sprintf "telem: %s" summary

type t = {
  b_tty : bool;
  b_out : out_channel;
  mutable b_lines : int;  (** lines drawn by the previous TTY frame *)
  mutable b_last : float;
  b_interval : float;
}

let create ?(out = stderr) () =
  let tty =
    try Unix.isatty (Unix.descr_of_out_channel out) with Unix.Unix_error _ -> false
  in
  {
    b_tty = tty;
    b_out = out;
    b_lines = 0;
    b_last = neg_infinity;
    (* A TTY redraws smoothly; a log file gets a line every few seconds. *)
    b_interval = (if tty then 0.2 else 5.0);
  }

let tty t = t.b_tty

let refresh ?(force = false) t ~summary rows =
  let now = Unix.gettimeofday () in
  if force || now -. t.b_last >= t.b_interval then begin
    t.b_last <- now;
    if t.b_tty then begin
      (* Move back over the previous frame and clear each line. *)
      if t.b_lines > 0 then
        output_string t.b_out (Printf.sprintf "\r\027[%dA" t.b_lines);
      let text = render ~tty:true ~summary rows in
      let lines = String.split_on_char '\n' text in
      List.iter
        (fun l -> output_string t.b_out ("\027[2K" ^ l ^ "\n"))
        lines;
      t.b_lines <- List.length lines
    end
    else output_string t.b_out (render ~tty:false ~summary rows ^ "\n");
    flush t.b_out
  end

let finish t ~summary rows =
  refresh ~force:true t ~summary rows
