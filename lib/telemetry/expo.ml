(** OpenMetrics exposition: file snapshots, a strict parser, and a
    dependency-free HTTP scrape endpoint (see expo.mli). *)

let write_snapshot ~path reg =
  let dir = Filename.dirname path in
  if dir <> "." && dir <> "/" && not (Sys.file_exists dir) then
    (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  output_string oc (Registry.to_openmetrics reg);
  close_out oc;
  Sys.rename tmp path

(* --- Strict OpenMetrics text parser --------------------------------- *)

module Parse = struct
  type sample = {
    p_name : string;
    p_labels : (string * string) list;
    p_value : float;
  }

  type family = {
    p_fname : string;
    p_type : string;
    p_help : string option;
    p_points : sample list;
  }

  exception Bad of string

  let fail fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

  let is_name_char = function
    | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true
    | _ -> false

  (* Parse one sample line: name{label="v",...} value *)
  let parse_sample ln line =
    let n = String.length line in
    let i = ref 0 in
    while !i < n && is_name_char line.[!i] do incr i done;
    if !i = 0 then fail "line %d: missing metric name" ln;
    let name = String.sub line 0 !i in
    let labels = ref [] in
    if !i < n && line.[!i] = '{' then begin
      incr i;
      let fin = ref false in
      while not !fin do
        if !i >= n then fail "line %d: unterminated label set" ln;
        if line.[!i] = '}' then begin incr i; fin := true end
        else begin
          let s = !i in
          while !i < n && line.[!i] <> '=' do incr i done;
          if !i >= n then fail "line %d: label without '='" ln;
          let k = String.sub line s (!i - s) in
          incr i;
          if !i >= n || line.[!i] <> '"' then
            fail "line %d: label value must be quoted" ln;
          incr i;
          let buf = Buffer.create 16 in
          let closed = ref false in
          while not !closed do
            if !i >= n then fail "line %d: unterminated label value" ln;
            (match line.[!i] with
            | '"' -> closed := true
            | '\\' ->
              if !i + 1 >= n then fail "line %d: dangling escape" ln;
              incr i;
              (match line.[!i] with
              | '\\' -> Buffer.add_char buf '\\'
              | '"' -> Buffer.add_char buf '"'
              | 'n' -> Buffer.add_char buf '\n'
              | c -> fail "line %d: bad escape '\\%c'" ln c)
            | c -> Buffer.add_char buf c);
            incr i
          done;
          labels := (k, Buffer.contents buf) :: !labels;
          if !i < n && line.[!i] = ',' then incr i
          else if !i >= n || line.[!i] <> '}' then
            fail "line %d: expected ',' or '}' in labels" ln
        end
      done
    end;
    if !i >= n || line.[!i] <> ' ' then
      fail "line %d: expected space before value" ln;
    let v = String.sub line (!i + 1) (n - !i - 1) in
    let value =
      if v = "+Inf" then infinity
      else if v = "-Inf" then neg_infinity
      else
        match float_of_string_opt v with
        | Some f -> f
        | None -> fail "line %d: bad value %S" ln v
    in
    { p_name = name; p_labels = List.rev !labels; p_value = value }

  let base_of_sample ftype name =
    let strip suf =
      let ls = String.length suf and ln = String.length name in
      if ln > ls && String.sub name (ln - ls) ls = suf then
        Some (String.sub name 0 (ln - ls))
      else None
    in
    match ftype with
    | "counter" -> strip "_total"
    | "histogram" -> (
      match strip "_bucket" with
      | Some b -> Some b
      | None -> (
        match strip "_sum" with Some b -> Some b | None -> strip "_count"))
    | _ -> Some name

  (* Validate histogram bucket structure for one series (same non-le
     labels): le ascending, counts cumulative, +Inf terminal, _count ==
     +Inf bucket. *)
  let check_histogram ffname points =
    let series = Hashtbl.create 4 in
    let key labels =
      String.concat "\x00"
        (List.concat_map
           (fun (k, v) -> if k = "le" then [] else [ k; v ])
           labels)
    in
    List.iter
      (fun s ->
        let k = key s.p_labels in
        let prev = try Hashtbl.find series k with Not_found -> [] in
        Hashtbl.replace series k (s :: prev))
      points;
    Hashtbl.iter
      (fun _ samples ->
        let samples = List.rev samples in
        let buckets =
          List.filter (fun s -> s.p_name = ffname ^ "_bucket") samples
        in
        if buckets = [] then fail "histogram %s: series without buckets" ffname;
        let le_of s =
          match List.assoc_opt "le" s.p_labels with
          | None -> fail "histogram %s: bucket without le label" ffname
          | Some "+Inf" -> infinity
          | Some v -> (
            match float_of_string_opt v with
            | Some f -> f
            | None -> fail "histogram %s: bad le %S" ffname v)
        in
        let prev_le = ref neg_infinity and prev_c = ref neg_infinity in
        List.iter
          (fun b ->
            let le = le_of b in
            if le <= !prev_le then
              fail "histogram %s: le values not ascending" ffname;
            if b.p_value < !prev_c then
              fail "histogram %s: bucket counts not cumulative" ffname;
            prev_le := le;
            prev_c := b.p_value)
          buckets;
        if !prev_le <> infinity then
          fail "histogram %s: missing +Inf bucket" ffname;
        (match
           List.find_opt (fun s -> s.p_name = ffname ^ "_count") samples
         with
        | Some c when c.p_value <> !prev_c ->
          fail "histogram %s: _count disagrees with +Inf bucket" ffname
        | Some _ -> ()
        | None -> fail "histogram %s: missing _count" ffname);
        if not (List.exists (fun s -> s.p_name = ffname ^ "_sum") samples)
        then fail "histogram %s: missing _sum" ffname)
      series

  let parse text : family list =
    let lines = String.split_on_char '\n' text in
    (* The exposition must end with "# EOF\n": last split element empty,
       second-to-last the EOF marker. *)
    (match List.rev lines with
    | "" :: "# EOF" :: _ -> ()
    | _ -> fail "exposition must terminate with '# EOF\\n'");
    let fams = ref [] in
    let cur = ref None in
    let push () =
      match !cur with
      | None -> ()
      | Some f ->
        if List.exists (fun g -> g.p_fname = f.p_fname) !fams then
          fail "duplicate family %s" f.p_fname;
        if f.p_type = "histogram" then
          check_histogram f.p_fname (List.rev f.p_points);
        fams := { f with p_points = List.rev f.p_points } :: !fams;
        cur := None
    in
    let ln = ref 0 in
    let stop = ref false in
    List.iter
      (fun line ->
        incr ln;
        if not !stop then
          if line = "# EOF" then begin
            push ();
            stop := true
          end
          else if line = "" then fail "line %d: blank line" !ln
          else if String.length line >= 7 && String.sub line 0 7 = "# TYPE " then begin
            push ();
            match String.split_on_char ' ' line with
            | [ "#"; "TYPE"; name; ty ] ->
              if not (List.mem ty [ "counter"; "gauge"; "histogram" ]) then
                fail "line %d: unsupported type %s" !ln ty;
              cur :=
                Some { p_fname = name; p_type = ty; p_help = None; p_points = [] }
            | _ -> fail "line %d: malformed TYPE line" !ln
          end
          else if String.length line >= 7 && String.sub line 0 7 = "# HELP " then begin
            match !cur with
            | None -> fail "line %d: HELP before TYPE" !ln
            | Some f ->
              if f.p_points <> [] then
                fail "line %d: HELP after samples" !ln;
              let rest = String.sub line 7 (String.length line - 7) in
              (match String.index_opt rest ' ' with
              | None -> fail "line %d: HELP without text" !ln
              | Some i ->
                let name = String.sub rest 0 i in
                if name <> f.p_fname then
                  fail "line %d: HELP name mismatch" !ln;
                cur :=
                  Some
                    {
                      f with
                      p_help =
                        Some
                          (String.sub rest (i + 1)
                             (String.length rest - i - 1));
                    })
          end
          else if String.length line > 0 && line.[0] = '#' then
            fail "line %d: unknown comment directive" !ln
          else begin
            match !cur with
            | None -> fail "line %d: sample before any TYPE" !ln
            | Some f ->
              let s = parse_sample !ln line in
              (match base_of_sample f.p_type s.p_name with
              | Some b when b = f.p_fname -> ()
              | _ ->
                fail "line %d: sample %s not in family %s (type %s)" !ln
                  s.p_name f.p_fname f.p_type);
              let dup =
                List.exists
                  (fun o -> o.p_name = s.p_name && o.p_labels = s.p_labels)
                  f.p_points
              in
              if dup then fail "line %d: duplicate sample" !ln;
              cur := Some { f with p_points = s :: f.p_points }
          end)
      lines;
    if not !stop then fail "missing '# EOF'";
    List.rev !fams

  let parse_result text =
    match parse text with
    | fams -> Ok fams
    | exception Bad msg -> Error msg

  let find fams name = List.find_opt (fun f -> f.p_fname = name) fams

  let sample_value fams ~family ~sample ~labels =
    match find fams family with
    | None -> None
    | Some f ->
      List.find_map
        (fun s ->
          if
            s.p_name = sample
            && List.for_all
                 (fun (k, v) -> List.assoc_opt k s.p_labels = Some v)
                 labels
          then Some s.p_value
          else None)
        f.p_points

  let sum fams ~family ~sample =
    match find fams family with
    | None -> None
    | Some f ->
      Some
        (List.fold_left
           (fun acc s -> if s.p_name = sample then acc +. s.p_value else acc)
           0.0 f.p_points)
end

(* --- HTTP scrape endpoint ------------------------------------------- *)

module Server = struct
  type t = {
    sock : Unix.file_descr;
    port : int;
    stop_flag : bool Atomic.t;
    domain : unit Domain.t;
  }

  let content_type =
    "application/openmetrics-text; version=1.0.0; charset=utf-8"

  let handle_conn fd body =
    (* Read whatever request line arrives (we answer every path with the
       metrics payload), bounded and with a receive timeout so a stuck
       client cannot wedge the accept loop. *)
    (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 1.0
     with Unix.Unix_error _ -> ());
    let buf = Bytes.create 8192 in
    (try ignore (Unix.read fd buf 0 (Bytes.length buf))
     with Unix.Unix_error _ -> ());
    let payload = body () in
    let resp =
      Printf.sprintf
        "HTTP/1.0 200 OK\r\n\
         Content-Type: %s\r\n\
         Content-Length: %d\r\n\
         Connection: close\r\n\
         \r\n\
         %s"
        content_type (String.length payload) payload
    in
    let n = String.length resp in
    let off = ref 0 in
    (try
       while !off < n do
         let w = Unix.write_substring fd resp !off (n - !off) in
         if w <= 0 then raise Exit;
         off := !off + w
       done
     with _ -> ())

  let serve_loop sock stop_flag body =
    let continue = ref true in
    while !continue do
      if Atomic.get stop_flag then continue := false
      else begin
        match Unix.select [ sock ] [] [] 0.25 with
        | [], _, _ -> ()
        | _ :: _, _, _ -> (
          match Unix.accept sock with
          | fd, _ ->
            (try handle_conn fd body with _ -> ());
            (try Unix.close fd with Unix.Unix_error _ -> ())
          | exception Unix.Unix_error _ -> ())
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      end
    done

  let start ?(host = "127.0.0.1") ~port ~body () =
    match
      let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      (try
         Unix.setsockopt sock Unix.SO_REUSEADDR true;
         Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
         Unix.listen sock 16
       with e ->
         (try Unix.close sock with Unix.Unix_error _ -> ());
         raise e);
      let actual_port =
        match Unix.getsockname sock with
        | Unix.ADDR_INET (_, p) -> p
        | _ -> port
      in
      let stop_flag = Atomic.make false in
      let domain = Domain.spawn (fun () -> serve_loop sock stop_flag body) in
      { sock; port = actual_port; stop_flag; domain }
    with
    | t -> Ok t
    | exception Unix.Unix_error (err, _, _) ->
      Error
        (Printf.sprintf "cannot bind metrics endpoint on %s:%d: %s" host port
           (Unix.error_message err))
    | exception e -> Error (Printexc.to_string e)

  let port t = t.port

  let stop t =
    Atomic.set t.stop_flag true;
    Domain.join t.domain;
    try Unix.close t.sock with Unix.Unix_error _ -> ()
end
