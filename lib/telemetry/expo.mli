(** OpenMetrics exposition for a {!Registry.t}: crash-safe file snapshots,
    a strict in-repo parser (used by tests and [validate_obs]), and a
    dependency-free single-threaded HTTP scrape endpoint. *)

val write_snapshot : path:string -> Registry.t -> unit
(** Write the registry's OpenMetrics rendering to [path] atomically
    (temp file + rename), creating the parent directory if needed. *)

(** Strict OpenMetrics 1.0 text parser.  Validates structure, not just
    syntax: [# TYPE] must precede samples, sample names must match the
    family and its type's suffix rules, histogram buckets must have
    ascending [le] bounds, cumulative counts, a terminal [+Inf] bucket
    agreeing with [_count], and the exposition must end with [# EOF]. *)
module Parse : sig
  type sample = {
    p_name : string;
    p_labels : (string * string) list;
    p_value : float;
  }

  type family = {
    p_fname : string;
    p_type : string;  (** "counter" | "gauge" | "histogram" *)
    p_help : string option;
    p_points : sample list;
  }

  exception Bad of string

  val parse : string -> family list
  (** Raises {!Bad} with a line-anchored message on any violation. *)

  val parse_result : string -> (family list, string) result

  val find : family list -> string -> family option

  val sample_value :
    family list ->
    family:string ->
    sample:string ->
    labels:(string * string) list ->
    float option
  (** First sample in [family] named [sample] whose labels include all of
      [labels]. *)

  val sum : family list -> family:string -> sample:string -> float option
  (** Sum of every sample named [sample] across the family's series;
      [None] if the family is absent. *)
end

(** Minimal HTTP/1.0 server answering every request with the current
    metrics payload.  Runs on its own domain; the accept loop polls a
    stop flag every 250ms so {!stop} returns promptly. *)
module Server : sig
  type t

  val start :
    ?host:string ->
    port:int ->
    body:(unit -> string) ->
    unit ->
    (t, string) result
  (** Bind and start serving.  [port] 0 picks an ephemeral port (read it
      back with {!port}).  [body] is called per request from the server
      domain — it must be thread-safe. *)

  val port : t -> int
  val stop : t -> unit
end
