(** Live status board for supervised runs ([--status-board]).

    On a TTY the board redraws in place (ANSI cursor-up + erase-line) with
    one row per worker slot; when the output is not a TTY it degrades to
    plain throttled [telem: ...] summary lines containing no escape
    sequences, so piping a supervised run to a file stays readable. *)

type row = {
  r_slot : int;
  r_state : string;  (** "run" | "idle" | "retry" | "dead" | "done" *)
  r_cell : string;  (** workload in flight, [""] when idle *)
  r_done : int;
  r_total : int;
  r_retries : int;
  r_rate : float;  (** cells/sec reported by the worker's heartbeat *)
}

val render : tty:bool -> summary:string -> row list -> string
(** Pure rendering of one frame (exposed for tests).  With [~tty:false]
    the result is a single plain line and contains no ['\027']. *)

type t

val create : ?out:out_channel -> unit -> t
(** Board writing to [out] (default [stderr]); TTY-ness is detected with
    [Unix.isatty]. *)

val tty : t -> bool

val refresh : ?force:bool -> t -> summary:string -> row list -> unit
(** Redraw if the throttle interval elapsed (0.2s on a TTY, 5s otherwise)
    or [force] is set. *)

val finish : t -> summary:string -> row list -> unit
(** Draw a final frame unconditionally. *)
