(** Cross-run trend engine: series, MAD anomaly detection, text and
    HTML/SVG reports (see trends.mli). *)

type point = { pt_label : string; pt_value : float }

type series = {
  sr_group : string;  (** e.g. workload name, or "suite" *)
  sr_metric : string;  (** e.g. "cycles_on" *)
  sr_unit : string;  (** display unit, "" when dimensionless *)
  sr_points : point list;  (** oldest first *)
  sr_flag : bool;  (** participate in anomaly detection? *)
}

type anomaly = {
  an_group : string;
  an_metric : string;
  an_label : string;  (** run label of the offending point *)
  an_value : float;
  an_median : float;
  an_sigma : float;  (** robust sigma (1.4826 x MAD) *)
}

let median xs =
  match xs with
  | [] -> nan
  | _ ->
    let a = Array.of_list xs in
    Array.sort compare a;
    let n = Array.length a in
    if n mod 2 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.0

let mad_sigma xs =
  let m = median xs in
  let dev = List.map (fun x -> Float.abs (x -. m)) xs in
  1.4826 *. median dev

(* Robust outlier detection.  With a MAD of zero (bit-identical history,
   the common case for deterministic metrics) any nonzero deviation is an
   anomaly — subject to [rel_floor], which forgives sub-0.1% drift so
   float-derived series do not alarm on formatting noise. *)
let detect ?(k = 4.0) ?(rel_floor = 0.001) series : anomaly list =
  List.concat_map
    (fun s ->
      if (not s.sr_flag) || List.length s.sr_points < 4 then []
      else begin
        let values = List.map (fun p -> p.pt_value) s.sr_points in
        let m = median values in
        let sigma = mad_sigma values in
        let threshold = Float.max (k *. sigma) (rel_floor *. Float.abs m) in
        List.filter_map
          (fun p ->
            let dev = Float.abs (p.pt_value -. m) in
            if dev > threshold && dev > 0.0 then
              Some
                {
                  an_group = s.sr_group;
                  an_metric = s.sr_metric;
                  an_label = p.pt_label;
                  an_value = p.pt_value;
                  an_median = m;
                  an_sigma = sigma;
                }
            else None)
          s.sr_points
      end)
    series

(* --- text report ---------------------------------------------------- *)

let fmt_num v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.4g" v

let text_report ~title series anomalies =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (title ^ "\n");
  Buffer.add_string buf (String.make (String.length title) '=' ^ "\n\n");
  let groups =
    List.fold_left
      (fun acc s -> if List.mem s.sr_group acc then acc else acc @ [ s.sr_group ])
      [] series
  in
  List.iter
    (fun g ->
      Buffer.add_string buf (Printf.sprintf "%s\n" g);
      List.iter
        (fun s ->
          if s.sr_group = g then begin
            let values = List.map (fun p -> p.pt_value) s.sr_points in
            let latest =
              match List.rev s.sr_points with [] -> nan | p :: _ -> p.pt_value
            in
            let flagged =
              List.exists
                (fun a -> a.an_group = g && a.an_metric = s.sr_metric)
                anomalies
            in
            Buffer.add_string buf
              (Printf.sprintf "  %-22s n=%-3d latest=%-12s median=%-12s%s%s\n"
                 s.sr_metric (List.length s.sr_points) (fmt_num latest)
                 (fmt_num (median values))
                 (if s.sr_unit = "" then "" else " " ^ s.sr_unit)
                 (if flagged then "  << ANOMALY" else ""))
          end)
        series;
      Buffer.add_char buf '\n')
    groups;
  if anomalies = [] then Buffer.add_string buf "No anomalies detected.\n"
  else begin
    Buffer.add_string buf
      (Printf.sprintf "%d anomalies:\n" (List.length anomalies));
    List.iter
      (fun a ->
        Buffer.add_string buf
          (Printf.sprintf "  %s/%s @ %s: %s (median %s, sigma %s)\n"
             a.an_group a.an_metric a.an_label (fmt_num a.an_value)
             (fmt_num a.an_median) (fmt_num a.an_sigma)))
      anomalies
  end;
  Buffer.contents buf

(* --- HTML/SVG dashboard --------------------------------------------- *)

let html_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let sparkline ?(w = 280) ?(h = 60) s anomalies =
  let pts = Array.of_list s.sr_points in
  let n = Array.length pts in
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf
       "<svg width=\"%d\" height=\"%d\" viewBox=\"0 0 %d %d\" \
        xmlns=\"http://www.w3.org/2000/svg\">" w h w h);
  if n > 0 then begin
    let vmin = ref infinity and vmax = ref neg_infinity in
    Array.iter
      (fun p ->
        if p.pt_value < !vmin then vmin := p.pt_value;
        if p.pt_value > !vmax then vmax := p.pt_value)
      pts;
    let span = !vmax -. !vmin in
    let pad = 6.0 in
    let x i =
      if n = 1 then float_of_int w /. 2.0
      else pad +. (float_of_int i /. float_of_int (n - 1)
                   *. (float_of_int w -. (2.0 *. pad)))
    in
    let y v =
      if span <= 0.0 then float_of_int h /. 2.0
      else
        float_of_int h -. pad
        -. ((v -. !vmin) /. span *. (float_of_int h -. (2.0 *. pad)))
    in
    let coords =
      Array.to_list
        (Array.mapi
           (fun i p -> Printf.sprintf "%.1f,%.1f" (x i) (y p.pt_value))
           pts)
    in
    Buffer.add_string buf
      (Printf.sprintf
         "<polyline fill=\"none\" stroke=\"#2a6fbb\" stroke-width=\"1.5\" \
          points=\"%s\"/>"
         (String.concat " " coords));
    Array.iteri
      (fun i p ->
        let bad =
          List.exists
            (fun a ->
              a.an_group = s.sr_group && a.an_metric = s.sr_metric
              && a.an_label = p.pt_label)
            anomalies
        in
        if bad then
          Buffer.add_string buf
            (Printf.sprintf
               "<circle cx=\"%.1f\" cy=\"%.1f\" r=\"3.5\" fill=\"#cc2222\">\
                <title>%s: %s</title></circle>"
               (x i) (y p.pt_value)
               (html_escape p.pt_label)
               (fmt_num p.pt_value)))
      pts
  end;
  Buffer.add_string buf "</svg>";
  Buffer.contents buf

let html_dashboard ~title ~generated series anomalies =
  let buf = Buffer.create 16384 in
  Buffer.add_string buf
    (Printf.sprintf
       "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\
        <title>%s</title>\n<style>\n\
        body{font-family:system-ui,sans-serif;margin:2em;color:#222}\n\
        h1{font-size:1.4em} h2{font-size:1.1em;margin:1.4em 0 0.4em;\
        border-bottom:1px solid #ddd}\n\
        .grid{display:flex;flex-wrap:wrap;gap:1em}\n\
        .card{border:1px solid #ddd;border-radius:6px;padding:0.6em 0.8em}\n\
        .card .m{font-weight:600;font-size:0.9em}\n\
        .card .v{color:#555;font-size:0.8em}\n\
        .flagged{border-color:#cc2222;background:#fff5f5}\n\
        .anom{color:#cc2222}\n\
        footer{margin-top:2em;color:#888;font-size:0.8em}\n\
        </style></head><body>\n<h1>%s</h1>\n"
       (html_escape title) (html_escape title));
  if anomalies = [] then
    Buffer.add_string buf "<p>No anomalies detected.</p>\n"
  else begin
    Buffer.add_string buf
      (Printf.sprintf "<p class=\"anom\">%d anomalies:</p>\n<ul>\n"
         (List.length anomalies));
    List.iter
      (fun a ->
        Buffer.add_string buf
          (Printf.sprintf
             "<li class=\"anom\">%s / %s @ %s: %s (median %s)</li>\n"
             (html_escape a.an_group) (html_escape a.an_metric)
             (html_escape a.an_label) (fmt_num a.an_value)
             (fmt_num a.an_median)))
      anomalies;
    Buffer.add_string buf "</ul>\n"
  end;
  let groups =
    List.fold_left
      (fun acc s -> if List.mem s.sr_group acc then acc else acc @ [ s.sr_group ])
      [] series
  in
  List.iter
    (fun g ->
      Buffer.add_string buf
        (Printf.sprintf "<h2>%s</h2>\n<div class=\"grid\">\n" (html_escape g));
      List.iter
        (fun s ->
          if s.sr_group = g then begin
            let flagged =
              List.exists
                (fun a -> a.an_group = g && a.an_metric = s.sr_metric)
                anomalies
            in
            let latest =
              match List.rev s.sr_points with [] -> nan | p :: _ -> p.pt_value
            in
            Buffer.add_string buf
              (Printf.sprintf
                 "<div class=\"card%s\"><div class=\"m\">%s</div>%s\
                  <div class=\"v\">latest %s%s · n=%d</div></div>\n"
                 (if flagged then " flagged" else "")
                 (html_escape s.sr_metric)
                 (sparkline s anomalies)
                 (fmt_num latest)
                 (if s.sr_unit = "" then ""
                  else " " ^ html_escape s.sr_unit)
                 (List.length s.sr_points))
          end)
        series;
      Buffer.add_string buf "</div>\n")
    groups;
  Buffer.add_string buf
    (Printf.sprintf "<footer>generated %s</footer>\n</body></html>\n"
       (html_escape generated));
  Buffer.contents buf
