(** Worker→parent heartbeat protocol.

    Workers spawned with [--heartbeat SLOT] interleave single-line [telem]
    envelopes (versioned via {!Tce_obs.Export}, schema v5) with their
    [bench-row]/[fault-cell] output on stdout.  A beat carries the cell in
    flight, completed-cell count, and observed throughput so the parent can
    drive the status board and per-worker gauges without waiting for a row
    to complete.  The supervisor treats any stdout line that is not a
    parseable row as a heartbeat candidate; {!of_line} never raises, so a
    torn beat (worker killed mid-write) degrades to "garbage" handling
    exactly as before telemetry existed. *)

val kind : string
(** The envelope kind, ["telem"]. *)

type t = {
  slot : int;  (** worker slot that produced the beat *)
  seq : int;  (** per-worker monotonically increasing sequence number *)
  cells_done : int;
  cells_total : int;
  index : int;  (** roster index of the cell in flight, [-1] when idle *)
  name : string;  (** workload name of the cell in flight, [""] when idle *)
  rate : float;  (** cells per second since the worker started *)
  at : float;  (** unix timestamp of the beat *)
}

val to_line : t -> string
(** One-line compact JSON envelope (no embedded newline). *)

val of_line : string -> t option
(** Parse a candidate line.  [None] for anything that is not a complete,
    well-formed [telem] envelope — never raises. *)

(** Worker-side emitter: owns the sequence number, completed count, and
    start time, and flushes one line per beat. *)
type emitter

val emitter : slot:int -> total:int -> out:out_channel -> emitter

val beat_start : emitter -> index:int -> name:string -> unit
(** Announce that the worker is starting cell [index]/[name]. *)

val beat_cell_done : emitter -> unit
(** Record a completed cell and announce idle state. *)

val beat_done : emitter -> unit
(** Final beat after the roster is drained. *)
