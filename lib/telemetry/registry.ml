(** Labeled operational-metrics registry (see registry.mli). *)

type kind = Counter | Gauge | Histogram

let kind_name = function
  | Counter -> "counter"
  | Gauge -> "gauge"
  | Histogram -> "histogram"

(* One (family, label set) time series. Counters and gauges use [value];
   histograms use the bucket counts plus sum/count. *)
type series = {
  s_labels : (string * string) list;  (** sorted by label name *)
  mutable s_value : float;
  s_buckets : int array;  (** one slot per bound, plus the +Inf slot *)
  mutable s_sum : float;
  mutable s_count : int;
}

type family = {
  f_name : string;
  f_help : string;
  f_kind : kind;
  f_bounds : float array;  (** histogram bucket upper bounds, ascending *)
  f_series : (string, series) Hashtbl.t;  (** key: rendered label set *)
  mutable f_order : string list;  (** label-set keys, newest first *)
  f_owner : t;
}

and t = {
  enabled : bool;
  mu : Mutex.t;
  mutable fams : family list;  (** newest first *)
}

let create () = { enabled = true; mu = Mutex.create (); fams = [] }
let null = { enabled = false; mu = Mutex.create (); fams = [] }
let enabled t = t.enabled

let with_lock t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

(* Metric names follow the Prometheus grammar; a bad name is a programming
   error at registration time, never a runtime condition. *)
let valid_name s =
  s <> ""
  && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true | _ -> false)
       s

let valid_label_name s =
  s <> ""
  && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false)
       s

let default_buckets =
  [ 0.05; 0.1; 0.25; 0.5; 1.0; 2.5; 5.0; 10.0; 30.0; 60.0; 120.0; 300.0 ]

let register t ?(help = "") ?(buckets = default_buckets) kind name : family =
  if not (valid_name name) then
    invalid_arg (Printf.sprintf "Registry: bad metric name %S" name);
  let bounds = Array.of_list buckets in
  Array.iteri
    (fun i b ->
      if i > 0 && b <= bounds.(i - 1) then
        invalid_arg
          (Printf.sprintf "Registry: %s buckets must be strictly ascending" name))
    bounds;
  with_lock t (fun () ->
      match List.find_opt (fun f -> f.f_name = name) t.fams with
      | Some f when f.f_kind = kind -> f
      | Some f ->
        invalid_arg
          (Printf.sprintf "Registry: %s already registered as a %s" name
             (kind_name f.f_kind))
      | None ->
        let f =
          {
            f_name = name;
            f_help = help;
            f_kind = kind;
            f_bounds = bounds;
            f_series = Hashtbl.create 8;
            f_order = [];
            f_owner = t;
          }
        in
        if t.enabled then t.fams <- f :: t.fams;
        f)

let counter t ?help name = register t ?help Counter name
let gauge t ?help name = register t ?help Gauge name
let histogram t ?help ?buckets name = register t ?help ?buckets Histogram name

let label_key labels =
  String.concat "\x00" (List.concat_map (fun (k, v) -> [ k; v ]) labels)

let series_of f labels =
  let labels =
    List.sort (fun (a, _) (b, _) -> compare a b) labels
  in
  List.iter
    (fun (k, _) ->
      if not (valid_label_name k) then
        invalid_arg (Printf.sprintf "Registry: bad label name %S on %s" k f.f_name))
    labels;
  let key = label_key labels in
  match Hashtbl.find_opt f.f_series key with
  | Some s -> s
  | None ->
    let s =
      {
        s_labels = labels;
        s_value = 0.0;
        s_buckets = Array.make (Array.length f.f_bounds + 1) 0;
        s_sum = 0.0;
        s_count = 0;
      }
    in
    Hashtbl.replace f.f_series key s;
    f.f_order <- key :: f.f_order;
    s

let inc ?(labels = []) ?(by = 1.0) f =
  if f.f_owner.enabled then begin
    if f.f_kind <> Counter then
      invalid_arg (Printf.sprintf "Registry: inc on non-counter %s" f.f_name);
    if by < 0.0 then
      invalid_arg (Printf.sprintf "Registry: counter %s cannot decrease" f.f_name);
    with_lock f.f_owner (fun () ->
        let s = series_of f labels in
        s.s_value <- s.s_value +. by)
  end

let set ?(labels = []) f v =
  if f.f_owner.enabled then begin
    if f.f_kind <> Gauge then
      invalid_arg (Printf.sprintf "Registry: set on non-gauge %s" f.f_name);
    with_lock f.f_owner (fun () ->
        let s = series_of f labels in
        s.s_value <- v)
  end

let observe ?(labels = []) f v =
  if f.f_owner.enabled then begin
    if f.f_kind <> Histogram then
      invalid_arg (Printf.sprintf "Registry: observe on non-histogram %s" f.f_name);
    with_lock f.f_owner (fun () ->
        let s = series_of f labels in
        let n = Array.length f.f_bounds in
        let slot = ref n in
        (try
           for i = 0 to n - 1 do
             if v <= f.f_bounds.(i) then begin
               slot := i;
               raise Exit
             end
           done
         with Exit -> ());
        s.s_buckets.(!slot) <- s.s_buckets.(!slot) + 1;
        s.s_sum <- s.s_sum +. v;
        s.s_count <- s.s_count + 1)
  end

let find_series f labels =
  let labels = List.sort (fun (a, _) (b, _) -> compare a b) labels in
  Hashtbl.find_opt f.f_series (label_key labels)

let value ?(labels = []) f =
  with_lock f.f_owner (fun () ->
      Option.map (fun s -> s.s_value) (find_series f labels))

let histogram_stats ?(labels = []) f =
  with_lock f.f_owner (fun () ->
      Option.map (fun s -> (s.s_count, s.s_sum)) (find_series f labels))

(* --- OpenMetrics text exposition --- *)

(* Deterministic value rendering: integral values print with no fraction,
   everything else with enough digits to round-trip operational readings. *)
let fmt_value v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

(* HELP text escaping per OpenMetrics: backslash and newline only
   (double quotes are legal in help text). *)
let escape_help s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (function
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let escape_label_value s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (function
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let render_labels buf labels =
  match labels with
  | [] -> ()
  | _ ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf k;
        Buffer.add_string buf "=\"";
        Buffer.add_string buf (escape_label_value v);
        Buffer.add_char buf '"')
      labels;
    Buffer.add_char buf '}'

let sample buf name labels v =
  Buffer.add_string buf name;
  render_labels buf labels;
  Buffer.add_char buf ' ';
  Buffer.add_string buf (fmt_value v);
  Buffer.add_char buf '\n'

let bound_label b =
  if b = infinity then "+Inf"
  else if Float.is_integer b && Float.abs b < 1e15 then Printf.sprintf "%.1f" b
  else Printf.sprintf "%.9g" b

let to_openmetrics t =
  with_lock t (fun () ->
      let buf = Buffer.create 4096 in
      List.iter
        (fun f ->
          Buffer.add_string buf
            (Printf.sprintf "# TYPE %s %s\n" f.f_name (kind_name f.f_kind));
          if f.f_help <> "" then
            Buffer.add_string buf
              (Printf.sprintf "# HELP %s %s\n" f.f_name (escape_help f.f_help));
          List.iter
            (fun key ->
              let s = Hashtbl.find f.f_series key in
              match f.f_kind with
              | Counter -> sample buf (f.f_name ^ "_total") s.s_labels s.s_value
              | Gauge -> sample buf f.f_name s.s_labels s.s_value
              | Histogram ->
                let acc = ref 0 in
                Array.iteri
                  (fun i c ->
                    acc := !acc + c;
                    let le =
                      if i = Array.length f.f_bounds then infinity
                      else f.f_bounds.(i)
                    in
                    sample buf (f.f_name ^ "_bucket")
                      (s.s_labels @ [ ("le", bound_label le) ])
                      (float_of_int !acc))
                  s.s_buckets;
                sample buf (f.f_name ^ "_sum") s.s_labels s.s_sum;
                sample buf (f.f_name ^ "_count") s.s_labels
                  (float_of_int s.s_count))
            (List.rev f.f_order))
        (List.rev t.fams);
      Buffer.add_string buf "# EOF\n";
      Buffer.contents buf)
