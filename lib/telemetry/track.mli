(** One metrics namespace for the simulated counters.

    {!Tce_obs.Snapshot} samples used to be turned into Perfetto counter
    tracks by ad-hoc code in [Sink.chrome]; the catalog now lives here so
    the Chrome trace tracks ([deopts], [cc-occupancy], [cc-conflicts],
    [heap-bytes], [cc-occupancy/sets-N], [prof/<cost>]) and the scrape
    registry's [tce_sim_counter{track="..."}] gauge share one name list. *)

val catalog : Tce_obs.Snapshot.sample -> (string * int) list
(** Track names and values for one sample, in the historical Chrome-trace
    track order. *)

val chrome_counters : Tce_obs.Snapshot.t -> Tce_obs.Json.t list
(** All counter-track events for a sampler's series, ready to pass as
    [Tce_obs.Sink.chrome ~counters]. *)

val register_latest : Registry.t -> Tce_obs.Snapshot.t -> unit
(** Mirror the most recent sample into the registry as the
    [tce_sim_counter{track="..."}] gauge family (no-op on an empty
    series or {!Registry.null}). *)
