(** Worker→parent heartbeat lines (see heartbeat.mli). *)

module Json = Tce_obs.Json
module Export = Tce_obs.Export

let kind = "telem"

type t = {
  slot : int;
  seq : int;
  cells_done : int;
  cells_total : int;
  index : int;  (** roster index of the cell in flight, -1 when idle/done *)
  name : string;  (** workload name of the cell in flight, "" when idle *)
  rate : float;  (** cells per second since the worker started *)
  at : float;  (** unix timestamp of the beat *)
}

let to_json b =
  Export.document ~kind
    (Json.Obj
       [
         ("slot", Json.Int b.slot);
         ("seq", Json.Int b.seq);
         ("done", Json.Int b.cells_done);
         ("total", Json.Int b.cells_total);
         ("index", Json.Int b.index);
         ("name", Json.Str b.name);
         ("rate", Json.Float b.rate);
         ("at", Json.Float b.at);
       ])

let to_line b = Json.to_string (to_json b)

(* Heartbeats share the worker's stdout with row lines, so a line that is
   not a heartbeat is normal — and a torn heartbeat (worker killed
   mid-write) must read as "not a heartbeat", never as an error. *)
let of_line line : t option =
  match Json.of_string line with
  | Error _ -> None
  | Ok j -> (
    match Export.open_document j with
    | Ok (k, data) when k = kind ->
      let int k = Option.bind (Json.member k data) Json.to_int in
      let flt k = Option.bind (Json.member k data) Json.to_float in
      let str k = Option.bind (Json.member k data) Json.to_str in
      (match (int "slot", int "seq", int "done", int "total", int "index") with
      | Some slot, Some seq, Some cells_done, Some cells_total, Some index ->
        Some
          {
            slot;
            seq;
            cells_done;
            cells_total;
            index;
            name = Option.value ~default:"" (str "name");
            rate = Option.value ~default:0.0 (flt "rate");
            at = Option.value ~default:0.0 (flt "at");
          }
      | _ -> None)
    | Ok _ | Error _ -> None)

type emitter = {
  e_slot : int;
  e_total : int;
  e_out : out_channel;
  mutable e_seq : int;
  mutable e_done : int;
  e_t0 : float;
}

let emitter ~slot ~total ~out =
  { e_slot = slot; e_total = total; e_out = out; e_seq = 0; e_done = 0;
    e_t0 = Unix.gettimeofday () }

let emit e ~index ~name =
  let now = Unix.gettimeofday () in
  let dt = now -. e.e_t0 in
  let rate = if dt > 0.0 then float_of_int e.e_done /. dt else 0.0 in
  let b =
    {
      slot = e.e_slot;
      seq = e.e_seq;
      cells_done = e.e_done;
      cells_total = e.e_total;
      index;
      name;
      rate;
      at = now;
    }
  in
  e.e_seq <- e.e_seq + 1;
  output_string e.e_out (to_line b);
  output_char e.e_out '\n';
  flush e.e_out

let beat_start e ~index ~name = emit e ~index ~name

let beat_cell_done e =
  e.e_done <- e.e_done + 1;
  emit e ~index:(-1) ~name:""

let beat_done e = emit e ~index:(-1) ~name:""
