(** Single source of truth for the simulated-counter namespace: the same
    catalog feeds Chrome/Perfetto counter tracks and the scrape registry
    (see track.mli). *)

module Snapshot = Tce_obs.Snapshot
module Sink = Tce_obs.Sink

(* Order is load-bearing: it is the on-disk track order of every Chrome
   trace written before the registry existed, asserted by test_obs. *)
let catalog (s : Snapshot.sample) : (string * int) list =
  [
    ("deopts", s.Snapshot.deopts);
    ("cc-occupancy", s.Snapshot.cc_occupancy);
    ("cc-conflicts", s.Snapshot.cc_conflicts);
    ("heap-bytes", s.Snapshot.heap_bytes);
  ]
  @ List.mapi
      (fun i v -> (Printf.sprintf "cc-occupancy/sets-%d" i, v))
      (Array.to_list s.Snapshot.cc_set_occupancy)
  @ List.map
      (fun (n, v) -> ("prof/" ^ n, v))
      (Array.to_list s.Snapshot.prof_costs)

let chrome_counters snap =
  List.concat_map
    (fun (s : Snapshot.sample) ->
      List.map
        (fun (name, v) -> Sink.counter ~at:s.Snapshot.at name v)
        (catalog s))
    (Snapshot.samples snap)

let register_latest reg snap =
  match List.rev (Snapshot.samples snap) with
  | [] -> ()
  | last :: _ ->
    let g =
      Registry.gauge reg ~help:"Latest simulated-counter snapshot sample"
        "tce_sim_counter"
    in
    List.iter
      (fun (name, v) ->
        Registry.set ~labels:[ ("track", name) ] g (float_of_int v))
      (catalog last)
