(** Labeled operational-metrics registry.

    A {!t} holds metric {e families} (counter, gauge, histogram), each of
    which fans out into one time series per distinct label set.  The
    registry is mutex-protected: the supervised runner updates it from the
    parent select loop while worker domains feed serial-mode rows and the
    scrape server reads snapshots concurrently.

    Following the repo's null-object convention ({!Tce_prof.Profile.null},
    {!Tce_obs.Trace.null}), {!null} is a permanently disabled registry:
    registration returns inert families and every update is a no-op, so
    instrumented code paths pay one boolean test when telemetry is off. *)

type t
(** A metrics registry. *)

type family
(** One named metric family within a registry. *)

val create : unit -> t
(** A fresh, enabled registry. *)

val null : t
(** The shared disabled registry: updates are no-ops, exposition is empty. *)

val enabled : t -> bool

val counter : t -> ?help:string -> string -> family
(** [counter t name] registers (or retrieves) a monotonically increasing
    counter family.  Exposed with an [_total] suffix per OpenMetrics.
    Registration is idempotent for a same-kind name; re-registering a name
    under a different kind raises [Invalid_argument], as does a name not
    matching [[a-zA-Z_:][a-zA-Z0-9_:]*]. *)

val gauge : t -> ?help:string -> string -> family

val histogram : t -> ?help:string -> ?buckets:float list -> string -> family
(** [buckets] are strictly ascending upper bounds; a [+Inf] bucket is
    implicit.  Default buckets suit cell wall-times (50ms .. 300s). *)

val default_buckets : float list

val inc : ?labels:(string * string) list -> ?by:float -> family -> unit
(** Counter increment ([by] defaults to 1.0; negative raises). *)

val set : ?labels:(string * string) list -> family -> float -> unit
(** Gauge assignment. *)

val observe : ?labels:(string * string) list -> family -> float -> unit
(** Histogram observation. *)

val value : ?labels:(string * string) list -> family -> float option
(** Current counter/gauge reading for an existing series, [None] if that
    label set has never been touched. *)

val histogram_stats :
  ?labels:(string * string) list -> family -> (int * float) option
(** [(count, sum)] for a histogram series. *)

val to_openmetrics : t -> string
(** Render the whole registry as OpenMetrics 1.0 text: [# TYPE]/[# HELP]
    metadata, [_total]-suffixed counters, cumulative histogram
    [_bucket{le=...}] samples ending at [+Inf] plus [_sum]/[_count], label
    values escaped, terminated by [# EOF].  Families and series appear in
    registration order, so successive snapshots of the same registry are
    structurally stable. *)
