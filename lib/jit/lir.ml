(** LIR: the low-level instruction set the optimizing compiler emits and the
    cycle-level machine simulates. It is an idealized x86-64-like ISA with
    unlimited virtual integer and float registers, plus the paper's four new
    instructions (§4.2.1.2) and their special registers:

    - [MovClassID r]: regObjectClassId <- ClassID of the value in [r]
      (0xFF when [r] holds an SMI; otherwise read from the object's class
      word).
    - [MovClassIDArray (k, r)]: regArrayObjectClassId_k <- ClassID of the
      object in [r] (the object *containing* the elements array; hoistable
      out of loops, 4 registers available).
    - [StoreClassCache]: a store to an object property that also sends a
      request to the Class Cache in parallel with the L1 write. The memory
      unit recovers (ClassID, Line) from the first word of the written cache
      line and the slot from address bits 3-5; the stored value's ClassID
      comes from regObjectClassId.
    - [StoreClassCacheArray k]: ditto for a store into an elements array;
      (ClassID, Line, slot) are (regArrayObjectClassId_k, 0, 2).

    Compare-and-branch is a single instruction (Nehalem macro-fusion).
    Checks are *expanded* here — e.g. a Check Map is a [Load] of the class
    word plus a [Branch] to a [Deopt], both tagged [C_check] — so that
    category accounting (Figure 1/2) and the timing model both see the real
    instruction stream. *)

type reg = int  (** virtual integer register *)

type freg = int  (** virtual float (xmm) register *)

type label = int  (** instruction index within the function *)

type operand = Reg of reg | Imm of int

type alu = Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Shr | Sar

type cond =
  | Eq | Ne | Lt | Le | Gt | Ge
  | Bit_set  (** (ra land imm) <> 0 — Check SMI family *)
  | Bit_clear  (** (ra land imm) = 0 *)

type fcond =
  | FEq | FNe | FLt | FLe | FGt | FGe
  | FNlt | FNle | FNgt | FNge
      (** negated comparisons (true on unordered/NaN) — needed so that
          branch-negation preserves JS NaN semantics *)

(** Runtime-call stubs: executed functionally by the machine's runtime hook
    and charged a fixed cost (see {!Costs}). These model V8's runtime entry
    points / stub calls out of Crankshaft code. *)
type rt =
  | Rt_alloc_object of int * int  (** classid, reserve_props; result tagged *)
  | Rt_alloc_array of Tce_vm.Hidden_class.elements_kind * int  (** kind, capacity *)
  | Rt_box_double  (** farg -> new heap number *)
  | Rt_generic_get_prop of string
  | Rt_generic_set_prop of string
  | Rt_generic_get_elem
  | Rt_generic_set_elem
  | Rt_generic_binop of Tce_minijs.Ast.binop
  | Rt_generic_unop of Tce_minijs.Ast.unop
  | Rt_elem_store_slow  (** grow / extend / kind-transition store path *)
  | Rt_to_bool  (** generic ToBoolean: returns the true/false oddball *)
  | Rt_builtin of Builtins.t
  | Rt_fmod
  | Rt_trap of string  (** unconditional runtime error *)

type op =
  | MovImm of reg * int
  | Mov of reg * reg
  | Alu of alu * reg * reg * operand
  | Alu32 of alu * reg * reg * operand
      (** 32-bit form: result wraps to int32 (JS bitwise semantics) *)
  | AluOv of alu * reg * reg * operand * label
      (** ALU op + jump-on-overflow (int32 range) — a math assumption *)
  | Load of reg * reg * int  (** rd <- mem[rs + off] *)
  | CheckedLoad of reg * reg * int * int * int
      (** rd <- mem[rb + off] with the receiver's class word verified
          against the expected constant by hardware, in parallel with the
          load (the Checked Load baseline of Anderson et al., paper §2):
          (rd, rb, off, expected class word, deopt id). One instruction;
          the check is performed but never removed. *)
  | LoadIdx of reg * reg * reg * int  (** rd <- mem[rb + ri*8 + off] *)
  | Store of reg * int * operand  (** mem[rb + off] <- v *)
  | StoreIdx of reg * reg * int * operand  (** mem[rb + ri*8 + off] <- v *)
  | FMov of freg * freg
  | FMovImm of freg * float
  | FLoad of freg * reg * int  (** load a raw double word *)
  | FLoadIdx of freg * reg * reg * int
  | FStore of reg * int * freg
  | FStoreIdx of reg * reg * int * freg
  | FAdd of freg * freg * freg
  | FSub of freg * freg * freg
  | FMul of freg * freg * freg
  | FDiv of freg * freg * freg
  | FSqrt of freg * freg
  | FNeg of freg * freg
  | FAbs of freg * freg
  | CvtIF of freg * reg  (** cvtsi2sd: int -> double *)
  | TruncFI of reg * freg  (** cvttsd2si: double -> int32 (JS ToInt32 fast path) *)
  | Branch of cond * reg * operand * label
  | FBranch of fcond * freg * freg * label
  | Jmp of label
  | CallFn of int * reg array * reg * int
      (** guest call: func id, tagged args, result reg, deopt id (for
          on-stack replacement when this frame is invalidated mid-call) *)
  | CallRt of rt * reg array * freg array * reg option * freg option
      (** runtime call: int args, float args, optional tagged result,
          optional float result *)
  | CallRtChecked of rt * reg array * reg option * int
      (** a runtime call that can invalidate the *running* code (stores
          through slow paths may retire profiles this code speculates on):
          after the stub, deopt via the given id if this opt_id was
          invalidated *)
  | Ret of reg
  | Deopt of int  (** bail out to the interpreter (deopt metadata id) *)
  | MovClassID of reg
  | MovClassIDArray of int * reg
  | StoreClassCache of reg * int * operand * int
      (** base, off, value, deopt id (special stores are safepoints) *)
  | StoreClassCacheArray of int * reg * reg * int * operand * int
      (** k, base, index, off, value, deopt id *)
  | Profile of reg * int * int
      (** measurement pseudo-op (zero cost, not an instruction): records an
          object-load access for Figure 3. (receiver reg, line, pos); the
          receiver's ClassID is read functionally at runtime. *)
  | ProfileStore of reg * int * int * pstore
      (** measurement pseudo-op: feeds the monomorphism oracle for a
          property/elements store in mechanism-off code (where no Class
          Cache request exists). (receiver, line, pos, stored value). *)

and pstore = Ps_reg of reg | Ps_classid of int

type inst = { op : op; cat : Categories.t; flags : int }

let inst ?(flags = 0) cat op = { op; cat; flags }

(** How a bytecode register is materialized in optimized code. *)
type repr = R_tagged | R_double

type deopt_info = {
  bc_pc : int;  (** bytecode pc at which the interpreter resumes *)
  result_into : int option;
      (** when resuming *after* an op that produced a value mid-flight
          (calls), the bytecode register that receives it *)
  reason : Tce_attr.Reason.t;
      (** typed explanation: check kind × cause × site pc × classid —
          the source of truth; trace/report strings are renderings
          ([Tce_attr.Reason.to_string]/[describe]) *)
}

type func = {
  fn_id : int;  (** bytecode function id this code was compiled from *)
  opt_id : int;  (** unique id of this compilation (recompiles get fresh ids) *)
  name : string;
  code : inst array;
  deopts : deopt_info array;
  reprs : repr array;  (** static repr of each bytecode register *)
  n_regs : int;
  n_fregs : int;
  code_addr : int;  (** simulated address of the code (I-cache) *)
  spec_deps : (int * int * int) list;
      (** (classid, line, pos) Class List slots this code speculates on *)
  mutable invalidated : bool;
  mutable deopt_hits : int;  (** failed-check bails from this code *)
}

(* --- statistics helpers --- *)

let is_branch = function
  | Branch _ | FBranch _ | Jmp _ | Deopt _ -> true
  | _ -> false

let is_memory_read = function
  | Load _ | CheckedLoad _ | LoadIdx _ | FLoad _ | FLoadIdx _ -> true
  | _ -> false

let is_memory_write = function
  | Store _ | StoreIdx _ | FStore _ | FStoreIdx _ | StoreClassCache _
  | StoreClassCacheArray _ ->
    true
  | _ -> false

(* --- pretty printing (debugging, docs) --- *)

let pp_operand ppf = function
  | Reg r -> Fmt.pf ppf "r%d" r
  | Imm i -> Fmt.pf ppf "$%d" i

let pp_cond ppf c =
  Fmt.string ppf
    (match c with
    | Eq -> "eq" | Ne -> "ne" | Lt -> "lt" | Le -> "le" | Gt -> "gt" | Ge -> "ge"
    | Bit_set -> "bset" | Bit_clear -> "bclr")

let pp_alu ppf a =
  Fmt.string ppf
    (match a with
    | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Div -> "div" | Rem -> "rem"
    | And -> "and" | Or -> "or"
    | Xor -> "xor" | Shl -> "shl" | Shr -> "shr" | Sar -> "sar")

let pp_op ppf = function
  | MovImm (r, i) -> Fmt.pf ppf "mov r%d, $%d" r i
  | Mov (d, s) -> Fmt.pf ppf "mov r%d, r%d" d s
  | Alu (a, d, s, o) -> Fmt.pf ppf "%a r%d, r%d, %a" pp_alu a d s pp_operand o
  | Alu32 (a, d, s, o) -> Fmt.pf ppf "%a32 r%d, r%d, %a" pp_alu a d s pp_operand o
  | AluOv (a, d, s, o, l) ->
    Fmt.pf ppf "%a.ov r%d, r%d, %a -> L%d" pp_alu a d s pp_operand o l
  | Load (d, b, off) -> Fmt.pf ppf "load r%d, [r%d%+d]" d b off
  | CheckedLoad (d, b, off, _, did) ->
    Fmt.pf ppf "load.chk r%d, [r%d%+d] #%d" d b off did
  | LoadIdx (d, b, i, off) -> Fmt.pf ppf "load r%d, [r%d+r%d*8%+d]" d b i off
  | Store (b, off, v) -> Fmt.pf ppf "store [r%d%+d], %a" b off pp_operand v
  | StoreIdx (b, i, off, v) -> Fmt.pf ppf "store [r%d+r%d*8%+d], %a" b i off pp_operand v
  | FMov (d, s) -> Fmt.pf ppf "fmov f%d, f%d" d s
  | FMovImm (d, f) -> Fmt.pf ppf "fmov f%d, $%g" d f
  | FLoad (d, b, off) -> Fmt.pf ppf "fload f%d, [r%d%+d]" d b off
  | FLoadIdx (d, b, i, off) -> Fmt.pf ppf "fload f%d, [r%d+r%d*8%+d]" d b i off
  | FStore (b, off, v) -> Fmt.pf ppf "fstore [r%d%+d], f%d" b off v
  | FStoreIdx (b, i, off, v) -> Fmt.pf ppf "fstore [r%d+r%d*8%+d], f%d" b i off v
  | FAdd (d, a, b) -> Fmt.pf ppf "fadd f%d, f%d, f%d" d a b
  | FSub (d, a, b) -> Fmt.pf ppf "fsub f%d, f%d, f%d" d a b
  | FMul (d, a, b) -> Fmt.pf ppf "fmul f%d, f%d, f%d" d a b
  | FDiv (d, a, b) -> Fmt.pf ppf "fdiv f%d, f%d, f%d" d a b
  | FSqrt (d, s) -> Fmt.pf ppf "fsqrt f%d, f%d" d s
  | FNeg (d, s) -> Fmt.pf ppf "fneg f%d, f%d" d s
  | FAbs (d, s) -> Fmt.pf ppf "fabs f%d, f%d" d s
  | CvtIF (d, s) -> Fmt.pf ppf "cvtif f%d, r%d" d s
  | TruncFI (d, s) -> Fmt.pf ppf "truncfi r%d, f%d" d s
  | Branch (c, r, o, l) -> Fmt.pf ppf "b.%a r%d, %a -> L%d" pp_cond c r pp_operand o l
  | FBranch (_, a, b, l) -> Fmt.pf ppf "fb f%d, f%d -> L%d" a b l
  | Jmp l -> Fmt.pf ppf "jmp L%d" l
  | CallFn (f, args, d, _) ->
    Fmt.pf ppf "call fn%d(%a) -> r%d" f
      Fmt.(array ~sep:(any ",") (fun ppf r -> Fmt.pf ppf "r%d" r))
      args d
  | CallRt (_, _, _, _, _) -> Fmt.pf ppf "callrt"
  | CallRtChecked (_, _, _, d) -> Fmt.pf ppf "callrt.checked #%d" d
  | Ret r -> Fmt.pf ppf "ret r%d" r
  | Deopt i -> Fmt.pf ppf "deopt #%d" i
  | MovClassID r -> Fmt.pf ppf "movclassid r%d" r
  | MovClassIDArray (k, r) -> Fmt.pf ppf "movclassidarray[%d] r%d" k r
  | StoreClassCache (b, off, v, _) ->
    Fmt.pf ppf "storecc [r%d%+d], %a" b off pp_operand v
  | StoreClassCacheArray (k, b, i, off, v, _) ->
    Fmt.pf ppf "storecca[%d] [r%d+r%d*8%+d], %a" k b i off pp_operand v
  | Profile (r, line, pos) -> Fmt.pf ppf "(profile r%d %d:%d)" r line pos
  | ProfileStore (r, line, pos, _) -> Fmt.pf ppf "(profile-store r%d %d:%d)" r line pos

let pp_inst ppf { op; cat; _ } =
  Fmt.pf ppf "%-40s ; %a" (Fmt.str "%a" pp_op op) Categories.pp cat

let pp_func ppf (f : func) =
  Fmt.pf ppf "fn %s (#%d, opt #%d): %d instrs@." f.name f.fn_id f.opt_id
    (Array.length f.code);
  Array.iteri (fun i inst -> Fmt.pf ppf "  L%-4d %a@." i pp_inst inst) f.code
