(** The optimizing compiler ("Crankshaft" stand-in, paper §3.2/§4.3):
    bytecode + inline-cache feedback
    -> forward type/provenance/constant fixpoint over the bytecode CFG
    -> LIR with explicit, categorized check instructions.

    With the mechanism enabled, the Class List is consulted: loads from
    profiled-monomorphic slots produce *typed* values, so downstream
    Check Map / Check SMI / Check Non-SMI operations and untag guards are
    never emitted (§4.3.1–§4.3.3), and the code registers speculation
    dependencies to be installed in the slots' FunctionLists. Stores to
    still-valid slots become movClassID + movStoreClassCache
    (movClassIDArray + movStoreClassCacheArray for elements, hoisted out of
    call-free loops), except stores the type lattice proves safe. *)

exception Bailout of string

(** The type lattice of the fixpoint. *)
type ty =
  | Any
  | Smi
  | Num  (** SMI or heap number *)
  | Cls of int  (** tagged pointer of known hidden class *)
  | Bool
  | Null
  | Str

type env = {
  prog : Bytecode.program;
  heap : Tce_vm.Heap.t;
  cl : Tce_core.Class_list.t;
  mechanism : bool;
  hoisting : bool;
  checked_load : bool;  (** Checked Load baseline (paper §2) *)
  fn : Bytecode.func;
  opt_id : int;
  code_addr : int;
  globals_base : int;
  attr : Tce_attr.Ledger.t;
      (** attribution ledger ({!Tce_attr.Ledger.null} = disabled): one
          removed/kept-with-cause entry per check site per compilation *)
}

(** Result type of a speculative load from a Class List slot; [None] keeps
    the checks. *)
val spec_load_ty : env -> classid:int -> line:int -> pos:int -> ty option

(** Built-in type-specific slots (string/array lengths) need no profile. *)
val invariant_slot_ty : env -> classid:int -> slot:int -> ty option

(** Optimize [env.fn].
    @raise Bailout when the function cannot be usefully compiled. *)
val compile : env -> Lir.func
