(** Type-feedback vectors: the software inline-cache state the baseline tier
    collects and the optimizing compiler consumes (paper §3.2). Sites go
    uninitialized → monomorphic → polymorphic (≤ 4 shapes) → megamorphic. *)

type shape = {
  classid : int;  (** receiver hidden class *)
  slot : int;  (** word index of the property within the object *)
  transition_to : int option;
      (** store sites that add the property: ClassID after transition *)
}

type prop_ic =
  | Ic_uninit
  | Ic_mono of shape
  | Ic_poly of shape list  (** 2..4 shapes, most recent first *)
  | Ic_mega

type elem_ic = Eic_uninit | Eic_mono of int | Eic_poly of int list | Eic_mega

type binop_fb =
  | Bf_none
  | Bf_smi
  | Bf_number
  | Bf_string
  | Bf_ref  (** reference comparison: objects / booleans / null *)
  | Bf_generic

type site = S_prop of prop_ic | S_elem of elem_ic | S_binop of binop_fb

type t = site array

val max_poly : int

(** @raise Invalid_argument when the slot holds a different site kind. *)
val prop_of : site -> prop_ic

val elem_of : site -> elem_ic
val binop_of : site -> binop_fb

(** Recorders return [Some (from, to)] when the observation moved the
    site along the uninit -> mono -> poly -> mega lattice (fed to the
    observability layer as [Ic_transition] events), [None] otherwise. *)
val record_prop : t -> int -> shape -> (string * string) option

(** [record_prop] specialized to a transition-free shape: the
    monomorphic-hit path allocates nothing. *)
val record_prop_simple :
  t -> int -> classid:int -> slot:int -> (string * string) option

val record_elem : t -> int -> classid:int -> (string * string) option
val join_binop : binop_fb -> binop_fb -> binop_fb
val record_binop : t -> int -> binop_fb -> (string * string) option

(** State names on the IC lattices ("uninit", "mono", "poly", "mega" /
    binop kinds). *)
val prop_state : prop_ic -> string

val elem_state : elem_ic -> string
val binop_state : binop_fb -> string

(** [(monomorphic, polymorphic, megamorphic)] site counts. *)
val census : t -> int * int * int
