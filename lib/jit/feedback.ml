(** Type-feedback vectors: the software inline-cache state the baseline tier
    collects and the optimizing compiler consumes (paper §3.2). Each
    property/element/arithmetic site in the bytecode owns one slot.

    Inline caches go uninitialized -> monomorphic -> polymorphic (up to 4
    shapes) -> megamorphic, exactly V8's progression. *)

(** One shape a property site has seen. *)
type shape = {
  classid : int;  (** receiver hidden class *)
  slot : int;  (** word index of the property in the object *)
  transition_to : int option;
      (** store sites that add the property: ClassID after transition
          (the slot then refers to the *new* class's layout) *)
}

type prop_ic =
  | Ic_uninit
  | Ic_mono of shape
  | Ic_poly of shape list  (** 2..4 shapes, most recent first *)
  | Ic_mega

(** Elements-access sites track receiver classes (the elements kind is a
    function of the class). *)
type elem_ic = Eic_uninit | Eic_mono of int | Eic_poly of int list | Eic_mega

(** Arithmetic sites track the operand/result kind lattice. *)
type binop_fb =
  | Bf_none
  | Bf_smi  (** both operands and result SMI so far *)
  | Bf_number  (** numeric, at least one double involved *)
  | Bf_string  (** string concatenation / comparison *)
  | Bf_ref  (** reference comparison: objects / booleans / null *)
  | Bf_generic

type site = S_prop of prop_ic | S_elem of elem_ic | S_binop of binop_fb

type t = site array

let max_poly = 4

let prop_of = function S_prop p -> p | _ -> invalid_arg "Feedback: not a prop site"
let elem_of = function S_elem e -> e | _ -> invalid_arg "Feedback: not an elem site"
let binop_of = function S_binop b -> b | _ -> invalid_arg "Feedback: not a binop site"

let prop_state = function
  | Ic_uninit -> "uninit"
  | Ic_mono _ -> "mono"
  | Ic_poly _ -> "poly"
  | Ic_mega -> "mega"

let elem_state = function
  | Eic_uninit -> "uninit"
  | Eic_mono _ -> "mono"
  | Eic_poly _ -> "poly"
  | Eic_mega -> "mega"

let binop_state = function
  | Bf_none -> "none"
  | Bf_smi -> "smi"
  | Bf_number -> "number"
  | Bf_string -> "string"
  | Bf_ref -> "ref"
  | Bf_generic -> "generic"

(** [Some (from, to)] when the new observation moved the site along the
    uninit -> mono -> poly -> mega lattice (the observability layer turns
    these into [Ic_transition] events). The physical-equality shortcut
    avoids a deep structural compare on the overwhelmingly common
    no-change records. *)
let transition name prev next =
  if prev == next || prev = next then None else Some (name prev, name next)

let same_transition a b =
  match (a, b) with
  | None, None -> true
  | Some (x : int), Some y -> x = y
  | _ -> false

let same_shape (a : shape) (b : shape) =
  a.classid = b.classid && a.slot = b.slot
  && same_transition a.transition_to b.transition_to

(** Record an observed shape at a property site. The monomorphic-hit case —
    virtually every record once a site is warm — neither writes the slot
    nor allocates. *)
let record_prop (fb : t) i (sh : shape) =
  let prev = prop_of fb.(i) in
  match prev with
  | Ic_mono sh0 when same_shape sh0 sh -> None
  | _ ->
    let next =
      match prev with
      | Ic_uninit -> Ic_mono sh
      | Ic_mono sh0 -> Ic_poly [ sh; sh0 ]
      | Ic_poly shs when List.exists (same_shape sh) shs -> prev
      | Ic_poly shs when List.length shs < max_poly -> Ic_poly (sh :: shs)
      | Ic_poly _ -> Ic_mega
      | Ic_mega -> prev
    in
    fb.(i) <- S_prop next;
    transition prop_state prev next

(** [record_prop] specialized to a transition-free shape (every load site,
    and stores that hit the existing layout): the monomorphic-hit path
    allocates nothing — no [shape] box, no slot write. *)
let record_prop_simple (fb : t) i ~classid ~slot =
  match fb.(i) with
  | S_prop (Ic_mono sh0)
    when sh0.classid = classid && sh0.slot = slot
         && (match sh0.transition_to with None -> true | Some _ -> false) ->
    None
  | _ -> record_prop fb i { classid; slot; transition_to = None }

let record_elem (fb : t) i ~classid =
  let prev = elem_of fb.(i) in
  match prev with
  | Eic_mono c when c = classid -> None
  | _ ->
    let next =
      match prev with
      | Eic_uninit -> Eic_mono classid
      | Eic_mono c -> Eic_poly [ classid; c ]
      | Eic_poly cs when List.mem classid cs -> prev
      | Eic_poly cs when List.length cs < max_poly -> Eic_poly (classid :: cs)
      | Eic_poly _ -> Eic_mega
      | Eic_mega -> prev
    in
    fb.(i) <- S_elem next;
    transition elem_state prev next

let join_binop a b =
  match (a, b) with
  | Bf_none, x | x, Bf_none -> x
  | Bf_smi, Bf_smi -> Bf_smi
  | (Bf_smi | Bf_number), (Bf_smi | Bf_number) -> Bf_number
  | Bf_string, Bf_string -> Bf_string
  | Bf_ref, Bf_ref -> Bf_ref
  | _ -> Bf_generic

let record_binop (fb : t) i kind =
  let prev = binop_of fb.(i) in
  let next = join_binop prev kind in
  (* [binop_fb] is all constant constructors, so [==] is exact *)
  if next == prev then None
  else begin
    fb.(i) <- S_binop next;
    Some (binop_state prev, binop_state next)
  end

(** Number of megamorphic / polymorphic / monomorphic sites (census). *)
let census (fb : t) =
  Array.fold_left
    (fun (mono, poly, mega) -> function
      | S_prop (Ic_mono _) | S_elem (Eic_mono _) -> (mono + 1, poly, mega)
      | S_prop (Ic_poly _) | S_elem (Eic_poly _) -> (mono, poly + 1, mega)
      | S_prop Ic_mega | S_elem Eic_mega -> (mono, poly, mega + 1)
      | _ -> (mono, poly, mega))
    (0, 0, 0) fb
