(** AST -> bytecode compiler (the "parser + Full Codegen front half": V8
    compiles straight to executable code; our baseline tier interprets this
    bytecode and charges the cost of the equivalent generic code). *)

open Tce_minijs

exception Error of string

let error fmt = Fmt.kstr (fun s -> raise (Error s)) fmt

type ctx = {
  mutable code : Bytecode.bc array;
  mutable n : int;
  mutable fb : Feedback.site list;  (** reversed *)
  mutable n_fb : int;
  regs : (string, int) Hashtbl.t;
  base_temp : int;
  mutable next_temp : int;
  mutable max_reg : int;
  func_ids : (string, int) Hashtbl.t;
  globals : (string, int) Hashtbl.t;
  mutable break_patches : int list list;  (** stack of lists of pcs to patch *)
  mutable continue_targets : [ `Known of int | `Patches of int list ref ] list;
}

let emit ctx bc =
  if ctx.n = Array.length ctx.code then begin
    let a = Array.make (max 16 (2 * ctx.n)) (Bytecode.Jump 0) in
    Array.blit ctx.code 0 a 0 ctx.n;
    ctx.code <- a
  end;
  ctx.code.(ctx.n) <- bc;
  ctx.n <- ctx.n + 1;
  ctx.n - 1

let patch ctx pc target =
  ctx.code.(pc) <-
    (match ctx.code.(pc) with
    | Bytecode.Jump _ -> Bytecode.Jump target
    | Bytecode.JumpIfFalse (r, _) -> Bytecode.JumpIfFalse (r, target)
    | Bytecode.JumpIfTrue (r, _) -> Bytecode.JumpIfTrue (r, target)
    | _ -> error "patch: not a jump")

let fb_slot ctx site =
  ctx.fb <- site :: ctx.fb;
  ctx.n_fb <- ctx.n_fb + 1;
  ctx.n_fb - 1

let temp ctx =
  let r = ctx.next_temp in
  ctx.next_temp <- r + 1;
  ctx.max_reg <- max ctx.max_reg (r + 1);
  r

(* Temps are NOT reused across statements: sharing one register between,
   say, a boolean compare and a float product would force the optimizer to
   keep it tagged and box every float that flows through it. Unique temps
   keep each register's type stable (SSA-flavored). *)
let reset_temps _ctx = ()

(** Resolution: function-local register, else global cell. *)
type binding = Local of int | Global of int

let resolve ctx name =
  match Hashtbl.find_opt ctx.regs name with
  | Some r -> Local r
  | None -> (
    match Hashtbl.find_opt ctx.globals name with
    | Some i -> Global i
    | None -> error "unbound variable %s" name)

(* --- expressions --- *)

let rec compile_expr ctx (e : Ast.expr) : int =
  match e with
  | Ast.Int i ->
    let r = temp ctx in
    if Tce_vm.Value.smi_fits i then ignore (emit ctx (Bytecode.LoadInt (r, i)))
    else ignore (emit ctx (Bytecode.LoadNum (r, float_of_int i)));
    r
  | Ast.Float f ->
    let r = temp ctx in
    ignore (emit ctx (Bytecode.LoadNum (r, f)));
    r
  | Ast.Str s ->
    let r = temp ctx in
    ignore (emit ctx (Bytecode.LoadStr (r, s)));
    r
  | Ast.Bool b ->
    let r = temp ctx in
    ignore (emit ctx (Bytecode.LoadBool (r, b)));
    r
  | Ast.Null ->
    let r = temp ctx in
    ignore (emit ctx (Bytecode.LoadNull r));
    r
  | Ast.This -> 0
  | Ast.Var x -> (
    match resolve ctx x with
    | Local r -> r
    | Global i ->
      let r = temp ctx in
      ignore (emit ctx (Bytecode.GetGlobal (r, i)));
      r)
  | Ast.Binop (Ast.LAnd, a, b) ->
    let r = temp ctx in
    compile_into ctx r a;
    let j = emit ctx (Bytecode.JumpIfFalse (r, 0)) in
    compile_into ctx r b;
    patch ctx j ctx.n;
    r
  | Ast.Binop (Ast.LOr, a, b) ->
    let r = temp ctx in
    compile_into ctx r a;
    let j = emit ctx (Bytecode.JumpIfTrue (r, 0)) in
    compile_into ctx r b;
    patch ctx j ctx.n;
    r
  | Ast.Binop (op, a, b) ->
    let ra = compile_expr ctx a in
    let rb = compile_expr ctx b in
    let r = temp ctx in
    let slot = fb_slot ctx (Feedback.S_binop Feedback.Bf_none) in
    ignore (emit ctx (Bytecode.BinOp (op, r, ra, rb, slot)));
    r
  | Ast.Unop (op, a) ->
    let ra = compile_expr ctx a in
    let r = temp ctx in
    ignore (emit ctx (Bytecode.UnOp (op, r, ra)));
    r
  | Ast.PropGet (o, name) ->
    let ro = compile_expr ctx o in
    let r = temp ctx in
    let slot = fb_slot ctx (Feedback.S_prop Feedback.Ic_uninit) in
    ignore (emit ctx (Bytecode.GetProp (r, ro, name, slot)));
    r
  | Ast.ElemGet (o, i) ->
    let ro = compile_expr ctx o in
    let ri = compile_expr ctx i in
    let r = temp ctx in
    let slot = fb_slot ctx (Feedback.S_elem Feedback.Eic_uninit) in
    ignore (emit ctx (Bytecode.GetElem (r, ro, ri, slot)));
    r
  | Ast.Call (name, args) -> (
    let rargs = Array.of_list (List.map (compile_expr ctx) args) in
    let r = temp ctx in
    match Hashtbl.find_opt ctx.func_ids name with
    | Some id ->
      ignore (emit ctx (Bytecode.Call (r, id, rargs)));
      r
    | None -> (
      match Builtins.of_name name with
      | Some b ->
        if Array.length rargs <> Builtins.arity b then
          error "builtin %s expects %d arguments, got %d" name (Builtins.arity b)
            (Array.length rargs);
        ignore (emit ctx (Bytecode.CallB (r, b, rargs)));
        r
      | None -> error "unknown function %s" name))
  | Ast.New (name, args) -> (
    let rargs = Array.of_list (List.map (compile_expr ctx) args) in
    let r = temp ctx in
    match Hashtbl.find_opt ctx.func_ids name with
    | Some id ->
      ignore (emit ctx (Bytecode.New (r, id, rargs)));
      r
    | None -> error "unknown constructor %s" name)
  | Ast.ObjectLit fields ->
    let r = temp ctx in
    ignore (emit ctx (Bytecode.NewObject r));
    List.iter
      (fun (name, v) ->
        let rv = compile_expr ctx v in
        let slot = fb_slot ctx (Feedback.S_prop Feedback.Ic_uninit) in
        ignore (emit ctx (Bytecode.SetProp (r, name, rv, slot))))
      fields;
    r
  | Ast.ArrayLit es ->
    let r = temp ctx in
    ignore (emit ctx (Bytecode.NewArray (r, List.length es)));
    List.iteri
      (fun i v ->
        let ri = temp ctx in
        ignore (emit ctx (Bytecode.LoadInt (ri, i)));
        let rv = compile_expr ctx v in
        let slot = fb_slot ctx (Feedback.S_elem Feedback.Eic_uninit) in
        ignore (emit ctx (Bytecode.SetElem (r, ri, rv, slot))))
      es;
    r
  | Ast.Cond (c, a, b) ->
    let r = temp ctx in
    let rc = compile_expr ctx c in
    let jf = emit ctx (Bytecode.JumpIfFalse (rc, 0)) in
    compile_into ctx r a;
    let jend = emit ctx (Bytecode.Jump 0) in
    patch ctx jf ctx.n;
    compile_into ctx r b;
    patch ctx jend ctx.n;
    r

and compile_into ctx target e =
  let r = compile_expr ctx e in
  if r <> target then ignore (emit ctx (Bytecode.Move (target, r)))

(* --- statements --- *)

let rec compile_stmt ctx (s : Ast.stmt) =
  reset_temps ctx;
  match s with
  | Ast.Var_decl (x, e) | Ast.Assign (x, e) -> (
    match resolve ctx x with
    | Local r -> compile_into ctx r e
    | Global i ->
      let rv = compile_expr ctx e in
      ignore (emit ctx (Bytecode.SetGlobal (i, rv))))
  | Ast.Prop_set (o, name, v) ->
    let ro = compile_expr ctx o in
    let rv = compile_expr ctx v in
    let slot = fb_slot ctx (Feedback.S_prop Feedback.Ic_uninit) in
    ignore (emit ctx (Bytecode.SetProp (ro, name, rv, slot)))
  | Ast.Elem_set (o, i, v) ->
    let ro = compile_expr ctx o in
    let ri = compile_expr ctx i in
    let rv = compile_expr ctx v in
    let slot = fb_slot ctx (Feedback.S_elem Feedback.Eic_uninit) in
    ignore (emit ctx (Bytecode.SetElem (ro, ri, rv, slot)))
  | Ast.Expr e -> ignore (compile_expr ctx e)
  | Ast.If (c, t, e) ->
    let rc = compile_expr ctx c in
    let jf = emit ctx (Bytecode.JumpIfFalse (rc, 0)) in
    List.iter (compile_stmt ctx) t;
    if e = [] then patch ctx jf ctx.n
    else begin
      let jend = emit ctx (Bytecode.Jump 0) in
      patch ctx jf ctx.n;
      List.iter (compile_stmt ctx) e;
      patch ctx jend ctx.n
    end
  | Ast.While (c, body) ->
    let lcond = ctx.n in
    let rc = compile_expr ctx c in
    let jf = emit ctx (Bytecode.JumpIfFalse (rc, 0)) in
    ctx.break_patches <- [] :: ctx.break_patches;
    ctx.continue_targets <- `Known lcond :: ctx.continue_targets;
    List.iter (compile_stmt ctx) body;
    ignore (emit ctx (Bytecode.Jump lcond));
    patch ctx jf ctx.n;
    finish_loop ctx
  | Ast.For (init, cond, step, body) ->
    Option.iter (compile_stmt ctx) init;
    let lcond = ctx.n in
    let jf =
      match cond with
      | Some c ->
        reset_temps ctx;
        let rc = compile_expr ctx c in
        Some (emit ctx (Bytecode.JumpIfFalse (rc, 0)))
      | None -> None
    in
    ctx.break_patches <- [] :: ctx.break_patches;
    let cont_patches = ref [] in
    ctx.continue_targets <- `Patches cont_patches :: ctx.continue_targets;
    List.iter (compile_stmt ctx) body;
    let lstep = ctx.n in
    List.iter (fun pc -> patch ctx pc lstep) !cont_patches;
    Option.iter (compile_stmt ctx) step;
    ignore (emit ctx (Bytecode.Jump lcond));
    Option.iter (fun pc -> patch ctx pc ctx.n) jf;
    ctx.continue_targets <- List.tl ctx.continue_targets;
    (match ctx.break_patches with
    | brs :: rest ->
      List.iter (fun pc -> patch ctx pc ctx.n) brs;
      ctx.break_patches <- rest
    | [] -> assert false)
  | Ast.Return None ->
    let r = temp ctx in
    ignore (emit ctx (Bytecode.LoadNull r));
    ignore (emit ctx (Bytecode.Return r))
  | Ast.Return (Some e) ->
    let r = compile_expr ctx e in
    ignore (emit ctx (Bytecode.Return r))
  | Ast.Break -> (
    match ctx.break_patches with
    | brs :: rest ->
      let pc = emit ctx (Bytecode.Jump 0) in
      ctx.break_patches <- (pc :: brs) :: rest
    | [] -> error "break outside of loop")
  | Ast.Continue -> (
    match ctx.continue_targets with
    | `Known target :: _ -> ignore (emit ctx (Bytecode.Jump target))
    | `Patches ps :: _ ->
      let pc = emit ctx (Bytecode.Jump 0) in
      ps := pc :: !ps
    | [] -> error "continue outside of loop")

and finish_loop ctx =
  ctx.continue_targets <- List.tl ctx.continue_targets;
  match ctx.break_patches with
  | brs :: rest ->
    List.iter (fun pc -> patch ctx pc ctx.n) brs;
    ctx.break_patches <- rest
  | [] -> assert false

(* --- functions --- *)

(** All local variable names declared in a block (function-scoped, like JS
    [var]). *)
let rec locals_of_block acc (b : Ast.block) =
  List.fold_left
    (fun acc s ->
      match s with
      | Ast.Var_decl (x, _) -> if List.mem x acc then acc else x :: acc
      | Ast.If (_, t, e) -> locals_of_block (locals_of_block acc t) e
      | Ast.While (_, b) -> locals_of_block acc b
      | Ast.For (init, _, step, b) ->
        let acc = match init with Some s -> locals_of_block acc [ s ] | None -> acc in
        let acc = match step with Some s -> locals_of_block acc [ s ] | None -> acc in
        locals_of_block acc b
      | _ -> acc)
    acc b

(** Distinct property names stored on [this] in a constructor body (used to
    reserve in-object slots; V8 derives the same from its "expected number
    of properties"). *)
let this_props_of_body body =
  let names = ref [] in
  let visit s =
    Ast.iter_expr_s (fun _ -> ()) s;
    (* property stores are statements; walk them directly *)
    let rec go s =
      match s with
      | Ast.Prop_set (Ast.This, name, _) ->
        if not (List.mem name !names) then names := name :: !names
      | Ast.If (_, t, e) -> List.iter go t; List.iter go e
      | Ast.While (_, b) -> List.iter go b
      | Ast.For (i, _, st, b) ->
        Option.iter go i; Option.iter go st; List.iter go b
      | _ -> ()
    in
    go s
  in
  List.iter visit body;
  List.length !names

let compile_func ~func_ids ~globals ?(top_level = false) ~id (f : Ast.func) :
    Bytecode.func =
  let regs = Hashtbl.create 16 in
  (* reg 0 = this, 1..n = params *)
  List.iteri (fun i p -> Hashtbl.replace regs p (i + 1)) f.Ast.params;
  (* the synthetic main has no locals: its vars are the program's globals *)
  let locals = if top_level then [] else List.rev (locals_of_block [] f.Ast.body) in
  let n_params = List.length f.Ast.params in
  List.iteri
    (fun i x ->
      if not (Hashtbl.mem regs x) then Hashtbl.replace regs x (n_params + 1 + i))
    locals;
  let base_temp = 1 + n_params + List.length locals in
  let ctx =
    {
      code = Array.make 16 (Bytecode.Jump 0);
      n = 0;
      fb = [];
      n_fb = 0;
      regs;
      base_temp;
      next_temp = base_temp;
      max_reg = base_temp;
      func_ids;
      globals;
      break_patches = [];
      continue_targets = [];
    }
  in
  List.iter (compile_stmt ctx) f.Ast.body;
  (* implicit return (constructors return [this], others null) — skipped
     when the body already ends in a return and nothing jumps past it *)
  let jumps_to_end =
    let found = ref false in
    for i = 0 to ctx.n - 1 do
      match ctx.code.(i) with
      | Bytecode.Jump l | JumpIfFalse (_, l) | JumpIfTrue (_, l) ->
        if l >= ctx.n then found := true
      | _ -> ()
    done;
    !found
  in
  let ends_in_return =
    ctx.n > 0 && (match ctx.code.(ctx.n - 1) with Bytecode.Return _ -> true | _ -> false)
  in
  if not (ends_in_return && not jumps_to_end) then begin
    reset_temps ctx;
    if f.Ast.is_ctor then ignore (emit ctx (Bytecode.Return 0))
    else begin
      let r = temp ctx in
      ignore (emit ctx (Bytecode.LoadNull r));
      ignore (emit ctx (Bytecode.Return r))
    end
  end;
  {
    Bytecode.id;
    name = f.Ast.name;
    n_params;
    n_named = base_temp;
    n_regs = ctx.max_reg;
    code = Array.sub ctx.code 0 ctx.n;
    fb = Array.of_list (List.rev ctx.fb);
    is_ctor = f.Ast.is_ctor;
    reserve_props = this_props_of_body f.Ast.body + 2;
    base_class = None;
    call_count = 0;
    backedge_count = 0;
    opt = None;
    shadow = None;
    deopt_count = 0;
    opt_disabled = false;
    backoff_level = 0;
    backoff_until = 0;
    last_deopt_at = 0;
    base_cost = [||];
  }

(** Compile a whole program; the top-level statements become a synthetic
    function named ["%main"] with id [funcs]. *)
let compile (p : Ast.program) : Bytecode.program =
  let func_ids = Hashtbl.create 16 in
  List.iteri (fun i (f : Ast.func) -> Hashtbl.replace func_ids f.Ast.name i) p.Ast.funcs;
  (* top-level vars are globals, visible from every function *)
  let global_names = List.rev (locals_of_block [] p.Ast.main) in
  let globals = Hashtbl.create 16 in
  List.iteri (fun i n -> Hashtbl.replace globals n i) global_names;
  let main_id = List.length p.Ast.funcs in
  let funcs =
    List.mapi (fun i f -> compile_func ~func_ids ~globals ~id:i f) p.Ast.funcs
  in
  let main_ast =
    { Ast.name = "%main"; params = []; body = p.Ast.main; is_ctor = false }
  in
  let main = compile_func ~func_ids ~globals ~top_level:true ~id:main_id main_ast in
  {
    Bytecode.funcs = Array.of_list (funcs @ [ main ]);
    main = main_id;
    globals = Array.of_list global_names;
  }

(** Convenience: parse + compile. *)
let compile_source src = compile (Parser.parse src)
