(** Dynamic-instruction categories, exactly the paper's Figure 1 breakdown
    plus one extra bucket for the mechanism's own instructions.

    - [C_check]: Check Map / Check SMI / Check Non-SMI operations proper.
    - [C_taguntag]: boxing/unboxing of numbers *including* the checking
      operations that guard an untag (the paper folds those into
      Tags/Untags; Figure 2 adds the guarding subset back in — we mark that
      subset with the [guards_obj_load] flag below).
    - [C_math]: math assumptions (SMI overflow, division by zero).
    - [C_ccop]: the new instructions our mechanism adds
      (movClassID/movClassIDArray and the special-store opcode delta) —
      overhead the paper discusses in §4.2.2/§5.3.
    - [C_other]: the rest of the optimized code. *)

type t = C_check | C_taguntag | C_math | C_ccop | C_other

let count = 5

let index = function
  | C_check -> 0
  | C_taguntag -> 1
  | C_math -> 2
  | C_ccop -> 3
  | C_other -> 4

let of_index = function
  | 0 -> C_check
  | 1 -> C_taguntag
  | 2 -> C_math
  | 3 -> C_ccop
  | 4 -> C_other
  | _ -> invalid_arg "Categories.of_index"

let name = function
  | C_check -> "Checks"
  | C_taguntag -> "Tags/Untags"
  | C_math -> "Math Assumptions"
  | C_ccop -> "Class Cache ops"
  | C_other -> "Other Optimized Code"

let pp ppf c = Fmt.string ppf (name c)

(** Per-instruction flags. *)

(** The instruction is a check (or untag-guard check) that verifies a value
    *obtained from an object property or elements array* — the overhead
    population of the paper's Figure 2. *)
let flag_guards_obj_load = 1

(** The instruction would be removed by the paper's optimizations (set on
    checks that the Class List could have elided; used for sanity
    accounting, not for the speedup itself). *)
let flag_elidable = 2

(** Check kinds: which paper-figure bucket (Figures 10–12) a [C_check]
    instruction belongs to. Encoded into [flags] bits 2+ (bits 0–1 hold
    {!flag_guards_obj_load} / {!flag_elidable}) so the machine can count
    per-kind check executions without new instruction fields. *)

type check_kind = Ck_map | Ck_smi | Ck_non_smi | Ck_smi_convert | Ck_checked_load

let check_kind_count = 5

let check_kind_index = function
  | Ck_map -> 0
  | Ck_smi -> 1
  | Ck_non_smi -> 2
  | Ck_smi_convert -> 3
  | Ck_checked_load -> 4

let check_kind_name = function
  | Ck_map -> "check-map"
  | Ck_smi -> "check-smi"
  | Ck_non_smi -> "check-non-smi"
  | Ck_smi_convert -> "smi-convert"
  | Ck_checked_load -> "checked-load"

let all_check_kinds = [ Ck_map; Ck_smi; Ck_non_smi; Ck_smi_convert; Ck_checked_load ]

(* Value 0 in bits 2+ means "unattributed", so kind k is stored as k+1. *)
let flag_of_check_kind k = (check_kind_index k + 1) lsl 2

(** 1-based slot for counter arrays: 0 = unattributed, 1..count = kinds. *)
let check_kind_slot flags =
  let v = flags lsr 2 in
  if v >= 1 && v <= check_kind_count then v else 0

let check_kind_of_flags flags =
  let v = flags lsr 2 in
  if v >= 1 && v <= check_kind_count then
    Some (List.nth all_check_kinds (v - 1))
  else None
