(** LIR: the low-level instruction set the optimizing compiler emits and the
    cycle-level machine simulates — an idealized x86-64-like ISA with
    unlimited virtual integer/float registers plus the paper's new
    instructions (§4.2.1.2) and special registers. Compare-and-branch is one
    instruction (macro-fusion); checks are *expanded* (a Check Map is a
    class-word [Load] plus a [Branch] to a [Deopt], both tagged
    {!Categories.C_check}), so category accounting and timing both see the
    real stream. *)

type reg = int
type freg = int
type label = int

type operand = Reg of reg | Imm of int

type alu = Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Shr | Sar

type cond =
  | Eq | Ne | Lt | Le | Gt | Ge
  | Bit_set  (** (ra land imm) <> 0 — the Check SMI family *)
  | Bit_clear

type fcond =
  | FEq | FNe | FLt | FLe | FGt | FGe
  | FNlt | FNle | FNgt | FNge  (** negated forms, true on NaN *)

(** Runtime-call stubs, executed functionally and charged via {!Costs}. *)
type rt =
  | Rt_alloc_object of int * int  (** classid, reserved props *)
  | Rt_alloc_array of Tce_vm.Hidden_class.elements_kind * int
  | Rt_box_double
  | Rt_generic_get_prop of string
  | Rt_generic_set_prop of string
  | Rt_generic_get_elem
  | Rt_generic_set_elem
  | Rt_generic_binop of Tce_minijs.Ast.binop
  | Rt_generic_unop of Tce_minijs.Ast.unop
  | Rt_elem_store_slow
  | Rt_to_bool
  | Rt_builtin of Builtins.t
  | Rt_fmod
  | Rt_trap of string

type op =
  | MovImm of reg * int
  | Mov of reg * reg
  | Alu of alu * reg * reg * operand
  | Alu32 of alu * reg * reg * operand  (** result wraps to int32 *)
  | AluOv of alu * reg * reg * operand * label
      (** ALU + jump-on-SMI-overflow — a math assumption *)
  | Load of reg * reg * int
  | CheckedLoad of reg * reg * int * int * int
      (** Checked Load baseline (paper §2): load with the receiver's class
          word verified in hardware — executed, never removed.
          (rd, rb, off, expected class word, deopt id) *)
  | LoadIdx of reg * reg * reg * int
  | Store of reg * int * operand
  | StoreIdx of reg * reg * int * operand
  | FMov of freg * freg
  | FMovImm of freg * float
  | FLoad of freg * reg * int
  | FLoadIdx of freg * reg * reg * int
  | FStore of reg * int * freg
  | FStoreIdx of reg * reg * int * freg
  | FAdd of freg * freg * freg
  | FSub of freg * freg * freg
  | FMul of freg * freg * freg
  | FDiv of freg * freg * freg
  | FSqrt of freg * freg
  | FNeg of freg * freg
  | FAbs of freg * freg
  | CvtIF of freg * reg
  | TruncFI of reg * freg  (** JS ToInt32 fast path *)
  | Branch of cond * reg * operand * label
  | FBranch of fcond * freg * freg * label
  | Jmp of label
  | CallFn of int * reg array * reg * int
      (** guest call; the deopt id supports on-stack replacement when this
          frame is invalidated during the call *)
  | CallRt of rt * reg array * freg array * reg option * freg option
  | CallRtChecked of rt * reg array * reg option * int
      (** a stub that can invalidate the *running* code: deopt after it if
          this opt_id was invalidated *)
  | Ret of reg
  | Deopt of int
  | MovClassID of reg  (** regObjectClassId <- ClassID of the value *)
  | MovClassIDArray of int * reg  (** regArrayObjectClassId_k <- ClassID *)
  | StoreClassCache of reg * int * operand * int
      (** store + parallel Class Cache request; (ClassID, Line) recovered
          from the written line's header, slot from address bits 3-5 *)
  | StoreClassCacheArray of int * reg * reg * int * operand * int
      (** ditto for elements; (ClassID, Line, slot) =
          (regArrayObjectClassId_k, 0, 2) *)
  | Profile of reg * int * int
      (** zero-cost measurement pseudo-op: object-load access (Figure 3) *)
  | ProfileStore of reg * int * int * pstore
      (** zero-cost: oracle feed for stores in mechanism-off code *)

and pstore = Ps_reg of reg | Ps_classid of int

type inst = { op : op; cat : Categories.t; flags : int }

val inst : ?flags:int -> Categories.t -> op -> inst

(** Static materialization of a bytecode register. *)
type repr = R_tagged | R_double

type deopt_info = {
  bc_pc : int;  (** bytecode pc at which the interpreter resumes *)
  result_into : int option;
      (** bytecode register receiving an in-flight value (calls) *)
  reason : Tce_attr.Reason.t;
      (** typed explanation: check kind × cause × site pc × classid —
          the source of truth; trace/report strings are renderings
          ([Tce_attr.Reason.to_string]/[describe]) *)
}

type func = {
  fn_id : int;
  opt_id : int;  (** unique per compilation *)
  name : string;
  code : inst array;
  deopts : deopt_info array;
  reprs : repr array;
  n_regs : int;
  n_fregs : int;
  code_addr : int;  (** simulated code address (I-cache) *)
  spec_deps : (int * int * int) list;
      (** (classid, line, pos) Class List slots this code speculates on *)
  mutable invalidated : bool;
  mutable deopt_hits : int;
}

val is_branch : op -> bool
val is_memory_read : op -> bool
val is_memory_write : op -> bool

val pp_operand : Format.formatter -> operand -> unit
val pp_cond : Format.formatter -> cond -> unit
val pp_alu : Format.formatter -> alu -> unit
val pp_op : Format.formatter -> op -> unit
val pp_inst : Format.formatter -> inst -> unit
val pp_func : Format.formatter -> func -> unit
