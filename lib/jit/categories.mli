(** Dynamic-instruction categories — the paper's Figure 1 breakdown plus a
    bucket for the mechanism's own instructions. *)

type t =
  | C_check  (** Check Map / Check SMI / Check Non-SMI proper *)
  | C_taguntag  (** boxing/unboxing, including the checks guarding untags *)
  | C_math  (** math assumptions: SMI overflow, division guards *)
  | C_ccop  (** movClassID / movClassIDArray / special-store delta *)
  | C_other  (** the rest of the optimized code *)

val count : int
val index : t -> int

(** @raise Invalid_argument outside 0..4. *)
val of_index : int -> t

val name : t -> string
val pp : Format.formatter -> t -> unit

(** Instruction flag: this check verifies a value obtained from an object
    property / elements load (Figure 2's population). *)
val flag_guards_obj_load : int

val flag_elidable : int

(** Check kinds: the paper-figure bucket (Figures 10–12) a [C_check]
    instruction belongs to, packed into [flags] bits 2+ so per-kind check
    executions can be counted with zero new instruction state. *)
type check_kind = Ck_map | Ck_smi | Ck_non_smi | Ck_smi_convert | Ck_checked_load

val check_kind_count : int
val check_kind_index : check_kind -> int
val check_kind_name : check_kind -> string
val all_check_kinds : check_kind list

(** The flag bits encoding this kind (or-combine with the bit flags). *)
val flag_of_check_kind : check_kind -> int

(** 1-based counter slot from an instruction's flags: 0 when the
    instruction carries no kind tag, else [check_kind_index k + 1]. *)
val check_kind_slot : int -> int

val check_kind_of_flags : int -> check_kind option
