(** Bytecode-level function inlining (Crankshaft inlined small hot
    functions; without it, parameter types are opaque and per-call checks
    dominate exactly the loops the paper's benchmarks spend their time in).

    [expand prog fn] builds a *shadow function*: [fn]'s bytecode with every
    eligible direct call / construction replaced by a remapped copy of the
    callee's bytecode and a snapshot of its feedback. The optimizer compiles
    the shadow; deoptimization resumes the interpreter *on the shadow
    bytecode* (it is ordinary bytecode with identical semantics), which
    keeps frame reconstruction single-frame. *)

let max_callee_ops = 48
let max_result_ops = 700
let max_sites = 12

let eligible (prog : Bytecode.program) ~caller_id fid =
  let callee = prog.Bytecode.funcs.(fid) in
  fid <> caller_id
  && Array.length callee.Bytecode.code <= max_callee_ops
  && not callee.Bytecode.opt_disabled
  (* don't inline self-recursive callees *)
  && not
       (Array.exists
          (function
            | Bytecode.Call (_, f, _) | New (_, f, _) -> f = fid
            | _ -> false)
          callee.Bytecode.code)

(* Jump-target encodings used during emission, resolved in a final pass:
   a non-negative target is already a final shadow pc;
   [-1000000 - l] marks a caller target (fixed via the caller pc map). *)
let caller_target l = -1000000 - l
let is_caller_target l = l <= -1000000
let decode_caller_target l = -1000000 - l

type b = {
  mutable code : Bytecode.bc array;
  mutable n : int;
  mutable fb : Feedback.site array;
  mutable n_fb : int;
  mutable n_regs : int;
}

let emit b op =
  if b.n = Array.length b.code then begin
    let a = Array.make (max 64 (2 * b.n)) (Bytecode.Jump 0) in
    Array.blit b.code 0 a 0 b.n;
    b.code <- a
  end;
  b.code.(b.n) <- op;
  b.n <- b.n + 1;
  b.n - 1

let append_fb b (sites : Feedback.site array) =
  let off = b.n_fb in
  let need = off + Array.length sites in
  if need > Array.length b.fb then begin
    let a =
      Array.make
        (max need (2 * max 1 (Array.length b.fb)))
        (Feedback.S_binop Feedback.Bf_none)
    in
    Array.blit b.fb 0 a 0 b.n_fb;
    b.fb <- a
  end;
  Array.blit sites 0 b.fb off (Array.length sites);
  b.n_fb <- need;
  off

let remap_op ~rmap ~fb_off ~jmp (op : Bytecode.bc) : Bytecode.bc =
  let r i = rmap i in
  match op with
  | Bytecode.LoadInt (d, i) -> Bytecode.LoadInt (r d, i)
  | LoadNum (d, x) -> LoadNum (r d, x)
  | LoadStr (d, s) -> LoadStr (r d, s)
  | LoadBool (d, x) -> LoadBool (r d, x)
  | LoadNull d -> LoadNull (r d)
  | Move (d, s) -> Move (r d, r s)
  | BinOp (op', d, a, b, fb) -> BinOp (op', r d, r a, r b, fb + fb_off)
  | UnOp (op', d, a) -> UnOp (op', r d, r a)
  | GetProp (d, o, nm, fb) -> GetProp (r d, r o, nm, fb + fb_off)
  | SetProp (o, nm, v, fb) -> SetProp (r o, nm, r v, fb + fb_off)
  | GetElem (d, o, i, fb) -> GetElem (r d, r o, r i, fb + fb_off)
  | SetElem (o, i, v, fb) -> SetElem (r o, r i, r v, fb + fb_off)
  | GetGlobal (d, i) -> GetGlobal (r d, i)
  | SetGlobal (i, v) -> SetGlobal (i, r v)
  | NewObject d -> NewObject (r d)
  | AllocCtor (d, f) -> AllocCtor (r d, f)
  | NewArray (d, c) -> NewArray (r d, c)
  | Call (d, f, args) -> Call (r d, f, Array.map r args)
  | CallB (d, bt, args) -> CallB (r d, bt, Array.map r args)
  | New (d, f, args) -> New (r d, f, Array.map r args)
  | Jump l -> Jump (jmp l)
  | JumpIfFalse (c, l) -> JumpIfFalse (r c, jmp l)
  | JumpIfTrue (c, l) -> JumpIfTrue (r c, jmp l)
  | Return v -> Return (r v)

(** Inline [callee] at the current emission point; the return value lands in
    [dst]. Callee-internal jumps are resolved before returning. *)
let inline_body b (callee : Bytecode.func) ~args ~this_src ~dst =
  let base = b.n_regs in
  b.n_regs <- b.n_regs + callee.Bytecode.n_regs;
  let rmap i = base + i in
  let fb_off = append_fb b (Array.copy callee.Bytecode.fb) in
  (match this_src with
  | `Null -> ignore (emit b (Bytecode.LoadNull (rmap 0)))
  | `Reg r -> ignore (emit b (Bytecode.Move (rmap 0, r))));
  for i = 0 to callee.Bytecode.n_params - 1 do
    if i < Array.length args then
      ignore (emit b (Bytecode.Move (rmap (i + 1), args.(i))))
    else ignore (emit b (Bytecode.LoadNull (rmap (i + 1))))
  done;
  (* callee locals/temps are NOT null-seeded: every MiniJS local has an
     initializer ([var x = e]), so they are written before read; seeding
     nulls would poison the type of every float local in the inlined body *)
  let n_callee = Array.length callee.Bytecode.code in
  let pc_map = Array.make (n_callee + 1) 0 in
  let body_start = b.n in
  (* provisional: callee pc [l] encoded as [-2 - l]; end-of-inline as [-1] *)
  Array.iteri
    (fun i op ->
      pc_map.(i) <- b.n;
      match op with
      | Bytecode.Return v ->
        ignore (emit b (Bytecode.Move (dst, rmap v)));
        ignore (emit b (Bytecode.Jump (-1)))
      | op -> ignore (emit b (remap_op ~rmap ~fb_off ~jmp:(fun l -> -2 - l) op)))
    callee.Bytecode.code;
  pc_map.(n_callee) <- b.n;
  let fix l =
    if l = -1 then b.n else if l <= -2 && l > -1000000 then pc_map.(-2 - l) else l
  in
  for i = body_start to b.n - 1 do
    b.code.(i) <-
      (match b.code.(i) with
      | Bytecode.Jump l when l < 0 -> Bytecode.Jump (fix l)
      | JumpIfFalse (c, l) when l < 0 -> JumpIfFalse (c, fix l)
      | JumpIfTrue (c, l) when l < 0 -> JumpIfTrue (c, fix l)
      | op -> op)
  done

(** One inlining pass over [fn]; [None] when nothing is eligible. *)
let expand_once (prog : Bytecode.program) (fn : Bytecode.func) : Bytecode.func option =
  let caller_id = fn.Bytecode.id in
  let any =
    Array.exists
      (function
        | Bytecode.Call (_, f, _) -> eligible prog ~caller_id f
        | New (_, f, _) ->
          eligible prog ~caller_id f
          && prog.Bytecode.funcs.(f).Bytecode.base_class <> None
        | _ -> false)
      fn.Bytecode.code
  in
  if not any then None
  else begin
    let b =
      {
        code = Array.make 128 (Bytecode.Jump 0);
        n = 0;
        fb = Array.copy fn.Bytecode.fb;
        n_fb = Array.length fn.Bytecode.fb;
        n_regs = fn.Bytecode.n_regs;
      }
    in
    let sites = ref 0 in
    let n = Array.length fn.Bytecode.code in
    let pc_map = Array.make (n + 1) 0 in
    Array.iteri
      (fun pc op ->
        pc_map.(pc) <- b.n;
        match op with
        | Bytecode.Call (d, f, args)
          when eligible prog ~caller_id f && !sites < max_sites
               && b.n < max_result_ops ->
          incr sites;
          inline_body b prog.Bytecode.funcs.(f) ~args ~this_src:`Null ~dst:d
        | Bytecode.New (d, f, args)
          when eligible prog ~caller_id f && !sites < max_sites
               && b.n < max_result_ops
               && prog.Bytecode.funcs.(f).Bytecode.base_class <> None ->
          incr sites;
          ignore (emit b (Bytecode.AllocCtor (d, f)));
          inline_body b prog.Bytecode.funcs.(f) ~args ~this_src:(`Reg d) ~dst:d
        | op ->
          (* caller op: its jump targets are caller pcs, fixed afterwards *)
          ignore
            (emit b (remap_op ~rmap:(fun r -> r) ~fb_off:0 ~jmp:caller_target op)))
      fn.Bytecode.code;
    pc_map.(n) <- b.n;
    if !sites = 0 then None
    else begin
      for i = 0 to b.n - 1 do
        let fix l =
          if is_caller_target l then pc_map.(decode_caller_target l) else l
        in
        b.code.(i) <-
          (match b.code.(i) with
          | Bytecode.Jump l -> Bytecode.Jump (fix l)
          | JumpIfFalse (c, l) -> JumpIfFalse (c, fix l)
          | JumpIfTrue (c, l) -> JumpIfTrue (c, fix l)
          | op -> op)
      done;
      Some
        {
          fn with
          Bytecode.code = Array.sub b.code 0 b.n;
          fb = Array.sub b.fb 0 b.n_fb;
          n_regs = b.n_regs;
          opt = None;
          shadow = None;
          base_cost = [||];
        }
    end
  end

(** Iterated expansion: a callee copied into the shadow keeps its own call
    sites, so re-expand until fixpoint (bounded depth/size). *)
let expand prog fn : Bytecode.func option =
  let rec go depth cur changed =
    if depth = 0 || Array.length cur.Bytecode.code >= max_result_ops then
      if changed then Some cur else None
    else
      match expand_once prog cur with
      | Some next -> go (depth - 1) next true
      | None -> if changed then Some cur else None
  in
  go 3 fn false
