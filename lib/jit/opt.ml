(** The optimizing compiler ("Crankshaft" stand-in, paper §3.2/§4.3).

    Pipeline: bytecode + type feedback
      -> forward type/provenance fixpoint over the bytecode CFG
      -> LIR emission with explicit, categorized check instructions.

    Check insertion follows V8: property/element accesses are specialized to
    the receiver shapes seen by the inline caches, guarded by Check Map /
    Check (Non-)SMI operations that deoptimize into the baseline tier.

    With the mechanism enabled, the Class List is consulted: a load from a
    slot profiled monomorphic yields a value of *known* type, so the
    downstream checks (§4.3.1-4.3.3: Check Maps / Check SMI / Check Non-SMI
    elimination, including untag guards) are simply never emitted, and the
    compiled code registers a speculation dependency on that slot. Stores to
    still-valid slots are emitted as movClassID + movStoreClassCache
    (movClassIDArray + movStoreClassCacheArray for elements). *)

open Tce_vm
module CL = Tce_core.Class_list
module Reason = Tce_attr.Reason
module Ledger = Tce_attr.Ledger

exception Bailout of string
(** the function cannot be optimized; stays in the baseline tier *)

let bailout fmt = Fmt.kstr (fun s -> raise (Bailout s)) fmt

(* --- the type lattice --- *)

type ty =
  | Any
  | Smi
  | Num  (** number: SMI or heap number *)
  | Cls of int  (** tagged pointer of known hidden class *)
  | Bool
  | Null
  | Str

let join_ty heapnum_id a b =
  if a = b then a
  else
    let numeric = function
      | Smi | Num -> true
      | Cls c -> c = heapnum_id
      | _ -> false
    in
    if numeric a && numeric b then Num else Any

(* --- compilation environment --- *)

type env = {
  prog : Bytecode.program;
  heap : Heap.t;
  cl : CL.t;
  mechanism : bool;
  hoisting : bool;
      (** hoist movClassIDArray out of call-free loops (paper §4.2.1.3) *)
  checked_load : bool;
      (** Checked Load baseline (Anderson et al., paper §2): property-load
          receiver checks are fused into the load by hardware — executed
          but never removed; only applies to loads *)
  fn : Bytecode.func;
  opt_id : int;
  code_addr : int;
  globals_base : int;  (** simulated address of the global cells *)
  attr : Ledger.t;
      (** attribution ledger ({!Tce_attr.Ledger.null} = disabled): records
          per-check-site removed/kept decisions and why *)
}

let heapnum_id env = (Hidden_class.Registry.number_class env.heap.Heap.reg).Hidden_class.id
let string_id env = (Hidden_class.Registry.string_class env.heap.Heap.reg).Hidden_class.id
let boolean_id env = (Hidden_class.Registry.boolean_class env.heap.Heap.reg).Hidden_class.id
let null_id env = (Hidden_class.Registry.null_class env.heap.Heap.reg).Hidden_class.id

let class_of_id env id = Hidden_class.Registry.find_exn env.heap.Heap.reg id

let kind_of_classid env id = (class_of_id env id).Hidden_class.kind

(** Result type of a specialized load from slot [(classid, line, pos)] under
    Class List speculation; [None] = unknown (checks stay). *)
let spec_load_ty env ~classid ~line ~pos : ty option =
  if not env.mechanism then None
  else
    match CL.profiled_class env.cl ~classid ~line ~pos with
    | None -> None
    | Some p ->
      if p = Layout.smi_classid then Some Smi
      else (match Hidden_class.Registry.find env.heap.Heap.reg p with
           | Some _ -> Some (Cls p)
           | None -> None)

(** Built-in type-specific slots (need no profile): elements length (arrays
    and plain objects) and string length are always SMIs. *)
let invariant_slot_ty env ~classid ~slot : ty option =
  match kind_of_classid env classid with
  | Hidden_class.K_string when slot = 2 -> Some Smi
  | (Hidden_class.K_array _ | Hidden_class.K_object)
    when slot = Layout.elements_len_slot ->
    Some Smi
  | _ -> None

(** Type a specialized property load: invariants first, then speculation. *)
let prop_load_ty env ~classid ~slot : ty option * (int * int * int) option =
  match invariant_slot_ty env ~classid ~slot with
  | Some ty -> (Some ty, None)
  | None ->
    let line, pos = Layout.line_pos_of_slot slot in
    (match spec_load_ty env ~classid ~line ~pos with
    | Some ty -> (Some ty, Some (classid, line, pos))
    | None -> (None, None))

(** Type of a specialized elements load from a receiver of class [classid]:
    SMI/double kinds are typed by the elements kind itself (V8 invariant);
    tagged kinds can be typed by the Class List's Prop2 profile. *)
let elem_load_ty env ~classid :
    [ `Smi | `Double | `Tagged of ty option * (int * int * int) option | `No_elements ] =
  match kind_of_classid env classid with
  | Hidden_class.K_array Hidden_class.E_smi -> `Smi
  | K_array E_double -> `Double
  | K_array E_tagged | K_object -> (
    let pos = Layout.elements_ptr_slot in
    match spec_load_ty env ~classid ~line:0 ~pos with
    | Some ty -> `Tagged (Some ty, Some (classid, 0, pos))
    | None -> `Tagged (None, None))
  | _ -> `No_elements

let builtin_ret_ty (b : Builtins.t) : ty =
  match b with
  | Builtins.B_sqrt | B_sin | B_cos | B_exp | B_log | B_pow | B_random
  | B_abs | B_floor | B_ceil | B_min | B_max ->
    Num
  | B_str_len | B_char_code | B_push -> Smi
  | B_array_new -> Any
      (* a fresh array's class mutates in place on kind transitions, so the
         static type would go stale: keep it Any (checked at uses) *)
  | B_from_char_code | B_substr -> Str
  | B_str_eq -> Bool
  | B_print | B_assert_eq -> Null

(* --- fixpoint state: (type, provenance, known constant) per register --- *)

type cval = C_none | C_int of int | C_float of float

type state = { tys : ty array; fl : bool array; cv : cval array }

let copy_state s = { tys = Array.copy s.tys; fl = Array.copy s.fl; cv = Array.copy s.cv }

let join_state hn (a : state) (b : state) =
  let changed = ref false in
  Array.iteri
    (fun i t ->
      let j = join_ty hn t b.tys.(i) in
      if j <> t then begin
        a.tys.(i) <- j;
        changed := true
      end;
      let f = a.fl.(i) || b.fl.(i) in
      if f <> a.fl.(i) then begin
        a.fl.(i) <- f;
        changed := true
      end;
      if a.cv.(i) <> b.cv.(i) && a.cv.(i) <> C_none then begin
        a.cv.(i) <- C_none;
        changed := true
      end)
    a.tys;
  !changed

(** Abstract transfer of one bytecode op over [st] (in place). Must agree
    exactly with the code generator's decisions below. *)
let transfer env (st : state) (bc : Bytecode.bc) =
  let fb = env.fn.Bytecode.fb in
  let set r ty = st.tys.(r) <- ty; st.fl.(r) <- false; st.cv.(r) <- C_none in
  let set_fl r ty = st.tys.(r) <- ty; st.fl.(r) <- true; st.cv.(r) <- C_none in
  match bc with
  | Bytecode.LoadInt (r, i) ->
    set r Smi;
    st.cv.(r) <- C_int i
  | LoadNum (r, x) ->
    (* float literals are interned heap-number constants *)
    set r (Cls (heapnum_id env));
    st.cv.(r) <- C_float x
  | LoadStr (r, _) -> set r Str
  | LoadBool (r, _) -> set r Bool
  | LoadNull r -> set r Null
  | Move (d, s) ->
    st.tys.(d) <- st.tys.(s);
    st.fl.(d) <- st.fl.(s);
    st.cv.(d) <- st.cv.(s)
  | BinOp (op, d, _, _, slot) -> (
    let k = Feedback.binop_of fb.(slot) in
    match op with
    | Tce_minijs.Ast.Lt | Le | Gt | Ge | Eq | Ne -> set d Bool
    | LAnd | LOr -> set d Any
    | BitAnd | BitOr | BitXor | Shl | Shr -> set d Smi
    | Ushr -> set d (match k with Feedback.Bf_smi -> Smi | _ -> Num)
    | Add | Sub | Mul | Div | Mod -> (
      match k with
      | Feedback.Bf_smi -> set d Smi
      | Bf_number -> set d Num
      | Bf_string when op = Tce_minijs.Ast.Add -> set d Str
      | _ -> set d Any))
  | UnOp (op, d, _) -> (
    match op with
    | Tce_minijs.Ast.Neg -> set d Num
    | Not -> set d Bool
    | BitNot -> set d Smi)
  | GetProp (d, o, _, slot) -> (
    match Feedback.prop_of fb.(slot) with
    | Feedback.Ic_mono { classid; slot = s; _ } -> (
      (* the emitted Check Map refines the receiver's type from here on
         (flow-sensitive check elimination, like Crankshaft's) *)
      st.tys.(o) <- Cls classid;
      match prop_load_ty env ~classid ~slot:s with
      | Some ty, _ -> set_fl d ty
      | None, _ -> set_fl d Any)
    | Ic_poly shapes -> (
      (* typed only if every shape agrees *)
      let tys =
        List.map (fun (sh : Feedback.shape) ->
            fst (prop_load_ty env ~classid:sh.classid ~slot:sh.slot))
          shapes
      in
      match tys with
      | Some t0 :: rest when List.for_all (( = ) (Some t0)) rest -> set_fl d t0
      | _ -> set_fl d Any)
    | _ -> set_fl d Any)
  | GetElem (d, o, i, slot) -> (
    match Feedback.elem_of fb.(slot) with
    | Feedback.Eic_mono classid -> (
      st.tys.(o) <- Cls classid;
      if st.tys.(i) <> Smi then st.tys.(i) <- Smi;  (* index guard *)
      match elem_load_ty env ~classid with
      | `Smi -> set_fl d Smi
      | `Double -> set_fl d Num
      | `Tagged (Some ty, _) -> set_fl d ty
      | `Tagged (None, _) | `No_elements -> set_fl d Any)
    | _ -> set_fl d Any)
  | SetProp (o, _, _, slot) -> (
    (* the emitted Check Map refines the receiver; a transitioning store
       additionally changes the receiver's class *)
    match Feedback.prop_of fb.(slot) with
    | Feedback.Ic_mono { transition_to = Some c'; _ } -> st.tys.(o) <- Cls c'
    | Feedback.Ic_mono { classid; transition_to = None; _ } ->
      st.tys.(o) <- Cls classid
    | _ -> ())
  | SetElem (o, i, _, slot) -> (
    match Feedback.elem_of fb.(slot) with
    | Feedback.Eic_mono classid ->
      st.tys.(o) <- Cls classid;
      if st.tys.(i) <> Smi then st.tys.(i) <- Smi
    | _ -> ())
  | NewObject d ->
    set d
      (Cls (Hidden_class.Registry.object_root_class env.heap.Heap.reg).Hidden_class.id)
  | NewArray (d, _) ->
    set d
      (Cls
         (Hidden_class.Registry.array_class env.heap.Heap.reg Hidden_class.E_smi)
           .Hidden_class.id)
  | GetGlobal (d, _) -> set d Any
  | SetGlobal _ -> ()
  | AllocCtor (d, fid) -> (
    match env.prog.Bytecode.funcs.(fid).Bytecode.base_class with
    | Some base -> set d (Cls base.Hidden_class.id)
    | None -> set d Any)
  | Call (d, _, _) | New (d, _, _) -> set d Any
  | CallB (d, b, _) -> set d (builtin_ret_ty b)
  | Jump _ | JumpIfFalse _ | JumpIfTrue _ | Return _ -> ()

(** Successors of the op at [pc]. *)
let succs (code : Bytecode.bc array) pc =
  match code.(pc) with
  | Bytecode.Jump l -> [ l ]
  | JumpIfFalse (_, l) | JumpIfTrue (_, l) -> [ pc + 1; l ]
  | Return _ -> []
  | _ -> [ pc + 1 ]

(** Compute the per-pc input states. *)
let fixpoint env : state array =
  let fn = env.fn in
  let n = Array.length fn.Bytecode.code in
  let nregs = fn.Bytecode.n_regs in
  let hn = heapnum_id env in
  let mk () =
    { tys = Array.make nregs Null; fl = Array.make nregs false;
      cv = Array.make nregs C_none }
  in
  let states = Array.init n (fun _ -> mk ()) in
  let reached = Array.make n false in
  (* entry: this + params are Any, locals start as null *)
  for i = 0 to min fn.Bytecode.n_params (nregs - 1) do
    states.(0).tys.(i) <- Any
  done;
  reached.(0) <- true;
  let work = Queue.create () in
  Queue.push 0 work;
  while not (Queue.is_empty work) do
    let pc = Queue.pop work in
    let out = copy_state states.(pc) in
    transfer env out fn.Bytecode.code.(pc);
    List.iter
      (fun s ->
        if s < n then
          if not reached.(s) then begin
            reached.(s) <- true;
            Array.blit out.tys 0 states.(s).tys 0 nregs;
            Array.blit out.fl 0 states.(s).fl 0 nregs;
            Array.blit out.cv 0 states.(s).cv 0 nregs;
            Queue.push s work
          end
          else if join_state hn states.(s) out then Queue.push s work)
      (succs fn.Bytecode.code pc)
  done;
  states

(** Static representation of each bytecode register: unboxed double iff
    every def is a double-typed value or an integer literal (materialized
    as an immediate double), with at least one double def. *)
let assign_reprs env (states : state array) : Lir.repr array =
  let fn = env.fn in
  let nregs = fn.Bytecode.n_regs in
  let reprs = Array.make nregs Lir.R_tagged in
  let ok = Array.make nregs true in
  let has_dbl = Array.make nregs false in
  let hn = heapnum_id env in
  Array.iteri
    (fun pc bc ->
      match Bytecode.def_reg bc with
      | Some d -> (
        match bc with
        | Bytecode.LoadInt _ -> ()  (* immediate: FMovImm in a double reg *)
        | _ ->
          let out = copy_state states.(pc) in
          transfer env out bc;
          (match out.tys.(d) with
          | Num -> has_dbl.(d) <- true
          | Cls c when c = hn -> has_dbl.(d) <- true
          | _ -> ok.(d) <- false))
      | None -> ())
    fn.Bytecode.code;
  for r = fn.Bytecode.n_params + 1 to nregs - 1 do
    if ok.(r) && has_dbl.(r) then reprs.(r) <- Lir.R_double
  done;
  reprs

(* --- code generation --- *)

type fixup = F_bc of int | F_deopt of int

type gen = {
  genv : env;
  states : state array;
  reprs : Lir.repr array;
  n_bc : int;  (** bytecode register count; LIR regs/fregs 0..n_bc-1 mirror them *)
  mutable out : Lir.inst array;
  mutable n : int;
  bc2lir : int array;
  mutable fixups : (int * fixup) list;
  mutable deopt_infos : Lir.deopt_info list;  (** reversed *)
  mutable n_deopts : int;
  mutable scratch : int;
  mutable max_reg : int;
  mutable scratch_f : int;
  mutable max_freg : int;
  mutable deps : (int * int * int) list;
  hoist_headers : (int, (int * int) list) Hashtbl.t;
      (** loop-header bc pc -> [(k, receiver reg)] movClassIDArray hoists
          emitted just before the header (executed once per loop entry) *)
  hoist_sites : (int, int) Hashtbl.t;
      (** SetElem bc pc -> the special register k holding its receiver's
          ClassID *)
}

let emit g ?(flags = 0) cat op =
  if g.n = Array.length g.out then begin
    let a = Array.make (max 64 (2 * g.n)) (Lir.inst Categories.C_other (Lir.Jmp 0)) in
    Array.blit g.out 0 a 0 g.n;
    g.out <- a
  end;
  g.out.(g.n) <- Lir.inst ~flags cat op;
  g.n <- g.n + 1;
  g.n - 1

let retarget (op : Lir.op) tgt =
  match op with
  | Lir.Branch (c, r, o, _) -> Lir.Branch (c, r, o, tgt)
  | FBranch (c, a, b, _) -> FBranch (c, a, b, tgt)
  | Jmp _ -> Jmp tgt
  | AluOv (a, d, s, o, _) -> AluOv (a, d, s, o, tgt)
  | _ -> invalid_arg "retarget"

(** Patch a locally-emitted forward branch to the current position. *)
let land_here g idx =
  g.out.(idx) <- { (g.out.(idx)) with op = retarget g.out.(idx).op g.n }

let add_fixup g idx f = g.fixups <- (idx, f) :: g.fixups

let scratch g =
  let r = g.scratch in
  g.scratch <- r + 1;
  g.max_reg <- max g.max_reg (r + 1);
  r

let scratch_f g =
  let r = g.scratch_f in
  g.scratch_f <- r + 1;
  g.max_freg <- max g.max_freg (r + 1);
  r

let reset_scratch g =
  g.scratch <- g.n_bc;
  g.scratch_f <- g.n_bc

let mk_deopt g ~(reason : Reason.t) ~bc_pc ~result_into =
  g.deopt_infos <- { Lir.bc_pc; result_into; reason } :: g.deopt_infos;
  g.n_deopts <- g.n_deopts + 1;
  g.n_deopts - 1

(** Record one check-site decision in the attribution ledger (no-op when the
    ledger is {!Ledger.null}; never touches simulated state). *)
let attr_site g ~pc ~kind ?classid ?note decision =
  Ledger.record_site g.genv.attr ~fn:g.genv.fn.Bytecode.name ~pc
    ~kind:(Categories.check_kind_name kind) ?classid ?note decision

(** Why a Class List slot failed to type its loads (the check stays). *)
let slot_keep_cause g ~classid ~line ~pos : Ledger.keep_cause =
  let env = g.genv in
  if not env.mechanism then Ledger.Kc_mechanism_off
  else if not (CL.is_valid env.cl ~classid ~line ~pos) then
    if Ledger.slot_retired env.attr ~classid ~line ~pos then Ledger.Kc_cc_eviction
    else Ledger.Kc_valid_cleared
  else if not (CL.is_monomorphic env.cl ~classid ~line ~pos) then
    Ledger.Kc_init_unset
  else
    (* initialized and valid, yet the load was not typed: the profiled
       class conflicts with what the consumer needs (e.g. unregistered) *)
    Ledger.Kc_speculate_conflict

let add_dep g classid line pos =
  if not (List.mem (classid, line, pos) g.deps) then
    g.deps <- (classid, line, pos) :: g.deps

(* constants *)
let null_imm g = g.genv.heap.Heap.null_v
let true_imm g = g.genv.heap.Heap.true_v
let false_imm g = g.genv.heap.Heap.false_v

let class_word0 g classid =
  Hidden_class.class_word (class_of_id g.genv classid) ~line:0

(** Emit a "deopt unless value in [r] is an SMI" (Check SMI). *)
let check_smi g ~flags ~cat r did =
  let idx = emit g ~flags cat (Lir.Branch (Lir.Bit_set, r, Lir.Imm 1, -1)) in
  add_fixup g idx (F_deopt did)

(** Emit a "deopt if SMI" (Check Non-SMI). *)
let check_non_smi g ~flags ~cat r did =
  let idx = emit g ~flags cat (Lir.Branch (Lir.Bit_clear, r, Lir.Imm 1, -1)) in
  add_fixup g idx (F_deopt did)

(** Ensure the value in bc reg [r] (tagged) has hidden class [cid]; emits the
    Check (Non-)SMI / Check Map sequence unless the type already proves it
    (the paper's §4.3.1/§4.3.2 elimination falls out of the type lattice). *)
let check_map g (st : state) ~flags ?(cat = Categories.C_check) r cid ~bc_pc =
  match st.tys.(r) with
  | Cls c when c = cid ->
    attr_site g ~pc:bc_pc ~kind:Categories.Ck_map ~classid:cid
      ~note:"type-proven" Ledger.Removed
  | ty ->
    (if Ledger.on g.genv.attr then
       let why =
         if not g.genv.mechanism then Ledger.Kc_mechanism_off
         else
           match ty with
           | Cls _ -> Ledger.Kc_speculate_conflict
           | _ -> Ledger.Kc_untyped
       in
       attr_site g ~pc:bc_pc ~kind:Categories.Ck_map ~classid:cid
         (Ledger.Kept why));
    let did =
      mk_deopt g ~reason:(Reason.make ~classid:cid Reason.K_check_map Reason.C_not_class ~pc:bc_pc)
        ~bc_pc ~result_into:None
    in
    let mapf = flags lor Categories.flag_of_check_kind Categories.Ck_map in
    if ty = Smi then ignore (emit g ~flags:mapf cat (Lir.Deopt did))
    else begin
      (match ty with
      | Any | Num ->
        check_non_smi g
          ~flags:(flags lor Categories.flag_of_check_kind Categories.Ck_non_smi)
          ~cat r did
      | _ -> ());
      let s = scratch g in
      ignore (emit g ~flags:mapf cat (Lir.Load (s, r, -1)));
      let idx =
        emit g ~flags:mapf cat (Lir.Branch (Lir.Ne, s, Lir.Imm (class_word0 g cid), -1))
      in
      add_fixup g idx (F_deopt did)
    end

let heapnum_word g = class_word0 g (heapnum_id g.genv)

(** Location of bc reg [r] as a float: returns an freg holding its numeric
    value, untagging/boxing as required by the repr and type. *)
let float_loc g (st : state) r ~bc_pc : Lir.freg =
  if g.reprs.(r) = Lir.R_double then r
  else begin
    let flags =
      if st.fl.(r) then Categories.flag_guards_obj_load else 0
    in
    let fd = scratch_f g in
    (match st.tys.(r) with
    | Smi ->
      let s = scratch g in
      ignore (emit g Categories.C_taguntag (Lir.Alu (Lir.Sar, s, r, Lir.Imm 1)));
      ignore (emit g Categories.C_taguntag (Lir.CvtIF (fd, s)))
    | Cls c when c = heapnum_id g.genv ->
      (* speculated heap number: direct payload load, no guards (§4.3.2) *)
      ignore (emit g Categories.C_taguntag (Lir.FLoad (fd, r, 7)))
    | _ ->
      (* generic number untag diamond (Full of the paper's Tags/Untags) *)
      let did =
        mk_deopt g ~reason:(Reason.make Reason.K_untag Reason.C_not_number ~pc:bc_pc)
          ~bc_pc ~result_into:None
      in
      let bheap =
        emit g ~flags Categories.C_taguntag (Lir.Branch (Lir.Bit_set, r, Lir.Imm 1, -1))
      in
      let s = scratch g in
      ignore (emit g Categories.C_taguntag (Lir.Alu (Lir.Sar, s, r, Lir.Imm 1)));
      ignore (emit g Categories.C_taguntag (Lir.CvtIF (fd, s)));
      let bend = emit g Categories.C_other (Lir.Jmp (-1)) in
      land_here g bheap;
      (match st.tys.(r) with
      | Num -> ()  (* number: the non-SMI side must be a heap number *)
      | _ ->
        let sm = scratch g in
        ignore (emit g ~flags Categories.C_taguntag (Lir.Load (sm, r, -1)));
        let idx =
          emit g ~flags Categories.C_taguntag
            (Lir.Branch (Lir.Ne, sm, Lir.Imm (heapnum_word g), -1))
        in
        add_fixup g idx (F_deopt did));
      ignore (emit g Categories.C_taguntag (Lir.FLoad (fd, r, 7)));
      land_here g bend);
    fd
  end

(** Location of bc reg [r] as a tagged value (boxing double-repr regs). *)
let tagged_loc g (_st : state) r : Lir.reg =
  if g.reprs.(r) = Lir.R_tagged then r
  else begin
    let d = scratch g in
    ignore
      (emit g Categories.C_taguntag
         (Lir.CallRt (Lir.Rt_box_double, [||], [| r |], Some d, None)));
    d
  end

(** Location of bc reg [r] as a *tagged SMI*, guarded by a Check SMI when the
    type cannot prove it. *)
let tagged_smi_loc g (st : state) r ~bc_pc : Lir.reg =
  if g.reprs.(r) = Lir.R_double then begin
    (* double-repr value used where an SMI is required: deopt on inexact *)
    let did =
      mk_deopt g ~reason:(Reason.make Reason.K_smi_convert Reason.C_inexact_int32 ~pc:bc_pc)
        ~bc_pc ~result_into:None
    in
    let s = scratch g in
    ignore (emit g Categories.C_taguntag (Lir.TruncFI (s, r)));
    let f2 = scratch_f g in
    ignore (emit g Categories.C_taguntag (Lir.CvtIF (f2, s)));
    let idx =
      emit g ~flags:(Categories.flag_of_check_kind Categories.Ck_smi_convert)
        Categories.C_check (Lir.FBranch (Lir.FNe, r, f2, -1))
    in
    add_fixup g idx (F_deopt did);
    let d = scratch g in
    ignore (emit g Categories.C_taguntag (Lir.Alu (Lir.Shl, d, s, Lir.Imm 1)));
    d
  end
  else begin
    (match st.tys.(r) with
    | Smi -> ()
    | _ ->
      let flags = if st.fl.(r) then Categories.flag_guards_obj_load else 0 in
      let flags = flags lor Categories.flag_of_check_kind Categories.Ck_smi in
      let did =
        mk_deopt g ~reason:(Reason.make Reason.K_check_smi Reason.C_not_smi ~pc:bc_pc)
          ~bc_pc ~result_into:None
      in
      check_smi g ~flags ~cat:Categories.C_check r did);
    r
  end

(** Raw (untagged) int32 of bc reg [r] (indexes, bitwise operands). *)
let raw_int_loc g (st : state) r ~bc_pc : Lir.reg =
  if g.reprs.(r) = Lir.R_double then begin
    let s = scratch g in
    ignore (emit g Categories.C_taguntag (Lir.TruncFI (s, r)));
    s
  end
  else begin
    let t = tagged_smi_loc g st r ~bc_pc in
    let s = scratch g in
    ignore (emit g Categories.C_taguntag (Lir.Alu (Lir.Sar, s, t, Lir.Imm 1)));
    s
  end

(** Write a tagged value in [src] into bc reg [d], honoring [d]'s repr. *)
let def_from_tagged g (st : state) d src ~bc_pc =
  if g.reprs.(d) = Lir.R_tagged then begin
    if src <> d then ignore (emit g Categories.C_other (Lir.Mov (d, src)))
  end
  else begin
    (* d is double-repr; src must be numeric *)
    let st' = copy_state st in
    if src < g.n_bc then ()
    else begin
      (* scratch source: give it a conservative numeric type *)
      ignore bc_pc
    end;
    ignore st';
    (* untag via the generic diamond on a pseudo state: treat as Num *)
    let fd = d in
    let did =
      mk_deopt g ~reason:(Reason.make Reason.K_untag Reason.C_not_heapnum ~pc:bc_pc)
        ~bc_pc ~result_into:None
    in
    ignore did;
    let bheap =
      emit g Categories.C_taguntag (Lir.Branch (Lir.Bit_set, src, Lir.Imm 1, -1))
    in
    let s = scratch g in
    ignore (emit g Categories.C_taguntag (Lir.Alu (Lir.Sar, s, src, Lir.Imm 1)));
    ignore (emit g Categories.C_taguntag (Lir.CvtIF (fd, s)));
    let bend = emit g Categories.C_other (Lir.Jmp (-1)) in
    land_here g bheap;
    ignore (emit g Categories.C_taguntag (Lir.FLoad (fd, src, 7)));
    land_here g bend
  end

(* --- branches --- *)

let negate_cond : Lir.cond -> Lir.cond = function
  | Lir.Eq -> Lir.Ne | Ne -> Eq | Lt -> Ge | Ge -> Lt | Le -> Gt | Gt -> Le
  | Bit_set -> Bit_clear | Bit_clear -> Bit_set

let negate_fcond : Lir.fcond -> Lir.fcond = function
  | Lir.FEq -> Lir.FNe | FNe -> FEq
  | FLt -> FNlt | FLe -> FNle | FGt -> FNgt | FGe -> FNge
  | FNlt -> FLt | FNle -> FLe | FNgt -> FGt | FNge -> FGe

let cond_of_binop : Tce_minijs.Ast.binop -> Lir.cond = function
  | Tce_minijs.Ast.Lt -> Lir.Lt | Le -> Le | Gt -> Gt | Ge -> Ge
  | Eq -> Eq | Ne -> Ne
  | _ -> invalid_arg "cond_of_binop"

let fcond_of_binop : Tce_minijs.Ast.binop -> Lir.fcond = function
  | Tce_minijs.Ast.Lt -> Lir.FLt | Le -> FLe | Gt -> FGt | Ge -> FGe
  | Eq -> FEq | Ne -> FNe
  | _ -> invalid_arg "fcond_of_binop"

(** Emit a branch on the truthiness of bc reg [r] (JS ToBoolean). Jumps to
    bytecode pc [target] when truthiness = [jump_if]. *)
let truth_branch g (st : state) r ~jump_if ~bc_pc ~target =
  ignore bc_pc;
  let br_bc idx = add_fixup g idx (F_bc target) in
  if g.reprs.(r) = Lir.R_double then begin
    let fz = scratch_f g in
    ignore (emit g Categories.C_other (Lir.FMovImm (fz, 0.0)));
    let c = if jump_if then Lir.FNe else Lir.FEq in
    br_bc (emit g Categories.C_other (Lir.FBranch (c, r, fz, -1)))
  end
  else
    match st.tys.(r) with
    | Bool ->
      let c = if jump_if then Lir.Ne else Lir.Eq in
      br_bc (emit g Categories.C_other (Lir.Branch (c, r, Lir.Imm (false_imm g), -1)))
    | Cls c when c = boolean_id g.genv ->
      (* a speculated-Boolean slot holds the true/false oddballs *)
      let c = if jump_if then Lir.Ne else Lir.Eq in
      br_bc (emit g Categories.C_other (Lir.Branch (c, r, Lir.Imm (false_imm g), -1)))
    | Smi ->
      let c = if jump_if then Lir.Ne else Lir.Eq in
      br_bc (emit g Categories.C_other (Lir.Branch (c, r, Lir.Imm 0, -1)))
    | Null -> if not jump_if then br_bc (emit g Categories.C_other (Lir.Jmp (-1)))
    | Cls c when c = null_id g.genv ->
      if not jump_if then br_bc (emit g Categories.C_other (Lir.Jmp (-1)))
    | Cls c
      when c <> heapnum_id g.genv && c <> string_id g.genv ->
      (* genuine objects are always truthy *)
      if jump_if then br_bc (emit g Categories.C_other (Lir.Jmp (-1)))
    | Num ->
      let fv = float_loc g st r ~bc_pc in
      let fz = scratch_f g in
      ignore (emit g Categories.C_other (Lir.FMovImm (fz, 0.0)));
      let c = if jump_if then Lir.FNe else Lir.FEq in
      br_bc (emit g Categories.C_other (Lir.FBranch (c, fv, fz, -1)))
    | _ ->
      (* generic ToBoolean stub *)
      let d = scratch g in
      ignore
        (emit g Categories.C_other
           (Lir.CallRt (Lir.Rt_to_bool, [| r |], [||], Some d, None)));
      let c = if jump_if then Lir.Eq else Lir.Ne in
      br_bc (emit g Categories.C_other (Lir.Branch (c, d, Lir.Imm (true_imm g), -1)))

(** The compare kind chosen for a comparison site. *)
type cmp_kind = Ck_smi | Ck_float | Ck_ref | Ck_rt

let compare_kind g (st : state) op a b slot =
  let fbk = Feedback.binop_of g.genv.fn.Bytecode.fb.(slot) in
  let relational =
    match op with
    | Tce_minijs.Ast.Lt | Le | Gt | Ge -> true
    | _ -> false
  in
  let hn = heapnum_id g.genv in
  let pointerish t =
    match t with
    | Bool | Null | Str -> true
    | Cls c -> c <> hn
    | _ -> false
  in
  match fbk with
  | Feedback.Bf_smi -> Ck_smi
  | Bf_number -> Ck_float
  | Bf_string -> if relational then Ck_rt else Ck_ref  (* interned strings *)
  | Bf_ref -> if relational then Ck_rt else Ck_ref
  | _ ->
    if (not relational) && pointerish st.tys.(a) && pointerish st.tys.(b) then Ck_ref
    else Ck_rt

(** Emit a comparison fused into a branch: jump to bc [target] when
    [op a b = jump_if]. *)
let fused_compare g (st : state) op a b slot ~jump_if ~target ~bc_pc =
  match compare_kind g st op a b slot with
  | Ck_smi ->
    let ta = tagged_smi_loc g st a ~bc_pc in
    let tb = tagged_smi_loc g st b ~bc_pc in
    let c = cond_of_binop op in
    let c = if jump_if then c else negate_cond c in
    let idx = emit g Categories.C_other (Lir.Branch (c, ta, Lir.Reg tb, -1)) in
    add_fixup g idx (F_bc target)
  | Ck_float ->
    let fa = float_loc g st a ~bc_pc in
    let fb = float_loc g st b ~bc_pc in
    let c = fcond_of_binop op in
    let c = if jump_if then c else negate_fcond c in
    let idx = emit g Categories.C_other (Lir.FBranch (c, fa, fb, -1)) in
    add_fixup g idx (F_bc target)
  | Ck_ref ->
    let ta = tagged_loc g st a in
    let tb = tagged_loc g st b in
    let c = cond_of_binop op in
    let c = if jump_if then c else negate_cond c in
    let idx = emit g Categories.C_other (Lir.Branch (c, ta, Lir.Reg tb, -1)) in
    add_fixup g idx (F_bc target)
  | Ck_rt ->
    let ta = tagged_loc g st a in
    let tb = tagged_loc g st b in
    let d = scratch g in
    ignore
      (emit g Categories.C_other
         (Lir.CallRt (Lir.Rt_generic_binop op, [| ta; tb |], [||], Some d, None)));
    let c = if jump_if then Lir.Eq else Lir.Ne in
    let idx =
      emit g Categories.C_other (Lir.Branch (c, d, Lir.Imm (true_imm g), -1))
    in
    add_fixup g idx (F_bc target)

(** Materialize a comparison result as a boolean into bc reg [d]. *)
let materialized_compare g (st : state) op d a b slot ~bc_pc =
  match compare_kind g st op a b slot with
  | Ck_rt ->
    let ta = tagged_loc g st a in
    let tb = tagged_loc g st b in
    ignore
      (emit g Categories.C_other
         (Lir.CallRt (Lir.Rt_generic_binop op, [| ta; tb |], [||], Some d, None)))
  | k ->
    ignore (emit g Categories.C_other (Lir.MovImm (d, true_imm g)));
    let idx =
      match k with
      | Ck_smi ->
        let ta = tagged_smi_loc g st a ~bc_pc in
        let tb = tagged_smi_loc g st b ~bc_pc in
        emit g Categories.C_other
          (Lir.Branch (cond_of_binop op, ta, Lir.Reg tb, -1))
      | Ck_float ->
        let fa = float_loc g st a ~bc_pc in
        let fb = float_loc g st b ~bc_pc in
        emit g Categories.C_other (Lir.FBranch (fcond_of_binop op, fa, fb, -1))
      | Ck_ref ->
        let ta = tagged_loc g st a in
        let tb = tagged_loc g st b in
        emit g Categories.C_other
          (Lir.Branch (cond_of_binop op, ta, Lir.Reg tb, -1))
      | Ck_rt -> assert false
    in
    ignore (emit g Categories.C_other (Lir.MovImm (d, false_imm g)));
    land_here g idx

(* --- movClassIDArray hoisting (paper §4.2.1.3) --- *)

(** Find call-free loops whose elements stores have a loop-invariant
    receiver, and assign up to three of the four regArrayObjectClassId
    registers to them (k = 3 stays free for unhoisted stores). *)
let compute_hoists env (states : state array) hoist_headers hoist_sites =
  if env.mechanism && env.hoisting then begin
    let code = env.fn.Bytecode.code in
    let fb = env.fn.Bytecode.fb in
    let n = Array.length code in
    (* backedges, widest span first (prefer outer loops) *)
    let backedges = ref [] in
    Array.iteri
      (fun s op ->
        match op with
        | Bytecode.Jump t | JumpIfFalse (_, t) | JumpIfTrue (_, t) when t <= s ->
          backedges := (t, s) :: !backedges
        | _ -> ())
      code;
    let backedges =
      List.sort (fun (t1, s1) (t2, s2) -> compare (s2 - t2) (s1 - t1)) !backedges
    in
    let k_next = ref 0 in
    List.iter
      (fun (t, s) ->
        let body_has p =
          let found = ref false in
          for pc = t to min s (n - 1) do
            if p code.(pc) then found := true
          done;
          !found
        in
        let call_free =
          not
            (body_has (function
              | Bytecode.Call _ | New _ | CallB _ | AllocCtor _ -> true
              | _ -> false))
        in
        if call_free then
          for pc = t to min s (n - 1) do
            match code.(pc) with
            | Bytecode.SetElem (o, _, v, slot)
              when (not (Hashtbl.mem hoist_sites pc)) && !k_next < 3 -> (
              match Feedback.elem_of fb.(slot) with
              | Feedback.Eic_mono classid
                when (match elem_load_ty env ~classid with
                     | `Smi | `Tagged _ -> true
                     | _ -> false)
                     && CL.is_valid env.cl ~classid ~line:0
                          ~pos:Layout.elements_ptr_slot
                     &&
                     (* the store must actually be special *)
                     not
                       (match CL.profiled_class env.cl ~classid ~line:0
                                ~pos:Layout.elements_ptr_slot
                        with
                       | Some p -> (
                         match states.(pc).tys.(v) with
                         | Smi -> p = Layout.smi_classid
                         | Cls c -> p = c
                         | _ -> false)
                       | None -> false) ->
                let invariant =
                  not
                    (body_has (fun op' ->
                         (match Bytecode.def_reg op' with
                         | Some d -> d = o
                         | None -> false)
                         ||
                         match op' with
                         | Bytecode.SetProp (o', _, _, _) -> o' = o
                         | _ -> false))
                in
                if invariant then begin
                  (* share k with an existing hoist of the same receiver at
                     this header *)
                  let existing =
                    match Hashtbl.find_opt hoist_headers t with
                    | Some l -> List.find_opt (fun (_, r) -> r = o) l
                    | None -> None
                  in
                  let k =
                    match existing with
                    | Some (k, _) -> k
                    | None ->
                      let k = !k_next in
                      incr k_next;
                      Hashtbl.replace hoist_headers t
                        ((k, o)
                        :: Option.value ~default:[]
                             (Hashtbl.find_opt hoist_headers t));
                      k
                  in
                  Hashtbl.replace hoist_sites pc k
                end
              | _ -> ())
            | _ -> ()
          done)
      backedges
  end

(* --- per-op emission --- *)

(** Static ClassID of a value of type [ty], when provable. *)
let static_classid g (ty : ty) : int option =
  let reg = g.genv.heap.Heap.reg in
  match ty with
  | Smi -> Some Layout.smi_classid
  | Cls c -> Some c
  | Bool -> Some (Hidden_class.Registry.boolean_class reg).Hidden_class.id
  | Null -> Some (Hidden_class.Registry.null_class reg).Hidden_class.id
  | Str -> Some (Hidden_class.Registry.string_class reg).Hidden_class.id
  | Num | Any -> None

(** Would a store of a value with static type [vty] into the slot provably
    keep its profile intact? (Initialized, valid, and the profiled class is
    exactly the value's static class.) Such stores cannot raise the
    misspeculation exception, so the compiler emits a plain store — a sound
    strengthening of the paper's emission rule, see DESIGN.md. *)
let store_provably_safe g ~classid ~line ~pos vty =
  match CL.profiled_class g.genv.cl ~classid ~line ~pos with
  | Some p -> static_classid g vty = Some p
  | None -> false

(** Emit a specialized property/elements store's write itself, choosing
    between movStoreClassCache and a plain store per the paper's rule
    ("special stores for slots still considered monomorphic"). *)
let emit_prop_store g ~any_valid ~classid ~line ~pos ~base ~off ~value ~bc_pc =
  if g.genv.mechanism && any_valid then begin
    ignore (emit g Categories.C_ccop (Lir.MovClassID value));
    let did =
      mk_deopt g
        ~reason:(Reason.make ~classid Reason.K_cc (Reason.C_cc (Reason.Cc_prop_store { line; pos })) ~pc:bc_pc)
        ~bc_pc:(bc_pc + 1) ~result_into:None
    in
    ignore
      (emit g Categories.C_other (Lir.StoreClassCache (base, off, Lir.Reg value, did)))
  end
  else begin
    ignore (emit g Categories.C_other (Lir.Store (base, off, Lir.Reg value)));
    if not g.genv.mechanism then
      ignore
        (emit g Categories.C_other
           (Lir.ProfileStore (base, line, pos, Lir.Ps_reg value)))
  end

let elements_off = Layout.elements_data_offset

(** Specialized elements-array bounds/setup for a receiver in [o] of class
    [classid] (already map-checked): loads the elements base and length.
    Returns (elems_reg, len_reg). *)
let load_elements g o =
  let elems = scratch g in
  ignore
    (emit g Categories.C_other
       (Lir.Load (elems, o, (Layout.elements_ptr_slot * 8) - 1)));
  let len = scratch g in
  ignore
    (emit g Categories.C_other
       (Lir.Load (len, o, (Layout.elements_len_slot * 8) - 1)));
  (elems, len)

let gen_op g pc (bc : Bytecode.bc) (st : state) ~(skip_next : bool ref) =
  let env = g.genv in
  let fb = env.fn.Bytecode.fb in
  let code = env.fn.Bytecode.code in
  let flags_of r = if st.fl.(r) then Categories.flag_guards_obj_load else 0 in
  (* write a natural-tagged value in a scratch/bc reg into dest bc reg *)
  let def_float d fsrc =
    if g.reprs.(d) = Lir.R_double then begin
      if fsrc <> d then ignore (emit g Categories.C_other (Lir.FMov (d, fsrc)))
    end
    else begin
      let s = scratch g in
      ignore
        (emit g Categories.C_taguntag
           (Lir.CallRt (Lir.Rt_box_double, [||], [| fsrc |], Some s, None)));
      ignore (emit g Categories.C_other (Lir.Mov (d, s)))
    end
  in
  (* destination for float-producing ops: the bc freg itself when unboxed *)
  let float_dest d = if g.reprs.(d) = Lir.R_double then d else scratch_f g in
  match bc with
  | Bytecode.LoadInt (d, i) ->
    if g.reprs.(d) = Lir.R_double then
      ignore (emit g Categories.C_other (Lir.FMovImm (d, float_of_int i)))
    else ignore (emit g Categories.C_other (Lir.MovImm (d, Tce_vm.Value.smi i)))
  | LoadNum (d, x) ->
    if g.reprs.(d) = Lir.R_double then
      ignore (emit g Categories.C_other (Lir.FMovImm (d, x)))
    else begin
      (* embedded heap-number constant (float literals are never SMIs) *)
      let v = Heap.float_const env.heap x in
      ignore (emit g Categories.C_other (Lir.MovImm (d, v)))
    end
  | LoadStr (d, s) ->
    ignore
      (emit g Categories.C_other (Lir.MovImm (d, Heap.intern_string env.heap s)))
  | LoadBool (d, b) ->
    ignore
      (emit g Categories.C_other
         (Lir.MovImm (d, if b then true_imm g else false_imm g)))
  | LoadNull d -> ignore (emit g Categories.C_other (Lir.MovImm (d, null_imm g)))
  | Move (d, s) -> (
    match (g.reprs.(d), g.reprs.(s)) with
    | Lir.R_tagged, Lir.R_tagged ->
      if d <> s then ignore (emit g Categories.C_other (Lir.Mov (d, s)))
    | R_double, R_double ->
      if d <> s then ignore (emit g Categories.C_other (Lir.FMov (d, s)))
    | R_double, R_tagged ->
      let f = float_loc g st s ~bc_pc:pc in
      ignore (emit g Categories.C_other (Lir.FMov (d, f)))
    | R_tagged, R_double -> def_float d s)
  | BinOp (op, d, a, b, slot) -> (
    let fbk = Feedback.binop_of fb.(slot) in
    match op with
    | Tce_minijs.Ast.LAnd | LOr -> bailout "unexpected logical binop in bytecode"
    | Lt | Le | Gt | Ge | Eq | Ne -> (
      (* fuse with a consuming conditional jump over a temp *)
      match (if pc + 1 < Array.length code then Some code.(pc + 1) else None) with
      | Some (Bytecode.JumpIfFalse (r, target))
        when r = d && d >= env.fn.Bytecode.n_named ->
        fused_compare g st op a b slot ~jump_if:false ~target ~bc_pc:pc;
        skip_next := true
      | Some (Bytecode.JumpIfTrue (r, target))
        when r = d && d >= env.fn.Bytecode.n_named ->
        fused_compare g st op a b slot ~jump_if:true ~target ~bc_pc:pc;
        skip_next := true
      | _ -> materialized_compare g st op d a b slot ~bc_pc:pc)
    | Add | Sub | Mul -> (
      match fbk with
      | Feedback.Bf_smi -> (
        let ta = tagged_smi_loc g st a ~bc_pc:pc in
        let tb = tagged_smi_loc g st b ~bc_pc:pc in
        let did =
          mk_deopt g ~reason:(Reason.make Reason.K_math (Reason.C_overflow Reason.Ov_arith) ~pc)
            ~bc_pc:pc ~result_into:None
        in
        match op with
        | Tce_minijs.Ast.Add | Sub ->
          let alu = if op = Tce_minijs.Ast.Add then Lir.Add else Lir.Sub in
          let idx = emit g Categories.C_math (Lir.AluOv (alu, d, ta, Lir.Reg tb, -1)) in
          add_fixup g idx (F_deopt did)
        | Mul ->
          let s = scratch g in
          ignore (emit g Categories.C_taguntag (Lir.Alu (Lir.Sar, s, ta, Lir.Imm 1)));
          let idx = emit g Categories.C_math (Lir.AluOv (Lir.Mul, d, s, Lir.Reg tb, -1)) in
          add_fixup g idx (F_deopt did)
        | _ -> assert false)
      | Bf_number ->
        let fa = float_loc g st a ~bc_pc:pc in
        let fb' = float_loc g st b ~bc_pc:pc in
        let fd = float_dest d in
        let fop =
          match op with
          | Tce_minijs.Ast.Add -> Lir.FAdd (fd, fa, fb')
          | Sub -> FSub (fd, fa, fb')
          | Mul -> FMul (fd, fa, fb')
          | _ -> assert false
        in
        ignore (emit g Categories.C_other fop);
        if g.reprs.(d) <> Lir.R_double then def_float d fd
      | Bf_string when op = Tce_minijs.Ast.Add ->
        let ta = tagged_loc g st a and tb = tagged_loc g st b in
        ignore
          (emit g Categories.C_other
             (Lir.CallRt (Lir.Rt_generic_binop op, [| ta; tb |], [||], Some d, None)))
      | Bf_none ->
        let did =
          mk_deopt g ~reason:(Reason.make Reason.K_cold (Reason.C_cold Reason.Cold_arith) ~pc)
            ~bc_pc:pc ~result_into:None
        in
        ignore (emit g Categories.C_other (Lir.Deopt did))
      | _ ->
        let ta = tagged_loc g st a and tb = tagged_loc g st b in
        ignore
          (emit g Categories.C_other
             (Lir.CallRt (Lir.Rt_generic_binop op, [| ta; tb |], [||], Some d, None))))
    | Div -> (
      match fbk with
      | Feedback.Bf_smi ->
        (* integer division specialized on exactness (math assumptions) *)
        let ta = tagged_smi_loc g st a ~bc_pc:pc in
        let tb = tagged_smi_loc g st b ~bc_pc:pc in
        let did =
          mk_deopt g ~reason:(Reason.make Reason.K_math Reason.C_div_inexact ~pc)
            ~bc_pc:pc ~result_into:None
        in
        let sa = scratch g and sb = scratch g in
        ignore (emit g Categories.C_taguntag (Lir.Alu (Lir.Sar, sa, ta, Lir.Imm 1)));
        ignore (emit g Categories.C_taguntag (Lir.Alu (Lir.Sar, sb, tb, Lir.Imm 1)));
        let i0 = emit g Categories.C_math (Lir.Branch (Lir.Eq, sb, Lir.Imm 0, -1)) in
        add_fixup g i0 (F_deopt did);
        let q = scratch g in
        ignore (emit g Categories.C_other (Lir.Alu (Lir.Div, q, sa, Lir.Reg sb)));
        let m = scratch g in
        ignore (emit g Categories.C_math (Lir.Alu (Lir.Mul, m, q, Lir.Reg sb)));
        let i1 = emit g Categories.C_math (Lir.Branch (Lir.Ne, m, Lir.Reg sa, -1)) in
        add_fixup g i1 (F_deopt did);
        let i2 = emit g Categories.C_math (Lir.AluOv (Lir.Shl, d, q, Lir.Imm 1, -1)) in
        add_fixup g i2 (F_deopt did)
      | Bf_number -> (
        let fa = float_loc g st a ~bc_pc:pc in
        let recip =
          match st.cv.(b) with
          | C_float c when c <> 0.0 && Float.is_integer (Float.log2 (Float.abs c)) ->
            Some (1.0 /. c)  (* division by a power of two is exact *)
          | _ -> None
        in
        match recip with
        | Some r ->
          let fd = float_dest d in
          let fc = scratch_f g in
          ignore (emit g Categories.C_other (Lir.FMovImm (fc, r)));
          ignore (emit g Categories.C_other (Lir.FMul (fd, fa, fc)));
          if g.reprs.(d) <> Lir.R_double then def_float d fd
        | None ->
          let fb' = float_loc g st b ~bc_pc:pc in
          let fd = float_dest d in
          ignore (emit g Categories.C_other (Lir.FDiv (fd, fa, fb')));
          if g.reprs.(d) <> Lir.R_double then def_float d fd)
      | Bf_none ->
        let did =
          mk_deopt g ~reason:(Reason.make Reason.K_cold (Reason.C_cold Reason.Cold_arith) ~pc)
            ~bc_pc:pc ~result_into:None
        in
        ignore (emit g Categories.C_other (Lir.Deopt did))
      | _ ->
        let ta = tagged_loc g st a and tb = tagged_loc g st b in
        ignore
          (emit g Categories.C_other
             (Lir.CallRt (Lir.Rt_generic_binop op, [| ta; tb |], [||], Some d, None))))
    | Mod -> (
      match fbk with
      | Feedback.Bf_smi when
          (match st.cv.(b) with
          | C_int m -> m > 0 && m land (m - 1) = 0
          | _ -> false) ->
        (* power-of-two modulus: AND with sign fixup (Crankshaft strength
           reduction), replacing the 20-cycle integer remainder *)
        let m = match st.cv.(b) with C_int m -> m | _ -> assert false in
        let ta = tagged_smi_loc g st a ~bc_pc:pc in
        let sa = scratch g in
        ignore (emit g Categories.C_taguntag (Lir.Alu (Lir.Sar, sa, ta, Lir.Imm 1)));
        let r = scratch g in
        ignore (emit g Categories.C_other (Lir.Alu (Lir.And, r, sa, Lir.Imm (m - 1))));
        let i0 = emit g Categories.C_other (Lir.Branch (Lir.Ge, sa, Lir.Imm 0, -1)) in
        let i1 = emit g Categories.C_other (Lir.Branch (Lir.Eq, r, Lir.Imm 0, -1)) in
        ignore (emit g Categories.C_other (Lir.Alu (Lir.Sub, r, r, Lir.Imm m)));
        land_here g i0;
        land_here g i1;
        ignore (emit g Categories.C_taguntag (Lir.Alu (Lir.Shl, d, r, Lir.Imm 1)))
      | Feedback.Bf_smi ->
        let ta = tagged_smi_loc g st a ~bc_pc:pc in
        let tb = tagged_smi_loc g st b ~bc_pc:pc in
        let did =
          mk_deopt g ~reason:(Reason.make Reason.K_math Reason.C_mod_zero ~pc)
            ~bc_pc:pc ~result_into:None
        in
        let sa = scratch g and sb = scratch g in
        ignore (emit g Categories.C_taguntag (Lir.Alu (Lir.Sar, sa, ta, Lir.Imm 1)));
        ignore (emit g Categories.C_taguntag (Lir.Alu (Lir.Sar, sb, tb, Lir.Imm 1)));
        let i0 = emit g Categories.C_math (Lir.Branch (Lir.Eq, sb, Lir.Imm 0, -1)) in
        add_fixup g i0 (F_deopt did);
        let r = scratch g in
        ignore (emit g Categories.C_other (Lir.Alu (Lir.Rem, r, sa, Lir.Reg sb)));
        ignore (emit g Categories.C_taguntag (Lir.Alu (Lir.Shl, d, r, Lir.Imm 1)))
      | Bf_number ->
        let fa = float_loc g st a ~bc_pc:pc in
        let fb' = float_loc g st b ~bc_pc:pc in
        let fd = float_dest d in
        ignore
          (emit g Categories.C_other
             (Lir.CallRt (Lir.Rt_fmod, [||], [| fa; fb' |], None, Some fd)));
        if g.reprs.(d) <> Lir.R_double then def_float d fd
      | Bf_none ->
        let did =
          mk_deopt g ~reason:(Reason.make Reason.K_cold (Reason.C_cold Reason.Cold_arith) ~pc)
            ~bc_pc:pc ~result_into:None
        in
        ignore (emit g Categories.C_other (Lir.Deopt did))
      | _ ->
        let ta = tagged_loc g st a and tb = tagged_loc g st b in
        ignore
          (emit g Categories.C_other
             (Lir.CallRt (Lir.Rt_generic_binop op, [| ta; tb |], [||], Some d, None))))
    | BitAnd | BitOr | BitXor | Shl | Shr | Ushr ->
      let ra = raw_int_loc g st a ~bc_pc:pc in
      let rb = raw_int_loc g st b ~bc_pc:pc in
      let alu =
        match op with
        | Tce_minijs.Ast.BitAnd -> Lir.And
        | BitOr -> Lir.Or
        | BitXor -> Lir.Xor
        | Shl -> Lir.Shl
        | Shr -> Lir.Sar  (* JS >> is arithmetic *)
        | Ushr -> Lir.Shr
        | _ -> assert false
      in
      let s = scratch g in
      if op = Tce_minijs.Ast.Ushr then begin
        (* uint32 result: mask to 32 bits first (the host word is wider, so
           a logical shift of a negative value would escape the overflow
           check), then overflow-checked retag *)
        let m = scratch g in
        ignore
          (emit g Categories.C_other (Lir.Alu (Lir.And, m, ra, Lir.Imm 0xffffffff)));
        ignore (emit g Categories.C_other (Lir.Alu (Lir.Shr, s, m, Lir.Reg rb)));
        let did =
          mk_deopt g ~reason:(Reason.make Reason.K_math (Reason.C_overflow Reason.Ov_ushr) ~pc)
            ~bc_pc:pc ~result_into:None
        in
        let idx = emit g Categories.C_math (Lir.AluOv (Lir.Shl, d, s, Lir.Imm 1, -1)) in
        add_fixup g idx (F_deopt did)
      end
      else begin
        ignore (emit g Categories.C_other (Lir.Alu32 (alu, s, ra, Lir.Reg rb)));
        ignore (emit g Categories.C_taguntag (Lir.Alu (Lir.Shl, d, s, Lir.Imm 1)))
      end)
  | UnOp (op, d, a) -> (
    match op with
    | Tce_minijs.Ast.Neg -> (
      match st.tys.(a) with
      | Smi ->
        let ta = tagged_smi_loc g st a ~bc_pc:pc in
        let z = scratch g in
        ignore (emit g Categories.C_other (Lir.MovImm (z, 0)));
        let did =
          mk_deopt g ~reason:(Reason.make Reason.K_math (Reason.C_overflow Reason.Ov_negate) ~pc)
            ~bc_pc:pc ~result_into:None
        in
        let idx = emit g Categories.C_math (Lir.AluOv (Lir.Sub, d, z, Lir.Reg ta, -1)) in
        add_fixup g idx (F_deopt did)
      | Num | Cls _ ->
        let fa = float_loc g st a ~bc_pc:pc in
        let fd = float_dest d in
        ignore (emit g Categories.C_other (Lir.FNeg (fd, fa)));
        if g.reprs.(d) <> Lir.R_double then def_float d fd
      | _ ->
        let ta = tagged_loc g st a in
        ignore
          (emit g Categories.C_other
             (Lir.CallRt (Lir.Rt_generic_unop op, [| ta |], [||], Some d, None))))
    | Not -> (
      match st.tys.(a) with
      | Bool ->
        ignore (emit g Categories.C_other (Lir.MovImm (d, true_imm g)));
        let idx =
          emit g Categories.C_other
            (Lir.Branch (Lir.Eq, a, Lir.Imm (false_imm g), -1))
        in
        ignore (emit g Categories.C_other (Lir.MovImm (d, false_imm g)));
        land_here g idx
      | _ ->
        let ta = tagged_loc g st a in
        ignore
          (emit g Categories.C_other
             (Lir.CallRt (Lir.Rt_generic_unop op, [| ta |], [||], Some d, None))))
    | BitNot ->
      let ra = raw_int_loc g st a ~bc_pc:pc in
      let s = scratch g in
      ignore (emit g Categories.C_other (Lir.Alu32 (Lir.Xor, s, ra, Lir.Imm (-1))));
      ignore (emit g Categories.C_taguntag (Lir.Alu (Lir.Shl, d, s, Lir.Imm 1))))
  | GetProp (d, o, name, slot) -> (
    ignore name;
    match Feedback.prop_of fb.(slot) with
    | Feedback.Ic_mono { classid; slot = s; _ }
      when env.checked_load && (not env.mechanism)
           && g.reprs.(d) = Lir.R_tagged
           && st.tys.(o) <> Cls classid ->
      (* Checked Load: one fused instruction, check executed in hardware *)
      let line, pos = Layout.line_pos_of_slot s in
      (match invariant_slot_ty env ~classid ~slot:s with
      | Some _ -> ()
      | None -> ignore (emit g Categories.C_other (Lir.Profile (o, line, pos))));
      attr_site g ~pc ~kind:Categories.Ck_checked_load ~classid
        ~note:"checked-load baseline: executed in hardware, never removed"
        (Ledger.Kept Ledger.Kc_mechanism_off);
      let did =
        mk_deopt g ~reason:(Reason.make ~classid Reason.K_checked_load Reason.C_not_class ~pc)
          ~bc_pc:pc ~result_into:None
      in
      let expected =
        Hidden_class.class_word (class_of_id env classid) ~line
      in
      ignore
        (emit g
           ~flags:(flags_of o lor Categories.flag_of_check_kind Categories.Ck_checked_load)
           Categories.C_check
           (Lir.CheckedLoad (d, o, (s * 8) - 1, expected, did)))
    | Feedback.Ic_mono { classid; slot = s; _ } ->
      check_map g st ~flags:(flags_of o) o classid ~bc_pc:pc;
      let line, pos = Layout.line_pos_of_slot s in
      let ty, dep = prop_load_ty env ~classid ~slot:s in
      (match invariant_slot_ty env ~classid ~slot:s with
      | Some _ -> ()  (* built-in slots are not "object load accesses" *)
      | None ->
        ignore (emit g Categories.C_other (Lir.Profile (o, line, pos)));
        (* value-type speculation on the loaded slot: when the Class List
           types it, the downstream checks on the value never exist *)
        if Ledger.on env.attr then begin
          let note = Printf.sprintf "slot(%d,%d)" line pos in
          match dep with
          | Some _ ->
            attr_site g ~pc ~kind:Categories.Ck_map ~classid ~note Ledger.Removed
          | None ->
            attr_site g ~pc ~kind:Categories.Ck_map ~classid ~note
              (Ledger.Kept (slot_keep_cause g ~classid ~line ~pos))
        end);
      (match dep with Some (c, l, p) -> add_dep g c l p | None -> ());
      if g.reprs.(d) = Lir.R_double then begin
        (* speculated heap-number property: load + direct payload load *)
        let sv = scratch g in
        ignore (emit g Categories.C_other (Lir.Load (sv, o, (s * 8) - 1)));
        match ty with
        | Some (Cls c) when c = heapnum_id env ->
          ignore (emit g Categories.C_taguntag (Lir.FLoad (d, sv, 7)))
        | _ ->
          (* untag via generic path *)
          let st' = copy_state st in
          def_from_tagged g st' d sv ~bc_pc:pc
      end
      else ignore (emit g Categories.C_other (Lir.Load (d, o, (s * 8) - 1)))
    | Ic_poly shapes
      when List.for_all
             (fun (sh : Feedback.shape) ->
               sh.slot = (List.hd shapes).slot && sh.transition_to = None)
             shapes ->
      let s = (List.hd shapes).Feedback.slot in
      attr_site g ~pc ~kind:Categories.Ck_map
        ~classid:(List.hd shapes).Feedback.classid
        (Ledger.Kept (Ledger.Kc_poly { shapes = List.length shapes }));
      let did =
        mk_deopt g
          ~reason:(Reason.make ~classid:(List.hd shapes).Feedback.classid
                     Reason.K_check_map (Reason.C_poly_ic Reason.A_load) ~pc)
          ~bc_pc:pc ~result_into:None
      in
      let mapf = flags_of o lor Categories.flag_of_check_kind Categories.Ck_map in
      (match st.tys.(o) with
      | Smi -> ignore (emit g ~flags:mapf Categories.C_check (Lir.Deopt did))
      | Any | Num ->
        check_non_smi g
          ~flags:(flags_of o lor Categories.flag_of_check_kind Categories.Ck_non_smi)
          ~cat:Categories.C_check o did
      | _ -> ());
      let mw = scratch g in
      ignore (emit g ~flags:mapf Categories.C_check (Lir.Load (mw, o, -1)));
      let n = List.length shapes in
      let ok_branches =
        List.filteri (fun i _ -> i < n - 1) shapes
        |> List.map (fun (sh : Feedback.shape) ->
               emit g ~flags:mapf Categories.C_check
                 (Lir.Branch (Lir.Eq, mw, Lir.Imm (class_word0 g sh.classid), -1)))
      in
      let last = List.nth shapes (n - 1) in
      let idx =
        emit g ~flags:mapf Categories.C_check
          (Lir.Branch (Lir.Ne, mw, Lir.Imm (class_word0 g last.classid), -1))
      in
      add_fixup g idx (F_deopt did);
      List.iter (fun b -> land_here g b) ok_branches;
      let line, pos = Layout.line_pos_of_slot s in
      ignore (emit g Categories.C_other (Lir.Profile (o, line, pos)));
      (* per-class speculation: all shapes must agree for the type to hold *)
      List.iter
        (fun (sh : Feedback.shape) ->
          match prop_load_ty env ~classid:sh.classid ~slot:s with
          | _, Some (c, l, p) -> add_dep g c l p
          | _ -> ())
        shapes;
      ignore (emit g Categories.C_other (Lir.Load (d, o, (s * 8) - 1)));
      if g.reprs.(d) = Lir.R_double then begin
        let st' = copy_state st in
        def_from_tagged g st' d d ~bc_pc:pc
      end
    | Ic_poly _ | Ic_mega ->
      attr_site g ~pc ~kind:Categories.Ck_map ~note:"generic property load"
        (Ledger.Kept Ledger.Kc_mega);
      let to_ = tagged_loc g st o in
      ignore
        (emit g Categories.C_other
           (Lir.CallRt (Lir.Rt_generic_get_prop name, [| to_ |], [||], Some d, None)));
      if g.reprs.(d) = Lir.R_double then begin
        let st' = copy_state st in
        def_from_tagged g st' d d ~bc_pc:pc
      end
    | Ic_uninit ->
      attr_site g ~pc ~kind:Categories.Ck_map ~note:"property load never executed"
        (Ledger.Kept Ledger.Kc_cold);
      let did =
        mk_deopt g ~reason:(Reason.make Reason.K_cold (Reason.C_cold Reason.Cold_prop_load) ~pc)
          ~bc_pc:pc ~result_into:None
      in
      ignore (emit g Categories.C_other (Lir.Deopt did)))
  | GetElem (d, o, i, slot) -> (
    match Feedback.elem_of fb.(slot) with
    | Feedback.Eic_mono classid when elem_load_ty env ~classid <> `No_elements ->
      check_map g st ~flags:(flags_of o) o classid ~bc_pc:pc;
      let elems, len = load_elements g o in
      let ti = tagged_smi_loc g st i ~bc_pc:pc in
      let did =
        mk_deopt g ~reason:(Reason.make ~classid Reason.K_bounds Reason.C_oob ~pc)
          ~bc_pc:pc ~result_into:None
      in
      let i0 = emit g Categories.C_other (Lir.Branch (Lir.Lt, ti, Lir.Imm 0, -1)) in
      add_fixup g i0 (F_deopt did);
      let i1 = emit g Categories.C_other (Lir.Branch (Lir.Ge, ti, Lir.Reg len, -1)) in
      add_fixup g i1 (F_deopt did);
      let ri = scratch g in
      ignore (emit g Categories.C_taguntag (Lir.Alu (Lir.Sar, ri, ti, Lir.Imm 1)));
      ignore
        (emit g Categories.C_other
           (Lir.Profile (o, 0, Layout.elements_ptr_slot)));
      (match elem_load_ty env ~classid with
      | `Smi -> ignore (emit g Categories.C_other (Lir.LoadIdx (d, elems, ri, elements_off)))
      | `Double ->
        let fd = float_dest d in
        ignore (emit g Categories.C_other (Lir.FLoadIdx (fd, elems, ri, elements_off)));
        if g.reprs.(d) <> Lir.R_double then def_float d fd
      | `Tagged (ty, dep) -> (
        (match dep with Some (c, l, p) -> add_dep g c l p | None -> ());
        (if Ledger.on env.attr then
           let note = "elements Prop2 slot" in
           match dep with
           | Some _ ->
             attr_site g ~pc ~kind:Categories.Ck_map ~classid ~note Ledger.Removed
           | None ->
             attr_site g ~pc ~kind:Categories.Ck_map ~classid ~note
               (Ledger.Kept
                  (slot_keep_cause g ~classid ~line:0 ~pos:Layout.elements_ptr_slot)));
        if g.reprs.(d) = Lir.R_double then begin
          let sv = scratch g in
          ignore (emit g Categories.C_other (Lir.LoadIdx (sv, elems, ri, elements_off)));
          match ty with
          | Some (Cls c) when c = heapnum_id env ->
            ignore (emit g Categories.C_taguntag (Lir.FLoad (d, sv, 7)))
          | _ ->
            let st' = copy_state st in
            def_from_tagged g st' d sv ~bc_pc:pc
        end
        else
          ignore (emit g Categories.C_other (Lir.LoadIdx (d, elems, ri, elements_off))))
      | `No_elements -> assert false)
    | Eic_uninit ->
      attr_site g ~pc ~kind:Categories.Ck_map ~note:"element load never executed"
        (Ledger.Kept Ledger.Kc_cold);
      let did =
        mk_deopt g ~reason:(Reason.make Reason.K_cold (Reason.C_cold Reason.Cold_elem_load) ~pc)
          ~bc_pc:pc ~result_into:None
      in
      ignore (emit g Categories.C_other (Lir.Deopt did))
    | _ ->
      attr_site g ~pc ~kind:Categories.Ck_map ~note:"generic element load"
        (Ledger.Kept Ledger.Kc_mega);
      let to_ = tagged_loc g st o in
      let ti = tagged_loc g st i in
      ignore
        (emit g Categories.C_other
           (Lir.CallRt (Lir.Rt_generic_get_elem, [| to_; ti |], [||], Some d, None)));
      if g.reprs.(d) = Lir.R_double then begin
        let st' = copy_state st in
        def_from_tagged g st' d d ~bc_pc:pc
      end)
  | SetProp (o, name, v, slot) -> (
    match Feedback.prop_of fb.(slot) with
    | Feedback.Ic_mono { classid; slot = s; transition_to } ->
      check_map g st ~flags:(flags_of o) o classid ~bc_pc:pc;
      let target_class =
        match transition_to with Some c' -> c' | None -> classid
      in
      (match transition_to with
      | Some c' ->
        (* inline transitioning store: install the new class words *)
        let cls' = class_of_id env c' in
        for line = 0 to Hidden_class.lines cls' - 1 do
          ignore
            (emit g Categories.C_other
               (Lir.Store
                  (o, (line * Layout.line_bytes) - 1,
                   Lir.Imm (Hidden_class.class_word cls' ~line))))
        done
      | None -> ());
      let tv = tagged_loc g st v in
      let line, pos = Layout.line_pos_of_slot s in
      let any_valid =
        CL.is_valid env.cl ~classid:target_class ~line ~pos
        && not (store_provably_safe g ~classid:target_class ~line ~pos st.tys.(v))
      in
      emit_prop_store g ~any_valid ~classid:target_class ~line ~pos ~base:o
        ~off:((s * 8) - 1) ~value:tv ~bc_pc:pc
    | Ic_poly shapes
      when List.for_all
             (fun (sh : Feedback.shape) ->
               sh.slot = (List.hd shapes).slot && sh.transition_to = None)
             shapes ->
      (* polymorphic same-slot store: chained map checks, then one store;
         the special store profiles per-object via the line header *)
      let s = (List.hd shapes).Feedback.slot in
      attr_site g ~pc ~kind:Categories.Ck_map
        ~classid:(List.hd shapes).Feedback.classid
        (Ledger.Kept (Ledger.Kc_poly { shapes = List.length shapes }));
      let did =
        mk_deopt g
          ~reason:(Reason.make ~classid:(List.hd shapes).Feedback.classid
                     Reason.K_check_map (Reason.C_poly_ic Reason.A_store) ~pc)
          ~bc_pc:pc ~result_into:None
      in
      let mapf = flags_of o lor Categories.flag_of_check_kind Categories.Ck_map in
      (match st.tys.(o) with
      | Smi -> ignore (emit g ~flags:mapf Categories.C_check (Lir.Deopt did))
      | Any | Num ->
        check_non_smi g
          ~flags:(flags_of o lor Categories.flag_of_check_kind Categories.Ck_non_smi)
          ~cat:Categories.C_check o did
      | _ -> ());
      let mw = scratch g in
      ignore (emit g ~flags:mapf Categories.C_check (Lir.Load (mw, o, -1)));
      let n = List.length shapes in
      let oks =
        List.filteri (fun i _ -> i < n - 1) shapes
        |> List.map (fun (sh : Feedback.shape) ->
               emit g ~flags:mapf Categories.C_check
                 (Lir.Branch (Lir.Eq, mw, Lir.Imm (class_word0 g sh.classid), -1)))
      in
      let last = List.nth shapes (n - 1) in
      let idx =
        emit g ~flags:mapf Categories.C_check
          (Lir.Branch (Lir.Ne, mw, Lir.Imm (class_word0 g last.classid), -1))
      in
      add_fixup g idx (F_deopt did);
      List.iter (fun b -> land_here g b) oks;
      let tv = tagged_loc g st v in
      let line, pos = Layout.line_pos_of_slot s in
      let any_valid =
        List.exists
          (fun (sh : Feedback.shape) ->
            CL.is_valid env.cl ~classid:sh.classid ~line ~pos
            && not (store_provably_safe g ~classid:sh.classid ~line ~pos st.tys.(v)))
          shapes
      in
      emit_prop_store g ~any_valid ~classid:(-1) ~line ~pos ~base:o
        ~off:((s * 8) - 1) ~value:tv ~bc_pc:pc
    | Ic_poly _ | Ic_mega ->
      attr_site g ~pc ~kind:Categories.Ck_map ~note:"generic property store"
        (Ledger.Kept Ledger.Kc_mega);
      let to_ = tagged_loc g st o in
      let tv = tagged_loc g st v in
      let did =
        mk_deopt g
          ~reason:(Reason.make Reason.K_cc (Reason.C_cc Reason.Cc_generic_prop_store) ~pc)
          ~bc_pc:(pc + 1) ~result_into:None
      in
      ignore
        (emit g Categories.C_other
           (Lir.CallRtChecked (Lir.Rt_generic_set_prop name, [| to_; tv |], None, did)))
    | Ic_uninit ->
      attr_site g ~pc ~kind:Categories.Ck_map ~note:"property store never executed"
        (Ledger.Kept Ledger.Kc_cold);
      let did =
        mk_deopt g ~reason:(Reason.make Reason.K_cold (Reason.C_cold Reason.Cold_prop_store) ~pc)
          ~bc_pc:pc ~result_into:None
      in
      ignore (emit g Categories.C_other (Lir.Deopt did)))
  | SetElem (o, i, v, slot) -> (
    match Feedback.elem_of fb.(slot) with
    | Feedback.Eic_mono classid when elem_load_ty env ~classid <> `No_elements ->
      check_map g st ~flags:(flags_of o) o classid ~bc_pc:pc;
      let elems, len = load_elements g o in
      let ti = tagged_smi_loc g st i ~bc_pc:pc in
      (* slow path: negative, out-of-capacity, appends, kind transitions *)
      let islow0 = emit g Categories.C_other (Lir.Branch (Lir.Lt, ti, Lir.Imm 0, -1)) in
      let islow1 = emit g Categories.C_other (Lir.Branch (Lir.Ge, ti, Lir.Reg len, -1)) in
      let ri = scratch g in
      ignore (emit g Categories.C_taguntag (Lir.Alu (Lir.Sar, ri, ti, Lir.Imm 1)));
      (match elem_load_ty env ~classid with
      | `Smi ->
        let tv = tagged_smi_loc g st v ~bc_pc:pc in
        (* post-guard, the value is provably SMI: skip the special store
           whenever the profile is SMI too *)
        if env.mechanism
           && CL.is_valid env.cl ~classid ~line:0 ~pos:Layout.elements_ptr_slot
           && not
                (store_provably_safe g ~classid ~line:0
                   ~pos:Layout.elements_ptr_slot Smi)
        then begin
          let k =
            match Hashtbl.find_opt g.hoist_sites pc with
            | Some k -> k  (* regArrayObjectClassId_k loaded at loop entry *)
            | None ->
              ignore (emit g Categories.C_ccop (Lir.MovClassIDArray (3, o)));
              3
          in
          ignore (emit g Categories.C_ccop (Lir.MovClassID tv));
          let did =
            mk_deopt g
              ~reason:(Reason.make ~classid Reason.K_cc (Reason.C_cc Reason.Cc_elem_store) ~pc)
              ~bc_pc:(pc + 1) ~result_into:None
          in
          ignore
            (emit g Categories.C_other
               (Lir.StoreClassCacheArray (k, elems, ri, elements_off, Lir.Reg tv, did)))
        end
        else begin
          ignore
            (emit g Categories.C_other (Lir.StoreIdx (elems, ri, elements_off, Lir.Reg tv)));
          if not env.mechanism then
            ignore
              (emit g Categories.C_other
                 (Lir.ProfileStore (o, 0, Layout.elements_ptr_slot, Lir.Ps_reg tv)))
        end
      | `Double ->
        let fv = float_loc g st v ~bc_pc:pc in
        ignore (emit g Categories.C_other (Lir.FStoreIdx (elems, ri, elements_off, fv)));
        if not env.mechanism then
          ignore
            (emit g Categories.C_other
               (Lir.ProfileStore
                  (o, 0, Layout.elements_ptr_slot, Lir.Ps_classid (heapnum_id env))))
      | `Tagged _ ->
        let tv = tagged_loc g st v in
        if env.mechanism
           && CL.is_valid env.cl ~classid ~line:0 ~pos:Layout.elements_ptr_slot
           && not
                (store_provably_safe g ~classid ~line:0
                   ~pos:Layout.elements_ptr_slot st.tys.(v))
        then begin
          let k =
            match Hashtbl.find_opt g.hoist_sites pc with
            | Some k -> k
            | None ->
              ignore (emit g Categories.C_ccop (Lir.MovClassIDArray (3, o)));
              3
          in
          ignore (emit g Categories.C_ccop (Lir.MovClassID tv));
          let did =
            mk_deopt g
              ~reason:(Reason.make ~classid Reason.K_cc (Reason.C_cc Reason.Cc_elem_store) ~pc)
              ~bc_pc:(pc + 1) ~result_into:None
          in
          ignore
            (emit g Categories.C_other
               (Lir.StoreClassCacheArray (k, elems, ri, elements_off, Lir.Reg tv, did)))
        end
        else begin
          ignore
            (emit g Categories.C_other (Lir.StoreIdx (elems, ri, elements_off, Lir.Reg tv)));
          if not env.mechanism then
            ignore
              (emit g Categories.C_other
                 (Lir.ProfileStore (o, 0, Layout.elements_ptr_slot, Lir.Ps_reg tv)))
        end
      | `No_elements -> assert false);
      let iend = emit g Categories.C_other (Lir.Jmp (-1)) in
      land_here g islow0;
      land_here g islow1;
      let to_ = tagged_loc g st o in
      let tv = tagged_loc g st v in
      let did =
        mk_deopt g
          ~reason:(Reason.make ~classid Reason.K_cc (Reason.C_cc Reason.Cc_elem_store_slow) ~pc)
          ~bc_pc:(pc + 1) ~result_into:None
      in
      ignore
        (emit g Categories.C_other
           (Lir.CallRtChecked (Lir.Rt_elem_store_slow, [| to_; ti; tv |], None, did)));
      land_here g iend
    | Eic_uninit ->
      attr_site g ~pc ~kind:Categories.Ck_map ~note:"element store never executed"
        (Ledger.Kept Ledger.Kc_cold);
      let did =
        mk_deopt g ~reason:(Reason.make Reason.K_cold (Reason.C_cold Reason.Cold_elem_store) ~pc)
          ~bc_pc:pc ~result_into:None
      in
      ignore (emit g Categories.C_other (Lir.Deopt did))
    | _ ->
      attr_site g ~pc ~kind:Categories.Ck_map ~note:"generic element store"
        (Ledger.Kept Ledger.Kc_mega);
      let to_ = tagged_loc g st o in
      let ti = tagged_loc g st i in
      let tv = tagged_loc g st v in
      let did =
        mk_deopt g
          ~reason:(Reason.make Reason.K_cc (Reason.C_cc Reason.Cc_generic_elem_store) ~pc)
          ~bc_pc:(pc + 1) ~result_into:None
      in
      ignore
        (emit g Categories.C_other
           (Lir.CallRtChecked (Lir.Rt_generic_set_elem, [| to_; ti; tv |], None, did))))
  | GetGlobal (d, i) ->
    (* global cell load (V8 property cell): mov base; load *)
    let s = scratch g in
    ignore (emit g Categories.C_other (Lir.MovImm (s, env.globals_base + (8 * i))));
    if g.reprs.(d) = Lir.R_double then begin
      let sv = scratch g in
      ignore (emit g Categories.C_other (Lir.Load (sv, s, 0)));
      let st' = copy_state st in
      def_from_tagged g st' d sv ~bc_pc:pc
    end
    else ignore (emit g Categories.C_other (Lir.Load (d, s, 0)))
  | SetGlobal (i, r) ->
    let tv = tagged_loc g st r in
    let s = scratch g in
    ignore (emit g Categories.C_other (Lir.MovImm (s, env.globals_base + (8 * i))));
    ignore (emit g Categories.C_other (Lir.Store (s, 0, Lir.Reg tv)))
  | NewObject d ->
    let root = Hidden_class.Registry.object_root_class env.heap.Heap.reg in
    ignore
      (emit g Categories.C_other
         (Lir.CallRt (Lir.Rt_alloc_object (root.Hidden_class.id, 8), [||], [||], Some d, None)))
  | AllocCtor (d, fid) -> (
    let callee = env.prog.Bytecode.funcs.(fid) in
    match callee.Bytecode.base_class with
    | Some base ->
      ignore
        (emit g Categories.C_other
           (Lir.CallRt
              (Lir.Rt_alloc_object (base.Hidden_class.id, callee.Bytecode.reserve_props),
               [||], [||], Some d, None)))
    | None ->
      let did =
        mk_deopt g ~reason:(Reason.make Reason.K_cold (Reason.C_cold Reason.Cold_ctor) ~pc)
          ~bc_pc:pc ~result_into:None
      in
      ignore (emit g Categories.C_other (Lir.Deopt did)))
  | NewArray (d, cap) ->
    ignore
      (emit g Categories.C_other
         (Lir.CallRt
            (Lir.Rt_alloc_array (Hidden_class.E_smi, max cap 4), [||], [||], Some d, None)))
  | Call (d, fid, args) ->
    let z = scratch g in
    ignore (emit g Categories.C_other (Lir.MovImm (z, null_imm g)));
    let argr = Array.append [| z |] (Array.map (fun r -> tagged_loc g st r) args) in
    let did =
      mk_deopt g ~reason:(Reason.make Reason.K_osr (Reason.C_osr Reason.Osr_call) ~pc)
        ~bc_pc:(pc + 1) ~result_into:(Some d)
    in
    let dd = if g.reprs.(d) = Lir.R_double then scratch g else d in
    ignore (emit g Categories.C_other (Lir.CallFn (fid, argr, dd, did)));
    if g.reprs.(d) = Lir.R_double then begin
      let st' = copy_state st in
      def_from_tagged g st' d dd ~bc_pc:pc
    end
  | CallB (d, b, args) -> (
    match b with
    | Builtins.B_sqrt ->
      let fa = float_loc g st args.(0) ~bc_pc:pc in
      let fd = float_dest d in
      ignore (emit g Categories.C_other (Lir.FSqrt (fd, fa)));
      if g.reprs.(d) <> Lir.R_double then def_float d fd
    | Builtins.B_abs when st.tys.(args.(0)) = Smi && g.reprs.(d) = Lir.R_tagged ->
      let ta = tagged_smi_loc g st args.(0) ~bc_pc:pc in
      ignore (emit g Categories.C_other (Lir.Mov (d, ta)));
      let idx = emit g Categories.C_other (Lir.Branch (Lir.Ge, ta, Lir.Imm 0, -1)) in
      let z = scratch g in
      ignore (emit g Categories.C_other (Lir.MovImm (z, 0)));
      let did =
        mk_deopt g ~reason:(Reason.make Reason.K_math (Reason.C_overflow Reason.Ov_abs) ~pc)
          ~bc_pc:pc ~result_into:None
      in
      let i2 = emit g Categories.C_math (Lir.AluOv (Lir.Sub, d, z, Lir.Reg ta, -1)) in
      add_fixup g i2 (F_deopt did);
      land_here g idx
    | Builtins.B_abs when g.reprs.(d) = Lir.R_double ->
      let fa = float_loc g st args.(0) ~bc_pc:pc in
      ignore (emit g Categories.C_other (Lir.FAbs (d, fa)))
    | Builtins.B_push ->
      (* push stores into the array: the slow path may transition its
         elements kind and retire profiles this code depends on *)
      let argr = Array.map (fun r -> tagged_loc g st r) args in
      let did =
        mk_deopt g ~reason:(Reason.make Reason.K_cc (Reason.C_cc Reason.Cc_push) ~pc)
          ~bc_pc:(pc + 1) ~result_into:(Some d)
      in
      ignore
        (emit g Categories.C_other
           (Lir.CallRtChecked (Lir.Rt_builtin b, argr, Some d, did)))
    | _ ->
      let argr = Array.map (fun r -> tagged_loc g st r) args in
      let dd = if g.reprs.(d) = Lir.R_double then scratch g else d in
      ignore
        (emit g Categories.C_other
           (Lir.CallRt (Lir.Rt_builtin b, argr, [||], Some dd, None)));
      if g.reprs.(d) = Lir.R_double then begin
        let st' = copy_state st in
        def_from_tagged g st' d dd ~bc_pc:pc
      end)
  | New (d, fid, args) -> (
    let callee = env.prog.Bytecode.funcs.(fid) in
    match callee.Bytecode.base_class with
    | None ->
      let did =
        mk_deopt g ~reason:(Reason.make Reason.K_cold (Reason.C_cold Reason.Cold_ctor) ~pc)
          ~bc_pc:pc ~result_into:None
      in
      ignore (emit g Categories.C_other (Lir.Deopt did))
    | Some base ->
      let robj = scratch g in
      ignore
        (emit g Categories.C_other
           (Lir.CallRt
              (Lir.Rt_alloc_object (base.Hidden_class.id, callee.Bytecode.reserve_props),
               [||], [||], Some robj, None)));
      let argr =
        Array.append [| robj |] (Array.map (fun r -> tagged_loc g st r) args)
      in
      let did =
        mk_deopt g ~reason:(Reason.make Reason.K_osr (Reason.C_osr Reason.Osr_ctor) ~pc)
          ~bc_pc:(pc + 1) ~result_into:(Some d)
      in
      ignore (emit g Categories.C_other (Lir.CallFn (fid, argr, d, did))))
  | Jump target ->
    let idx = emit g Categories.C_other (Lir.Jmp (-1)) in
    add_fixup g idx (F_bc target)
  | JumpIfFalse (r, target) ->
    truth_branch g st r ~jump_if:false ~bc_pc:pc ~target
  | JumpIfTrue (r, target) -> truth_branch g st r ~jump_if:true ~bc_pc:pc ~target
  | Return r ->
    let tr = tagged_loc g st r in
    ignore (emit g Categories.C_other (Lir.Ret tr))

(* --- entry point --- *)

(** Optimize [env.fn]; raises {!Bailout} when the function cannot be
    usefully compiled. *)
let compile (env : env) : Lir.func =
  let fn = env.fn in
  let states = fixpoint env in
  let reprs = assign_reprs env states in
  let n = Array.length fn.Bytecode.code in
  let g =
    {
      genv = env;
      states;
      reprs;
      n_bc = fn.Bytecode.n_regs;
      out = Array.make 256 (Lir.inst Categories.C_other (Lir.Jmp 0));
      n = 0;
      bc2lir = Array.make (n + 1) 0;
      fixups = [];
      deopt_infos = [];
      n_deopts = 0;
      scratch = fn.Bytecode.n_regs;
      max_reg = fn.Bytecode.n_regs;
      scratch_f = fn.Bytecode.n_regs;
      max_freg = fn.Bytecode.n_regs;
      deps = [];
      hoist_headers = Hashtbl.create 4;
      hoist_sites = Hashtbl.create 8;
    }
  in
  compute_hoists env states g.hoist_headers g.hoist_sites;
  let skip_next = ref false in
  for pc = 0 to n - 1 do
    (* loop-entry hoists land *before* the header label so the backedge
       does not re-execute them *)
    (match Hashtbl.find_opt g.hoist_headers pc with
    | Some hoists ->
      List.iter
        (fun (k, recv) ->
          ignore (emit g Categories.C_ccop (Lir.MovClassIDArray (k, recv))))
        hoists
    | None -> ());
    g.bc2lir.(pc) <- g.n;
    if !skip_next then skip_next := false
    else begin
      reset_scratch g;
      gen_op g pc fn.Bytecode.code.(pc) states.(pc) ~skip_next
    end
  done;
  g.bc2lir.(n) <- g.n;
  (* deopt landing pads *)
  let deopt_base = g.n in
  for id = 0 to g.n_deopts - 1 do
    ignore (emit g Categories.C_other (Lir.Deopt id))
  done;
  (* resolve fixups *)
  List.iter
    (fun (idx, f) ->
      let tgt =
        match f with
        | F_bc pc -> g.bc2lir.(pc)
        | F_deopt id -> deopt_base + id
      in
      g.out.(idx) <- { (g.out.(idx)) with op = retarget g.out.(idx).op tgt })
    g.fixups;
  let code = Array.sub g.out 0 g.n in
  (* the engine owns the code-address space (per-engine determinism) *)
  let code_addr = env.code_addr in
  {
    Lir.fn_id = fn.Bytecode.id;
    opt_id = env.opt_id;
    name = fn.Bytecode.name;
    code;
    deopts = Array.of_list (List.rev g.deopt_infos);
    reprs = Array.sub reprs 0 fn.Bytecode.n_regs;
    n_regs = g.max_reg;
    n_fregs = g.max_freg;
    code_addr;
    spec_deps = g.deps;
    invalidated = false;
    deopt_hits = 0;
  }
