(** Register bytecode executed by the baseline tier (our "Full Codegen").
    Register 0 is [this]; registers 1..params hold arguments; named locals
    and expression temporaries follow. *)

type reg = int

type pc = int

type bc =
  | LoadInt of reg * int  (** SMI constant *)
  | LoadNum of reg * float  (** numeric constant, boxed at runtime *)
  | LoadStr of reg * string
  | LoadBool of reg * bool
  | LoadNull of reg
  | Move of reg * reg
  | BinOp of Tce_minijs.Ast.binop * reg * reg * reg * int  (** rd, ra, rb, fb slot *)
  | UnOp of Tce_minijs.Ast.unop * reg * reg
  | GetProp of reg * reg * string * int  (** rd = robj.name *)
  | SetProp of reg * string * reg * int  (** robj.name = rv *)
  | GetElem of reg * reg * reg * int  (** rd = robj[ri] *)
  | SetElem of reg * reg * reg * int  (** robj[ri] = rv *)
  | GetGlobal of reg * int  (** rd = globals[idx] (a property cell load) *)
  | SetGlobal of int * reg
  | NewObject of reg  (** empty object literal *)
  | AllocCtor of reg * int
      (** allocate an empty object with constructor [fid]'s initial map
          (emitted when inlining [new Ctor(...)]) *)
  | NewArray of reg * int  (** array literal backing, capacity hint *)
  | Call of reg * int * reg array  (** rd = funcs[id](args) *)
  | CallB of reg * Builtins.t * reg array
  | New of reg * int * reg array  (** rd = new funcs[id](args) *)
  | Jump of pc
  | JumpIfFalse of reg * pc
  | JumpIfTrue of reg * pc
  | Return of reg

type func = {
  id : int;
  name : string;
  n_params : int;
  n_named : int;  (** this + params + named locals; registers above are temps *)
  n_regs : int;  (** total registers including this/params/locals/temps *)
  code : bc array;
  fb : Feedback.t;
  is_ctor : bool;
  reserve_props : int;  (** in-object slots preallocated by [new] *)
  mutable base_class : Tce_vm.Hidden_class.t option;  (** ctor initial map *)
  mutable call_count : int;
  mutable backedge_count : int;
  mutable opt : Lir.func option;  (** installed optimized code *)
  mutable shadow : func option;
      (** cached inlined view (deopts interpret — and record feedback —
          on this bytecode, so recompiles must reuse it) *)
  mutable deopt_count : int;  (** decaying deopt budget (backoff policy) *)
  mutable opt_disabled : bool;
      (** compile bailout or detected fault: stay in baseline for good *)
  mutable backoff_level : int;  (** exponential re-speculation backoff level *)
  mutable backoff_until : int;
      (** simulated cycle before which tier-up is refused (deopt storm) *)
  mutable last_deopt_at : int;  (** simulated cycle of the last deopt *)
  mutable base_cost : int array;
      (** per-pc baseline instruction charge, baked on first interpretation
          ([[||]] = not built; length always matches [code] once built).
          Includes the mechanism's store surcharge, so the array is only
          valid within one engine (programs are per-engine). *)
}

type program = {
  funcs : func array;
  main : int;  (** id of the synthetic top-level function *)
  globals : string array;  (** top-level variables, shared across functions *)
}

let find_func p name =
  let found = ref None in
  Array.iter (fun f -> if f.name = name then found := Some f) p.funcs;
  !found

(** Registers written by an op (deopt metadata sanity checks). *)
let def_reg = function
  | LoadInt (r, _) | LoadNum (r, _) | LoadStr (r, _) | LoadBool (r, _)
  | LoadNull r | Move (r, _)
  | BinOp (_, r, _, _, _)
  | UnOp (_, r, _)
  | GetProp (r, _, _, _)
  | GetElem (r, _, _, _)
  | NewObject r
  | AllocCtor (r, _)
  | NewArray (r, _)
  | GetGlobal (r, _)
  | Call (r, _, _)
  | CallB (r, _, _)
  | New (r, _, _) ->
    Some r
  | SetProp _ | SetElem _ | SetGlobal _ | Jump _ | JumpIfFalse _ | JumpIfTrue _
  | Return _ ->
    None

let pp_bc ppf bc =
  let open Fmt in
  match bc with
  | LoadInt (r, i) -> pf ppf "r%d = int %d" r i
  | LoadNum (r, f) -> pf ppf "r%d = num %g" r f
  | LoadStr (r, s) -> pf ppf "r%d = str %S" r s
  | LoadBool (r, b) -> pf ppf "r%d = %b" r b
  | LoadNull r -> pf ppf "r%d = null" r
  | Move (d, s) -> pf ppf "r%d = r%d" d s
  | BinOp (op, d, a, b, fb) ->
    pf ppf "r%d = r%d %s r%d  #fb%d" d a (Tce_minijs.Printer.punct_of_binop op) b fb
  | UnOp (op, d, a) -> pf ppf "r%d = %s r%d" d (Tce_minijs.Ast.show_unop op) a
  | GetProp (d, o, n, fb) -> pf ppf "r%d = r%d.%s  #fb%d" d o n fb
  | SetProp (o, n, v, fb) -> pf ppf "r%d.%s = r%d  #fb%d" o n v fb
  | GetElem (d, o, i, fb) -> pf ppf "r%d = r%d[r%d]  #fb%d" d o i fb
  | SetElem (o, i, v, fb) -> pf ppf "r%d[r%d] = r%d  #fb%d" o i v fb
  | GetGlobal (r, i) -> pf ppf "r%d = glob[%d]" r i
  | SetGlobal (i, r) -> pf ppf "glob[%d] = r%d" i r
  | NewObject r -> pf ppf "r%d = {}" r
  | AllocCtor (r, f) -> pf ppf "r%d = alloc fn%d" r f
  | NewArray (r, c) -> pf ppf "r%d = [](%d)" r c
  | Call (d, f, args) ->
    pf ppf "r%d = call fn%d(%a)" d f (array ~sep:(any ",") (fun ppf r -> pf ppf "r%d" r)) args
  | CallB (d, b, args) ->
    pf ppf "r%d = %s(%a)" d (Builtins.name b)
      (array ~sep:(any ",") (fun ppf r -> pf ppf "r%d" r))
      args
  | New (d, f, args) ->
    pf ppf "r%d = new fn%d(%a)" d f (array ~sep:(any ",") (fun ppf r -> pf ppf "r%d" r)) args
  | Jump l -> pf ppf "jmp %d" l
  | JumpIfFalse (r, l) -> pf ppf "jf r%d, %d" r l
  | JumpIfTrue (r, l) -> pf ppf "jt r%d, %d" r l
  | Return r -> pf ppf "ret r%d" r

let pp_func ppf f =
  Fmt.pf ppf "function %s (#%d, %d params, %d regs):@." f.name f.id f.n_params f.n_regs;
  Array.iteri (fun i bc -> Fmt.pf ppf "  %3d: %a@." i pp_bc bc) f.code
