(** Parallel workload execution engine.

    Fans benchmark workloads out across OCaml 5 domains. Engine instances
    are self-contained and the simulator is deterministic, so every
    simulated number in the records is bit-identical to a serial run
    ([jobs = 1]); only the host wall-clock fields depend on scheduling.
    Results always come back in input order. *)

(** Number of domains used when [?jobs] is omitted
    ({!Domain.recommended_domain_count}). *)
val default_jobs : unit -> int

(** [parallel_map ~jobs f xs] = [List.map f xs], fanned out across [jobs]
    domains through a single atomic work index. [f] must be self-contained
    (no shared mutable state); results come back in input order, and the
    first exception is re-raised after all domains drain. Shared by the
    benchmark suite and the fault-campaign driver. *)
val parallel_map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list

(** Measure one workload (mechanism off + on) and build its record. With
    [cache], the content-addressed cell cache is consulted first: a hit
    returns the stored row (wall clocks zeroed) without simulating, a
    miss simulates and installs the wall-zeroed row. Cached and fresh
    rows agree on every simulated field ({!Record.equal_deterministic}). *)
val run_one :
  ?cache:Cache.t ->
  ?config:Tce_engine.Engine.config ->
  Tce_workloads.Workload.t ->
  Record.workload

(** Measure one workload unconditionally (never consults the cache). *)
val simulate_one :
  ?config:Tce_engine.Engine.config ->
  Tce_workloads.Workload.t ->
  Record.workload

(** [longest_first_order ~cost xs] is the longest-first schedule as a
    permutation of [0 .. n-1]: position [k] holds the input index to run
    [k]-th. Unknown-cost items first (they could be arbitrarily long),
    then known costs descending, ties by input index — a pure,
    deterministic function of the inputs. *)
val longest_first_order : cost:('a -> float option) -> 'a list -> int array

(** Run the workloads on [jobs] domains ([jobs <= 1]: serial in the
    calling domain). When [cost] is given, workloads are *visited* in
    {!longest_first_order} (so the slowest pairs start first and cannot
    straggle at the end of a parallel run); results always come back in
    input order either way. The first exception raised by a workload is
    re-raised after all domains drain. [on_row] is an observer fired once
    per completed workload from the finishing domain (telemetry progress);
    it must be thread-safe and must not affect results. *)
val run_workloads :
  ?cache:Cache.t ->
  ?config:Tce_engine.Engine.config ->
  ?jobs:int ->
  ?cost:(Tce_workloads.Workload.t -> float option) ->
  ?on_row:(Record.workload -> unit) ->
  Tce_workloads.Workload.t list ->
  Record.workload list

(** Profile the whole roster (one {!Tce_metrics.Harness.run_pair_profiled}
    per workload) on [jobs] domains — fresh engines and a fresh profile per
    side, so fan-out cannot change any attributed number. Scheduling and
    result order follow the {!run_workloads} rules. *)
val run_profiles :
  ?config:Tce_engine.Engine.config ->
  ?jobs:int ->
  ?cost:(Tce_workloads.Workload.t -> float option) ->
  Tce_workloads.Workload.t list ->
  Tce_metrics.Harness.profiled list

(** [run_workloads] wrapped into a provenance-stamped {!Record.run}
    (git SHA, config hash, wall clock). [cost] defaults to the committed
    baseline's whole-run cycles ({!Store.baseline_cost_of_workload}).
    With [cache], rows go through the cell cache and the run records this
    invocation's hit/miss counts. *)
val run_suite :
  ?cache:Cache.t ->
  ?config:Tce_engine.Engine.config ->
  ?jobs:int ->
  ?cost:(Tce_workloads.Workload.t -> float option) ->
  ?on_row:(Record.workload -> unit) ->
  Tce_workloads.Workload.t list ->
  Record.run
