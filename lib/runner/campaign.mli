(** Fault-injection campaign driver: the differential semantics oracle.

    A campaign runs a (workload × fault point) matrix on parallel domains.
    For each workload it first records the {e checks-on reference}
    observation (mechanism off — every type check executed) and a clean
    mechanism-on observation; then each matrix cell re-runs the workload
    with exactly one fault point armed (a singleton of the base spec) under
    a per-cell deterministic seed, and the observable results are compared
    against the reference. The observable folds the printed output with the
    result of {e every} bench() iteration, so a wrong answer anywhere in
    the run is caught, not just in the measured iteration.

    Outcome taxonomy (also documented in lib/fault/README.md):
    - [Wrong] — the observable result differed from the reference, or the
      engine crashed. Zero tolerance: any [Wrong] cell fails the campaign.
    - [Detected_recovered] — the retire-path invariant check caught the
      inconsistency ([Fault_detected] events, [detections > 0]) and the
      engine fell back to fully-checked execution; results match.
    - [Degraded] — results match with no detection needed, but the fault
      cost something (extra deopts / Class Cache exceptions / cycles).
    - [Masked] — the fault fired yet changed nothing measurable.
    - [Not_exercised] — the fault point had no opportunity to fire.

    Every cell records its injector seed, so any outcome is replayable:
    [tcejs run --fault-spec SPEC --fault-seed SEED] (or the bench driver
    with the same flags). *)

val latest_path : string  (** ["FAULTS_latest.json"] *)

val campaigns_dir : string  (** ["results/campaigns"] *)

val default_seed : int

type outcome =
  | Wrong
  | Detected_recovered
  | Degraded
  | Masked
  | Not_exercised

val outcome_name : outcome -> string
val outcome_of_name : string -> outcome option

type cell = {
  workload : string;
  point : string;  (** fault-point CLI name, {!Tce_fault.Point.name} *)
  spec : string;  (** the singleton spec the cell ran under *)
  seed : int;  (** injector seed (replay: [--fault-spec spec --fault-seed seed]) *)
  fires : int;
  detections : int;
  lost_victims : int;
  delivered_late : int;
  deopts_delta : int;  (** vs the clean mechanism-on run *)
  cycles_delta : float;  (** vs the clean mechanism-on run *)
  outcome : outcome;
  detail : string;  (** non-empty for [Wrong]: what went wrong *)
}

type t = {
  campaign_seed : int;
  spec : string;  (** the base spec the matrix was derived from *)
  git_sha : string;
  created_utc : string;
  jobs : int;
  shards : int;  (** worker processes the matrix was split across (1 = in-process) *)
  host_wall_seconds : float;
  cells : cell list;
  quarantined : Supervise.quarantined list;
      (** matrix cells the supervisor excluded after repeated worker
          kills; absent from [cells]. Omitted from the JSON when empty, so
          pre-supervision documents round-trip unchanged. *)
  resumed_rows : int list;
      (** matrix indices replayed from a [--resume] journal (provenance
          only; also omitted from the JSON when empty) *)
}

(** One guest-observable summary of a run: printed output + the display
    string of every bench() iteration, with the counters the classifier
    compares. *)
type observation = {
  observable : string;
  cycles : float;
  deopts : int;
  cc_exceptions : int;
}

(** Run a workload to completion under [config] and fold its observable
    behaviour. *)
val observe : config:Tce_engine.Engine.config -> Tce_workloads.Workload.t ->
  observation

(** The deterministic injector seed of cell [(workload, point)] — a pure
    function of the campaign seed and the cell identity, independent of
    jobs/scheduling. *)
val cell_seed : campaign_seed:int -> workload:string -> point:string -> int

(** Run the full matrix: one cell per (workload, rule of [spec]), fanned
    across [jobs] domains. Default [spec] is {!Tce_fault.Spec.default}
    (every point armed), default seed {!default_seed}. [on_cell] is a
    thread-safe observer fired once per finished cell from the finishing
    domain (telemetry progress); it must not affect outcomes. With
    [cache], cells are pre-resolved against the content-addressed cell
    cache ({!Cache.fault_key}); only workloads with at least one miss get
    reference/clean observations, so a fully cached campaign performs
    zero simulations. *)
val run :
  ?cache:Cache.t ->
  ?spec:Tce_fault.Spec.t ->
  ?seed:int ->
  ?jobs:int ->
  ?on_cell:(cell -> unit) ->
  Tce_workloads.Workload.t list ->
  t

(** The canonical campaign matrix: workload-major, rule-minor. Workers and
    the in-process driver both enumerate cells in this order, so a cell's
    matrix index identifies it across the process boundary. *)
val matrix :
  spec:Tce_fault.Spec.t ->
  Tce_workloads.Workload.t list ->
  (Tce_workloads.Workload.t * Tce_fault.Spec.rule) list

(** One matrix cell as a versioned single-line [fault-cell] envelope
    carrying its matrix index (the sharded-worker wire format). *)
val row_to_json : index:int -> cell -> Tce_obs.Json.t

val row_of_json : Tce_obs.Json.t -> (int * cell, string) result

(** Worker side of [--faults --worker-indices i,j,k]: run exactly
    [indices] of {!matrix}, in the given order, streaming one [fault-cell]
    envelope per cell to [out] (reference/clean observations are prepared
    only for the workloads the indices touch). [chaos] arms a
    deterministic fault for the chaos harness ({!Supervise.Chaos}). *)
val worker_indices :
  ?spec:Tce_fault.Spec.t ->
  ?seed:int ->
  ?chaos:Supervise.Chaos.t ->
  ?beat:Tce_telem.Heartbeat.emitter ->
  indices:int list ->
  out:out_channel ->
  Tce_workloads.Workload.t list ->
  unit

(** Worker side of [--faults --shard K/N] (kept for compatibility):
    {!worker_indices} over the shard's round-robin slice. *)
val worker :
  ?spec:Tce_fault.Spec.t ->
  ?seed:int ->
  shard:int ->
  shards:int ->
  out:out_channel ->
  Tce_workloads.Workload.t list ->
  unit

(** Parent side of [--faults --shards N]: run {!matrix} across [N]
    supervised fault workers ({!Supervise.run}) — dead or hung workers are
    respawned over their missing cells, poison cells quarantine after
    [supervise.max_retries] kills, rows are journaled to [journal_path]
    (default {!Store.faults_journal_path}) and [resume] replays a previous
    journal so only the remainder runs. Cell seeds are pure functions of
    cell identity, so the result is cell-for-cell identical to an
    in-process run. [exe]/[spawn] are test injection points; [chaos] is
    the parent side of the chaos harness ([mode, seed]).
    @raise Failure when supervision fails unrecoverably or the merge is
    incomplete (a missing cell that is not quarantined). *)
val parent :
  ?exe:string ->
  ?spawn:Supervise.spawn ->
  ?log_dir:string ->
  ?supervise:Supervise.config ->
  ?journal_path:string ->
  ?resume:string ->
  ?chaos:Supervise.Chaos.mode * int ->
  ?telem:Telem.t ->
  ?spec:Tce_fault.Spec.t ->
  ?seed:int ->
  shards:int ->
  worker_args:string list ->
  Tce_workloads.Workload.t list ->
  t

(** The cells that produced a silent wrong answer or a crash. *)
val wrong : t -> cell list

val to_json : t -> Tce_obs.Json.t
val of_json : Tce_obs.Json.t -> (t, string) result

(** Write [latest] (default {!latest_path}) and an immutable copy under
    [dir] (default {!campaigns_dir}; [""] disables). Returns the archive
    path. *)
val save : ?latest:string -> ?dir:string -> t -> string

val load : string -> (t, string) result

(** Per-point outcome table, recovery provenance (resumed/quarantined
    cells) and the list of [Wrong] cells, to stdout. *)
val print_summary : t -> unit

(** 0 when no cell is [Wrong], else 1. With [strict] (the [--strict]
    flag), quarantined cells also fail the campaign. *)
val exit_code : ?strict:bool -> t -> int
