(** Perf-regression gate: compare a fresh run against a stored baseline
    and fail when the headline numbers degrade beyond tolerance.

    Guarded metrics, per workload (matched by name over the baseline's
    roster):
    - [checksum] — the measured bench() value must not change at all;
    - [cycles] — steady-state mechanism-on simulated cycles must not grow
      by more than the tolerance (percent);
    - [check-removal] — the percentage of dynamic checks elided by the
      mechanism must not drop by more than the tolerance (points).

    Improvements never fail the gate; refresh the baseline to lock them in
    (procedure in EXPERIMENTS.md). *)

type metric = Cycles | Check_removal | Checksum

val metric_name : metric -> string

type verdict = {
  workload : string;
  metric : metric;
  base : float;
  cur : float;
  delta : float;
      (** signed change, oriented so positive = worse for [Cycles] (percent
          growth) and negative = worse for [Check_removal] (points lost) *)
  ok : bool;
}

type report = {
  verdicts : verdict list;
  missing : string list;
      (** baseline workloads absent from the current run for no recorded
          reason — each one fails the gate *)
  quarantined : string list;
      (** baseline workloads absent because the current run's supervisor
          quarantined them (poison cells): the gate compares the completed
          rows only and warns instead of failing *)
  config_mismatch : bool;
      (** the two runs were measured under different simulator configs *)
  warnings : string list;
      (** warn-only findings (never fail the gate): per-kind shares of the
          kept checks that shifted beyond tolerance vs the baseline, and
          host wall times that regressed beyond
          {!wall_warn_threshold_pct} *)
  ok : bool;
}

val default_tolerance_pct : float  (** 2.0 *)

val wall_warn_threshold_pct : float  (** 25.0 *)

(** Warn-only host-wall-time drift between two records of one workload:
    a warning per side whose clock grew more than
    {!wall_warn_threshold_pct} percent over a positive baseline (schema
    v1/v2 baselines decode their per-side clocks as 0.0 and never warn).
    Pure; exposed for tests. *)
val wall_warnings : Record.workload -> Record.workload -> string list

(** Pure comparison of two runs (no I/O, no execution). *)
val check_run :
  ?tolerance_pct:float ->
  baseline:Record.run ->
  current:Record.run ->
  unit ->
  report

(** Per-workload delta table plus a PASS/FAIL summary line, to stdout. *)
val print_report : baseline:Record.run -> current:Record.run -> report -> unit

(** Load the baseline, re-run its roster (narrowed to [names] when
    non-empty; workloads resolved through [resolve], default the global
    registry) on [jobs] domains, persist the run through {!Store.save}
    (unless [save_latest] is false), print the delta table and return the
    process exit code: 0 = pass, 1 = regression, 2 = usage/baseline error.
    [runner] replaces the default [Runner.run_suite ?jobs] execution of
    the selected roster (e.g. {!Shard.bench_parent} for [--check
    --shards N]); [jobs] is ignored when it is given. [telem] feeds the
    fleet-telemetry coordinator: the roster size becomes the scheduled
    total, serial rows stream through {!Telem.cell_done}, and the verdict
    lands via {!Telem.gate_result}. [cache] threads the cell cache into
    the default serial runner (custom [runner]s receive their own handle),
    prints its stats and prunes it after the run. *)
val run_gate :
  ?baseline_path:string ->
  ?tolerance_pct:float ->
  ?cache:Cache.t ->
  ?jobs:int ->
  ?names:string list ->
  ?resolve:(string -> Tce_workloads.Workload.t option) ->
  ?save_latest:bool ->
  ?runner:(Tce_workloads.Workload.t list -> Record.run) ->
  ?telem:Telem.t ->
  unit ->
  int
