(** Design-space sweep: a (geometry point × workload) cell matrix over the
    Class Cache / Class List configuration space, with Pareto-frontier
    reports (see sweep.mli for the spec grammar). *)

module J = Tce_obs.Json
module W = Tce_workloads.Workload
module E = Tce_engine.Engine
module CC = Tce_core.Class_cache
module CL = Tce_core.Class_list

(* --- the geometry space --- *)

type point = { entries : int; ways : int; cl_size : int }

let default_point =
  {
    entries = CC.default_config.CC.entries;
    ways = CC.default_config.CC.ways;
    cl_size = CL.default_config.CL.tracked_positions;
  }

(* Canonical: axis keys in sorted order, matching the spec grammar. *)
let point_name p =
  Printf.sprintf "cc.entries=%d cc.ways=%d cl.size=%d" p.entries p.ways
    p.cl_size

let config_of_point p : E.config =
  {
    E.default_config with
    E.cc_config = { CC.entries = p.entries; ways = p.ways };
    cl_config = { CL.tracked_positions = p.cl_size };
  }

(** Geometry cost proxy in bytes of SRAM: generalizes the hardware model's
    own estimate ({!Tce_core.Class_cache.storage_bytes} =
    [entries * (2 + 3 + 7)] — class tag, address tag, Class List payload
    per entry) by the swept Class List size, plus per-way replacement /
    valid overhead. Only ratios matter to the frontier. *)
let cost_bytes p = (p.entries * (2 + 3 + p.cl_size)) + (16 * p.ways)

(* --- the sweep-spec grammar --- *)

type axes = { ax_entries : int list; ax_ways : int list; ax_sizes : int list }

let axis_keys = [ "cc.entries"; "cc.ways"; "cl.size" ]

let parse_values ~key s : (int list, string) result =
  let parts = String.split_on_char ',' s in
  if List.exists (fun p -> String.trim p = "") parts then
    Error (Printf.sprintf "%s: empty value in %S" key s)
  else
    let rec go acc = function
      | [] -> Ok (List.sort_uniq compare (List.rev acc))
      | p :: rest -> (
        match int_of_string_opt (String.trim p) with
        | Some v when v >= 1 -> go (v :: acc) rest
        | Some v -> Error (Printf.sprintf "%s: %d is not positive" key v)
        | None -> Error (Printf.sprintf "%s: %S is not an integer" key p))
    in
    go [] parts

let parse_spec (s : string) : (axes, string) result =
  let clauses =
    List.filter (fun c -> c <> "") (String.split_on_char ' ' (String.trim s))
  in
  if clauses = [] then Error "empty sweep spec (no axes given)"
  else
    let rec go entries ways sizes = function
      | [] ->
        (* an absent axis sweeps only its paper-default value *)
        Ok
          {
            ax_entries =
              Option.value ~default:[ default_point.entries ] entries;
            ax_ways = Option.value ~default:[ default_point.ways ] ways;
            ax_sizes = Option.value ~default:[ default_point.cl_size ] sizes;
          }
      | clause :: rest -> (
        match String.index_opt clause '=' with
        | None ->
          Error
            (Printf.sprintf "bad sweep clause %S (expected KEY=V1,V2,...)"
               clause)
        | Some i -> (
          let key = String.sub clause 0 i
          and vs = String.sub clause (i + 1) (String.length clause - i - 1) in
          let dup () = Error (Printf.sprintf "duplicate sweep axis %S" key) in
          match key with
          | "cc.entries" -> (
            if entries <> None then dup ()
            else
              match parse_values ~key vs with
              | Error e -> Error e
              | Ok v -> go (Some v) ways sizes rest)
          | "cc.ways" -> (
            if ways <> None then dup ()
            else
              match parse_values ~key vs with
              | Error e -> Error e
              | Ok v -> go entries (Some v) sizes rest)
          | "cl.size" -> (
            if sizes <> None then dup ()
            else
              match parse_values ~key vs with
              | Error e -> Error e
              | Ok v ->
                if List.exists (fun n -> n > 7) v then
                  Error
                    (Printf.sprintf
                       "cl.size: at most 7 positions exist (got %d)"
                       (List.find (fun n -> n > 7) v))
                else go entries ways (Some v) rest)
          | _ ->
            Error
              (Printf.sprintf "unknown sweep axis %S (known: %s)" key
                 (String.concat ", " axis_keys))))
    in
    go None None None clauses

(* Canonical rendering: sorted keys, sorted deduped values — the identity
   the worker re-expands the matrix from. *)
let axes_to_string (a : axes) : string =
  let vs l = String.concat "," (List.map string_of_int l) in
  Printf.sprintf "cc.entries=%s cc.ways=%s cl.size=%s" (vs a.ax_entries)
    (vs a.ax_ways) (vs a.ax_sizes)

(** Expand to the point grid, entries-major / ways / cl.size-minor over
    the sorted axis values. Combinations the hardware model rejects
    (entries not a multiple of ways — no whole number of sets) are
    skipped and counted, not errors: a rectangular spec like
    [cc.entries=32,48 cc.ways=4] legitimately has holes. *)
let expand (a : axes) : point list * int =
  let skipped = ref 0 in
  let points =
    List.concat_map
      (fun entries ->
        List.concat_map
          (fun ways ->
            List.filter_map
              (fun cl_size ->
                if entries mod ways = 0 then Some { entries; ways; cl_size }
                else begin
                  incr skipped;
                  None
                end)
              a.ax_sizes)
          a.ax_ways)
      a.ax_entries
  in
  (points, !skipped)

(** The cell matrix in its canonical order: point-major, workload-minor
    (cell [i] is point [i / n_workloads], workload [i mod n_workloads]) —
    a pure function of [(axes, ws)], shared by the parent and its
    workers. *)
let matrix (points : point list) (ws : W.t list) : (point * W.t) list =
  List.concat_map (fun p -> List.map (fun w -> (p, w)) ws) points

(* --- the sweep record --- *)

type t = {
  spec : string;  (** canonical spec string ({!axes_to_string}) *)
  git_sha : string;
  created_utc : string;
  jobs : int;
  shards : int;
  host_wall_seconds : float;
  cache_hits : int;
  cache_misses : int;
  skipped_points : int;
  roster : string list;  (** workload names, matrix column order *)
  points : point list;  (** matrix row order *)
  cells : (point * Record.workload) list;
      (** matrix order; quarantined cells are absent *)
  quarantined : Supervise.quarantined list;
  resumed_rows : int list;
}

let equal (a : t) (b : t) =
  a.spec = b.spec && a.roster = b.roster && a.points = b.points
  && List.length a.cells = List.length b.cells
  && List.for_all2
       (fun (p1, r1) (p2, r2) -> p1 = p2 && Record.equal_workload r1 r2)
       a.cells b.cells

(** {!Record.normalize_run} for sweeps: every host-dependent field forced
    to a fixed value, so two sweeps of the same simulator state serialize
    byte-identically (the property CI asserts between a cold-cache and an
    all-hits run). *)
let normalize (t : t) : t =
  {
    t with
    created_utc = "normalized";
    jobs = 1;
    shards = 1;
    host_wall_seconds = 0.0;
    cache_hits = 0;
    cache_misses = 0;
    resumed_rows = [];
    cells = List.map (fun (p, r) -> (p, Record.zero_walls r)) t.cells;
  }

(* --- execution --- *)

let cache_snapshot cache =
  match cache with
  | None -> (0, 0)
  | Some c ->
    let s = Cache.stats c in
    (s.Cache.hits, s.Cache.misses)

let mk ~axes ~skipped ~points ~jobs ~shards ~t0 ~cache ~h0 ~m0 ?(quarantined = [])
    ?(resumed_rows = []) ~roster cells : t =
  let h1, m1 = cache_snapshot cache in
  {
    spec = axes_to_string axes;
    git_sha = Store.git_sha ();
    created_utc = Store.timestamp_utc ();
    jobs;
    shards;
    host_wall_seconds = Unix.gettimeofday () -. t0;
    cache_hits = h1 - h0;
    cache_misses = m1 - m0;
    skipped_points = skipped;
    roster;
    points;
    cells;
    quarantined;
    resumed_rows;
  }

let expand_or_fail axes =
  match expand axes with
  | [], _ -> failwith "sweep: empty grid (every combination invalid)"
  | points, skipped -> (points, skipped)

let run ?cache ?jobs ?on_row ~axes (ws : W.t list) : t =
  let t0 = Unix.gettimeofday () in
  let h0, m0 = cache_snapshot cache in
  let points, skipped = expand_or_fail axes in
  let cells_in = matrix points ws in
  let jobs =
    match jobs with Some j -> max 1 j | None -> Runner.default_jobs ()
  in
  let rows =
    Runner.parallel_map ~jobs
      (fun (p, w) ->
        let row = Runner.run_one ?cache ~config:(config_of_point p) w in
        (match on_row with Some f -> f row | None -> ());
        row)
      cells_in
  in
  mk ~axes ~skipped ~points ~jobs ~shards:1 ~t0 ~cache ~h0 ~m0
    ~roster:(List.map (fun (w : W.t) -> w.W.name) ws)
    (List.map2 (fun (p, _) row -> (p, row)) cells_in rows)

(* --- multi-process execution (sweep-cell envelopes) --- *)

let row_to_json ~index (row : Record.workload) : J.t =
  Tce_obs.Export.document ~kind:"sweep-cell"
    (J.Obj [ ("index", J.Int index); ("row", Record.workload_to_json row) ])

let row_of_json (j : J.t) : (int * Record.workload, string) result =
  match Tce_obs.Export.open_document j with
  | Error e -> Error e
  | Ok (kind, _) when kind <> "sweep-cell" ->
    Error (Printf.sprintf "expected a sweep-cell document, got %S" kind)
  | Ok (_, data) -> (
    match
      (Option.bind (J.member "index" data) J.to_int, J.member "row" data)
    with
    | Some i, Some rj when i >= 0 ->
      Result.map (fun r -> (i, r)) (Record.workload_of_json rj)
    | _ -> Error "malformed sweep-cell row")

(** Worker side of [--sweep SPEC --worker-indices i,j,k]: re-expand the
    matrix from the canonical spec and roster, run exactly [indices] (in
    the given order) serially, one [sweep-cell] envelope per cell on
    [out]. *)
let worker_indices ?beat ~axes ~indices ~out (ws : W.t list) : unit =
  let points, _ = expand_or_fail axes in
  let cells = Array.of_list (matrix points ws) in
  List.iter
    (fun i ->
      if i < 0 || i >= Array.length cells then
        failwith
          (Printf.sprintf "sweep worker index %d out of range [0, %d)" i
             (Array.length cells));
      let p, w = cells.(i) in
      (match beat with
      | Some e ->
        Tce_telem.Heartbeat.beat_start e ~index:i
          ~name:(Printf.sprintf "%s@%s" w.W.name (point_name p))
      | None -> ());
      let row = Runner.simulate_one ~config:(config_of_point p) w in
      output_string out (J.to_string (row_to_json ~index:i row));
      output_char out '\n';
      (* flush per cell: the parent streams progress and a crashed worker
         loses only its in-flight cell *)
      flush out;
      match beat with
      | Some e -> Tce_telem.Heartbeat.beat_cell_done e
      | None -> ())
    indices;
  match beat with Some e -> Tce_telem.Heartbeat.beat_done e | None -> ()

let parent ?exe ?spawn ?(log_dir = Shard.default_log_dir)
    ?(supervise = Supervise.default_config)
    ?(journal_path = Store.sweep_journal_path) ?resume ?telem ?cache ~shards
    ~worker_args ~axes (ws : W.t list) : t =
  let t0 = Unix.gettimeofday () in
  let h0, m0 = cache_snapshot cache in
  let points, skipped = expand_or_fail axes in
  let cells = Array.of_list (matrix points ws) in
  let names = List.map (fun (w : W.t) -> w.W.name) ws in
  let wcost = Store.baseline_cost_of_workload () in
  let cost (_, w) = wcost w in
  let order = Runner.longest_first_order ~cost (Array.to_list cells) in
  let tasks =
    List.map
      (fun pos ->
        let i = order.(pos) in
        let p, w = cells.(i) in
        {
          Supervise.t_index = i;
          t_name = Printf.sprintf "%s@%s" w.W.name (point_name p);
          t_cost = cost cells.(i);
        })
      (List.init (Array.length order) Fun.id)
  in
  let spec_string = axes_to_string axes in
  let argv_of_indices ~slot ~attempt:_ indices =
    Array.of_list
      (Sys.executable_name :: "--sweep" :: spec_string :: "--worker-indices"
       :: String.concat "," (List.map string_of_int indices)
       :: (Telem.heartbeat_args telem ~slot @ worker_args @ names))
  in
  let parse line =
    Result.map_error
      (fun e -> Printf.sprintf "bad sweep-cell: %s" e)
      (Result.bind (J.of_string line) row_of_json)
  in
  let to_line i row = J.to_string (row_to_json ~index:i row) in
  let resume_rows =
    match resume with
    | None -> []
    | Some path -> (
      match Store.journal_lines path with
      | Error e -> failwith (Printf.sprintf "--resume %s: %s" path e)
      | Ok lines ->
        List.filter_map (fun line -> Result.to_option (parse line)) lines)
  in
  let keys =
    lazy
      (Array.map
         (fun (p, w) -> Cache.bench_key ~config:(config_of_point p) w)
         cells)
  in
  let key_of i = (Lazy.force keys).(i) in
  (* Cache pre-resolution, exactly as in {!Shard.bench_parent}: hits ride
     the resume path (not scheduled), misses are simulated by workers and
     installed as their rows arrive. *)
  let journal_covered = List.map fst resume_rows in
  let cached_rows =
    match cache with
    | None -> []
    | Some c ->
      List.filter_map
        (fun i ->
          if List.mem i journal_covered then None
          else
            Option.bind (Cache.find c ~key:(key_of i)) (fun j ->
                Option.map
                  (fun row -> (i, row))
                  (Result.to_option (Record.workload_of_json j))))
        (List.init (Array.length cells) Fun.id)
  in
  let cached_indices = List.map fst cached_rows in
  let resume_rows = resume_rows @ cached_rows in
  let install c i row =
    Cache.store c ~key:(key_of i)
      (Record.workload_to_json (Record.zero_walls row))
  in
  let parse =
    match cache with
    | None -> parse
    | Some c -> (
      fun line ->
        match parse line with
        | Ok (i, row) as ok ->
          install c i row;
          ok
        | Error _ as e -> e)
  in
  let events =
    match telem with Some t -> Telem.events t | None -> Supervise.null_events
  in
  let journal = Store.journal_open journal_path in
  let outcome =
    Fun.protect
      ~finally:(fun () -> Store.journal_close journal)
      (fun () ->
        Supervise.run ?exe ?spawn ~config:supervise ~shards ~log_dir
          ~journal:(Store.journal_append journal)
          ~serial_run:(fun i ->
            let p, w = cells.(i) in
            let row = Runner.simulate_one ~config:(config_of_point p) w in
            (match cache with Some c -> install c i row | None -> ());
            row)
          ~resume_rows ~events ~argv_of_indices ~parse ~to_line tasks)
  in
  match outcome with
  | Error e -> failwith ("sweep failed: " ^ e)
  | Ok o -> (
    let resumed =
      List.filter (fun i -> not (List.mem i cached_indices)) o.Supervise.resumed
    in
    (match telem with
    | Some t -> Telem.resumed t (List.length resumed)
    | None -> ());
    let name_of i =
      if i >= 0 && i < Array.length cells then
        let p, w = cells.(i) in
        Some (Printf.sprintf "%s@%s" w.W.name (point_name p))
      else None
    in
    let quarantined_indices =
      List.map (fun q -> q.Supervise.q_index) o.Supervise.quarantined
    in
    match
      Shard.merge_rows ~names:name_of ~quarantined:quarantined_indices
        ~what:"sweep-cell" ~expected:(Array.length cells) o.Supervise.rows
    with
    | Error e -> failwith e
    | Ok _ ->
      (* re-pair rows with their matrix points, skipping quarantine holes *)
      let slot = Array.make (Array.length cells) None in
      List.iter (fun (i, row) -> slot.(i) <- Some row) o.Supervise.rows;
      let paired =
        List.filter_map
          (fun i ->
            Option.map (fun row -> (fst cells.(i), row)) slot.(i))
          (List.init (Array.length cells) Fun.id)
      in
      mk ~axes ~skipped ~points ~jobs:1 ~shards ~t0 ~cache ~h0 ~m0
        ~quarantined:o.Supervise.quarantined ~resumed_rows:resumed
        ~roster:names paired)

(* --- persistence --- *)

let point_to_json p =
  J.Obj
    [
      ("entries", J.Int p.entries);
      ("ways", J.Int p.ways);
      ("cl_size", J.Int p.cl_size);
    ]

let point_of_json (j : J.t) : (point, string) result =
  let int k = Option.bind (J.member k j) J.to_int in
  match (int "entries", int "ways", int "cl_size") with
  | Some entries, Some ways, Some cl_size -> Ok { entries; ways; cl_size }
  | _ -> Error "malformed sweep point"

let to_json (t : t) : J.t =
  Tce_obs.Export.document ~kind:"sweep"
    (J.Obj
       ([
          ("spec", J.Str t.spec);
          ("git_sha", J.Str t.git_sha);
          ("created_utc", J.Str t.created_utc);
          ("jobs", J.Int t.jobs);
          ("shards", J.Int t.shards);
          ("host_wall_seconds", J.Float t.host_wall_seconds);
          ("cache_hits", J.Int t.cache_hits);
          ("cache_misses", J.Int t.cache_misses);
          ("skipped_points", J.Int t.skipped_points);
          ("roster", J.List (List.map (fun n -> J.Str n) t.roster));
          ("points", J.List (List.map point_to_json t.points));
          ( "cells",
            J.List
              (List.map
                 (fun (p, row) ->
                   J.Obj
                     [
                       ("point", point_to_json p);
                       ("row", Record.workload_to_json row);
                     ])
                 t.cells) );
        ]
       @ (match t.quarantined with
         | [] -> []
         | qs ->
           [
             ( "quarantined",
               J.List (List.map Supervise.quarantined_to_json qs) );
           ])
       @
       match t.resumed_rows with
       | [] -> []
       | rs -> [ ("resumed_rows", J.List (List.map (fun i -> J.Int i) rs)) ]))

let of_json (j : J.t) : (t, string) result =
  match Tce_obs.Export.open_document j with
  | Error e -> Error e
  | Ok (kind, _) when kind <> "sweep" ->
    Error (Printf.sprintf "expected kind sweep, got %s" kind)
  | Ok (_, data) -> (
    let str k = Option.bind (J.member k data) J.to_str in
    let int k = Option.bind (J.member k data) J.to_int in
    let flt k = Option.bind (J.member k data) J.to_float in
    let all dec js =
      List.fold_right
        (fun x acc ->
          Result.bind acc (fun xs -> Result.map (fun v -> v :: xs) (dec x)))
        js (Ok [])
    in
    let quarantined =
      match Option.bind (J.member "quarantined" data) J.to_list with
      | None -> Ok []
      | Some js -> all Supervise.quarantined_of_json js
    in
    let resumed_rows =
      match Option.bind (J.member "resumed_rows" data) J.to_list with
      | None -> []
      | Some js -> List.filter_map J.to_int js
    in
    let cell_of j =
      match (J.member "point" j, J.member "row" j) with
      | Some pj, Some rj ->
        Result.bind (point_of_json pj) (fun p ->
            Result.map (fun r -> (p, r)) (Record.workload_of_json rj))
      | _ -> Error "malformed sweep cell"
    in
    match
      ( str "spec", str "git_sha", str "created_utc", int "jobs",
        int "shards", flt "host_wall_seconds",
        Option.bind (J.member "points" data) J.to_list,
        Option.bind (J.member "cells" data) J.to_list, quarantined )
    with
    | ( Some spec, Some git_sha, Some created_utc, Some jobs, Some shards,
        Some host_wall_seconds, Some pjs, Some cjs, Ok quarantined ) -> (
      let roster =
        match Option.bind (J.member "roster" data) J.to_list with
        | None -> []
        | Some js -> List.filter_map J.to_str js
      in
      match (all point_of_json pjs, all cell_of cjs) with
      | Ok points, Ok cells ->
        Ok
          {
            spec; git_sha; created_utc; jobs; shards; host_wall_seconds;
            cache_hits = Option.value ~default:0 (int "cache_hits");
            cache_misses = Option.value ~default:0 (int "cache_misses");
            skipped_points = Option.value ~default:0 (int "skipped_points");
            roster; points; cells; quarantined; resumed_rows;
          }
      | Error e, _ | _, Error e -> Error e)
    | _ -> Error "malformed sweep document")

let save ?(latest = Store.sweep_latest_path) ?(dir = Store.sweeps_dir) (t : t)
    : string =
  let doc = to_json t in
  Tce_obs.Export.to_file ~path:latest doc;
  if dir = "" then latest
  else begin
    Store.mkdir_p dir;
    let name =
      Printf.sprintf "%s-%s.json"
        (String.map (function ':' -> '-' | c -> c) t.created_utc)
        t.git_sha
    in
    let path = Filename.concat dir name in
    Tce_obs.Export.to_file ~path doc;
    path
  end

let load path : (t, string) result =
  if not (Sys.file_exists path) then Error (path ^ ": no such file")
  else
    let ic = open_in_bin path in
    let s =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    Result.bind (J.of_string s) of_json

(* --- Pareto analysis --- *)

type summary = {
  s_point : point;
  s_cost : int;
  s_cycles_off : float;
  s_cycles_on : float;
  s_speedup_pct : float;
  s_checks_off : int;
  s_checks_on : int;
  s_removal_pct : float;
}

let summarize p (rows : Record.workload list) : summary =
  let fsum g = List.fold_left (fun acc r -> acc +. g r) 0.0 rows in
  let isum g = List.fold_left (fun acc r -> acc + g r) 0 rows in
  let cycles_off = fsum (fun (r : Record.workload) -> r.Record.cycles_off) in
  let cycles_on = fsum (fun (r : Record.workload) -> r.Record.cycles_on) in
  let checks_off = isum (fun (r : Record.workload) -> r.Record.checks_off) in
  let checks_on = isum (fun (r : Record.workload) -> r.Record.checks_on) in
  {
    s_point = p;
    s_cost = cost_bytes p;
    s_cycles_off = cycles_off;
    s_cycles_on = cycles_on;
    s_speedup_pct =
      (if cycles_off > 0.0 then
         100.0 *. (cycles_off -. cycles_on) /. cycles_off
       else 0.0);
    s_checks_off = checks_off;
    s_checks_on = checks_on;
    s_removal_pct =
      (if checks_off > 0 then
         100.0 *. float_of_int (checks_off - checks_on) /. float_of_int checks_off
       else 0.0);
  }

let rows_of_point (t : t) p : Record.workload list =
  List.filter_map (fun (q, r) -> if q = p then Some r else None) t.cells

(** Roster-aggregate summaries, one per grid point that completed at
    least one cell, in matrix (point) order. *)
let aggregate (t : t) : summary list =
  List.filter_map
    (fun p ->
      match rows_of_point t p with [] -> None | rows -> Some (summarize p rows))
    t.points

(** Per-workload summaries: for each roster workload, one summary per
    point whose cell for it completed. *)
let per_workload (t : t) : (string * summary list) list =
  let names =
    match t.roster with
    | [] ->
      (* pre-roster documents: reconstruct column order from the cells *)
      List.fold_left
        (fun acc (_, (r : Record.workload)) ->
          if List.mem r.Record.name acc then acc else acc @ [ r.Record.name ])
        [] t.cells
    | names -> names
  in
  List.map
    (fun name ->
      ( name,
        List.filter_map
          (fun p ->
            match
              List.filter
                (fun (r : Record.workload) -> r.Record.name = name)
                (rows_of_point t p)
            with
            | [] -> None
            | rows -> Some (summarize p rows))
          t.points ))
    names

(** [a] dominates [b]: no worse on all three objectives (minimize
    mechanism-on cycles, maximize check removal, minimize geometry cost)
    and strictly better on at least one. *)
let dominates a b =
  a.s_cycles_on <= b.s_cycles_on
  && a.s_removal_pct >= b.s_removal_pct
  && a.s_cost <= b.s_cost
  && (a.s_cycles_on < b.s_cycles_on
     || a.s_removal_pct > b.s_removal_pct
     || a.s_cost < b.s_cost)

(** The non-dominated subset, in the input order. *)
let frontier (summaries : summary list) : summary list =
  List.filter
    (fun s -> not (List.exists (fun o -> dominates o s) summaries))
    summaries

(** The cheapest geometry whose roster check-removal rate is within
    [slack_pct] points of the default point's — the headline the sweep
    exists to produce. [None] when the default point is not in the grid
    or nothing cheaper qualifies. *)
let cheapest_within ?(slack_pct = 1.0) (summaries : summary list) :
    (summary * summary) option =
  match List.find_opt (fun s -> s.s_point = default_point) summaries with
  | None -> None
  | Some d -> (
    let candidates =
      List.filter
        (fun s ->
          s.s_point <> default_point
          && s.s_cost < d.s_cost
          && s.s_removal_pct >= d.s_removal_pct -. slack_pct)
        summaries
    in
    match
      List.sort
        (fun a b ->
          match compare a.s_cost b.s_cost with
          | 0 -> compare b.s_removal_pct a.s_removal_pct
          | c -> c)
        candidates
    with
    | [] -> None
    | best :: _ -> Some (d, best))

(** Check the default geometry's rows against the committed baseline:
    every baseline workload present in the sweep's default-point cells
    must match on all simulated fields ({!Record.equal_deterministic}).
    Returns a report line; [Error] when any row differs. *)
let baseline_check ?(baseline_path = Store.baseline_path) (t : t) :
    (string, string) result =
  match rows_of_point t default_point with
  | [] ->
    Ok
      (Printf.sprintf
         "default geometry (%s) not in the grid; baseline identity not \
          checked"
         (point_name default_point))
  | rows -> (
    match Store.load baseline_path with
    | Error e ->
      Ok (Printf.sprintf "baseline %s unreadable (%s)" baseline_path e)
    | Ok base ->
      let checked = ref 0 in
      let mismatches =
        List.filter_map
          (fun (r : Record.workload) ->
            match
              List.find_opt
                (fun (b : Record.workload) -> b.Record.name = r.Record.name)
                base.Record.workloads
            with
            | None -> None
            | Some b ->
              incr checked;
              if Record.equal_deterministic b r then None
              else Some r.Record.name)
          rows
      in
      if mismatches = [] then
        Ok
          (Printf.sprintf
             "default geometry (%s): %d/%d rows bit-identical to %s"
             (point_name default_point) !checked !checked baseline_path)
      else
        Error
          (Printf.sprintf
             "default geometry (%s): %d of %d rows DIFFER from %s: %s"
             (point_name default_point)
             (List.length mismatches)
             !checked baseline_path
             (String.concat ", " mismatches)))

(* --- reports --- *)

let csv_escape s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

(** One CSV row per (scope, point) summary: [scope] is ["all"] for the
    roster aggregate, else the workload name. [pareto] flags membership
    in that scope's frontier. *)
let to_csv (t : t) : string =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    "scope,entries,ways,cl_size,cost_bytes,cycles_off,cycles_on,speedup_pct,checks_off,checks_on,removal_pct,pareto\n";
  let emit scope summaries =
    let front = frontier summaries in
    List.iter
      (fun s ->
        Buffer.add_string buf
          (Printf.sprintf "%s,%d,%d,%d,%d,%.0f,%.0f,%.4f,%d,%d,%.4f,%d\n"
             (csv_escape scope) s.s_point.entries s.s_point.ways
             s.s_point.cl_size s.s_cost s.s_cycles_off s.s_cycles_on
             s.s_speedup_pct s.s_checks_off s.s_checks_on s.s_removal_pct
             (if List.memq s front then 1 else 0)))
      summaries
  in
  emit "all" (aggregate t);
  List.iter (fun (name, summaries) -> emit name summaries) (per_workload t);
  Buffer.contents buf

let report ?baseline_path (t : t) : string =
  let buf = Buffer.create 4096 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let agg = aggregate t in
  let front = frontier agg in
  pr "Design-space sweep: %s\n" t.spec;
  pr "%d point(s)%s x %d workload(s) = %d cell(s)" (List.length t.points)
    (if t.skipped_points > 0 then
       Printf.sprintf " (+%d invalid combination(s) skipped)" t.skipped_points
     else "")
    (List.length t.roster)
    (List.length t.points * List.length t.roster);
  if t.cache_hits + t.cache_misses > 0 then
    pr "; cache: %d hit(s), %d miss(es)" t.cache_hits t.cache_misses;
  if t.quarantined <> [] then
    pr "; %d cell(s) quarantined" (List.length t.quarantined);
  pr "\n\n";
  pr
    "Roster aggregate (cycles summed over the roster; * = Pareto-optimal: \
     min cycles-on, max removal, min cost):\n";
  pr "  %-44s %9s %14s %9s %9s\n" "point" "cost B" "cycles on" "speedup%"
    "removal%";
  List.iter
    (fun s ->
      pr "%s %-44s %9d %14.0f %9.2f %9.2f\n"
        (if List.memq s front then "*" else " ")
        (point_name s.s_point) s.s_cost s.s_cycles_on s.s_speedup_pct
        s.s_removal_pct)
    (List.sort (fun a b -> compare a.s_cost b.s_cost) agg);
  pr "\nPareto frontier: %d of %d point(s)\n" (List.length front)
    (List.length agg);
  let pw = per_workload t in
  if List.length pw > 1 then begin
    pr "\nPer-workload frontiers:\n";
    List.iter
      (fun (name, summaries) ->
        pr "  %-28s %s\n" name
          (String.concat " | "
             (List.map (fun s -> point_name s.s_point) (frontier summaries))))
      pw
  end;
  pr "\n";
  (match baseline_check ?baseline_path t with
  | Ok line -> pr "%s\n" line
  | Error line -> pr "%s\n" line);
  (match cheapest_within agg with
  | None ->
    pr
      "no cheaper geometry within 1.0 points of the default's check \
       removal\n"
  | Some (d, best) ->
    pr
      "cheapest geometry within 1.0 points of the default's check removal: \
       %s (%d B vs %d B, removal %.2f%% vs %.2f%%, cycles-on %+.2f%%)\n"
      (point_name best.s_point) best.s_cost d.s_cost best.s_removal_pct
      d.s_removal_pct
      (if d.s_cycles_on > 0.0 then
         100.0 *. (best.s_cycles_on -. d.s_cycles_on) /. d.s_cycles_on
       else 0.0));
  Buffer.contents buf
