(** Versioned benchmark records (see record.mli and README.md for the
    schema). One [workload] per benchmark per run, one [run] per
    invocation of the suite runner. *)

module J = Tce_obs.Json
module H = Tce_metrics.Harness
module W = Tce_workloads.Workload

type workload = {
  name : string;
  suite : string;
  iterations : int;
  checksum : string;
  cycles_off : float;
  cycles_on : float;
  whole_cycles_off : float;
  whole_cycles_on : float;
  checks_off : int;
  checks_on : int;
  checks_by_kind : (string * int * int) list;
  guards_off : int;
  guards_on : int;
  deopts_on : int;
  cc_exceptions_on : int;
  cc_accesses_on : int;
  cc_hit_rate_on : float;
  speedup_pct : float;
  check_removal_pct : float;
  wall_seconds : float;
  wall_seconds_off : float;
  wall_seconds_on : float;
}

type run = {
  schema : int;
  git_sha : string;
  config_hash : string;
  created_utc : string;
  jobs : int;
  shards : int;
  host_wall_seconds : float;
  workloads : workload list;
  quarantined : Supervise.quarantined list;
  resumed_rows : int list;
  cache_hits : int;
      (** rows served from the content-addressed cell cache (provenance:
          depends on local cache state, normalized away; omitted from the
          JSON with [cache_misses] when both are zero) *)
  cache_misses : int;  (** rows that had to be simulated on a cached run *)
}

(* The reconciliation invariant (ISSUE 4): every dynamic [C_check]
   execution is attributed to exactly one check kind. Slot 0 is the
   unattributed bucket — a compiler site that emitted a check without a
   kind flag — and must stay empty; the kind sum must equal the [C_check]
   category counter exactly. A violation is a compiler bug, not a
   measurement artifact, so it fails the run loudly. *)
let reconcile ~name ~label (a : int array) ~total =
  if a.(0) <> 0 then
    failwith
      (Printf.sprintf "%s (%s): %d unattributed check executions" name label
         a.(0));
  let sum = Array.fold_left ( + ) 0 a in
  if sum <> total then
    failwith
      (Printf.sprintf
         "%s (%s): check kinds sum to %d but the C_check counter saw %d" name
         label sum total)

let of_pair ~wall_off ~wall_on (off : H.result) (on : H.result) : workload =
  let w = off.H.workload in
  let checks_off = off.H.by_cat.(Tce_jit.Categories.index Tce_jit.Categories.C_check) in
  let checks_on = on.H.by_cat.(Tce_jit.Categories.index Tce_jit.Categories.C_check) in
  reconcile ~name:w.W.name ~label:"mechanism-off" off.H.by_check_kind
    ~total:checks_off;
  reconcile ~name:w.W.name ~label:"mechanism-on" on.H.by_check_kind
    ~total:checks_on;
  let checks_by_kind =
    List.map
      (fun k ->
        let i = Tce_jit.Categories.check_kind_index k + 1 in
        ( Tce_jit.Categories.check_kind_name k,
          off.H.by_check_kind.(i),
          on.H.by_check_kind.(i) ))
      Tce_jit.Categories.all_check_kinds
  in
  {
    name = w.W.name;
    suite = W.suite_name w.W.suite;
    iterations = w.W.iterations;
    checksum = on.H.checksum;
    cycles_off = off.H.total_cycles;
    cycles_on = on.H.total_cycles;
    whole_cycles_off = off.H.whole_cycles;
    whole_cycles_on = on.H.whole_cycles;
    checks_off;
    checks_on;
    checks_by_kind;
    guards_off = off.H.guards_obj_load;
    guards_on = on.H.guards_obj_load;
    deopts_on = on.H.deopts;
    cc_exceptions_on = on.H.cc_exceptions;
    cc_accesses_on = on.H.cc_accesses;
    cc_hit_rate_on = on.H.cc_hit_rate;
    speedup_pct =
      Tce_support.Stats.improvement ~base:off.H.total_cycles
        ~opt:on.H.total_cycles;
    check_removal_pct = Tce_support.Stats.percent (checks_off - checks_on) checks_off;
    wall_seconds = wall_off +. wall_on;
    wall_seconds_off = wall_off;
    wall_seconds_on = wall_on;
  }

(** Everything the simulator computes — i.e. every field except the host
    wall clock — must match for two records to count as the same result. *)
let equal_deterministic (a : workload) (b : workload) =
  a.name = b.name && a.suite = b.suite && a.iterations = b.iterations
  && a.checksum = b.checksum && a.cycles_off = b.cycles_off
  && a.cycles_on = b.cycles_on && a.whole_cycles_off = b.whole_cycles_off
  && a.whole_cycles_on = b.whole_cycles_on && a.checks_off = b.checks_off
  && a.checks_on = b.checks_on && a.checks_by_kind = b.checks_by_kind
  && a.guards_off = b.guards_off
  && a.guards_on = b.guards_on && a.deopts_on = b.deopts_on
  && a.cc_exceptions_on = b.cc_exceptions_on
  && a.cc_accesses_on = b.cc_accesses_on
  && a.cc_hit_rate_on = b.cc_hit_rate_on && a.speedup_pct = b.speedup_pct
  && a.check_removal_pct = b.check_removal_pct

let equal_workload (a : workload) (b : workload) =
  equal_deterministic a b && a.wall_seconds = b.wall_seconds
  && a.wall_seconds_off = b.wall_seconds_off
  && a.wall_seconds_on = b.wall_seconds_on

let equal_run (a : run) (b : run) =
  a.schema = b.schema && a.git_sha = b.git_sha
  && a.config_hash = b.config_hash
  && a.created_utc = b.created_utc && a.jobs = b.jobs
  && a.shards = b.shards
  && a.host_wall_seconds = b.host_wall_seconds
  && a.quarantined = b.quarantined
  && a.resumed_rows = b.resumed_rows
  && a.cache_hits = b.cache_hits
  && a.cache_misses = b.cache_misses
  && List.length a.workloads = List.length b.workloads
  && List.for_all2 equal_workload a.workloads b.workloads

(* --- JSON --- *)

let workload_to_json (w : workload) : J.t =
  J.Obj
    [
      ("name", J.Str w.name);
      ("suite", J.Str w.suite);
      ("iterations", J.Int w.iterations);
      ("checksum", J.Str w.checksum);
      ("cycles_off", J.Float w.cycles_off);
      ("cycles_on", J.Float w.cycles_on);
      ("whole_cycles_off", J.Float w.whole_cycles_off);
      ("whole_cycles_on", J.Float w.whole_cycles_on);
      ("checks_off", J.Int w.checks_off);
      ("checks_on", J.Int w.checks_on);
      ( "checks_by_kind",
        J.List
          (List.map
             (fun (kind, off, on) ->
               J.Obj
                 [ ("kind", J.Str kind); ("off", J.Int off); ("on", J.Int on) ])
             w.checks_by_kind) );
      ("guards_off", J.Int w.guards_off);
      ("guards_on", J.Int w.guards_on);
      ("deopts_on", J.Int w.deopts_on);
      ("cc_exceptions_on", J.Int w.cc_exceptions_on);
      ("cc_accesses_on", J.Int w.cc_accesses_on);
      ("cc_hit_rate_on", J.Float w.cc_hit_rate_on);
      ("speedup_pct", J.Float w.speedup_pct);
      ("check_removal_pct", J.Float w.check_removal_pct);
      ("wall_seconds", J.Float w.wall_seconds);
      ("wall_seconds_off", J.Float w.wall_seconds_off);
      ("wall_seconds_on", J.Float w.wall_seconds_on);
    ]

let run_to_json (r : run) : J.t =
  Tce_obs.Export.document ~kind:"bench-run"
    (J.Obj
       ([
          ("git_sha", J.Str r.git_sha);
          ("config_hash", J.Str r.config_hash);
          ("created_utc", J.Str r.created_utc);
          ("jobs", J.Int r.jobs);
          ("shards", J.Int r.shards);
          ("host_wall_seconds", J.Float r.host_wall_seconds);
          ("workloads", J.List (List.map workload_to_json r.workloads));
        ]
       (* emitted only when present, so documents from clean runs — the
          committed baseline included — keep their pre-supervision bytes *)
       @ (if r.quarantined = [] then []
          else
            [
              ( "quarantined",
                J.List
                  (List.map Supervise.quarantined_to_json r.quarantined) );
            ])
       @ (if r.resumed_rows = [] then []
          else
            [
              ( "resumed_rows",
                J.List (List.map (fun i -> J.Int i) r.resumed_rows) );
            ])
       @
       if r.cache_hits = 0 && r.cache_misses = 0 then []
       else
         [
           ("cache_hits", J.Int r.cache_hits);
           ("cache_misses", J.Int r.cache_misses);
         ]))

(* Decoding: every field is required; a missing or mistyped field names
   itself in the error so a truncated store file is diagnosable. *)

let field name conv j =
  match Option.bind (J.member name j) conv with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "bad or missing field %S" name)

let ( let* ) = Result.bind

let workload_of_json (j : J.t) : (workload, string) result =
  let* name = field "name" J.to_str j in
  let* suite = field "suite" J.to_str j in
  let* iterations = field "iterations" J.to_int j in
  let* checksum = field "checksum" J.to_str j in
  let* cycles_off = field "cycles_off" J.to_float j in
  let* cycles_on = field "cycles_on" J.to_float j in
  let* whole_cycles_off = field "whole_cycles_off" J.to_float j in
  let* whole_cycles_on = field "whole_cycles_on" J.to_float j in
  let* checks_off = field "checks_off" J.to_int j in
  let* checks_on = field "checks_on" J.to_int j in
  (* Optional for schema-v1 documents, which predate the composition block. *)
  let* checks_by_kind =
    match J.member "checks_by_kind" j with
    | None -> Ok []
    | Some (J.List items) ->
      let entry e =
        let* kind = field "kind" J.to_str e in
        let* off = field "off" J.to_int e in
        let* on = field "on" J.to_int e in
        Ok (kind, off, on)
      in
      List.fold_left
        (fun acc e ->
          let* acc = acc in
          let* x = entry e in
          Ok (x :: acc))
        (Ok []) items
      |> Result.map List.rev
    | Some _ -> Error "bad field \"checks_by_kind\""
  in
  let* guards_off = field "guards_off" J.to_int j in
  let* guards_on = field "guards_on" J.to_int j in
  let* deopts_on = field "deopts_on" J.to_int j in
  let* cc_exceptions_on = field "cc_exceptions_on" J.to_int j in
  let* cc_accesses_on = field "cc_accesses_on" J.to_int j in
  let* cc_hit_rate_on = field "cc_hit_rate_on" J.to_float j in
  let* speedup_pct = field "speedup_pct" J.to_float j in
  let* check_removal_pct = field "check_removal_pct" J.to_float j in
  let* wall_seconds = field "wall_seconds" J.to_float j in
  (* Optional for schema-v1/v2 documents, which only carried the pair
     total; per-side walls are provenance-only so 0.0 is a safe default. *)
  let opt_float name =
    match J.member name j with
    | None -> Ok 0.0
    | Some v -> (
      match J.to_float v with
      | Some x -> Ok x
      | None -> Error (Printf.sprintf "bad field %S" name))
  in
  let* wall_seconds_off = opt_float "wall_seconds_off" in
  let* wall_seconds_on = opt_float "wall_seconds_on" in
  Ok
    {
      name;
      suite;
      iterations;
      checksum;
      cycles_off;
      cycles_on;
      whole_cycles_off;
      whole_cycles_on;
      checks_off;
      checks_on;
      checks_by_kind;
      guards_off;
      guards_on;
      deopts_on;
      cc_exceptions_on;
      cc_accesses_on;
      cc_hit_rate_on;
      speedup_pct;
      check_removal_pct;
      wall_seconds;
      wall_seconds_off;
      wall_seconds_on;
    }

let rec all_ok acc = function
  | [] -> Ok (List.rev acc)
  | x :: rest -> (
    match workload_of_json x with
    | Ok w -> all_ok (w :: acc) rest
    | Error _ as e -> e)

let run_of_json (j : J.t) : (run, string) result =
  let* schema, kind, data = Tce_obs.Export.open_document_v j in
  if kind <> "bench-run" then
    Error (Printf.sprintf "expected a bench-run document, got %S" kind)
  else
    let* git_sha = field "git_sha" J.to_str data in
    let* config_hash = field "config_hash" J.to_str data in
    let* created_utc = field "created_utc" J.to_str data in
    let* jobs = field "jobs" J.to_int data in
    (* Optional for documents written before multi-process sharding
       existed: an in-process run is one shard. *)
    let* shards =
      match J.member "shards" data with
      | None -> Ok 1
      | Some v -> (
        match J.to_int v with
        | Some n when n >= 1 -> Ok n
        | _ -> Error "bad field \"shards\"")
    in
    let* host_wall_seconds = field "host_wall_seconds" J.to_float data in
    let* items = field "workloads" J.to_list data in
    let* workloads = all_ok [] items in
    (* Optional blocks: documents from clean (or pre-supervision) runs
       simply have no quarantined cells and no resumed rows. *)
    let* quarantined =
      match J.member "quarantined" data with
      | None -> Ok []
      | Some (J.List qs) ->
        List.fold_left
          (fun acc q ->
            let* acc = acc in
            let* x = Supervise.quarantined_of_json q in
            Ok (x :: acc))
          (Ok []) qs
        |> Result.map List.rev
      | Some _ -> Error "bad field \"quarantined\""
    in
    let* resumed_rows =
      match J.member "resumed_rows" data with
      | None -> Ok []
      | Some (J.List is) ->
        List.fold_left
          (fun acc i ->
            let* acc = acc in
            match J.to_int i with
            | Some i -> Ok (i :: acc)
            | None -> Error "bad field \"resumed_rows\"")
          (Ok []) is
        |> Result.map List.rev
      | Some _ -> Error "bad field \"resumed_rows\""
    in
    let opt_count name =
      match J.member name data with
      | None -> Ok 0
      | Some v -> (
        match J.to_int v with
        | Some n when n >= 0 -> Ok n
        | _ -> Error (Printf.sprintf "bad field %S" name))
    in
    let* cache_hits = opt_count "cache_hits" in
    let* cache_misses = opt_count "cache_misses" in
    Ok
      {
        schema;
        git_sha;
        config_hash;
        created_utc;
        jobs;
        shards;
        host_wall_seconds;
        workloads;
        quarantined;
        resumed_rows;
        cache_hits;
        cache_misses;
      }

(* --- shard-worker row streaming --- *)

let row_to_json ~index (w : workload) : J.t =
  Tce_obs.Export.document ~kind:"bench-row"
    (J.Obj [ ("index", J.Int index); ("workload", workload_to_json w) ])

let row_of_json (j : J.t) : (int * workload, string) result =
  let* kind, data = Tce_obs.Export.open_document j in
  if kind <> "bench-row" then
    Error (Printf.sprintf "expected a bench-row document, got %S" kind)
  else
    let* index =
      match Option.bind (J.member "index" data) J.to_int with
      | Some i when i >= 0 -> Ok i
      | _ -> Error "bad or missing field \"index\""
    in
    let* w =
      match J.member "workload" data with
      | Some wj -> workload_of_json wj
      | None -> Error "bad or missing field \"workload\""
    in
    Ok (index, w)

(** Zero the host wall clocks of a row: what remains is a pure function
    of the simulator state. This is the form rows take in the cell cache,
    so a cached row and a normalized fresh row are byte-identical. *)
let zero_walls (w : workload) : workload =
  { w with wall_seconds = 0.0; wall_seconds_off = 0.0; wall_seconds_on = 0.0 }

(** Force every host-dependent field to a fixed value; what remains is a
    pure function of the simulator state, so a serial and a sharded run of
    the same checkout serialize byte-identically. *)
let normalize_run (r : run) : run =
  {
    r with
    created_utc = "normalized";
    jobs = 1;
    shards = 1;
    host_wall_seconds = 0.0;
    (* whether rows came live or replayed from a journal does not change
       them (cells are deterministic), so resume provenance is normalized
       away; quarantined cells DO change the result set and are kept.
       Cache provenance is likewise local state, not a result. *)
    resumed_rows = [];
    cache_hits = 0;
    cache_misses = 0;
    workloads = List.map zero_walls r.workloads;
  }
