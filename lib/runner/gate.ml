(** Perf-regression gate (see gate.mli). *)

module S = Tce_support.Stats

type metric = Cycles | Check_removal | Checksum

let metric_name = function
  | Cycles -> "cycles"
  | Check_removal -> "check-removal"
  | Checksum -> "checksum"

type verdict = {
  workload : string;
  metric : metric;
  base : float;
  cur : float;
  delta : float;
  ok : bool;
}

type report = {
  verdicts : verdict list;
  missing : string list;
  quarantined : string list;
  config_mismatch : bool;
  warnings : string list;
  ok : bool;
}

let default_tolerance_pct = 2.0

(** Warn-only composition drift: for each check kind, compare its share of
    the surviving (mechanism-on) checks between baseline and current. A
    shift beyond [tolerance_pct] points means the *mix* of kept checks
    changed even if the headline totals pass — worth a look, not a
    failure (the totals are gated separately). Schema-v1 baselines have no
    composition block; they produce no warnings. *)
let composition_warnings ~tolerance_pct (b : Record.workload)
    (c : Record.workload) =
  if b.Record.checks_by_kind = [] || c.Record.checks_by_kind = [] then []
  else begin
    let share rows total kind =
      match List.find_opt (fun (k, _, _) -> k = kind) rows with
      | Some (_, _, on) when total > 0 ->
        100.0 *. float_of_int on /. float_of_int total
      | _ -> 0.0
    in
    List.filter_map
      (fun (kind, _, _) ->
        let bs = share b.Record.checks_by_kind b.Record.checks_on kind in
        let cs = share c.Record.checks_by_kind c.Record.checks_on kind in
        if Float.abs (cs -. bs) > tolerance_pct then
          Some
            (Printf.sprintf
               "%s: %s share of kept checks shifted %.2f%% -> %.2f%%"
               b.Record.name kind bs cs)
        else None)
      b.Record.checks_by_kind
  end

let wall_warn_threshold_pct = 25.0

(** Warn-only host-wall-time drift: the simulator getting slower on the
    host does not change any simulated number (so it must not gate), but a
    >25% per-workload regression is exactly the kind of accidental hot-loop
    pessimization that otherwise only surfaces when a nightly times out.
    Schema v1/v2 baselines have no per-side clocks (they decode as 0.0) and
    produce no warnings; wall times also vary with host load, hence
    warn-only. *)
let wall_warnings (b : Record.workload) (c : Record.workload) =
  let warn side bw cw =
    if bw > 0.0 && cw > bw *. (1.0 +. (wall_warn_threshold_pct /. 100.0)) then
      Some
        (Printf.sprintf
           "%s: host wall time%s regressed %.2fs -> %.2fs (+%.0f%%, \
            non-gating)"
           b.Record.name side bw cw
           (100.0 *. (cw -. bw) /. bw))
    else None
  in
  List.filter_map Fun.id
    (if b.Record.wall_seconds_off > 0.0 || b.Record.wall_seconds_on > 0.0 then
       [
         warn " (mechanism off)" b.Record.wall_seconds_off
           c.Record.wall_seconds_off;
         warn " (mechanism on)" b.Record.wall_seconds_on
           c.Record.wall_seconds_on;
       ]
     else [ warn "" b.Record.wall_seconds c.Record.wall_seconds ])

(** Compare [current] against [baseline] workload-by-workload (matched by
    name, over the baseline's roster). A workload fails when
    - its measured checksum changed (correctness regression),
    - steady-state [cycles_on] grew by more than [tolerance_pct] percent, or
    - [check_removal_pct] dropped by more than [tolerance_pct] points.
    Improvements never fail the gate. *)
let check_run ?(tolerance_pct = default_tolerance_pct) ~baseline ~current () :
    report =
  let find name =
    List.find_opt
      (fun (w : Record.workload) -> w.Record.name = name)
      current.Record.workloads
  in
  (* Wall-time drift is only meaningful like for like: a sharded run's
     clocks include fork/pipe overhead a serial run doesn't pay (and vice
     versa), so wall warnings require both sides to agree on jobs AND
     shards AND the cell-cache hit ratio — a mostly-cached run spends
     almost no wall time simulating, so warning it against an uncached
     baseline (or vice versa) would be pure noise. Simulated verdicts are
     never gated on any of this. *)
  let cache_ratio (r : Record.run) =
    let total = r.Record.cache_hits + r.Record.cache_misses in
    if total = 0 then 0.0
    else float_of_int r.Record.cache_hits /. float_of_int total
  in
  let wall_comparable =
    baseline.Record.jobs = current.Record.jobs
    && baseline.Record.shards = current.Record.shards
    && cache_ratio baseline = cache_ratio current
  in
  (* A baseline workload absent because the supervisor quarantined it is
     not a perf regression — the gate compares only the completed rows and
     warns. A workload absent for any other reason still fails. *)
  let quarantined_names =
    List.map
      (fun q -> q.Supervise.q_name)
      current.Record.quarantined
  in
  let verdicts, missing, quarantined, warnings =
    List.fold_left
      (fun (vs, miss, quar, warns) (b : Record.workload) ->
        match find b.Record.name with
        | None when List.mem b.Record.name quarantined_names ->
          ( vs, miss, b.Record.name :: quar,
            Printf.sprintf
              "%s: quarantined by the supervisor — excluded from the \
               comparison (completed rows only, non-gating)"
              b.Record.name
            :: warns )
        | None -> (vs, b.Record.name :: miss, quar, warns)
        | Some c ->
          let cycles_delta =
            S.rel_delta_pct ~base:b.Record.cycles_on ~cur:c.Record.cycles_on
          in
          let removal_drop =
            b.Record.check_removal_pct -. c.Record.check_removal_pct
          in
          let vs =
            {
              workload = b.Record.name;
              metric = Checksum;
              base = 0.0;
              cur = 0.0;
              delta = 0.0;
              ok = b.Record.checksum = c.Record.checksum;
            }
            :: {
                 workload = b.Record.name;
                 metric = Cycles;
                 base = b.Record.cycles_on;
                 cur = c.Record.cycles_on;
                 delta = cycles_delta;
                 ok = cycles_delta <= tolerance_pct;
               }
            :: {
                 workload = b.Record.name;
                 metric = Check_removal;
                 base = b.Record.check_removal_pct;
                 cur = c.Record.check_removal_pct;
                 delta = -.removal_drop;
                 ok = removal_drop <= tolerance_pct;
               }
            :: vs
          in
          (vs, miss, quar,
           List.rev_append
             (if wall_comparable then wall_warnings b c else [])
             (List.rev_append (composition_warnings ~tolerance_pct b c) warns)))
      ([], [], [], []) baseline.Record.workloads
  in
  let suite_wall_warnings =
    let bw = baseline.Record.host_wall_seconds
    and cw = current.Record.host_wall_seconds in
    if
      bw > 0.0 && wall_comparable
      && cw > bw *. (1.0 +. (wall_warn_threshold_pct /. 100.0))
    then
      [
        Printf.sprintf
          "suite host wall time regressed %.2fs -> %.2fs (+%.0f%% at %d \
           jobs / %d shards, non-gating)"
          bw cw
          (100.0 *. (cw -. bw) /. bw)
          current.Record.jobs current.Record.shards;
      ]
    else []
  in
  let verdicts = List.rev verdicts
  and missing = List.rev missing
  and quarantined = List.rev quarantined
  and warnings = List.rev warnings @ suite_wall_warnings in
  let config_mismatch =
    baseline.Record.config_hash <> current.Record.config_hash
  in
  {
    verdicts;
    missing;
    quarantined;
    config_mismatch;
    warnings;
    ok =
      (not config_mismatch) && missing = []
      && List.for_all (fun (v : verdict) -> v.ok) verdicts;
  }

(* --- reporting --- *)

let print_report ~baseline ~current (r : report) =
  if r.config_mismatch then
    Printf.printf
      "CONFIG MISMATCH: baseline %s vs current %s — numbers are not \
       comparable; refresh the baseline (see EXPERIMENTS.md)\n"
      baseline.Record.config_hash current.Record.config_hash;
  Printf.printf "%-22s %14s %14s %8s | %8s %8s %7s | %s\n" "workload"
    "base cycles" "cur cycles" "Δcyc%" "base rm%" "cur rm%" "Δrm pts" "status";
  let by_workload = Hashtbl.create 16 in
  List.iter
    (fun v ->
      let l = try Hashtbl.find by_workload v.workload with Not_found -> [] in
      Hashtbl.replace by_workload v.workload (v :: l))
    r.verdicts;
  List.iter
    (fun (b : Record.workload) ->
      match Hashtbl.find_opt by_workload b.Record.name with
      | None ->
        if List.mem b.Record.name r.quarantined then
          Printf.printf "%-22s QUARANTINED (non-gating, excluded)\n"
            b.Record.name
        else Printf.printf "%-22s MISSING from current run\n" b.Record.name
      | Some vs ->
        let get m = List.find_opt (fun v -> v.metric = m) vs in
        let cyc = get Cycles and rm = get Check_removal and ck = get Checksum in
        let bad =
          List.filter_map
            (fun (v : verdict) ->
              if v.ok then None else Some (metric_name v.metric))
            vs
        in
        let status =
          if bad = [] then "ok" else "FAIL " ^ String.concat "+" bad
        in
        let f g v = Option.fold ~none:0.0 ~some:g v in
        Printf.printf "%-22s %14.0f %14.0f %+7.2f%% | %7.2f%% %7.2f%% %+7.2f | %s%s\n"
          b.Record.name
          (f (fun v -> v.base) cyc)
          (f (fun v -> v.cur) cyc)
          (f (fun v -> v.delta) cyc)
          (f (fun v -> v.base) rm)
          (f (fun v -> v.cur) rm)
          (f (fun v -> v.delta) rm)
          status
          (match ck with Some { ok = false; _ } -> " (checksum changed!)" | _ -> ""))
    baseline.Record.workloads;
  let deltas =
    List.filter_map
      (fun v -> if v.metric = Cycles then Some v.delta else None)
      r.verdicts
  in
  List.iter (fun w -> Printf.printf "warning: %s\n" w) r.warnings;
  let mean, ci = S.mean_ci95 deltas in
  Printf.printf
    "gate: %s — %d workloads compared, mean cycle delta %+.2f%% (±%.2f)%s%s\n"
    (if r.ok then "PASS" else "FAIL")
    (List.length deltas) mean ci
    (match r.missing with
    | [] -> ""
    | ms -> Printf.sprintf ", missing: %s" (String.concat ", " ms))
    (match r.quarantined with
    | [] -> ""
    | qs -> Printf.sprintf ", quarantined: %s" (String.concat ", " qs))

(* --- end-to-end driver (shared by bench/main.exe and tcejs) --- *)

let run_gate ?(baseline_path = Store.baseline_path)
    ?(tolerance_pct = default_tolerance_pct) ?cache ?jobs ?(names = [])
    ?(resolve = Tce_workloads.Workloads.by_name) ?(save_latest = true) ?runner
    ?telem () : int =
  match Store.load baseline_path with
  | Error msg ->
    (* Actionable failure: say *why* the baseline is unusable and how to
       produce a good one, instead of a bare parse error. *)
    if not (Sys.file_exists baseline_path) then
      Printf.eprintf
        "gate: baseline %s does not exist.\n\
         Generate one from a known-good checkout and commit it:\n\
        \  dune exec bench/main.exe -- --bench --out %s --history ''\n"
        baseline_path baseline_path
    else
      Printf.eprintf
        "gate: baseline %s is unreadable or malformed: %s\n\
         Regenerate it from a known-good checkout:\n\
        \  dune exec bench/main.exe -- --bench --out %s --history ''\n"
        baseline_path msg baseline_path;
    2
  | Ok baseline ->
    (* Run exactly the baseline's roster (optionally narrowed to [names])
       so a subset invocation compares subset-to-subset. *)
    let wanted (b : Record.workload) =
      names = [] || List.mem b.Record.name names
    in
    let unresolved =
      List.filter
        (fun (b : Record.workload) ->
          wanted b && resolve b.Record.name = None)
        baseline.Record.workloads
    in
    if unresolved <> [] then begin
      (* A baseline naming unknown workloads is from a different roster
         (renamed/removed benchmarks): comparing the remainder would
         silently shrink the gate's coverage, so fail loudly instead. *)
      Printf.eprintf
        "gate: baseline %s names %d workload(s) not in this build's \
         registry: %s.\n\
         The baseline was made from a different benchmark roster — \
         regenerate it:\n\
        \  dune exec bench/main.exe -- --bench --out %s --history ''\n"
        baseline_path
        (List.length unresolved)
        (String.concat ", "
           (List.map (fun (b : Record.workload) -> b.Record.name) unresolved))
        baseline_path;
      2
    end
    else
    let roster =
      List.filter_map
        (fun (b : Record.workload) ->
          if wanted b then resolve b.Record.name else None)
        baseline.Record.workloads
    in
    if roster = [] then begin
      Printf.eprintf
        "gate: no baseline workloads selected to compare (baseline %s has \
         %d workloads%s)\n"
        baseline_path
        (List.length baseline.Record.workloads)
        (if names = [] then ""
         else "; none match " ^ String.concat ", " names);
      2
    end
    else begin
      (match telem with
      | None -> ()
      | Some t -> Telem.set_total t (List.length roster));
      let current =
        match runner with
        | Some run -> run roster
        | None ->
          let on_row =
            Option.map
              (fun t (w : Record.workload) ->
                Telem.cell_done t ~name:w.Record.name)
              telem
          in
          Runner.run_suite ?cache ?jobs ?on_row roster
      in
      (match cache with
      | None -> ()
      | Some c ->
        Cache.print_stats (Cache.stats c);
        (match telem with
        | None -> ()
        | Some t -> Telem.cache_stats t (Cache.stats c));
        ignore (Cache.prune ~dir:(Cache.dir c) ()));
      if save_latest then ignore (Store.save current);
      let kept =
        List.filter
          (fun (b : Record.workload) ->
            List.exists
              (fun (w : Tce_workloads.Workload.t) ->
                w.Tce_workloads.Workload.name = b.Record.name)
              roster)
          baseline.Record.workloads
      in
      let baseline = { baseline with Record.workloads = kept } in
      let report = check_run ~tolerance_pct ~baseline ~current () in
      print_report ~baseline ~current report;
      (match telem with
      | None -> ()
      | Some t ->
        Telem.gate_result t ~ok:report.ok
          ~compared:(List.length report.verdicts)
          ~regressions:
            (List.length
               (List.filter (fun (v : verdict) -> not v.ok) report.verdicts)));
      if report.ok then 0 else 1
    end
