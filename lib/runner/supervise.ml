(** Supervised worker pool (see supervise.mli for the state machine). *)

module J = Tce_obs.Json

type task = { t_index : int; t_name : string; t_cost : float option }

type config = {
  max_retries : int;
  cell_timeout_s : float;
  backoff_base_s : float;
  backoff_cap_s : float;
  verbose : bool;
}

let default_config =
  {
    max_retries = 3;
    cell_timeout_s = 60.0;
    backoff_base_s = 0.25;
    backoff_cap_s = 5.0;
    verbose = true;
  }

type quarantined = {
  q_index : int;
  q_name : string;
  q_kills : int;
  q_reason : string;
}

let quarantined_to_json (q : quarantined) : J.t =
  J.Obj
    [
      ("index", J.Int q.q_index);
      ("name", J.Str q.q_name);
      ("kills", J.Int q.q_kills);
      ("reason", J.Str q.q_reason);
    ]

let quarantined_of_json (j : J.t) : (quarantined, string) result =
  match
    ( Option.bind (J.member "index" j) J.to_int,
      Option.bind (J.member "name" j) J.to_str,
      Option.bind (J.member "kills" j) J.to_int,
      Option.bind (J.member "reason" j) J.to_str )
  with
  | Some q_index, Some q_name, Some q_kills, Some q_reason ->
    Ok { q_index; q_name; q_kills; q_reason }
  | _ -> Error "malformed quarantined entry"

type 'row outcome = {
  rows : (int * 'row) list;
  quarantined : quarantined list;
  resumed : int list;
  respawns : int;
  degraded_serial : int;
}

(* --- lifecycle events ---

   Observability taps on the supervisor state machine. The default
   [null_events] keeps the supervised path byte-identical to a run with
   no telemetry: every callback is a no-op and nothing else changes. *)

type events = {
  ev_spawn : slot:int -> attempt:int -> pending:int -> unit;
  ev_row : slot:int -> index:int -> name:string -> unit;
      (** a row was accepted (slot 0 = resumed from journal or in-process
          fallback, never a spawned worker) *)
  ev_heartbeat : slot:int -> Tce_telem.Heartbeat.t -> unit;
  ev_fault : slot:int -> index:int option -> kills:int -> reason:string -> unit;
  ev_quarantine : index:int -> name:string -> kills:int -> unit;
  ev_degraded : index:int -> unit;
  ev_tick : unit -> unit;  (** once per supervisor select-loop iteration *)
}

let null_events =
  {
    ev_spawn = (fun ~slot:_ ~attempt:_ ~pending:_ -> ());
    ev_row = (fun ~slot:_ ~index:_ ~name:_ -> ());
    ev_heartbeat = (fun ~slot:_ _ -> ());
    ev_fault = (fun ~slot:_ ~index:_ ~kills:_ ~reason:_ -> ());
    ev_quarantine = (fun ~index:_ ~name:_ ~kills:_ -> ());
    ev_degraded = (fun ~index:_ -> ());
    ev_tick = (fun () -> ());
  }

(* --- EINTR-safe syscall wrappers ---

   Any signal delivery (SIGCHLD from a dying worker, a profiling timer,
   a terminal resize) can interrupt select/read/waitpid with EINTR; the
   only correct response is to retry the call. *)

let rec select_restart r w e t =
  try Unix.select r w e t
  with Unix.Unix_error (Unix.EINTR, _, _) -> select_restart r w e t

let rec read_restart fd buf pos len =
  try Unix.read fd buf pos len
  with Unix.Unix_error (Unix.EINTR, _, _) -> read_restart fd buf pos len

let rec waitpid_restart flags pid =
  try Unix.waitpid flags pid
  with Unix.Unix_error (Unix.EINTR, _, _) -> waitpid_restart flags pid

(* Non-blocking read for the stderr drains: the pipe read ends are
   O_NONBLOCK (a killed worker can leave orphaned grandchildren holding
   the write end, so a blocking read could wedge the supervisor). Returns
   -1 when no data is available right now. *)
let rec read_nb fd buf pos len =
  try Unix.read fd buf pos len with
  | Unix.Unix_error (Unix.EINTR, _, _) -> read_nb fd buf pos len
  | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> -1

(* UTC per-line prefix for the shard logs, millisecond resolution so
   worker stderr can be correlated with heartbeat timelines. *)
let utc_stamp () =
  let t = Unix.gettimeofday () in
  let tm = Unix.gmtime t in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec
    (int_of_float (Float.rem t 1.0 *. 1000.0))

(* --- chaos --- *)

module Chaos = struct
  type mode =
    | Crash_after
    | Sigkill_after
    | Hang_after
    | Garbage_after
    | Truncate_after
    | Poison

  type t = { mode : mode; arg : int }

  let mode_name = function
    | Crash_after -> "crash-after"
    | Sigkill_after -> "sigkill-after"
    | Hang_after -> "hang-after"
    | Garbage_after -> "garbage-after"
    | Truncate_after -> "truncate-after"
    | Poison -> "poison"

  let all_modes =
    [ Crash_after; Sigkill_after; Hang_after; Garbage_after; Truncate_after;
      Poison ]

  let parse_mode s =
    match List.find_opt (fun m -> mode_name m = s) all_modes with
    | Some m -> Ok m
    | None ->
      Error
        (Printf.sprintf "unknown chaos mode %S (one of: %s)" s
           (String.concat ", " (List.map mode_name all_modes)))

  let parse s =
    match String.index_opt s ':' with
    | None -> Error (Printf.sprintf "bad chaos spec %S (expected MODE:ARG)" s)
    | Some i -> (
      let m = String.sub s 0 i
      and a = String.sub s (i + 1) (String.length s - i - 1) in
      match (parse_mode m, int_of_string_opt a) with
      | Ok mode, Some arg when arg >= 0 -> Ok { mode; arg }
      | Ok _, _ ->
        Error (Printf.sprintf "bad chaos spec %S (ARG must be >= 0)" s)
      | (Error _ as e), _ -> e)

  let to_string t = Printf.sprintf "%s:%d" (mode_name t.mode) t.arg

  (* Cheap deterministic mixing — which first-wave worker misbehaves and
     after how many rows must be a pure function of the seed, never of
     scheduling. *)
  let mix seed salt =
    let h = (seed lxor (salt * 0x9E3779B1)) * 0x85EBCA6B in
    let h = h lxor (h lsr 13) in
    abs (h * 0xC2B2AE35)

  let worker_args ~mode ~seed ~(assignment : int list array) ~slot ~attempt =
    let shards = Array.length assignment in
    if shards = 0 then None
    else begin
      let victim = 1 + (mix seed 1 mod shards) in
      let victim_cells = assignment.(victim - 1) in
      match mode with
      | Poison ->
        (* every spawn is armed with the same doomed cell, so retries keep
           dying until the supervisor quarantines it *)
        if victim_cells = [] then None
        else
          let k = mix seed 2 mod List.length victim_cells in
          Some [ "--chaos"; to_string { mode; arg = List.nth victim_cells k } ]
      | Crash_after | Sigkill_after | Hang_after | Garbage_after
      | Truncate_after ->
        (* recoverable faults fire once, on the victim's first spawn *)
        if slot <> victim || attempt > 0 || victim_cells = [] then None
        else
          let k = mix seed 2 mod List.length victim_cells in
          Some [ "--chaos"; to_string { mode; arg = k } ]
    end

  let truncate_line out line =
    output_string out (String.sub line 0 (String.length line / 2));
    flush out;
    exit 0

  let before_cell t ~emitted ~index out =
    match t with
    | None -> `Run
    | Some { mode; arg } -> (
      let fire =
        match mode with Poison -> index = arg | _ -> emitted = arg
      in
      if not fire then `Run
      else
        match mode with
        | Poison | Crash_after ->
          flush out;
          exit 3
        | Sigkill_after ->
          flush out;
          Unix.kill (Unix.getpid ()) Sys.sigkill;
          `Run
        | Hang_after ->
          flush out;
          let rec forever () =
            Unix.sleepf 3600.0;
            forever ()
          in
          forever ()
        | Garbage_after ->
          output_string out "this is not a row envelope {{{\n";
          flush out;
          exit 0
        | Truncate_after -> `Truncate)
end

(* --- spawning --- *)

type spawn =
  exe:string ->
  argv:string array ->
  stdout:Unix.file_descr ->
  stderr:Unix.file_descr ->
  int

let default_spawn : spawn =
 fun ~exe ~argv ~stdout ~stderr ->
  let devnull = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
  Fun.protect
    ~finally:(fun () -> Unix.close devnull)
    (fun () -> Unix.create_process exe argv devnull stdout stderr)

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
  end

(* --- the supervisor --- *)

type wstate = {
  ws_slot : int;  (** 1-based worker lineage *)
  mutable ws_attempt : int;  (** spawns of this lineage so far - 1 *)
  mutable ws_pid : int;
  mutable ws_fd : Unix.file_descr;
  mutable ws_buf : Buffer.t;
  mutable ws_pending : int list;  (** indices owed, in execution order *)
  mutable ws_deadline : float;  (** absolute; progress resets it *)
  mutable ws_alive : bool;
  mutable ws_respawn_at : float;  (** backoff wake-up when not alive *)
  mutable ws_needs_respawn : bool;
  ws_log : string;
  mutable ws_err_fd : Unix.file_descr;  (** stderr pipe read end *)
  mutable ws_err_open : bool;
  ws_err_buf : Buffer.t;  (** partial stderr line *)
  mutable ws_log_oc : out_channel option;  (** timestamped shard log *)
}

let run ?(exe = Sys.executable_name) ?(spawn = default_spawn) ?journal
    ?serial_run ?(resume_rows = []) ?(events = null_events) ~config ~shards
    ~log_dir ~argv_of_indices ~parse ~to_line (tasks : task list) :
    ('row outcome, string) result =
  mkdir_p log_dir;
  let shards = max 1 shards in
  let say fmt =
    Printf.ksprintf
      (fun s -> if config.verbose then Printf.eprintf "supervise: %s\n%!" s)
      fmt
  in
  let by_index = Hashtbl.create 64 in
  List.iter (fun t -> Hashtbl.replace by_index t.t_index t) tasks;
  let name_of i =
    match Hashtbl.find_opt by_index i with
    | Some t -> t.t_name
    | None -> Printf.sprintf "#%d" i
  in
  (* Progress deadline per cell: the base timeout scaled by the cell's
     committed cost relative to the roster median, so one long cell does
     not trip the hang detector while a genuinely wedged worker cannot
     hide behind it. *)
  let median_cost =
    let cs =
      List.sort compare (List.filter_map (fun t -> t.t_cost) tasks)
    in
    match cs with [] -> None | _ -> Some (List.nth cs (List.length cs / 2))
  in
  let deadline_for i =
    let rel =
      match (Option.bind (Hashtbl.find_opt by_index i) (fun t -> t.t_cost),
             median_cost)
      with
      | Some c, Some m when m > 0.0 -> Stdlib.max 1.0 (c /. m)
      | _ -> 1.0
    in
    config.cell_timeout_s *. rel
  in
  (* Journal-replayed rows: completed up front, never scheduled. *)
  let resumed =
    List.sort_uniq compare
      (List.filter_map
         (fun (i, _) -> if Hashtbl.mem by_index i then Some i else None)
         resume_rows)
  in
  let resumed_rows =
    (* first occurrence wins; out-of-roster indices are dropped *)
    let seen = Hashtbl.create 16 in
    List.filter
      (fun (i, _) ->
        if Hashtbl.mem by_index i && not (Hashtbl.mem seen i) then begin
          Hashtbl.replace seen i ();
          true
        end
        else false)
      resume_rows
  in
  let journal_line line = match journal with None -> () | Some j -> j line in
  List.iter
    (fun (i, r) ->
      journal_line (to_line i r);
      events.ev_row ~slot:0 ~index:i ~name:(name_of i))
    resumed_rows;
  let todo =
    List.filter (fun t -> not (List.mem t.t_index resumed)) tasks
  in
  (* Round-robin over the (schedule-ordered) task list, like the static
     K/N sharding would. *)
  let assignment = Array.make shards [] in
  List.iteri
    (fun pos t ->
      assignment.(pos mod shards) <- t.t_index :: assignment.(pos mod shards))
    todo;
  let assignment = Array.map List.rev assignment in
  let rows = ref (List.rev resumed_rows) (* accumulated in reverse *) in
  let kills : (int, int * string) Hashtbl.t = Hashtbl.create 8 in
  let quarantined = ref [] in
  let respawns = ref 0 in
  let degraded = ref 0 in
  let failure = ref None in
  let chunk = Bytes.create 65536 in
  let now () = Unix.gettimeofday () in
  let serial_fallback w =
    (* Forking failed: finish this lineage's cells in-process so resource
       pressure degrades the run to serial instead of killing it. *)
    match serial_run with
    | None ->
      failure :=
        Some
          (Printf.sprintf
             "worker %d/%d could not be spawned and no in-process fallback \
              is available"
             w.ws_slot shards)
    | Some f ->
      List.iter
        (fun i ->
          match f i with
          | row ->
            incr degraded;
            rows := (i, row) :: !rows;
            journal_line (to_line i row);
            events.ev_row ~slot:0 ~index:i ~name:(name_of i);
            events.ev_degraded ~index:i
          | exception e ->
            (* an in-process crash is attributable to the cell itself *)
            let k =
              match Hashtbl.find_opt kills i with
              | Some (k, _) -> k + 1
              | None -> 1
            in
            quarantined :=
              {
                q_index = i;
                q_name = name_of i;
                q_kills = k;
                q_reason = "in-process fallback raised: " ^ Printexc.to_string e;
              }
              :: !quarantined;
            events.ev_quarantine ~index:i ~name:(name_of i) ~kills:k)
        w.ws_pending;
      w.ws_pending <- []
  in
  (* Timestamped shard log: worker stderr flows through a pipe so the
     supervisor can prefix each line with a UTC stamp before appending it
     to the shard's log file. *)
  let log_channel w =
    match w.ws_log_oc with
    | Some oc -> oc
    | None ->
      let oc = open_out w.ws_log in
      w.ws_log_oc <- Some oc;
      oc
  in
  let err_write_lines w data =
    let oc = log_channel w in
    String.iter
      (fun c ->
        if c = '\n' then begin
          output_string oc (utc_stamp ());
          output_char oc ' ';
          output_string oc (Buffer.contents w.ws_err_buf);
          output_char oc '\n';
          Buffer.clear w.ws_err_buf
        end
        else Buffer.add_char w.ws_err_buf c)
      data;
    flush oc
  in
  (* Drain whatever stderr is available right now and close the pipe.
     Called once the worker is dead: orphaned grandchildren may still hold
     the write end, so stop at EAGAIN rather than waiting for EOF. *)
  let err_close w =
    if w.ws_err_open then begin
      w.ws_err_open <- false;
      let continue = ref true in
      while !continue do
        match read_nb w.ws_err_fd chunk 0 (Bytes.length chunk) with
        | 0 | -1 -> continue := false
        | n -> err_write_lines w (Bytes.sub_string chunk 0 n)
        | exception Unix.Unix_error _ -> continue := false
      done;
      if Buffer.length w.ws_err_buf > 0 then err_write_lines w "\n";
      try Unix.close w.ws_err_fd with Unix.Unix_error _ -> ()
    end
  in
  let spawn_worker w =
    match w.ws_pending with
    | [] -> ()
    | indices -> (
      let argv =
        argv_of_indices ~slot:w.ws_slot ~attempt:w.ws_attempt indices
      in
      let err_r, err_w = Unix.pipe ~cloexec:false () in
      Unix.set_nonblock err_r;
      let r, wr = Unix.pipe ~cloexec:false () in
      match spawn ~exe ~argv ~stdout:wr ~stderr:err_w with
      | pid ->
        Unix.close wr;
        Unix.close err_w;
        w.ws_pid <- pid;
        w.ws_fd <- r;
        w.ws_err_fd <- err_r;
        w.ws_err_open <- true;
        w.ws_buf <- Buffer.create 256;
        w.ws_alive <- true;
        w.ws_needs_respawn <- false;
        w.ws_deadline <- now () +. deadline_for (List.hd indices);
        if w.ws_attempt > 0 then incr respawns;
        let preview =
          let names = List.map name_of indices in
          match names with
          | a :: b :: c :: d :: _ :: _ ->
            String.concat ", " [ a; b; c; d ]
            ^ Printf.sprintf ", … (%d more)" (List.length names - 4)
          | _ -> String.concat ", " names
        in
        say "worker %d/%d attempt %d (pid %d) covers %d cell(s): %s" w.ws_slot
          shards w.ws_attempt pid (List.length indices) preview;
        events.ev_spawn ~slot:w.ws_slot ~attempt:w.ws_attempt
          ~pending:(List.length indices)
      | exception e ->
        Unix.close wr;
        Unix.close r;
        Unix.close err_w;
        Unix.close err_r;
        w.ws_alive <- false;
        w.ws_needs_respawn <- false;
        say "worker %d/%d spawn failed (%s); degrading to in-process serial \
             execution"
          w.ws_slot shards (Printexc.to_string e);
        serial_fallback w)
  in
  let workers =
    Array.to_list
      (Array.mapi
         (fun i indices ->
           {
             ws_slot = i + 1;
             ws_attempt = 0;
             ws_pid = -1;
             ws_fd = Unix.stdin;
             ws_buf = Buffer.create 256;
             ws_pending = indices;
             ws_deadline = infinity;
             ws_alive = false;
             ws_respawn_at = 0.0;
             ws_needs_respawn = indices <> [];
             ws_log =
               Filename.concat log_dir (Printf.sprintf "shard-%d.log" (i + 1));
             ws_err_fd = Unix.stdin;
             ws_err_open = false;
             ws_err_buf = Buffer.create 256;
             ws_log_oc = None;
           })
         assignment)
  in
  (* fresh logs per run: spawn appends across attempts within the run *)
  List.iter
    (fun w ->
      let fd =
        Unix.openfile w.ws_log [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
      in
      Unix.close fd)
    workers;
  let reap w =
    if w.ws_alive then begin
      w.ws_alive <- false;
      (try Unix.close w.ws_fd with Unix.Unix_error _ -> ());
      let _, st = waitpid_restart [] w.ws_pid in
      err_close w;
      st
    end
    else Unix.WEXITED 0
  in
  let describe_status = function
    | Unix.WEXITED 0 -> "exited 0"
    | Unix.WEXITED c -> Printf.sprintf "exited %d" c
    | Unix.WSIGNALED s -> Printf.sprintf "killed by signal %d" s
    | Unix.WSTOPPED s -> Printf.sprintf "stopped by signal %d" s
  in
  (* A worker died (or was shot) with cells still owed: blame the cell in
     flight, quarantine it after max_retries kills, back off, respawn the
     remainder. *)
  let fault w reason =
    let st = reap w in
    let reason =
      Printf.sprintf "%s (%s, log: %s)" reason (describe_status st) w.ws_log
    in
    (match w.ws_pending with
    | [] ->
      say "worker %d/%d failed after finishing its cells: %s" w.ws_slot shards reason;
      events.ev_fault ~slot:w.ws_slot ~index:None ~kills:0 ~reason
    | blame :: rest ->
      let k =
        match Hashtbl.find_opt kills blame with Some (k, _) -> k + 1 | None -> 1
      in
      Hashtbl.replace kills blame (k, reason);
      say "worker %d/%d died on %s (kill %d/%d): %s" w.ws_slot shards
        (name_of blame) k config.max_retries reason;
      events.ev_fault ~slot:w.ws_slot ~index:(Some blame) ~kills:k ~reason;
      if k >= config.max_retries then begin
        quarantined :=
          { q_index = blame; q_name = name_of blame; q_kills = k;
            q_reason = reason }
          :: !quarantined;
        say "quarantined %s after %d kills; %d cell(s) continue" (name_of blame)
          k (List.length rest);
        events.ev_quarantine ~index:blame ~name:(name_of blame) ~kills:k;
        w.ws_pending <- rest
      end);
    if w.ws_pending <> [] then begin
      let delay =
        Stdlib.min config.backoff_cap_s
          (config.backoff_base_s *. (2.0 ** float_of_int w.ws_attempt))
      in
      w.ws_attempt <- w.ws_attempt + 1;
      w.ws_respawn_at <- now () +. delay;
      w.ws_needs_respawn <- true;
      say "respawning worker %d/%d in %.2fs over %d cell(s)" w.ws_slot shards
        delay (List.length w.ws_pending)
    end
  in
  let accept w line =
    match parse line with
    | Error e -> (
      (* Not a row: a well-formed heartbeat is telemetry, anything else is
         garbage. Heartbeats do not reset the progress deadline — they
         prove the process is scheduled, not that the cell advances. *)
      match Tce_telem.Heartbeat.of_line line with
      | Some hb -> events.ev_heartbeat ~slot:w.ws_slot hb
      | None ->
        Unix.kill w.ws_pid Sys.sigkill;
        fault w (Printf.sprintf "streamed a garbage line (%s)" e))
    | Ok (i, row) ->
      if not (List.mem i w.ws_pending) then begin
        Unix.kill w.ws_pid Sys.sigkill;
        fault w
          (Printf.sprintf "streamed unexpected row index %d (%s)" i (name_of i))
      end
      else begin
        rows := (i, row) :: !rows;
        journal_line (to_line i row);
        events.ev_row ~slot:w.ws_slot ~index:i ~name:(name_of i);
        w.ws_pending <- List.filter (fun j -> j <> i) w.ws_pending;
        w.ws_deadline <-
          (match w.ws_pending with
          | [] -> now () +. deadline_for i (* grace to flush and exit *)
          | next :: _ -> now () +. deadline_for next)
      end
  in
  let drain w n =
    let i = ref 0 in
    while w.ws_alive && !i < n do
      let c = Bytes.get chunk !i in
      if c = '\n' then begin
        let line = Buffer.contents w.ws_buf in
        Buffer.clear w.ws_buf;
        accept w line
      end
      else Buffer.add_char w.ws_buf c;
      incr i
    done
  in
  let eof w =
    let partial = Buffer.length w.ws_buf > 0 in
    let pending = w.ws_pending in
    if partial then begin
      Buffer.clear w.ws_buf;
      fault w "wrote a partial final line"
    end
    else if pending <> [] then fault w "exited with cells still owed"
    else begin
      let st = reap w in
      match st with
      | Unix.WEXITED 0 -> ()
      | st ->
        (* all rows arrived and parsed; a dirty exit is logged, not fatal *)
        say "worker %d/%d finished its cells but %s (log: %s)" w.ws_slot shards
          (describe_status st) w.ws_log
    end
  in
  (* first wave *)
  List.iter
    (fun w -> if w.ws_needs_respawn then spawn_worker w)
    workers;
  let rec loop () =
    if !failure <> None then ()
    else begin
      let live = List.filter (fun w -> w.ws_alive) workers in
      let due_respawn =
        List.filter (fun w -> (not w.ws_alive) && w.ws_needs_respawn) workers
      in
      if live = [] && due_respawn = [] then ()
      else begin
        let t = now () in
        List.iter
          (fun w -> if w.ws_respawn_at <= t then spawn_worker w)
          due_respawn;
        let live = List.filter (fun w -> w.ws_alive) workers in
        let waiting =
          List.filter (fun w -> (not w.ws_alive) && w.ws_needs_respawn) workers
        in
        if live = [] && waiting = [] then loop ()
        else begin
          let t = now () in
          let next_event =
            List.fold_left
              (fun acc w -> Stdlib.min acc (w.ws_deadline -. t))
              (List.fold_left
                 (fun acc w -> Stdlib.min acc (w.ws_respawn_at -. t))
                 1.0 waiting)
              live
          in
          let timeout = Stdlib.min 1.0 (Stdlib.max 0.02 next_event) in
          let fds = List.map (fun w -> w.ws_fd) live in
          let err_fds =
            List.filter_map
              (fun w -> if w.ws_err_open then Some w.ws_err_fd else None)
              live
          in
          let ready, _, _ = select_restart (fds @ err_fds) [] [] timeout in
          List.iter
            (fun w ->
              if w.ws_err_open && List.mem w.ws_err_fd ready then
                match read_nb w.ws_err_fd chunk 0 (Bytes.length chunk) with
                | 0 ->
                  (* worker closed its stderr while still running *)
                  w.ws_err_open <- false;
                  (try Unix.close w.ws_err_fd with Unix.Unix_error _ -> ())
                | -1 -> ()
                | n -> err_write_lines w (Bytes.sub_string chunk 0 n))
            live;
          List.iter
            (fun w ->
              if w.ws_alive && List.mem w.ws_fd ready then
                match read_restart w.ws_fd chunk 0 (Bytes.length chunk) with
                | 0 -> eof w
                | n -> drain w n)
            live;
          (* hang detection: no progress before the in-flight cell's
             deadline means the worker is wedged — SIGKILL and blame *)
          let t = now () in
          List.iter
            (fun w ->
              if w.ws_alive && t > w.ws_deadline then begin
                Unix.kill w.ws_pid Sys.sigkill;
                fault w
                  (Printf.sprintf
                     "no progress for %.1fs (deadline for %s exceeded)"
                     (deadline_for
                        (match w.ws_pending with i :: _ -> i | [] -> 0))
                     (match w.ws_pending with
                     | i :: _ -> name_of i
                     | [] -> "final flush"))
              end)
            workers;
          events.ev_tick ();
          loop ()
        end
      end
    end
  in
  loop ();
  let close_logs () =
    List.iter
      (fun w ->
        err_close w;
        match w.ws_log_oc with
        | Some oc ->
          w.ws_log_oc <- None;
          close_out oc
        | None -> ())
      workers
  in
  match !failure with
  | Some e ->
    (* shoot any survivors before reporting *)
    List.iter
      (fun w ->
        if w.ws_alive then begin
          (try Unix.kill w.ws_pid Sys.sigkill with Unix.Unix_error _ -> ());
          ignore (reap w)
        end)
      workers;
    close_logs ();
    Error e
  | None ->
    close_logs ();
    let quarantined =
      List.sort (fun a b -> compare a.q_index b.q_index) !quarantined
    in
    Ok
      {
        rows = List.rev !rows;
        quarantined;
        resumed;
        respawns = !respawns;
        degraded_serial = !degraded;
      }
