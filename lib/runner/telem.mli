(** Fleet telemetry coordinator: wires the drivers (bench, faults, gate)
    into {!Tce_telem}.

    One [t] per run owns the metrics registry, the optional OpenMetrics
    snapshot file ([--telemetry-out]), the optional HTTP scrape endpoint
    ([--serve-metrics]), and the optional status board ([--status-board]).
    When none of the three is requested, {!create} returns [Ok None] and
    every caller threads [None] through — the run is then byte-identical
    to a build without telemetry (the supervisor gets
    {!Supervise.null_events}, workers get no [--heartbeat] flag).

    Metric catalog (all labeled with [driver], worker series additionally
    with [shard]; shard 0 is the parent: journal-resumed and in-process
    fallback cells): [tce_cells_scheduled], [tce_cells_completed_total],
    [tce_cells_resumed_total], [tce_worker_retries_total],
    [tce_quarantined_cells], [tce_degraded_cells_total],
    [tce_cell_wall_seconds] (histogram, parent-observed arrival gaps),
    [tce_run_throughput_cells_per_sec], [tce_run_eta_seconds],
    [tce_run_elapsed_seconds],
    [tce_worker_last_progress_timestamp_seconds],
    [tce_worker_cells_per_sec].  Completed + quarantined reconcile exactly
    with the scheduled total. *)

type options = {
  out : string option;  (** [--telemetry-out FILE] *)
  serve : int option;  (** [--serve-metrics PORT] (0 = ephemeral) *)
  board : bool;  (** [--status-board] *)
}

val no_options : options

type t

val create : driver:string -> total:int -> options -> (t option, string) result
(** [Ok None] when no telemetry was requested; [Error] only when the
    scrape endpoint cannot bind.  The endpoint is live before any worker
    spawns so a scraper never races the run. *)

val set_total : t -> int -> unit
val server_port : t -> int option

val events : t -> Supervise.events
(** The supervisor taps feeding this registry and board. *)

val resumed : t -> int -> unit
(** Record [n] journal-replayed cells (their rows also arrive via
    [ev_row ~slot:0]). *)

val heartbeat_args : t option -> slot:int -> string list
(** The worker argv fragment [["--heartbeat"; slot]], empty when
    telemetry is off. *)

val cell_done : t -> name:string -> unit
(** Serial-driver feed: one in-process cell completed (attributed to
    shard 0).  Safe to call from worker domains. *)

val gate_result : t -> ok:bool -> compared:int -> regressions:int -> unit
(** Publish the [--check] verdict as gauges ([tce_gate_pass],
    [tce_gate_compared], [tce_gate_regressions]); registers the families
    on first call. *)

val cache_stats : t -> Cache.stats -> unit
(** Publish the cell-cache counters ([tce_cache_hits],
    [tce_cache_misses], [tce_cache_read_bytes],
    [tce_cache_written_bytes]); registers the families on first call. *)

val snapshot : t -> string
(** Current OpenMetrics rendering. *)

val registry : t -> Tce_telem.Registry.t

val finish : t -> unit
(** Final board frame, final snapshot write, scrape endpoint shutdown. *)
