(** The [--trends] driver: walk the archived result history and render
    cross-run trend reports.

    Reads the last [n] bench runs from [results/history/] and fault
    campaigns from [results/campaigns/], builds per-workload time series
    (simulated cycles, check removal, deopts, host wall) plus suite-level
    and campaign-outcome series, flags anomalies with
    {!Tce_telem.Trends.detect}, and writes [trends.txt] and [trends.html]
    to [results/trends/].  Only runs sharing the newest run's config hash
    are compared; deterministic simulated metrics participate in anomaly
    detection while host wall times are informational. *)

val trends_dir : string
(** ["results/trends"] *)

val run :
  ?history_dir:string ->
  ?campaigns_dir:string ->
  ?out_dir:string ->
  ?n:int ->
  unit ->
  (int, string) result
(** Returns the number of anomalies flagged ([n] defaults to 20);
    [Error] when no readable history exists at all.  Prints the text
    report to stdout. *)
