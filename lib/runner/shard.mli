(** Multi-process roster sharding.

    A sharded run splits a deterministic work list (benchmark roster or
    fault-campaign matrix) across [N] worker {e processes} — not domains —
    so CI can parallelize across runner jobs, survive a worker crash with
    a per-shard log to point at, and still produce exactly the bytes a
    serial run would.

    The protocol has no scheduler state to share: both sides recompute the
    same deterministic schedule and the assignment is a pure function of
    [(shard, shards)].

    - The {e worker} ([--shard K/N] on the bench CLI) recomputes the
      roster and its {!Runner.longest_first_order}, takes the schedule
      positions congruent to [K-1 mod N] (round-robin over the
      longest-first order, so every shard gets a similar mix of long and
      short work), runs them serially, and streams one versioned
      single-line JSON envelope per result ({!Record.row_to_json} /
      {!Campaign.row_to_json}) on stdout. Stderr is free-form logging.
    - The {e parent} ([--shards N]) forks [N] workers of the current
      executable, redirects each worker's stderr to
      [LOG_DIR/shard-K.log], drains their stdouts through a select loop,
      and merges the rows by their roster index — each index must arrive
      exactly once, whatever order workers finish in.

    Simulated numbers are bit-identical to a serial run by construction
    (each pair still runs in its own engine); the merged document is
    byte-identical after {!Record.normalize_run} strips the host-dependent
    fields. *)

(** [parse_spec "K/N"] is [Ok (k, n)] with [1 <= k <= n] (shards are
    1-based on the CLI). *)
val parse_spec : string -> (int * int, string) result

(** Schedule positions assigned to [shard] (1-based) of [shards]: the
    round-robin subsequence [shard-1, shard-1+shards, ...] below [n],
    ascending. *)
val positions : shard:int -> shards:int -> n:int -> int list

(** [merge_rows ~what ~expected rows] places each [(index, row)] into a
    dense [expected]-slot array. [Error] when an index is out of range,
    arrives twice, or is missing — a sharding bug must fail the run, never
    truncate it silently. [what] names the row kind in errors. *)
val merge_rows :
  what:string -> expected:int -> (int * 'a) list -> ('a list, string) result

(** [run_workers ~argv_of_shard ~shards ~log_dir ()] forks one process of
    the current executable per shard ([argv_of_shard k] is the full argv
    for 1-based shard [k]), with stderr appended to [log_dir/shard-K.log],
    and returns every complete stdout line from all workers (arrival
    order). [Error] when any worker exits non-zero or writes a partial
    final line; the message names the shard and its log file. *)
val run_workers :
  argv_of_shard:(int -> string array) ->
  shards:int ->
  log_dir:string ->
  unit ->
  (string list, string) result

(** Default parent-side worker stderr directory (["results/shard_logs"]). *)
val default_log_dir : string

(* --- benchmark roster sharding --- *)

(** Worker side of [--bench --shard K/N]: run this shard's slice of [ws]
    (schedule recomputed from the committed baseline's costs) serially and
    stream one [bench-row] envelope per pair to [out]. *)
val bench_worker :
  ?config:Tce_engine.Engine.config ->
  shard:int ->
  shards:int ->
  out:out_channel ->
  Tce_workloads.Workload.t list ->
  unit

(** Parent side of [--bench --shards N]: fork [N] bench workers over [ws]
    (passing [worker_args] through to each, e.g. [--no-templates]), merge
    their rows and stamp the result like {!Runner.run_suite} would
    ([jobs = 1] per worker; [shards = N] recorded in the run).
    @raise Failure when a worker fails or the merge is incomplete. *)
val bench_parent :
  ?log_dir:string ->
  shards:int ->
  worker_args:string list ->
  Tce_workloads.Workload.t list ->
  Record.run
