(** Multi-process roster sharding.

    A sharded run splits a deterministic work list (benchmark roster or
    fault-campaign matrix) across [N] worker {e processes} — not domains —
    so CI can parallelize across runner jobs, survive a worker crash with
    a per-shard log to point at, and still produce exactly the bytes a
    serial run would.

    The protocol has no scheduler state to share: both sides recompute the
    same deterministic schedule and the assignment is a pure function of
    [(shard, shards)].

    - The {e worker} ([--shard K/N] on the bench CLI) recomputes the
      roster and its {!Runner.longest_first_order}, takes the schedule
      positions congruent to [K-1 mod N] (round-robin over the
      longest-first order, so every shard gets a similar mix of long and
      short work), runs them serially, and streams one versioned
      single-line JSON envelope per result ({!Record.row_to_json} /
      {!Campaign.row_to_json}) on stdout. Stderr is free-form logging.
    - The {e parent} ([--shards N]) forks [N] workers of the current
      executable, redirects each worker's stderr to
      [LOG_DIR/shard-K.log], drains their stdouts through a select loop,
      and merges the rows by their roster index — each index must arrive
      exactly once, whatever order workers finish in.

    Simulated numbers are bit-identical to a serial run by construction
    (each pair still runs in its own engine); the merged document is
    byte-identical after {!Record.normalize_run} strips the host-dependent
    fields.

    Since the supervision rework, the parent drivers run on {!Supervise}:
    workers are spawned with an {e explicit} index list
    ([--worker-indices i,j,k]) rather than recomputing [K/N] slices, so a
    replacement worker can cover exactly the cells its dead predecessor
    still owed. [--shard K/N] workers remain supported (CI compatibility)
    and delegate to the same per-index loop. *)

(** [parse_spec "K/N"] is [Ok (k, n)] with [1 <= k <= n] (shards are
    1-based on the CLI). *)
val parse_spec : string -> (int * int, string) result

(** Schedule positions assigned to [shard] (1-based) of [shards]: the
    round-robin subsequence [shard-1, shard-1+shards, ...] below [n],
    ascending. *)
val positions : shard:int -> shards:int -> n:int -> int list

(** [merge_rows ~what ~expected rows] places each [(index, row)] into a
    dense [expected]-slot array and returns the rows in index order.
    [Error] when an index is out of range, arrives twice, or is missing —
    a sharding bug must fail the run, never truncate it silently. [what]
    names the row kind in errors; [names] maps an index to its workload
    name so errors read [missing: fib, deopt-storm (indices 3, 54)]
    instead of bare indices. Indices in [quarantined] are allowed to be
    absent (the supervisor excluded them); their slots are skipped. *)
val merge_rows :
  ?names:(int -> string option) ->
  ?quarantined:int list ->
  what:string ->
  expected:int ->
  (int * 'a) list ->
  ('a list, string) result

(** [run_workers ~argv_of_shard ~shards ~log_dir ()] forks one process of
    [exe] (default the current executable) per shard ([argv_of_shard k] is
    the full argv for 1-based shard [k]), with stderr appended to
    [log_dir/shard-K.log], and returns every complete stdout line from all
    workers (arrival order). [Error] when any worker exits non-zero or
    writes a partial final line; the message names the shard and its log
    file. Restarts [select]/[read] on [EINTR]; if a spawn fails partway,
    the pipe/log fds of already-started workers are closed and the workers
    reaped before the exception propagates (no fd leak, no zombies).

    This is the {e unsupervised} driver: any worker failure voids the
    whole run. The bench/fault parents use {!Supervise.run} instead; this
    stays for simple fan-outs where all-or-nothing is the right policy. *)
val run_workers :
  ?exe:string ->
  argv_of_shard:(int -> string array) ->
  shards:int ->
  log_dir:string ->
  unit ->
  (string list, string) result

(** Default parent-side worker stderr directory (["results/shard_logs"]). *)
val default_log_dir : string

(* --- benchmark roster sharding --- *)

(** Worker side of [--bench --worker-indices i,j,k]: run exactly
    [indices] of [ws], in the given order, streaming one [bench-row]
    envelope per pair to [out] (flushed per row, so the parent loses only
    the in-flight cell if this process dies). [chaos] arms a deterministic
    fault for the chaos harness ({!Supervise.Chaos}); [beat] emits a
    [telem] heartbeat envelope before and after each cell ([--heartbeat]). *)
val bench_worker_indices :
  ?config:Tce_engine.Engine.config ->
  ?chaos:Supervise.Chaos.t ->
  ?beat:Tce_telem.Heartbeat.emitter ->
  indices:int list ->
  out:out_channel ->
  Tce_workloads.Workload.t list ->
  unit

(** Worker side of [--bench --shard K/N]: run this shard's slice of [ws]
    (schedule recomputed from the committed baseline's costs) serially and
    stream one [bench-row] envelope per pair to [out]. *)
val bench_worker :
  ?config:Tce_engine.Engine.config ->
  shard:int ->
  shards:int ->
  out:out_channel ->
  Tce_workloads.Workload.t list ->
  unit

(** Parent side of [--bench --shards N]: run [ws] across [N] supervised
    bench workers ({!Supervise.run}) — dead or hung workers are respawned
    over their missing indices, poison cells quarantine after
    [supervise.max_retries] kills, accepted rows are journaled to
    [journal_path] (default {!Store.bench_journal_path}), and [resume]
    replays a previous journal so only the remainder runs. [worker_args]
    pass through to each worker (e.g. [--no-templates]); [chaos] is the
    parent side of the chaos harness ([mode, seed]). The result is stamped
    like {!Runner.run_suite} ([jobs = 1] per worker; [shards],
    [quarantined] and [resumed_rows] recorded in the run).
    With [cache], the parent pre-resolves cell-cache hits before
    scheduling (hits ride the resume path, so workers only ever simulate
    misses; fresh worker rows are installed into the cache as they
    arrive) and the run records this invocation's hit/miss counts.
    [config] must describe the configuration the workers run under
    (i.e. agree with [worker_args]) — it keys the cache and drives the
    degraded in-process fallback.
    [exe]/[spawn] are test injection points.
    @raise Failure when supervision fails unrecoverably or the merge is
    incomplete (a missing index that is not quarantined). *)
val bench_parent :
  ?exe:string ->
  ?spawn:Supervise.spawn ->
  ?log_dir:string ->
  ?supervise:Supervise.config ->
  ?journal_path:string ->
  ?resume:string ->
  ?chaos:Supervise.Chaos.mode * int ->
  ?telem:Telem.t ->
  ?config:Tce_engine.Engine.config ->
  ?cache:Cache.t ->
  shards:int ->
  worker_args:string list ->
  Tce_workloads.Workload.t list ->
  Record.run
