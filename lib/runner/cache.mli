(** Content-addressed cell cache under [results/cache/].

    A {e cell} is one deterministic unit of simulation — a benchmark pair
    ([bench-row]) or a fault-campaign cell ([fault-cell]). Its cache key
    digests everything that can change the simulated result:

    - the workload identity (name, source digest, iteration count),
    - the full engine/machine configuration via {!Store.config_hash}
      (Table 2 core, Class Cache geometry, Class List size, tier-up
      thresholds, seed),
    - the record schema version, and
    - a fingerprint of the simulator binary itself (any rebuild
      invalidates the whole cache — re-simulating is always safe, a stale
      hit never is).

    Values are serialized row JSON with host wall clocks zeroed (cached
    rows are pure simulated data), written atomically so concurrent
    writers can only install complete files. Consulted by {!Runner},
    {!Gate}, {!Campaign} and {!Sweep}; a repeated identical run performs
    zero simulations. *)

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable bytes_read : int;
  mutable bytes_written : int;
}

type t

val default_max_bytes : int
(** Default size bound for {!prune} (256 MiB). *)

val create : ?dir:string -> unit -> t
(** A cache handle over [dir] (default {!Store.cache_dir}) with fresh
    zeroed counters. The directory is created lazily on first {!store}. *)

val stats : t -> stats

val dir : t -> string

val hit_ratio : stats -> float
(** [hits / (hits + misses)]; 0 when nothing was looked up. *)

val key : (string * string) list -> string
(** Digest of labelled identity parts, canonicalized by label sort — key
    equality is independent of the order the parts were listed in.
    @raise Invalid_argument on a duplicate label. *)

val bench_key : ?config:Tce_engine.Engine.config -> Tce_workloads.Workload.t
  -> string
(** The cache key of one benchmark pair under [config] (default
    {!Tce_engine.Engine.default_config}). *)

val fault_key :
  ?config:Tce_engine.Engine.config ->
  spec:string ->
  seed:int ->
  Tce_workloads.Workload.t ->
  string
(** The cache key of one fault-campaign cell: the bench identity plus the
    armed singleton [spec] and the cell's injector [seed]. *)

val find : t -> key:string -> Tce_obs.Json.t option
(** Look the key up; a hit touches the LRU clock and counts toward
    [hits]/[bytes_read], a missing or corrupt file is a miss (corrupt
    files are deleted). *)

val store : t -> key:string -> Tce_obs.Json.t -> unit
(** Install a row atomically (tmp + rename); rewriting an existing key is
    idempotent because cells are deterministic. *)

val size_bytes : ?dir:string -> unit -> int
(** Total bytes of cell files under [dir] (default {!Store.cache_dir}). *)

val prune : ?dir:string -> ?max_bytes:int -> unit -> int * int
(** Evict least-recently-used cells until the cache fits in [max_bytes]
    (default {!default_max_bytes}); returns [(files_removed,
    bytes_freed)]. *)

val print_stats : ?label:string -> stats -> unit
(** One summary line to stdout; silent when nothing was looked up. *)
