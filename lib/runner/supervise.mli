(** Self-healing sharded execution: a supervised worker pool.

    {!Shard.run_workers} is fire-and-pray: one crashed worker voids the
    whole run ([failwith]), and a hung worker blocks its [select] loop
    forever. This module replaces it for the sharded drivers with a
    supervisor that keeps a deterministic run alive through worker loss:

    - {e Liveness tracking} — each worker owes the supervisor one row per
      assigned cell, in order. The progress deadline for the in-flight
      cell is [cell_timeout_s] scaled by the cell's committed baseline
      cost relative to the roster median, so a hung worker (or one stuck
      on a pathological cell) is SIGKILLed and logged instead of blocking
      the drain forever.
    - {e Crash/hang recovery} — when a worker dies (crash, hang, garbage
      or truncated output), a replacement is spawned over only the
      {e missing} cell indices. Rows carry their roster index and every
      cell is deterministic, so the merged record is byte-identical to a
      serial run under any interleaving of failures.
    - {e Bounded retries, exponential backoff, quarantine} — the cell
      in flight when a worker dies is blamed; a cell that kills its
      worker [max_retries] times is quarantined (excluded from further
      scheduling and reported in the run envelope) so one poison cell
      cannot burn the whole campaign. Respawns back off exponentially.
    - {e Checkpoint/resume} — every accepted row is appended to a
      crash-safe journal (caller-provided sink); a later run can replay
      the journal ([resume_rows]) and schedule only the remainder.
    - {e Graceful degradation} — if forking itself fails (fd/memory
      pressure), the supervisor falls back to running the remaining
      cells in-process, serially, via [serial_run].

    The supervisor is generic over the row type: the benchmark driver
    instantiates it with [bench-row] envelopes, the fault campaign with
    [fault-cell] envelopes. State machine per worker lineage:

    {v spawn -> drain -> (EOF, all rows in)        -> done
                      -> (crash/garbage/partial)   -> blame in-flight cell
                      -> (deadline exceeded)       -> SIGKILL, blame
       blame -> kills(cell) >= max_retries         -> quarantine cell
             -> remaining cells                    -> backoff -> respawn
             -> spawn raises                       -> in-process serial v} *)

(** One schedulable cell: a roster/matrix index, a human name for
    diagnostics, and the committed baseline cost (arbitrary unit — only
    ratios matter) used to scale its progress deadline. *)
type task = { t_index : int; t_name : string; t_cost : float option }

type config = {
  max_retries : int;
      (** kills a single cell may cause before it is quarantined *)
  cell_timeout_s : float;
      (** base progress deadline per cell, seconds; scaled by the cell's
          cost relative to the roster median ([--supervise-timeout]) *)
  backoff_base_s : float;  (** first respawn delay for a worker lineage *)
  backoff_cap_s : float;  (** upper bound on the exponential backoff *)
  verbose : bool;  (** log supervision events to stderr *)
}

val default_config : config

(** EINTR-safe syscall wrappers: any signal (SIGCHLD from a dying worker,
    profiling timers) can interrupt [select]/[read]/[waitpid] mid-drain,
    and the only correct response is to retry — shared with
    {!Shard.run_workers}, exposed for the restart unit test. *)

val select_restart :
  Unix.file_descr list ->
  Unix.file_descr list ->
  Unix.file_descr list ->
  float ->
  Unix.file_descr list * Unix.file_descr list * Unix.file_descr list

val read_restart : Unix.file_descr -> Bytes.t -> int -> int -> int
val waitpid_restart : Unix.wait_flag list -> int -> int * Unix.process_status

(** A poisoned cell: excluded from the run after killing its worker
    [max_retries] times. *)
type quarantined = {
  q_index : int;
  q_name : string;
  q_kills : int;
  q_reason : string;  (** last failure the cell was blamed for *)
}

val quarantined_to_json : quarantined -> Tce_obs.Json.t
val quarantined_of_json : Tce_obs.Json.t -> (quarantined, string) result

(** Result of a supervised run. [rows] holds every completed cell
    (resumed rows first, then arrival order); indices absent from both
    [rows] and [quarantined] do not exist. *)
type 'row outcome = {
  rows : (int * 'row) list;
  quarantined : quarantined list;  (** in roster-index order *)
  resumed : int list;  (** indices replayed from a journal, ascending *)
  respawns : int;  (** worker processes spawned beyond the first wave *)
  degraded_serial : int;  (** cells that fell back to in-process execution *)
}

(** How a worker spawn is performed — injectable so tests can simulate
    fork failure. [default_spawn] is {!Unix.create_process} with stdin
    from [/dev/null]. Must return the child pid. *)
type spawn =
  exe:string ->
  argv:string array ->
  stdout:Unix.file_descr ->
  stderr:Unix.file_descr ->
  int

val default_spawn : spawn

(** Observability taps on the supervisor state machine, fed to the
    telemetry layer ([Tce_runner.Telem]). All callbacks run on the
    supervisor thread. [ev_row] reports slot 0 for rows that did not come
    from a spawned worker (journal replay, in-process fallback).
    [ev_heartbeat] fires for each well-formed [telem] envelope a worker
    interleaves with its row stream; heartbeats do not reset the progress
    deadline. The default {!null_events} makes every tap a no-op, keeping
    the supervised path byte-identical to a telemetry-free build. *)
type events = {
  ev_spawn : slot:int -> attempt:int -> pending:int -> unit;
  ev_row : slot:int -> index:int -> name:string -> unit;
  ev_heartbeat : slot:int -> Tce_telem.Heartbeat.t -> unit;
  ev_fault : slot:int -> index:int option -> kills:int -> reason:string -> unit;
  ev_quarantine : index:int -> name:string -> kills:int -> unit;
  ev_degraded : index:int -> unit;
  ev_tick : unit -> unit;
}

val null_events : events

(** [run ~config ~shards ~argv_of_indices ~parse ~to_line tasks] executes
    every task across [shards] supervised worker processes of [exe]
    (default [Sys.executable_name]).

    - [argv_of_indices ~slot ~attempt indices] is the full argv for a
      worker covering exactly [indices] (in execution order). [slot] is
      the 1-based worker lineage, [attempt] 0 for the first wave — the
      chaos harness uses them to aim a fault at one spawn.
    - [parse line] decodes one worker stdout line into [(index, row)];
      any [Error] is a worker fault (garbage output kills the worker).
    - [to_line index row] re-serializes a row for the journal.
    - [journal] receives every accepted row line (resumed rows first) —
      the crash-safe checkpoint stream.
    - [serial_run index] computes a row in-process — the fallback when
      [spawn] raises; omitting it turns fork failure into [Error].
    - [resume_rows] are journal-replayed rows: their indices are not
      scheduled, and they are re-journaled so the new journal stays a
      complete checkpoint.

    Tasks are assigned round-robin over the given task order (task [i]
    goes to lineage [i mod shards + 1]), so pass them schedule-ordered.
    Returns [Error] only for unrecoverable supervision failures (fork
    failed with no [serial_run]); quarantined cells are reported in the
    outcome, not as errors — strictness is the caller's policy. *)
val run :
  ?exe:string ->
  ?spawn:spawn ->
  ?journal:(string -> unit) ->
  ?serial_run:(int -> 'row) ->
  ?resume_rows:(int * 'row) list ->
  ?events:events ->
  config:config ->
  shards:int ->
  log_dir:string ->
  argv_of_indices:(slot:int -> attempt:int -> int list -> string array) ->
  parse:(string -> (int * 'row, string) result) ->
  to_line:(int -> 'row -> string) ->
  task list ->
  ('row outcome, string) result

(** Deterministic process-level chaos, for proving the supervisor: a
    worker armed with a chaos spec misbehaves in one of the ways a real
    container does. Modes (worker-side spec grammar [MODE:ARG]):

    - [crash-after:K] — exit(3) after emitting K rows;
    - [sigkill-after:K] — SIGKILL itself after K rows;
    - [hang-after:K] — emit K rows then sleep forever (deadline test);
    - [garbage-after:K] — emit K rows, then one non-envelope line;
    - [truncate-after:K] — emit K rows, then half of the next row and
      exit 0 (partial final line);
    - [poison:IDX] — die with exit(3) whenever about to run cell [IDX]
      (fires on every attempt: the quarantine scenario). *)
module Chaos : sig
  type mode =
    | Crash_after
    | Sigkill_after
    | Hang_after
    | Garbage_after
    | Truncate_after
    | Poison

  type t = { mode : mode; arg : int }

  val mode_name : mode -> string
  val parse_mode : string -> (mode, string) result

  (** Parse a worker-side spec ([MODE:ARG]). *)
  val parse : string -> (t, string) result

  val to_string : t -> string

  (** Parent side: the worker argv fragment (["--chaos"; spec]) for the
      spawn of [slot]/[attempt] given the whole first-wave assignment,
      derived deterministically from [seed]. Exactly one first-wave
      worker misbehaves ([seed] picks which, and after how many rows);
      recoverable modes never fire on respawns, [poison] arms every
      spawn with the same doomed cell. [None] when this spawn is clean. *)
  val worker_args :
    mode:mode ->
    seed:int ->
    assignment:int list array ->
    slot:int ->
    attempt:int ->
    string list option

  (** Worker side: call before computing the row for [index] with
      [emitted] rows already streamed. Depending on the armed mode this
      crashes, hangs, or emits garbage (never returning), returns
      [`Truncate] when the next row must be half-written, or [`Run]. *)
  val before_cell :
    t option -> emitted:int -> index:int -> out_channel -> [ `Run | `Truncate ]

  (** Emit the first half of [line] (no newline), flush, exit 0. *)
  val truncate_line : out_channel -> string -> 'a
end
