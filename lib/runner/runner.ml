(** Parallel workload execution (see runner.mli).

    Each workload is measured by {!Tce_metrics.Harness.run_pair_timed} in a
    freshly built engine; nothing in the stack below it is shared or
    mutable across instances (the simulator is deterministic given the
    source and config), so fanning workloads out across OCaml 5 domains
    cannot change any simulated number. Work is handed out through a
    single atomic index — domains race only for *which* workload they
    measure next, never over engine state — and each result lands in its
    input slot, so the output order is the input order regardless of
    scheduling. *)

module H = Tce_metrics.Harness

let default_jobs () = max 1 (Domain.recommended_domain_count ())

let simulate_one ?config (w : Tce_workloads.Workload.t) : Record.workload =
  let off, on, wall_off, wall_on =
    match config with
    | None -> H.run_pair_timed w
    | Some config -> H.run_pair_timed ~config w
  in
  Record.of_pair ~wall_off ~wall_on off on

(** One measured pair, optionally through the content-addressed cell
    cache: a hit returns the stored row (wall clocks zeroed — pure
    simulated data) without simulating; a miss simulates and installs the
    wall-zeroed row. Cached and fresh rows agree on every simulated field
    ({!Record.equal_deterministic}), asserted by the test suite. *)
let run_one ?cache ?config (w : Tce_workloads.Workload.t) : Record.workload =
  match cache with
  | None -> simulate_one ?config w
  | Some cache -> (
    let key = Cache.bench_key ?config w in
    let cached =
      Option.bind (Cache.find cache ~key) (fun j ->
          Result.to_option (Record.workload_of_json j))
    in
    match cached with
    | Some row -> row
    | None ->
      let row = simulate_one ?config w in
      Cache.store cache ~key (Record.workload_to_json (Record.zero_walls row));
      row)

(* --- longest-first scheduling --- *)

(** [longest_first_order ~cost xs] is a permutation of [0 .. n-1]: the
    position-[k] entry is the input index to run [k]-th. Workloads with an
    unknown cost come first (a new workload could be arbitrarily long, so
    it must not start last), then known costs descending; ties break on
    input index, so the order is a deterministic function of the inputs.
    Pure — exposed for the scheduler test. *)
let longest_first_order ~(cost : 'a -> float option) (xs : 'a list) : int array =
  let arr = Array.of_list xs in
  let key =
    Array.map (fun x -> match cost x with None -> infinity | Some c -> c) arr
  in
  let idx = Array.init (Array.length arr) (fun i -> i) in
  Array.sort
    (fun a b -> if key.(a) = key.(b) then compare a b else compare key.(b) key.(a))
    idx;
  idx

let parallel_map ?(jobs = default_jobs ()) (f : 'a -> 'b) (xs : 'a list) :
    'b list =
  let n = List.length xs in
  let jobs = min (max 1 jobs) (max 1 n) in
  if jobs <= 1 || n <= 1 then List.map f xs
  else begin
    let arr = Array.of_list xs in
    let results : 'b option array = Array.make n None in
    let failure : exn option Atomic.t = Atomic.make None in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n && Atomic.get failure = None then begin
          (try results.(i) <- Some (f arr.(i))
           with e ->
             (* first failure wins; the others drain the queue and stop *)
             ignore (Atomic.compare_and_set failure None (Some e)));
          loop ()
        end
      in
      loop ()
    in
    let domains = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join domains;
    (match Atomic.get failure with Some e -> raise e | None -> ());
    Array.to_list (Array.map Option.get results)
  end

(** Run [f] over [xs] visiting them in [order], returning results in the
    original input order. The permutation only changes *when* each
    workload runs, never its simulated numbers (engines are per-workload);
    with [jobs > 1] it keeps the long tail off the end of the schedule. *)
let map_in_order ~jobs ~(order : int array) (f : 'a -> 'b) (xs : 'a list) :
    'b list =
  let arr = Array.of_list xs in
  let permuted = List.map (fun i -> arr.(i)) (Array.to_list order) in
  let results = Array.of_list (parallel_map ~jobs f permuted) in
  let out = Array.make (Array.length arr) None in
  Array.iteri (fun slot i -> out.(i) <- Some results.(slot)) order;
  Array.to_list (Array.map Option.get out)

let run_workloads ?cache ?config ?(jobs = default_jobs ()) ?cost ?on_row
    (ws : Tce_workloads.Workload.t list) : Record.workload list =
  let run w =
    let r = run_one ?cache ?config w in
    (* [on_row] fires from whichever domain finished the workload; the
       observer (telemetry) is mutex-guarded and must not affect results. *)
    (match on_row with None -> () | Some f -> f r);
    r
  in
  match cost with
  | None -> parallel_map ~jobs run ws
  | Some cost ->
    let order = longest_first_order ~cost ws in
    map_in_order ~jobs ~order run ws

(** Profile the whole roster in parallel: one {!H.run_pair_profiled} per
    workload (fresh engines and a fresh profile per side — nothing shared,
    so domain fan-out cannot change any attributed number). Results come
    back in input order. *)
let run_profiles ?config ?(jobs = default_jobs ()) ?cost
    (ws : Tce_workloads.Workload.t list) : Tce_metrics.Harness.profiled list =
  let f w =
    match config with
    | None -> H.run_pair_profiled w
    | Some config -> H.run_pair_profiled ~config w
  in
  match cost with
  | None -> parallel_map ~jobs f ws
  | Some cost ->
    let order = longest_first_order ~cost ws in
    map_in_order ~jobs ~order f ws

let run_suite ?cache ?config ?jobs ?cost ?on_row
    (ws : Tce_workloads.Workload.t list) : Record.run =
  let t0 = Unix.gettimeofday () in
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  (* Schedule longest-first from the committed baseline's whole-run cycle
     counts (simulated cycles track host work closely); a missing or
     unreadable baseline just leaves the input order. *)
  let cost =
    match cost with Some c -> c | None -> Store.baseline_cost_of_workload ()
  in
  (* Count only this run's lookups, even when the handle is shared. *)
  let h0, m0 =
    match cache with
    | None -> (0, 0)
    | Some c ->
      let s = Cache.stats c in
      (s.Cache.hits, s.Cache.misses)
  in
  let workloads = run_workloads ?cache ?config ~jobs ~cost ?on_row ws in
  let host_wall_seconds = Unix.gettimeofday () -. t0 in
  let cache_stats =
    match cache with
    | None -> (0, 0)
    | Some c ->
      let s = Cache.stats c in
      (s.Cache.hits - h0, s.Cache.misses - m0)
  in
  Store.make_run ?config ~jobs ~cache_stats ~host_wall_seconds workloads
