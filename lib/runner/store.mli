(** Persistent benchmark-result store.

    Every runner invocation is saved twice: [BENCH_latest.json] is
    overwritten with the most recent run, and an immutable copy is
    appended to [results/history/] under a timestamp+SHA file name, so the
    perf trajectory of the repository accumulates across commits. *)

val latest_path : string  (** ["BENCH_latest.json"] *)

val attr_latest_path : string
(** ["ATTR_latest.json"] — suite attribution report (`--bench --attr`). *)

val prof_latest_path : string
(** ["PROF_latest.json"] — roster-wide cycle-attribution profiles
    (`--bench --profile`). *)

val time_latest_path : string
(** ["results/bench_time.json"] — machine-readable `--time` wall table. *)

val time_legacy_path : string
(** ["bench_time.json"] — the pre-v9 repo-root location, still read (not
    written) for one release. *)

val time_report_path : unit -> string
(** Where to read the latest time report from: {!time_latest_path} if it
    exists, else the legacy root path if that exists, else the new path. *)

val history_dir : string  (** ["results/history"] *)

val baseline_path : string  (** ["results/baseline.json"] *)

val journal_dir : string  (** ["results/journal"] *)

val bench_journal_path : string
(** ["results/journal/bench.jsonl"] — the supervised bench driver's
    crash-safe row journal (one [bench-row] envelope per line). *)

val faults_journal_path : string
(** ["results/journal/faults.jsonl"] — ditto for [fault-cell] envelopes. *)

val sweep_journal_path : string
(** ["results/journal/sweep.jsonl"] — ditto for [sweep-cell] envelopes. *)

val sweep_latest_path : string
(** ["SWEEP_latest.json"] — the most recent design-space sweep report. *)

val sweeps_dir : string
(** ["results/sweeps"] — immutable sweep-report history (like
    {!history_dir} for bench runs). *)

val cache_dir : string
(** ["results/cache"] — the content-addressed cell cache ({!Cache}). *)

(** Append-only, fsync-per-line journal of completed shard rows. A run
    that dies (parent crash, container OOM) leaves a replayable
    checkpoint behind: [--resume FILE] schedules only the cells the
    journal does not hold. *)
type journal

(** Truncate/create [path] (directories made as needed). *)
val journal_open : string -> journal

(** Append one envelope line + ['\n'], flush and fsync. *)
val journal_append : journal -> string -> unit

val journal_close : journal -> unit

(** Every complete (newline-terminated) line of a journal; a torn final
    line — the signature of a crash mid-append — is dropped, not an
    error. *)
val journal_lines : string -> (string list, string) result

(** [mkdir -p]: create [dir] and its missing parents. *)
val mkdir_p : string -> unit

(** Short git SHA of the working tree, or ["unknown"] outside a checkout. *)
val git_sha : unit -> string

(** Digest of every configuration parameter that can change simulated
    numbers (Table 2 core, Class Cache geometry, Class List size, tier-up
    thresholds, seed). Runs with different hashes are not comparable. *)
val config_hash : ?config:Tce_engine.Engine.config -> unit -> string

(** Current time as [YYYY-MM-DDTHH:MM:SSZ]. *)
val timestamp_utc : unit -> string

(** Stamp workload records with provenance (SHA, config hash, timestamp).
    [shards] (default 1) records how many worker processes produced the
    rows — needed so the gate's wall-time warnings compare like for like.
    [quarantined]/[resumed_rows] (default empty) carry the supervised
    driver's recovery provenance. *)
val make_run :
  ?config:Tce_engine.Engine.config ->
  ?shards:int ->
  ?quarantined:Supervise.quarantined list ->
  ?resumed_rows:int list ->
  ?cache_stats:int * int ->
  jobs:int ->
  host_wall_seconds:float ->
  Record.workload list ->
  Record.run

(** Write [latest] (default {!latest_path}) and append a history copy
    under [history] (default {!history_dir}; [""] disables history).
    Returns the history file path (or [latest] when history is off). *)
val save : ?latest:string -> ?history:string -> Record.run -> string

(** Persist a [prof-report] document to [latest] (default
    {!prof_latest_path}) and, when [history] is non-empty (default
    {!history_dir}), as an immutable [prof-<stamp>-<sha>.json] copy.
    Returns the history path (or [latest] when history is off). *)
val save_prof :
  ?latest:string ->
  ?history:string ->
  git_sha:string ->
  created_utc:string ->
  Tce_obs.Json.t ->
  string

(** The [--time] wall table as a versioned [time-report] document:
    workloads slowest-first, with combined and per-side wall seconds. *)
val time_report_json : Record.run -> Tce_obs.Json.t

(** Write the time report to [path] (default {!time_latest_path}),
    creating the parent directory; ["-"] writes to stdout. *)
val save_time_report : ?path:string -> Record.run -> unit

(** Parse a stored run (either the latest file, a history entry or a
    committed baseline). *)
val load : string -> (Record.run, string) result

(** Baseline whole-run cycles per workload name (off + on sides), as the
    cost function behind the runner's longest-first schedule. An absent or
    unreadable baseline (default {!baseline_path}) yields [fun _ -> None]. *)
val baseline_cost_of_workload :
  ?path:string -> unit -> Tce_workloads.Workload.t -> float option

(** Per-workload cycle/speedup table plus run provenance, to stdout. *)
val print_summary : Record.run -> unit
