(** Versioned benchmark records — the unit stored by {!Store} and compared
    by {!Gate}. See [lib/runner/README.md] for the JSON schema. *)

(** Per-workload result of one mechanism-off / mechanism-on pair. Every
    field except [wall_seconds] is computed by the deterministic simulator
    and is bit-identical across runs (serial or parallel). *)
type workload = {
  name : string;
  suite : string;
  iterations : int;
  checksum : string;  (** display string of the measured bench() value *)
  cycles_off : float;  (** steady-state simulated cycles, mechanism off *)
  cycles_on : float;  (** steady-state simulated cycles, mechanism on *)
  whole_cycles_off : float;
  whole_cycles_on : float;
  checks_off : int;  (** dynamic check instructions, mechanism off *)
  checks_on : int;
  checks_by_kind : (string * int * int) list;
      (** per-{!Tce_jit.Categories.check_kind} composition as
          [(kind, off, on)] dynamic counts, in kind order; each column sums
          to [checks_off] / [checks_on] exactly (asserted in {!of_pair}).
          Empty when decoded from a schema-v1 document. *)
  guards_off : int;  (** checks guarding object-load results (Fig. 2) *)
  guards_on : int;
  deopts_on : int;
  cc_exceptions_on : int;
  cc_accesses_on : int;
  cc_hit_rate_on : float;
  speedup_pct : float;  (** cycle improvement of on vs off (paper Fig. 8) *)
  check_removal_pct : float;  (** % of dynamic checks elided by the mechanism *)
  wall_seconds : float;
      (** host wall clock for the off+on pair — informational, host-dependent *)
  wall_seconds_off : float;
      (** host wall clock of the mechanism-off side alone (schema ≥ 3;
          0.0 when decoded from an older document) *)
  wall_seconds_on : float;  (** ditto, mechanism-on side (schema ≥ 3) *)
}

(** One runner invocation: provenance plus the per-workload records. *)
type run = {
  schema : int;
      (** envelope [schema_version] the run was created at / decoded from *)
  git_sha : string;
  config_hash : string;  (** digest of the simulated-core + engine config *)
  created_utc : string;
  jobs : int;
  shards : int;
      (** worker processes the run was split across (1 = in-process run;
          documents written before the field existed decode as 1) *)
  host_wall_seconds : float;
  workloads : workload list;
  quarantined : Supervise.quarantined list;
      (** poison cells the supervisor excluded after repeated worker
          kills, in roster order; their workloads are absent from
          [workloads]. Empty for clean runs — the field is omitted from
          the JSON then, so pre-supervision documents round-trip
          unchanged. *)
  resumed_rows : int list;
      (** roster indices replayed from a [--resume] journal instead of
          re-executed (provenance only — the rows are identical either
          way, and {!normalize_run} clears this) *)
  cache_hits : int;
      (** rows served from the content-addressed cell cache ({!Cache}).
          Provenance only — a cached row is byte-identical to a fresh
          one, but the count depends on local cache state, so
          {!normalize_run} clears it. Omitted from the JSON (with
          [cache_misses]) when both are zero, so uncached documents keep
          their old bytes. *)
  cache_misses : int;
      (** rows that had to be simulated despite the cache being on *)
}

(** Build a record from a measured off/on pair; [wall_off]/[wall_on] are
    the host wall-clock seconds each side took ([wall_seconds] is their
    sum).
    @raise Failure when the per-kind check attribution does not reconcile
    exactly with the [C_check] category counters (a compiler bug). *)
val of_pair :
  wall_off:float ->
  wall_on:float ->
  Tce_metrics.Harness.result ->
  Tce_metrics.Harness.result ->
  workload

(** Equality over the simulated fields only (ignores every wall-clock
    field) — the property the parallel runner asserts against a serial
    run. *)
val equal_deterministic : workload -> workload -> bool

(** Full structural equality (JSON round-trip checks). *)
val equal_workload : workload -> workload -> bool

val equal_run : run -> run -> bool

val workload_to_json : workload -> Tce_obs.Json.t
val workload_of_json : Tce_obs.Json.t -> (workload, string) result

(** Wrap / unwrap a run in the versioned {!Tce_obs.Export} envelope
    (kind ["bench-run"]). *)
val run_to_json : run -> Tce_obs.Json.t

val run_of_json : Tce_obs.Json.t -> (run, string) result

(** Wrap / unwrap one positioned workload row in a versioned envelope
    (kind ["bench-row"]) — the unit a shard worker streams back to the
    parent driver. [index] is the workload's position in the parent's
    roster, so rows merge deterministically whatever order workers finish
    in. *)
val row_to_json : index:int -> workload -> Tce_obs.Json.t

val row_of_json : Tce_obs.Json.t -> (int * workload, string) result

(** The row with its host wall clocks zeroed — the form rows take inside
    the cell cache (pure simulated data). *)
val zero_walls : workload -> workload

(** Strip every host-dependent field (timestamp, wall clocks, job/shard
    counts and resume provenance are all forced to fixed values) so two
    runs of the same simulator state serialize byte-identically — the
    property CI asserts between a serial run and a sharded (or
    chaos-recovered, or journal-resumed) one. Simulated numbers,
    quarantined cells and provenance that must match anyway (git SHA,
    config hash) are kept. *)
val normalize_run : run -> run
