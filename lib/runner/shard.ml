(** Multi-process roster sharding (see shard.mli for the protocol). *)

module J = Tce_obs.Json
module W = Tce_workloads.Workload

let default_log_dir = Filename.concat "results" "shard_logs"

let parse_spec s =
  match String.index_opt s '/' with
  | None -> Error (Printf.sprintf "bad shard spec %S (expected K/N)" s)
  | Some i -> (
    let k = String.sub s 0 i
    and n = String.sub s (i + 1) (String.length s - i - 1) in
    match (int_of_string_opt k, int_of_string_opt n) with
    | Some k, Some n when 1 <= k && k <= n -> Ok (k, n)
    | Some _, Some _ ->
      Error (Printf.sprintf "bad shard spec %S (need 1 <= K <= N)" s)
    | _ -> Error (Printf.sprintf "bad shard spec %S (expected K/N)" s))

let positions ~shard ~shards ~n =
  let rec go p acc = if p >= n then List.rev acc else go (p + shards) (p :: acc) in
  go (shard - 1) []

(** Render roster indices with their workload names when a namer is
    given — [missing: fib, deopt-storm (indices 3, 54)] diagnoses a
    partial run by itself, where bare indices need the roster decoded
    first. *)
let describe_indices ?names indices =
  let bare =
    Printf.sprintf "indices %s"
      (String.concat ", " (List.map string_of_int indices))
  in
  match names with
  | None -> bare
  | Some name_of -> (
    match List.filter_map name_of indices with
    | [] -> bare
    | named -> Printf.sprintf "%s (%s)" (String.concat ", " named) bare)

let merge_rows ?names ?(quarantined = []) ~what ~expected
    (rows : (int * 'a) list) : ('a list, string) result =
  let slots = Array.make expected None in
  let name_one i =
    match names with
    | Some name_of -> (
      match name_of i with
      | Some n -> Printf.sprintf "%s (index %d)" n i
      | None -> Printf.sprintf "index %d" i)
    | None -> Printf.sprintf "index %d" i
  in
  let rec place = function
    | [] ->
      let missing = ref [] in
      Array.iteri
        (fun i -> function
          | None -> if not (List.mem i quarantined) then missing := i :: !missing
          | Some _ -> ())
        slots;
      if !missing <> [] then
        Error
          (Printf.sprintf "%s merge: %d of %d rows missing: %s" what
             (List.length !missing) expected
             (describe_indices ?names (List.rev !missing)))
      else
        (* index order; quarantined holes are simply skipped *)
        Ok (List.filter_map Fun.id (Array.to_list slots))
    | (i, _) :: _ when i < 0 || i >= expected ->
      Error
        (Printf.sprintf "%s merge: row index %d out of range [0, %d)" what i
           expected)
    | (i, _) :: _ when slots.(i) <> None ->
      Error
        (Printf.sprintf "%s merge: %s arrived twice" what (name_one i))
    | (i, r) :: rest ->
      slots.(i) <- Some r;
      place rest
  in
  place rows

(* --- the worker-process driver --- *)

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
  end

type worker = {
  w_shard : int;
  w_pid : int;
  w_fd : Unix.file_descr;  (** read end of the worker's stdout pipe *)
  w_buf : Buffer.t;  (** partial trailing line *)
  w_log : string;
  mutable w_open : bool;
}

(** Fork the workers and drain their stdouts concurrently through a select
    loop — a worker blocked on a full pipe would otherwise deadlock the
    whole run. Lines are collected in arrival order; the row envelopes
    carry their own roster index, so arrival order is irrelevant to the
    merge. *)
let run_workers ?(exe = Sys.executable_name) ~argv_of_shard ~shards ~log_dir () :
    (string list, string) result =
  mkdir_p log_dir;
  let devnull = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
  let spawned = ref [] in
  let workers =
    (* fd hygiene: if any spawn fails partway (create_process raising on
       fd exhaustion is the classic), close the pipe fds of the workers
       already started and reap them — the caller sees one Error, not a
       leak of 2×(shards-1) descriptors and a zombie herd *)
    match
      List.init shards (fun i ->
          let shard = i + 1 in
          let log = Filename.concat log_dir (Printf.sprintf "shard-%d.log" shard) in
          let log_fd =
            Unix.openfile log [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
          in
          let r, w = Unix.pipe ~cloexec:false () in
          let pid =
            try Unix.create_process exe (argv_of_shard shard) devnull w log_fd
            with e ->
              Unix.close r;
              Unix.close w;
              Unix.close log_fd;
              raise e
          in
          Unix.close w;
          Unix.close log_fd;
          let worker =
            {
              w_shard = shard;
              w_pid = pid;
              w_fd = r;
              w_buf = Buffer.create 256;
              w_log = log;
              w_open = true;
            }
          in
          spawned := worker :: !spawned;
          worker)
    with
    | workers -> workers
    | exception e ->
      List.iter
        (fun w ->
          (try Unix.close w.w_fd with Unix.Unix_error _ -> ());
          (try Unix.kill w.w_pid Sys.sigkill with Unix.Unix_error _ -> ());
          ignore (Supervise.waitpid_restart [] w.w_pid))
        !spawned;
      Unix.close devnull;
      raise e
  in
  Unix.close devnull;
  let lines = ref [] in
  let chunk = Bytes.create 65536 in
  let drain w n =
    for i = 0 to n - 1 do
      let c = Bytes.get chunk i in
      if c = '\n' then begin
        lines := Buffer.contents w.w_buf :: !lines;
        Buffer.clear w.w_buf
      end
      else Buffer.add_char w.w_buf c
    done
  in
  let rec loop () =
    match List.filter (fun w -> w.w_open) workers with
    | [] -> ()
    | live ->
      let fds = List.map (fun w -> w.w_fd) live in
      (* EINTR-safe: a signal mid-drain (SIGCHLD from a finishing worker,
         an interval timer) must restart the wait, not kill the parent *)
      let ready, _, _ = Supervise.select_restart fds [] [] (-1.0) in
      List.iter
        (fun w ->
          if List.mem w.w_fd ready then
            match Supervise.read_restart w.w_fd chunk 0 (Bytes.length chunk) with
            | 0 ->
              Unix.close w.w_fd;
              w.w_open <- false
            | n -> drain w n)
        live;
      loop ()
  in
  loop ();
  let failures =
    List.filter_map
      (fun w ->
        let describe st =
          match st with
          | Unix.WEXITED 0 -> None
          | Unix.WEXITED c -> Some (Printf.sprintf "exited %d" c)
          | Unix.WSIGNALED s -> Some (Printf.sprintf "killed by signal %d" s)
          | Unix.WSTOPPED s -> Some (Printf.sprintf "stopped by signal %d" s)
        in
        let _, st = Supervise.waitpid_restart [] w.w_pid in
        match describe st with
        | Some what ->
          Some (Printf.sprintf "shard %d/%d %s (log: %s)" w.w_shard shards what w.w_log)
        | None ->
          if Buffer.length w.w_buf > 0 then
            Some
              (Printf.sprintf
                 "shard %d/%d wrote a partial final line (log: %s)" w.w_shard
                 shards w.w_log)
          else None)
      workers
  in
  if failures <> [] then Error (String.concat "; " failures)
  else Ok (List.rev !lines)

(* --- benchmark roster sharding --- *)

(** The shard's roster indices, longest-first within the shard: positions
    [shard-1, shard-1+N, ...] of the shared longest-first schedule mapped
    back through the permutation. Both sides compute this from the same
    inputs (roster + committed baseline costs), so no assignment crosses
    the process boundary. *)
let bench_indices ~shard ~shards (ws : W.t list) : int list =
  let order =
    Runner.longest_first_order ~cost:(Store.baseline_cost_of_workload ()) ws
  in
  List.map
    (fun p -> order.(p))
    (positions ~shard ~shards ~n:(Array.length order))

(** Run exactly [indices] of [ws] (in the given order), one [bench-row]
    envelope per pair on [out] — the unit of work the supervised parent
    hands a (re)spawned worker. [chaos] arms the deterministic fault the
    chaos harness asked this spawn to exhibit. *)
let bench_worker_indices ?config ?chaos ?beat ~indices ~out (ws : W.t list) :
    unit =
  let arr = Array.of_list ws in
  let emitted = ref 0 in
  List.iter
    (fun i ->
      if i < 0 || i >= Array.length arr then
        failwith (Printf.sprintf "worker index %d out of range [0, %d)" i
                    (Array.length arr));
      let mode = Supervise.Chaos.before_cell chaos ~emitted:!emitted ~index:i out in
      (match beat with
      | Some e -> Tce_telem.Heartbeat.beat_start e ~index:i ~name:arr.(i).W.name
      | None -> ());
      let row = Runner.run_one ?config arr.(i) in
      let line = J.to_string (Record.row_to_json ~index:i row) in
      (match mode with
      | `Truncate -> Supervise.Chaos.truncate_line out line
      | `Run ->
        output_string out line;
        output_char out '\n';
        (* flush per row: the parent streams progress and a crashed worker
           loses only its in-flight pair *)
        flush out);
      (match beat with
      | Some e -> Tce_telem.Heartbeat.beat_cell_done e
      | None -> ());
      incr emitted)
    indices;
  match beat with Some e -> Tce_telem.Heartbeat.beat_done e | None -> ()

let bench_worker ?config ~shard ~shards ~out (ws : W.t list) : unit =
  bench_worker_indices ?config ~indices:(bench_indices ~shard ~shards ws) ~out
    ws

let bench_parent ?exe ?spawn ?(log_dir = default_log_dir)
    ?(supervise = Supervise.default_config) ?(journal_path = Store.bench_journal_path)
    ?resume ?chaos ?telem ?config ?cache ~shards ~worker_args (ws : W.t list) :
    Record.run =
  let t0 = Unix.gettimeofday () in
  (* Snapshot so a shared cache handle yields this invocation's counts. *)
  let h0, m0 =
    match cache with
    | None -> (0, 0)
    | Some c ->
      let s = Cache.stats c in
      (s.Cache.hits, s.Cache.misses)
  in
  let names = List.map (fun (w : W.t) -> w.W.name) ws in
  let arr = Array.of_list ws in
  let cost = Store.baseline_cost_of_workload () in
  let order = Runner.longest_first_order ~cost ws in
  let tasks =
    List.map
      (fun pos ->
        let i = order.(pos) in
        {
          Supervise.t_index = i;
          t_name = arr.(i).W.name;
          t_cost = cost arr.(i);
        })
      (List.init (Array.length order) Fun.id)
  in
  let assignment =
    let a = Array.make (max 1 shards) [] in
    List.iteri
      (fun pos (t : Supervise.task) ->
        a.(pos mod max 1 shards) <- t.Supervise.t_index :: a.(pos mod max 1 shards))
      tasks;
    Array.map List.rev a
  in
  let argv_of_indices ~slot ~attempt indices =
    let chaos_args =
      match chaos with
      | None -> []
      | Some (mode, seed) ->
        Option.value ~default:[]
          (Supervise.Chaos.worker_args ~mode ~seed ~assignment ~slot ~attempt)
    in
    Array.of_list
      (Sys.executable_name :: "--bench"
       :: "--worker-indices"
       :: String.concat "," (List.map string_of_int indices)
       :: (chaos_args @ Telem.heartbeat_args telem ~slot @ worker_args @ names))
  in
  let parse line =
    Result.map_error
      (fun e -> Printf.sprintf "bad bench-row: %s" e)
      (Result.bind (J.of_string line) Record.row_of_json)
  in
  let to_line i row = J.to_string (Record.row_to_json ~index:i row) in
  (* Resume: replay every complete row of the crashed run's journal;
     only the remainder is scheduled. *)
  let resume_rows =
    match resume with
    | None -> []
    | Some path -> (
      match Store.journal_lines path with
      | Error e -> failwith (Printf.sprintf "--resume %s: %s" path e)
      | Ok lines ->
        List.filter_map
          (fun line -> Result.to_option (parse line))
          lines)
  in
  (* Cell-cache keys, derived once per index (the key digests the
     workload source). Forced only when a cache was given. *)
  let keys =
    lazy (Array.init (Array.length arr) (fun i -> Cache.bench_key ?config arr.(i)))
  in
  let key_of i = (Lazy.force keys).(i) in
  (* Cache pre-resolution: indices the journal did not already cover are
     looked up in the cell cache. Hits join [resume_rows] — the
     supervisor treats them exactly like journal-replayed rows (not
     scheduled, re-journaled) — but are subtracted from the record's
     resume provenance below; misses are simulated by the workers and
     their fresh rows installed via the [parse] wrapper. *)
  let journal_covered = List.map fst resume_rows in
  let cached_rows =
    match cache with
    | None -> []
    | Some c ->
      List.filter_map
        (fun i ->
          if List.mem i journal_covered then None
          else
            Option.bind (Cache.find c ~key:(key_of i)) (fun j ->
                Option.map
                  (fun row -> (i, row))
                  (Result.to_option (Record.workload_of_json j))))
        (List.init (Array.length arr) Fun.id)
  in
  let cached_indices = List.map fst cached_rows in
  let resume_rows = resume_rows @ cached_rows in
  let install c i row =
    Cache.store c ~key:(key_of i)
      (Record.workload_to_json (Record.zero_walls row))
  in
  let parse =
    match cache with
    | None -> parse
    | Some c -> (
      fun line ->
        match parse line with
        | Ok (i, row) as ok ->
          install c i row;
          ok
        | Error _ as e -> e)
  in
  let events =
    match telem with
    | Some t -> Telem.events t
    | None -> Supervise.null_events
  in
  let journal = Store.journal_open journal_path in
  let outcome =
    Fun.protect
      ~finally:(fun () -> Store.journal_close journal)
      (fun () ->
        Supervise.run ?exe ?spawn ~config:supervise ~shards ~log_dir
          ~journal:(Store.journal_append journal)
          ~serial_run:(fun i ->
            let row = Runner.simulate_one ?config arr.(i) in
            (match cache with Some c -> install c i row | None -> ());
            row)
          ~resume_rows ~events ~argv_of_indices ~parse ~to_line tasks)
  in
  match outcome with
  | Error e -> failwith ("sharded bench failed: " ^ e)
  | Ok o -> (
    let resumed =
      List.filter (fun i -> not (List.mem i cached_indices)) o.Supervise.resumed
    in
    (match telem with
    | Some t -> Telem.resumed t (List.length resumed)
    | None -> ());
    let name_of i =
      if i >= 0 && i < Array.length arr then Some arr.(i).W.name else None
    in
    let quarantined_indices =
      List.map (fun q -> q.Supervise.q_index) o.Supervise.quarantined
    in
    match
      merge_rows ~names:name_of ~quarantined:quarantined_indices
        ~what:"bench-row" ~expected:(List.length ws) o.Supervise.rows
    with
    | Error e -> failwith e
    | Ok workloads ->
      let cache_stats =
        match cache with
        | None -> (0, 0)
        | Some c ->
          let s = Cache.stats c in
          (s.Cache.hits - h0, s.Cache.misses - m0)
      in
      Store.make_run ~shards ~jobs:1 ~quarantined:o.Supervise.quarantined
        ~resumed_rows:resumed ~cache_stats
        ~host_wall_seconds:(Unix.gettimeofday () -. t0)
        workloads)
