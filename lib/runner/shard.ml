(** Multi-process roster sharding (see shard.mli for the protocol). *)

module J = Tce_obs.Json
module W = Tce_workloads.Workload

let default_log_dir = Filename.concat "results" "shard_logs"

let parse_spec s =
  match String.index_opt s '/' with
  | None -> Error (Printf.sprintf "bad shard spec %S (expected K/N)" s)
  | Some i -> (
    let k = String.sub s 0 i
    and n = String.sub s (i + 1) (String.length s - i - 1) in
    match (int_of_string_opt k, int_of_string_opt n) with
    | Some k, Some n when 1 <= k && k <= n -> Ok (k, n)
    | Some _, Some _ ->
      Error (Printf.sprintf "bad shard spec %S (need 1 <= K <= N)" s)
    | _ -> Error (Printf.sprintf "bad shard spec %S (expected K/N)" s))

let positions ~shard ~shards ~n =
  let rec go p acc = if p >= n then List.rev acc else go (p + shards) (p :: acc) in
  go (shard - 1) []

let merge_rows ~what ~expected (rows : (int * 'a) list) :
    ('a list, string) result =
  let slots = Array.make expected None in
  let rec place = function
    | [] ->
      let missing = ref [] in
      Array.iteri
        (fun i -> function None -> missing := i :: !missing | Some _ -> ())
        slots;
      if !missing <> [] then
        Error
          (Printf.sprintf "%s merge: %d of %d rows missing (indices %s)" what
             (List.length !missing) expected
             (String.concat ", "
                (List.map string_of_int (List.rev !missing))))
      else Ok (List.map Option.get (Array.to_list slots))
    | (i, _) :: _ when i < 0 || i >= expected ->
      Error
        (Printf.sprintf "%s merge: row index %d out of range [0, %d)" what i
           expected)
    | (i, _) :: _ when slots.(i) <> None ->
      Error (Printf.sprintf "%s merge: row index %d arrived twice" what i)
    | (i, r) :: rest ->
      slots.(i) <- Some r;
      place rest
  in
  place rows

(* --- the worker-process driver --- *)

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
  end

type worker = {
  w_shard : int;
  w_pid : int;
  w_fd : Unix.file_descr;  (** read end of the worker's stdout pipe *)
  w_buf : Buffer.t;  (** partial trailing line *)
  w_log : string;
  mutable w_open : bool;
}

(** Fork the workers and drain their stdouts concurrently through a select
    loop — a worker blocked on a full pipe would otherwise deadlock the
    whole run. Lines are collected in arrival order; the row envelopes
    carry their own roster index, so arrival order is irrelevant to the
    merge. *)
let run_workers ~argv_of_shard ~shards ~log_dir () :
    (string list, string) result =
  mkdir_p log_dir;
  let exe = Sys.executable_name in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
  let workers =
    List.init shards (fun i ->
        let shard = i + 1 in
        let log = Filename.concat log_dir (Printf.sprintf "shard-%d.log" shard) in
        let log_fd =
          Unix.openfile log [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
        in
        let r, w = Unix.pipe ~cloexec:false () in
        let pid =
          Unix.create_process exe (argv_of_shard shard) devnull w log_fd
        in
        Unix.close w;
        Unix.close log_fd;
        {
          w_shard = shard;
          w_pid = pid;
          w_fd = r;
          w_buf = Buffer.create 256;
          w_log = log;
          w_open = true;
        })
  in
  Unix.close devnull;
  let lines = ref [] in
  let chunk = Bytes.create 65536 in
  let drain w n =
    for i = 0 to n - 1 do
      let c = Bytes.get chunk i in
      if c = '\n' then begin
        lines := Buffer.contents w.w_buf :: !lines;
        Buffer.clear w.w_buf
      end
      else Buffer.add_char w.w_buf c
    done
  in
  let rec loop () =
    match List.filter (fun w -> w.w_open) workers with
    | [] -> ()
    | live ->
      let fds = List.map (fun w -> w.w_fd) live in
      let ready, _, _ = Unix.select fds [] [] (-1.0) in
      List.iter
        (fun w ->
          if List.mem w.w_fd ready then
            match Unix.read w.w_fd chunk 0 (Bytes.length chunk) with
            | 0 ->
              Unix.close w.w_fd;
              w.w_open <- false
            | n -> drain w n)
        live;
      loop ()
  in
  loop ();
  let failures =
    List.filter_map
      (fun w ->
        let describe st =
          match st with
          | Unix.WEXITED 0 -> None
          | Unix.WEXITED c -> Some (Printf.sprintf "exited %d" c)
          | Unix.WSIGNALED s -> Some (Printf.sprintf "killed by signal %d" s)
          | Unix.WSTOPPED s -> Some (Printf.sprintf "stopped by signal %d" s)
        in
        let _, st = Unix.waitpid [] w.w_pid in
        match describe st with
        | Some what ->
          Some (Printf.sprintf "shard %d/%d %s (log: %s)" w.w_shard shards what w.w_log)
        | None ->
          if Buffer.length w.w_buf > 0 then
            Some
              (Printf.sprintf
                 "shard %d/%d wrote a partial final line (log: %s)" w.w_shard
                 shards w.w_log)
          else None)
      workers
  in
  if failures <> [] then Error (String.concat "; " failures)
  else Ok (List.rev !lines)

(* --- benchmark roster sharding --- *)

(** The shard's roster indices, longest-first within the shard: positions
    [shard-1, shard-1+N, ...] of the shared longest-first schedule mapped
    back through the permutation. Both sides compute this from the same
    inputs (roster + committed baseline costs), so no assignment crosses
    the process boundary. *)
let bench_indices ~shard ~shards (ws : W.t list) : int list =
  let order =
    Runner.longest_first_order ~cost:(Store.baseline_cost_of_workload ()) ws
  in
  List.map
    (fun p -> order.(p))
    (positions ~shard ~shards ~n:(Array.length order))

let bench_worker ?config ~shard ~shards ~out (ws : W.t list) : unit =
  let arr = Array.of_list ws in
  List.iter
    (fun i ->
      let row = Runner.run_one ?config arr.(i) in
      output_string out (J.to_string (Record.row_to_json ~index:i row));
      output_char out '\n';
      (* flush per row: the parent streams progress and a crashed worker
         loses only its in-flight pair *)
      flush out)
    (bench_indices ~shard ~shards ws)

let bench_parent ?(log_dir = default_log_dir) ~shards ~worker_args
    (ws : W.t list) : Record.run =
  let t0 = Unix.gettimeofday () in
  let names = List.map (fun (w : W.t) -> w.W.name) ws in
  let argv_of_shard k =
    Array.of_list
      (Sys.executable_name :: "--bench"
       :: "--shard" :: Printf.sprintf "%d/%d" k shards
       :: (worker_args @ names))
  in
  let parse line =
    match Result.bind (J.of_string line) Record.row_of_json with
    | Ok row -> row
    | Error e -> failwith (Printf.sprintf "bad bench-row from worker: %s" e)
  in
  match run_workers ~argv_of_shard ~shards ~log_dir () with
  | Error e -> failwith ("sharded bench failed: " ^ e)
  | Ok lines -> (
    let rows = List.map parse lines in
    match merge_rows ~what:"bench-row" ~expected:(List.length ws) rows with
    | Error e -> failwith e
    | Ok workloads ->
      Store.make_run ~shards ~jobs:1
        ~host_wall_seconds:(Unix.gettimeofday () -. t0)
        workloads)
