(** Fault-injection campaign driver (see campaign.mli). *)

module E = Tce_engine.Engine
module W = Tce_workloads.Workload
module Injector = Tce_fault.Injector
module Point = Tce_fault.Point
module Spec = Tce_fault.Spec
module J = Tce_obs.Json

let latest_path = "FAULTS_latest.json"
let campaigns_dir = Filename.concat "results" "campaigns"
let default_seed = 0xFA017

type outcome =
  | Wrong
  | Detected_recovered
  | Degraded
  | Masked
  | Not_exercised

let outcome_name = function
  | Wrong -> "wrong"
  | Detected_recovered -> "detected-recovered"
  | Degraded -> "degraded"
  | Masked -> "masked"
  | Not_exercised -> "not-exercised"

let outcome_of_name = function
  | "wrong" -> Some Wrong
  | "detected-recovered" -> Some Detected_recovered
  | "degraded" -> Some Degraded
  | "masked" -> Some Masked
  | "not-exercised" -> Some Not_exercised
  | _ -> None

type cell = {
  workload : string;
  point : string;  (** fault-point CLI name, {!Tce_fault.Point.name} *)
  spec : string;  (** the singleton spec the cell ran under *)
  seed : int;  (** injector seed (replay: [--fault-spec spec --fault-seed seed]) *)
  fires : int;
  detections : int;
  lost_victims : int;
  delivered_late : int;
  deopts_delta : int;  (** vs the clean mechanism-on run *)
  cycles_delta : float;  (** vs the clean mechanism-on run *)
  outcome : outcome;
  detail : string;  (** non-empty for [Wrong]: what went wrong *)
}

type t = {
  campaign_seed : int;
  spec : string;  (** the base spec the matrix was derived from *)
  git_sha : string;
  created_utc : string;
  jobs : int;
  shards : int;  (** worker processes the matrix was split across (1 = in-process) *)
  host_wall_seconds : float;
  cells : cell list;
  quarantined : Supervise.quarantined list;
      (** matrix cells the supervisor excluded after repeated worker
          kills; absent from [cells] *)
  resumed_rows : int list;  (** matrix indices replayed from a journal *)
}

(* --- the differential semantics oracle --- *)

(** Everything a guest program can observe, plus the timing/recovery
    counters the outcome classifier needs. [observable] folds the printed
    output together with the display string of {e every} bench() iteration
    (not just the measured one), so a wrong answer in any warm-up iteration
    is caught too. *)
type observation = {
  observable : string;
  cycles : float;
  deopts : int;
  cc_exceptions : int;
}

let observe ~config (w : W.t) : observation =
  let t = E.of_source ~config w.W.source in
  E.set_measuring t true;
  ignore (E.run_main t);
  let buf = Buffer.create 128 in
  for _ = 1 to w.W.iterations do
    let v = E.call_by_name t "bench" [||] in
    Buffer.add_string buf (Tce_vm.Heap.to_display_string t.E.heap v);
    Buffer.add_char buf '\n'
  done;
  let c = t.E.counters in
  {
    observable =
      E.output t ^ "\x00" ^ Digest.to_hex (Digest.string (Buffer.contents buf));
    cycles = float_of_int (E.opt_cycles t) +. E.baseline_cycles t;
    deopts = c.Tce_machine.Counters.deopts;
    cc_exceptions = c.Tce_machine.Counters.cc_exception_deopts;
  }

(** The per-cell injector seed: a deterministic function of the campaign
    seed and the cell's identity only, so the schedule (jobs, domain
    interleaving) can never change which faults a cell sees. *)
let cell_seed ~campaign_seed ~workload ~point =
  let h = Hashtbl.hash (workload, point) in
  campaign_seed lxor (h * 0x9E3779B1) lxor ((h lsl 17) lor 0x2545F491)

let run_cell ~campaign_seed ~(reference : observation) ~(clean : observation)
    (w : W.t) (rule : Spec.rule) : cell =
  let point = Point.name rule.Spec.point in
  let seed = cell_seed ~campaign_seed ~workload:w.W.name ~point in
  let spec = [ rule ] in
  let inj = Injector.create ~seed spec in
  let config = { E.default_config with E.mechanism = true; fault = inj } in
  let obs, crash =
    try (Some (observe ~config w), "") with e -> (None, Printexc.to_string e)
  in
  let fires = Injector.total_fires inj in
  let detections = Injector.detections inj in
  let outcome, detail, deopts_delta, cycles_delta =
    match obs with
    | None ->
      (* An injected fault must degrade gracefully, never crash the
         engine: a crash counts as a campaign failure like a wrong
         answer. *)
      (Wrong, "crash: " ^ crash, 0, 0.0)
    | Some o ->
      let dd = o.deopts - clean.deopts in
      let cd = o.cycles -. clean.cycles in
      if fires = 0 then (Not_exercised, "", dd, cd)
      else if o.observable <> reference.observable then
        (Wrong, "observable result differs from checks-on reference", dd, cd)
      else if detections > 0 then (Detected_recovered, "", dd, cd)
      else if
        dd <> 0 || o.cc_exceptions <> clean.cc_exceptions || cd <> 0.0
      then (Degraded, "", dd, cd)
      else (Masked, "", dd, cd)
  in
  {
    workload = w.W.name;
    point;
    spec = Spec.to_string spec;
    seed;
    fires;
    detections;
    lost_victims = List.length (Injector.lost inj);
    delivered_late = Injector.delivered_late inj;
    deopts_delta;
    cycles_delta;
    outcome;
    detail;
  }

(** The campaign matrix in its canonical order: workload-major, rule-minor
    (cell [i] is workload [i / n_rules], rule [i mod n_rules]). Shard
    assignment and row merging both index into this order, so it must stay
    a pure function of [(spec, ws)]. *)
let matrix ~(spec : Spec.t) (ws : W.t list) : (W.t * Spec.rule) list =
  List.concat_map (fun w -> List.map (fun rule -> (w, rule)) spec) ws

(** Phase 1 — per workload: the checks-on reference observation (the
    differential oracle's ground truth) and a clean mechanism-on run (the
    yardstick for Degraded vs Masked). The two must already agree: a
    mismatch here is an engine bug, not an injection outcome. *)
let prep_workloads ~jobs (ws : W.t list) =
  Runner.parallel_map ~jobs
    (fun w ->
      let reference =
        observe ~config:{ E.default_config with E.mechanism = false } w
      in
      let clean =
        observe ~config:{ E.default_config with E.mechanism = true } w
      in
      if reference.observable <> clean.observable then
        failwith
          (Printf.sprintf
             "%s: mechanism-on output differs from the checks-on reference \
              with no faults injected"
             w.W.name);
      (w.W.name, (reference, clean)))
    ws

let wrong t = List.filter (fun c -> c.outcome = Wrong) t.cells

(* --- persistence --- *)

let json_of_cell (c : cell) : J.t =
  J.Obj
    [
      ("workload", J.Str c.workload);
      ("point", J.Str c.point);
      ("spec", J.Str c.spec);
      ("seed", J.Int c.seed);
      ("fires", J.Int c.fires);
      ("detections", J.Int c.detections);
      ("lost_victims", J.Int c.lost_victims);
      ("delivered_late", J.Int c.delivered_late);
      ("deopts_delta", J.Int c.deopts_delta);
      ("cycles_delta", J.Float c.cycles_delta);
      ("outcome", J.Str (outcome_name c.outcome));
      ("detail", J.Str c.detail);
    ]

let cell_of_json (j : J.t) : (cell, string) result =
  let str k = Option.bind (J.member k j) J.to_str in
  let int k = Option.bind (J.member k j) J.to_int in
  let flt k = Option.bind (J.member k j) J.to_float in
  match
    ( str "workload", str "point", str "spec", int "seed", int "fires",
      int "detections", int "lost_victims", int "delivered_late",
      int "deopts_delta", flt "cycles_delta",
      Option.bind (str "outcome") outcome_of_name, str "detail" )
  with
  | ( Some workload, Some point, Some spec, Some seed, Some fires,
      Some detections, Some lost_victims, Some delivered_late,
      Some deopts_delta, Some cycles_delta, Some outcome, Some detail ) ->
    Ok
      {
        workload; point; spec; seed; fires; detections; lost_victims;
        delivered_late; deopts_delta; cycles_delta; outcome; detail;
      }
  | _ -> Error "malformed fault-campaign cell"

(* --- the in-process driver --- *)

let run ?cache ?(spec = Spec.default) ?(seed = default_seed) ?jobs ?on_cell
    (ws : W.t list) : t =
  let t0 = Unix.gettimeofday () in
  let jobs =
    match jobs with Some j -> max 1 j | None -> Runner.default_jobs ()
  in
  (* Pre-resolve cell-cache hits (cheap serial file reads). A cached cell
     carries its outcome and deltas in full, so a workload all of whose
     cells hit needs no reference/clean observations at all — a fully
     cached campaign performs zero simulations. *)
  let resolved =
    List.map
      (fun ((w : W.t), (rule : Spec.rule)) ->
        let hit =
          match cache with
          | None -> None
          | Some ca ->
            let point = Point.name rule.Spec.point in
            let cseed = cell_seed ~campaign_seed:seed ~workload:w.W.name ~point in
            let key =
              Cache.fault_key ~spec:(Spec.to_string [ rule ]) ~seed:cseed w
            in
            Option.bind (Cache.find ca ~key) (fun j ->
                Result.to_option (cell_of_json j))
        in
        (w, rule, hit))
      (matrix ~spec ws)
  in
  (* Phase 1 — reference/clean observations, only for workloads that still
     have at least one cell to simulate. *)
  let miss_names =
    List.filter_map
      (fun ((w : W.t), _, hit) ->
        match hit with None -> Some w.W.name | Some _ -> None)
      resolved
  in
  let prepped =
    prep_workloads ~jobs
      (List.filter (fun (w : W.t) -> List.mem w.W.name miss_names) ws)
  in
  (* Phase 2 — the (workload × fault point) matrix. Each cell arms exactly
     one rule of the base spec, so every outcome is attributable to one
     fault point. Fresh cells are installed into the cache as they
     complete (atomic writes; safe from worker domains). *)
  let cells =
    Runner.parallel_map ~jobs
      (fun ((w : W.t), rule, hit) ->
        let c =
          match hit with
          | Some c -> c
          | None ->
            let reference, clean = List.assoc w.W.name prepped in
            let c = run_cell ~campaign_seed:seed ~reference ~clean w rule in
            (match cache with
            | Some ca ->
              Cache.store ca
                ~key:(Cache.fault_key ~spec:c.spec ~seed:c.seed w)
                (json_of_cell c)
            | None -> ());
            c
        in
        (* observer for telemetry progress; must not affect outcomes *)
        (match on_cell with None -> () | Some f -> f c);
        c)
      resolved
  in
  {
    campaign_seed = seed;
    spec = Spec.to_string spec;
    git_sha = Store.git_sha ();
    created_utc = Store.timestamp_utc ();
    jobs;
    shards = 1;
    host_wall_seconds = Unix.gettimeofday () -. t0;
    cells;
    quarantined = [];
    resumed_rows = [];
  }

let to_json (t : t) : J.t =
  Tce_obs.Export.document ~kind:"fault-campaign"
    (J.Obj
       ([
          ("campaign_seed", J.Int t.campaign_seed);
          ("spec", J.Str t.spec);
          ("git_sha", J.Str t.git_sha);
          ("created_utc", J.Str t.created_utc);
          ("jobs", J.Int t.jobs);
          ("shards", J.Int t.shards);
          ("host_wall_seconds", J.Float t.host_wall_seconds);
          ("cells", J.List (List.map json_of_cell t.cells));
        ]
       (* both recovery fields are omitted when empty so documents from
          clean runs keep their pre-supervision bytes *)
       @ (match t.quarantined with
         | [] -> []
         | qs ->
           [ ("quarantined", J.List (List.map Supervise.quarantined_to_json qs)) ])
       @
       match t.resumed_rows with
       | [] -> []
       | rs -> [ ("resumed_rows", J.List (List.map (fun i -> J.Int i) rs)) ]))

let of_json (j : J.t) : (t, string) result =
  match Tce_obs.Export.open_document j with
  | Error e -> Error e
  | Ok (kind, _) when kind <> "fault-campaign" ->
    Error (Printf.sprintf "expected kind fault-campaign, got %s" kind)
  | Ok (_, data) -> (
    let str k = Option.bind (J.member k data) J.to_str in
    let int k = Option.bind (J.member k data) J.to_int in
    let flt k = Option.bind (J.member k data) J.to_float in
    (* [shards] is optional: documents written before multi-process
       sharding existed are in-process (one shard). *)
    let shards = Option.value ~default:1 (Option.bind (J.member "shards" data) J.to_int) in
    (* recovery provenance is optional: absent (clean or pre-supervision
       documents) decodes as empty *)
    let quarantined =
      match Option.bind (J.member "quarantined" data) J.to_list with
      | None -> Ok []
      | Some js ->
        List.fold_right
          (fun qj acc ->
            Result.bind acc (fun qs ->
                Result.map (fun q -> q :: qs) (Supervise.quarantined_of_json qj)))
          js (Ok [])
    in
    let resumed_rows =
      match Option.bind (J.member "resumed_rows" data) J.to_list with
      | None -> []
      | Some js -> List.filter_map J.to_int js
    in
    match
      ( int "campaign_seed", str "spec", str "git_sha", str "created_utc",
        int "jobs", flt "host_wall_seconds",
        Option.bind (J.member "cells" data) J.to_list, quarantined )
    with
    | ( Some campaign_seed, Some spec, Some git_sha, Some created_utc,
        Some jobs, Some host_wall_seconds, Some cells, Ok quarantined ) -> (
      let rec all acc = function
        | [] -> Ok (List.rev acc)
        | c :: rest -> (
          match cell_of_json c with
          | Ok c -> all (c :: acc) rest
          | Error e -> Error e)
      in
      match all [] cells with
      | Error e -> Error e
      | Ok cells ->
        Ok
          {
            campaign_seed; spec; git_sha; created_utc; jobs; shards;
            host_wall_seconds; cells; quarantined; resumed_rows;
          })
    | _ -> Error "malformed fault-campaign document")

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
  end

let save ?(latest = latest_path) ?(dir = campaigns_dir) (t : t) : string =
  let doc = to_json t in
  Tce_obs.Export.to_file ~path:latest doc;
  if dir = "" then latest
  else begin
    mkdir_p dir;
    let name =
      Printf.sprintf "%s-%s-seed%d.json"
        (String.map (function ':' -> '-' | c -> c) t.created_utc)
        t.git_sha t.campaign_seed
    in
    let path = Filename.concat dir name in
    Tce_obs.Export.to_file ~path doc;
    path
  end

let load path : (t, string) result =
  if not (Sys.file_exists path) then Error (path ^ ": no such file")
  else
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    match J.of_string s with Error e -> Error e | Ok j -> of_json j

(* --- multi-process sharding --- *)

let row_to_json ~index (c : cell) : J.t =
  Tce_obs.Export.document ~kind:"fault-cell"
    (J.Obj [ ("index", J.Int index); ("cell", json_of_cell c) ])

let row_of_json (j : J.t) : (int * cell, string) result =
  match Tce_obs.Export.open_document j with
  | Error e -> Error e
  | Ok (kind, _) when kind <> "fault-cell" ->
    Error (Printf.sprintf "expected a fault-cell document, got %S" kind)
  | Ok (_, data) -> (
    match
      (Option.bind (J.member "index" data) J.to_int, J.member "cell" data)
    with
    | Some i, Some cj when i >= 0 ->
      Result.map (fun c -> (i, c)) (cell_of_json cj)
    | _ -> Error "malformed fault-cell row")

(** Worker side of [--faults --worker-indices i,j,k]: run exactly
    [indices] of the {!matrix}, in the given order, streaming one
    [fault-cell] envelope per cell to [out]. Reference/clean observations
    are prepared only for the workloads the indices actually touch.
    [chaos] arms a deterministic fault ({!Supervise.Chaos}); [beat] emits
    a [telem] heartbeat envelope before and after each cell. *)
let worker_indices ?(spec = Spec.default) ?(seed = default_seed) ?chaos ?beat
    ~indices ~out (ws : W.t list) : unit =
  let cells = Array.of_list (matrix ~spec ws) in
  List.iter
    (fun i ->
      if i < 0 || i >= Array.length cells then
        failwith
          (Printf.sprintf "worker index %d out of range [0, %d)" i
             (Array.length cells)))
    indices;
  let needed =
    List.sort_uniq compare (List.map (fun i -> (fst cells.(i)).W.name) indices)
  in
  let prepped =
    prep_workloads ~jobs:1
      (List.filter (fun (w : W.t) -> List.mem w.W.name needed) ws)
  in
  let emitted = ref 0 in
  List.iter
    (fun i ->
      let mode = Supervise.Chaos.before_cell chaos ~emitted:!emitted ~index:i out in
      let w, rule = cells.(i) in
      (match beat with
      | Some e ->
        Tce_telem.Heartbeat.beat_start e ~index:i
          ~name:(Printf.sprintf "%s×%s" w.W.name (Point.name rule.Spec.point))
      | None -> ());
      let reference, clean = List.assoc w.W.name prepped in
      let c = run_cell ~campaign_seed:seed ~reference ~clean w rule in
      let line = J.to_string (row_to_json ~index:i c) in
      (match mode with
      | `Truncate -> Supervise.Chaos.truncate_line out line
      | `Run ->
        output_string out line;
        output_char out '\n';
        flush out);
      (match beat with
      | Some e -> Tce_telem.Heartbeat.beat_cell_done e
      | None -> ());
      incr emitted)
    indices;
  match beat with Some e -> Tce_telem.Heartbeat.beat_done e | None -> ()

(** Worker side of [--faults --shard K/N] (kept for compatibility):
    delegates to {!worker_indices} with the shard's round-robin slice. *)
let worker ?spec ?seed ~shard ~shards ~out (ws : W.t list) : unit =
  let n =
    List.length ws * List.length (Option.value ~default:Spec.default spec)
  in
  worker_indices ?spec ?seed ~indices:(Shard.positions ~shard ~shards ~n) ~out
    ws

(** Parent side of [--faults --shards N]: run the {!matrix} across [N]
    supervised fault workers ({!Supervise.run}) — crashed/hung workers are
    respawned over their missing cells, poison cells quarantine, rows are
    journaled to [journal_path] and [resume] replays a previous journal.
    Cell seeds are a pure function of the cell identity, so the sharded
    matrix is cell-for-cell identical to an in-process run.
    @raise Failure when supervision fails unrecoverably or the merge is
    incomplete. *)
let parent ?exe ?spawn ?(log_dir = Shard.default_log_dir)
    ?(supervise = Supervise.default_config)
    ?(journal_path = Store.faults_journal_path) ?resume ?chaos ?telem
    ?(spec = Spec.default) ?(seed = default_seed) ~shards ~worker_args
    (ws : W.t list) : t =
  let t0 = Unix.gettimeofday () in
  let names = List.map (fun (w : W.t) -> w.W.name) ws in
  let cells = Array.of_list (matrix ~spec ws) in
  (* the CLI cannot size the matrix before the spec is parsed, so the
     scheduled total lands here *)
  (match telem with
  | Some t -> Telem.set_total t (Array.length cells)
  | None -> ());
  let cost = Store.baseline_cost_of_workload () in
  let tasks =
    List.init (Array.length cells) (fun i ->
        let w, rule = cells.(i) in
        {
          Supervise.t_index = i;
          t_name = Printf.sprintf "%s×%s" w.W.name (Point.name rule.Spec.point);
          (* per-cell cost proxy: the whole workload's baseline cycles —
             only ratios matter for the deadline scaling *)
          t_cost = cost w;
        })
  in
  let assignment =
    let a = Array.make (max 1 shards) [] in
    List.iteri
      (fun pos (t : Supervise.task) ->
        a.(pos mod max 1 shards) <- t.Supervise.t_index :: a.(pos mod max 1 shards))
      tasks;
    Array.map List.rev a
  in
  let argv_of_indices ~slot ~attempt indices =
    let chaos_args =
      match chaos with
      | None -> []
      | Some (mode, chaos_seed) ->
        Option.value ~default:[]
          (Supervise.Chaos.worker_args ~mode ~seed:chaos_seed ~assignment ~slot
             ~attempt)
    in
    Array.of_list
      (Sys.executable_name :: "--faults"
       :: "--worker-indices"
       :: String.concat "," (List.map string_of_int indices)
       :: (chaos_args @ Telem.heartbeat_args telem ~slot @ worker_args @ names))
  in
  let parse line =
    Result.map_error
      (fun e -> "bad fault-cell: " ^ e)
      (Result.bind (J.of_string line) row_of_json)
  in
  let to_line i c = J.to_string (row_to_json ~index:i c) in
  let resume_rows =
    match resume with
    | None -> []
    | Some path -> (
      match Store.journal_lines path with
      | Error e -> failwith (Printf.sprintf "--resume %s: %s" path e)
      | Ok lines ->
        List.filter_map (fun line -> Result.to_option (parse line)) lines)
  in
  let serial_run i =
    let w, rule = cells.(i) in
    let prepped = prep_workloads ~jobs:1 [ w ] in
    let reference, clean = List.assoc w.W.name prepped in
    run_cell ~campaign_seed:seed ~reference ~clean w rule
  in
  let events =
    match telem with
    | Some t -> Telem.events t
    | None -> Supervise.null_events
  in
  let journal = Store.journal_open journal_path in
  let outcome =
    Fun.protect
      ~finally:(fun () -> Store.journal_close journal)
      (fun () ->
        Supervise.run ?exe ?spawn ~config:supervise ~shards ~log_dir
          ~journal:(Store.journal_append journal) ~serial_run ~resume_rows
          ~events ~argv_of_indices ~parse ~to_line tasks)
  in
  match outcome with
  | Error e -> failwith ("sharded fault campaign failed: " ^ e)
  | Ok o -> (
    (match telem with
    | Some t -> Telem.resumed t (List.length o.Supervise.resumed)
    | None -> ());
    let name_of i =
      if i >= 0 && i < Array.length cells then begin
        let w, rule = cells.(i) in
        Some (Printf.sprintf "%s×%s" w.W.name (Point.name rule.Spec.point))
      end
      else None
    in
    let quarantined_indices =
      List.map (fun q -> q.Supervise.q_index) o.Supervise.quarantined
    in
    match
      Shard.merge_rows ~names:name_of ~quarantined:quarantined_indices
        ~what:"fault-cell" ~expected:(Array.length cells) o.Supervise.rows
    with
    | Error e -> failwith e
    | Ok merged ->
      {
        campaign_seed = seed;
        spec = Spec.to_string spec;
        git_sha = Store.git_sha ();
        created_utc = Store.timestamp_utc ();
        jobs = 1;
        shards;
        host_wall_seconds = Unix.gettimeofday () -. t0;
        cells = merged;
        quarantined = o.Supervise.quarantined;
        resumed_rows = o.Supervise.resumed;
      })

(* --- reporting --- *)

let print_summary (t : t) =
  let points =
    List.sort_uniq compare (List.map (fun (c : cell) -> c.point) t.cells)
  in
  Printf.printf
    "fault campaign: seed %d, %d cells (%d workloads × %d points), %d jobs, \
     %.1fs\n"
    t.campaign_seed (List.length t.cells)
    (List.length
       (List.sort_uniq compare (List.map (fun (c : cell) -> c.workload) t.cells)))
    (List.length points) t.jobs t.host_wall_seconds;
  Printf.printf "%-14s %6s %6s | %6s %10s %9s %7s %7s\n" "point" "fires"
    "detect" "wrong" "recovered" "degraded" "masked" "quiet";
  List.iter
    (fun p ->
      let cs = List.filter (fun (c : cell) -> c.point = p) t.cells in
      let count o =
        List.length (List.filter (fun (c : cell) -> c.outcome = o) cs)
      in
      let sum f = List.fold_left (fun a c -> a + f c) 0 cs in
      Printf.printf "%-14s %6d %6d | %6d %10d %9d %7d %7d\n" p
        (sum (fun c -> c.fires))
        (sum (fun c -> c.detections))
        (count Wrong) (count Detected_recovered) (count Degraded)
        (count Masked) (count Not_exercised))
    points;
  (match t.resumed_rows with
  | [] -> ()
  | rs -> Printf.printf "resumed %d cell(s) from the journal\n" (List.length rs));
  (match t.quarantined with
  | [] -> ()
  | qs ->
    Printf.printf
      "QUARANTINED %d cell(s) (excluded after repeated worker kills):\n"
      (List.length qs);
    List.iter
      (fun (q : Supervise.quarantined) ->
        Printf.printf "  %s (index %d, %d kills): %s\n" q.Supervise.q_name
          q.Supervise.q_index q.Supervise.q_kills q.Supervise.q_reason)
      qs);
  (match wrong t with
  | [] ->
    Printf.printf
      "campaign: PASS — no silent wrong answers, no crashes under injection\n"
  | ws ->
    Printf.printf "campaign: FAIL — %d wrong-answer cell(s):\n" (List.length ws);
    List.iter
      (fun (c : cell) ->
        Printf.printf "  %s × %s (seed %d): %s\n" c.workload c.point c.seed
          c.detail)
      ws)

let exit_code ?(strict = false) t =
  if wrong t <> [] then 1 else if strict && t.quarantined <> [] then 1 else 0
