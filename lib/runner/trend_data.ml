(** Cross-run trend analytics over the archived result history (see
    trend_data.mli). *)

module Trends = Tce_telem.Trends

let trends_dir = Filename.concat "results" "trends"

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
  end

(* "run-20260805T120102Z-ab12cd34ef56.json" -> "20260805T120102Z-ab1" —
   enough to identify a run on an axis label without drowning the report
   (campaign files lead with the full timestamp already). *)
let label_of_filename f =
  let base = Filename.remove_extension (Filename.basename f) in
  let base =
    if String.length base > 4 && String.sub base 0 4 = "run-" then
      String.sub base 4 (String.length base - 4)
    else base
  in
  if String.length base > 20 then String.sub base 0 20 else base

let list_sorted dir prefix =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | files ->
    let fs = Array.to_list files in
    List.sort compare
      (List.filter
         (fun f ->
           String.length f > String.length prefix
           && String.sub f 0 (String.length prefix) = prefix
           && Filename.check_suffix f ".json")
         fs)

let last n xs =
  let len = List.length xs in
  if len <= n then xs else List.filteri (fun i _ -> i >= len - n) xs

(* --- bench history series --- *)

let bench_series ~history_dir ~n =
  let files = last n (list_sorted history_dir "run-") in
  let runs =
    List.filter_map
      (fun f ->
        let path = Filename.concat history_dir f in
        match Store.load path with
        | Ok r -> Some (label_of_filename f, r)
        | Error e ->
          Printf.eprintf "trends: skipping unreadable %s: %s\n%!" path e;
          None)
      files
  in
  match List.rev runs with
  | [] -> ([], 0, 0)
  | (_, newest) :: _ ->
    (* Only runs produced by the current configuration are comparable;
       mixing config hashes would flag every parameter change as an
       anomaly on every workload. *)
    let current = newest.Record.config_hash in
    let comparable =
      List.filter (fun (_, r) -> r.Record.config_hash = current) runs
    in
    let excluded = List.length runs - List.length comparable in
    let by_workload = Hashtbl.create 64 in
    List.iter
      (fun (label, (r : Record.run)) ->
        List.iter
          (fun (w : Record.workload) ->
            let prev =
              try Hashtbl.find by_workload w.Record.name
              with Not_found -> []
            in
            Hashtbl.replace by_workload w.Record.name ((label, w) :: prev))
          r.Record.workloads)
      comparable;
    let names =
      List.sort compare
        (Hashtbl.fold (fun k _ acc -> k :: acc) by_workload [])
    in
    let metric name sel unit flag entries =
      {
        Trends.sr_group = name;
        sr_metric = sel;
        sr_unit = unit;
        sr_flag = flag;
        sr_points =
          List.map
            (fun (label, v) -> { Trends.pt_label = label; pt_value = v })
            entries;
      }
    in
    let per_workload =
      List.concat_map
        (fun name ->
          let entries = List.rev (Hashtbl.find by_workload name) in
          let pick f = List.map (fun (l, w) -> (l, f w)) entries in
          [
            (* Deterministic simulated metrics flag; host wall is
               environment-dependent and stays informational. *)
            metric name "cycles_on"
              "cycles" true
              (pick (fun w -> w.Record.cycles_on));
            metric name "check_removal_pct" "%" true
              (pick (fun w -> w.Record.check_removal_pct));
            metric name "deopts_on" "" true
              (pick (fun w -> float_of_int w.Record.deopts_on));
            metric name "wall_seconds" "s" false
              (pick (fun w -> w.Record.wall_seconds));
          ])
        names
    in
    let suite =
      [
        metric "suite" "host_wall_seconds" "s" false
          (List.map
             (fun (l, (r : Record.run)) -> (l, r.Record.host_wall_seconds))
             comparable);
        metric "suite" "workloads" "" false
          (List.map
             (fun (l, (r : Record.run)) ->
               (l, float_of_int (List.length r.Record.workloads)))
             comparable);
      ]
    in
    (suite @ per_workload, List.length comparable, excluded)

(* --- fault-campaign history series --- *)

let campaign_series ~campaigns_dir ~n =
  let files = last n (list_sorted campaigns_dir "") in
  let campaigns =
    List.filter_map
      (fun f ->
        let path = Filename.concat campaigns_dir f in
        match Campaign.load path with
        | Ok c -> Some (label_of_filename f, c)
        | Error e ->
          Printf.eprintf "trends: skipping unreadable %s: %s\n%!" path e;
          None)
      files
  in
  if campaigns = [] then []
  else
    let count label o =
      List.map
        (fun (l, (c : Campaign.t)) ->
          ( l,
            float_of_int
              (List.length
                 (List.filter
                    (fun (cell : Campaign.cell) -> cell.Campaign.outcome = o)
                    c.Campaign.cells)) ))
        campaigns
      |> List.map (fun (l, v) -> { Trends.pt_label = l; pt_value = v })
      |> fun points ->
      {
        Trends.sr_group = "fault-campaign";
        sr_metric = label;
        sr_unit = "cells";
        sr_points = points;
        (* any wrong-answer drift must flag; the benign outcome mix is
           informational *)
        sr_flag = o = Campaign.Wrong;
      }
    in
    [
      count "wrong" Campaign.Wrong;
      count "detected_recovered" Campaign.Detected_recovered;
      count "degraded" Campaign.Degraded;
      count "masked" Campaign.Masked;
      count "not_exercised" Campaign.Not_exercised;
    ]

let latest_time_report_note () =
  let path = Store.time_report_path () in
  if Sys.file_exists path then
    Printf.sprintf "latest time report: %s\n" path
  else ""

let run ?(history_dir = Store.history_dir)
    ?(campaigns_dir = Campaign.campaigns_dir) ?(out_dir = trends_dir)
    ?(n = 20) () : (int, string) result =
  let bench, compared, excluded = bench_series ~history_dir ~n in
  let faults = campaign_series ~campaigns_dir ~n in
  let series = bench @ faults in
  if series = [] then
    Error
      (Printf.sprintf "no history found under %s or %s" history_dir
         campaigns_dir)
  else begin
    let anomalies = Trends.detect series in
    let title =
      Printf.sprintf "tce trends: last %d run(s), %d comparable" n compared
    in
    let txt = Trends.text_report ~title series anomalies in
    let html =
      Trends.html_dashboard ~title ~generated:(Store.timestamp_utc ()) series
        anomalies
    in
    mkdir_p out_dir;
    let write path text =
      let oc = open_out path in
      output_string oc text;
      close_out oc
    in
    write (Filename.concat out_dir "trends.txt") txt;
    write (Filename.concat out_dir "trends.html") html;
    print_string txt;
    if excluded > 0 then
      Printf.printf
        "(%d run(s) with a different config hash excluded from comparison)\n"
        excluded;
    print_string (latest_time_report_note ());
    Printf.printf "wrote %s and %s\n"
      (Filename.concat out_dir "trends.txt")
      (Filename.concat out_dir "trends.html");
    Ok (List.length anomalies)
  end
