(** Fleet telemetry coordinator for the drivers (see telem.mli). *)

module Registry = Tce_telem.Registry
module Expo = Tce_telem.Expo
module Board = Tce_telem.Board
module Heartbeat = Tce_telem.Heartbeat

type options = {
  out : string option;  (** --telemetry-out FILE: periodic snapshots *)
  serve : int option;  (** --serve-metrics PORT: HTTP scrape endpoint *)
  board : bool;  (** --status-board: live TTY board on stderr *)
}

let no_options = { out = None; serve = None; board = false }

type slot_state = {
  mutable sl_state : string;
  mutable sl_cell : string;
  mutable sl_done : int;
  mutable sl_total : int;
  mutable sl_retries : int;
  mutable sl_rate : float;
  mutable sl_last_row_at : float;
}

type t = {
  driver : string;
  reg : Registry.t;
  mu : Mutex.t;
  out : string option;
  server : Expo.Server.t option;
  board : Board.t option;
  t0 : float;
  mutable total : int;
  slots : (int, slot_state) Hashtbl.t;
  mutable completed : int;
  mutable quarantined_n : int;
  mutable last_flush : float;
  (* families *)
  f_scheduled : Registry.family;
  f_completed : Registry.family;
  f_resumed : Registry.family;
  f_retries : Registry.family;
  f_quarantined : Registry.family;
  f_degraded : Registry.family;
  f_cell_wall : Registry.family;
  f_throughput : Registry.family;
  f_eta : Registry.family;
  f_elapsed : Registry.family;
  f_last_progress : Registry.family;
  f_worker_rate : Registry.family;
}

let driver_label t = [ ("driver", t.driver) ]
let shard_label t slot = ("shard", string_of_int slot) :: driver_label t

let create ~driver ~total (options : options) : (t option, string) result =
  if options.out = None && options.serve = None && not options.board then
    Ok None
  else begin
    let reg = Registry.create () in
    let f_scheduled =
      Registry.gauge reg ~help:"Cells scheduled for this run" "tce_cells_scheduled"
    and f_completed =
      Registry.counter reg ~help:"Cells completed, by worker shard (0 = parent)"
        "tce_cells_completed"
    and f_resumed =
      Registry.counter reg ~help:"Cells replayed from the crash journal"
        "tce_cells_resumed"
    and f_retries =
      Registry.counter reg ~help:"Worker kills/respawns charged to a shard"
        "tce_worker_retries"
    and f_quarantined =
      Registry.gauge reg ~help:"Cells quarantined after repeated worker kills"
        "tce_quarantined_cells"
    and f_degraded =
      Registry.counter reg ~help:"Cells that fell back to in-process execution"
        "tce_degraded_cells"
    and f_cell_wall =
      Registry.histogram reg ~help:"Host wall seconds per completed cell"
        "tce_cell_wall_seconds"
    and f_throughput =
      Registry.gauge reg ~help:"Completed cells per second, whole run"
        "tce_run_throughput_cells_per_sec"
    and f_eta =
      Registry.gauge reg ~help:"Estimated seconds until the run drains"
        "tce_run_eta_seconds"
    and f_elapsed =
      Registry.gauge reg ~help:"Seconds since the run started"
        "tce_run_elapsed_seconds"
    and f_last_progress =
      Registry.gauge reg
        ~help:"Unix timestamp of the last heartbeat or row per shard"
        "tce_worker_last_progress_timestamp_seconds"
    and f_worker_rate =
      Registry.gauge reg ~help:"Cells per second reported by worker heartbeats"
        "tce_worker_cells_per_sec"
    in
    Registry.set ~labels:[ ("driver", driver) ] f_scheduled (float_of_int total);
    match
      match options.serve with
      | None -> Ok None
      | Some port ->
        Result.map
          (fun s -> Some s)
          (Expo.Server.start ~port ~body:(fun () -> Registry.to_openmetrics reg) ())
    with
    | Error e -> Error e
    | Ok server ->
      let board = if options.board then Some (Board.create ()) else None in
      Ok
        (Some
           {
             driver;
             reg;
             mu = Mutex.create ();
             out = options.out;
             server;
             board;
             t0 = Unix.gettimeofday ();
             total;
             slots = Hashtbl.create 8;
             completed = 0;
             quarantined_n = 0;
             last_flush = neg_infinity;
             f_scheduled;
             f_completed;
             f_resumed;
             f_retries;
             f_quarantined;
             f_degraded;
             f_cell_wall;
             f_throughput;
             f_eta;
             f_elapsed;
             f_last_progress;
             f_worker_rate;
           })
  end

let with_lock t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let set_total t n =
  with_lock t (fun () ->
      t.total <- n;
      Registry.set ~labels:(driver_label t) t.f_scheduled (float_of_int n))

let server_port t = Option.map Expo.Server.port t.server

let slot_state t slot =
  match Hashtbl.find_opt t.slots slot with
  | Some s -> s
  | None ->
    let s =
      {
        sl_state = (if slot = 0 then "done" else "idle");
        sl_cell = "";
        sl_done = 0;
        sl_total = 0;
        sl_retries = 0;
        sl_rate = 0.0;
        sl_last_row_at = Unix.gettimeofday ();
      }
    in
    Hashtbl.replace t.slots slot s;
    s

(* Locked: refresh derived gauges, the board, and the snapshot file. *)
let publish ?(force = false) t =
  let now = Unix.gettimeofday () in
  let elapsed = now -. t.t0 in
  Registry.set ~labels:(driver_label t) t.f_elapsed elapsed;
  let rate = if elapsed > 0.0 then float_of_int t.completed /. elapsed else 0.0 in
  Registry.set ~labels:(driver_label t) t.f_throughput rate;
  let remaining = t.total - t.completed - t.quarantined_n in
  let eta =
    if remaining <= 0 then 0.0
    else if rate > 0.0 then float_of_int remaining /. rate
    else -1.0 (* unknown yet *)
  in
  Registry.set ~labels:(driver_label t) t.f_eta eta;
  (match t.board with
  | None -> ()
  | Some b ->
    let rows =
      List.sort
        (fun (a : Board.row) b -> compare a.Board.r_slot b.Board.r_slot)
        (Hashtbl.fold
           (fun slot s acc ->
             if slot = 0 then acc
             else
               {
                 Board.r_slot = slot;
                 r_state = s.sl_state;
                 r_cell = s.sl_cell;
                 r_done = s.sl_done;
                 r_total = s.sl_total;
                 r_retries = s.sl_retries;
                 r_rate = s.sl_rate;
               }
               :: acc)
           t.slots [])
    in
    let summary =
      Printf.sprintf "%s %d/%d cells%s, %.1f c/s, elapsed %.0fs%s" t.driver
        t.completed t.total
        (if t.quarantined_n > 0 then
           Printf.sprintf " (%d quarantined)" t.quarantined_n
         else "")
        rate elapsed
        (if eta > 0.0 then Printf.sprintf ", eta %.0fs" eta else "")
    in
    if force then Board.finish b ~summary rows
    else Board.refresh b ~summary rows);
  match t.out with
  | None -> ()
  | Some path ->
    if force || now -. t.last_flush >= 1.0 then begin
      t.last_flush <- now;
      Expo.write_snapshot ~path t.reg
    end

let row_arrived t ~slot ~name:_ =
  let now = Unix.gettimeofday () in
  let s = slot_state t slot in
  t.completed <- t.completed + 1;
  s.sl_done <- s.sl_done + 1;
  if slot > 0 then begin
    s.sl_state <- (if s.sl_done >= s.sl_total then "done" else "run");
    Registry.observe ~labels:(driver_label t) t.f_cell_wall
      (Float.max 0.0 (now -. s.sl_last_row_at))
  end;
  s.sl_last_row_at <- now;
  Registry.inc ~labels:(shard_label t slot) t.f_completed;
  Registry.set ~labels:(shard_label t slot) t.f_last_progress now

let events t : Supervise.events =
  {
    Supervise.ev_spawn =
      (fun ~slot ~attempt:_ ~pending ->
        with_lock t (fun () ->
            let s = slot_state t slot in
            s.sl_state <- "run";
            s.sl_total <- s.sl_done + pending;
            s.sl_last_row_at <- Unix.gettimeofday ();
            publish t));
    ev_row =
      (fun ~slot ~index:_ ~name ->
        with_lock t (fun () ->
            row_arrived t ~slot ~name;
            publish t));
    ev_heartbeat =
      (fun ~slot hb ->
        with_lock t (fun () ->
            let s = slot_state t slot in
            s.sl_rate <- hb.Heartbeat.rate;
            s.sl_cell <-
              (if hb.Heartbeat.index < 0 then "" else hb.Heartbeat.name);
            Registry.set ~labels:(shard_label t slot) t.f_worker_rate
              hb.Heartbeat.rate;
            Registry.set ~labels:(shard_label t slot) t.f_last_progress
              (Unix.gettimeofday ());
            publish t));
    ev_fault =
      (fun ~slot ~index:_ ~kills:_ ~reason:_ ->
        with_lock t (fun () ->
            let s = slot_state t slot in
            s.sl_state <- "retry";
            s.sl_retries <- s.sl_retries + 1;
            s.sl_cell <- "";
            Registry.inc ~labels:(shard_label t slot) t.f_retries;
            publish t));
    ev_quarantine =
      (fun ~index:_ ~name:_ ~kills:_ ->
        with_lock t (fun () ->
            t.quarantined_n <- t.quarantined_n + 1;
            Registry.set ~labels:(driver_label t) t.f_quarantined
              (float_of_int t.quarantined_n);
            publish t));
    ev_degraded =
      (fun ~index:_ ->
        with_lock t (fun () ->
            Registry.inc ~labels:(driver_label t) t.f_degraded));
    ev_tick = (fun () -> with_lock t (fun () -> publish t));
  }

let resumed t n =
  if n > 0 then
    with_lock t (fun () ->
        Registry.inc ~labels:(driver_label t) ~by:(float_of_int n) t.f_resumed)

let heartbeat_args (t : t option) ~slot =
  match t with
  | None -> []
  | Some _ -> [ "--heartbeat"; string_of_int slot ]

(* Serial (in-process) drivers feed completed cells directly; rows are
   attributed to shard 0 like the supervisor's non-worker rows. *)
let cell_done t ~name =
  with_lock t (fun () ->
      row_arrived t ~slot:0 ~name;
      publish t)

(* Gate families are registered lazily here rather than in [create]: only
   the [--check] driver has a verdict, and [Registry.register] is
   idempotent so repeated calls reuse the same family. *)
let gate_result t ~ok ~compared ~regressions =
  with_lock t (fun () ->
      let pass =
        Registry.gauge t.reg ~help:"1 when the perf gate passed, 0 otherwise"
          "tce_gate_pass"
      and cmp =
        Registry.gauge t.reg
          ~help:"Workload/metric pairs compared against the baseline"
          "tce_gate_compared"
      and regr =
        Registry.gauge t.reg
          ~help:"Gate comparisons that regressed beyond tolerance"
          "tce_gate_regressions"
      in
      Registry.set ~labels:(driver_label t) pass (if ok then 1.0 else 0.0);
      Registry.set ~labels:(driver_label t) cmp (float_of_int compared);
      Registry.set ~labels:(driver_label t) regr (float_of_int regressions);
      publish ~force:true t)

(* Cache families are registered lazily like the gate's: only cached
   drivers have stats to publish, and [Registry.counter] is idempotent. *)
let cache_stats t (s : Cache.stats) =
  with_lock t (fun () ->
      let hits =
        Registry.counter t.reg
          ~help:"Cells served from the content-addressed cache"
          "tce_cache_hits"
      and misses =
        Registry.counter t.reg
          ~help:"Cells simulated because the cache had no entry"
          "tce_cache_misses"
      and bread =
        Registry.counter t.reg ~help:"Bytes read from the cell cache"
          "tce_cache_read_bytes"
      and bwritten =
        Registry.counter t.reg ~help:"Bytes written to the cell cache"
          "tce_cache_written_bytes"
      in
      let labels = driver_label t in
      Registry.inc ~labels ~by:(float_of_int s.Cache.hits) hits;
      Registry.inc ~labels ~by:(float_of_int s.Cache.misses) misses;
      Registry.inc ~labels ~by:(float_of_int s.Cache.bytes_read) bread;
      Registry.inc ~labels ~by:(float_of_int s.Cache.bytes_written) bwritten;
      publish ~force:true t)

let snapshot t = Registry.to_openmetrics t.reg

let registry t = t.reg

let finish t =
  with_lock t (fun () ->
      Hashtbl.iter
        (fun _ s -> if s.sl_state <> "retry" then s.sl_state <- "done")
        t.slots;
      publish ~force:true t);
  (match t.out with Some path -> Expo.write_snapshot ~path t.reg | None -> ());
  match t.server with None -> () | Some s -> Expo.Server.stop s
