(** Persistent benchmark-result store (see store.mli). *)

module J = Tce_obs.Json

let latest_path = "BENCH_latest.json"
let attr_latest_path = "ATTR_latest.json"
let prof_latest_path = "PROF_latest.json"
let time_latest_path = Filename.concat "results" "bench_time.json"

(* Pre-v9 releases wrote the time report to the repo root; keep reading
   the old location for one release so existing tooling migrates. *)
let time_legacy_path = "bench_time.json"

let time_report_path () =
  if Sys.file_exists time_latest_path then time_latest_path
  else if Sys.file_exists time_legacy_path then time_legacy_path
  else time_latest_path
let history_dir = Filename.concat "results" "history"
let baseline_path = Filename.concat "results" "baseline.json"
let journal_dir = Filename.concat "results" "journal"
let bench_journal_path = Filename.concat journal_dir "bench.jsonl"
let faults_journal_path = Filename.concat journal_dir "faults.jsonl"
let sweep_journal_path = Filename.concat journal_dir "sweep.jsonl"
let sweep_latest_path = "SWEEP_latest.json"
let sweeps_dir = Filename.concat "results" "sweeps"
let cache_dir = Filename.concat "results" "cache"

(* --- provenance --- *)

let git_sha () =
  try
    let ic = Unix.open_process_in "git rev-parse --short=12 HEAD 2>/dev/null" in
    let line = try input_line ic with End_of_file -> "" in
    match Unix.close_process_in ic with
    | Unix.WEXITED 0 when line <> "" -> line
    | _ -> "unknown"
  with _ -> "unknown"

(** Digest of everything that could change simulated numbers: the
    simulated-core parameters (Table 2), the Class Cache geometry and the
    engine's tier-up/deopt thresholds. Two runs with different hashes are
    not comparable and the gate says so instead of reporting deltas. *)
let config_hash ?(config = Tce_engine.Engine.default_config) () =
  let e = config in
  let buf = Buffer.create 256 in
  List.iter
    (fun (k, v) -> Buffer.add_string buf (k ^ "=" ^ v ^ ";"))
    (Tce_machine.Config.rows e.Tce_engine.Engine.mach_cfg);
  Buffer.add_string buf
    (Printf.sprintf "jit=%b;mechanism=%b;hoisting=%b;checked_load=%b;"
       e.Tce_engine.Engine.jit e.Tce_engine.Engine.mechanism
       e.Tce_engine.Engine.hoisting e.Tce_engine.Engine.checked_load);
  Buffer.add_string buf
    (Printf.sprintf "hot_call=%d;hot_backedge=%d;seed=%d;"
       e.Tce_engine.Engine.hot_call_count e.Tce_engine.Engine.hot_backedge_count
       e.Tce_engine.Engine.seed);
  (let b = e.Tce_engine.Engine.backoff in
   Buffer.add_string buf
     (Printf.sprintf
        "inst_limit=%d;storm=%d;cooldown=%d;maxexp=%d;decay=%d;"
        b.Tce_engine.Engine.instance_deopt_limit
        b.Tce_engine.Engine.storm_threshold
        b.Tce_engine.Engine.base_cooldown_cycles
        b.Tce_engine.Engine.max_backoff_exponent
        b.Tce_engine.Engine.decay_cycles));
  Buffer.add_string buf
    (Printf.sprintf "cc_entries=%d;cc_ways=%d;cl_size=%d"
       e.Tce_engine.Engine.cc_config.Tce_core.Class_cache.entries
       e.Tce_engine.Engine.cc_config.Tce_core.Class_cache.ways
       e.Tce_engine.Engine.cl_config.Tce_core.Class_list.tracked_positions);
  Digest.to_hex (Digest.string (Buffer.contents buf))

let timestamp_utc () =
  let tm = Unix.gmtime (Unix.gettimeofday ()) in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec

let make_run ?config ?(shards = 1) ?(quarantined = []) ?(resumed_rows = [])
    ?(cache_stats = (0, 0)) ~jobs ~host_wall_seconds workloads : Record.run =
  let cache_hits, cache_misses = cache_stats in
  {
    Record.schema = Tce_obs.Export.schema_version;
    git_sha = git_sha ();
    config_hash = config_hash ?config ();
    created_utc = timestamp_utc ();
    jobs;
    shards;
    host_wall_seconds;
    workloads;
    quarantined;
    resumed_rows;
    cache_hits;
    cache_misses;
  }

(* --- persistence --- *)

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
  end

(** [created_utc] with the separators dropped, e.g. [20260805T120102Z] —
    lexicographic order is chronological order. *)
let compact_stamp created_utc =
  String.concat ""
    (String.split_on_char ':'
       (String.concat "" (String.split_on_char '-' created_utc)))

(** History file name: sortable timestamp + SHA, e.g.
    [run-20260805T120102Z-ab12cd34ef56.json]. *)
let history_file (r : Record.run) =
  Printf.sprintf "run-%s-%s.json" (compact_stamp r.Record.created_utc)
    r.Record.git_sha

let save ?(latest = latest_path) ?history:(dir = history_dir) (r : Record.run) =
  Tce_obs.Export.to_file ~path:latest (Record.run_to_json r);
  if dir <> "" then begin
    mkdir_p dir;
    let path = Filename.concat dir (history_file r) in
    Tce_obs.Export.to_file ~path (Record.run_to_json r);
    path
  end
  else latest

(** Persist a [prof-report] document: always to [latest], and (when
    [history] is non-empty) as [prof-<stamp>-<sha>.json] beside the bench
    history, so {!Tce_prof.Report.diff_runs} has snapshots to diff
    against. Returns the history path (or [latest] when history is off). *)
let save_prof ?(latest = prof_latest_path) ?history:(dir = history_dir)
    ~git_sha:sha ~created_utc (doc : J.t) =
  Tce_obs.Export.to_file ~path:latest doc;
  if dir <> "" then begin
    mkdir_p dir;
    let path =
      Filename.concat dir
        (Printf.sprintf "prof-%s-%s.json" (compact_stamp created_utc) sha)
    in
    Tce_obs.Export.to_file ~path doc;
    path
  end
  else latest

(** The [--time] wall table as a versioned [time-report] document:
    workloads slowest-first by combined wall seconds, with both per-side
    clocks. Machine-readable twin of the text table. *)
let time_report_json (r : Record.run) : J.t =
  let rows =
    List.sort
      (fun (a : Record.workload) (b : Record.workload) ->
        compare b.Record.wall_seconds a.Record.wall_seconds)
      r.Record.workloads
  in
  Tce_obs.Export.document ~kind:"time-report"
    (J.Obj
       [
         ("git_sha", J.Str r.Record.git_sha);
         ("created_utc", J.Str r.Record.created_utc);
         ("jobs", J.Int r.Record.jobs);
         ("host_wall_seconds", J.Float r.Record.host_wall_seconds);
         ( "workloads",
           J.List
             (List.map
                (fun (w : Record.workload) ->
                  J.Obj
                    [
                      ("name", J.Str w.Record.name);
                      ("wall_seconds", J.Float w.Record.wall_seconds);
                      ("wall_seconds_off", J.Float w.Record.wall_seconds_off);
                      ("wall_seconds_on", J.Float w.Record.wall_seconds_on);
                    ])
                rows) );
       ])

let save_time_report ?(path = time_latest_path) (r : Record.run) =
  if path <> "-" then mkdir_p (Filename.dirname path);
  Tce_obs.Export.to_file ~path (time_report_json r)

(* --- the crash-safe row journal ---

   One line per completed shard row (bench-row / fault-cell envelope),
   fsynced as it lands, so a crashed or OOM-killed parent leaves behind a
   replayable checkpoint: `--resume FILE` re-schedules only the cells the
   journal does not already hold. A torn write can only damage the final
   line, which [journal_lines] drops. *)

type journal = { j_oc : out_channel; j_fd : Unix.file_descr }

let journal_open path : journal =
  mkdir_p (Filename.dirname path);
  let oc = open_out_bin path in
  { j_oc = oc; j_fd = Unix.descr_of_out_channel oc }

let journal_append j line =
  output_string j.j_oc line;
  output_char j.j_oc '\n';
  flush j.j_oc;
  (* fsync per row: rows are seconds of work each, durability is the point *)
  try Unix.fsync j.j_fd with Unix.Unix_error _ -> ()

let journal_close j = close_out j.j_oc

let journal_lines path : (string list, string) result =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Error msg
  | text ->
    (* only lines terminated by '\n' count: a truncated final line is the
       expected signature of a crash mid-append and is silently dropped *)
    let lines = String.split_on_char '\n' text in
    let rec keep = function
      | [] | [ _ ] -> []
      | l :: rest -> l :: keep rest
    in
    (* [keep] drops the final fragment: "" when the file ends in '\n', the
       torn line when a crash interrupted the last append *)
    Ok (List.filter (fun l -> l <> "") (keep lines))

let load path : (Record.run, string) result =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Error msg
  | text -> Result.bind (J.of_string text) Record.run_of_json

(** Baseline whole-run cycle counts keyed by workload name, as a cost
    function for the runner's longest-first scheduler. An absent or
    unreadable baseline yields [fun _ -> None] (schedule stays in input
    order) — scheduling must never make a benchmark run fail. *)
let baseline_cost_of_workload ?(path = baseline_path) () :
    Tce_workloads.Workload.t -> float option =
  match load path with
  | Error _ -> fun _ -> None
  | Ok r ->
    let tbl = Hashtbl.create 64 in
    List.iter
      (fun (w : Record.workload) ->
        Hashtbl.replace tbl w.Record.name
          (w.Record.whole_cycles_off +. w.Record.whole_cycles_on))
      r.Record.workloads;
    fun w -> Hashtbl.find_opt tbl w.Tce_workloads.Workload.name

(* --- reporting --- *)

let print_summary (r : Record.run) =
  Printf.printf "%-22s %6s %14s %14s %8s %9s %8s\n" "workload" "suite"
    "cycles(off)" "cycles(on)" "speedup" "checks-rm" "wall(s)";
  List.iter
    (fun (w : Record.workload) ->
      Printf.printf "%-22s %6s %14.0f %14.0f %7.2f%% %8.2f%% %8.2f\n"
        w.Record.name
        (String.sub w.Record.suite 0 (min 6 (String.length w.Record.suite)))
        w.Record.cycles_off w.Record.cycles_on w.Record.speedup_pct
        w.Record.check_removal_pct w.Record.wall_seconds)
    r.Record.workloads;
  let speedups = List.map (fun w -> w.Record.speedup_pct) r.Record.workloads in
  let mean, ci = Tce_support.Stats.mean_ci95 speedups in
  Printf.printf
    "%d workloads, %d jobs, %.2fs wall; mean speedup %.2f%% (±%.2f, 95%% CI)\n"
    (List.length r.Record.workloads) r.Record.jobs r.Record.host_wall_seconds
    mean ci;
  Printf.printf "sha %s  config %s  at %s\n" r.Record.git_sha
    (String.sub r.Record.config_hash 0 12)
    r.Record.created_utc;
  (match r.Record.resumed_rows with
  | [] -> ()
  | rs -> Printf.printf "resumed %d row(s) from the journal\n" (List.length rs));
  match r.Record.quarantined with
  | [] -> ()
  | qs ->
    Printf.printf "QUARANTINED %d cell(s) (excluded after repeated worker kills):\n"
      (List.length qs);
    List.iter
      (fun (q : Supervise.quarantined) ->
        Printf.printf "  %s (index %d, %d kills): %s\n" q.Supervise.q_name
          q.Supervise.q_index q.Supervise.q_kills q.Supervise.q_reason)
      qs
