(** Design-space sweep: explore the Class Cache / Class List geometry
    space and report the Pareto frontier.

    A sweep spec names one value list per hardware axis:

    {v --sweep "cc.entries=32,64,128,256 cc.ways=1,2,4 cl.size=4,8" v}

    - [cc.entries] — Class Cache entry count;
    - [cc.ways] — Class Cache associativity;
    - [cl.size] — tracked Class List positions (1..7).

    Clauses are space-separated, values comma-separated positive
    integers; an absent axis sweeps only its paper-default value, an
    unknown key or an empty value list is an error. The spec expands to a
    point grid (combinations with no whole number of sets — entries not a
    multiple of ways — are skipped and counted), and the (point ×
    workload) cell matrix executes either in-process ({!run}) or across
    supervised worker processes ({!parent}, inheriting retry, quarantine,
    journal/resume and telemetry from {!Supervise}). Each cell is one
    standard benchmark pair under that point's {!config_of_point}, so
    cells flow through the content-addressed cell cache ({!Cache})
    unchanged — a repeated sweep performs zero simulations, and changing
    one axis value re-simulates only that axis's cells.

    Reports rank points on three objectives: simulated mechanism-on
    cycles (minimize), dynamic check removal (maximize) and a geometry
    cost proxy in bytes of SRAM (minimize). *)

type point = { entries : int; ways : int; cl_size : int }

val default_point : point
(** The paper's Table 2 geometry: 128 entries, 2 ways, Class List 7. *)

val point_name : point -> string
(** Canonical rendering, axis keys sorted ([cc.entries=128 cc.ways=2
    cl.size=7]). *)

val config_of_point : point -> Tce_engine.Engine.config
(** {!Tce_engine.Engine.default_config} with this point's geometry. *)

val cost_bytes : point -> int
(** Geometry cost proxy in bytes of SRAM:
    [entries * (2 + 3 + cl_size) + 16 * ways] — generalizes
    {!Tce_core.Class_cache.storage_bytes} by the swept Class List size
    plus per-way replacement overhead. Only ratios matter. *)

(** A parsed spec: sorted, deduplicated values per axis. *)
type axes = { ax_entries : int list; ax_ways : int list; ax_sizes : int list }

val parse_spec : string -> (axes, string) result

val axes_to_string : axes -> string
(** Canonical spec string; [parse_spec] of it yields the same axes. *)

val expand : axes -> point list * int
(** The point grid (entries-major over sorted values) and the number of
    invalid combinations skipped. *)

val matrix :
  point list -> Tce_workloads.Workload.t list ->
  (point * Tce_workloads.Workload.t) list
(** The canonical cell matrix: point-major, workload-minor. Workers and
    the parent both enumerate cells in this order, so a cell's matrix
    index identifies it across the process boundary. *)

(** One executed sweep. [cells] is in matrix order with quarantined cells
    absent; [cache_hits]/[cache_misses] are this invocation's counts. *)
type t = {
  spec : string;
  git_sha : string;
  created_utc : string;
  jobs : int;
  shards : int;
  host_wall_seconds : float;
  cache_hits : int;
  cache_misses : int;
  skipped_points : int;
  roster : string list;
  points : point list;
  cells : (point * Record.workload) list;
  quarantined : Supervise.quarantined list;
  resumed_rows : int list;
}

val equal : t -> t -> bool
(** Structural equality over spec, roster, points and cells (full
    {!Record.equal_workload} per row). *)

val normalize : t -> t
(** Force every host-dependent field (timestamp, wall clocks, job/shard
    counts, cache and resume provenance) to a fixed value — two sweeps of
    the same simulator state then serialize byte-identically
    ([--deterministic]). *)

val run :
  ?cache:Cache.t ->
  ?jobs:int ->
  ?on_row:(Record.workload -> unit) ->
  axes:axes ->
  Tce_workloads.Workload.t list ->
  t
(** Execute the matrix in-process on [jobs] domains. [on_row] is a
    thread-safe progress observer; it must not affect results.
    @raise Failure when the grid is empty. *)

(** Wrap / unwrap one positioned cell row in a versioned envelope (kind
    ["sweep-cell"]) — the unit a sweep worker streams to the parent. *)
val row_to_json : index:int -> Record.workload -> Tce_obs.Json.t

val row_of_json : Tce_obs.Json.t -> (int * Record.workload, string) result

val worker_indices :
  ?beat:Tce_telem.Heartbeat.emitter ->
  axes:axes ->
  indices:int list ->
  out:out_channel ->
  Tce_workloads.Workload.t list ->
  unit
(** Worker side of [--sweep SPEC --worker-indices i,j,k]: re-expand the
    matrix and run exactly [indices] serially, one [sweep-cell] envelope
    per cell on [out]. *)

val parent :
  ?exe:string ->
  ?spawn:Supervise.spawn ->
  ?log_dir:string ->
  ?supervise:Supervise.config ->
  ?journal_path:string ->
  ?resume:string ->
  ?telem:Telem.t ->
  ?cache:Cache.t ->
  shards:int ->
  worker_args:string list ->
  axes:axes ->
  Tce_workloads.Workload.t list ->
  t
(** Parent side of [--sweep --shards N]: the matrix across [N] supervised
    workers with the full {!Shard.bench_parent} recovery envelope —
    journal to [journal_path] (default {!Store.sweep_journal_path}),
    [resume] replays a previous journal, cache hits are pre-resolved so
    workers only simulate misses, fresh rows are installed as they
    arrive.
    @raise Failure when supervision fails unrecoverably or the merge is
    incomplete. *)

(** Persistence: a versioned [sweep] document ({!Store.sweep_latest_path}
    plus an immutable copy under {!Store.sweeps_dir}). *)

val to_json : t -> Tce_obs.Json.t
val of_json : Tce_obs.Json.t -> (t, string) result
val save : ?latest:string -> ?dir:string -> t -> string
val load : string -> (t, string) result

(** Per-point objective summary ([s_cost] = {!cost_bytes};
    removal/speedup over the summed rows). *)
type summary = {
  s_point : point;
  s_cost : int;
  s_cycles_off : float;
  s_cycles_on : float;
  s_speedup_pct : float;
  s_checks_off : int;
  s_checks_on : int;
  s_removal_pct : float;
}

val summarize : point -> Record.workload list -> summary

val aggregate : t -> summary list
(** Roster-aggregate summaries, one per point with at least one completed
    cell, in matrix order. *)

val per_workload : t -> (string * summary list) list

val dominates : summary -> summary -> bool
(** No worse on all three objectives, strictly better on one. *)

val frontier : summary list -> summary list
(** The non-dominated subset, input order preserved. *)

val cheapest_within : ?slack_pct:float -> summary list ->
  (summary * summary) option
(** [(default, best)]: the cheapest geometry whose check-removal rate is
    within [slack_pct] (default 1.0) points of the default point's.
    [None] when the default point is absent or nothing cheaper
    qualifies. *)

val baseline_check : ?baseline_path:string -> t -> (string, string) result
(** One report line checking the default geometry's rows against the
    committed baseline ({!Record.equal_deterministic} per matching
    workload); [Error] when any row differs. *)

val to_csv : t -> string
(** One CSV row per (scope, point) summary; scope ["all"] is the roster
    aggregate, then one scope per workload. [pareto] flags frontier
    membership within the scope. *)

val report : ?baseline_path:string -> t -> string
(** The full text report: header, roster-aggregate table with frontier
    markers, per-workload frontiers, baseline-identity line and the
    cheapest-within-1% headline. *)
