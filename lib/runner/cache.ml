(** Content-addressed cell cache (see cache.mli and README.md for the key
    derivation / invalidation rules).

    One file per cell under [results/cache/], named by the hex digest of
    the cell's identity: everything that can change the simulated row —
    workload source, full engine/machine configuration (via
    {!Store.config_hash}), the record schema version and a fingerprint of
    the simulator binary itself. Values are the serialized row JSON with
    host wall clocks zeroed (a cached row is pure simulated data), written
    atomically (tmp + rename) so concurrent writers — a parent and its
    shard workers, or two overlapping sweeps — can only ever install a
    complete file, and rewriting an existing key is idempotent. *)

module J = Tce_obs.Json
module W = Tce_workloads.Workload

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable bytes_read : int;
  mutable bytes_written : int;
}

(* [mu] guards the counters: lookups run concurrently from the runner's
   domains, and a torn increment would break the exact hit-count
   assertions CI makes. File operations need no lock (atomic rename). *)
type t = { dir : string; stats : stats; mu : Mutex.t }

let default_max_bytes = 256 * 1024 * 1024

let create ?(dir = Store.cache_dir) () =
  {
    dir;
    stats = { hits = 0; misses = 0; bytes_read = 0; bytes_written = 0 };
    mu = Mutex.create ();
  }

let stats t = t.stats
let dir t = t.dir

let with_lock t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let hit_ratio (s : stats) =
  let total = s.hits + s.misses in
  if total = 0 then 0.0 else float_of_int s.hits /. float_of_int total

(* --- key derivation --- *)

(* The simulator code fingerprint: a digest of the running executable.
   Any rebuild — even one that should not change simulated numbers —
   invalidates every key, which errs on the side of re-simulating (a
   stale hit could silently mask a perf change; a cold cache only costs
   wall time). Memoized behind a mutex, NOT a [lazy]: keys are derived
   concurrently from runner domains, and concurrently forcing one lazy
   raises in OCaml 5. Digesting a multi-megabyte binary once per process
   is fine, once per cell is not. *)
let sim_fingerprint =
  let mu = Mutex.create () in
  let memo = ref None in
  fun () ->
    Mutex.lock mu;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock mu)
      (fun () ->
        match !memo with
        | Some v -> v
        | None ->
          let v =
            try Digest.to_hex (Digest.file Sys.executable_name)
            with Sys_error _ -> "unknown"
          in
          memo := Some v;
          v)

(** Digest canonically over labelled parts: sorted by label, so key
    equality is independent of the order the caller listed them in. A
    label appearing twice is a programming error and fails loudly —
    silently keeping one would make two different identities collide. *)
let key (parts : (string * string) list) : string =
  let sorted =
    List.sort (fun (a, _) (b, _) -> compare a b) parts
  in
  let rec check_dup = function
    | (a, _) :: ((b, _) :: _ as rest) ->
      if a = b then
        invalid_arg (Printf.sprintf "Cache.key: duplicate label %S" a);
      check_dup rest
    | _ -> ()
  in
  check_dup sorted;
  let buf = Buffer.create 256 in
  List.iter
    (fun (l, v) ->
      Buffer.add_string buf l;
      Buffer.add_char buf '=';
      Buffer.add_string buf v;
      Buffer.add_char buf '\n')
    sorted;
  Digest.to_hex (Digest.string (Buffer.contents buf))

(** The identity parts shared by every cell kind: config, schema and
    simulator fingerprint. *)
let base_parts ?config () =
  [
    ("config", Store.config_hash ?config ());
    ("schema", string_of_int Tce_obs.Export.schema_version);
    ("sim", sim_fingerprint ());
  ]

let bench_key ?config (w : W.t) : string =
  key
    (("kind", "bench-row")
     :: ("workload", w.W.name)
     :: ("source", Digest.to_hex (Digest.string w.W.source))
     :: ("iterations", string_of_int w.W.iterations)
     :: base_parts ?config ())

(** A fault-campaign cell: the bench identity plus the armed singleton
    spec and the cell's injector seed. *)
let fault_key ?config ~spec ~seed (w : W.t) : string =
  key
    (("kind", "fault-cell")
     :: ("workload", w.W.name)
     :: ("source", Digest.to_hex (Digest.string w.W.source))
     :: ("iterations", string_of_int w.W.iterations)
     :: ("spec", spec)
     :: ("seed", string_of_int seed)
     :: base_parts ?config ())

(* --- storage --- *)

let cell_path t k = Filename.concat t.dir (k ^ ".json")

let read_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error _ -> None
  | text -> Some text

(** Look the key up. A hit touches the file's mtime (the LRU clock
    {!prune} evicts by) and counts toward [hits]/[bytes_read]; a missing
    or unparseable file is a miss (a corrupt file — torn by a crashed
    host, not by us — is deleted so it cannot go on masking the slot). *)
let find t ~key:k : J.t option =
  let path = cell_path t k in
  match read_file path with
  | None ->
    with_lock t (fun () -> t.stats.misses <- t.stats.misses + 1);
    None
  | Some text -> (
    match J.of_string text with
    | Ok j ->
      with_lock t (fun () ->
          t.stats.hits <- t.stats.hits + 1;
          t.stats.bytes_read <- t.stats.bytes_read + String.length text);
      (try Unix.utimes path 0.0 0.0 with Unix.Unix_error _ -> ());
      Some j
    | Error _ ->
      (try Sys.remove path with Sys_error _ -> ());
      with_lock t (fun () -> t.stats.misses <- t.stats.misses + 1);
      None)

(** Install [j] under [k]: write-to-temp + atomic rename, so a reader (or
    a concurrent writer of the same key — deterministic cells make the
    bytes identical) never observes a partial file. *)
let store t ~key:k (j : J.t) : unit =
  Store.mkdir_p t.dir;
  let path = cell_path t k in
  let text = J.to_string j in
  let tmp =
    Filename.temp_file ~temp_dir:t.dir ("." ^ k) ".tmp"
  in
  (try
     let oc = open_out_bin tmp in
     Fun.protect
       ~finally:(fun () -> close_out oc)
       (fun () -> output_string oc text);
     Sys.rename tmp path
   with e ->
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  with_lock t (fun () ->
      t.stats.bytes_written <- t.stats.bytes_written + String.length text)

(* --- size-bounded LRU prune --- *)

(** Every cell file with its size and mtime, oldest first. *)
let entries dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | names ->
    let cells =
      List.filter_map
        (fun name ->
          if Filename.check_suffix name ".json" then
            let path = Filename.concat dir name in
            match Unix.stat path with
            | exception Unix.Unix_error _ -> None
            | st when st.Unix.st_kind = Unix.S_REG ->
              Some (path, st.Unix.st_size, st.Unix.st_mtime)
            | _ -> None
          else None)
        (Array.to_list names)
    in
    List.sort (fun (_, _, a) (_, _, b) -> compare a b) cells

let size_bytes ?(dir = Store.cache_dir) () =
  List.fold_left (fun acc (_, sz, _) -> acc + sz) 0 (entries dir)

(** Evict least-recently-used cells until the cache fits in [max_bytes]
    (default {!default_max_bytes}). Returns [(files_removed,
    bytes_freed)]. Deleting a file a concurrent reader just opened is
    fine — it keeps its fd — and a raced [Sys.remove] is ignored. *)
let prune ?(dir = Store.cache_dir) ?(max_bytes = default_max_bytes) () :
    int * int =
  let cells = entries dir in
  let total = List.fold_left (fun acc (_, sz, _) -> acc + sz) 0 cells in
  let rec evict freed removed over = function
    | _ when over <= 0 -> (removed, freed)
    | [] -> (removed, freed)
    | (path, sz, _) :: rest ->
      (try Sys.remove path with Sys_error _ -> ());
      evict (freed + sz) (removed + 1) (over - sz) rest
  in
  evict 0 0 (total - max_bytes) cells

let print_stats ?(label = "cache") (s : stats) =
  if s.hits + s.misses > 0 then
    Printf.printf
      "%s: %d hit(s), %d miss(es) (%.0f%% hit rate), %d B read, %d B written\n"
      label s.hits s.misses
      (100.0 *. hit_ratio s)
      s.bytes_read s.bytes_written
